package stats

import (
	"sort"

	"ihtl/internal/graph"
)

// Asymmetricity computes the paper's Figure 9 measure for vertex v:
//
//	Asym(v) = |{(u,v) ∈ E : (v,u) ∉ E}| / |{(u,v) ∈ E}|
//
// i.e. the fraction of in-neighbours that are not also out-neighbours.
// 0 means every in-edge is reciprocated (fully symmetric, typical for
// social-network hubs); 1 means no in-edge is reciprocated (typical
// for web-graph in-hubs). Vertices with no in-edges return 0.
func Asymmetricity(g *graph.Graph, v graph.VID) float64 {
	in := g.In(v)
	if len(in) == 0 {
		return 0
	}
	out := g.Out(v)
	// Both lists are sorted: count in-neighbours missing from out.
	missing := 0
	j := 0
	for _, u := range in {
		for j < len(out) && out[j] < u {
			j++
		}
		if j >= len(out) || out[j] != u {
			missing++
		}
	}
	return float64(missing) / float64(len(in))
}

// AsymmetryBucket aggregates asymmetricity over vertices grouped by
// in-degree (log2 buckets), reproducing the x-axis of Figure 9.
type AsymmetryBucket struct {
	// DegreeLo and DegreeHi bound the in-degree bucket [lo, hi).
	DegreeLo, DegreeHi int
	// Count is the number of vertices in the bucket.
	Count int
	// MeanAsymmetricity is averaged over bucket members.
	MeanAsymmetricity float64
}

// AsymmetryByDegree computes mean asymmetricity per log2 in-degree
// bucket (Figure 9). Zero-in-degree vertices are skipped.
func AsymmetryByDegree(g *graph.Graph) []AsymmetryBucket {
	type acc struct {
		n   int
		sum float64
	}
	var accs []acc
	for v := 0; v < g.NumV; v++ {
		d := g.InDegree(graph.VID(v))
		if d == 0 {
			continue
		}
		b := bits(d)
		for len(accs) <= b {
			accs = append(accs, acc{})
		}
		accs[b].n++
		accs[b].sum += Asymmetricity(g, graph.VID(v))
	}
	out := make([]AsymmetryBucket, 0, len(accs))
	for b, a := range accs {
		if a.n == 0 {
			continue
		}
		out = append(out, AsymmetryBucket{
			DegreeLo:          1 << uint(b),
			DegreeHi:          1 << uint(b+1),
			Count:             a.n,
			MeanAsymmetricity: a.sum / float64(a.n),
		})
	}
	return out
}

// HubAsymmetricity returns the mean asymmetricity of the top-k
// vertices by in-degree — the single number that distinguishes
// social networks (≈0) from web graphs (≈1) in Figure 9.
func HubAsymmetricity(g *graph.Graph, k int) float64 {
	if k < 1 || g.NumV == 0 {
		return 0
	}
	if k > g.NumV {
		k = g.NumV
	}
	hubs := TopKByInDegree(g, k)
	var sum float64
	for _, v := range hubs {
		sum += Asymmetricity(g, v)
	}
	return sum / float64(len(hubs))
}

// TopKByInDegree returns the k vertices with the largest in-degrees in
// descending in-degree order (ties broken by smaller ID first, making
// the result deterministic).
func TopKByInDegree(g *graph.Graph, k int) []graph.VID {
	if k > g.NumV {
		k = g.NumV
	}
	ids := make([]graph.VID, g.NumV)
	for v := range ids {
		ids[v] = graph.VID(v)
	}
	// Selection via full sort: NumV is at most a few million in this
	// repository, and the sort is dwarfed by graph build time.
	sort.Slice(ids, func(i, j int) bool {
		da, db := g.InDegree(ids[i]), g.InDegree(ids[j])
		if da != db {
			return da > db
		}
		return ids[i] < ids[j]
	})
	return ids[:k]
}
