package stats

import (
	"math"
	"testing"

	"ihtl/internal/gen"
	"ihtl/internal/graph"
)

func TestDegreesKinds(t *testing.T) {
	g := graph.Star(10) // 1..9 -> 0
	in := Degrees(g, InDegree)
	out := Degrees(g, OutDegree)
	tot := Degrees(g, TotalDegree)
	if in[0] != 9 || out[0] != 0 || tot[0] != 9 {
		t.Fatalf("hub degrees wrong: in=%d out=%d tot=%d", in[0], out[0], tot[0])
	}
	for v := 1; v < 10; v++ {
		if in[v] != 0 || out[v] != 1 || tot[v] != 1 {
			t.Fatalf("leaf %d degrees wrong", v)
		}
	}
}

func TestSummarizeStar(t *testing.T) {
	g := graph.Star(101) // hub with in-degree 100, leaves with 0
	s := Summarize(g, InDegree)
	if s.Max != 100 || s.Min != 0 || s.Median != 0 {
		t.Fatalf("summary wrong: %+v", s)
	}
	if math.Abs(s.Mean-100.0/101.0) > 1e-9 {
		t.Fatalf("mean wrong: %v", s.Mean)
	}
	// All edge mass on one vertex: extreme skew.
	if s.TopSharePct1 < 0.999 {
		t.Fatalf("top share should be ~1, got %v", s.TopSharePct1)
	}
	if s.Gini < 0.9 {
		t.Fatalf("Gini should be near 1 for a star, got %v", s.Gini)
	}
}

func TestSummarizeUniform(t *testing.T) {
	g := graph.Cycle(100)
	s := Summarize(g, InDegree)
	if s.Min != 1 || s.Max != 1 || s.Mean != 1 {
		t.Fatalf("cycle summary wrong: %+v", s)
	}
	if s.Gini > 0.05 {
		t.Fatalf("Gini should be ~0 for uniform degrees, got %v", s.Gini)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	g, err := graph.Build(0, nil, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(g, InDegree)
	if s.Max != 0 || s.Mean != 0 {
		t.Fatalf("empty summary wrong: %+v", s)
	}
}

func TestHistogram(t *testing.T) {
	g := graph.Star(10)
	h := NewHistogram(g, InDegree)
	if h.Zero != 9 {
		t.Fatalf("Zero = %d, want 9", h.Zero)
	}
	// Hub has degree 9 -> bucket 3 ([8,16)).
	if len(h.Buckets) != 4 || h.Buckets[3] != 1 {
		t.Fatalf("buckets wrong: %v", h.Buckets)
	}
}

func TestAsymmetricityExtremes(t *testing.T) {
	// Fully reciprocated pair: asymmetricity 0 on both.
	g := graph.MustFromEdges(2, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}})
	if a := Asymmetricity(g, 0); a != 0 {
		t.Fatalf("reciprocated asymmetricity = %v, want 0", a)
	}
	// One-way edge: destination fully asymmetric.
	g2 := graph.MustFromEdges(2, []graph.Edge{{Src: 0, Dst: 1}})
	if a := Asymmetricity(g2, 1); a != 1 {
		t.Fatalf("one-way asymmetricity = %v, want 1", a)
	}
	// No in-edges: defined as 0.
	if a := Asymmetricity(g2, 0); a != 0 {
		t.Fatalf("no-in-edge asymmetricity = %v, want 0", a)
	}
}

func TestAsymmetricityPartial(t *testing.T) {
	// v=0 has in-neighbours {1,2,3}; only 1 is reciprocated.
	g := graph.MustFromEdges(4, []graph.Edge{
		{Src: 1, Dst: 0}, {Src: 2, Dst: 0}, {Src: 3, Dst: 0}, {Src: 0, Dst: 1},
	})
	want := 2.0 / 3.0
	if a := Asymmetricity(g, 0); math.Abs(a-want) > 1e-12 {
		t.Fatalf("asymmetricity = %v, want %v", a, want)
	}
}

func TestHubAsymmetricitySeparatesSocialFromWeb(t *testing.T) {
	// Social-like: R-MAT on an undirectedised edge set would be
	// symmetric; emulate by adding reciprocal edges.
	soc, err := gen.RMAT(gen.DefaultRMAT(11, 8, 3))
	if err != nil {
		t.Fatal(err)
	}
	edges := soc.Edges(nil)
	n := len(edges)
	for i := 0; i < n; i++ {
		edges = append(edges, graph.Edge{Src: edges[i].Dst, Dst: edges[i].Src})
	}
	socSym, err := graph.Build(soc.NumV, edges, graph.BuildOptions{Dedup: true})
	if err != nil {
		t.Fatal(err)
	}

	web, err := gen.Web(gen.DefaultWeb(20000, 5))
	if err != nil {
		t.Fatal(err)
	}

	aSoc := HubAsymmetricity(socSym, 50)
	aWeb := HubAsymmetricity(web, 50)
	if aSoc > 0.05 {
		t.Fatalf("symmetrised social hubs should be ~0, got %v", aSoc)
	}
	if aWeb < 0.5 {
		t.Fatalf("web hubs should be mostly asymmetric, got %v", aWeb)
	}
	if aWeb-aSoc < 0.4 {
		t.Fatalf("Fig.9 separation too small: social=%v web=%v", aSoc, aWeb)
	}
}

func TestAsymmetryByDegreeBuckets(t *testing.T) {
	g := graph.Star(100)
	buckets := AsymmetryByDegree(g)
	// Only the hub has in-degree > 0: exactly one bucket with count 1
	// and asymmetricity 1 (no reciprocation).
	if len(buckets) != 1 || buckets[0].Count != 1 || buckets[0].MeanAsymmetricity != 1 {
		t.Fatalf("buckets wrong: %+v", buckets)
	}
	if buckets[0].DegreeLo > 99 || buckets[0].DegreeHi <= 99 {
		t.Fatalf("bucket bounds wrong: %+v", buckets[0])
	}
}

func TestTopKByInDegree(t *testing.T) {
	g := graph.PaperExample()
	top := TopKByInDegree(g, 2)
	if len(top) != 2 || top[0] != 2 || top[1] != 6 {
		t.Fatalf("TopK = %v, want [2 6]", top)
	}
	all := TopKByInDegree(g, 100)
	if len(all) != g.NumV {
		t.Fatalf("TopK over-requested length %d", len(all))
	}
	// Descending degrees.
	for i := 1; i < len(all); i++ {
		if g.InDegree(all[i]) > g.InDegree(all[i-1]) {
			t.Fatal("TopK not sorted by in-degree")
		}
	}
}

func TestPowerLawAlphaMLE(t *testing.T) {
	// Degrees drawn from a known power law should recover alpha
	// approximately.
	g, err := gen.RMAT(gen.DefaultRMAT(12, 16, 9))
	if err != nil {
		t.Fatal(err)
	}
	alpha := PowerLawAlphaMLE(Degrees(g, InDegree), 8)
	if math.IsNaN(alpha) || alpha < 1.2 || alpha > 4 {
		t.Fatalf("implausible alpha %v for R-MAT", alpha)
	}
	if !math.IsNaN(PowerLawAlphaMLE(nil, 1)) {
		t.Fatal("empty degrees should give NaN")
	}
}

func TestDegreeKindString(t *testing.T) {
	if InDegree.String() != "in" || OutDegree.String() != "out" || TotalDegree.String() != "total" {
		t.Fatal("DegreeKind strings wrong")
	}
	if DegreeKind(42).String() == "" {
		t.Fatal("unknown kind should still format")
	}
}
