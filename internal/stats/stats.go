// Package stats computes the structural statistics the paper uses to
// characterise its datasets and to motivate iHTL: degree
// distributions and their skew (§1, §2.2), and the asymmetricity
// measure of Figure 9 that separates social networks (symmetric hubs)
// from web graphs (asymmetric in-hubs).
package stats

import (
	"fmt"
	"math"
	"sort"

	"ihtl/internal/graph"
)

// DegreeKind selects which degree a statistic is computed over.
type DegreeKind int

const (
	// InDegree selects in-degrees.
	InDegree DegreeKind = iota
	// OutDegree selects out-degrees.
	OutDegree
	// TotalDegree selects in+out degrees.
	TotalDegree
)

func (k DegreeKind) String() string {
	switch k {
	case InDegree:
		return "in"
	case OutDegree:
		return "out"
	case TotalDegree:
		return "total"
	default:
		return fmt.Sprintf("DegreeKind(%d)", int(k))
	}
}

// Degrees returns the degree of every vertex under kind.
func Degrees(g *graph.Graph, kind DegreeKind) []int {
	out := make([]int, g.NumV)
	for v := 0; v < g.NumV; v++ {
		switch kind {
		case InDegree:
			out[v] = g.InDegree(graph.VID(v))
		case OutDegree:
			out[v] = g.OutDegree(graph.VID(v))
		default:
			out[v] = g.Degree(graph.VID(v))
		}
	}
	return out
}

// DegreeSummary aggregates a degree distribution.
type DegreeSummary struct {
	Kind           DegreeKind
	Min, Max       int
	Mean           float64
	Median         int
	P99            int
	Gini           float64
	TopSharePct1   float64 // fraction of edges captured by top 1% of vertices
	TopSharePct01  float64 // ... by top 0.1%
	ZeroDegreeFrac float64
}

// Summarize computes a DegreeSummary for g under kind.
func Summarize(g *graph.Graph, kind DegreeKind) DegreeSummary {
	degs := Degrees(g, kind)
	s := DegreeSummary{Kind: kind}
	if len(degs) == 0 {
		return s
	}
	sorted := append([]int(nil), degs...)
	sort.Ints(sorted)
	n := len(sorted)
	s.Min = sorted[0]
	s.Max = sorted[n-1]
	s.Median = sorted[n/2]
	s.P99 = sorted[min(n-1, n*99/100)]
	var total float64
	zero := 0
	for _, d := range sorted {
		total += float64(d)
		if d == 0 {
			zero++
		}
	}
	s.Mean = total / float64(n)
	s.ZeroDegreeFrac = float64(zero) / float64(n)
	if total > 0 {
		// Gini coefficient over the sorted degree sequence.
		var cum, giniSum float64
		for i, d := range sorted {
			cum += float64(d)
			_ = i
			giniSum += cum
		}
		s.Gini = 1 - 2*(giniSum/(float64(n)*total)) + 1/float64(n)
		s.TopSharePct1 = topShare(sorted, total, 0.01)
		s.TopSharePct01 = topShare(sorted, total, 0.001)
	}
	return s
}

// topShare computes the fraction of total degree mass held by the top
// frac of vertices; sorted must be ascending.
func topShare(sorted []int, total float64, frac float64) float64 {
	k := int(frac * float64(len(sorted)))
	if k < 1 {
		k = 1
	}
	var sum float64
	for i := len(sorted) - k; i < len(sorted); i++ {
		sum += float64(sorted[i])
	}
	return sum / total
}

// Histogram is a log2-bucketed degree histogram: Buckets[i] counts
// vertices with degree in [2^i, 2^(i+1)), with degree-0 vertices in a
// separate Zero count.
type Histogram struct {
	Kind    DegreeKind
	Zero    int
	Buckets []int
}

// NewHistogram builds the log2 histogram of g's degrees under kind.
func NewHistogram(g *graph.Graph, kind DegreeKind) Histogram {
	h := Histogram{Kind: kind}
	for _, d := range Degrees(g, kind) {
		if d == 0 {
			h.Zero++
			continue
		}
		b := bits(d)
		for len(h.Buckets) <= b {
			h.Buckets = append(h.Buckets, 0)
		}
		h.Buckets[b]++
	}
	return h
}

func bits(d int) int {
	b := 0
	for d > 1 {
		d >>= 1
		b++
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// PowerLawAlphaMLE estimates the power-law exponent of the degree
// distribution by the discrete maximum-likelihood estimator of
// Clauset, Shalizi & Newman (2009) with fixed xmin:
// alpha ≈ 1 + n / Σ ln(d_i / (xmin - 0.5)) over degrees d_i >= xmin.
func PowerLawAlphaMLE(degs []int, xmin int) float64 {
	if xmin < 1 {
		xmin = 1
	}
	var sum float64
	n := 0
	for _, d := range degs {
		if d >= xmin {
			sum += math.Log(float64(d) / (float64(xmin) - 0.5))
			n++
		}
	}
	if n == 0 || sum == 0 {
		return math.NaN()
	}
	return 1 + float64(n)/sum
}
