package compress

import (
	"testing"
	"testing/quick"
)

// randomAdj builds a random sorted adjacency for property tests.
func randomAdj(degsRaw []uint8, seed uint32, gapMod uint32) ([]int64, []uint32) {
	index := []int64{0}
	var nbrs []uint32
	x := seed
	for _, dr := range degsRaw {
		deg := int(dr % 17)
		cur := uint32(0)
		for i := 0; i < deg; i++ {
			x = x*1664525 + 1013904223
			cur += x % gapMod
			nbrs = append(nbrs, cur)
		}
		index = append(index, index[len(index)-1]+int64(deg))
	}
	return index, nbrs
}

func chunkedRoundTrip(t *testing.T, index []int64, nbrs []uint32, target int) {
	t.Helper()
	ck := EncodeChunked(index, nbrs, target)
	maxDst := uint32(1)
	for _, d := range nbrs {
		if d >= maxDst {
			maxDst = d + 1
		}
	}
	if err := ck.Validate(maxDst); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if ck.NumSrc != len(index)-1 || ck.NumEdges != int64(len(nbrs)) {
		t.Fatalf("shape %d/%d, want %d/%d", ck.NumSrc, ck.NumEdges, len(index)-1, len(nbrs))
	}
	sIdx := make([]int32, ck.MaxSrcs+1)
	dsts := make([]uint32, ck.MaxEdges)
	var gotE int64
	for c := 0; c < ck.Chunks(); c++ {
		nsrc, ne := ck.DecodeChunkCSR(c, sIdx, dsts)
		if nsrc != int(ck.SrcOff[c+1]-ck.SrcOff[c]) {
			t.Fatalf("chunk %d rows %d, want %d", c, nsrc, ck.SrcOff[c+1]-ck.SrcOff[c])
		}
		base := int(ck.SrcOff[c])
		for s := 0; s < nsrc; s++ {
			gLo, gHi := index[base+s], index[base+s+1]
			lLo, lHi := sIdx[s], sIdx[s+1]
			if int64(lHi-lLo) != gHi-gLo {
				t.Fatalf("chunk %d row %d degree %d, want %d", c, s, lHi-lLo, gHi-gLo)
			}
			for i := int64(0); i < gHi-gLo; i++ {
				if dsts[int64(lLo)+i] != nbrs[gLo+i] {
					t.Fatalf("chunk %d row %d nbr %d = %d, want %d",
						c, s, i, dsts[int64(lLo)+i], nbrs[gLo+i])
				}
			}
		}
		gotE += int64(ne)
	}
	if gotE != int64(len(nbrs)) {
		t.Fatalf("decoded %d edges, want %d", gotE, len(nbrs))
	}
}

func TestChunkedRoundTrip(t *testing.T) {
	chunkedRoundTrip(t, []int64{0}, nil, 0)
	chunkedRoundTrip(t, []int64{0, 0, 0, 0}, nil, 2)
	chunkedRoundTrip(t, []int64{0, 3}, []uint32{1, 5, 9}, 1)
	chunkedRoundTrip(t, []int64{0, 2, 2, 5}, []uint32{0, 7, 1, 2, 4_000_000_000}, 2)

	// A row whose degree exceeds the target must become its own chunk.
	idx := []int64{0, 1, 9, 10}
	nbrs := []uint32{3, 0, 1, 2, 3, 4, 5, 6, 7, 9}
	ck := EncodeChunked(idx, nbrs, 4)
	if ck.MaxEdges < 8 {
		t.Fatalf("oversized row not reflected in MaxEdges: %d", ck.MaxEdges)
	}
	chunkedRoundTrip(t, idx, nbrs, 4)
}

func TestChunkedBoundsRespectTarget(t *testing.T) {
	index := make([]int64, 1001)
	var nbrs []uint32
	for v := 0; v < 1000; v++ {
		for k := 0; k < 7; k++ {
			nbrs = append(nbrs, uint32(v+k))
		}
		index[v+1] = int64(len(nbrs))
	}
	const target = 64
	ck := EncodeChunked(index, nbrs, target)
	if ck.MaxEdges > target {
		t.Fatalf("MaxEdges %d exceeds target %d with no oversized row", ck.MaxEdges, target)
	}
	if ck.MaxSrcs > target {
		t.Fatalf("MaxSrcs %d exceeds target %d", ck.MaxSrcs, target)
	}
	if ck.Chunks() < len(nbrs)/target {
		t.Fatalf("too few chunks: %d", ck.Chunks())
	}
	chunkedRoundTrip(t, index, nbrs, target)
}

func TestChunkedProperty(t *testing.T) {
	f := func(degsRaw []uint8, seed uint32, targetRaw uint8) bool {
		index, nbrs := randomAdj(degsRaw, seed, 1000)
		target := int(targetRaw%40) + 1
		ck := EncodeChunked(index, nbrs, target)
		maxDst := uint32(1)
		for _, d := range nbrs {
			if d >= maxDst {
				maxDst = d + 1
			}
		}
		if err := ck.Validate(maxDst); err != nil {
			return false
		}
		sIdx := make([]int32, ck.MaxSrcs+1)
		dsts := make([]uint32, ck.MaxEdges)
		pos := 0
		for c := 0; c < ck.Chunks(); c++ {
			_, ne := ck.DecodeChunkCSR(c, sIdx, dsts)
			for i := 0; i < ne; i++ {
				if dsts[i] != nbrs[pos] {
					return false
				}
				pos++
			}
		}
		return pos == len(nbrs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChunkedValidateRejects(t *testing.T) {
	idx := []int64{0, 2, 4}
	nbrs := []uint32{1, 5, 0, 9}
	good := func() *Chunked { return EncodeChunked(idx, nbrs, 2) }

	if err := good().Validate(10); err != nil {
		t.Fatalf("good chunked rejected: %v", err)
	}
	// Neighbour out of range.
	if err := good().Validate(5); err == nil {
		t.Error("out-of-range neighbour accepted")
	}
	// Truncated data.
	ck := good()
	ck.Data = ck.Data[:len(ck.Data)-1]
	if err := ck.Validate(10); err == nil {
		t.Error("truncated data accepted")
	}
	// Trailing bytes inside a chunk.
	ck = good()
	ck.Data = append(ck.Data, 0)
	ck.ByteOff[len(ck.ByteOff)-1]++
	if err := ck.Validate(10); err == nil {
		t.Error("trailing bytes accepted")
	}
	// Mismatched totals.
	ck = good()
	ck.NumEdges++
	if err := ck.Validate(10); err == nil {
		t.Error("edge-total mismatch accepted")
	}
	ck = good()
	ck.NumSrc++
	if err := ck.Validate(10); err == nil {
		t.Error("row-total mismatch accepted")
	}
	// Hostile scratch bounds.
	ck = good()
	ck.MaxEdges = -1
	if err := ck.Validate(10); err == nil {
		t.Error("negative MaxEdges accepted")
	}
	ck = good()
	ck.MaxSrcs = 0
	if err := ck.Validate(10); err == nil {
		t.Error("understated MaxSrcs accepted")
	}
	// Non-monotone byte table.
	ck = good()
	if ck.Chunks() >= 2 {
		ck.ByteOff[1] = ck.ByteOff[2] + 1
		if err := ck.Validate(10); err == nil {
			t.Error("non-monotone ByteOff accepted")
		}
	}
}

func TestIndexRoundTrip(t *testing.T) {
	cases := [][]int64{
		{},
		{0},
		{0, 0, 0},
		{0, 3, 3, 7, 1 << 40},
		{5, 5, 6},
	}
	for _, idx := range cases {
		enc := EncodeIndex(idx)
		got, err := DecodeIndex(enc, len(idx))
		if err != nil {
			t.Fatalf("%v: %v", idx, err)
		}
		for i := range idx {
			if got[i] != idx[i] {
				t.Fatalf("%v: got %v", idx, got)
			}
		}
	}
}

func TestDecodeIndexRejects(t *testing.T) {
	enc := EncodeIndex([]int64{0, 3, 7})
	if _, err := DecodeIndex(enc[:len(enc)-1], 3); err == nil {
		t.Error("truncated index accepted")
	}
	if _, err := DecodeIndex(append(enc, 0), 3); err == nil {
		t.Error("trailing bytes accepted")
	}
	if _, err := DecodeIndex(enc, 1<<30); err == nil {
		t.Error("hostile length accepted")
	}
	if _, err := DecodeIndex([]byte{0xFF}, 1); err == nil {
		t.Error("bare continuation byte accepted")
	}
	// Running sum overflowing int64.
	bad := EncodeIndex([]int64{1 << 62})
	bad = append(bad, EncodeIndex([]int64{1 << 62})...)
	bad = append(bad, EncodeIndex([]int64{1 << 62})...)
	if _, err := DecodeIndex(bad, 3); err == nil {
		t.Error("int64 overflow accepted")
	}
}

// TestEncodeCapacityNoGrow pins the satellite fix: the sampled
// capacity estimate must cover sorted locality-friendly inputs in one
// allocation (no append grow), while staying within 2x of the actual
// encoded size (no return to the flat 2·E+V over-reserve).
func TestEncodeCapacityNoGrow(t *testing.T) {
	n := 4000
	index := make([]int64, n+1)
	var nbrs []uint32
	x := uint32(12345)
	for v := 0; v < n; v++ {
		deg := 5 + int(x%32)
		x = x*1664525 + 1013904223
		cur := uint32(v)
		for k := 0; k < deg; k++ {
			x = x*1664525 + 1013904223
			cur += x % 64
			nbrs = append(nbrs, cur)
		}
		index[v+1] = int64(len(nbrs))
	}
	est := estimateAdjCap(index, nbrs)
	enc := EncodeAdjacency(index, nbrs)
	if len(enc) > est {
		t.Fatalf("estimate %d below encoded size %d: encode grew", est, len(enc))
	}
	if cap(enc) != est {
		t.Fatalf("encode grew: cap %d, initial estimate %d", cap(enc), est)
	}
	if est > 2*len(enc)+64 {
		t.Fatalf("estimate %d wastes >2x over %d encoded bytes", est, len(enc))
	}
}

func TestEstimateDegenerate(t *testing.T) {
	if got := estimateAdjCap([]int64{0}, nil); got != 0 {
		t.Fatalf("empty estimate = %d", got)
	}
	// All edges on one row the sample stride (200/64 = 3) misses:
	// row 151 is not a multiple of 3, so sampleEdges stays 0 and the
	// fallback width must still cover the stream.
	index := make([]int64, 201)
	for v := 152; v <= 200; v++ {
		index[v] = 3
	}
	nbrs := []uint32{1, 2, 3}
	est := estimateAdjCap(index, nbrs)
	enc := EncodeAdjacency(index, nbrs)
	if est < len(enc)/2 {
		t.Fatalf("degenerate estimate %d far below %d", est, len(enc))
	}
}
