package compress

import (
	"bytes"
	"testing"
)

// FuzzDecodeAdjacency feeds hostile byte streams and shapes to the
// checked adjacency decoder: it must either round-trip-consistently
// succeed or return an error — never panic, and never allocate more
// neighbour slots than the stream could encode.
func FuzzDecodeAdjacency(f *testing.F) {
	f.Add(EncodeAdjacency([]int64{0, 2, 2, 5}, []uint32{0, 7, 1, 2, 4_000_000_000}), 3, int64(5))
	f.Add([]byte{}, 0, int64(0))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x02}, 1, int64(1))
	f.Add([]byte{1, 0x80}, 1, int64(1))
	f.Add([]byte{2, 5, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}, 1, int64(2))
	f.Fuzz(func(t *testing.T, data []byte, numV int, numE int64) {
		if numV > 1<<20 || numE > 1<<22 {
			return // keep memory bounded; hostile shapes are covered below the cap
		}
		index, nbrs, err := DecodeAdjacency(data, numV, numE)
		if err != nil {
			return
		}
		if len(index) != numV+1 || int64(len(nbrs)) != numE {
			t.Fatalf("accepted stream decoded to wrong shape %d/%d", len(index), len(nbrs))
		}
		// Accepted input must re-encode to the identical stream:
		// varint encodings are canonical except for padded
		// continuation bytes, which a decoded-accepted stream must
		// not contain.
		if enc := EncodeAdjacency(index, nbrs); !bytes.Equal(enc, data) {
			// Non-canonical (padded) varints decode fine but
			// re-encode shorter; both are valid, so only flag
			// growth.
			if len(enc) > len(data) {
				t.Fatalf("re-encode grew %d -> %d bytes", len(data), len(enc))
			}
		}
	})
}

// FuzzDecodeIndex exercises the offset-table decoder the v2 engine
// file trusts for section shapes: malformed input must error, never
// panic or over-allocate.
func FuzzDecodeIndex(f *testing.F) {
	f.Add(EncodeIndex([]int64{0, 3, 3, 7, 1 << 40}), 5)
	f.Add([]byte{}, 0)
	f.Add([]byte{0x80}, 1)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}, 1)
	f.Fuzz(func(t *testing.T, data []byte, n int) {
		out, err := DecodeIndex(data, n)
		if err != nil {
			return
		}
		if len(out) != n {
			t.Fatalf("accepted stream decoded to %d offsets, want %d", len(out), n)
		}
		prev := int64(0)
		if n > 0 {
			prev = out[0]
		}
		for _, v := range out {
			if v < prev {
				t.Fatalf("decoded offsets not monotone: %v", out)
			}
			prev = v
		}
	})
}

// FuzzChunkedFromAdjacency checks that any adjacency the checked
// decoder accepts also survives the chunked encode -> Validate ->
// unchecked-decode path bit-for-bit, at several chunk targets.
func FuzzChunkedFromAdjacency(f *testing.F) {
	f.Add(EncodeAdjacency([]int64{0, 2, 2, 5}, []uint32{0, 7, 1, 2, 9}), 3, int64(5), 2)
	f.Fuzz(func(t *testing.T, data []byte, numV int, numE int64, target int) {
		if numV > 1<<16 || numE > 1<<18 || target > 1<<16 {
			return
		}
		index, nbrs, err := DecodeAdjacency(data, numV, numE)
		if err != nil {
			return
		}
		ck := EncodeChunked(index, nbrs, target)
		maxDst := uint32(1)
		for _, d := range nbrs {
			if d >= maxDst {
				maxDst = d + 1
			}
		}
		if err := ck.Validate(maxDst); err != nil {
			t.Fatalf("self-encoded chunked failed Validate: %v", err)
		}
		sIdx := make([]int32, ck.MaxSrcs+1)
		dsts := make([]uint32, ck.MaxEdges)
		pos := 0
		for c := 0; c < ck.Chunks(); c++ {
			_, ne := ck.DecodeChunkCSR(c, sIdx, dsts)
			for i := 0; i < ne; i++ {
				if dsts[i] != nbrs[pos] {
					t.Fatalf("chunk %d edge %d = %d, want %d", c, i, dsts[i], nbrs[pos])
				}
				pos++
			}
		}
		if pos != len(nbrs) {
			t.Fatalf("chunked decode covered %d edges, want %d", pos, len(nbrs))
		}
	})
}
