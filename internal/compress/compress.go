// Package compress implements the light-weight graph-topology
// compression the paper lists as future work for shrinking iHTL's
// topology data (§6, citing the WebGraph framework's techniques):
// per-vertex delta encoding of sorted neighbour lists with LEB128
// varints. Sorted adjacency has small gaps on locality-friendly
// orderings, so gaps compress far below the flat 4 bytes per
// neighbour.
package compress

import (
	"encoding/binary"
	"fmt"
)

// EncodeAdjacency compresses a CSR/CSC adjacency (offset array plus
// neighbour array, lists sorted ascending per vertex) into a byte
// stream: for each vertex, a varint degree, then the first neighbour
// as a varint, then varint gaps (successor minus predecessor; 0 gaps
// are legal so duplicate-free input is not required).
func EncodeAdjacency(index []int64, nbrs []uint32) []byte {
	numV := len(index) - 1
	// Heuristic initial capacity: ~2 bytes per edge + 1 per vertex.
	out := make([]byte, 0, len(nbrs)*2+numV)
	for v := 0; v < numV; v++ {
		lo, hi := index[v], index[v+1]
		out = binary.AppendUvarint(out, uint64(hi-lo))
		prev := uint64(0)
		for i := lo; i < hi; i++ {
			cur := uint64(nbrs[i])
			if i == lo {
				out = binary.AppendUvarint(out, cur)
			} else {
				out = binary.AppendUvarint(out, cur-prev)
			}
			prev = cur
		}
	}
	return out
}

// DecodeAdjacency reverses EncodeAdjacency. numV and numE give the
// expected shape; a mismatch or malformed stream returns an error.
func DecodeAdjacency(data []byte, numV int, numE int64) ([]int64, []uint32, error) {
	index := make([]int64, numV+1)
	// Each encoded value needs at least one byte, so cap the initial
	// allocation by the input size (hostile numE cannot force a huge
	// up-front allocation).
	capHint := numE
	if int64(len(data)) < capHint {
		capHint = int64(len(data))
	}
	nbrs := make([]uint32, 0, capHint)
	pos := 0
	next := func() (uint64, error) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("compress: truncated varint at offset %d", pos)
		}
		pos += n
		return v, nil
	}
	for v := 0; v < numV; v++ {
		deg, err := next()
		if err != nil {
			return nil, nil, err
		}
		if int64(deg) > numE-int64(len(nbrs)) {
			return nil, nil, fmt.Errorf("compress: vertex %d degree %d exceeds remaining edges", v, deg)
		}
		index[v+1] = index[v] + int64(deg)
		prev := uint64(0)
		for i := uint64(0); i < deg; i++ {
			gap, err := next()
			if err != nil {
				return nil, nil, err
			}
			var cur uint64
			if i == 0 {
				cur = gap
			} else {
				cur = prev + gap
			}
			if cur >= 1<<32 {
				return nil, nil, fmt.Errorf("compress: neighbour %d out of VID range", cur)
			}
			nbrs = append(nbrs, uint32(cur))
			prev = cur
		}
	}
	if pos != len(data) {
		return nil, nil, fmt.Errorf("compress: %d trailing bytes", len(data)-pos)
	}
	if int64(len(nbrs)) != numE {
		return nil, nil, fmt.Errorf("compress: decoded %d edges, want %d", len(nbrs), numE)
	}
	return index, nbrs, nil
}

// Ratio returns compressed bytes per edge for quick reporting.
func Ratio(encoded []byte, numE int64) float64 {
	if numE == 0 {
		return 0
	}
	return float64(len(encoded)) / float64(numE)
}
