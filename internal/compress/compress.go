// Package compress implements the light-weight graph-topology
// compression the paper lists as future work for shrinking iHTL's
// topology data (§6, citing the WebGraph framework's techniques):
// per-vertex delta encoding of sorted neighbour lists with LEB128
// varints. Sorted adjacency has small gaps on locality-friendly
// orderings, so gaps compress far below the flat 4 bytes per
// neighbour.
//
// Two layouts are provided. EncodeAdjacency/DecodeAdjacency produce a
// single stream for a whole CSR/CSC — the archival format used by
// cmd/ihtlconvert's "compressed" output. Chunked splits the same
// per-vertex streams at edge-count boundaries so an engine worker can
// decode one chunk at a time into a small cache-resident scratch
// buffer inside the traversal loop; this is the form the core engine
// executes directly (EngineOptions.BlockEncoding) and the v2 engine
// file stores.
package compress

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"ihtl/internal/unchecked"
)

// uvarintLen returns the encoded size of v in bytes without encoding.
func uvarintLen(v uint64) int {
	if v == 0 {
		return 1
	}
	return (bits.Len64(v) + 6) / 7
}

// estimateAdjCap returns an initial output-buffer capacity for
// encoding the given adjacency, computed from the input instead of the
// old flat 2·E+V guess (which over-reserved ~2× on tightly clustered
// orderings and under-reserved on scattered ones, forcing grows mid
// build). Degree-varint bytes are summed exactly (one cheap O(V)
// pass); gap bytes are extrapolated from the exact encoded width of a
// sample of rows, with a 1/8 + 16 byte safety margin so
// locality-friendly sorted inputs encode without a single grow.
func estimateAdjCap(index []int64, nbrs []uint32) int {
	numV := len(index) - 1
	if numV < 0 {
		return 0
	}
	totalE := index[numV] - index[0]
	degBytes := 0
	for v := 0; v < numV; v++ {
		degBytes += uvarintLen(uint64(index[v+1] - index[v]))
	}
	if totalE == 0 {
		return degBytes
	}

	// Sample up to 64 evenly spaced rows (or until 4096 edges seen)
	// and measure their exact gap-stream width.
	const maxRows, maxEdges = 64, 4096
	stride := numV / maxRows
	if stride < 1 {
		stride = 1
	}
	var sampleBytes, sampleEdges int64
	for v := 0; v < numV && sampleEdges < maxEdges; v += stride {
		lo, hi := index[v], index[v+1]
		prev := uint64(0)
		for i := lo; i < hi; i++ {
			cur := uint64(nbrs[i])
			sampleBytes += int64(uvarintLen(cur - prev))
			prev = cur
		}
		sampleEdges += hi - lo
	}
	if sampleEdges == 0 {
		// The stride only hit empty rows; fall back to a safe width.
		return degBytes + int(totalE)*3 + 16
	}
	est := sampleBytes * totalE / sampleEdges
	est += est/8 + 16
	return degBytes + int(est)
}

// appendAdjacency appends the per-vertex varint streams for rows
// [vLo, vHi) to dst: for each vertex a varint degree, the first
// neighbour as a varint, then varint gaps (successor minus
// predecessor; 0 gaps are legal so duplicate-free input is not
// required).
func appendAdjacency(dst []byte, index []int64, nbrs []uint32, vLo, vHi int) []byte {
	for v := vLo; v < vHi; v++ {
		lo, hi := index[v], index[v+1]
		dst = binary.AppendUvarint(dst, uint64(hi-lo))
		prev := uint64(0)
		for i := lo; i < hi; i++ {
			cur := uint64(nbrs[i])
			dst = binary.AppendUvarint(dst, cur-prev)
			prev = cur
		}
	}
	return dst
}

// EncodeAdjacency compresses a CSR/CSC adjacency (offset array plus
// neighbour array, lists sorted ascending per vertex) into one byte
// stream.
func EncodeAdjacency(index []int64, nbrs []uint32) []byte {
	numV := len(index) - 1
	out := make([]byte, 0, estimateAdjCap(index, nbrs))
	return appendAdjacency(out, index, nbrs, 0, numV)
}

// DecodeAdjacency reverses EncodeAdjacency. numV and numE give the
// expected shape; a mismatch or malformed stream returns an error.
func DecodeAdjacency(data []byte, numV int, numE int64) ([]int64, []uint32, error) {
	if numV < 0 || numE < 0 {
		return nil, nil, fmt.Errorf("compress: negative shape %d/%d", numV, numE)
	}
	index := make([]int64, numV+1)
	// Each encoded value needs at least one byte, so cap the initial
	// allocation by the input size (hostile numE cannot force a huge
	// up-front allocation).
	capHint := numE
	if int64(len(data)) < capHint {
		capHint = int64(len(data))
	}
	nbrs := make([]uint32, 0, capHint)
	pos := 0
	next := func() (uint64, error) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("compress: truncated varint at offset %d", pos)
		}
		pos += n
		return v, nil
	}
	for v := 0; v < numV; v++ {
		deg, err := next()
		if err != nil {
			return nil, nil, err
		}
		if int64(deg) > numE-int64(len(nbrs)) {
			return nil, nil, fmt.Errorf("compress: vertex %d degree %d exceeds remaining edges", v, deg)
		}
		index[v+1] = index[v] + int64(deg)
		prev := uint64(0)
		for i := uint64(0); i < deg; i++ {
			gap, err := next()
			if err != nil {
				return nil, nil, err
			}
			cur := prev + gap
			if cur >= 1<<32 {
				return nil, nil, fmt.Errorf("compress: neighbour %d out of VID range", cur)
			}
			nbrs = append(nbrs, uint32(cur))
			prev = cur
		}
	}
	if pos != len(data) {
		return nil, nil, fmt.Errorf("compress: %d trailing bytes", len(data)-pos)
	}
	if int64(len(nbrs)) != numE {
		return nil, nil, fmt.Errorf("compress: decoded %d edges, want %d", len(nbrs), numE)
	}
	return index, nbrs, nil
}

// EncodeIndex delta-encodes a monotone nondecreasing offset array
// (a CSR/CSC index) as varint gaps: the first value absolute, then
// successive differences. Used by the v2 engine file for offset
// tables that do not sit on the step hot path.
func EncodeIndex(index []int64) []byte {
	out := make([]byte, 0, len(index)+8)
	prev := int64(0)
	for _, v := range index {
		out = binary.AppendUvarint(out, uint64(v-prev))
		prev = v
	}
	return out
}

// DecodeIndex reverses EncodeIndex into n offsets. Malformed input —
// truncated varints, gaps whose running sum leaves int64 range,
// trailing bytes, or n exceeding what the stream could possibly hold —
// returns an error, never panics.
func DecodeIndex(data []byte, n int) ([]int64, error) {
	if n < 0 {
		return nil, fmt.Errorf("compress: negative index length %d", n)
	}
	// Each offset needs at least one byte: reject hostile n before
	// allocating.
	if n > len(data) {
		return nil, fmt.Errorf("compress: index length %d exceeds %d-byte stream", n, len(data))
	}
	out := make([]int64, n)
	pos := 0
	prev := uint64(0)
	for i := 0; i < n; i++ {
		gap, k := binary.Uvarint(data[pos:])
		if k <= 0 {
			return nil, fmt.Errorf("compress: truncated varint at offset %d", pos)
		}
		pos += k
		cur := prev + gap
		if cur < prev || cur > 1<<63-1 {
			return nil, fmt.Errorf("compress: offset %d overflows int64", i)
		}
		out[i] = int64(cur)
		prev = cur
	}
	if pos != len(data) {
		return nil, fmt.Errorf("compress: %d trailing bytes", len(data)-pos)
	}
	return out, nil
}

// Ratio returns compressed bytes per edge for quick reporting.
func Ratio(encoded []byte, numE int64) float64 {
	if numE == 0 {
		return 0
	}
	return float64(len(encoded)) / float64(numE)
}

// DefaultChunkEdges is the edge budget per encoded chunk: 4096 edges
// decode into a 16 KiB uint32 scratch plus a ≤16 KiB offset scratch,
// comfortably cache-resident per worker next to the hub buffer.
const DefaultChunkEdges = 4096

// Chunked is an adjacency encoded as per-vertex varint gap streams
// split into chunks of bounded edge count, so one chunk decodes into a
// fixed small scratch buffer. Chunk c covers source rows
// [SrcOff[c], SrcOff[c+1]) and bytes [ByteOff[c], ByteOff[c+1]) of
// Data; each row's stream is self-contained (degree varint, absolute
// first neighbour, then gaps), so chunks decode independently.
type Chunked struct {
	NumSrc   int   // rows covered (len of the original index minus 1)
	NumEdges int64 // total neighbours
	MaxSrcs  int   // max rows in any chunk: scratch offsets need MaxSrcs+1
	MaxEdges int   // max neighbours in any chunk: scratch needs MaxEdges
	SrcOff   []int32
	ByteOff  []int64
	Data     []byte
}

// Chunks returns the number of chunks.
func (ck *Chunked) Chunks() int { return len(ck.ByteOff) - 1 }

// EncodedBytes returns the total encoded size, including the chunk
// tables.
func (ck *Chunked) EncodedBytes() int64 {
	return int64(len(ck.Data)) + int64(len(ck.SrcOff))*4 + int64(len(ck.ByteOff))*8
}

// EncodeChunked compresses a CSR/CSC adjacency into chunks of at most
// targetEdges neighbours (and at most targetEdges rows, so both
// scratch arrays stay bounded); targetEdges <= 0 selects
// DefaultChunkEdges. A single row whose degree exceeds targetEdges
// becomes its own oversized chunk and MaxEdges reports it, so callers
// size scratch from MaxSrcs/MaxEdges, never from the target.
func EncodeChunked(index []int64, nbrs []uint32, targetEdges int) *Chunked {
	if targetEdges <= 0 {
		targetEdges = DefaultChunkEdges
	}
	numV := len(index) - 1
	if numV < 0 {
		numV = 0
	}
	ck := &Chunked{
		NumSrc:   numV,
		NumEdges: int64(len(nbrs)),
		SrcOff:   []int32{0},
		ByteOff:  []int64{0},
		Data:     make([]byte, 0, estimateAdjCap(index, nbrs)),
	}
	v := 0
	for v < numV {
		lo := v
		edges := int64(0)
		for v < numV {
			deg := index[v+1] - index[v]
			if v > lo && (edges+deg > int64(targetEdges) || v-lo >= targetEdges) {
				break
			}
			edges += deg
			v++
		}
		ck.Data = appendAdjacency(ck.Data, index, nbrs, lo, v)
		ck.SrcOff = append(ck.SrcOff, int32(v))
		ck.ByteOff = append(ck.ByteOff, int64(len(ck.Data)))
		if v-lo > ck.MaxSrcs {
			ck.MaxSrcs = v - lo
		}
		if int(edges) > ck.MaxEdges {
			ck.MaxEdges = int(edges)
		}
	}
	return ck
}

// DecodeChunkCSR decodes chunk c into caller scratch: sIdx (length at
// least MaxSrcs+1) receives local CSR offsets, dsts (length at least
// MaxEdges) the neighbours. Returns the row and edge counts. The
// stream is trusted and the decode is unchecked (//ihtl:nobce): data
// of external origin MUST pass Validate at load time — parseV2 does —
// after which every cursor and count below stays inside its slice by
// the validated chunk-table invariants. The -tags=ihtlchecked build
// restores checked indexing here for debugging.
//
//ihtl:noalloc
//ihtl:nobce
//ihtl:noescape
func (ck *Chunked) DecodeChunkCSR(c int, sIdx []int32, dsts []uint32) (nsrc, ne int) {
	data := ck.Data
	pos := unchecked.At(ck.ByteOff, c)
	nsrc = int(unchecked.At(ck.SrcOff, c+1) - unchecked.At(ck.SrcOff, c))
	e := 0
	for s := 0; s < nsrc; s++ {
		unchecked.SetAt(sIdx, s, int32(e))
		var deg uint64
		var shift uint
		for {
			b := unchecked.At(data, int(pos))
			pos++
			if b < 0x80 {
				deg |= uint64(b) << shift
				break
			}
			deg |= uint64(b&0x7f) << shift
			shift += 7
		}
		prev := uint32(0)
		for i := uint64(0); i < deg; i++ {
			var gap uint64
			shift = 0
			for {
				b := unchecked.At(data, int(pos))
				pos++
				if b < 0x80 {
					gap |= uint64(b) << shift
					break
				}
				gap |= uint64(b&0x7f) << shift
				shift += 7
			}
			prev += uint32(gap)
			unchecked.SetAt(dsts, e, prev)
			e++
		}
	}
	unchecked.SetAt(sIdx, nsrc, int32(e))
	return nsrc, e
}

// Validate fully decodes every chunk with a checked reader and
// verifies the structure: monotone chunk tables, per-chunk streams
// that consume exactly their byte range, every neighbour below maxDst,
// totals matching NumSrc/NumEdges, and MaxSrcs/MaxEdges covering the
// actual maxima. A Chunked of external origin (a v2 engine file) must
// pass Validate before DecodeChunkCSR may trust it.
//
//ihtl:nopanic
func (ck *Chunked) Validate(maxDst uint32) error {
	nc := len(ck.ByteOff) - 1
	if nc < 0 || len(ck.SrcOff) != nc+1 {
		return fmt.Errorf("compress: chunk tables %d/%d rows mismatched", len(ck.SrcOff), len(ck.ByteOff))
	}
	if ck.SrcOff[0] != 0 || ck.ByteOff[0] != 0 {
		return fmt.Errorf("compress: chunk tables must start at 0")
	}
	if int(ck.SrcOff[nc]) != ck.NumSrc {
		return fmt.Errorf("compress: chunk rows end at %d, want %d", ck.SrcOff[nc], ck.NumSrc)
	}
	if ck.ByteOff[nc] != int64(len(ck.Data)) {
		return fmt.Errorf("compress: chunk bytes end at %d, want %d", ck.ByteOff[nc], len(ck.Data))
	}
	// Scratch buffers are sized from these, so bound them before any
	// caller allocates.
	if ck.NumSrc < 0 || ck.NumEdges < 0 {
		return fmt.Errorf("compress: negative shape %d/%d", ck.NumSrc, ck.NumEdges)
	}
	if ck.MaxSrcs < 0 || ck.MaxSrcs > ck.NumSrc {
		return fmt.Errorf("compress: MaxSrcs %d outside [0, %d]", ck.MaxSrcs, ck.NumSrc)
	}
	if ck.MaxEdges < 0 || int64(ck.MaxEdges) > ck.NumEdges {
		return fmt.Errorf("compress: MaxEdges %d outside [0, %d]", ck.MaxEdges, ck.NumEdges)
	}
	var totalE int64
	for c := 0; c < nc; c++ {
		nsrc := int(ck.SrcOff[c+1]) - int(ck.SrcOff[c])
		bLo, bHi := ck.ByteOff[c], ck.ByteOff[c+1]
		if nsrc < 0 || bLo > bHi || bHi > int64(len(ck.Data)) {
			return fmt.Errorf("compress: chunk %d has negative extent", c)
		}
		if nsrc > ck.MaxSrcs {
			return fmt.Errorf("compress: chunk %d rows %d exceed MaxSrcs %d", c, nsrc, ck.MaxSrcs)
		}
		data := ck.Data[bLo:bHi]
		pos := 0
		ce := int64(0)
		for s := 0; s < nsrc; s++ {
			deg, k := binary.Uvarint(data[pos:])
			if k <= 0 {
				return fmt.Errorf("compress: chunk %d truncated at row %d", c, s)
			}
			pos += k
			if deg > uint64(ck.MaxEdges)-uint64(ce) {
				return fmt.Errorf("compress: chunk %d edges exceed MaxEdges %d", c, ck.MaxEdges)
			}
			prev := uint64(0)
			for i := uint64(0); i < deg; i++ {
				gap, k := binary.Uvarint(data[pos:])
				if k <= 0 {
					return fmt.Errorf("compress: chunk %d truncated in row %d", c, s)
				}
				pos += k
				cur := prev + gap
				if cur >= uint64(maxDst) {
					return fmt.Errorf("compress: chunk %d neighbour %d out of range %d", c, cur, maxDst)
				}
				prev = cur
			}
			ce += int64(deg)
		}
		if pos != len(data) {
			return fmt.Errorf("compress: chunk %d has %d trailing bytes", c, len(data)-pos)
		}
		totalE += ce
	}
	if totalE != ck.NumEdges {
		return fmt.Errorf("compress: chunks hold %d edges, want %d", totalE, ck.NumEdges)
	}
	return nil
}
