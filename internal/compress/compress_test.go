package compress

import (
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, index []int64, nbrs []uint32) {
	t.Helper()
	enc := EncodeAdjacency(index, nbrs)
	gotIdx, gotNbrs, err := DecodeAdjacency(enc, len(index)-1, int64(len(nbrs)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range index {
		if gotIdx[i] != index[i] {
			t.Fatalf("index[%d] = %d, want %d", i, gotIdx[i], index[i])
		}
	}
	for i := range nbrs {
		if gotNbrs[i] != nbrs[i] {
			t.Fatalf("nbrs[%d] = %d, want %d", i, gotNbrs[i], nbrs[i])
		}
	}
}

func TestRoundTripBasics(t *testing.T) {
	roundTrip(t, []int64{0}, nil)                  // empty graph
	roundTrip(t, []int64{0, 0, 0}, nil)            // no edges
	roundTrip(t, []int64{0, 3}, []uint32{1, 5, 9}) // one vertex
	roundTrip(t, []int64{0, 2, 2, 5}, []uint32{0, 7, 1, 2, 4_000_000_000})
}

func TestRoundTripProperty(t *testing.T) {
	f := func(degsRaw []uint8, seed uint32) bool {
		// Build a random sorted adjacency.
		var index []int64
		index = append(index, 0)
		var nbrs []uint32
		x := uint32(seed)
		for _, dr := range degsRaw {
			deg := int(dr % 17)
			cur := uint32(0)
			for i := 0; i < deg; i++ {
				x = x*1664525 + 1013904223
				cur += x % 1000
				nbrs = append(nbrs, cur)
			}
			index = append(index, index[len(index)-1]+int64(deg))
		}
		enc := EncodeAdjacency(index, nbrs)
		gotIdx, gotNbrs, err := DecodeAdjacency(enc, len(index)-1, int64(len(nbrs)))
		if err != nil {
			return false
		}
		for i := range index {
			if gotIdx[i] != index[i] {
				return false
			}
		}
		for i := range nbrs {
			if gotNbrs[i] != nbrs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompressionBeatsFlatOnLocalLists(t *testing.T) {
	// Dense local neighbourhoods (small gaps): the realistic case.
	n := 1000
	index := make([]int64, n+1)
	var nbrs []uint32
	for v := 0; v < n; v++ {
		for k := 0; k < 20; k++ {
			nbrs = append(nbrs, uint32(v+k))
		}
		index[v+1] = int64(len(nbrs))
	}
	enc := EncodeAdjacency(index, nbrs)
	flat := len(nbrs)*4 + len(index)*8
	if len(enc) >= flat/2 {
		t.Fatalf("compression too weak: %d vs flat %d", len(enc), flat)
	}
	if r := Ratio(enc, int64(len(nbrs))); r <= 0 || r >= 4 {
		t.Fatalf("ratio = %v bytes/edge", r)
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	index := []int64{0, 3}
	nbrs := []uint32{1, 5, 9}
	enc := EncodeAdjacency(index, nbrs)

	if _, _, err := DecodeAdjacency(enc[:len(enc)-1], 1, 3); err == nil {
		t.Error("truncated stream accepted")
	}
	if _, _, err := DecodeAdjacency(enc, 1, 2); err == nil {
		t.Error("wrong edge count accepted")
	}
	if _, _, err := DecodeAdjacency(append(enc, 0), 1, 3); err == nil {
		t.Error("trailing bytes accepted")
	}
	if _, _, err := DecodeAdjacency([]byte{0xFF}, 1, 3); err == nil {
		t.Error("bare continuation byte accepted")
	}
	// Degree exceeding total edges.
	bad := EncodeAdjacency([]int64{0, 3}, []uint32{1, 2, 3})
	if _, _, err := DecodeAdjacency(bad, 1, 1); err == nil {
		t.Error("oversized degree accepted")
	}
}

func TestRatioEmpty(t *testing.T) {
	if Ratio(nil, 0) != 0 {
		t.Fatal("Ratio of empty should be 0")
	}
}
