// Package xrand provides small, fast, deterministic random number
// generators and samplers used by the graph generators and the
// property-based tests.
//
// The generators in this package are deliberately simple and fully
// reproducible: given the same seed they emit the same stream on every
// platform, which makes every synthetic dataset in this repository a
// pure function of its parameters. math/rand is avoided so that future
// Go releases cannot silently change experiment inputs.
package xrand

import "math/bits"

// SplitMix64 is the splittable PRNG of Steele et al. (OOPSLA 2014).
// It passes BigCrush, has a period of 2^64 and is primarily used here
// to seed and to hash integers into well-distributed 64-bit values.
//
// The zero value is a valid generator seeded with 0.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next 64-bit value in the stream.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Mix64 hashes x through one SplitMix64 round. It is a bijection on
// uint64 and is used to derive independent per-worker seeds.
func Mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Xoshiro256 implements xoshiro256++ (Blackman & Vigna, 2019), the
// general-purpose generator used for all sampling in this repository.
type Xoshiro256 struct {
	s [4]uint64
}

// New returns a Xoshiro256 generator seeded from seed via SplitMix64,
// as recommended by the xoshiro authors.
func New(seed uint64) *Xoshiro256 {
	sm := NewSplitMix64(seed)
	var x Xoshiro256
	for i := range x.s {
		x.s[i] = sm.Next()
	}
	// An all-zero state is the one invalid state; SplitMix64 cannot
	// produce four consecutive zeros, but guard anyway.
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = 0x9E3779B97F4A7C15
	}
	return &x
}

// Uint64 returns the next value in the xoshiro256++ stream.
func (x *Xoshiro256) Uint64() uint64 {
	result := bits.RotateLeft64(x.s[0]+x.s[3], 23) + x.s[0]
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = bits.RotateLeft64(x.s[3], 45)
	return result
}

// Uint32 returns a uniformly distributed 32-bit value.
func (x *Xoshiro256) Uint32() uint32 {
	return uint32(x.Uint64() >> 32)
}

// Intn returns a uniformly distributed int in [0, n). It panics if
// n <= 0. Lemire's multiply-shift rejection method is used to avoid
// modulo bias without divisions in the common case.
func (x *Xoshiro256) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	return int(x.Uint64n(uint64(n)))
}

// Uint64n returns a uniformly distributed uint64 in [0, n).
// It panics if n == 0.
func (x *Xoshiro256) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n called with n == 0")
	}
	// Lemire 2018: multiply-shift with rejection.
	hi, lo := bits.Mul64(x.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(x.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (x *Xoshiro256) Float64() float64 {
	return float64(x.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n) as a slice,
// generated with a Fisher-Yates shuffle.
func (x *Xoshiro256) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	x.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap,
// mirroring the contract of math/rand.Shuffle.
func (x *Xoshiro256) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := x.Intn(i + 1)
		swap(i, j)
	}
}

// Jump advances the generator by 2^128 steps, equivalent to 2^128
// calls to Uint64. It is used to split one seed into non-overlapping
// per-worker streams.
func (x *Xoshiro256) Jump() {
	jump := [4]uint64{0x180EC6D33CFD0ABA, 0xD5A61266F0C9392C, 0xA9582618E03FC9AA, 0x39ABDC4529B1661C}
	var s0, s1, s2, s3 uint64
	for _, j := range jump {
		for b := 0; b < 64; b++ {
			if j&(1<<uint(b)) != 0 {
				s0 ^= x.s[0]
				s1 ^= x.s[1]
				s2 ^= x.s[2]
				s3 ^= x.s[3]
			}
			x.Uint64()
		}
	}
	x.s[0], x.s[1], x.s[2], x.s[3] = s0, s1, s2, s3
}

// Split returns a new generator whose stream is guaranteed not to
// overlap with the receiver's next 2^128 outputs. The receiver is
// advanced past the returned generator's stream.
func (x *Xoshiro256) Split() *Xoshiro256 {
	child := *x
	x.Jump()
	return &child
}
