package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	s := NewSplitMix64(1234567)
	got := []uint64{s.Next(), s.Next(), s.Next()}
	// Determinism: re-seeding reproduces the stream.
	s2 := NewSplitMix64(1234567)
	for i, g := range got {
		if n := s2.Next(); n != g {
			t.Fatalf("stream not deterministic at %d: %x vs %x", i, g, n)
		}
	}
	// Distinctness: consecutive outputs must differ.
	if got[0] == got[1] || got[1] == got[2] {
		t.Fatalf("suspicious repeated outputs: %x", got)
	}
}

func TestMix64Bijection(t *testing.T) {
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 10000; i++ {
		h := Mix64(i)
		if prev, dup := seen[h]; dup {
			t.Fatalf("Mix64 collision: Mix64(%d) == Mix64(%d)", i, prev)
		}
		seen[h] = i
	}
}

func TestXoshiroDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("divergence at step %d: %x vs %x", i, x, y)
		}
	}
	c := New(43)
	if a0, c0 := New(42).Uint64(), c.Uint64(); a0 == c0 {
		t.Fatalf("different seeds produced identical first output %x", a0)
	}
}

func TestUint64nBounds(t *testing.T) {
	rng := New(7)
	for _, n := range []uint64{1, 2, 3, 10, 1 << 20, 1<<63 + 12345} {
		for i := 0; i < 200; i++ {
			if v := rng.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nUniform(t *testing.T) {
	rng := New(99)
	const n = 8
	const draws = 80000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[rng.Intn(n)]++
	}
	expect := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-expect) > 5*math.Sqrt(expect) {
			t.Errorf("bucket %d count %d too far from expected %.0f", i, c, expect)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		rng := New(seed)
		n := 1 + rng.Intn(500)
		p := rng.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitStreamsDiffer(t *testing.T) {
	parent := New(5)
	child := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams overlap: %d/100 identical draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	rng := New(11)
	for i := 0; i < 10000; i++ {
		f := rng.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestZipfRangeAndSkew(t *testing.T) {
	rng := New(3)
	const n = 1000
	z := NewZipf(rng, 1.5, 1, n)
	counts := make([]int, n)
	const draws = 200000
	for i := 0; i < draws; i++ {
		v := z.Uint64()
		if v >= n {
			t.Fatalf("Zipf value %d out of range", v)
		}
		counts[v]++
	}
	// Rank 0 must dominate: a power law concentrates mass at the head.
	if counts[0] < counts[1] || counts[0] < draws/20 {
		t.Fatalf("Zipf head not dominant: counts[0]=%d counts[1]=%d", counts[0], counts[1])
	}
	// Monotone-ish decay across decades.
	head, tail := 0, 0
	for i := 0; i < 10; i++ {
		head += counts[i]
	}
	for i := n - 10; i < n; i++ {
		tail += counts[i]
	}
	if head <= tail*10 {
		t.Fatalf("Zipf tail too heavy: head=%d tail=%d", head, tail)
	}
}

func TestZipfInvalidParams(t *testing.T) {
	cases := []func(){
		func() { NewZipf(nil, 1.5, 1, 10) },
		func() { NewZipf(New(1), 1.0, 1, 10) },
		func() { NewZipf(New(1), 1.5, 0.5, 10) },
		func() { NewZipf(New(1), 1.5, 1, 0) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestPowerLawDegreesBounds(t *testing.T) {
	rng := New(17)
	degs := PowerLawDegrees(rng, 5000, 2.1, 1, 1000)
	if len(degs) != 5000 {
		t.Fatalf("wrong length %d", len(degs))
	}
	maxSeen := 0
	for _, d := range degs {
		if d < 1 || d > 1000 {
			t.Fatalf("degree %d out of [1,1000]", d)
		}
		if d > maxSeen {
			maxSeen = d
		}
	}
	// With 5000 draws at alpha=2.1 the tail should be exercised.
	if maxSeen < 50 {
		t.Fatalf("power law tail never sampled, max=%d", maxSeen)
	}
	// Skew: median must be tiny relative to max.
	small := 0
	for _, d := range degs {
		if d <= 3 {
			small++
		}
	}
	if small < len(degs)/2 {
		t.Fatalf("degree distribution not skewed: only %d/%d small degrees", small, len(degs))
	}
}

func TestShuffleDegenerateCases(t *testing.T) {
	rng := New(2)
	rng.Shuffle(0, func(i, j int) { t.Fatal("swap called for n=0") })
	rng.Shuffle(1, func(i, j int) { t.Fatal("swap called for n=1") })
}

func BenchmarkXoshiroUint64(b *testing.B) {
	rng := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += rng.Uint64()
	}
	_ = sink
}

func TestUint32Distribution(t *testing.T) {
	rng := New(23)
	var hi, lo int
	for i := 0; i < 10000; i++ {
		if rng.Uint32() >= 1<<31 {
			hi++
		} else {
			lo++
		}
	}
	if hi < 4500 || lo < 4500 {
		t.Fatalf("Uint32 skewed: hi=%d lo=%d", hi, lo)
	}
}

func TestPowerLawDegreesInvalid(t *testing.T) {
	cases := []func(){
		func() { PowerLawDegrees(New(1), -1, 2, 1, 10) },
		func() { PowerLawDegrees(New(1), 5, 1.0, 1, 10) },
		func() { PowerLawDegrees(New(1), 5, 2, -1, 10) },
		func() { PowerLawDegrees(New(1), 5, 2, 10, 5) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
	if got := PowerLawDegrees(New(1), 0, 2, 1, 10); len(got) != 0 {
		t.Fatal("n=0 should give empty slice")
	}
}
