package xrand

import "math"

// Zipf samples integers in [0, n) with probability proportional to
// 1/(k+1)^s, i.e. a power-law over ranks. It is used by the web-graph
// generator to pick hub targets with a heavy-tailed distribution.
//
// The implementation uses the rejection-inversion method of Hörmann
// and Derflinger ("Rejection-inversion to generate variates from
// monotone discrete distributions", 1996), the same algorithm as
// math/rand.Zipf, reimplemented on top of Xoshiro256 for determinism.
type Zipf struct {
	rng                 *Xoshiro256
	imax                float64
	v                   float64
	q                   float64
	s                   float64
	oneminusQ           float64
	oneminusQinv        float64
	hxm                 float64
	hx0minusHxm         float64
	generalizedHarmonic float64
}

// NewZipf returns a Zipf sampler over [0, n) with exponent s > 1 and
// value shift v >= 1. Probability of k is proportional to
// (v + k)**(-s). It panics on invalid parameters.
func NewZipf(rng *Xoshiro256, s float64, v float64, n uint64) *Zipf {
	if rng == nil || s <= 1 || v < 1 || n == 0 {
		panic("xrand: invalid Zipf parameters")
	}
	z := &Zipf{rng: rng, s: s, v: v, imax: float64(n - 1)}
	z.q = s
	z.oneminusQ = 1 - z.q
	z.oneminusQinv = 1 / z.oneminusQ
	z.hxm = z.h(z.imax + 0.5)
	z.hx0minusHxm = z.h(0.5) - math.Exp(math.Log(z.v)*(-z.q)) - z.hxm
	return z
}

func (z *Zipf) h(x float64) float64 {
	return math.Exp(z.oneminusQ*math.Log(z.v+x)) * z.oneminusQinv
}

func (z *Zipf) hinv(x float64) float64 {
	return math.Exp(z.oneminusQinv*math.Log(z.oneminusQ*x)) - z.v
}

// Uint64 returns a Zipf-distributed value in [0, n).
func (z *Zipf) Uint64() uint64 {
	for {
		r := z.rng.Float64()
		ur := z.hxm + r*z.hx0minusHxm
		x := z.hinv(ur)
		k := math.Floor(x + 0.5)
		if k-x <= z.s {
			return uint64(k)
		}
		if ur >= z.h(k+0.5)-math.Exp(-math.Log(k+z.v)*z.q) {
			return uint64(k)
		}
	}
}

// PowerLawDegrees draws n integer degrees whose distribution follows a
// discrete power law with exponent alpha (> 1), truncated to
// [minDeg, maxDeg]. The result is deterministic in (rng state, args).
// It is used to synthesise degree sequences with controllable skew.
func PowerLawDegrees(rng *Xoshiro256, n int, alpha float64, minDeg, maxDeg int) []int {
	if n < 0 || alpha <= 1 || minDeg < 0 || maxDeg < minDeg {
		panic("xrand: invalid PowerLawDegrees parameters")
	}
	out := make([]int, n)
	if n == 0 {
		return out
	}
	// Inverse-CDF sampling of a continuous power law, then floor.
	// P(X > x) = (x/minDeg)^(1-alpha) for x >= minDeg.
	lo := float64(minDeg)
	if lo < 1 {
		lo = 1
	}
	hi := float64(maxDeg)
	oneMinusAlpha := 1 - alpha
	loPow := math.Pow(lo, oneMinusAlpha)
	hiPow := math.Pow(hi, oneMinusAlpha)
	for i := range out {
		u := rng.Float64()
		x := math.Pow(loPow+u*(hiPow-loPow), 1/oneMinusAlpha)
		d := int(x)
		if d < minDeg {
			d = minDeg
		}
		if d > maxDeg {
			d = maxDeg
		}
		out[i] = d
	}
	return out
}
