package trace

import (
	"ihtl/internal/core"
	"ihtl/internal/graph"
)

// Extractors for the RANDOM-access streams of the two traversals —
// the accesses whose locality the paper's argument concerns. (The
// sequential topology streams have trivial reuse behaviour and are
// prefetch-covered; including them would only dilute the signal.)

// PullRandomStream returns the cache-line stream of pull traversal's
// random source-data reads: for each destination v in ID order, one
// access per in-neighbour's data line (lineBytes per line,
// vertexBytes per vertex).
func PullRandomStream(g *graph.Graph, vertexBytes, lineBytes int) []uint64 {
	out := make([]uint64, 0, g.NumE)
	perLine := uint64(lineBytes / vertexBytes)
	if perLine == 0 {
		perLine = 1
	}
	for v := 0; v < g.NumV; v++ {
		for _, u := range g.In(graph.VID(v)) {
			out = append(out, uint64(u)/perLine)
		}
	}
	return out
}

// IHTLRandomStream returns the cache-line stream of iHTL's random
// accesses under Algorithm 3: the per-thread buffer updates of the
// flipped blocks (hub lines, single-thread trace) followed by the
// sparse block's random source reads. Buffer lines live in a
// separate address region from vertex data.
func IHTLRandomStream(ih *core.IHTL, vertexBytes, lineBytes int) []uint64 {
	perLine := uint64(lineBytes / vertexBytes)
	if perLine == 0 {
		perLine = 1
	}
	out := make([]uint64, 0, ih.NumE)
	// Region split: buffer lines are offset beyond all data lines.
	bufferBase := uint64(ih.NumV)/perLine + 2
	for b := range ih.Blocks {
		fb := &ih.Blocks[b]
		for s := 0; s < ih.NumPushSources(); s++ {
			for i := fb.Index[s]; i < fb.Index[s+1]; i++ {
				out = append(out, bufferBase+uint64(fb.Dsts[i])/perLine)
			}
		}
	}
	sp := &ih.Sparse
	n := ih.NumV - sp.DestLo
	for i := 0; i < n; i++ {
		for j := sp.Index[i]; j < sp.Index[i+1]; j++ {
			out = append(out, uint64(sp.Srcs[j])/perLine)
		}
	}
	return out
}
