package trace

import (
	"testing"
	"testing/quick"

	"ihtl/internal/core"
	"ihtl/internal/gen"
	"ihtl/internal/graph"
)

func TestReuseDistancesKnownStreams(t *testing.T) {
	// a b a : distance of second 'a' is 1 (only b in between).
	d := ReuseDistances([]uint64{1, 2, 1})
	want := []int64{Infinite, Infinite, 1}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("d = %v, want %v", d, want)
		}
	}
	// Immediate reuse: distance 0.
	d = ReuseDistances([]uint64{5, 5, 5})
	if d[1] != 0 || d[2] != 0 {
		t.Fatalf("immediate reuse: %v", d)
	}
	// Duplicate intermediates count once: a b b a -> distance 1.
	d = ReuseDistances([]uint64{1, 2, 2, 1})
	if d[3] != 1 {
		t.Fatalf("a b b a distance = %d, want 1", d[3])
	}
	// Cyclic sweep over k lines: steady-state distance k-1.
	stream := make([]uint64, 0, 40)
	for pass := 0; pass < 4; pass++ {
		for line := uint64(0); line < 10; line++ {
			stream = append(stream, line)
		}
	}
	d = ReuseDistances(stream)
	for i := 10; i < len(d); i++ {
		if d[i] != 9 {
			t.Fatalf("cyclic distance at %d = %d, want 9", i, d[i])
		}
	}
	if len(ReuseDistances(nil)) != 0 {
		t.Fatal("empty stream should give empty result")
	}
}

// referenceReuse computes stack distance by brute force.
func referenceReuse(stream []uint64) []int64 {
	out := make([]int64, len(stream))
	for i, line := range stream {
		prev := -1
		for j := i - 1; j >= 0; j-- {
			if stream[j] == line {
				prev = j
				break
			}
		}
		if prev < 0 {
			out[i] = Infinite
			continue
		}
		distinct := map[uint64]bool{}
		for j := prev + 1; j < i; j++ {
			distinct[stream[j]] = true
		}
		out[i] = int64(len(distinct))
	}
	return out
}

func TestReuseDistancesMatchesReference(t *testing.T) {
	f := func(raw []uint8) bool {
		stream := make([]uint64, len(raw))
		for i, r := range raw {
			stream[i] = uint64(r % 16)
		}
		got := ReuseDistances(stream)
		want := referenceReuse(stream)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramAndHitRatio(t *testing.T) {
	d := []int64{Infinite, 0, 1, 2, 5, 100, Infinite}
	h := NewHistogram(d)
	if h.Cold != 2 || h.Total != 7 {
		t.Fatalf("histogram %+v", h)
	}
	// Buckets: [0,2): {0,1} = 2; [2,4): {2} = 1; [4,8): {5} = 1;
	// [64,128): {100} = 1.
	if h.Buckets[0] != 2 || h.Buckets[1] != 1 || h.Buckets[2] != 1 || h.Buckets[6] != 1 {
		t.Fatalf("buckets %v", h.Buckets)
	}
	if r := HitRatioAt(d, 3); r != 3.0/7 {
		t.Fatalf("HitRatioAt(3) = %v", r)
	}
	if HitRatioAt(nil, 10) != 0 {
		t.Fatal("empty hit ratio should be 0")
	}
	if m := MedianFinite(d); m != 2 {
		t.Fatalf("median = %d", m)
	}
	if MedianFinite([]int64{Infinite}) != 0 {
		t.Fatal("all-cold median should be 0")
	}
}

func TestIHTLImprovesHubReuseDistance(t *testing.T) {
	// The paper's claim in reuse-distance form: iHTL's random-access
	// stream must hit far more often than pull's at the L2-equivalent
	// capacity on a hubby graph larger than that capacity.
	g, err := gen.RMAT(gen.RMATConfig{
		Scale: 14, EdgeFactor: 12, A: 0.57, B: 0.19, C: 0.19, Noise: 0.1, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	const vertexBytes, lineBytes = 8, 64
	ih, err := core.Build(g, core.Params{CacheBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	pull := ReuseDistances(PullRandomStream(g, vertexBytes, lineBytes))
	ihtl := ReuseDistances(IHTLRandomStream(ih, vertexBytes, lineBytes))

	capLines := int64((16 << 10) / lineBytes) // lines in the scaled L2
	pullHit := HitRatioAt(pull, capLines)
	ihtlHit := HitRatioAt(ihtl, capLines)
	if ihtlHit < pullHit+0.2 {
		t.Fatalf("iHTL hit ratio %.3f not well above pull %.3f at L2 capacity", ihtlHit, pullHit)
	}
}

func TestStreamLengthsMatchEdges(t *testing.T) {
	g := graph.PaperExample()
	s := PullRandomStream(g, 8, 64)
	if int64(len(s)) != g.NumE {
		t.Fatalf("pull stream %d accesses, want %d", len(s), g.NumE)
	}
	ih, err := core.Build(g, core.Params{HubsPerBlock: 2})
	if err != nil {
		t.Fatal(err)
	}
	is := IHTLRandomStream(ih, 8, 64)
	if int64(len(is)) != g.NumE {
		t.Fatalf("iHTL stream %d accesses, want %d", len(is), g.NumE)
	}
}
