// Package trace quantifies temporal locality via reuse distance (LRU
// stack distance): for each access to a cache line, the number of
// distinct lines touched since its previous access. A fully
// associative LRU cache of capacity C hits exactly the accesses with
// reuse distance < C, so the reuse-distance CDF characterises a
// stream's locality for EVERY cache size at once — the precise,
// cache-independent form of the paper's in-hub temporal-locality
// argument: pull traversal gives hub-source reads huge reuse
// distances, iHTL's flipped blocks give hub-buffer writes tiny ones.
package trace

import "sort"

// Infinite marks a cold (first) access in reuse-distance output.
const Infinite = int64(-1)

// ReuseDistances computes the exact LRU stack distance of every
// access in the line-address stream, in O(N log N) time using a
// Fenwick tree over access timestamps (Bennett & Kruskal's method).
// Element i of the result is the reuse distance of stream[i], or
// Infinite for a first access.
func ReuseDistances(stream []uint64) []int64 {
	n := len(stream)
	out := make([]int64, n)
	lastPos := make(map[uint64]int, 1024)
	// bit[t] = 1 if the access at timestamp t is the MOST RECENT
	// access to its line; prefix sums count distinct lines.
	bit := newFenwick(n)
	for i, line := range stream {
		if prev, seen := lastPos[line]; seen {
			// Distinct lines touched strictly after prev: sum of
			// markers in (prev, i).
			out[i] = int64(bit.sum(i-1) - bit.sum(prev))
			bit.add(prev, -1)
		} else {
			out[i] = Infinite
		}
		bit.add(i, 1)
		lastPos[line] = i
	}
	return out
}

// fenwick is a 0-indexed Fenwick (binary indexed) tree.
type fenwick struct {
	tree []int
}

func newFenwick(n int) *fenwick { return &fenwick{tree: make([]int, n+1)} }

func (f *fenwick) add(i, delta int) {
	for i++; i < len(f.tree); i += i & (-i) {
		f.tree[i] += delta
	}
}

// sum returns the prefix sum over [0, i].
func (f *fenwick) sum(i int) int {
	s := 0
	for i++; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}

// Histogram buckets reuse distances by powers of two.
type Histogram struct {
	// Cold counts first accesses (infinite distance).
	Cold int
	// Buckets[i] counts accesses with distance in [2^i, 2^(i+1));
	// Buckets[0] covers distances 0 and 1.
	Buckets []int
	// Total is the access count.
	Total int
}

// NewHistogram builds the histogram of a distance sequence.
func NewHistogram(distances []int64) Histogram {
	h := Histogram{Total: len(distances)}
	for _, d := range distances {
		if d == Infinite {
			h.Cold++
			continue
		}
		b := 0
		for x := d; x > 1; x >>= 1 {
			b++
		}
		for len(h.Buckets) <= b {
			h.Buckets = append(h.Buckets, 0)
		}
		h.Buckets[b]++
	}
	return h
}

// HitRatioAt returns the fraction of accesses a fully associative LRU
// cache of the given line capacity would hit (distance < capacity;
// cold misses count as misses). Computed from raw distances for
// exactness.
func HitRatioAt(distances []int64, capacity int64) float64 {
	if len(distances) == 0 {
		return 0
	}
	hits := 0
	for _, d := range distances {
		if d != Infinite && d < capacity {
			hits++
		}
	}
	return float64(hits) / float64(len(distances))
}

// MedianFinite returns the median of the finite distances (0 when
// none exist).
func MedianFinite(distances []int64) int64 {
	finite := make([]int64, 0, len(distances))
	for _, d := range distances {
		if d != Infinite {
			finite = append(finite, d)
		}
	}
	if len(finite) == 0 {
		return 0
	}
	sort.Slice(finite, func(i, j int) bool { return finite[i] < finite[j] })
	return finite[len(finite)/2]
}
