package cache

// AddressSpace hands out non-overlapping simulated address regions for
// the arrays a kernel touches, so trace-driven simulations can refer
// to "element i of array X" without aliasing between arrays.
type AddressSpace struct {
	next uint64
}

// Region is a named contiguous range of simulated addresses with a
// fixed element size.
type Region struct {
	Base     uint64
	ElemSize uint64
	Len      int
}

// Alloc reserves a region of n elements of elemSize bytes, aligned to
// 4096 (page) boundaries to keep regions from sharing lines.
func (a *AddressSpace) Alloc(n int, elemSize int) Region {
	const align = 4096
	a.next = (a.next + align - 1) &^ (align - 1)
	r := Region{Base: a.next, ElemSize: uint64(elemSize), Len: n}
	a.next += uint64(n) * uint64(elemSize)
	return r
}

// Addr returns the simulated address of element i.
func (r Region) Addr(i int) uint64 {
	return r.Base + uint64(i)*r.ElemSize
}

// Bytes returns the total size of the region in bytes.
func (r Region) Bytes() uint64 {
	return uint64(r.Len) * r.ElemSize
}
