// Package cache implements a software-simulated processor cache
// hierarchy. The paper measures locality with PAPI hardware counters
// (L2/L3 misses, Table 3; per-degree LLC miss rates, Figure 1); Go has
// no portable access to hardware performance counters, so this package
// substitutes a deterministic trace-driven simulator: kernels replay
// their memory reference streams against a configurable multi-level
// set-associative LRU hierarchy modelled on the paper's Xeon Gold 6130
// (32 KB L1, 1 MB L2, 22 MB shared L3, NINE, 64-byte lines).
//
// The simulator is intentionally simple — no MESI, no prefetcher, no
// timing — because the phenomenon under study (whether the working set
// of random accesses fits a level) is purely a capacity/associativity
// question.
package cache

import "fmt"

// Level identifies a cache level in a Hierarchy.
type Level int

// Cache levels. The memory "level" counts accesses that missed every
// cache level.
const (
	L1 Level = iota
	L2
	L3
	Memory
)

func (l Level) String() string {
	switch l {
	case L1:
		return "L1"
	case L2:
		return "L2"
	case L3:
		return "L3"
	case Memory:
		return "Memory"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// LevelConfig sizes one cache level.
type LevelConfig struct {
	// SizeBytes is the total capacity. Must be a multiple of
	// Ways*LineSize.
	SizeBytes int
	// Ways is the associativity. Use 1 for direct-mapped.
	Ways int
}

// Config describes a hierarchy. Levels with SizeBytes == 0 are
// omitted (e.g. a two-level hierarchy).
type Config struct {
	LineSize int
	Levels   []LevelConfig
	// ModelPrefetch treats sequential (ReadRange) accesses as covered
	// by the hardware prefetcher: they still install lines — and so
	// still displace other data — but their misses are tallied in a
	// separate PrefetchedMisses counter rather than the demand-miss
	// statistics. This mirrors the paper's observation that the
	// streamed topology/buffer accesses are "sequential, i.e.,
	// assisted by prefetching" (§4.3), leaving the demand misses to
	// reflect the random vertex-data accesses the paper's analysis
	// is about.
	ModelPrefetch bool
}

// XeonGold6130 returns the per-core geometry of the paper's evaluation
// machine: 32 KB 8-way L1D, 1 MB 16-way L2, and the 22 MB 11-way
// shared L3 (per socket). Lines are 64 bytes.
func XeonGold6130() Config {
	return Config{
		LineSize: 64,
		Levels: []LevelConfig{
			{SizeBytes: 32 << 10, Ways: 8},
			{SizeBytes: 1 << 20, Ways: 16},
			{SizeBytes: 22 << 20, Ways: 11},
		},
	}
}

// Scaled returns the Xeon geometry divided by factor, used to keep the
// cache:graph size ratio of the paper when simulating graphs that are
// ~1000x smaller than the paper's datasets. Associativity and line
// size are preserved; sizes are rounded down to a multiple of
// ways*linesize with a one-set minimum.
func Scaled(factor int) Config {
	base := XeonGold6130()
	if factor < 1 {
		factor = 1
	}
	for i := range base.Levels {
		lv := &base.Levels[i]
		setBytes := lv.Ways * base.LineSize
		sz := lv.SizeBytes / factor
		if sz < setBytes {
			sz = setBytes
		}
		lv.SizeBytes = sz / setBytes * setBytes
	}
	return base
}

// Validate checks geometry sanity.
func (c Config) Validate() error {
	if c.LineSize < 8 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cache: line size %d must be a power of two >= 8", c.LineSize)
	}
	if len(c.Levels) == 0 || len(c.Levels) > 3 {
		return fmt.Errorf("cache: %d levels unsupported (want 1-3)", len(c.Levels))
	}
	for i, lv := range c.Levels {
		if lv.Ways < 1 {
			return fmt.Errorf("cache: level %d ways %d < 1", i, lv.Ways)
		}
		setBytes := lv.Ways * c.LineSize
		if lv.SizeBytes < setBytes || lv.SizeBytes%setBytes != 0 {
			return fmt.Errorf("cache: level %d size %d not a multiple of %d", i, lv.SizeBytes, setBytes)
		}
	}
	return nil
}

// setAssoc is one set-associative LRU cache level.
type setAssoc struct {
	ways     int
	sets     int
	setMask  uint64
	tags     []uint64 // sets*ways entries; 0 means empty (tag 0 is offset)
	stamps   []uint64 // LRU timestamps parallel to tags
	valid    []bool
	clock    uint64
	accesses uint64
	misses   uint64
}

func newSetAssoc(cfg LevelConfig, lineSize int) *setAssoc {
	sets := cfg.SizeBytes / (cfg.Ways * lineSize)
	// Round sets down to a power of two so the index is a mask; the
	// Xeon geometries used here are already powers of two except L3
	// (11-way), whose set count is handled by modulo below.
	s := &setAssoc{
		ways:   cfg.Ways,
		sets:   sets,
		tags:   make([]uint64, sets*cfg.Ways),
		stamps: make([]uint64, sets*cfg.Ways),
		valid:  make([]bool, sets*cfg.Ways),
	}
	if sets&(sets-1) == 0 {
		s.setMask = uint64(sets - 1)
	}
	return s
}

// access looks a line number up, installs it if absent, and reports
// whether it was a hit. When counted is false the access still moves
// LRU state and installs on miss, but no statistics are recorded
// (prefetch-covered accesses).
func (s *setAssoc) access(line uint64, counted bool) bool {
	if counted {
		s.accesses++
	}
	s.clock++
	var set int
	if s.setMask != 0 {
		set = int(line & s.setMask)
	} else {
		set = int(line % uint64(s.sets))
	}
	base := set * s.ways
	victim := base
	oldest := ^uint64(0)
	for w := base; w < base+s.ways; w++ {
		if s.valid[w] && s.tags[w] == line {
			s.stamps[w] = s.clock
			return true
		}
		if !s.valid[w] {
			victim = w
			oldest = 0
		} else if s.stamps[w] < oldest {
			victim = w
			oldest = s.stamps[w]
		}
	}
	if counted {
		s.misses++
	}
	s.tags[victim] = line
	s.stamps[victim] = s.clock
	s.valid[victim] = true
	return false
}

// LevelStats aggregates one level's counters.
type LevelStats struct {
	Accesses uint64
	Misses   uint64
}

// MissRate returns Misses/Accesses, or 0 when there were no accesses.
func (s LevelStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Hierarchy is a multi-level cache simulator. It is not safe for
// concurrent use; parallel kernels are simulated by replaying a
// per-thread interleaving or a single-thread trace (documented at the
// call sites).
type Hierarchy struct {
	lineShift     uint
	levels        []*setAssoc
	loads         uint64
	stores        uint64
	modelPrefetch bool
	// prefetchedMisses counts last-level misses of prefetch-covered
	// (sequential) accesses when ModelPrefetch is on.
	prefetchedMisses uint64
}

// NewHierarchy builds a Hierarchy from cfg. It panics on an invalid
// config (configs in this repository are static).
func NewHierarchy(cfg Config) *Hierarchy {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	shift := uint(0)
	for 1<<shift < cfg.LineSize {
		shift++
	}
	h := &Hierarchy{lineShift: shift, modelPrefetch: cfg.ModelPrefetch}
	for _, lv := range cfg.Levels {
		h.levels = append(h.levels, newSetAssoc(lv, cfg.LineSize))
	}
	return h
}

// Read simulates a load from addr.
func (h *Hierarchy) Read(addr uint64) {
	h.loads++
	h.refer(addr)
}

// Write simulates a store to addr. Write-allocate: a store miss
// installs the line just as a load does.
func (h *Hierarchy) Write(addr uint64) {
	h.stores++
	h.refer(addr)
}

// ReadRange simulates a sequential load of n bytes starting at addr,
// touching each line once (the access pattern of streaming through
// topology arrays). Under Config.ModelPrefetch these accesses count
// as loads but their misses go to PrefetchedMisses.
func (h *Hierarchy) ReadRange(addr uint64, n int) {
	if n <= 0 {
		return
	}
	line := addr >> h.lineShift
	last := (addr + uint64(n) - 1) >> h.lineShift
	for ; line <= last; line++ {
		h.loads++
		if h.modelPrefetch {
			h.referLineUncounted(line)
		} else {
			h.referLine(line)
		}
	}
}

func (h *Hierarchy) refer(addr uint64) {
	h.referLine(addr >> h.lineShift)
}

func (h *Hierarchy) referLine(line uint64) {
	for _, lv := range h.levels {
		if lv.access(line, true) {
			return
		}
	}
}

// referLineUncounted installs/touches the line at every level without
// recording demand statistics; a last-level miss is tallied as a
// prefetched miss.
func (h *Hierarchy) referLineUncounted(line uint64) {
	for i, lv := range h.levels {
		if lv.access(line, false) {
			return
		}
		if i == len(h.levels)-1 {
			h.prefetchedMisses++
		}
	}
}

// PrefetchedMisses reports the last-level misses absorbed by the
// modelled prefetcher (0 unless Config.ModelPrefetch).
func (h *Hierarchy) PrefetchedMisses() uint64 { return h.prefetchedMisses }

// Stats returns the counters of the given level. Memory returns
// accesses that missed the last level (as Accesses == Misses).
func (h *Hierarchy) Stats(l Level) LevelStats {
	if int(l) < len(h.levels) {
		lv := h.levels[l]
		return LevelStats{Accesses: lv.accesses, Misses: lv.misses}
	}
	last := h.levels[len(h.levels)-1]
	return LevelStats{Accesses: last.misses, Misses: last.misses}
}

// MemoryAccesses returns the total simulated loads and stores — the
// "Memory Accesses" column of Table 3.
func (h *Hierarchy) MemoryAccesses() (loads, stores uint64) {
	return h.loads, h.stores
}

// LastLevel returns the index of the last cache level (the "LLC").
func (h *Hierarchy) LastLevel() Level {
	return Level(len(h.levels) - 1)
}

// Reset clears all cache contents and counters.
func (h *Hierarchy) Reset() {
	for i, lv := range h.levels {
		h.levels[i] = newSetAssoc(LevelConfig{
			SizeBytes: lv.sets * lv.ways * (1 << h.lineShift),
			Ways:      lv.ways,
		}, 1<<h.lineShift)
	}
	h.loads, h.stores = 0, 0
	h.prefetchedMisses = 0
}
