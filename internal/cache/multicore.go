package cache

import "fmt"

// MultiHierarchy simulates the paper's actual cache topology: each
// core owns private L1 and L2 levels, all cores share one L3. It
// extends the single-stream Hierarchy to parallel traces, which is
// what validates §3.4's design point — each thread's flipped-block
// buffer lives in that thread's PRIVATE L2, so concurrent threads do
// not evict each other's hub data, while pull traversal's random
// reads all contend for the shared L3.
//
// Coherence is modelled minimally: lines live independently per
// private hierarchy (no invalidations), adequate because the traced
// kernels never write shared lines concurrently (that is the whole
// point of buffering/partitioning).
type MultiHierarchy struct {
	lineShift uint
	cores     []privateLevels
	shared    *setAssoc
	loads     uint64
	stores    uint64
}

type privateLevels struct {
	l1, l2 *setAssoc
}

// NewMultiHierarchy builds a simulator with `cores` private L1+L2
// pairs over one shared L3. cfg must have exactly 3 levels.
func NewMultiHierarchy(cfg Config, cores int) (*MultiHierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Levels) != 3 {
		return nil, fmt.Errorf("cache: MultiHierarchy needs 3 levels, got %d", len(cfg.Levels))
	}
	if cores < 1 {
		return nil, fmt.Errorf("cache: cores %d < 1", cores)
	}
	shift := uint(0)
	for 1<<shift < cfg.LineSize {
		shift++
	}
	m := &MultiHierarchy{lineShift: shift, shared: newSetAssoc(cfg.Levels[2], cfg.LineSize)}
	for c := 0; c < cores; c++ {
		m.cores = append(m.cores, privateLevels{
			l1: newSetAssoc(cfg.Levels[0], cfg.LineSize),
			l2: newSetAssoc(cfg.Levels[1], cfg.LineSize),
		})
	}
	return m, nil
}

// Cores reports the core count.
func (m *MultiHierarchy) Cores() int { return len(m.cores) }

// Read simulates a load by the given core.
func (m *MultiHierarchy) Read(core int, addr uint64) {
	m.loads++
	m.refer(core, addr>>m.lineShift)
}

// Write simulates a store by the given core (write-allocate).
func (m *MultiHierarchy) Write(core int, addr uint64) {
	m.stores++
	m.refer(core, addr>>m.lineShift)
}

func (m *MultiHierarchy) refer(core int, line uint64) {
	p := &m.cores[core]
	if p.l1.access(line, true) {
		return
	}
	if p.l2.access(line, true) {
		return
	}
	m.shared.access(line, true)
}

// PrivateStats sums the per-core private-level counters.
func (m *MultiHierarchy) PrivateStats() (l1, l2 LevelStats) {
	for c := range m.cores {
		l1.Accesses += m.cores[c].l1.accesses
		l1.Misses += m.cores[c].l1.misses
		l2.Accesses += m.cores[c].l2.accesses
		l2.Misses += m.cores[c].l2.misses
	}
	return l1, l2
}

// SharedStats returns the shared-L3 counters.
func (m *MultiHierarchy) SharedStats() LevelStats {
	return LevelStats{Accesses: m.shared.accesses, Misses: m.shared.misses}
}

// MemoryAccesses returns total simulated loads and stores.
func (m *MultiHierarchy) MemoryAccesses() (loads, stores uint64) {
	return m.loads, m.stores
}
