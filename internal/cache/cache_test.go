package cache

import (
	"testing"
	"testing/quick"
)

func tinyConfig() Config {
	// 4 lines of 64 B in 2 sets x 2 ways for L1; 16 lines for L2.
	return Config{
		LineSize: 64,
		Levels: []LevelConfig{
			{SizeBytes: 4 * 64, Ways: 2},
			{SizeBytes: 16 * 64, Ways: 4},
		},
	}
}

func TestConfigValidate(t *testing.T) {
	if err := XeonGold6130().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{LineSize: 60, Levels: []LevelConfig{{SizeBytes: 64, Ways: 1}}},
		{LineSize: 64, Levels: nil},
		{LineSize: 64, Levels: []LevelConfig{{SizeBytes: 100, Ways: 1}}},
		{LineSize: 64, Levels: []LevelConfig{{SizeBytes: 64, Ways: 0}}},
		{LineSize: 64, Levels: make([]LevelConfig, 4)},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestScaledPreservesStructure(t *testing.T) {
	c := Scaled(1000)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	base := XeonGold6130()
	for i := range c.Levels {
		if c.Levels[i].Ways != base.Levels[i].Ways {
			t.Error("scaling changed associativity")
		}
		if c.Levels[i].SizeBytes >= base.Levels[i].SizeBytes {
			t.Error("scaling did not shrink")
		}
	}
	// Degenerate factor clamps to one set.
	c2 := Scaled(1 << 30)
	if err := c2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestColdMissThenHit(t *testing.T) {
	h := NewHierarchy(tinyConfig())
	h.Read(0)
	if s := h.Stats(L1); s.Accesses != 1 || s.Misses != 1 {
		t.Fatalf("cold access: %+v", s)
	}
	h.Read(8) // same line
	if s := h.Stats(L1); s.Accesses != 2 || s.Misses != 1 {
		t.Fatalf("same-line access missed: %+v", s)
	}
	h.Read(64) // next line
	if s := h.Stats(L1); s.Misses != 2 {
		t.Fatalf("distinct line should miss: %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	// L1: 2 sets x 2 ways. Lines 0,2,4 map to set 0 (even lines).
	h := NewHierarchy(tinyConfig())
	h.Read(0 * 64)
	h.Read(2 * 64)
	h.Read(4 * 64) // evicts line 0 (LRU)
	h.Read(0 * 64) // must miss L1 again
	if s := h.Stats(L1); s.Misses != 4 {
		t.Fatalf("LRU eviction wrong: %+v", s)
	}
	// ...but hit in L2 (capacity 16 lines).
	if s := h.Stats(L2); s.Misses != 3 || s.Accesses != 4 {
		t.Fatalf("L2 should have caught the re-reference: %+v", s)
	}
}

func TestLRURecency(t *testing.T) {
	h := NewHierarchy(tinyConfig())
	h.Read(0 * 64)
	h.Read(2 * 64)
	h.Read(0 * 64) // touch 0: now 2 is LRU
	h.Read(4 * 64) // evicts 2
	h.Read(0 * 64) // still resident
	if s := h.Stats(L1); s.Misses != 3 {
		t.Fatalf("recency not honoured: %+v", s)
	}
}

func TestWorkingSetFitsVsOverflows(t *testing.T) {
	// The iHTL capacity argument in miniature: a working set within
	// capacity has ~0 steady-state misses; over capacity it thrashes.
	cfg := Config{LineSize: 64, Levels: []LevelConfig{{SizeBytes: 64 * 64, Ways: 8}}}
	fit := NewHierarchy(cfg)
	for pass := 0; pass < 10; pass++ {
		for i := 0; i < 32; i++ {
			fit.Read(uint64(i) * 64)
		}
	}
	if m := fit.Stats(L1).Misses; m != 32 {
		t.Fatalf("fitting set: %d misses, want 32 cold only", m)
	}
	thrash := NewHierarchy(cfg)
	for pass := 0; pass < 10; pass++ {
		for i := 0; i < 128; i++ { // 2x capacity, LRU worst case
			thrash.Read(uint64(i) * 64)
		}
	}
	if m := thrash.Stats(L1).Misses; m != 1280 {
		t.Fatalf("thrashing set: %d misses, want all 1280", m)
	}
}

func TestWriteCounted(t *testing.T) {
	h := NewHierarchy(tinyConfig())
	h.Write(0)
	h.Read(0)
	loads, stores := h.MemoryAccesses()
	if loads != 1 || stores != 1 {
		t.Fatalf("loads=%d stores=%d", loads, stores)
	}
	if s := h.Stats(L1); s.Misses != 1 {
		t.Fatalf("write-allocate broken: %+v", s)
	}
}

func TestReadRangeTouchesEachLineOnce(t *testing.T) {
	h := NewHierarchy(tinyConfig())
	h.ReadRange(0, 256) // 4 lines
	loads, _ := h.MemoryAccesses()
	if loads != 4 {
		t.Fatalf("ReadRange counted %d loads, want 4", loads)
	}
	h2 := NewHierarchy(tinyConfig())
	h2.ReadRange(60, 8) // straddles a line boundary: 2 lines
	if l, _ := h2.MemoryAccesses(); l != 2 {
		t.Fatalf("straddling range counted %d loads, want 2", l)
	}
	h2.ReadRange(0, 0) // no-op
}

func TestMemoryLevelStats(t *testing.T) {
	h := NewHierarchy(tinyConfig())
	for i := 0; i < 100; i++ {
		h.Read(uint64(i) * 64)
	}
	mem := h.Stats(Memory)
	l2 := h.Stats(L2)
	if mem.Misses != l2.Misses || mem.Accesses != l2.Misses {
		t.Fatalf("memory stats %+v inconsistent with LLC %+v", mem, l2)
	}
	if h.LastLevel() != L2 {
		t.Fatalf("LastLevel = %v", h.LastLevel())
	}
}

func TestReset(t *testing.T) {
	h := NewHierarchy(tinyConfig())
	h.Read(0)
	h.Write(64)
	h.Reset()
	if s := h.Stats(L1); s.Accesses != 0 || s.Misses != 0 {
		t.Fatalf("reset failed: %+v", s)
	}
	if l, st := h.MemoryAccesses(); l != 0 || st != 0 {
		t.Fatal("reset did not clear load/store counts")
	}
	h.Read(0)
	if s := h.Stats(L1); s.Misses != 1 {
		t.Fatal("cache contents survived reset")
	}
}

func TestNonPowerOfTwoSets(t *testing.T) {
	// 11-way L3 has a non-power-of-two set count; exercise the modulo
	// path.
	cfg := Config{LineSize: 64, Levels: []LevelConfig{{SizeBytes: 3 * 11 * 64, Ways: 11}}}
	h := NewHierarchy(cfg)
	for i := 0; i < 1000; i++ {
		h.Read(uint64(i*64) % 4096)
	}
	s := h.Stats(L1)
	if s.Accesses != 1000 {
		t.Fatalf("accesses %d", s.Accesses)
	}
}

func TestMissRate(t *testing.T) {
	if (LevelStats{}).MissRate() != 0 {
		t.Fatal("zero accesses should give 0 rate")
	}
	if r := (LevelStats{Accesses: 4, Misses: 1}).MissRate(); r != 0.25 {
		t.Fatalf("MissRate = %v", r)
	}
}

func TestHitNeverExceedsAccesses(t *testing.T) {
	f := func(addrs []uint16) bool {
		h := NewHierarchy(tinyConfig())
		for _, a := range addrs {
			h.Read(uint64(a))
		}
		for _, l := range []Level{L1, L2} {
			s := h.Stats(l)
			if s.Misses > s.Accesses {
				return false
			}
		}
		// Inclusion of counts: L2 accesses == L1 misses.
		if h.Stats(L2).Accesses != h.Stats(L1).Misses {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRepeatAccessAlwaysHits(t *testing.T) {
	f := func(addr uint32) bool {
		h := NewHierarchy(tinyConfig())
		h.Read(uint64(addr))
		before := h.Stats(L1).Misses
		h.Read(uint64(addr))
		return h.Stats(L1).Misses == before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddressSpaceNoOverlap(t *testing.T) {
	var as AddressSpace
	a := as.Alloc(100, 8)
	b := as.Alloc(50, 4)
	if a.Addr(99)+8 > b.Base {
		t.Fatalf("regions overlap: a ends %d, b starts %d", a.Addr(99)+8, b.Base)
	}
	if a.Bytes() != 800 || b.Bytes() != 200 {
		t.Fatal("Bytes wrong")
	}
	if b.Base%4096 != 0 {
		t.Fatalf("region not page aligned: %d", b.Base)
	}
	if a.Addr(3) != a.Base+24 {
		t.Fatal("Addr arithmetic wrong")
	}
}

func BenchmarkHierarchyAccess(b *testing.B) {
	h := NewHierarchy(XeonGold6130())
	for i := 0; i < b.N; i++ {
		h.Read(uint64(i*64) & (1<<26 - 1))
	}
}

func TestModelPrefetchSeparatesStreamMisses(t *testing.T) {
	cfg := tinyConfig()
	cfg.ModelPrefetch = true
	h := NewHierarchy(cfg)
	// Stream 16 lines: all cold, all covered by the prefetcher.
	h.ReadRange(0, 16*64)
	if m := h.Stats(L2).Misses; m != 0 {
		t.Fatalf("streamed misses leaked into demand stats: %d", m)
	}
	if p := h.PrefetchedMisses(); p != 16 {
		t.Fatalf("prefetched misses = %d, want 16", p)
	}
	if l, _ := h.MemoryAccesses(); l != 16 {
		t.Fatalf("streamed loads not counted: %d", l)
	}
	// The streamed lines are INSTALLED: a demand read of the most
	// recent one hits L1.
	h.Read(15 * 64)
	if m := h.Stats(L1).Misses; m != 0 {
		t.Fatalf("streamed line not resident: %d L1 misses", m)
	}
	// And they displace: the tiny L1 (4 lines) evicted line 0 long
	// ago — demand miss in L1, but the 16-line L2 still holds it.
	h.Read(0)
	if m := h.Stats(L1).Misses; m != 1 {
		t.Fatalf("displacement not modelled: %d L1 misses", m)
	}
	if m := h.Stats(L2).Misses; m != 0 {
		t.Fatalf("line 0 should still be L2 resident: %d misses", m)
	}
	h.Reset()
	if h.PrefetchedMisses() != 0 {
		t.Fatal("Reset did not clear prefetched misses")
	}
}

func TestNoPrefetchCountsStreamAsDemand(t *testing.T) {
	h := NewHierarchy(tinyConfig()) // ModelPrefetch off
	h.ReadRange(0, 16*64)
	if m := h.Stats(L1).Misses; m != 16 {
		t.Fatalf("expected 16 demand misses, got %d", m)
	}
	if h.PrefetchedMisses() != 0 {
		t.Fatal("prefetched misses counted with model off")
	}
}

func TestMultiHierarchyBasics(t *testing.T) {
	cfg := Config{
		LineSize: 64,
		Levels: []LevelConfig{
			{SizeBytes: 2 * 64, Ways: 2},
			{SizeBytes: 4 * 64, Ways: 4},
			{SizeBytes: 16 * 64, Ways: 8},
		},
	}
	m, err := NewMultiHierarchy(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cores() != 2 {
		t.Fatalf("Cores = %d", m.Cores())
	}
	// Core 0 installs a line; core 1 does NOT see it privately but
	// DOES hit it in the shared L3.
	m.Read(0, 0)
	l1, _ := m.PrivateStats()
	if l1.Misses != 1 {
		t.Fatalf("cold private miss count %d", l1.Misses)
	}
	if s := m.SharedStats(); s.Misses != 1 {
		t.Fatalf("cold shared miss count %d", s.Misses)
	}
	m.Read(1, 0) // private miss, shared hit
	if s := m.SharedStats(); s.Misses != 1 || s.Accesses != 2 {
		t.Fatalf("shared stats %+v, want 1 miss of 2 accesses", s)
	}
	m.Read(0, 0) // private hit
	l1, _ = m.PrivateStats()
	if l1.Accesses != 3 || l1.Misses != 2 {
		t.Fatalf("private L1 stats %+v", l1)
	}
	m.Write(0, 64)
	loads, stores := m.MemoryAccesses()
	if loads != 3 || stores != 1 {
		t.Fatalf("loads=%d stores=%d", loads, stores)
	}
}

func TestMultiHierarchyPrivateIsolation(t *testing.T) {
	cfg := Config{
		LineSize: 64,
		Levels: []LevelConfig{
			{SizeBytes: 2 * 64, Ways: 2},
			{SizeBytes: 4 * 64, Ways: 4},
			{SizeBytes: 64 * 64, Ways: 8},
		},
	}
	m, err := NewMultiHierarchy(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Core 1 thrashing its private levels must not evict core 0's
	// private contents.
	m.Read(0, 0)
	for i := 1; i < 30; i++ {
		m.Read(1, uint64(i)*64)
	}
	before, _ := m.PrivateStats()
	m.Read(0, 0)
	after, _ := m.PrivateStats()
	if after.Misses != before.Misses {
		t.Fatal("core 1 activity evicted core 0's private line")
	}
}

func TestMultiHierarchyErrors(t *testing.T) {
	good := Config{LineSize: 64, Levels: []LevelConfig{
		{SizeBytes: 64, Ways: 1}, {SizeBytes: 128, Ways: 2}, {SizeBytes: 256, Ways: 4},
	}}
	if _, err := NewMultiHierarchy(good, 0); err == nil {
		t.Error("0 cores accepted")
	}
	two := Config{LineSize: 64, Levels: good.Levels[:2]}
	if _, err := NewMultiHierarchy(two, 2); err == nil {
		t.Error("2-level config accepted")
	}
	bad := Config{LineSize: 3, Levels: good.Levels}
	if _, err := NewMultiHierarchy(bad, 2); err == nil {
		t.Error("invalid config accepted")
	}
}
