// Package gen synthesises the graph datasets used by the experiments.
//
// The paper evaluates on ten real-world graphs (Table 1): four social
// networks (LiveJournal, two Twitter crawls, Friendster) and six web
// graphs (SK-Domain, Web-CC12, UK-Delis, UK-Union, UK-Domain,
// ClueWeb09), none of which can be shipped with this repository. This
// package provides deterministic generators whose outputs reproduce
// the two structural properties that drive iHTL's behaviour:
//
//   - a skewed, heavy-tailed in-degree distribution (in-hubs capture a
//     disproportionate fraction of edges) — R-MAT for social networks;
//   - in-hub/out-hub asymmetry (web graphs have huge in-hubs but small
//     out-degrees, Figure 9) — WebGraph for web-like datasets.
package gen

import (
	"fmt"

	"ihtl/internal/graph"
	"ihtl/internal/sched"
	"ihtl/internal/xrand"
)

// RMATConfig parameterises the Recursive MATrix (Kronecker) generator
// of Chakrabarti, Zhan & Faloutsos (SDM 2004). The Graph500 parameters
// (A=0.57, B=0.19, C=0.19) produce social-network-like graphs with
// power-law in- and out-degrees and near-symmetric hubs.
type RMATConfig struct {
	// Scale is log2 of the number of vertices.
	Scale int
	// EdgeFactor is the number of directed edges per vertex.
	EdgeFactor int
	// A, B, C are the Kronecker quadrant probabilities; D = 1-A-B-C.
	A, B, C float64
	// Noise perturbs the quadrant probabilities per recursion level
	// to avoid the staircase artefacts of pure R-MAT. 0.1 is typical.
	Noise float64
	// Reciprocity is the probability that each generated edge also
	// adds its reverse. Social networks have highly reciprocal hubs
	// (paper Figure 9: "in-hubs are almost symmetric in social
	// networks"); 0 leaves the graph fully directed.
	Reciprocity float64
	// Seed selects the deterministic random stream.
	Seed uint64
	// Pool parallelises the CSR/CSC build of the generated edge list
	// (edge generation itself is a sequential random stream). Nil
	// builds sequentially; the result is identical either way.
	Pool *sched.Pool
}

// DefaultRMAT returns the Graph500 social-network configuration at the
// given scale.
func DefaultRMAT(scale, edgeFactor int, seed uint64) RMATConfig {
	return RMATConfig{
		Scale: scale, EdgeFactor: edgeFactor,
		A: 0.57, B: 0.19, C: 0.19,
		Noise: 0.1, Seed: seed,
	}
}

// Validate checks config sanity.
func (c RMATConfig) Validate() error {
	if c.Scale < 1 || c.Scale > 30 {
		return fmt.Errorf("gen: RMAT scale %d out of [1,30]", c.Scale)
	}
	if c.EdgeFactor < 1 {
		return fmt.Errorf("gen: RMAT edge factor %d < 1", c.EdgeFactor)
	}
	if c.A <= 0 || c.B < 0 || c.C < 0 || c.A+c.B+c.C >= 1 {
		return fmt.Errorf("gen: RMAT probabilities invalid (A=%v B=%v C=%v)", c.A, c.B, c.C)
	}
	if c.Noise < 0 || c.Noise > 0.5 {
		return fmt.Errorf("gen: RMAT noise %v out of [0,0.5]", c.Noise)
	}
	if c.Reciprocity < 0 || c.Reciprocity > 1 {
		return fmt.Errorf("gen: RMAT reciprocity %v out of [0,1]", c.Reciprocity)
	}
	return nil
}

// RMAT generates an R-MAT graph. Duplicate edges and self-loops are
// removed, as are zero-degree vertices (mirroring the paper's dataset
// preparation), so the returned vertex and edge counts are slightly
// below 2^Scale and 2^Scale*EdgeFactor.
func RMAT(cfg RMATConfig) (*graph.Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := 1 << uint(cfg.Scale)
	m := n * cfg.EdgeFactor
	rng := xrand.New(cfg.Seed)
	edges := make([]graph.Edge, 0, m)
	// Per-level noise factors, fixed per generation for determinism.
	noiseA := make([]float64, cfg.Scale)
	noiseB := make([]float64, cfg.Scale)
	noiseC := make([]float64, cfg.Scale)
	for l := 0; l < cfg.Scale; l++ {
		noiseA[l] = 1 + cfg.Noise*(2*rng.Float64()-1)
		noiseB[l] = 1 + cfg.Noise*(2*rng.Float64()-1)
		noiseC[l] = 1 + cfg.Noise*(2*rng.Float64()-1)
	}
	for i := 0; i < m; i++ {
		src, dst := 0, 0
		for l := 0; l < cfg.Scale; l++ {
			a := cfg.A * noiseA[l]
			b := cfg.B * noiseB[l]
			c := cfg.C * noiseC[l]
			sum := a + b + c + (1 - cfg.A - cfg.B - cfg.C)
			r := rng.Float64() * sum
			half := 1 << uint(cfg.Scale-1-l)
			switch {
			case r < a:
				// top-left: no bit set
			case r < a+b:
				dst += half
			case r < a+b+c:
				src += half
			default:
				src += half
				dst += half
			}
		}
		if src != dst {
			edges = append(edges, graph.Edge{Src: graph.VID(src), Dst: graph.VID(dst)})
			if cfg.Reciprocity > 0 && rng.Float64() < cfg.Reciprocity {
				edges = append(edges, graph.Edge{Src: graph.VID(dst), Dst: graph.VID(src)})
			}
		}
	}
	return graph.Build(n, edges, graph.BuildOptions{
		Dedup:            true,
		DropSelfLoops:    true,
		RemoveZeroDegree: true,
		Pool:             cfg.Pool,
	})
}
