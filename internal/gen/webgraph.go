package gen

import (
	"fmt"
	"math"

	"ihtl/internal/graph"
	"ihtl/internal/sched"
	"ihtl/internal/xrand"
)

// WebConfig parameterises the web-graph generator. Web graphs differ
// from social networks in two ways that matter to iHTL (§5.4, Fig. 9):
//
//  1. they have extreme *in*-hubs (popular pages linked from
//     everywhere) but **no** corresponding out-hubs — a page links out
//     to a modest number of URLs — so in-hubs are asymmetric;
//  2. they have strong host-level community structure — most links
//     stay within a host block — giving good initial spatial locality
//     (the crawl order groups pages of one host together), which is
//     why the paper notes "graphs like SK-Domain with high initial
//     locality".
//
// The generator models both: vertices are grouped into contiguous host
// blocks, each vertex emits OutDegree links, a fraction Local of them
// to its own block, and the rest to global targets drawn from a Zipf
// distribution over a small set of hub pages (creating huge in-degrees)
// or uniformly at random.
type WebConfig struct {
	// NumV is the number of pages.
	NumV int
	// MeanOutDegree is the average number of links per page; actual
	// out-degrees are power-law with a *small* cap (web pages do not
	// have millions of out-links).
	MeanOutDegree int
	// MaxOutDegree caps out-degrees; keep small relative to the hub
	// in-degrees to create the asymmetry of Fig. 9.
	MaxOutDegree int
	// HostSize is the mean number of pages per host block.
	HostSize int
	// Local is the fraction of links that stay within the host block.
	Local float64
	// HubFraction is the fraction of vertices acting as global hub
	// targets (e.g. 0.003 — "iHTL creates a single flipped block ...
	// by selecting 0.3% of the vertices as in-hubs" for SK-Domain).
	HubFraction float64
	// HubBias is the fraction of non-local links that go to hubs
	// (the rest are uniform random).
	HubBias float64
	// ZipfExponent shapes the hub popularity distribution (>1).
	ZipfExponent float64
	// LocalZipfExponent concentrates local (intra-host) links onto
	// the first pages of each host, modelling per-host index pages;
	// values > 1 enable it (e.g. 1.3), <= 1 selects uniform local
	// targets. Real hosts are strongly front-loaded, which is what
	// lets a single flipped block capture most of a web graph's
	// edges (paper §4.6: 68% for SK-Domain).
	LocalZipfExponent float64
	// Seed selects the deterministic random stream.
	Seed uint64
	// Pool parallelises the CSR/CSC build of the generated edge list
	// (edge generation itself is a sequential random stream). Nil
	// builds sequentially; the result is identical either way.
	Pool *sched.Pool
}

// DefaultWeb returns a web-like configuration for n pages.
func DefaultWeb(n int, seed uint64) WebConfig {
	return WebConfig{
		NumV:              n,
		MeanOutDegree:     20,
		MaxOutDegree:      300,
		HostSize:          64,
		Local:             0.72,
		HubFraction:       0.004,
		HubBias:           0.85,
		ZipfExponent:      1.6,
		LocalZipfExponent: 1.4,
		Seed:              seed,
	}
}

// Validate checks config sanity.
func (c WebConfig) Validate() error {
	if c.NumV < 2 {
		return fmt.Errorf("gen: web NumV %d < 2", c.NumV)
	}
	if c.MeanOutDegree < 1 || c.MaxOutDegree < c.MeanOutDegree {
		return fmt.Errorf("gen: web out-degree config invalid (mean=%d max=%d)", c.MeanOutDegree, c.MaxOutDegree)
	}
	if c.HostSize < 1 {
		return fmt.Errorf("gen: web HostSize %d < 1", c.HostSize)
	}
	if c.Local < 0 || c.Local > 1 || c.HubBias < 0 || c.HubBias > 1 {
		return fmt.Errorf("gen: web fractions out of [0,1]")
	}
	if c.HubFraction <= 0 || c.HubFraction > 0.5 {
		return fmt.Errorf("gen: web HubFraction %v out of (0,0.5]", c.HubFraction)
	}
	if c.ZipfExponent <= 1 {
		return fmt.Errorf("gen: web ZipfExponent %v must be > 1", c.ZipfExponent)
	}
	return nil
}

// Web generates a web-like graph per cfg.
func Web(cfg WebConfig) (*graph.Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := xrand.New(cfg.Seed)
	n := cfg.NumV

	// Hub pages: spread through the ID space the way popular pages
	// are spread through a crawl, chosen deterministically.
	numHubs := int(math.Max(1, cfg.HubFraction*float64(n)))
	hubs := make([]graph.VID, numHubs)
	hubPerm := rng.Perm(n)
	for i := 0; i < numHubs; i++ {
		hubs[i] = graph.VID(hubPerm[i])
	}
	zipf := xrand.NewZipf(rng, cfg.ZipfExponent, 1, uint64(numHubs))

	// Power-law out-degrees with small cap: alpha chosen so the mean
	// is close to MeanOutDegree.
	var localZipf *xrand.Zipf
	if cfg.LocalZipfExponent > 1 && cfg.HostSize > 1 {
		localZipf = xrand.NewZipf(rng, cfg.LocalZipfExponent, 1, uint64(cfg.HostSize))
	}
	outDeg := xrand.PowerLawDegrees(rng, n, 2.2, 1, cfg.MaxOutDegree)
	// Rescale to the requested mean.
	var sum int
	for _, d := range outDeg {
		sum += d
	}
	scale := float64(cfg.MeanOutDegree) * float64(n) / float64(sum)
	edges := make([]graph.Edge, 0, int(float64(n)*float64(cfg.MeanOutDegree)))
	for v := 0; v < n; v++ {
		d := int(float64(outDeg[v])*scale + 0.5)
		if d < 1 {
			d = 1
		}
		if d > cfg.MaxOutDegree {
			d = cfg.MaxOutDegree
		}
		blockStart := (v / cfg.HostSize) * cfg.HostSize
		blockEnd := blockStart + cfg.HostSize
		if blockEnd > n {
			blockEnd = n
		}
		for i := 0; i < d; i++ {
			var dst int
			switch {
			case rng.Float64() < cfg.Local && blockEnd-blockStart > 1:
				if localZipf != nil {
					dst = blockStart + int(localZipf.Uint64())%(blockEnd-blockStart)
				} else {
					dst = blockStart + rng.Intn(blockEnd-blockStart)
				}
			case rng.Float64() < cfg.HubBias:
				dst = int(hubs[zipf.Uint64()])
			default:
				dst = rng.Intn(n)
			}
			if dst != v {
				edges = append(edges, graph.Edge{Src: graph.VID(v), Dst: graph.VID(dst)})
			}
		}
	}
	return graph.Build(n, edges, graph.BuildOptions{
		Dedup:            true,
		DropSelfLoops:    true,
		RemoveZeroDegree: true,
		Pool:             cfg.Pool,
	})
}
