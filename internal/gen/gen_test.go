package gen

import (
	"sort"
	"testing"

	"ihtl/internal/graph"
)

func TestRMATDeterministic(t *testing.T) {
	cfg := DefaultRMAT(10, 8, 42)
	a, err := RMAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RMAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumV != b.NumV || a.NumE != b.NumE {
		t.Fatalf("RMAT not deterministic: (%d,%d) vs (%d,%d)", a.NumV, a.NumE, b.NumV, b.NumE)
	}
	for v := 0; v < a.NumV; v++ {
		x, y := a.Out(graph.VID(v)), b.Out(graph.VID(v))
		if len(x) != len(y) {
			t.Fatalf("adjacency differs at %d", v)
		}
		for i := range x {
			if x[i] != y[i] {
				t.Fatalf("adjacency differs at %d", v)
			}
		}
	}
	c, err := RMAT(DefaultRMAT(10, 8, 43))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumE == a.NumE && c.NumV == a.NumV {
		// Seeds may coincide in counts but full equality is suspicious.
		same := true
		for v := 0; v < a.NumV && same; v++ {
			x, y := a.Out(graph.VID(v)), c.Out(graph.VID(v))
			if len(x) != len(y) {
				same = false
				break
			}
			for i := range x {
				if x[i] != y[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestRMATValid(t *testing.T) {
	g, err := RMAT(DefaultRMAT(12, 8, 7))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumV < 1000 || g.NumE < int64(g.NumV) {
		t.Fatalf("RMAT suspiciously small: V=%d E=%d", g.NumV, g.NumE)
	}
}

// skewStats returns the fraction of edges captured by the top-f
// fraction of vertices by in-degree.
func skewStats(g *graph.Graph, f float64) float64 {
	degs := make([]int, g.NumV)
	for v := 0; v < g.NumV; v++ {
		degs[v] = g.InDegree(graph.VID(v))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degs)))
	top := int(f * float64(g.NumV))
	if top < 1 {
		top = 1
	}
	sum := 0
	for _, d := range degs[:top] {
		sum += d
	}
	return float64(sum) / float64(g.NumE)
}

func TestRMATSkewedInDegrees(t *testing.T) {
	g, err := RMAT(DefaultRMAT(13, 16, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Top 1% of vertices must capture a disproportionate share of
	// in-edges (power-law graphs: typically > 20%).
	if share := skewStats(g, 0.01); share < 0.15 {
		t.Fatalf("RMAT in-degree not skewed: top 1%% captures %.1f%%", 100*share)
	}
	maxIn, _ := g.MaxInDegree()
	if maxIn < 100 {
		t.Fatalf("RMAT max in-degree only %d", maxIn)
	}
}

func TestRMATRejectsBadConfig(t *testing.T) {
	bad := []RMATConfig{
		{Scale: 0, EdgeFactor: 8, A: 0.57, B: 0.19, C: 0.19},
		{Scale: 10, EdgeFactor: 0, A: 0.57, B: 0.19, C: 0.19},
		{Scale: 10, EdgeFactor: 8, A: 0.5, B: 0.3, C: 0.3},
		{Scale: 10, EdgeFactor: 8, A: 0, B: 0.19, C: 0.19},
		{Scale: 10, EdgeFactor: 8, A: 0.57, B: 0.19, C: 0.19, Noise: 0.9},
	}
	for i, cfg := range bad {
		if _, err := RMAT(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestWebDeterministicAndValid(t *testing.T) {
	cfg := DefaultWeb(20000, 5)
	a, err := Web(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	b, err := Web(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumV != b.NumV || a.NumE != b.NumE {
		t.Fatal("Web not deterministic")
	}
}

func TestWebAsymmetricHubs(t *testing.T) {
	// The defining property (Fig. 9 / Table 1): max in-degree is far
	// larger than max out-degree.
	g, err := Web(DefaultWeb(30000, 9))
	if err != nil {
		t.Fatal(err)
	}
	maxIn, _ := g.MaxInDegree()
	maxOut, _ := g.MaxOutDegree()
	if maxIn < 8*maxOut {
		t.Fatalf("web graph not asymmetric: maxIn=%d maxOut=%d", maxIn, maxOut)
	}
	if share := skewStats(g, 0.01); share < 0.2 {
		t.Fatalf("web in-degree not skewed: top 1%% captures %.1f%%", 100*share)
	}
}

func TestWebRejectsBadConfig(t *testing.T) {
	good := DefaultWeb(1000, 1)
	mutations := []func(*WebConfig){
		func(c *WebConfig) { c.NumV = 1 },
		func(c *WebConfig) { c.MeanOutDegree = 0 },
		func(c *WebConfig) { c.MaxOutDegree = c.MeanOutDegree - 1 },
		func(c *WebConfig) { c.HostSize = 0 },
		func(c *WebConfig) { c.Local = 1.5 },
		func(c *WebConfig) { c.HubBias = -0.1 },
		func(c *WebConfig) { c.HubFraction = 0 },
		func(c *WebConfig) { c.ZipfExponent = 1 },
	}
	for i, mut := range mutations {
		cfg := good
		mut(&cfg)
		if _, err := Web(cfg); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestErdosRenyiNoHubs(t *testing.T) {
	g, err := ErdosRenyi(10000, 100000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	maxIn, _ := g.MaxInDegree()
	// Poisson(10): max over 10k draws stays below ~40.
	if maxIn > 60 {
		t.Fatalf("ER graph has a hub: maxIn=%d", maxIn)
	}
}

func TestPreferentialAttachmentHubHierarchy(t *testing.T) {
	g, err := PreferentialAttachment(20000, 8, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if share := skewStats(g, 0.01); share < 0.15 {
		t.Fatalf("PA in-degree not skewed: top 1%% captures %.1f%%", 100*share)
	}
}

func TestGeneratorsRejectInvalid(t *testing.T) {
	if _, err := ErdosRenyi(1, 10, 0); err == nil {
		t.Error("ER n=1 accepted")
	}
	if _, err := ErdosRenyi(10, -1, 0); err == nil {
		t.Error("ER m=-1 accepted")
	}
	if _, err := PreferentialAttachment(1, 1, 0); err == nil {
		t.Error("PA n=1 accepted")
	}
	if _, err := PreferentialAttachment(10, 0, 0); err == nil {
		t.Error("PA k=0 accepted")
	}
}

func TestRMATReciprocity(t *testing.T) {
	cfg := DefaultRMAT(11, 8, 9)
	cfg.Reciprocity = 0.8
	g, err := RMAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Count reciprocated edges.
	recip, total := 0, 0
	for v := 0; v < g.NumV; v++ {
		for _, u := range g.Out(graph.VID(v)) {
			total++
			if g.HasEdge(u, graph.VID(v)) {
				recip++
			}
		}
	}
	if frac := float64(recip) / float64(total); frac < 0.6 {
		t.Fatalf("reciprocity %.2f, want >= 0.6", frac)
	}
	cfg.Reciprocity = 1.5
	if _, err := RMAT(cfg); err == nil {
		t.Fatal("invalid reciprocity accepted")
	}
}
