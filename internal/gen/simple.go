package gen

import (
	"fmt"

	"ihtl/internal/graph"
	"ihtl/internal/xrand"
)

// ErdosRenyi generates a uniform random directed graph with n vertices
// and approximately m edges (G(n, m) model via sampling with
// dedup). It has no hubs and serves as a control: iHTL should find few
// or no flipped blocks worth building on such graphs.
func ErdosRenyi(n int, m int, seed uint64) (*graph.Graph, error) {
	if n < 2 || m < 0 {
		return nil, fmt.Errorf("gen: invalid ER parameters n=%d m=%d", n, m)
	}
	rng := xrand.New(seed)
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		s := rng.Intn(n)
		d := rng.Intn(n)
		if s != d {
			edges = append(edges, graph.Edge{Src: graph.VID(s), Dst: graph.VID(d)})
		}
	}
	return graph.Build(n, edges, graph.BuildOptions{Dedup: true, RemoveZeroDegree: true})
}

// PreferentialAttachment generates a directed graph by a
// Barabási–Albert-style process: vertices arrive one at a time and
// emit k edges whose destinations are drawn proportionally to current
// in-degree (plus one), yielding a power-law in-degree distribution
// with old vertices as hubs. Unlike R-MAT it produces a connected
// graph with a strict hub hierarchy, exercising a different hub shape.
func PreferentialAttachment(n, k int, seed uint64) (*graph.Graph, error) {
	if n < 2 || k < 1 {
		return nil, fmt.Errorf("gen: invalid PA parameters n=%d k=%d", n, k)
	}
	rng := xrand.New(seed)
	edges := make([]graph.Edge, 0, n*k)
	// targets is a repeated-vertex pool: choosing uniformly from it
	// samples proportional to (in-degree + 1).
	targets := make([]graph.VID, 0, n*(k+1))
	targets = append(targets, 0)
	for v := 1; v < n; v++ {
		for i := 0; i < k && i < v; i++ {
			dst := targets[rng.Intn(len(targets))]
			if dst != graph.VID(v) {
				edges = append(edges, graph.Edge{Src: graph.VID(v), Dst: dst})
				targets = append(targets, dst)
			}
		}
		targets = append(targets, graph.VID(v))
	}
	return graph.Build(n, edges, graph.BuildOptions{Dedup: true, RemoveZeroDegree: true})
}
