// Package graph provides the in-memory graph substrate shared by every
// kernel in this repository: a directed graph held simultaneously in
// Compressed Sparse Row (CSR, out-edges) and Compressed Sparse Column
// (CSC, in-edges) form, a parallel builder, a binary file format, and
// relabeling support.
//
// Following the paper's evaluation setup (§4.1), offsets are 8-byte
// values and neighbour IDs are 4-byte values, so |V| must stay below
// 2^32; zero-degree vertices are removed at build time.
package graph

import "fmt"

// VID is a vertex identifier. Graphs are limited to 2^32-1 vertices,
// matching the 4-byte neighbour encoding of the paper.
type VID = uint32

// Edge is a directed edge from Src to Dst.
type Edge struct {
	Src, Dst VID
}

// Graph is an immutable directed graph in dual CSR/CSC form.
//
// The out-edges of vertex v are OutNbrs[OutIndex[v]:OutIndex[v+1]] and
// the in-edges (i.e. in-neighbours) are InNbrs[InIndex[v]:InIndex[v+1]].
// Neighbour lists are sorted ascending and contain no duplicates
// unless the graph was built with duplicates allowed.
type Graph struct {
	// NumV is the number of vertices; valid IDs are [0, NumV).
	NumV int
	// NumE is the number of directed edges.
	NumE int64
	// OutIndex has NumV+1 entries; OutIndex[0] == 0, OutIndex[NumV] == NumE.
	OutIndex []int64
	// OutNbrs lists destination IDs grouped by source.
	OutNbrs []VID
	// InIndex has NumV+1 entries for the transposed adjacency.
	InIndex []int64
	// InNbrs lists source IDs grouped by destination.
	InNbrs []VID
}

// OutDegree returns the out-degree of v.
func (g *Graph) OutDegree(v VID) int {
	return int(g.OutIndex[v+1] - g.OutIndex[v])
}

// InDegree returns the in-degree of v.
func (g *Graph) InDegree(v VID) int {
	return int(g.InIndex[v+1] - g.InIndex[v])
}

// Degree returns in-degree plus out-degree of v.
func (g *Graph) Degree(v VID) int {
	return g.InDegree(v) + g.OutDegree(v)
}

// Out returns the out-neighbour slice of v. The caller must not
// modify it.
func (g *Graph) Out(v VID) []VID {
	return g.OutNbrs[g.OutIndex[v]:g.OutIndex[v+1]]
}

// In returns the in-neighbour slice of v. The caller must not
// modify it.
func (g *Graph) In(v VID) []VID {
	return g.InNbrs[g.InIndex[v]:g.InIndex[v+1]]
}

// MaxInDegree returns the largest in-degree and one vertex attaining it.
func (g *Graph) MaxInDegree() (deg int, v VID) {
	for u := 0; u < g.NumV; u++ {
		if d := g.InDegree(VID(u)); d > deg {
			deg, v = d, VID(u)
		}
	}
	return deg, v
}

// MaxOutDegree returns the largest out-degree and one vertex attaining it.
func (g *Graph) MaxOutDegree() (deg int, v VID) {
	for u := 0; u < g.NumV; u++ {
		if d := g.OutDegree(VID(u)); d > deg {
			deg, v = d, VID(u)
		}
	}
	return deg, v
}

// HasEdge reports whether the edge (src, dst) exists, using binary
// search over the sorted out-neighbour list of src.
func (g *Graph) HasEdge(src, dst VID) bool {
	nbrs := g.Out(src)
	lo, hi := 0, len(nbrs)
	for lo < hi {
		mid := (lo + hi) / 2
		if nbrs[mid] < dst {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(nbrs) && nbrs[lo] == dst
}

// Edges appends all edges of g to dst (in CSR order) and returns it.
func (g *Graph) Edges(dst []Edge) []Edge {
	for v := 0; v < g.NumV; v++ {
		for _, u := range g.Out(VID(v)) {
			dst = append(dst, Edge{Src: VID(v), Dst: u})
		}
	}
	return dst
}

// TopologyBytes returns the memory footprint in bytes of the CSR and
// CSC topology arrays (Table 4 accounting): 8 bytes per index entry,
// 4 bytes per neighbour ID.
func (g *Graph) TopologyBytes() (csr, csc int64) {
	idx := int64(g.NumV+1) * 8
	csr = idx + int64(len(g.OutNbrs))*4
	csc = idx + int64(len(g.InNbrs))*4
	return csr, csc
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph{V=%d, E=%d}", g.NumV, g.NumE)
}

// Transpose returns the reverse graph: every edge (u,v) becomes (v,u).
// Because Graph stores both directions, transposition just swaps the
// CSR and CSC arrays; the result shares memory with g.
func (g *Graph) Transpose() *Graph {
	return &Graph{
		NumV:     g.NumV,
		NumE:     g.NumE,
		OutIndex: g.InIndex,
		OutNbrs:  g.InNbrs,
		InIndex:  g.OutIndex,
		InNbrs:   g.OutNbrs,
	}
}

// Validate checks the structural invariants of the dual representation
// and returns a descriptive error on the first violation. It is used
// by tests and by the binary loader.
func (g *Graph) Validate() error {
	if g.NumV < 0 {
		return fmt.Errorf("graph: negative vertex count %d", g.NumV)
	}
	if len(g.OutIndex) != g.NumV+1 || len(g.InIndex) != g.NumV+1 {
		return fmt.Errorf("graph: index length mismatch: out=%d in=%d want %d",
			len(g.OutIndex), len(g.InIndex), g.NumV+1)
	}
	if g.OutIndex[0] != 0 || g.InIndex[0] != 0 {
		return fmt.Errorf("graph: index arrays must start at 0")
	}
	if g.OutIndex[g.NumV] != g.NumE || g.InIndex[g.NumV] != g.NumE {
		return fmt.Errorf("graph: edge count mismatch: csr=%d csc=%d want %d",
			g.OutIndex[g.NumV], g.InIndex[g.NumV], g.NumE)
	}
	if int64(len(g.OutNbrs)) != g.NumE || int64(len(g.InNbrs)) != g.NumE {
		return fmt.Errorf("graph: neighbour array length mismatch")
	}
	for v := 0; v < g.NumV; v++ {
		if g.OutIndex[v] > g.OutIndex[v+1] {
			return fmt.Errorf("graph: OutIndex decreasing at %d", v)
		}
		if g.InIndex[v] > g.InIndex[v+1] {
			return fmt.Errorf("graph: InIndex decreasing at %d", v)
		}
	}
	for i, u := range g.OutNbrs {
		if int(u) >= g.NumV {
			return fmt.Errorf("graph: OutNbrs[%d]=%d out of range", i, u)
		}
	}
	for i, u := range g.InNbrs {
		if int(u) >= g.NumV {
			return fmt.Errorf("graph: InNbrs[%d]=%d out of range", i, u)
		}
	}
	// CSR and CSC must describe the same edge multiset: compare
	// per-vertex out-degrees computed from the CSC side.
	outDeg := make([]int64, g.NumV)
	for _, u := range g.InNbrs {
		outDeg[u]++
	}
	for v := 0; v < g.NumV; v++ {
		if outDeg[v] != g.OutIndex[v+1]-g.OutIndex[v] {
			return fmt.Errorf("graph: CSR/CSC disagree on out-degree of %d: %d vs %d",
				v, g.OutIndex[v+1]-g.OutIndex[v], outDeg[v])
		}
	}
	return nil
}
