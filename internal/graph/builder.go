package graph

import (
	"context"
	"errors"
	"fmt"
	"slices"

	"ihtl/internal/faultinject"
	"ihtl/internal/sched"
)

// BuildOptions controls how an edge list is turned into a Graph.
type BuildOptions struct {
	// Dedup removes duplicate (src,dst) pairs. The paper's datasets
	// are simple graphs, so this defaults to on in Build.
	Dedup bool
	// DropSelfLoops removes (v,v) edges.
	DropSelfLoops bool
	// RemoveZeroDegree compacts away vertices with neither in- nor
	// out-edges and renumbers the rest, as the paper does ("counted
	// after removing zero degree vertices because of their
	// destructive effect").
	RemoveZeroDegree bool
	// Pool is the worker pool to parallelise the build with. When
	// nil the build runs sequentially. Parallel builds produce output
	// bit-for-bit identical to sequential builds.
	Pool *sched.Pool
}

// DefaultBuildOptions mirror the paper's dataset preparation.
func DefaultBuildOptions() BuildOptions {
	return BuildOptions{Dedup: true, DropSelfLoops: false, RemoveZeroDegree: true}
}

// FromEdges builds a Graph over vertex IDs [0, numV) from the given
// edge list using the default options, returning an error on
// out-of-range IDs. It is shorthand for Build with
// DefaultBuildOptions; the panicking form for known-valid fixture
// edges is MustFromEdges.
func FromEdges(numV int, edges []Edge) (*Graph, error) {
	return Build(numV, edges, DefaultBuildOptions())
}

// keySrc and keyDst select the bucketing key for the CSR and CSC
// sides. Package-level functions (not closures) so the hot counting
// and scatter loops stay allocation-free.
//
//ihtl:noalloc
func keySrc(e Edge) (VID, VID) { return e.Src, e.Dst }

//ihtl:noalloc
func keyDst(e Edge) (VID, VID) { return e.Dst, e.Src }

// Build constructs the dual CSR/CSC representation from an edge list
// in O(V + E) time using counting sort (no comparison sort on the
// edge list). The input slice is not modified. With opt.Pool set,
// every pass — validation, filtering, bucketing, adjacency sort,
// dedup and zero-degree compaction — runs across the pool's workers
// via per-worker count/prefix/fill passes whose output is identical
// to the sequential build.
func Build(numV int, edges []Edge, opt BuildOptions) (*Graph, error) {
	return BuildCtx(nil, numV, edges, opt)
}

// errBuildAborted is the placeholder error of a phase check that
// observed the pool's abort flag; the deferred region close replaces
// it with the underlying cause (ctx.Err() or a *sched.PanicError).
var errBuildAborted = errors.New("graph: build aborted")

// BuildCtx is Build with cancellation and panic isolation: the whole
// multi-pass pipeline runs inside one fallible pool region, so
// cancelling ctx stops in-flight passes at their next chunk claim and
// returns ctx.Err() between phases, and a panic in any pool worker
// comes back as a *sched.PanicError instead of crashing the process.
// ctx may be nil (no cancellation); a nil or single-worker opt.Pool
// runs sequentially with the same between-phase ctx checks.
func BuildCtx(ctx context.Context, numV int, edges []Edge, opt BuildOptions) (g *Graph, err error) {
	if numV < 0 || numV >= 1<<32 {
		return nil, fmt.Errorf("graph: vertex count %d out of range", numV)
	}
	pool := opt.Pool
	if pool != nil && pool.Workers() <= 1 {
		pool = nil
	}
	if pool != nil {
		end, ferr := pool.Fallible(ctx)
		if ferr != nil {
			return nil, ferr
		}
		defer func() {
			if rerr := end(); rerr != nil {
				g, err = nil, rerr
			}
		}()
	}
	check := func() error {
		if pool != nil && pool.Aborted() {
			return errBuildAborted
		}
		if ctx != nil {
			return ctx.Err()
		}
		return nil
	}
	if bad := validateEdges(numV, edges, pool); bad >= 0 {
		e := edges[bad]
		return nil, fmt.Errorf("graph: edge %d (%d->%d) out of range [0,%d)", bad, e.Src, e.Dst, numV)
	}
	if err := check(); err != nil {
		return nil, err
	}
	if opt.DropSelfLoops {
		edges = dropSelfLoops(edges, pool)
		if err := check(); err != nil {
			return nil, err
		}
	}

	g = &Graph{NumV: numV}
	g.OutIndex, g.OutNbrs = bucketByKey(numV, edges, keySrc, pool)
	if err := check(); err != nil {
		return nil, err
	}
	g.InIndex, g.InNbrs = bucketByKey(numV, edges, keyDst, pool)
	if err := check(); err != nil {
		return nil, err
	}
	sortAdjacency(g.OutIndex, g.OutNbrs, pool)
	sortAdjacency(g.InIndex, g.InNbrs, pool)
	if err := check(); err != nil {
		return nil, err
	}
	if opt.Dedup {
		g.OutIndex, g.OutNbrs = dedupAdjacency(g.OutIndex, g.OutNbrs, pool)
		g.InIndex, g.InNbrs = dedupAdjacency(g.InIndex, g.InNbrs, pool)
		if err := check(); err != nil {
			return nil, err
		}
		if g.OutIndex[numV] != g.InIndex[numV] {
			// Cannot happen: dedup on both sides removes the same
			// duplicate (src,dst) pairs.
			return nil, fmt.Errorf("graph: internal dedup mismatch")
		}
	}
	g.NumE = g.OutIndex[numV]

	if opt.RemoveZeroDegree {
		g = compactZeroDegree(g, pool)
	}
	return g, nil
}

// validateEdges returns the index of the first out-of-range edge, or
// -1 when all edges are valid. The parallel reduction keeps the
// earliest bad index so the error message matches the sequential scan.
func validateEdges(numV int, edges []Edge, pool *sched.Pool) int {
	if pool == nil || len(edges) == 0 {
		return firstBadEdge(numV, edges, 0)
	}
	bad := make([]int, pool.Workers())
	for i := range bad {
		bad[i] = -1
	}
	pool.ForStatic(len(edges), func(w, lo, hi int) {
		bad[w] = firstBadEdge(numV, edges[lo:hi], lo)
	})
	first := -1
	for _, b := range bad {
		if b >= 0 && (first < 0 || b < first) {
			first = b
		}
	}
	return first
}

//ihtl:noalloc
func firstBadEdge(numV int, edges []Edge, base int) int {
	for i, e := range edges {
		if int(e.Src) >= numV || int(e.Dst) >= numV {
			return base + i
		}
	}
	return -1
}

// dropSelfLoops filters (v,v) edges, preserving edge order. The
// parallel path is a stable per-worker count/prefix/fill.
func dropSelfLoops(edges []Edge, pool *sched.Pool) []Edge {
	if pool == nil {
		kept := make([]Edge, 0, len(edges))
		for _, e := range edges {
			if e.Src != e.Dst {
				kept = append(kept, e)
			}
		}
		return kept
	}
	w := pool.Workers()
	counts := make([]int64, w+1)
	pool.ForStatic(len(edges), func(worker, lo, hi int) {
		counts[worker+1] = countNonLoops(edges[lo:hi])
	})
	for i := 0; i < w; i++ {
		counts[i+1] += counts[i]
	}
	kept := make([]Edge, counts[w])
	pool.ForStatic(len(edges), func(worker, lo, hi int) {
		fillNonLoops(edges[lo:hi], kept[counts[worker]:counts[worker+1]])
	})
	return kept
}

//ihtl:noalloc
func countNonLoops(edges []Edge) int64 {
	var n int64
	for _, e := range edges {
		if e.Src != e.Dst {
			n++
		}
	}
	return n
}

//ihtl:noalloc
func fillNonLoops(edges []Edge, out []Edge) {
	i := 0
	for _, e := range edges {
		if e.Src != e.Dst {
			out[i] = e
			i++
		}
	}
}

// bucketByKey groups edges by key vertex via counting sort, returning
// the offset array and the grouped values. With a pool, each worker
// histograms a contiguous edge range, the per-worker histograms are
// folded and prefix-summed into the offset array, and each worker
// scatters its own range through per-(vertex,worker) cursors. Workers
// own ascending edge ranges and scatter in input order, so the result
// is the same stable bucket order as the sequential loop.
func bucketByKey(numV int, edges []Edge, kv func(Edge) (key, val VID), pool *sched.Pool) ([]int64, []VID) {
	index := make([]int64, numV+1)
	nbrs := make([]VID, len(edges))
	if numV == 0 {
		return index, nbrs
	}
	if pool == nil {
		countKeys(edges, index[1:], kv)
		prefixSeq(index)
		cursor := make([]int64, numV)
		copy(cursor, index[:numV])
		scatterEdges(edges, cursor, nbrs, kv)
		return index, nbrs
	}
	w := pool.Workers()
	counts := make([]int64, w*numV)
	pool.ForStatic(len(edges), func(worker, lo, hi int) {
		countKeys(edges[lo:hi], counts[worker*numV:(worker+1)*numV], kv)
	})
	// Fold per-worker histograms into per-vertex totals.
	pool.ForStatic(numV, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			var t int64
			for i := 0; i < w; i++ {
				t += counts[i*numV+v]
			}
			index[v+1] = t
		}
	})
	sched.PrefixSum(pool, index)
	// Turn the histograms into scatter cursors: worker i's run of key
	// v starts after the runs of workers < i.
	pool.ForStatic(numV, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			off := index[v]
			for i := 0; i < w; i++ {
				c := counts[i*numV+v]
				counts[i*numV+v] = off
				off += c
			}
		}
	})
	pool.ForStatic(len(edges), func(worker, lo, hi int) {
		scatterEdges(edges[lo:hi], counts[worker*numV:(worker+1)*numV], nbrs, kv)
	})
	return index, nbrs
}

//ihtl:noalloc
func prefixSeq(a []int64) {
	var s int64
	for i := range a {
		s += a[i]
		a[i] = s
	}
}

//ihtl:noalloc
func countKeys(edges []Edge, counts []int64, kv func(Edge) (key, val VID)) {
	for _, e := range edges {
		k, _ := kv(e)
		counts[k]++
	}
}

//ihtl:noalloc
func scatterEdges(edges []Edge, cursor []int64, nbrs []VID, kv func(Edge) (key, val VID)) {
	for _, e := range edges {
		k, val := kv(e)
		nbrs[cursor[k]] = val
		cursor[k]++
	}
}

// sortAdjacency sorts each vertex's neighbour list ascending, work-
// stealing across vertex ranges when a pool is supplied (per-vertex
// work is as skewed as the degree distribution).
func sortAdjacency(index []int64, nbrs []VID, pool *sched.Pool) {
	n := len(index) - 1
	if pool == nil {
		for v := 0; v < n; v++ {
			sortRange(index, nbrs, v)
		}
		return
	}
	pool.ForSteal(n, 256, func(_, lo, hi int) {
		faultinject.Fire(faultinject.SiteBuildSort)
		for v := lo; v < hi; v++ {
			sortRange(index, nbrs, v)
		}
	})
}

//ihtl:noalloc
func sortRange(index []int64, nbrs []VID, v int) {
	lo, hi := index[v], index[v+1]
	if hi-lo > 1 {
		slices.Sort(nbrs[lo:hi])
	}
}

// dedupAdjacency removes consecutive duplicates from each sorted
// neighbour list, rebuilding the offset array. The sequential path
// compacts in place; the parallel path counts unique neighbours per
// vertex, prefix-sums, and fills a fresh value array (in-place
// compaction is not safe when another worker may still be reading
// the overwritten range).
func dedupAdjacency(index []int64, nbrs []VID, pool *sched.Pool) ([]int64, []VID) {
	n := len(index) - 1
	if pool == nil {
		newIndex := make([]int64, n+1)
		w := int64(0)
		for v := 0; v < n; v++ {
			newIndex[v] = w
			lo, hi := index[v], index[v+1]
			for i := lo; i < hi; i++ {
				if i > lo && nbrs[i] == nbrs[i-1] {
					continue
				}
				nbrs[w] = nbrs[i]
				w++
			}
		}
		newIndex[n] = w
		return newIndex, nbrs[:w:w]
	}
	newIndex := make([]int64, n+1)
	pool.ForSteal(n, 256, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			newIndex[v+1] = countUnique(nbrs[index[v]:index[v+1]])
		}
	})
	sched.PrefixSum(pool, newIndex)
	out := make([]VID, newIndex[n])
	pool.ForSteal(n, 256, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			fillUnique(nbrs[index[v]:index[v+1]], out[newIndex[v]:newIndex[v+1]])
		}
	})
	return newIndex, out
}

//ihtl:noalloc
func countUnique(sorted []VID) int64 {
	var n int64
	for i := range sorted {
		if i == 0 || sorted[i] != sorted[i-1] {
			n++
		}
	}
	return n
}

//ihtl:noalloc
func fillUnique(sorted []VID, out []VID) {
	w := 0
	for i := range sorted {
		if i == 0 || sorted[i] != sorted[i-1] {
			out[w] = sorted[i]
			w++
		}
	}
}

// compactZeroDegree removes vertices with no edges at all and
// renumbers the remaining vertices, preserving their relative order.
func compactZeroDegree(g *Graph, pool *sched.Pool) *Graph {
	if pool == nil {
		return compactZeroDegreeSeq(g)
	}
	w := pool.Workers()
	counts := make([]int64, w+1)
	pool.ForStatic(g.NumV, func(worker, lo, hi int) {
		var c int64
		for v := lo; v < hi; v++ {
			if g.OutIndex[v+1] > g.OutIndex[v] || g.InIndex[v+1] > g.InIndex[v] {
				c++
			}
		}
		counts[worker+1] = c
	})
	for i := 0; i < w; i++ {
		counts[i+1] += counts[i]
	}
	kept := int(counts[w])
	if kept == g.NumV {
		return g
	}
	remap := make([]VID, g.NumV)
	oldOf := make([]VID, kept)
	pool.ForStatic(g.NumV, func(worker, lo, hi int) {
		next := counts[worker]
		for v := lo; v < hi; v++ {
			if g.OutIndex[v+1] > g.OutIndex[v] || g.InIndex[v+1] > g.InIndex[v] {
				remap[v] = VID(next)
				oldOf[next] = VID(v)
				next++
			} else {
				remap[v] = ^VID(0)
			}
		}
	})
	ng := &Graph{
		NumV:     kept,
		NumE:     g.NumE,
		OutIndex: make([]int64, kept+1),
		OutNbrs:  make([]VID, g.NumE),
		InIndex:  make([]int64, kept+1),
		InNbrs:   make([]VID, g.NumE),
	}
	outIndex, inIndex := ng.OutIndex, ng.InIndex
	pool.ForStatic(kept, func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			v := oldOf[u]
			outIndex[u+1] = g.OutIndex[v+1] - g.OutIndex[v]
			inIndex[u+1] = g.InIndex[v+1] - g.InIndex[v]
		}
	})
	sched.PrefixSum(pool, ng.OutIndex)
	sched.PrefixSum(pool, ng.InIndex)
	pool.ForSteal(kept, 256, func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			v := oldOf[u]
			remapCopy(ng.OutNbrs[ng.OutIndex[u]:ng.OutIndex[u+1]], g.OutNbrs[g.OutIndex[v]:g.OutIndex[v+1]], remap)
			remapCopy(ng.InNbrs[ng.InIndex[u]:ng.InIndex[u+1]], g.InNbrs[g.InIndex[v]:g.InIndex[v+1]], remap)
		}
	})
	return ng
}

//ihtl:noalloc
func remapCopy(dst, src, remap []VID) {
	for i, u := range src {
		dst[i] = remap[u]
	}
}

func compactZeroDegreeSeq(g *Graph) *Graph {
	remap := make([]VID, g.NumV)
	kept := 0
	for v := 0; v < g.NumV; v++ {
		if g.OutIndex[v+1] > g.OutIndex[v] || g.InIndex[v+1] > g.InIndex[v] {
			remap[v] = VID(kept)
			kept++
		} else {
			remap[v] = ^VID(0)
		}
	}
	if kept == g.NumV {
		return g
	}
	ng := &Graph{
		NumV:     kept,
		NumE:     g.NumE,
		OutIndex: make([]int64, kept+1),
		OutNbrs:  make([]VID, g.NumE),
		InIndex:  make([]int64, kept+1),
		InNbrs:   make([]VID, g.NumE),
	}
	w := 0
	for v := 0; v < g.NumV; v++ {
		if remap[v] == ^VID(0) {
			continue
		}
		ng.OutIndex[w+1] = ng.OutIndex[w] + (g.OutIndex[v+1] - g.OutIndex[v])
		ng.InIndex[w+1] = ng.InIndex[w] + (g.InIndex[v+1] - g.InIndex[v])
		copy(ng.OutNbrs[ng.OutIndex[w]:ng.OutIndex[w+1]], g.OutNbrs[g.OutIndex[v]:g.OutIndex[v+1]])
		copy(ng.InNbrs[ng.InIndex[w]:ng.InIndex[w+1]], g.InNbrs[g.InIndex[v]:g.InIndex[v+1]])
		w++
	}
	for i, u := range ng.OutNbrs {
		ng.OutNbrs[i] = remap[u]
	}
	for i, u := range ng.InNbrs {
		ng.InNbrs[i] = remap[u]
	}
	return ng
}
