package graph

import (
	"fmt"
	"sort"

	"ihtl/internal/sched"
)

// BuildOptions controls how an edge list is turned into a Graph.
type BuildOptions struct {
	// Dedup removes duplicate (src,dst) pairs. The paper's datasets
	// are simple graphs, so this defaults to on in Build.
	Dedup bool
	// DropSelfLoops removes (v,v) edges.
	DropSelfLoops bool
	// RemoveZeroDegree compacts away vertices with neither in- nor
	// out-edges and renumbers the rest, as the paper does ("counted
	// after removing zero degree vertices because of their
	// destructive effect").
	RemoveZeroDegree bool
	// Pool is the worker pool to parallelise the build with. When
	// nil the build runs sequentially.
	Pool *sched.Pool
}

// DefaultBuildOptions mirror the paper's dataset preparation.
func DefaultBuildOptions() BuildOptions {
	return BuildOptions{Dedup: true, DropSelfLoops: false, RemoveZeroDegree: true}
}

// FromEdges builds a Graph over vertex IDs [0, numV) from the given
// edge list using the default options. It panics on out-of-range IDs;
// use Build for error returns.
func FromEdges(numV int, edges []Edge) *Graph {
	g, err := Build(numV, edges, DefaultBuildOptions())
	if err != nil {
		panic(err)
	}
	return g
}

// Build constructs the dual CSR/CSC representation from an edge list
// in O(V + E) time using counting sort (no comparison sort on the
// edge list). The input slice is not modified.
func Build(numV int, edges []Edge, opt BuildOptions) (*Graph, error) {
	if numV < 0 || numV >= 1<<32 {
		return nil, fmt.Errorf("graph: vertex count %d out of range", numV)
	}
	for i, e := range edges {
		if int(e.Src) >= numV || int(e.Dst) >= numV {
			return nil, fmt.Errorf("graph: edge %d (%d->%d) out of range [0,%d)", i, e.Src, e.Dst, numV)
		}
	}
	if opt.DropSelfLoops {
		kept := make([]Edge, 0, len(edges))
		for _, e := range edges {
			if e.Src != e.Dst {
				kept = append(kept, e)
			}
		}
		edges = kept
	}

	g := &Graph{NumV: numV}
	g.OutIndex, g.OutNbrs = bucketByKey(numV, edges, func(e Edge) (VID, VID) { return e.Src, e.Dst })
	g.InIndex, g.InNbrs = bucketByKey(numV, edges, func(e Edge) (VID, VID) { return e.Dst, e.Src })
	sortAdjacency(g.OutIndex, g.OutNbrs, opt.Pool)
	sortAdjacency(g.InIndex, g.InNbrs, opt.Pool)
	if opt.Dedup {
		g.OutIndex, g.OutNbrs = dedupAdjacency(g.OutIndex, g.OutNbrs)
		g.InIndex, g.InNbrs = dedupAdjacency(g.InIndex, g.InNbrs)
		if g.OutIndex[numV] != g.InIndex[numV] {
			// Cannot happen: dedup on both sides removes the same
			// duplicate (src,dst) pairs.
			return nil, fmt.Errorf("graph: internal dedup mismatch")
		}
	}
	g.NumE = g.OutIndex[numV]

	if opt.RemoveZeroDegree {
		g = compactZeroDegree(g)
	}
	return g, nil
}

// bucketByKey groups edges by key vertex via counting sort, returning
// the offset array and the grouped values.
func bucketByKey(numV int, edges []Edge, kv func(Edge) (key, val VID)) ([]int64, []VID) {
	index := make([]int64, numV+1)
	for _, e := range edges {
		k, _ := kv(e)
		index[k+1]++
	}
	for v := 0; v < numV; v++ {
		index[v+1] += index[v]
	}
	nbrs := make([]VID, len(edges))
	cursor := make([]int64, numV)
	copy(cursor, index[:numV])
	for _, e := range edges {
		k, val := kv(e)
		nbrs[cursor[k]] = val
		cursor[k]++
	}
	return index, nbrs
}

// sortAdjacency sorts each vertex's neighbour list ascending, in
// parallel when a pool is supplied.
func sortAdjacency(index []int64, nbrs []VID, pool *sched.Pool) {
	n := len(index) - 1
	sortOne := func(v int) {
		lo, hi := index[v], index[v+1]
		if hi-lo > 1 {
			s := nbrs[lo:hi]
			sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		}
	}
	if pool == nil {
		for v := 0; v < n; v++ {
			sortOne(v)
		}
		return
	}
	pool.ForDynamic(n, 256, func(w, lo, hi int) {
		for v := lo; v < hi; v++ {
			sortOne(v)
		}
	})
}

// dedupAdjacency removes consecutive duplicates from each sorted
// neighbour list, rebuilding the offset array.
func dedupAdjacency(index []int64, nbrs []VID) ([]int64, []VID) {
	n := len(index) - 1
	newIndex := make([]int64, n+1)
	w := int64(0)
	for v := 0; v < n; v++ {
		newIndex[v] = w
		lo, hi := index[v], index[v+1]
		for i := lo; i < hi; i++ {
			if i > lo && nbrs[i] == nbrs[i-1] {
				continue
			}
			nbrs[w] = nbrs[i]
			w++
		}
	}
	newIndex[n] = w
	return newIndex, nbrs[:w:w]
}

// compactZeroDegree removes vertices with no edges at all and
// renumbers the remaining vertices, preserving their relative order.
func compactZeroDegree(g *Graph) *Graph {
	remap := make([]VID, g.NumV)
	kept := 0
	for v := 0; v < g.NumV; v++ {
		if g.OutIndex[v+1] > g.OutIndex[v] || g.InIndex[v+1] > g.InIndex[v] {
			remap[v] = VID(kept)
			kept++
		} else {
			remap[v] = ^VID(0)
		}
	}
	if kept == g.NumV {
		return g
	}
	ng := &Graph{
		NumV:     kept,
		NumE:     g.NumE,
		OutIndex: make([]int64, kept+1),
		OutNbrs:  make([]VID, g.NumE),
		InIndex:  make([]int64, kept+1),
		InNbrs:   make([]VID, g.NumE),
	}
	w := 0
	for v := 0; v < g.NumV; v++ {
		if remap[v] == ^VID(0) {
			continue
		}
		ng.OutIndex[w+1] = ng.OutIndex[w] + (g.OutIndex[v+1] - g.OutIndex[v])
		ng.InIndex[w+1] = ng.InIndex[w] + (g.InIndex[v+1] - g.InIndex[v])
		copy(ng.OutNbrs[ng.OutIndex[w]:ng.OutIndex[w+1]], g.OutNbrs[g.OutIndex[v]:g.OutIndex[v+1]])
		copy(ng.InNbrs[ng.InIndex[w]:ng.InIndex[w+1]], g.InNbrs[g.InIndex[v]:g.InIndex[v+1]])
		w++
	}
	for i, u := range ng.OutNbrs {
		ng.OutNbrs[i] = remap[u]
	}
	for i, u := range ng.InNbrs {
		ng.InNbrs[i] = remap[u]
	}
	return ng
}
