package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadEdgeListBasic(t *testing.T) {
	input := `# SNAP-style comment
% KONECT-style comment

10 20
20 30
10 30
30 10
`
	g, originals, err := ReadEdgeList(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumV != 3 || g.NumE != 4 {
		t.Fatalf("V=%d E=%d, want 3 and 4", g.NumV, g.NumE)
	}
	// First-appearance compaction: 10->0, 20->1, 30->2.
	want := []int64{10, 20, 30}
	for i, o := range want {
		if originals[i] != o {
			t.Fatalf("originals = %v, want %v", originals, want)
		}
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || !g.HasEdge(0, 2) || !g.HasEdge(2, 0) {
		t.Fatal("edges wrong after compaction")
	}
}

func TestReadEdgeListDedups(t *testing.T) {
	g, _, err := ReadEdgeList(strings.NewReader("1 2\n1 2\n1\t2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumE != 1 {
		t.Fatalf("E=%d, want 1 after dedup", g.NumE)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"1\n",    // one field
		"a b\n",  // non-numeric
		"1 x\n",  // bad destination
		"-1 2\n", // negative
		"3 -7\n", // negative dst
	}
	for _, c := range cases {
		if _, _, err := ReadEdgeList(strings.NewReader(c)); err == nil {
			t.Errorf("input %q accepted", c)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := PaperExample()
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	g2, originals, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumV != g.NumV || g2.NumE != g.NumE {
		t.Fatalf("round trip changed counts: V=%d E=%d", g2.NumV, g2.NumE)
	}
	// WriteEdgeList emits sources in ascending order, so compaction
	// may renumber; verify structure through the mapping.
	for v2 := 0; v2 < g2.NumV; v2++ {
		origV := VID(originals[v2])
		for _, u2 := range g2.Out(VID(v2)) {
			if !g.HasEdge(origV, VID(originals[u2])) {
				t.Fatalf("phantom edge %d->%d", originals[v2], originals[u2])
			}
		}
		if g2.OutDegree(VID(v2)) != g.OutDegree(origV) {
			t.Fatalf("degree mismatch at original %d", origV)
		}
	}
}

func TestReadEdgeListEmpty(t *testing.T) {
	g, originals, err := ReadEdgeList(strings.NewReader("# nothing\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumV != 0 || len(originals) != 0 {
		t.Fatal("empty input should give empty graph")
	}
}
