package graph

import (
	"testing"

	"ihtl/internal/sched"
)

func TestPaperExampleStructure(t *testing.T) {
	g := PaperExample()
	if g.NumV != 8 || g.NumE != 14 {
		t.Fatalf("paper example: V=%d E=%d, want V=8 E=14", g.NumV, g.NumE)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// In-hubs #3, #7 (0-indexed 2, 6) with in-degrees 5 and 4.
	if d := g.InDegree(2); d != 5 {
		t.Errorf("InDegree(2) = %d, want 5", d)
	}
	if d := g.InDegree(6); d != 4 {
		t.Errorf("InDegree(6) = %d, want 4", d)
	}
	// In-neighbours of #3 are {2,5,6,7,8} (paper) = {1,4,5,6,7}.
	want := []VID{1, 4, 5, 6, 7}
	got := g.In(2)
	if len(got) != len(want) {
		t.Fatalf("In(2) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("In(2) = %v, want %v", got, want)
		}
	}
	// Out-degrees of Figure 5 rows: 1,2,1,1,2,4,2,1.
	wantOut := []int{1, 2, 1, 1, 2, 4, 2, 1}
	for v, w := range wantOut {
		if d := g.OutDegree(VID(v)); d != w {
			t.Errorf("OutDegree(%d) = %d, want %d", v, d, w)
		}
	}
	maxIn, v := g.MaxInDegree()
	if maxIn != 5 || v != 2 {
		t.Errorf("MaxInDegree = (%d,%d), want (5,2)", maxIn, v)
	}
}

func TestHasEdge(t *testing.T) {
	g := PaperExample()
	cases := []struct {
		s, d VID
		want bool
	}{
		{0, 1, true}, {1, 2, true}, {5, 7, true}, {6, 0, true},
		{1, 0, false}, {0, 2, false}, {7, 6, false}, {2, 2, false},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.s, c.d); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", c.s, c.d, got, c.want)
		}
	}
}

func TestBuildDedup(t *testing.T) {
	edges := []Edge{{0, 1}, {0, 1}, {0, 1}, {1, 0}}
	g, err := Build(2, edges, BuildOptions{Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumE != 2 {
		t.Fatalf("NumE = %d after dedup, want 2", g.NumE)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Without dedup duplicates are preserved.
	g2, err := Build(2, edges, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumE != 4 {
		t.Fatalf("NumE = %d without dedup, want 4", g2.NumE)
	}
}

func TestBuildDropSelfLoops(t *testing.T) {
	edges := []Edge{{0, 0}, {0, 1}, {1, 1}}
	g, err := Build(2, edges, BuildOptions{DropSelfLoops: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumE != 1 || !g.HasEdge(0, 1) {
		t.Fatalf("self loops not dropped: E=%d", g.NumE)
	}
}

func TestBuildRemovesZeroDegree(t *testing.T) {
	// Vertices 1 and 3 are isolated out of 5.
	edges := []Edge{{0, 2}, {2, 4}, {4, 0}}
	g, err := Build(5, edges, BuildOptions{RemoveZeroDegree: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumV != 3 || g.NumE != 3 {
		t.Fatalf("V=%d E=%d, want V=3 E=3", g.NumV, g.NumE)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Relative order preserved: old 0,2,4 -> new 0,1,2.
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || !g.HasEdge(2, 0) {
		t.Fatal("compaction broke edge structure")
	}
}

func TestBuildRejectsOutOfRange(t *testing.T) {
	if _, err := Build(2, []Edge{{0, 5}}, BuildOptions{}); err == nil {
		t.Fatal("expected error for out-of-range edge")
	}
	if _, err := Build(-1, nil, BuildOptions{}); err == nil {
		t.Fatal("expected error for negative vertex count")
	}
}

func TestBuildEmpty(t *testing.T) {
	g, err := Build(0, nil, DefaultBuildOptions())
	if err != nil {
		t.Fatal(err)
	}
	if g.NumV != 0 || g.NumE != 0 {
		t.Fatalf("empty graph V=%d E=%d", g.NumV, g.NumE)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTranspose(t *testing.T) {
	g := PaperExample()
	tr := g.Transpose()
	if tr.NumV != g.NumV || tr.NumE != g.NumE {
		t.Fatal("transpose changed counts")
	}
	for v := 0; v < g.NumV; v++ {
		if g.InDegree(VID(v)) != tr.OutDegree(VID(v)) {
			t.Fatalf("transpose degree mismatch at %d", v)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Double transpose is the original.
	tt := tr.Transpose()
	for v := 0; v < g.NumV; v++ {
		a, b := g.Out(VID(v)), tt.Out(VID(v))
		if len(a) != len(b) {
			t.Fatalf("double transpose broke vertex %d", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("double transpose broke vertex %d", v)
			}
		}
	}
}

func TestCSRCSCConsistency(t *testing.T) {
	g := PaperExample()
	// Every CSR edge must appear in CSC and vice versa.
	for v := 0; v < g.NumV; v++ {
		for _, u := range g.Out(VID(v)) {
			found := false
			for _, s := range g.In(u) {
				if s == VID(v) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %d->%d in CSR but not CSC", v, u)
			}
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	fresh := func() *Graph { return PaperExample() }

	g := fresh()
	g.NumE++
	if g.Validate() == nil {
		t.Error("edge count corruption not caught")
	}

	g = fresh()
	g.OutNbrs[0] = 200
	if g.Validate() == nil {
		t.Error("out-of-range neighbour not caught")
	}

	g = fresh()
	g.OutIndex[1], g.OutIndex[2] = g.OutIndex[2], g.OutIndex[1]
	if g.Validate() == nil {
		t.Error("decreasing index not caught")
	}

	g = fresh()
	g.InNbrs[0], g.InNbrs[1] = g.InNbrs[1], g.InNbrs[0]
	// Swapping within one vertex's list keeps the multiset identical;
	// swap across vertices instead to break CSR/CSC agreement.
	g = fresh()
	g.InNbrs[g.InIndex[2]] = g.InNbrs[g.InIndex[2]+1]
	if g.Validate() == nil {
		t.Error("CSR/CSC disagreement not caught")
	}
}

func TestFixtures(t *testing.T) {
	for name, g := range map[string]*Graph{
		"path":     Path(10),
		"cycle":    Cycle(10),
		"star":     Star(10),
		"complete": Complete(6),
	} {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if g := Star(10); g.InDegree(0) != 9 {
		t.Error("star hub in-degree wrong")
	}
	if g := Complete(6); g.NumE != 30 {
		t.Errorf("complete K6 has %d edges, want 30", g.NumE)
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := PaperExample()
	edges := g.Edges(nil)
	if int64(len(edges)) != g.NumE {
		t.Fatalf("Edges returned %d, want %d", len(edges), g.NumE)
	}
	g2, err := Build(g.NumV, edges, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumV; v++ {
		a, b := g.Out(VID(v)), g2.Out(VID(v))
		if len(a) != len(b) {
			t.Fatalf("round trip broke vertex %d", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("round trip broke vertex %d", v)
			}
		}
	}
}

func TestTopologyBytes(t *testing.T) {
	g := PaperExample()
	csr, csc := g.TopologyBytes()
	wantIdx := int64(9 * 8)
	if csr != wantIdx+14*4 || csc != wantIdx+14*4 {
		t.Fatalf("TopologyBytes = (%d,%d)", csr, csc)
	}
}

func TestDegreeAndStringAndMaxOut(t *testing.T) {
	g := PaperExample()
	// Degree = in + out: vertex 2 has in 5, out 1.
	if d := g.Degree(2); d != 6 {
		t.Fatalf("Degree(2) = %d, want 6", d)
	}
	maxOut, v := g.MaxOutDegree()
	if maxOut != 4 || v != 5 {
		t.Fatalf("MaxOutDegree = (%d,%d), want (4,5)", maxOut, v)
	}
	if s := g.String(); s != "Graph{V=8, E=14}" {
		t.Fatalf("String = %q", s)
	}
}

func TestParallelBuilderSortsAdjacency(t *testing.T) {
	// Exercise the pooled sortAdjacency path.
	pool := sched.NewPool(4)
	defer pool.Close()
	edges := randomGraph(31, 500, 8000).Edges(nil)
	g, err := Build(500, edges, BuildOptions{Dedup: true, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumV; v++ {
		out := g.Out(VID(v))
		for i := 1; i < len(out); i++ {
			if out[i-1] >= out[i] {
				t.Fatalf("parallel build left unsorted adjacency at %d", v)
			}
		}
	}
}

func TestFromEdgesRejectsBadInput(t *testing.T) {
	if _, err := FromEdges(2, []Edge{{Src: 0, Dst: 9}}); err == nil {
		t.Fatal("FromEdges accepted out-of-range edge")
	}
}

func TestMustFromEdgesPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustFromEdges accepted out-of-range edge")
		}
	}()
	MustFromEdges(2, []Edge{{Src: 0, Dst: 9}})
}

func TestRelabelRejectsShortPerm(t *testing.T) {
	if _, err := Relabel(PaperExample(), make([]VID, 2)); err == nil {
		t.Fatal("Relabel accepted short permutation")
	}
}

func TestSaveFileErrorPaths(t *testing.T) {
	g := PaperExample()
	if err := g.SaveFile("/nonexistent-dir/x.bin"); err == nil {
		t.Fatal("SaveFile into missing dir succeeded")
	}
	if err := g.SaveFileCompressed("/nonexistent-dir/x.bin"); err == nil {
		t.Fatal("SaveFileCompressed into missing dir succeeded")
	}
	if _, err := LoadFileAuto("/nonexistent-dir/x.bin"); err == nil {
		t.Fatal("LoadFileAuto of missing file succeeded")
	}
}
