package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"ihtl/internal/atomicio"
	"ihtl/internal/compress"
)

// Compressed binary format (little-endian), the §6 "light-weight
// graph compression" extension: header as in the flat format, then
// varint-delta-encoded adjacency streams (see DecodeCompressed for
// the exact layout). Neighbour lists must be sorted, which Build
// guarantees.
const compressedMagic = uint64(0x4948544c47525043) // "IHTLGRPC"

// WriteToCompressed serialises g with delta-varint compressed
// adjacency. For locality-friendly vertex orders this typically
// shrinks the neighbour arrays 2-4x versus the flat 4-byte encoding.
func (g *Graph) WriteToCompressed(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	var n int64
	put := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	for _, h := range []any{compressedMagic, fileVersion, uint32(g.NumV), uint64(g.NumE)} {
		if err := put(h); err != nil {
			return n, err
		}
	}
	for _, adj := range []struct {
		index []int64
		nbrs  []VID
	}{{g.OutIndex, g.OutNbrs}, {g.InIndex, g.InNbrs}} {
		enc := compress.EncodeAdjacency(adj.index, adj.nbrs)
		if err := put(uint64(len(enc))); err != nil {
			return n, err
		}
		if err := put(enc); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadFromCompressed deserialises a graph written by
// WriteToCompressed and validates it.
func ReadFromCompressed(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic uint64
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if magic != compressedMagic {
		return nil, fmt.Errorf("graph: bad compressed magic %#x", magic)
	}
	var version uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != fileVersion {
		return nil, fmt.Errorf("graph: unsupported version %d", version)
	}
	var numV uint32
	var numE uint64
	if err := binary.Read(br, binary.LittleEndian, &numV); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &numE); err != nil {
		return nil, err
	}
	if numE > 1<<40 {
		return nil, fmt.Errorf("graph: implausible edge count %d", numE)
	}
	g := &Graph{NumV: int(numV), NumE: int64(numE)}
	for i := 0; i < 2; i++ {
		var size uint64
		if err := binary.Read(br, binary.LittleEndian, &size); err != nil {
			return nil, err
		}
		if size > 16*(numE+uint64(numV)+16) {
			return nil, fmt.Errorf("graph: implausible stream size %d", size)
		}
		buf := make([]byte, size)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, err
		}
		index, nbrs, err := compress.DecodeAdjacency(buf, int(numV), int64(numE))
		if err != nil {
			return nil, err
		}
		if i == 0 {
			g.OutIndex, g.OutNbrs = index, nbrs
		} else {
			g.InIndex, g.InNbrs = index, nbrs
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: corrupt compressed file: %w", err)
	}
	return g, nil
}

// SaveFileCompressed writes g to path in the compressed format,
// atomically replacing any existing file.
func (g *Graph) SaveFileCompressed(path string) error {
	return atomicio.WriteFile(path, func(w io.Writer) error {
		_, err := g.WriteToCompressed(w)
		return err
	})
}

// LoadFileAuto reads a graph from path in either format, sniffing the
// magic number.
func LoadFileAuto(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	m := binary.LittleEndian.Uint64(magic[:])
	switch m {
	case compressedMagic:
		return ReadFromCompressed(f)
	case fileMagic:
		return ReadFrom(f)
	default:
		return nil, fmt.Errorf("graph: unknown magic %#x", m)
	}
}
