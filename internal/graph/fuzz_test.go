package graph

import (
	"bytes"
	"testing"
)

// Fuzz targets run their seed corpus as regular tests under go test;
// run with -fuzz=FuzzReadFrom for continuous fuzzing. The decoders
// must never panic or accept a byte stream that fails Validate.

func FuzzReadFrom(f *testing.F) {
	var buf bytes.Buffer
	if _, err := PaperExample().WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("IHTLGRPH garbage after magic"))
	data := append([]byte(nil), buf.Bytes()...)
	data[20] ^= 0xFF
	f.Add(data)

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadFrom(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("decoder accepted invalid graph: %v", err)
		}
	})
}

func FuzzReadFromCompressed(f *testing.F) {
	var buf bytes.Buffer
	if _, err := PaperExample().WriteToCompressed(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	data := append([]byte(nil), buf.Bytes()...)
	if len(data) > 30 {
		data[30] ^= 0x55
	}
	f.Add(data)

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadFromCompressed(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("compressed decoder accepted invalid graph: %v", err)
		}
	})
}
