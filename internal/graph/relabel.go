package graph

import (
	"fmt"
	"slices"
)

// Relabel returns a new graph in which every vertex v of g is renamed
// to newID[v]. newID must be a permutation of [0, NumV); Relabel
// returns an error otherwise. Neighbour lists of the result are
// re-sorted so the output satisfies the Graph invariants.
//
// Relabeling is the core operation behind both iHTL graph construction
// and the baseline reordering algorithms (SlashBurn, GOrder,
// Rabbit-Order).
func Relabel(g *Graph, newID []VID) (*Graph, error) {
	if len(newID) != g.NumV {
		return nil, fmt.Errorf("graph: permutation length %d != NumV %d", len(newID), g.NumV)
	}
	seen := make([]bool, g.NumV)
	for v, id := range newID {
		if int(id) >= g.NumV {
			return nil, fmt.Errorf("graph: newID[%d]=%d out of range", v, id)
		}
		if seen[id] {
			return nil, fmt.Errorf("graph: newID is not a permutation (duplicate %d)", id)
		}
		seen[id] = true
	}

	ng := &Graph{
		NumV:     g.NumV,
		NumE:     g.NumE,
		OutIndex: make([]int64, g.NumV+1),
		OutNbrs:  make([]VID, g.NumE),
		InIndex:  make([]int64, g.NumV+1),
		InNbrs:   make([]VID, g.NumE),
	}
	// Degrees under new labels.
	for v := 0; v < g.NumV; v++ {
		nv := newID[v]
		ng.OutIndex[nv+1] = g.OutIndex[v+1] - g.OutIndex[v]
		ng.InIndex[nv+1] = g.InIndex[v+1] - g.InIndex[v]
	}
	for v := 0; v < g.NumV; v++ {
		ng.OutIndex[v+1] += ng.OutIndex[v]
		ng.InIndex[v+1] += ng.InIndex[v]
	}
	for v := 0; v < g.NumV; v++ {
		nv := newID[v]
		dst := ng.OutNbrs[ng.OutIndex[nv]:ng.OutIndex[nv+1]]
		for i, u := range g.Out(VID(v)) {
			dst[i] = newID[u]
		}
		slices.Sort(dst)
		din := ng.InNbrs[ng.InIndex[nv]:ng.InIndex[nv+1]]
		for i, u := range g.In(VID(v)) {
			din[i] = newID[u]
		}
		slices.Sort(din)
	}
	return ng, nil
}

// IdentityPerm returns the identity permutation over n vertices.
func IdentityPerm(n int) []VID {
	p := make([]VID, n)
	for i := range p {
		p[i] = VID(i)
	}
	return p
}

// InvertPerm returns the inverse permutation: if p[v] = w then
// InvertPerm(p)[w] = v.
func InvertPerm(p []VID) []VID {
	inv := make([]VID, len(p))
	for v, w := range p {
		inv[w] = VID(v)
	}
	return inv
}

// ComposePerm returns the permutation applying first then second:
// result[v] = second[first[v]].
func ComposePerm(first, second []VID) []VID {
	if len(first) != len(second) {
		panic("graph: permutation length mismatch")
	}
	out := make([]VID, len(first))
	for v := range first {
		out[v] = second[first[v]]
	}
	return out
}
