package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ReadEdgeList parses the whitespace-separated text edge-list format
// used by SNAP, KONECT and the Laboratory for Web Algorithmics
// exports (the sources of the paper's datasets, Table 1): one
// "src dst" pair per line, '#' or '%' comment lines ignored, blank
// lines ignored. Vertex IDs may be sparse and unordered; they are
// compacted to [0, NumV) preserving first-appearance order, and the
// graph is built with the paper's preparation (dedup, drop
// zero-degree vertices).
//
// The returned mapping gives the original ID of each compacted
// vertex BEFORE zero-degree removal is applied by Build; because
// every listed endpoint has at least one edge, removal is a no-op and
// the mapping stays exact.
func ReadEdgeList(r io.Reader) (*Graph, []int64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []Edge
	ids := make(map[int64]VID)
	var originals []int64
	intern := func(raw int64) (VID, error) {
		if v, ok := ids[raw]; ok {
			return v, nil
		}
		if len(ids) >= 1<<32-1 {
			return 0, fmt.Errorf("graph: more than 2^32-1 distinct vertices")
		}
		v := VID(len(ids))
		ids[raw] = v
		originals = append(originals, raw)
		return v, nil
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, nil, fmt.Errorf("graph: line %d: want 'src dst', got %q", lineNo, line)
		}
		var src, dst int64
		if _, err := fmt.Sscan(fields[0], &src); err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: bad source %q", lineNo, fields[0])
		}
		if _, err := fmt.Sscan(fields[1], &dst); err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: bad destination %q", lineNo, fields[1])
		}
		if src < 0 || dst < 0 {
			return nil, nil, fmt.Errorf("graph: line %d: negative vertex ID", lineNo)
		}
		s, err := intern(src)
		if err != nil {
			return nil, nil, err
		}
		d, err := intern(dst)
		if err != nil {
			return nil, nil, err
		}
		edges = append(edges, Edge{Src: s, Dst: d})
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	g, err := Build(len(ids), edges, BuildOptions{Dedup: true, DropSelfLoops: false})
	if err != nil {
		return nil, nil, err
	}
	return g, originals, nil
}

// WriteEdgeList writes g as a text edge list with a comment header,
// the inverse of ReadEdgeList (IDs are the compacted ones).
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	fmt.Fprintf(bw, "# ihtl edge list: %d vertices, %d edges\n", g.NumV, g.NumE)
	for v := 0; v < g.NumV; v++ {
		for _, u := range g.Out(VID(v)) {
			fmt.Fprintf(bw, "%d\t%d\n", v, u)
		}
	}
	return bw.Flush()
}
