package graph

import (
	"context"
	"errors"
	"testing"
	"time"

	"ihtl/internal/faultinject"
	"ihtl/internal/sched"
)

func TestBuildCtxPreCancelled(t *testing.T) {
	pool := sched.NewPool(4)
	defer pool.Close()
	edges := skewedEdges(1<<10, 1<<13, 11)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := DefaultBuildOptions()
	opt.Pool = pool
	if _, err := BuildCtx(ctx, 1<<10, edges, opt); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Without a pool the ctx checks still run between phases.
	if _, err := BuildCtx(ctx, 1<<10, edges, DefaultBuildOptions()); !errors.Is(err, context.Canceled) {
		t.Fatalf("sequential err = %v, want context.Canceled", err)
	}
}

func TestBuildCtxInjectedPanic(t *testing.T) {
	pool := sched.NewPool(4)
	defer pool.Close()
	edges := skewedEdges(1<<12, 1<<15, 13)
	opt := DefaultBuildOptions()
	opt.Pool = pool

	plan := faultinject.NewPlan(faultinject.Rule{
		Site: faultinject.SiteBuildSort, Kind: faultinject.Panic, After: 2,
	})
	faultinject.Activate(plan)
	g, err := BuildCtx(nil, 1<<12, edges, opt)
	faultinject.Deactivate()
	if plan.Fired(faultinject.SiteBuildSort) == 0 {
		t.Fatal("sort site never reached the injection point")
	}
	var perr *sched.PanicError
	if !errors.As(err, &perr) {
		t.Fatalf("err = %v, want *sched.PanicError", err)
	}
	var ip *faultinject.InjectedPanic
	if !errors.As(err, &ip) || ip.Site != faultinject.SiteBuildSort {
		t.Fatalf("PanicError does not unwrap to the injected fault: %v", err)
	}
	if g != nil {
		t.Fatal("failed build returned a non-nil graph")
	}

	// The pool and builder are clean afterwards: the next build is
	// bit-for-bit the sequential result.
	want, err := Build(1<<12, edges, DefaultBuildOptions())
	if err != nil {
		t.Fatal(err)
	}
	got, err := BuildCtx(nil, 1<<12, edges, opt)
	if err != nil {
		t.Fatal(err)
	}
	requireGraphsEqual(t, "rebuild after injected panic", want, got)
}

func TestBuildCtxSeededTimeouts(t *testing.T) {
	pool := sched.NewPool(4)
	defer pool.Close()
	edges := skewedEdges(1<<13, 1<<16, 17)
	opt := DefaultBuildOptions()
	opt.Pool = pool
	want, err := Build(1<<13, edges, DefaultBuildOptions())
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 10; seed++ {
		to := time.Duration(faultinject.SeededAfter(seed, "test.graph-build-cancel", 2000)) * time.Microsecond
		ctx, cancel := context.WithTimeout(context.Background(), to)
		g, err := BuildCtx(ctx, 1<<13, edges, opt)
		cancel()
		if err != nil {
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("seed %d: err = %v, want DeadlineExceeded", seed, err)
			}
			continue
		}
		requireGraphsEqual(t, "build that beat the timeout", want, g)
	}
}
