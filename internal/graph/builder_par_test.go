package graph

import (
	"runtime"
	"slices"
	"testing"

	"ihtl/internal/sched"
	"ihtl/internal/xrand"
)

// builderWorkerCounts are the pool sizes the determinism suite sweeps:
// the demoted single-worker path, an odd count that never divides the
// inputs evenly, and whatever this machine would use by default.
func builderWorkerCounts() []int {
	return []int{1, 3, runtime.GOMAXPROCS(0), 6}
}

// skewedEdges generates an edge list with heavy in-hubs: a quarter of
// the edges land on 16 hot destinations, and the list includes
// duplicates and self-loops so every filter path is exercised.
func skewedEdges(numV, m int, seed uint64) []Edge {
	rng := xrand.New(seed)
	edges := make([]Edge, 0, m)
	for i := 0; i < m; i++ {
		src := VID(rng.Uint64n(uint64(numV)))
		var dst VID
		if rng.Uint64()%4 == 0 {
			dst = VID(rng.Uint64n(16) % uint64(numV))
		} else {
			dst = VID(rng.Uint64n(uint64(numV)))
		}
		edges = append(edges, Edge{Src: src, Dst: dst})
		if rng.Uint64()%16 == 0 { // duplicate
			edges = append(edges, Edge{Src: src, Dst: dst})
		}
		if rng.Uint64()%32 == 0 { // self-loop
			edges = append(edges, Edge{Src: src, Dst: src})
		}
	}
	return edges
}

func requireGraphsEqual(t *testing.T, label string, want, got *Graph) {
	t.Helper()
	if got.NumV != want.NumV || got.NumE != want.NumE {
		t.Fatalf("%s: NumV/NumE = %d/%d, want %d/%d", label, got.NumV, got.NumE, want.NumV, want.NumE)
	}
	if !slices.Equal(got.OutIndex, want.OutIndex) {
		t.Fatalf("%s: OutIndex differs", label)
	}
	if !slices.Equal(got.OutNbrs, want.OutNbrs) {
		t.Fatalf("%s: OutNbrs differs", label)
	}
	if !slices.Equal(got.InIndex, want.InIndex) {
		t.Fatalf("%s: InIndex differs", label)
	}
	if !slices.Equal(got.InNbrs, want.InNbrs) {
		t.Fatalf("%s: InNbrs differs", label)
	}
}

// TestBuildParallelDeterminism checks that the parallel build is
// bit-for-bit identical to the sequential build — every index and
// adjacency array — across worker counts, option combinations and
// edge-case inputs.
func TestBuildParallelDeterminism(t *testing.T) {
	type input struct {
		name  string
		numV  int
		edges []Edge
	}
	inputs := []input{
		{"empty", 100, nil},
		{"single", 1, []Edge{{0, 0}, {0, 0}}},
		{"tiny", 5, []Edge{{0, 1}, {1, 2}, {2, 0}, {3, 3}, {0, 1}, {4, 0}}},
		{"skewed", 2000, skewedEdges(2000, 12000, 7)},
		{"zerodeg", 3000, skewedEdges(1000, 5000, 11)}, // vertices [1000,3000) isolated
	}
	opts := []BuildOptions{
		DefaultBuildOptions(),
		{},
		{Dedup: true},
		{Dedup: true, DropSelfLoops: true, RemoveZeroDegree: true},
		{DropSelfLoops: true},
	}
	for _, in := range inputs {
		for oi, opt := range opts {
			opt.Pool = nil
			want, err := Build(in.numV, in.edges, opt)
			if err != nil {
				t.Fatalf("%s/opt%d: sequential Build: %v", in.name, oi, err)
			}
			for _, w := range builderWorkerCounts() {
				p := sched.NewPool(w)
				opt.Pool = p
				got, err := Build(in.numV, in.edges, opt)
				p.Close()
				if err != nil {
					t.Fatalf("%s/opt%d/w%d: parallel Build: %v", in.name, oi, w, err)
				}
				requireGraphsEqual(t, in.name, want, got)
			}
		}
	}
}

// TestBuildParallelErrorParity checks that the parallel validation
// reports the same first out-of-range edge as the sequential scan.
func TestBuildParallelErrorParity(t *testing.T) {
	edges := skewedEdges(500, 3000, 3)
	edges[1733] = Edge{Src: 999, Dst: 0} // first bad edge
	edges[2500] = Edge{Src: 0, Dst: 777} // later bad edge
	opt := DefaultBuildOptions()
	_, seqErr := Build(500, edges, opt)
	if seqErr == nil {
		t.Fatal("sequential Build accepted out-of-range edges")
	}
	for _, w := range builderWorkerCounts() {
		p := sched.NewPool(w)
		opt.Pool = p
		_, parErr := Build(500, edges, opt)
		p.Close()
		if parErr == nil || parErr.Error() != seqErr.Error() {
			t.Fatalf("w%d: parallel error = %v, want %v", w, parErr, seqErr)
		}
	}
}

// TestBuildParallelStress runs a larger build under the race detector
// and compares against the sequential reference.
func TestBuildParallelStress(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const numV, m = 50_000, 400_000
	edges := skewedEdges(numV, m, 42)
	opt := DefaultBuildOptions()
	want, err := Build(numV, edges, opt)
	if err != nil {
		t.Fatal(err)
	}
	p := sched.NewPool(8)
	defer p.Close()
	opt.Pool = p
	for round := 0; round < 3; round++ {
		got, err := Build(numV, edges, opt)
		if err != nil {
			t.Fatal(err)
		}
		requireGraphsEqual(t, "stress", want, got)
	}
}
