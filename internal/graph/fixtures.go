package graph

// MustFromEdges is FromEdges for known-valid fixture and test edge
// lists: it panics on a build error instead of returning it. Library
// code paths handling user input must use Build/FromEdges, whose
// errors are returned.
func MustFromEdges(numV int, edges []Edge) *Graph {
	g, err := FromEdges(numV, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// PaperExample returns the 8-vertex example graph of the paper's
// Figure 2.(a)/Figure 5, reconstructed (0-indexed) from the facts
// stated in §2.3 and Figure 4:
//
//   - in-hubs are vertices #3 and #7 (0-indexed 2 and 6) with
//     in-degrees 5 and 4;
//   - the in-neighbours of #3 are {2,5,6,7,8} (paper numbering);
//   - VWEH resolves to {2,5,6,8} and FV to {1,4} (Figure 4);
//   - the pull timeline starts with cache [1,7] after processing
//     vertices 1 and 2, fixing in(1)={7} and in(2)={1};
//   - row out-degrees of Figure 5 are 1,2,1,1,2,4,2,1 (14 edges).
//
// Used by unit tests that verify iHTL construction against the
// paper's worked example.
func PaperExample() *Graph {
	edges := []Edge{
		{0, 1},         // #1 -> #2
		{1, 2}, {1, 6}, // #2 -> #3, #7
		{2, 6},         // #3 -> #7
		{3, 4},         // #4 -> #5
		{4, 2}, {4, 6}, // #5 -> #3, #7
		{5, 2}, {5, 6}, {5, 4}, {5, 7}, // #6 -> #3, #7, #5, #8
		{6, 2}, {6, 0}, // #7 -> #3, #1
		{7, 2}, // #8 -> #3
	}
	g, err := Build(8, edges, BuildOptions{Dedup: true})
	if err != nil {
		panic(err)
	}
	return g
}

// Path returns a directed path 0 -> 1 -> ... -> n-1.
func Path(n int) *Graph {
	edges := make([]Edge, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, Edge{VID(i), VID(i + 1)})
	}
	return MustFromEdges(n, edges)
}

// Cycle returns a directed cycle over n vertices.
func Cycle(n int) *Graph {
	edges := make([]Edge, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, Edge{VID(i), VID((i + 1) % n)})
	}
	return MustFromEdges(n, edges)
}

// Star returns a graph where vertices 1..n-1 all point at vertex 0 —
// the extreme in-hub case.
func Star(n int) *Graph {
	edges := make([]Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, Edge{VID(i), 0})
	}
	return MustFromEdges(n, edges)
}

// Complete returns the complete directed graph on n vertices
// (no self loops).
func Complete(n int) *Graph {
	edges := make([]Edge, 0, n*(n-1))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				edges = append(edges, Edge{VID(i), VID(j)})
			}
		}
	}
	return MustFromEdges(n, edges)
}
