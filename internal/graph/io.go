package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"ihtl/internal/atomicio"
)

// Binary graph file format (little-endian):
//
//	magic   uint64  'IHTLGRPH'
//	version uint32  (1)
//	numV    uint32
//	numE    uint64
//	outIndex [numV+1]uint64
//	outNbrs  [numE]uint32
//	inIndex  [numV+1]uint64
//	inNbrs   [numE]uint32
//
// Mirroring the paper's setup, the on-disk format lets iHTL
// preprocessing be amortised across runs.
const (
	fileMagic   = uint64(0x4948544c47525048) // "IHTLGRPH"
	fileVersion = uint32(1)
)

// WriteTo serialises g to w in the binary format. It returns the
// number of bytes written.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	var n int64
	put := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if err := put(fileMagic); err != nil {
		return n, err
	}
	if err := put(fileVersion); err != nil {
		return n, err
	}
	if err := put(uint32(g.NumV)); err != nil {
		return n, err
	}
	if err := put(uint64(g.NumE)); err != nil {
		return n, err
	}
	for _, arr := range []any{g.OutIndex, g.OutNbrs, g.InIndex, g.InNbrs} {
		if err := put(arr); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadFrom deserialises a graph written by WriteTo and validates it.
func ReadFrom(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic uint64
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if magic != fileMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", magic)
	}
	var version uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != fileVersion {
		return nil, fmt.Errorf("graph: unsupported version %d", version)
	}
	var numV uint32
	var numE uint64
	if err := binary.Read(br, binary.LittleEndian, &numV); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &numE); err != nil {
		return nil, err
	}
	if numE > 1<<40 {
		return nil, fmt.Errorf("graph: implausible edge count %d", numE)
	}
	// Arrays are read in chunks so a hostile header cannot force a
	// huge up-front allocation: memory grows only as real bytes
	// arrive, and truncated input fails at the read.
	g := &Graph{NumV: int(numV), NumE: int64(numE)}
	var err error
	if g.OutIndex, err = ReadChunked[int64](br, uint64(numV)+1); err != nil {
		return nil, fmt.Errorf("graph: reading out index: %w", err)
	}
	if g.OutNbrs, err = ReadChunked[VID](br, numE); err != nil {
		return nil, fmt.Errorf("graph: reading out nbrs: %w", err)
	}
	if g.InIndex, err = ReadChunked[int64](br, uint64(numV)+1); err != nil {
		return nil, fmt.Errorf("graph: reading in index: %w", err)
	}
	if g.InNbrs, err = ReadChunked[VID](br, numE); err != nil {
		return nil, fmt.Errorf("graph: reading in nbrs: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: corrupt file: %w", err)
	}
	return g, nil
}

// ReadChunked reads exactly n little-endian values of type T,
// growing the result incrementally (≤ 256 Ki elements at a time) so
// corrupt headers cannot trigger absurd allocations.
func ReadChunked[T int64 | uint32](r io.Reader, n uint64) ([]T, error) {
	const chunk = 1 << 18
	capHint := n
	if capHint > chunk {
		capHint = chunk
	}
	out := make([]T, 0, capHint)
	for read := uint64(0); read < n; {
		c := n - read
		if c > chunk {
			c = chunk
		}
		tmp := make([]T, c)
		if err := binary.Read(r, binary.LittleEndian, tmp); err != nil {
			return nil, err
		}
		out = append(out, tmp...)
		read += c
	}
	return out, nil
}

// SaveFile writes g to path, atomically replacing any existing file.
func (g *Graph) SaveFile(path string) error {
	return atomicio.WriteFile(path, func(w io.Writer) error {
		_, err := g.WriteTo(w)
		return err
	})
}

// LoadFile reads a graph from path.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFrom(f)
}
