package graph

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func graphsEqual(a, b *Graph) bool {
	if a.NumV != b.NumV || a.NumE != b.NumE {
		return false
	}
	for v := 0; v < a.NumV; v++ {
		x, y := a.Out(VID(v)), b.Out(VID(v))
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		x, y = a.In(VID(v)), b.In(VID(v))
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
	}
	return true
}

func TestBinaryRoundTrip(t *testing.T) {
	for _, g := range []*Graph{PaperExample(), Star(50), randomGraph(9, 300, 3000)} {
		var buf bytes.Buffer
		n, err := g.WriteTo(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(buf.Len()) {
			t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
		}
		g2, err := ReadFrom(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !graphsEqual(g, g2) {
			t.Fatal("round trip changed graph")
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	g := randomGraph(10, 100, 900)
	path := filepath.Join(t.TempDir(), "g.ihtl")
	if err := g.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, g2) {
		t.Fatal("file round trip changed graph")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := ReadFrom(bytes.NewReader([]byte("not a graph file at all"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadFrom(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestReadRejectsTruncated(t *testing.T) {
	var buf bytes.Buffer
	if _, err := PaperExample().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{10, 20, len(data) / 2, len(data) - 1} {
		if _, err := ReadFrom(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncated file (%d bytes) accepted", cut)
		}
	}
}

func TestReadRejectsCorruptPayload(t *testing.T) {
	var buf bytes.Buffer
	if _, err := PaperExample().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Corrupt a neighbour ID to an out-of-range value; Validate must
	// catch it at load.
	data[len(data)-2] = 0xFF
	if _, err := ReadFrom(bytes.NewReader(data)); err == nil {
		t.Fatal("corrupt payload accepted")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.ihtl")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCompressedRoundTrip(t *testing.T) {
	for _, g := range []*Graph{PaperExample(), Star(50), randomGraph(19, 400, 4000)} {
		var buf bytes.Buffer
		n, err := g.WriteToCompressed(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(buf.Len()) {
			t.Fatalf("WriteToCompressed reported %d bytes, wrote %d", n, buf.Len())
		}
		g2, err := ReadFromCompressed(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !graphsEqual(g, g2) {
			t.Fatal("compressed round trip changed graph")
		}
	}
}

func TestCompressedSmallerThanFlat(t *testing.T) {
	// A graph with local structure compresses well below the flat
	// format.
	g := randomGraph(23, 2000, 40000)
	var flat, comp bytes.Buffer
	if _, err := g.WriteTo(&flat); err != nil {
		t.Fatal(err)
	}
	if _, err := g.WriteToCompressed(&comp); err != nil {
		t.Fatal(err)
	}
	if comp.Len() >= flat.Len() {
		t.Fatalf("compressed %d >= flat %d", comp.Len(), flat.Len())
	}
}

func TestLoadFileAuto(t *testing.T) {
	g := randomGraph(29, 200, 1500)
	dir := t.TempDir()
	flatPath := filepath.Join(dir, "flat.bin")
	compPath := filepath.Join(dir, "comp.bin")
	if err := g.SaveFile(flatPath); err != nil {
		t.Fatal(err)
	}
	if err := g.SaveFileCompressed(compPath); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{flatPath, compPath} {
		g2, err := LoadFileAuto(p)
		if err != nil {
			t.Fatal(err)
		}
		if !graphsEqual(g, g2) {
			t.Fatalf("%s: auto load changed graph", p)
		}
	}
	junk := filepath.Join(dir, "junk.bin")
	if err := os.WriteFile(junk, []byte("0123456789abcdef"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFileAuto(junk); err == nil {
		t.Fatal("junk magic accepted")
	}
}

func TestCompressedRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if _, err := PaperExample().WriteToCompressed(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{4, 20, len(data) - 1} {
		if _, err := ReadFromCompressed(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}
