package graph

import (
	"testing"
	"testing/quick"

	"ihtl/internal/xrand"
)

func randomGraph(seed uint64, n, m int) *Graph {
	rng := xrand.New(seed)
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{VID(rng.Intn(n)), VID(rng.Intn(n))}
	}
	g, err := Build(n, edges, BuildOptions{Dedup: true})
	if err != nil {
		panic(err)
	}
	return g
}

func randomPerm(seed uint64, n int) []VID {
	rng := xrand.New(seed)
	p := make([]VID, n)
	for i, v := range rng.Perm(n) {
		p[i] = VID(v)
	}
	return p
}

func TestRelabelPreservesStructure(t *testing.T) {
	g := randomGraph(1, 200, 2000)
	perm := randomPerm(2, g.NumV)
	ng, err := Relabel(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	if err := ng.Validate(); err != nil {
		t.Fatal(err)
	}
	if ng.NumV != g.NumV || ng.NumE != g.NumE {
		t.Fatal("relabel changed counts")
	}
	// Edge (u,v) exists iff (perm[u],perm[v]) exists.
	for v := 0; v < g.NumV; v++ {
		for _, u := range g.Out(VID(v)) {
			if !ng.HasEdge(perm[v], perm[u]) {
				t.Fatalf("edge %d->%d lost under relabel", v, u)
			}
		}
	}
	// Degrees transported.
	for v := 0; v < g.NumV; v++ {
		if g.InDegree(VID(v)) != ng.InDegree(perm[v]) {
			t.Fatalf("in-degree of %d not preserved", v)
		}
	}
}

func TestRelabelIdentity(t *testing.T) {
	g := PaperExample()
	ng, err := Relabel(g, IdentityPerm(g.NumV))
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumV; v++ {
		a, b := g.Out(VID(v)), ng.Out(VID(v))
		if len(a) != len(b) {
			t.Fatal("identity relabel changed adjacency")
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("identity relabel changed adjacency")
			}
		}
	}
}

func TestRelabelRejectsBadPerm(t *testing.T) {
	g := PaperExample()
	if _, err := Relabel(g, make([]VID, 3)); err == nil {
		t.Error("short permutation accepted")
	}
	p := IdentityPerm(g.NumV)
	p[0] = 1 // duplicate
	if _, err := Relabel(g, p); err == nil {
		t.Error("non-permutation accepted")
	}
	p = IdentityPerm(g.NumV)
	p[0] = VID(g.NumV)
	if _, err := Relabel(g, p); err == nil {
		t.Error("out-of-range permutation accepted")
	}
}

func TestRelabelRoundTrip(t *testing.T) {
	g := randomGraph(3, 100, 700)
	perm := randomPerm(4, g.NumV)
	ng, err := Relabel(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Relabel(ng, InvertPerm(perm))
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumV; v++ {
		a, b := g.Out(VID(v)), back.Out(VID(v))
		if len(a) != len(b) {
			t.Fatalf("round trip broke vertex %d", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("round trip broke vertex %d", v)
			}
		}
	}
}

func TestPermHelpers(t *testing.T) {
	f := func(seed uint64) bool {
		n := 1 + int(seed%97)
		p := randomPerm(seed, n)
		inv := InvertPerm(p)
		// p ∘ inv = identity both ways.
		for v := 0; v < n; v++ {
			if inv[p[v]] != VID(v) || p[inv[v]] != VID(v) {
				return false
			}
		}
		id := ComposePerm(p, inv)
		for v := 0; v < n; v++ {
			if id[v] != VID(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestComposePermOrder(t *testing.T) {
	// first sends 0->1, second sends 1->2; composition sends 0->2.
	first := []VID{1, 2, 0}
	second := []VID{0, 2, 1}
	c := ComposePerm(first, second)
	if c[0] != 2 {
		t.Fatalf("ComposePerm order wrong: %v", c)
	}
}
