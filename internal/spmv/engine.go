// Package spmv implements the baseline graph-traversal kernels the
// paper compares iHTL against: pull (Algorithm 1), push with atomic
// updates, push with per-thread buffering (Algorithm 2 + the buffering
// of X-Stream [29]), and destination-partitioned push (the
// GraphGrind-style partitioning [35]). All kernels compute the same
// SpMV:
//
//	dst[v] = Σ_{u ∈ N⁻(v)} src[u]
//
// over float64 vertex data (8 bytes, the paper's PageRank data size).
// Applications (PageRank, HITS, …) layer their per-iteration scaling
// on top of Step via the analytics package.
package spmv

import (
	"context"
	"fmt"

	"ihtl/internal/faultinject"
	"ihtl/internal/graph"
	"ihtl/internal/sched"
)

// Direction selects a traversal kernel.
type Direction int

const (
	// Pull traverses in-edges by unique destination: random reads,
	// sequential unsynchronised writes (Algorithm 1).
	Pull Direction = iota
	// PushAtomic traverses out-edges by source: sequential reads,
	// random atomic writes (Algorithm 2 with atomics).
	PushAtomic
	// PushBuffered traverses out-edges by source, accumulating into
	// full-size per-thread buffers that are merged afterwards
	// (Algorithm 2 with X-Stream buffering).
	PushBuffered
	// PushPartitioned traverses pre-built destination partitions so
	// concurrent threads never write the same vertex (Algorithm 2
	// with GraphGrind edge partitioning by destination).
	PushPartitioned
	// PropBlocked traverses out-edges in two propagation-blocked
	// phases: bin contributions into cache-sized destination buckets,
	// then drain whole buckets without synchronisation (Balaji &
	// Lucia's propagation blocking; see blocked.go).
	PropBlocked
)

func (d Direction) String() string {
	switch d {
	case Pull:
		return "pull"
	case PushAtomic:
		return "push-atomic"
	case PushBuffered:
		return "push-buffered"
	case PushPartitioned:
		return "push-partitioned"
	case PropBlocked:
		return "prop-blocked"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Stepper is the common interface of all SpMV engines in this
// repository, including the iHTL engine in internal/core: one Step
// computes dst[v] = Σ src[u] over in-neighbours u for every vertex.
type Stepper interface {
	Step(src, dst []float64)
	NumVertices() int
}

// Engine runs SpMV iterations in a fixed direction over a fixed graph
// using a shared worker pool. Construction pre-allocates all
// per-thread state so Step itself does no allocation.
type Engine struct {
	g    *graph.Graph
	pool *sched.Pool
	dir  Direction

	// pullBounds are edge-balanced destination ranges for pull.
	pullBounds []int
	// pushBounds are edge-balanced source ranges for push variants.
	pushBounds []int
	// threadBufs are the per-worker accumulation buffers of
	// PushBuffered (each NumV long).
	threadBufs [][]float64
	// threadBufsK are the K-wide counterparts used by StepBatch
	// (each NumV*batchK long), grown on first use of a width.
	threadBufsK [][]float64
	batchK      int
	// parts is the destination-partitioned CSR of PushPartitioned.
	parts *PushPartitions
	// pb is the propagation-blocking plan of PropBlocked.
	pb *pbPlan
	// partSched is the persistent range-stealing scheduler that claims
	// partitions each Step: workers start on contiguous partition
	// ranges (good spatial locality on the CSR offsets) and steal from
	// the most loaded peer, instead of serialising every claim through
	// one shared fetch-add counter.
	partSched *sched.StealScheduler

	// curSrc/curDst/curK stage one dispatch's operands for the prebuilt
	// jobs below. Binding the worker bodies once at construction (method
	// values allocate) and passing vectors through fields keeps Step and
	// StepBatch allocation-free per call — the same discipline as the
	// fused core.Engine, enforced by the noalloc pass.
	curSrc, curDst []float64
	curK           int

	zeroJob       func(w, lo, hi int)
	clearBufsJob  func(w int)
	clearBufsKJob func(w int)

	pullJob, atomicJob, bufferedJob, mergeJob, partJob, binJob, drainJob func(w, lo, hi int)

	pullBatchJob, atomicBatchJob, bufferedBatchJob, mergeBatchJob, partBatchJob, binBatchJob, drainBatchJob func(w, lo, hi int)
}

// Options configures NewEngine.
type Options struct {
	// Parts is the number of destination partitions for
	// PushPartitioned; <= 0 selects 4x the worker count.
	Parts int
	// BucketRows is the destination-bucket width of PropBlocked,
	// rounded down to a power of two; <= 0 selects DefaultBucketRows.
	BucketRows int
}

// NewEngine prepares an engine. The pool is borrowed, not owned: the
// caller closes it.
func NewEngine(g *graph.Graph, pool *sched.Pool, dir Direction, opt Options) (*Engine, error) {
	if g == nil || pool == nil {
		return nil, fmt.Errorf("spmv: nil graph or pool")
	}
	e := &Engine{g: g, pool: pool, dir: dir}
	nparts := pool.Workers() * 4
	switch dir {
	case Pull:
		e.pullBounds = sched.EdgeBalancedParts(g.InIndex, nparts)
	case PushAtomic:
		e.pushBounds = sched.EdgeBalancedParts(g.OutIndex, nparts)
	case PushBuffered:
		e.pushBounds = sched.EdgeBalancedParts(g.OutIndex, nparts)
		e.threadBufs = make([][]float64, pool.Workers())
		for w := range e.threadBufs {
			e.threadBufs[w] = make([]float64, g.NumV)
		}
	case PushPartitioned:
		p := opt.Parts
		if p <= 0 {
			p = nparts
		}
		e.parts = BuildPushPartitions(g, p)
	case PropBlocked:
		rows := opt.BucketRows
		if rows <= 0 {
			rows = DefaultBucketRows
		}
		e.pb = buildPBPlan(e, rows, nparts)
	default:
		return nil, fmt.Errorf("spmv: unknown direction %d", dir)
	}
	e.partSched = sched.NewStealScheduler(pool.Workers())
	// Bind every dispatch body once; method-value creation allocates,
	// so it must not happen inside Step/StepBatch.
	e.zeroJob = e.zeroWorker
	e.clearBufsJob = e.clearBufsWorker
	e.clearBufsKJob = e.clearBufsKWorker
	e.pullJob = e.pullWorker
	e.atomicJob = e.atomicWorker
	e.bufferedJob = e.bufferedWorker
	e.mergeJob = e.mergeWorker
	e.partJob = e.partWorker
	e.pullBatchJob = e.pullBatchWorker
	e.atomicBatchJob = e.atomicBatchWorker
	e.bufferedBatchJob = e.bufferedBatchWorker
	e.mergeBatchJob = e.mergeBatchWorker
	e.partBatchJob = e.partBatchWorker
	e.binJob = e.binWorker
	e.drainJob = e.drainWorker
	e.binBatchJob = e.binBatchWorker
	e.drainBatchJob = e.drainBatchWorker
	return e, nil
}

// forParts dispatches a prebuilt partition-ranged job over [0, nparts)
// using the engine's persistent steal scheduler.
//
//ihtl:noalloc
func (e *Engine) forParts(nparts int, job func(w, lo, hi int)) {
	e.pool.ForStealWith(e.partSched, nparts, 1, job)
}

// NumVertices implements Stepper.
func (e *Engine) NumVertices() int { return e.g.NumV }

// Direction reports the engine's traversal direction.
func (e *Engine) Direction() Direction { return e.dir }

// Step implements Stepper. src and dst must have length NumV and must
// not alias.
//
//ihtl:noalloc
func (e *Engine) Step(src, dst []float64) {
	if len(src) != e.g.NumV || len(dst) != e.g.NumV {
		panic("spmv: vector length mismatch")
	}
	e.curSrc, e.curDst = src, dst
	switch e.dir {
	case Pull:
		e.forParts(len(e.pullBounds)-1, e.pullJob)
	case PushAtomic:
		e.zeroDst()
		e.forParts(len(e.pushBounds)-1, e.atomicJob)
	case PushBuffered:
		e.pool.Run(e.clearBufsJob)
		e.forParts(len(e.pushBounds)-1, e.bufferedJob)
		e.pool.ForStatic(e.g.NumV, e.mergeJob)
	case PushPartitioned:
		e.zeroDst()
		e.forParts(e.parts.NumParts(), e.partJob)
	case PropBlocked:
		// Drain clears each bucket's row range before replaying it, so
		// no upfront zeroDst pass is needed. ForStealWith resets the
		// shared partSched between the two dispatches.
		e.forParts(e.pb.numChunks, e.binJob)
		e.forParts(e.pb.numBuckets, e.drainJob)
	}
	e.curSrc, e.curDst = nil, nil
}

// StepCtx implements CtxStepper: Step with cancellation observed at
// every partition claim and worker panics returned as *sched.PanicError.
// A failed step may leave dst partially written; the per-call buffer
// clears at the top of Step mean no internal engine state needs
// recovery before the next call.
func (e *Engine) StepCtx(ctx context.Context, src, dst []float64) error {
	end, err := e.pool.Fallible(ctx)
	if err != nil {
		return err
	}
	e.Step(src, dst)
	return end()
}

// StepBatchCtx implements BatchCtxStepper; see StepCtx.
func (e *Engine) StepBatchCtx(ctx context.Context, src, dst []float64, k int) error {
	end, err := e.pool.Fallible(ctx)
	if err != nil {
		return err
	}
	e.StepBatch(src, dst, k)
	return end()
}

// pullWorker is Algorithm 1: destinations are processed in parallel
// over edge-balanced partitions; writes need no synchronisation
// because each destination is owned by exactly one partition.
//
//ihtl:noalloc
func (e *Engine) pullWorker(w, lo, hi int) {
	g, src, dst := e.g, e.curSrc, e.curDst
	nbrs := g.InNbrs
	faultinject.Fire(faultinject.SitePullPart)
	for part := lo; part < hi; part++ {
		vlo, vhi := e.pullBounds[part], e.pullBounds[part+1]
		for v := vlo; v < vhi; v++ {
			sum := 0.0
			for i := g.InIndex[v]; i < g.InIndex[v+1]; i++ {
				sum += src[nbrs[i]]
			}
			dst[v] = sum
		}
	}
}

// zeroDst clears the staged destination vector in parallel.
//
//ihtl:noalloc
func (e *Engine) zeroDst() {
	e.pool.ForStatic(len(e.curDst), e.zeroJob)
}

//ihtl:noalloc
func (e *Engine) zeroWorker(w, lo, hi int) {
	clear(e.curDst[lo:hi])
}
