package spmv

// First-order per-step traffic model: BytesPerStep sums the byte
// footprint of every array one Step touches — topology streams counted
// once (index entries 8 bytes, vertex IDs 4), vertex-data accesses
// counted per access (VertexBytes each), scratch traffic (buffers,
// bins, cursors) counted per pass. It deliberately ignores cache
// reuse: the point of the bytes_per_edge column in the step report is
// to compare how much memory each kernel ASKS for per edge, which is
// what separates the streaming kernels (propagation blocking) from the
// random-access ones (pull, atomic push) on graphs whose vertex data
// outgrows the LLC.

// BytesPerStep returns the modelled bytes one scalar Step touches.
func (e *Engine) BytesPerStep() int64 {
	g := e.g
	V, E := int64(g.NumV), int64(g.NumE)
	const vb = int64(VertexBytes)
	idx := 8 * (V + 1)
	nbrs := 4 * E
	switch e.dir {
	case Pull:
		// Index + in-neighbour stream, one random src read per edge,
		// one dst write per vertex.
		return idx + nbrs + vb*E + vb*V
	case PushAtomic:
		// Index + out-neighbour stream, sequential src reads, a zeroing
		// pass over dst, and an atomic read-modify-write per edge.
		return idx + nbrs + vb*V + vb*V + 2*vb*E
	case PushBuffered:
		// As atomic, but the RMWs land in per-worker buffers that are
		// cleared and then merged (W reads + 1 write per vertex).
		W := int64(len(e.threadBufs))
		return idx + nbrs + vb*V + W*vb*V + 2*vb*E + (W+1)*vb*V
	case PushPartitioned:
		// The partitioned topology (sources replicated per partition),
		// one src read per partition-source, a zeroing pass, and one
		// unsynchronised RMW per edge.
		var srcs int64
		for i := range e.parts.Parts {
			srcs += int64(len(e.parts.Parts[i].Srcs))
		}
		return e.parts.TopologyBytes() + vb*srcs + vb*V + 2*vb*E
	case PropBlocked:
		// Bin: topology stream + sequential src reads + one 12-byte
		// (row, value) append per edge; drain: the same 12 bytes back,
		// plus a clear and a write per vertex; cursors staged and read
		// once per (bucket, chunk) segment.
		segs := int64(len(e.pb.binCur))
		bin := idx + nbrs + vb*V + 12*E
		drain := 12*E + 2*vb*V
		return bin + drain + 2*8*segs
	default:
		return 0
	}
}

// ResidentTopologyBytes returns the bytes of topology (plus
// topology-shaped scratch) the engine keeps resident: the CSR/CSC
// arrays, the partitioned replica for PushPartitioned, and the bin
// arrays of propagation blocking. The baselines have no compressed
// form, so this is the flat footprint the iHTL varint encoding's
// resident_bytes column is compared against.
func (e *Engine) ResidentTopologyBytes() int64 {
	g := e.g
	V, E := int64(g.NumV), int64(g.NumE)
	switch e.dir {
	case PushPartitioned:
		return e.parts.TopologyBytes()
	case PropBlocked:
		segs := int64(len(e.pb.binCur))
		return 8*(V+1) + 4*E + 12*E + 2*8*segs
	default:
		return 8*(V+1) + 4*E
	}
}
