package spmv

import (
	"fmt"
	"math"
	"testing"

	"ihtl/internal/gen"
	"ihtl/internal/sched"
	"ihtl/internal/xrand"
)

func TestSkipZero(t *testing.T) {
	negZero := math.Copysign(0, -1)
	if !SkipZero(0) {
		t.Error("SkipZero(+0.0) = false, want true")
	}
	if SkipZero(negZero) {
		t.Error("SkipZero(-0.0) = true, want false: -0.0 must be traversed")
	}
	if SkipZero(1) || SkipZero(-1) || SkipZero(math.Inf(1)) {
		t.Error("SkipZero skipped a nonzero value")
	}
	if !SkipZeroLanes([]float64{0, 0, 0}) {
		t.Error("SkipZeroLanes(all +0.0) = false, want true")
	}
	if SkipZeroLanes([]float64{0, negZero, 0}) {
		t.Error("SkipZeroLanes with a -0.0 lane = true, want false")
	}
	if SkipZeroLanes([]float64{0, 0, 2}) {
		t.Error("SkipZeroLanes with a nonzero lane = true, want false")
	}
	if !SkipZeroLanes(nil) {
		t.Error("SkipZeroLanes(empty) = false, want true")
	}
}

// batchTestVec mixes small signed integers, +0.0 (skippable) and -0.0
// (must be traversed); all sums are exact, so batched and scalar
// results must match bit-for-bit regardless of scheduling.
func batchTestVec(seed uint64, n int) []float64 {
	rng := xrand.New(seed)
	v := make([]float64, n)
	for i := range v {
		v[i] = float64(int64(rng.Uint64n(9)) - 4)
		if v[i] == 0 && rng.Uint64n(2) == 0 {
			v[i] = math.Copysign(0, -1)
		}
	}
	return v
}

// TestStepBatchMatchesScalar pins every direction's StepBatch with K
// lanes bit-for-bit against K independent scalar Steps.
func TestStepBatchMatchesScalar(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(9, 8, 77))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		pool := sched.NewPool(workers)
		defer pool.Close()
		for _, dir := range []Direction{Pull, PushAtomic, PushBuffered, PushPartitioned, PropBlocked} {
			e, err := NewEngine(g, pool, dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{1, 2, 4, 8} {
				t.Run(fmt.Sprintf("%v/w%d/k%d", dir, workers, k), func(t *testing.T) {
					lanes := make([][]float64, k)
					src := make([]float64, g.NumV*k)
					for j := 0; j < k; j++ {
						lanes[j] = batchTestVec(uint64(100+j), g.NumV)
						for v := 0; v < g.NumV; v++ {
							src[v*k+j] = lanes[j][v]
						}
					}
					want := make([]float64, g.NumV)
					dst := make([]float64, g.NumV*k)
					e.StepBatch(src, dst, k)
					for j := 0; j < k; j++ {
						e.Step(lanes[j], want)
						for v := 0; v < g.NumV; v++ {
							if math.Float64bits(dst[v*k+j]) != math.Float64bits(want[v]) {
								t.Fatalf("lane %d vertex %d: got %v want %v",
									j, v, dst[v*k+j], want[v])
							}
						}
					}
					// Repeat at the same width: buffers must have been left
					// reusable (PushBuffered's K-wide buffers are cached).
					e.StepBatch(src, dst, k)
					for j := 0; j < k; j++ {
						e.Step(lanes[j], want)
						for v := 0; v < g.NumV; v++ {
							if math.Float64bits(dst[v*k+j]) != math.Float64bits(want[v]) {
								t.Fatalf("second batch: lane %d vertex %d: got %v want %v",
									j, v, dst[v*k+j], want[v])
							}
						}
					}
				})
			}
		}
	}
}

func TestStepBatchPanics(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(5, 4, 3))
	if err != nil {
		t.Fatal(err)
	}
	pool := sched.NewPool(2)
	defer pool.Close()
	e, err := NewEngine(g, pool, Pull, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustPanic := func(label string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", label)
			}
		}()
		fn()
	}
	mustPanic("k=0", func() { e.StepBatch(nil, nil, 0) })
	mustPanic("short src", func() {
		e.StepBatch(make([]float64, g.NumV), make([]float64, g.NumV*2), 2)
	})
	mustPanic("short dst", func() {
		e.StepBatch(make([]float64, g.NumV*2), make([]float64, g.NumV), 2)
	})
}
