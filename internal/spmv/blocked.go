package spmv

// Propagation-blocked push (Balaji & Lucia): the whole-graph baseline
// counterpart of the iHTL engine's SparsePB sparse kernel, kept as an
// independent implementation for differential testing and for the
// bench ablations. One Step runs two phases over the push CSR:
//
//	bin:   sweep sources in ascending order (sequential src reads),
//	       appending (dst, x) pairs into per-(chunk, bucket) segments
//	       of a preallocated bin array — the destination space is cut
//	       into cache-sized row buckets;
//	drain: claim whole buckets, zero their row range and replay their
//	       segments in ascending chunk order — perfect destination
//	       locality, no atomics.
//
// Chunk-indexed segments with exact precomputed capacities make the
// result independent of scheduling: each destination's contributions
// accumulate in ascending source order, exactly the pull kernel's
// order, so Step is bit-for-bit identical to Pull on the same graph.

import (
	"ihtl/internal/faultinject"
	"ihtl/internal/sched"
)

// DefaultBucketRows is the destination-bucket width of PropBlocked
// when Options.BucketRows is unset: the paper's L2 budget over 8-byte
// vertex data (1 MiB / 8), already a power of two.
const DefaultBucketRows = 1 << 17

// pbPlan is the preallocated propagation-blocking state of a
// PropBlocked engine.
type pbPlan struct {
	shift      uint
	numBuckets int
	numChunks  int
	// chunkBounds are numChunks+1 edge-balanced source boundaries over
	// the push CSR.
	chunkBounds []int
	// binOff/binCur/binRows/binVals: bucket-major exact-capacity
	// segments, running cursors, and the binned (dst, x) pairs; see
	// core/sparse.go for the layout and determinism argument.
	binOff  []int64
	binCur  []int64
	binRows []uint32
	binVals []float64
	// binValsK is the K-wide value array of StepBatch, grown on first
	// use of a width (slot p's lanes at [p*k, (p+1)*k)).
	binValsK []float64
	valsK    int
}

// buildPBPlan sizes the bin segments over g's push CSR.
func buildPBPlan(e *Engine, bucketRows, nparts int) *pbPlan {
	g := e.g
	p := &pbPlan{}
	if bucketRows < 256 {
		bucketRows = 256
	}
	for (1 << (p.shift + 1)) <= bucketRows {
		p.shift++
	}
	p.numBuckets = (g.NumV + (1 << p.shift) - 1) >> p.shift
	p.numChunks = nparts
	p.chunkBounds = sched.EdgeBalancedParts(g.OutIndex, nparts)
	C, B := p.numChunks, p.numBuckets
	p.binOff = make([]int64, B*C+1)
	for c := 0; c < C; c++ {
		for i := g.OutIndex[p.chunkBounds[c]]; i < g.OutIndex[p.chunkBounds[c+1]]; i++ {
			b := int(g.OutNbrs[i]) >> p.shift
			p.binOff[b*C+c+1]++
		}
	}
	for i := 0; i < B*C; i++ {
		p.binOff[i+1] += p.binOff[i]
	}
	p.binCur = make([]int64, B*C)
	p.binRows = make([]uint32, len(g.OutNbrs))
	p.binVals = make([]float64, len(g.OutNbrs))
	return p
}

// binWorker bins the claimed source chunks; see core/sparse.go's
// pbBinChunk for the cursor-staging scheme.
//
//ihtl:noalloc
func (e *Engine) binWorker(w, lo, hi int) {
	g, src, p := e.g, e.curSrc, e.pb
	C := p.numChunks
	faultinject.Fire(faultinject.SitePushPart)
	for c := lo; c < hi; c++ {
		for b := 0; b < p.numBuckets; b++ {
			p.binCur[b*C+c] = p.binOff[b*C+c]
		}
		for s := p.chunkBounds[c]; s < p.chunkBounds[c+1]; s++ {
			x := src[s]
			if SkipZero(x) {
				continue
			}
			for i := g.OutIndex[s]; i < g.OutIndex[s+1]; i++ {
				d := g.OutNbrs[i]
				seg := int(d>>p.shift)*C + c
				q := p.binCur[seg]
				p.binRows[q] = uint32(d)
				p.binVals[q] = x
				p.binCur[seg] = q + 1
			}
		}
	}
}

// drainWorker reduces the claimed buckets into dst.
//
//ihtl:noalloc
func (e *Engine) drainWorker(w, lo, hi int) {
	dst, p := e.curDst, e.pb
	n := e.g.NumV
	C := p.numChunks
	faultinject.Fire(faultinject.SitePullPart)
	for b := lo; b < hi; b++ {
		rowLo := b << p.shift
		rowHi := rowLo + (1 << p.shift)
		if rowHi > n {
			rowHi = n
		}
		clear(dst[rowLo:rowHi])
		for c := 0; c < C; c++ {
			seg := b*C + c
			for q := p.binOff[seg]; q < p.binCur[seg]; q++ {
				dst[p.binRows[q]] += p.binVals[q]
			}
		}
	}
}

// binBatchWorker is binWorker with K lanes copied per appended slot.
//
//ihtl:noalloc
func (e *Engine) binBatchWorker(w, lo, hi int) {
	g, src, k, p := e.g, e.curSrc, e.curK, e.pb
	C := p.numChunks
	faultinject.Fire(faultinject.SitePushPart)
	for c := lo; c < hi; c++ {
		for b := 0; b < p.numBuckets; b++ {
			p.binCur[b*C+c] = p.binOff[b*C+c]
		}
		for s := p.chunkBounds[c]; s < p.chunkBounds[c+1]; s++ {
			sb := s * k
			xs := src[sb : sb+k : sb+k]
			if SkipZeroLanes(xs) {
				continue
			}
			for i := g.OutIndex[s]; i < g.OutIndex[s+1]; i++ {
				d := g.OutNbrs[i]
				seg := int(d>>p.shift)*C + c
				q := p.binCur[seg]
				p.binRows[q] = uint32(d)
				copy(p.binValsK[q*int64(k):(q+1)*int64(k)], xs)
				p.binCur[seg] = q + 1
			}
		}
	}
}

// drainBatchWorker is drainWorker with K-wide accumulation.
//
//ihtl:noalloc
func (e *Engine) drainBatchWorker(w, lo, hi int) {
	dst, k, p := e.curDst, e.curK, e.pb
	n := e.g.NumV
	C := p.numChunks
	faultinject.Fire(faultinject.SitePullPart)
	for b := lo; b < hi; b++ {
		rowLo := b << p.shift
		rowHi := rowLo + (1 << p.shift)
		if rowHi > n {
			rowHi = n
		}
		clear(dst[rowLo*k : rowHi*k])
		for c := 0; c < C; c++ {
			seg := b*C + c
			for q := p.binOff[seg]; q < p.binCur[seg]; q++ {
				db := int(p.binRows[q]) * k
				out := dst[db : db+k : db+k]
				vb := q * int64(k)
				xs := p.binValsK[vb : vb+int64(k) : vb+int64(k)]
				for j, x := range xs {
					out[j] += x
				}
			}
		}
	}
}

// pbBatchVals ensures the K-wide bin value array exists, (re)allocating
// when the width changes. Like batchBufs it is deliberately NOT
// annotated //ihtl:noalloc: growing on a width change is the one
// allocation StepBatch is allowed.
func (p *pbPlan) pbBatchVals(k int) {
	if p.valsK == k {
		return
	}
	p.binValsK = make([]float64, len(p.binRows)*k)
	p.valsK = k
}
