package spmv

import (
	"testing"

	"ihtl/internal/graph"
)

func TestGenericPullAndPushAgree(t *testing.T) {
	g := graph.PaperExample()
	for _, push := range []bool{false, true} {
		e, err := NewGenericEngine(g, testPool, MaxFloat64(), push)
		if err != nil {
			t.Fatal(err)
		}
		if e.NumVertices() != g.NumV {
			t.Fatal("NumVertices wrong")
		}
		src := make([]float64, g.NumV)
		for v := range src {
			src[v] = float64(v * v)
		}
		dst := make([]float64, g.NumV)
		e.StepMonoid(src, dst)
		for v := 0; v < g.NumV; v++ {
			want := MaxFloat64().Identity
			for _, u := range g.In(graph.VID(v)) {
				if src[u] > want {
					want = src[u]
				}
			}
			if dst[v] != want {
				t.Fatalf("push=%v: max[%d] = %v, want %v", push, v, dst[v], want)
			}
		}
	}
}

func TestMinPlusEdgeHook(t *testing.T) {
	m := MinPlusInt64(func(src, dst graph.VID) int64 { return int64(dst) + 1 })
	// Relaxing a reached value adds the weight.
	if got := m.Apply(10, 0, 4); got != 15 {
		t.Fatalf("Apply = %d, want 15", got)
	}
	// Unreached identity must stay identity.
	if got := m.Apply(m.Identity, 0, 4); got != m.Identity {
		t.Fatalf("identity poisoned: %d", got)
	}
	// No-hook monoid passes through.
	plain := MinInt64()
	if got := plain.Apply(7, 1, 2); got != 7 {
		t.Fatalf("plain Apply = %d", got)
	}
}

func TestBoolOrAndSumMonoids(t *testing.T) {
	bo := BoolOr()
	if bo.Combine(false, true) != true || bo.Combine(false, false) != false || bo.Identity {
		t.Fatal("BoolOr wrong")
	}
	sf := SumFloat64()
	if sf.Combine(1.5, 2.5) != 4 || sf.Identity != 0 {
		t.Fatal("SumFloat64 wrong")
	}
}

func TestGenericStepPanicsOnBadLengths(t *testing.T) {
	g := graph.Star(5)
	e, _ := NewGenericEngine(g, testPool, MinInt64(), false)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	e.StepMonoid(make([]int64, 2), make([]int64, g.NumV))
}

func TestEngineAccessors(t *testing.T) {
	g := graph.Star(5)
	e, _ := NewEngine(g, testPool, Pull, Options{})
	if e.NumVertices() != g.NumV || e.Direction() != Pull {
		t.Fatal("accessors wrong")
	}
}
