package spmv

import (
	"math"
	"testing"

	"ihtl/internal/cache"
	"ihtl/internal/gen"
	"ihtl/internal/graph"
	"ihtl/internal/sched"
	"ihtl/internal/xrand"
)

var testPool = sched.NewPool(4)

// referenceStep computes dst[v] = Σ src[u] over in-neighbours with a
// trivial sequential loop.
func referenceStep(g *graph.Graph, src []float64) []float64 {
	dst := make([]float64, g.NumV)
	for v := 0; v < g.NumV; v++ {
		sum := 0.0
		for _, u := range g.In(graph.VID(v)) {
			sum += src[u]
		}
		dst[v] = sum
	}
	return dst
}

func randomVec(seed uint64, n int) []float64 {
	rng := xrand.New(seed)
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64()*2 - 0.5
	}
	return v
}

func maxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func allDirections() []Direction {
	return []Direction{Pull, PushAtomic, PushBuffered, PushPartitioned, PropBlocked}
}

func TestAllDirectionsMatchReference(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"paper": graph.PaperExample(),
		"star":  graph.Star(100),
		"cycle": graph.Cycle(57),
		"k6":    graph.Complete(6),
	}
	if rm, err := gen.RMAT(gen.DefaultRMAT(10, 8, 1)); err == nil {
		graphs["rmat"] = rm
	} else {
		t.Fatal(err)
	}
	for name, g := range graphs {
		src := randomVec(42, g.NumV)
		want := referenceStep(g, src)
		for _, dir := range allDirections() {
			e, err := NewEngine(g, testPool, dir, Options{})
			if err != nil {
				t.Fatalf("%s/%v: %v", name, dir, err)
			}
			dst := make([]float64, g.NumV)
			e.Step(src, dst)
			if d := maxAbsDiff(want, dst); d > 1e-9 {
				t.Errorf("%s/%v: max diff %g from reference", name, dir, d)
			}
		}
	}
}

func TestStepIsRepeatable(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(9, 6, 5))
	if err != nil {
		t.Fatal(err)
	}
	src := randomVec(7, g.NumV)
	for _, dir := range allDirections() {
		e, _ := NewEngine(g, testPool, dir, Options{})
		a := make([]float64, g.NumV)
		b := make([]float64, g.NumV)
		e.Step(src, a)
		e.Step(src, b)
		// Pull is exactly deterministic; push variants may reorder
		// float additions between runs, so allow tiny drift.
		if d := maxAbsDiff(a, b); d > 1e-9 {
			t.Errorf("%v: two Steps differ by %g", dir, d)
		}
	}
}

func TestStepOverwritesPreviousDst(t *testing.T) {
	g := graph.Star(10)
	src := randomVec(3, g.NumV)
	for _, dir := range allDirections() {
		e, _ := NewEngine(g, testPool, dir, Options{})
		dst := make([]float64, g.NumV)
		for i := range dst {
			dst[i] = 999 // garbage that must not leak into the result
		}
		e.Step(src, dst)
		want := referenceStep(g, src)
		if d := maxAbsDiff(want, dst); d > 1e-9 {
			t.Errorf("%v: stale dst contents leaked (diff %g)", dir, d)
		}
	}
}

func TestStepPanicsOnBadLengths(t *testing.T) {
	g := graph.Star(10)
	e, _ := NewEngine(g, testPool, Pull, Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for short vector")
		}
	}()
	e.Step(make([]float64, 3), make([]float64, g.NumV))
}

func TestNewEngineErrors(t *testing.T) {
	if _, err := NewEngine(nil, testPool, Pull, Options{}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := NewEngine(graph.Star(3), nil, Pull, Options{}); err == nil {
		t.Error("nil pool accepted")
	}
	if _, err := NewEngine(graph.Star(3), testPool, Direction(99), Options{}); err == nil {
		t.Error("bad direction accepted")
	}
}

func TestDirectionString(t *testing.T) {
	for _, d := range allDirections() {
		if d.String() == "" {
			t.Error("empty direction name")
		}
	}
	if Direction(12).String() == "" {
		t.Error("unknown direction should format")
	}
}

func TestAtomicAddFloat64(t *testing.T) {
	var x float64
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func() {
			for i := 0; i < 10000; i++ {
				AtomicAddFloat64(&x, 1)
			}
			done <- struct{}{}
		}()
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	if x != 80000 {
		t.Fatalf("atomic adds lost updates: %v", x)
	}
}

func TestPushPartitionsStructure(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(9, 8, 2))
	if err != nil {
		t.Fatal(err)
	}
	pp := BuildPushPartitions(g, 7)
	if pp.NumParts() != 7 {
		t.Fatalf("NumParts = %d", pp.NumParts())
	}
	// Every edge appears exactly once across partitions, with
	// destinations inside the partition's range.
	var total int64
	for p, part := range pp.Parts {
		lo, hi := graph.VID(pp.VertexLo[p]), graph.VID(pp.VertexLo[p+1])
		for i, u := range part.Srcs {
			if i > 0 && part.Srcs[i-1] >= u {
				t.Fatal("partition sources not strictly sorted")
			}
			for j := part.Index[i]; j < part.Index[i+1]; j++ {
				d := part.Dsts[j]
				if d < lo || d >= hi {
					t.Fatalf("partition %d: destination %d outside [%d,%d)", p, d, lo, hi)
				}
				if !g.HasEdge(u, d) {
					t.Fatalf("phantom edge %d->%d", u, d)
				}
				total++
			}
		}
	}
	if total != g.NumE {
		t.Fatalf("partitions contain %d edges, want %d", total, g.NumE)
	}
	if pp.TopologyBytes() <= 0 {
		t.Fatal("TopologyBytes not positive")
	}
}

func TestQuickSortVIDs(t *testing.T) {
	rng := xrand.New(8)
	for _, n := range []int{0, 1, 2, 23, 24, 100, 5000} {
		v := make([]graph.VID, n)
		for i := range v {
			v[i] = graph.VID(rng.Intn(1000))
		}
		quickSortVIDs(v)
		for i := 1; i < n; i++ {
			if v[i-1] > v[i] {
				t.Fatalf("n=%d: not sorted at %d", n, i)
			}
		}
	}
}

func TestSimulatePullVsPushOnHubGraph(t *testing.T) {
	// The iHTL capacity argument (§2.3/§2.4): build K in-hubs that
	// each receive edges from the same N sources, with N vertex data
	// (480 KB) exceeding the 256 KB simulated LLC but K hub data (128
	// B) far below it. Pull re-streams the over-capacity source set
	// once per hub (K*N capacity misses); push touches each source
	// once and keeps all hubs resident. Pull must therefore incur
	// substantially more LLC misses.
	const K, N = 16, 60000
	edges := make([]graph.Edge, 0, K*N)
	for s := K; s < K+N; s++ {
		for h := 0; h < K; h++ {
			edges = append(edges, graph.Edge{Src: graph.VID(s), Dst: graph.VID(h)})
		}
	}
	g := graph.MustFromEdges(K+N, edges)
	cfg := cacheTestConfig()
	pullStats, _ := SimulatePull(g, cfg, false)
	pushStats := SimulatePush(g, cfg)
	if pullStats.L3.Misses < pushStats.L3.Misses*3/2 {
		t.Fatalf("expected pull to thrash: pull L3 misses %d, push %d",
			pullStats.L3.Misses, pushStats.L3.Misses)
	}
	// A star, by contrast, has no reuse opportunity in either
	// direction (each source is read exactly once), so the gap must
	// be compulsory-miss sized, not capacity sized.
	star := graph.Star(20000)
	ps, _ := SimulatePull(star, cfg, false)
	qs := SimulatePush(star, cfg)
	if ps.L3.Misses > 3*qs.L3.Misses {
		t.Fatalf("star should not show capacity thrash: pull %d, push %d",
			ps.L3.Misses, qs.L3.Misses)
	}
}

// cacheTestConfig is a small hierarchy (2 KB L1 / 32 KB L2 / 256 KB
// L3) sized so that test graphs of ~10^4-10^5 vertices stand in the
// same capacity regime as the paper's billion-edge graphs on a 1 MB
// L2 / 22 MB L3 machine.
func cacheTestConfig() cache.Config {
	return cache.Config{
		LineSize: 64,
		Levels: []cache.LevelConfig{
			{SizeBytes: 2 << 10, Ways: 8},
			{SizeBytes: 32 << 10, Ways: 16},
			{SizeBytes: 256 << 10, Ways: 8},
		},
	}
}

func TestSimulatePullDegreeBuckets(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(12, 8, 4))
	if err != nil {
		t.Fatal(err)
	}
	stats, buckets := SimulatePull(g, cacheTestConfig(), true)
	if stats.Loads == 0 || len(buckets) == 0 {
		t.Fatal("simulation produced no data")
	}
	var vertices int
	for _, b := range buckets {
		vertices += b.Vertices
		if b.Misses > b.Accesses {
			t.Fatalf("bucket [%d,%d): misses %d > accesses %d", b.DegreeLo, b.DegreeHi, b.Misses, b.Accesses)
		}
	}
	// Every vertex with in-degree >= 1 must be attributed.
	withIn := 0
	for v := 0; v < g.NumV; v++ {
		if g.InDegree(graph.VID(v)) > 0 {
			withIn++
		}
	}
	if vertices != withIn {
		t.Fatalf("buckets attribute %d vertices, want %d", vertices, withIn)
	}
	// The Figure-1 phenomenon: the highest-degree buckets miss more
	// than the lowest on a power-law graph with a small cache.
	first := buckets[0]
	last := buckets[len(buckets)-1]
	for i := len(buckets) - 1; i >= 0; i-- {
		if buckets[i].Vertices > 0 {
			last = buckets[i]
			break
		}
	}
	if last.MissRate() <= first.MissRate() {
		t.Fatalf("hub bucket miss rate %.3f not above low-degree %.3f",
			last.MissRate(), first.MissRate())
	}
}

func TestSimStatsAccounting(t *testing.T) {
	g := graph.PaperExample()
	stats, _ := SimulatePull(g, cacheTestConfig(), false)
	// 8 index reads (2 lines touched... implementation detail), at
	// least one load per edge for nbr + one per edge for data, one
	// store per vertex.
	if stats.Stores != uint64(g.NumV) {
		t.Fatalf("stores = %d, want %d", stats.Stores, g.NumV)
	}
	if stats.Loads < 2*uint64(g.NumE) {
		t.Fatalf("loads = %d, want >= %d", stats.Loads, 2*g.NumE)
	}
	push := SimulatePush(g, cacheTestConfig())
	if push.Stores != uint64(g.NumE) {
		t.Fatalf("push stores = %d, want one per edge %d", push.Stores, g.NumE)
	}
}
