package spmv

import (
	"context"
	"fmt"
)

// CtxStepper is implemented by engines whose Step has a cancellable,
// panic-isolating form. StepCtx computes the same SpMV as Step but
// returns promptly with ctx.Err() when ctx is cancelled (observed at
// chunk-claim boundaries, one atomic load per claim) and converts a
// panic in any pool worker into a returned *sched.PanicError instead
// of crashing the process. The analytics drivers prefer this
// interface when the stepper provides it.
type CtxStepper interface {
	Stepper
	StepCtx(ctx context.Context, src, dst []float64) error
}

// BatchCtxStepper is the batched counterpart of CtxStepper.
type BatchCtxStepper interface {
	BatchStepper
	StepBatchCtx(ctx context.Context, src, dst []float64, k int) error
}

// HealthMode selects what the numeric-health watchdog does when a
// non-finite value (NaN or ±Inf) appears in a result vector.
type HealthMode int

const (
	// HealthOff disables the watchdog (the default): no scan runs and
	// Step costs nothing extra.
	HealthOff HealthMode = iota
	// HealthError fails the step with a *NumericError, leaving the
	// corrupted destination vector in place for inspection.
	HealthError
	// HealthClamp replaces every non-finite element with 0 and carries
	// on; the step succeeds and the returned state is finite.
	HealthClamp
	// HealthRollback fails the step with a *NumericError whose Rollback
	// flag is set, telling checkpoint-aware drivers (RunPageRankCtx and
	// friends) to restore the last checkpoint and re-run from there
	// instead of aborting.
	HealthRollback
)

func (m HealthMode) String() string {
	switch m {
	case HealthOff:
		return "off"
	case HealthError:
		return "error"
	case HealthClamp:
		return "clamp"
	case HealthRollback:
		return "rollback"
	default:
		return fmt.Sprintf("HealthMode(%d)", int(m))
	}
}

// HealthPolicy is the opt-in numeric-health watchdog configuration of
// an engine. When armed, the result vector of a step is scanned for
// NaN/±Inf on the pool — fused into the step's epilogue sweep where
// one exists, so the scan adds no extra dispatch.
type HealthPolicy struct {
	Mode HealthMode
	// Every scans only every Every-th step (<= 1 scans every step).
	// The counter is the engine's lifetime step count.
	Every int
}

// Armed reports whether the policy requires any scanning at all.
func (h HealthPolicy) Armed() bool { return h.Mode != HealthOff }

// NumericError reports non-finite values detected by the watchdog.
type NumericError struct {
	// Count is the number of non-finite elements found in the scan.
	Count int64
	// First is the flat index (vertex*K+lane for batched steps) of the
	// lowest-indexed non-finite element found by the worker that owns
	// it.
	First int
	// Rollback distinguishes HealthRollback from HealthError: drivers
	// holding a checkpoint should restore it and continue rather than
	// fail the run.
	Rollback bool
}

func (e *NumericError) Error() string {
	action := "failing"
	if e.Rollback {
		action = "rolling back"
	}
	return fmt.Sprintf("spmv: %d non-finite result element(s), first at flat index %d; %s", e.Count, e.First, action)
}
