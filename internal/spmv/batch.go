package spmv

// Batched (multi-vector) SpMM: one traversal of the edge stream drives
// K dense vectors at once. Vectors are VERTEX-MAJOR INTERLEAVED —
// vertex v's lane j lives at x[v*k+j] — so each loaded edge touches K
// contiguous float64 lanes of its source and destination. The kernels
// are otherwise identical to their scalar counterparts; the point of
// batching is that the irregular index stream (the bound resource of
// every kernel here, §4.3) is amortised over K lanes of useful
// arithmetic, the propagation-blocking / multi-vector SpMM argument.

// BatchStepper is the batched extension of Stepper: one StepBatch
// computes dst[v*k+j] = Σ_{u ∈ N⁻(v)} src[u*k+j] for every vertex v
// and lane j < k. src and dst must have length NumVertices()*k and be
// vertex-major interleaved. Implementations must make StepBatch with
// k == 1 semantically identical to Step.
type BatchStepper interface {
	Stepper
	StepBatch(src, dst []float64, k int)
}

// StepBatch implements BatchStepper over the engine's direction.
// src and dst must have length NumV*k and must not alias. k == 1
// delegates to the scalar Step, so a width-1 batch costs exactly one
// scalar iteration.
func (e *Engine) StepBatch(src, dst []float64, k int) {
	if k == 1 {
		e.Step(src, dst)
		return
	}
	if k < 1 {
		panic("spmv: batch width < 1")
	}
	if len(src) != e.g.NumV*k || len(dst) != e.g.NumV*k {
		panic("spmv: batch vector length mismatch")
	}
	switch e.dir {
	case Pull:
		e.stepPullBatch(src, dst, k)
	case PushAtomic:
		e.stepPushAtomicBatch(src, dst, k)
	case PushBuffered:
		e.stepPushBufferedBatch(src, dst, k)
	case PushPartitioned:
		e.stepPushPartitionedBatch(src, dst, k)
	}
}

// stepPullBatch is the batched Algorithm 1: per destination, the K
// partial sums accumulate directly in dst's contiguous lane row, which
// each partition owns exclusively.
func (e *Engine) stepPullBatch(src, dst []float64, k int) {
	g := e.g
	nparts := len(e.pullBounds) - 1
	e.forParts(nparts, func(w, part int) {
		lo, hi := e.pullBounds[part], e.pullBounds[part+1]
		nbrs := g.InNbrs
		for v := lo; v < hi; v++ {
			db := v * k
			out := dst[db : db+k : db+k]
			for j := range out {
				out[j] = 0
			}
			for i := g.InIndex[v]; i < g.InIndex[v+1]; i++ {
				sb := int(nbrs[i]) * k
				xs := src[sb : sb+k : sb+k]
				for j, x := range xs {
					out[j] += x
				}
			}
		}
	})
}

// stepPushAtomicBatch is the batched Algorithm 2 with atomics: K CAS
// updates per edge. Batching does not amortise the synchronisation —
// the lane loop multiplies it — which is exactly the ablation point.
func (e *Engine) stepPushAtomicBatch(src, dst []float64, k int) {
	e.zero(dst)
	g := e.g
	nparts := len(e.pushBounds) - 1
	e.forParts(nparts, func(w, part int) {
		lo, hi := e.pushBounds[part], e.pushBounds[part+1]
		nbrs := g.OutNbrs
		for v := lo; v < hi; v++ {
			sb := v * k
			xs := src[sb : sb+k : sb+k]
			if SkipZeroLanes(xs) {
				continue
			}
			for i := g.OutIndex[v]; i < g.OutIndex[v+1]; i++ {
				db := int(nbrs[i]) * k
				for j, x := range xs {
					AtomicAddFloat64(&dst[db+j], x)
				}
			}
		}
	})
}

// stepPushBufferedBatch is the batched X-Stream push: per-worker
// buffers grow to NumV*k lanes (allocated on first use of a width and
// reused after), and the merge reduces K lanes per vertex.
func (e *Engine) stepPushBufferedBatch(src, dst []float64, k int) {
	g := e.g
	bufs := e.batchBufs(k)
	e.pool.Run(func(w int) {
		clear(bufs[w])
	})
	nparts := len(e.pushBounds) - 1
	e.forParts(nparts, func(w, part int) {
		buf := bufs[w]
		lo, hi := e.pushBounds[part], e.pushBounds[part+1]
		nbrs := g.OutNbrs
		for v := lo; v < hi; v++ {
			sb := v * k
			xs := src[sb : sb+k : sb+k]
			if SkipZeroLanes(xs) {
				continue
			}
			for i := g.OutIndex[v]; i < g.OutIndex[v+1]; i++ {
				db := int(nbrs[i]) * k
				acc := buf[db : db+k : db+k]
				for j, x := range xs {
					acc[j] += x
				}
			}
		}
	})
	e.pool.ForStatic(g.NumV, func(w, lo, hi int) {
		for i := lo * k; i < hi*k; i++ {
			sum := 0.0
			for t := range bufs {
				sum += bufs[t][i]
			}
			dst[i] = sum
		}
	})
}

// stepPushPartitionedBatch is the batched GraphGrind push: partitions
// own disjoint destination ranges, so the K-lane updates need no
// synchronisation.
func (e *Engine) stepPushPartitionedBatch(src, dst []float64, k int) {
	e.zero(dst)
	pp := e.parts
	e.forParts(pp.NumParts(), func(w, p int) {
		part := &pp.Parts[p]
		for i, u := range part.Srcs {
			sb := int(u) * k
			xs := src[sb : sb+k : sb+k]
			if SkipZeroLanes(xs) {
				continue
			}
			for j := part.Index[i]; j < part.Index[i+1]; j++ {
				db := int(part.Dsts[j]) * k
				acc := dst[db : db+k : db+k]
				for l, x := range xs {
					acc[l] += x
				}
			}
		}
	})
}

// batchBufs returns the per-worker K-wide accumulation buffers of the
// PushBuffered batch path, (re)allocating when the width changes.
func (e *Engine) batchBufs(k int) [][]float64 {
	if e.batchK == k {
		return e.threadBufsK
	}
	e.threadBufsK = make([][]float64, e.pool.Workers())
	for w := range e.threadBufsK {
		e.threadBufsK[w] = make([]float64, e.g.NumV*k)
	}
	e.batchK = k
	return e.threadBufsK
}
