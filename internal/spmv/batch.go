package spmv

// Batched (multi-vector) SpMM: one traversal of the edge stream drives
// K dense vectors at once. Vectors are VERTEX-MAJOR INTERLEAVED —
// vertex v's lane j lives at x[v*k+j] — so each loaded edge touches K
// contiguous float64 lanes of its source and destination. The kernels
// are otherwise identical to their scalar counterparts; the point of
// batching is that the irregular index stream (the bound resource of
// every kernel here, §4.3) is amortised over K lanes of useful
// arithmetic, the propagation-blocking / multi-vector SpMM argument.

// BatchStepper is the batched extension of Stepper: one StepBatch
// computes dst[v*k+j] = Σ_{u ∈ N⁻(v)} src[u*k+j] for every vertex v
// and lane j < k. src and dst must have length NumVertices()*k and be
// vertex-major interleaved. Implementations must make StepBatch with
// k == 1 semantically identical to Step.
type BatchStepper interface {
	Stepper
	StepBatch(src, dst []float64, k int)
}

// StepBatch implements BatchStepper over the engine's direction.
// src and dst must have length NumV*k and must not alias. k == 1
// delegates to the scalar Step, so a width-1 batch costs exactly one
// scalar iteration. Apart from batchBufs growing the PushBuffered
// accumulators on a width change (the deliberate unannotated callee),
// a steady-width StepBatch allocates nothing.
//
//ihtl:noalloc
func (e *Engine) StepBatch(src, dst []float64, k int) {
	if k == 1 {
		e.Step(src, dst)
		return
	}
	if k < 1 {
		panic("spmv: batch width < 1")
	}
	if len(src) != e.g.NumV*k || len(dst) != e.g.NumV*k {
		panic("spmv: batch vector length mismatch")
	}
	e.curSrc, e.curDst, e.curK = src, dst, k
	switch e.dir {
	case Pull:
		e.forParts(len(e.pullBounds)-1, e.pullBatchJob)
	case PushAtomic:
		e.zeroDst()
		e.forParts(len(e.pushBounds)-1, e.atomicBatchJob)
	case PushBuffered:
		e.batchBufs(k)
		e.pool.Run(e.clearBufsKJob)
		e.forParts(len(e.pushBounds)-1, e.bufferedBatchJob)
		e.pool.ForStatic(e.g.NumV, e.mergeBatchJob)
	case PushPartitioned:
		e.zeroDst()
		e.forParts(e.parts.NumParts(), e.partBatchJob)
	case PropBlocked:
		e.pb.pbBatchVals(k)
		e.forParts(e.pb.numChunks, e.binBatchJob)
		e.forParts(e.pb.numBuckets, e.drainBatchJob)
	}
	e.curSrc, e.curDst, e.curK = nil, nil, 0
}

// pullBatchWorker is the batched Algorithm 1: per destination, the K
// partial sums accumulate directly in dst's contiguous lane row, which
// each partition owns exclusively.
//
//ihtl:noalloc
func (e *Engine) pullBatchWorker(w, lo, hi int) {
	g, src, dst, k := e.g, e.curSrc, e.curDst, e.curK
	nbrs := g.InNbrs
	for part := lo; part < hi; part++ {
		vlo, vhi := e.pullBounds[part], e.pullBounds[part+1]
		for v := vlo; v < vhi; v++ {
			db := v * k
			out := dst[db : db+k : db+k]
			for j := range out {
				out[j] = 0
			}
			for i := g.InIndex[v]; i < g.InIndex[v+1]; i++ {
				sb := int(nbrs[i]) * k
				xs := src[sb : sb+k : sb+k]
				for j, x := range xs {
					out[j] += x
				}
			}
		}
	}
}

// atomicBatchWorker is the batched Algorithm 2 with atomics: K CAS
// updates per edge. Batching does not amortise the synchronisation —
// the lane loop multiplies it — which is exactly the ablation point.
//
//ihtl:noalloc
func (e *Engine) atomicBatchWorker(w, lo, hi int) {
	g, src, dst, k := e.g, e.curSrc, e.curDst, e.curK
	nbrs := g.OutNbrs
	for part := lo; part < hi; part++ {
		vlo, vhi := e.pushBounds[part], e.pushBounds[part+1]
		for v := vlo; v < vhi; v++ {
			sb := v * k
			xs := src[sb : sb+k : sb+k]
			if SkipZeroLanes(xs) {
				continue
			}
			for i := g.OutIndex[v]; i < g.OutIndex[v+1]; i++ {
				db := int(nbrs[i]) * k
				for j, x := range xs {
					AtomicAddFloat64(&dst[db+j], x)
				}
			}
		}
	}
}

// bufferedBatchWorker is the batched X-Stream push: per-worker buffers
// hold NumV*k lanes (grown by batchBufs on a width change and reused
// after); mergeBatchWorker reduces K lanes per vertex.
//
//ihtl:noalloc
func (e *Engine) bufferedBatchWorker(w, lo, hi int) {
	g, src, k := e.g, e.curSrc, e.curK
	buf := e.threadBufsK[w]
	nbrs := g.OutNbrs
	for part := lo; part < hi; part++ {
		vlo, vhi := e.pushBounds[part], e.pushBounds[part+1]
		for v := vlo; v < vhi; v++ {
			sb := v * k
			xs := src[sb : sb+k : sb+k]
			if SkipZeroLanes(xs) {
				continue
			}
			for i := g.OutIndex[v]; i < g.OutIndex[v+1]; i++ {
				db := int(nbrs[i]) * k
				acc := buf[db : db+k : db+k]
				for j, x := range xs {
					acc[j] += x
				}
			}
		}
	}
}

// clearBufsKWorker resets one worker's K-wide accumulation buffer.
//
//ihtl:noalloc
func (e *Engine) clearBufsKWorker(w int) {
	clear(e.threadBufsK[w])
}

// mergeBatchWorker reduces every worker's K-wide buffer into dst over
// a static vertex range.
//
//ihtl:noalloc
func (e *Engine) mergeBatchWorker(w, lo, hi int) {
	bufs, dst, k := e.threadBufsK, e.curDst, e.curK
	for i := lo * k; i < hi*k; i++ {
		sum := 0.0
		for t := range bufs {
			sum += bufs[t][i]
		}
		dst[i] = sum
	}
}

// partBatchWorker is the batched GraphGrind push: partitions own
// disjoint destination ranges, so the K-lane updates need no
// synchronisation.
//
//ihtl:noalloc
func (e *Engine) partBatchWorker(w, lo, hi int) {
	src, dst, k := e.curSrc, e.curDst, e.curK
	pp := e.parts
	for p := lo; p < hi; p++ {
		part := &pp.Parts[p]
		for i, u := range part.Srcs {
			sb := int(u) * k
			xs := src[sb : sb+k : sb+k]
			if SkipZeroLanes(xs) {
				continue
			}
			for j := part.Index[i]; j < part.Index[i+1]; j++ {
				db := int(part.Dsts[j]) * k
				acc := dst[db : db+k : db+k]
				for l, x := range xs {
					acc[l] += x
				}
			}
		}
	}
}

// batchBufs ensures the per-worker K-wide accumulation buffers of the
// PushBuffered batch path exist, (re)allocating when the width
// changes. It is deliberately NOT annotated //ihtl:noalloc: growing on
// a width change is the one allocation StepBatch is allowed, through
// the unannotated-callee escape hatch.
func (e *Engine) batchBufs(k int) [][]float64 {
	if e.batchK == k {
		return e.threadBufsK
	}
	e.threadBufsK = make([][]float64, e.pool.Workers())
	for w := range e.threadBufsK {
		e.threadBufsK[w] = make([]float64, e.g.NumV*k)
	}
	e.batchK = k
	return e.threadBufsK
}
