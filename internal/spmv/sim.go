package spmv

import (
	"ihtl/internal/cache"
	"ihtl/internal/graph"
)

// Simulation replays the memory reference stream of one SpMV
// iteration against a simulated cache hierarchy (see internal/cache
// for why a simulator stands in for PAPI). The trace models exactly
// the arrays the real kernel touches:
//
//	pull:  stream InIndex (8 B/vertex) and InNbrs (4 B/edge),
//	       random-read srcData[u] (8 B), stream-write dstData[v];
//	push:  stream OutIndex and OutNbrs, sequential-read srcData[v],
//	       random-write dstData[u].
//
// Traces are single-threaded: the locality phenomenon under study is
// per-core capacity, and a deterministic single-stream trace makes
// the experiments reproducible.

// VertexBytes is the simulated per-vertex data size; the paper uses
// 8-byte PageRank values (§4.1).
const VertexBytes = 8

// SimStats aggregates the result of one simulated iteration.
type SimStats struct {
	Loads, Stores uint64
	L2            cache.LevelStats
	L3            cache.LevelStats
	LLCMissRate   float64
}

// DegreeMissBucket is one point of the Figure 1 curve, aggregating
// the vertices whose in-degree falls in [DegreeLo, DegreeHi):
// Accesses counts the memory accesses (loads+stores) issued while
// processing those vertices' in-edges, Misses the LLC misses among
// them, so MissRate is "LLC misses per memory access" — the
// conditional miss rate of Figure 1.
type DegreeMissBucket struct {
	DegreeLo, DegreeHi int
	Vertices           int
	Accesses           uint64
	Misses             uint64
}

// MissRate returns the bucket's miss rate (0 when empty).
func (b DegreeMissBucket) MissRate() float64 {
	if b.Accesses == 0 {
		return 0
	}
	return float64(b.Misses) / float64(b.Accesses)
}

// SimulatePull replays a pull-direction SpMV iteration. When
// byDegree is true it also attributes the misses of the random
// source-data reads to log2 in-degree buckets (Figure 1).
func SimulatePull(g *graph.Graph, cfg cache.Config, byDegree bool) (SimStats, []DegreeMissBucket) {
	h := cache.NewHierarchy(cfg)
	var as cache.AddressSpace
	inIndex := as.Alloc(g.NumV+1, 8)
	inNbrs := as.Alloc(int(g.NumE), 4)
	srcData := as.Alloc(g.NumV, VertexBytes)
	dstData := as.Alloc(g.NumV, VertexBytes)

	llc := h.LastLevel()
	var buckets []DegreeMissBucket
	bucketOf := func(deg int) int {
		b := 0
		for d := deg; d > 1; d >>= 1 {
			b++
		}
		return b
	}
	if byDegree {
		buckets = make([]DegreeMissBucket, 0, 32)
	}

	snapshot := func() (uint64, uint64) {
		loads, stores := h.MemoryAccesses()
		return loads + stores, h.Stats(llc).Misses
	}
	for v := 0; v < g.NumV; v++ {
		h.ReadRange(inIndex.Addr(v), 16) // index[v], index[v+1]
		lo, hi := g.InIndex[v], g.InIndex[v+1]
		deg := int(hi - lo)

		var beforeAcc, beforeMiss uint64
		if byDegree {
			beforeAcc, beforeMiss = snapshot()
		}
		for i := lo; i < hi; i++ {
			h.ReadRange(inNbrs.Addr(int(i)), 4)    // neighbour ID (streamed)
			h.Read(srcData.Addr(int(g.InNbrs[i]))) // random source read
		}
		if byDegree && deg > 0 {
			afterAcc, afterMiss := snapshot()
			b := bucketOf(deg)
			for len(buckets) <= b {
				lo2 := 1 << uint(len(buckets))
				buckets = append(buckets, DegreeMissBucket{DegreeLo: lo2, DegreeHi: lo2 * 2})
			}
			buckets[b].Vertices++
			buckets[b].Accesses += afterAcc - beforeAcc
			buckets[b].Misses += afterMiss - beforeMiss
		}
		h.Write(dstData.Addr(v))
	}
	return collectStats(h), buckets
}

// SimulatePush replays a push-direction SpMV iteration with
// unprotected random writes (the trace is identical for atomic or
// partitioned push — protection does not change the reference
// stream).
func SimulatePush(g *graph.Graph, cfg cache.Config) SimStats {
	h := cache.NewHierarchy(cfg)
	var as cache.AddressSpace
	outIndex := as.Alloc(g.NumV+1, 8)
	outNbrs := as.Alloc(int(g.NumE), 4)
	srcData := as.Alloc(g.NumV, VertexBytes)
	dstData := as.Alloc(g.NumV, VertexBytes)

	for v := 0; v < g.NumV; v++ {
		h.ReadRange(outIndex.Addr(v), 16)
		h.ReadRange(srcData.Addr(v), VertexBytes) // sequential source read
		for i := g.OutIndex[v]; i < g.OutIndex[v+1]; i++ {
			h.ReadRange(outNbrs.Addr(int(i)), 4)
			// Random read-modify-write of the destination.
			h.Read(dstData.Addr(int(g.OutNbrs[i])))
			h.Write(dstData.Addr(int(g.OutNbrs[i])))
		}
	}
	return collectStats(h)
}

func collectStats(h *cache.Hierarchy) SimStats {
	loads, stores := h.MemoryAccesses()
	s := SimStats{
		Loads:  loads,
		Stores: stores,
		L2:     h.Stats(cache.L2),
		L3:     h.Stats(cache.L3),
	}
	s.LLCMissRate = h.Stats(h.LastLevel()).MissRate()
	return s
}
