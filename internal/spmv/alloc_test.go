package spmv

import (
	"fmt"
	"testing"

	"ihtl/internal/gen"
	"ihtl/internal/sched"
)

// TestStepAllocFree pins the steady-state allocation count of every
// baseline engine's Step and StepBatch at zero: after the first call
// warms lazily-sized state (the batched buffered engine grows its
// per-worker buffers on first use of a lane width), repeated dispatches
// must not allocate. This is the runtime counterpart of the ihtlvet
// noalloc pass — the static pass proves the annotated bodies cannot
// allocate, this test proves the whole dispatch path (pool fan-out
// included) stays allocation-free.
func TestStepAllocFree(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(8, 8, 42))
	if err != nil {
		t.Fatal(err)
	}
	pool := sched.NewPool(2)
	defer pool.Close()

	const k = 4
	src := batchTestVec(7, g.NumV)
	dst := make([]float64, g.NumV)
	srcK := batchTestVec(8, g.NumV*k)
	dstK := make([]float64, g.NumV*k)

	for _, dir := range []Direction{Pull, PushAtomic, PushBuffered, PushPartitioned, PropBlocked} {
		e, err := NewEngine(g, pool, dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Run(fmt.Sprintf("%v/Step", dir), func(t *testing.T) {
			e.Step(src, dst)
			if n := testing.AllocsPerRun(5, func() { e.Step(src, dst) }); n != 0 {
				t.Errorf("Step allocates %v times per call, want 0", n)
			}
		})
		t.Run(fmt.Sprintf("%v/StepBatch", dir), func(t *testing.T) {
			e.StepBatch(srcK, dstK, k)
			if n := testing.AllocsPerRun(5, func() { e.StepBatch(srcK, dstK, k) }); n != 0 {
				t.Errorf("StepBatch(k=%d) allocates %v times per call, want 0", k, n)
			}
		})
	}
}
