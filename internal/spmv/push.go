package spmv

import (
	"math"
	"sync/atomic"
	"unsafe"

	"ihtl/internal/faultinject"
)

// SkipZero reports whether x is positive zero — the ONLY value the
// push kernels' zero fast path may skip. Every accumulator these
// kernels feed (per-thread buffers, cleared dst, pull partial sums)
// starts at +0.0, for which +0.0 is a bit-transparent additive
// identity, so skipping it cannot change any result. Skipping on
// x == 0 would also skip negative zero, silently dropping -0.0
// contributions the pull engines traverse; instead -0.0 is pushed like
// any other value. All push engines — fused, phased, atomic, buffered,
// partitioned, and their batched forms — share this predicate so their
// zero semantics cannot drift apart.
//
//ihtl:noalloc
func SkipZero(x float64) bool { return math.Float64bits(x) == 0 }

// SkipZeroLanes is SkipZero over a batch row: a batched push kernel
// may skip a source's edges only when every lane carries the
// skippable +0.0.
//
//ihtl:noalloc
func SkipZeroLanes(xs []float64) bool {
	for _, x := range xs {
		if math.Float64bits(x) != 0 {
			return false
		}
	}
	return true
}

// AtomicAddFloat64 adds delta to *addr with a CAS loop — the price
// push traversal pays to protect concurrent updates to shared
// destinations (§1: "atomic instructions").
//
//ihtl:noalloc
func AtomicAddFloat64(addr *float64, delta float64) {
	bits := (*uint64)(unsafe.Pointer(addr))
	for {
		old := atomic.LoadUint64(bits)
		new := math.Float64bits(math.Float64frombits(old) + delta)
		if atomic.CompareAndSwapUint64(bits, old, new) {
			return
		}
	}
}

// atomicWorker is Algorithm 2 with atomic writes: sources are
// processed in parallel; every destination update is a CAS.
//
//ihtl:noalloc
func (e *Engine) atomicWorker(w, lo, hi int) {
	g, src, dst := e.g, e.curSrc, e.curDst
	nbrs := g.OutNbrs
	for part := lo; part < hi; part++ {
		vlo, vhi := e.pushBounds[part], e.pushBounds[part+1]
		for v := vlo; v < vhi; v++ {
			x := src[v]
			if SkipZero(x) {
				continue
			}
			for i := g.OutIndex[v]; i < g.OutIndex[v+1]; i++ {
				AtomicAddFloat64(&dst[nbrs[i]], x)
			}
		}
	}
}

// bufferedWorker is Algorithm 2 with X-Stream-style buffering
// (reference [29] of the paper): each worker accumulates into a
// private full-length buffer; a separate vertex-parallel merge
// (mergeWorker) reduces the buffers into dst. No atomics, but the
// buffers are as large as the vertex data itself — the overhead iHTL's
// flipped blocks shrink to a few hub pages.
//
//ihtl:noalloc
func (e *Engine) bufferedWorker(w, lo, hi int) {
	g, src := e.g, e.curSrc
	buf := e.threadBufs[w]
	nbrs := g.OutNbrs
	faultinject.Fire(faultinject.SitePushPart)
	for part := lo; part < hi; part++ {
		vlo, vhi := e.pushBounds[part], e.pushBounds[part+1]
		for v := vlo; v < vhi; v++ {
			x := src[v]
			if SkipZero(x) {
				continue
			}
			for i := g.OutIndex[v]; i < g.OutIndex[v+1]; i++ {
				buf[nbrs[i]] += x
			}
		}
	}
}

// clearBufsWorker resets one worker's scalar accumulation buffer.
// Buffers are dirtied selectively and cleared fully; for the graphs
// used here clearing is a small sequential sweep per worker.
//
//ihtl:noalloc
func (e *Engine) clearBufsWorker(w int) {
	clear(e.threadBufs[w])
}

// mergeWorker reduces every worker's buffer into dst over a static
// vertex range.
//
//ihtl:noalloc
func (e *Engine) mergeWorker(w, lo, hi int) {
	bufs, dst := e.threadBufs, e.curDst
	for v := lo; v < hi; v++ {
		sum := 0.0
		for t := range bufs {
			sum += bufs[t][v]
		}
		dst[v] = sum
	}
}
