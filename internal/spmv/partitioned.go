package spmv

import (
	"ihtl/internal/graph"
	"ihtl/internal/sched"
)

// PushPartitions is the GraphGrind-style destination-partitioned
// representation (paper reference [35]): edges are grouped into
// partitions by destination range so that concurrent threads
// processing different partitions can push without synchronisation —
// all writes of partition p land in [VertexLo[p], VertexLo[p+1]).
//
// Each partition stores its own CSR over the *sources*, which
// replicates the source index array per partition — the same topology
// growth that Table 4 reports for iHTL's flipped blocks.
type PushPartitions struct {
	// VertexLo has nparts+1 destination-range boundaries.
	VertexLo []int
	// Parts holds one sub-CSR per partition.
	Parts []PartCSR
}

// PartCSR is the edge set of one partition in CSR-by-source form,
// compacted to the sources that actually have edges into the
// partition.
type PartCSR struct {
	// Srcs lists the source vertices with at least one edge into the
	// partition's destination range.
	Srcs []graph.VID
	// Index has len(Srcs)+1 offsets into Dsts.
	Index []int64
	// Dsts lists destinations, grouped by source.
	Dsts []graph.VID
}

// NumParts returns the partition count.
func (pp *PushPartitions) NumParts() int { return len(pp.Parts) }

// TopologyBytes returns the memory footprint of the partitioned
// topology (8 bytes per index entry, 4 per vertex ID).
func (pp *PushPartitions) TopologyBytes() int64 {
	var b int64
	for _, p := range pp.Parts {
		b += int64(len(p.Srcs))*4 + int64(len(p.Index))*8 + int64(len(p.Dsts))*4
	}
	return b
}

// BuildPushPartitions splits g's edges into nparts destination ranges
// balanced by in-edge count.
func BuildPushPartitions(g *graph.Graph, nparts int) *PushPartitions {
	if nparts < 1 {
		nparts = 1
	}
	bounds := sched.EdgeBalancedParts(g.InIndex, nparts)
	pp := &PushPartitions{VertexLo: bounds, Parts: make([]PartCSR, nparts)}
	for p := 0; p < nparts; p++ {
		lo, hi := graph.VID(bounds[p]), graph.VID(bounds[p+1])
		part := &pp.Parts[p]
		// One pass over the destination range's in-edges counts
		// per-source degrees; sources arrive sorted per destination
		// but we need grouping by source, so count then fill.
		deg := make(map[graph.VID]int)
		for v := lo; v < hi; v++ {
			for _, u := range g.In(v) {
				deg[u]++
			}
		}
		part.Srcs = make([]graph.VID, 0, len(deg))
		for u := range deg {
			part.Srcs = append(part.Srcs, u)
		}
		sortVIDs(part.Srcs)
		slot := make(map[graph.VID]int, len(deg))
		part.Index = make([]int64, len(part.Srcs)+1)
		for i, u := range part.Srcs {
			slot[u] = i
			part.Index[i+1] = part.Index[i] + int64(deg[u])
		}
		part.Dsts = make([]graph.VID, part.Index[len(part.Srcs)])
		cursor := make([]int64, len(part.Srcs))
		copy(cursor, part.Index[:len(part.Srcs)])
		for v := lo; v < hi; v++ {
			for _, u := range g.In(v) {
				s := slot[u]
				part.Dsts[cursor[s]] = v
				cursor[s]++
			}
		}
	}
	return pp
}

func sortVIDs(v []graph.VID) {
	// Insertion sort is quadratic; use sort.Slice via a local import
	// indirection-free helper.
	quickSortVIDs(v)
}

func quickSortVIDs(v []graph.VID) {
	if len(v) < 24 {
		for i := 1; i < len(v); i++ {
			for j := i; j > 0 && v[j] < v[j-1]; j-- {
				v[j], v[j-1] = v[j-1], v[j]
			}
		}
		return
	}
	pivot := v[len(v)/2]
	left, right := 0, len(v)-1
	for left <= right {
		for v[left] < pivot {
			left++
		}
		for v[right] > pivot {
			right--
		}
		if left <= right {
			v[left], v[right] = v[right], v[left]
			left++
			right--
		}
	}
	quickSortVIDs(v[:right+1])
	quickSortVIDs(v[left:])
}

// partWorker pushes within destination partitions: threads claim whole
// partitions, so no write synchronisation is needed.
//
//ihtl:noalloc
func (e *Engine) partWorker(w, lo, hi int) {
	src, dst := e.curSrc, e.curDst
	pp := e.parts
	for p := lo; p < hi; p++ {
		part := &pp.Parts[p]
		for i, u := range part.Srcs {
			x := src[u]
			if SkipZero(x) {
				continue
			}
			for j := part.Index[i]; j < part.Index[i+1]; j++ {
				dst[part.Dsts[j]] += x
			}
		}
	}
}
