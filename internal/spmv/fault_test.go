package spmv

import (
	"errors"
	"math"
	"testing"

	"ihtl/internal/faultinject"
	"ihtl/internal/gen"
	"ihtl/internal/sched"
	"ihtl/internal/xrand"
)

// TestStepCtxInjectedPanicRecovery drives the baseline engines through
// injected worker panics at their chunk sites — SitePushPart in the
// buffered-push and propagation-blocking bin phases, SitePullPart in
// the pull and drain phases — and checks the panic surfaces as a
// *sched.PanicError unwrapping to the injected fault, after which the
// next clean step matches an uninjected reference.
func TestStepCtxInjectedPanicRecovery(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(10, 8, 3))
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(17)
	src := make([]float64, g.NumV)
	for i := range src {
		src[i] = r.Float64()
	}

	cases := []struct {
		dir  Direction
		site faultinject.Site
	}{
		{PushBuffered, faultinject.SitePushPart},
		{PropBlocked, faultinject.SitePushPart},
		{Pull, faultinject.SitePullPart},
		{PropBlocked, faultinject.SitePullPart},
	}
	for _, tc := range cases {
		e, err := NewEngine(g, testPool, tc.dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ref := make([]float64, g.NumV)
		e.Step(src, ref)

		dst := make([]float64, g.NumV)
		for after := int64(0); after < 3; after++ {
			plan := faultinject.NewPlan(faultinject.Rule{Site: tc.site, Kind: faultinject.Panic, After: after})
			faultinject.Activate(plan)
			err := e.StepCtx(nil, src, dst)
			faultinject.Deactivate()
			if plan.Fired(tc.site) == 0 {
				if err != nil {
					t.Fatalf("%s/%s after=%d: err = %v with no fault fired", tc.dir, tc.site, after, err)
				}
			} else {
				var perr *sched.PanicError
				if !errors.As(err, &perr) {
					t.Fatalf("%s/%s after=%d: err = %v, want *sched.PanicError", tc.dir, tc.site, after, err)
				}
				var ip *faultinject.InjectedPanic
				if !errors.As(err, &ip) || ip.Site != tc.site {
					t.Fatalf("%s/%s after=%d: error does not unwrap to the injected fault: %v", tc.dir, tc.site, after, err)
				}
			}
			if err := e.StepCtx(nil, src, dst); err != nil {
				t.Fatalf("%s/%s after=%d: clean step: %v", tc.dir, tc.site, after, err)
			}
			for i := range ref {
				if math.Abs(dst[i]-ref[i]) > 1e-9*(1+math.Abs(ref[i])) {
					t.Fatalf("%s/%s after=%d: element %d = %g, want %g", tc.dir, tc.site, after, i, dst[i], ref[i])
				}
			}
		}
	}
}
