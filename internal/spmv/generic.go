package spmv

import (
	"fmt"

	"ihtl/internal/graph"
	"ihtl/internal/sched"
)

// The float64-sum engines cover the paper's evaluation (PageRank).
// §6 argues the same irregular-traversal idea applies to other
// analytics — SSSP, connected components, reachability — which are
// SpMV over different algebras: min-plus, min, boolean-or. The
// generic engines below compute
//
//	dst[v] = ⊕_{u ∈ N⁻(v)} src[u]
//
// over any commutative monoid ⊕, in pull or buffered-push form; the
// iHTL counterpart lives in internal/core.

// Monoid is a commutative, associative combine with an identity
// element. Identity must satisfy Combine(Identity, x) == x, and
// Combine must be insensitive to argument order and grouping (the
// parallel engines exploit both).
//
// Edge, when non-nil, turns the monoid into a semiring step: the
// source value is transformed per edge before combining,
// dst[v] = ⊕ Edge(src[u], u, v) — e.g. min-plus SSSP uses
// Edge = src[u] + w(u,v). Edge receives vertex IDs in the ENGINE's ID
// space (original for the baseline engines, relabeled for the iHTL
// engine — map through IHTL.OldID when weights are keyed by original
// IDs). Edge(Identity, u, v) must return an identity-like value that
// cannot win Combine against real values (true for min-plus with a
// large Identity and non-negative weights).
type Monoid[T any] struct {
	Identity T
	Combine  func(a, b T) T
	Edge     func(x T, src, dst graph.VID) T
}

// Apply transforms a source value across an edge (identity when no
// Edge hook is set). Exported for the iHTL generic engine in
// internal/core.
func (m *Monoid[T]) Apply(x T, src, dst graph.VID) T {
	if m.Edge == nil {
		return x
	}
	return m.Edge(x, src, dst)
}

// MinPlusInt64 is the shortest-path semiring step over int64: values
// combine by min and traverse edges by adding weight(src, dst). The
// weight function must be non-negative.
func MinPlusInt64(weight func(src, dst graph.VID) int64) Monoid[int64] {
	m := MinInt64()
	m.Edge = func(x int64, src, dst graph.VID) int64 {
		if x >= m.Identity {
			return m.Identity // don't relax from unreached vertices
		}
		return x + weight(src, dst)
	}
	return m
}

// MinInt64 is the tropical (min) monoid over int64 — the algebra of
// shortest paths and minimum labels.
func MinInt64() Monoid[int64] {
	return Monoid[int64]{
		Identity: int64(1) << 62,
		Combine: func(a, b int64) int64 {
			if a < b {
				return a
			}
			return b
		},
	}
}

// MaxFloat64 is the max monoid over float64.
func MaxFloat64() Monoid[float64] {
	return Monoid[float64]{
		Identity: -1e308,
		Combine: func(a, b float64) float64 {
			if a > b {
				return a
			}
			return b
		},
	}
}

// BoolOr is the boolean-or monoid — the algebra of reachability.
func BoolOr() Monoid[bool] {
	return Monoid[bool]{Combine: func(a, b bool) bool { return a || b }}
}

// SumFloat64 is the ordinary sum, the monoid of the paper's SpMV.
func SumFloat64() Monoid[float64] {
	return Monoid[float64]{Combine: func(a, b float64) float64 { return a + b }}
}

// GenericStepper is the monoid analogue of Stepper.
type GenericStepper[T any] interface {
	StepMonoid(src, dst []T)
	NumVertices() int
}

// GenericEngine computes monoid SpMV in pull direction (no write
// races, works for any monoid) or buffered-push form.
type GenericEngine[T any] struct {
	g      *graph.Graph
	pool   *sched.Pool
	m      Monoid[T]
	push   bool
	bounds []int
	bufs   [][]T
	// partSched claims partitions by range stealing (see
	// Engine.partSched); persistent so Steps allocate nothing.
	partSched *sched.StealScheduler
}

// NewGenericEngine prepares a monoid engine over g. push selects the
// buffered-push kernel (per-worker full-length buffers merged after
// the pass), otherwise pull.
func NewGenericEngine[T any](g *graph.Graph, pool *sched.Pool, m Monoid[T], push bool) (*GenericEngine[T], error) {
	if g == nil || pool == nil {
		return nil, fmt.Errorf("spmv: nil graph or pool")
	}
	if m.Combine == nil {
		return nil, fmt.Errorf("spmv: monoid without Combine")
	}
	e := &GenericEngine[T]{g: g, pool: pool, m: m, push: push}
	if push {
		e.bounds = sched.EdgeBalancedParts(g.OutIndex, pool.Workers()*4)
		e.bufs = make([][]T, pool.Workers())
		for w := range e.bufs {
			e.bufs[w] = make([]T, g.NumV)
		}
	} else {
		e.bounds = sched.EdgeBalancedParts(g.InIndex, pool.Workers()*4)
	}
	e.partSched = sched.NewStealScheduler(pool.Workers())
	return e, nil
}

// forParts runs fn over every partition index using the persistent
// steal scheduler.
func (e *GenericEngine[T]) forParts(nparts int, fn func(worker, part int)) {
	e.pool.ForStealWith(e.partSched, nparts, 1, func(w, lo, hi int) {
		for p := lo; p < hi; p++ {
			fn(w, p)
		}
	})
}

// NumVertices implements GenericStepper.
func (e *GenericEngine[T]) NumVertices() int { return e.g.NumV }

// StepMonoid implements GenericStepper.
func (e *GenericEngine[T]) StepMonoid(src, dst []T) {
	if len(src) != e.g.NumV || len(dst) != e.g.NumV {
		panic("spmv: vector length mismatch")
	}
	if e.push {
		e.stepPushMonoid(src, dst)
	} else {
		e.stepPullMonoid(src, dst)
	}
}

func (e *GenericEngine[T]) stepPullMonoid(src, dst []T) {
	g := e.g
	m := e.m
	e.forParts(len(e.bounds)-1, func(w, part int) {
		lo, hi := e.bounds[part], e.bounds[part+1]
		for v := lo; v < hi; v++ {
			acc := m.Identity
			for i := g.InIndex[v]; i < g.InIndex[v+1]; i++ {
				u := g.InNbrs[i]
				acc = m.Combine(acc, m.Apply(src[u], u, graph.VID(v)))
			}
			dst[v] = acc
		}
	})
}

func (e *GenericEngine[T]) stepPushMonoid(src, dst []T) {
	g := e.g
	m := e.m
	e.pool.Run(func(w int) {
		buf := e.bufs[w]
		for i := range buf {
			buf[i] = m.Identity
		}
	})
	e.forParts(len(e.bounds)-1, func(w, part int) {
		buf := e.bufs[w]
		lo, hi := e.bounds[part], e.bounds[part+1]
		for v := lo; v < hi; v++ {
			x := src[v]
			for i := g.OutIndex[v]; i < g.OutIndex[v+1]; i++ {
				u := g.OutNbrs[i]
				buf[u] = m.Combine(buf[u], m.Apply(x, graph.VID(v), u))
			}
		}
	})
	bufs := e.bufs
	e.pool.ForStatic(g.NumV, func(w, lo, hi int) {
		for v := lo; v < hi; v++ {
			acc := m.Identity
			for t := range bufs {
				acc = m.Combine(acc, bufs[t][v])
			}
			dst[v] = acc
		}
	})
}
