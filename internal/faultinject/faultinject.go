// Package faultinject is a deterministic, seed-driven fault-injection
// harness for the execution layer. Instrumented sites in sched, spmv,
// core and graph call Fire (or Poison, for numeric faults) with a
// stable site name; an activated Plan counts the hits at each site
// with an atomic counter and triggers its rule — a panic, a NaN, or a
// delay — on exactly the configured hit. Because hits are counted, not
// timed, a given (plan, workload) pair fires at the same logical point
// on every run, which is what lets the recovery tests assert
// bit-for-bit results under -race.
//
// The harness is compiled in unconditionally (no build tags): the
// inactive fast path is a single atomic pointer load and a nil check,
// cheap enough for per-chunk call sites. Production builds simply
// never call Activate.
package faultinject

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// Site names an instrumented program point. Sites are stable strings
// so test plans and bench scenarios survive refactors of the code
// around them.
type Site string

// The instrumented sites. Each fires once per unit of claimed work
// (chunk, task, part, …), so rule hit counts address deterministic
// logical points in a run even though workers race for the units.
const (
	// SiteSchedClaim fires in the pool worker once per claimed chunk or
	// part of any dynamic dispatch mode (steal, dyn, part).
	SiteSchedClaim Site = "sched.claim"
	// SiteFlippedTask fires once per flipped-block task claimed by the
	// fused iHTL workers.
	SiteFlippedTask Site = "core.flipped-task"
	// SiteSparsePart fires once per sparse-block chunk in the fused
	// iHTL workers.
	SiteSparsePart Site = "core.sparse-part"
	// SiteSparseBin fires once per claimed source chunk of the
	// propagation-blocked sparse kernel's bin phase.
	SiteSparseBin Site = "core.sparse-bin"
	// SiteSparseDrain fires once per claimed destination bucket of the
	// propagation-blocked sparse kernel's drain phase.
	SiteSparseDrain Site = "core.sparse-drain"
	// SiteMergeBlock fires once per flipped-block merge (the countdown
	// release path), and once per worker range of the phased ablation
	// path's phase-2 buffer aggregation.
	SiteMergeBlock Site = "core.merge-block"
	// SiteStepHealth is the numeric-poison site: Poison is consulted on
	// the first destination element of every worker's epilogue range
	// when a HealthPolicy is armed.
	SiteStepHealth Site = "core.step-health"
	// SitePushPart fires once per chunk in the buffered push baseline.
	SitePushPart Site = "spmv.push-part"
	// SitePullPart fires once per chunk in the pull baseline.
	SitePullPart Site = "spmv.pull-part"
	// SiteBuildSort fires once per adjacency-sort chunk during parallel
	// graph construction.
	SiteBuildSort Site = "graph.build-sort"
	// SiteBuildFill fires once per worker range in the static
	// relabel/rank/CSR-fill passes of parallel iHTL construction, so
	// fault plans can land inside BuildWithCtx's Fallible region.
	SiteBuildFill Site = "core.build-fill"
	// SiteShardPush fires once per claimed source chunk of the sharded
	// engine's cross-shard exchange bin phase.
	SiteShardPush Site = "core.shard-push"
	// SiteShardExchange fires once per claimed destination bucket of
	// the sharded engine's cross-shard exchange drain phase.
	SiteShardExchange Site = "core.shard-exchange"
	// SiteServeAdmit fires once per admission decision in the query
	// daemon, before the request is queued or shed.
	SiteServeAdmit Site = "serve.admit"
	// SiteServeBatch fires once per coalesced batch dispatch, inside
	// the daemon's panic-isolation scope (Panic rules exercise the
	// bounded batch retry).
	SiteServeBatch Site = "serve.batch"
	// SiteServeSpool fires once per checkpoint spool write, inside the
	// job attempt's recovery scope.
	SiteServeSpool Site = "serve.spool"
)

// Kind selects what a rule does when it fires.
type Kind int

const (
	// Panic panics with *InjectedPanic from inside the instrumented
	// worker (exercises the pool's panic isolation).
	Panic Kind = iota
	// NaN makes Poison return a quiet NaN instead of its input
	// (exercises the numeric-health watchdog). NaN rules fire only at
	// Poison sites; Fire ignores them.
	NaN
	// Delay sleeps for Rule.Delay (exercises straggler tolerance and
	// widens race windows under -race).
	Delay
)

// Rule arms one fault at one site.
type Rule struct {
	Site Site
	Kind Kind
	// After is how many hits at Site pass through unharmed before the
	// rule fires: the (After+1)-th hit triggers it.
	After int64
	// Times bounds how many consecutive hits fire (<= 0 means 1).
	Times int64
	// Delay is the sleep duration of a Delay rule.
	Delay time.Duration
}

// Plan is an immutable set of armed rules plus their hit counters.
// Build one with NewPlan, install it with Activate, and query fired
// counts afterwards with Fired.
type Plan struct {
	rules map[Site][]*armedRule
}

type armedRule struct {
	Rule
	hits  atomic.Int64
	fired atomic.Int64
}

// NewPlan arms the given rules. The rule set is immutable after
// creation; only the hit counters mutate, atomically.
func NewPlan(rules ...Rule) *Plan {
	p := &Plan{rules: make(map[Site][]*armedRule, len(rules))}
	for _, r := range rules {
		p.rules[r.Site] = append(p.rules[r.Site], &armedRule{Rule: r})
	}
	return p
}

// Fired reports how many times the plan's rules at site have fired.
func (p *Plan) Fired(site Site) int64 {
	var n int64
	for _, a := range p.rules[site] {
		n += a.fired.Load()
	}
	return n
}

// Hits reports how many times site has been reached under this plan.
func (p *Plan) Hits(site Site) int64 {
	var n int64
	for _, a := range p.rules[site] {
		n += a.hits.Load()
	}
	return n
}

// active is the installed plan; nil (the common case) short-circuits
// every instrumented site to one atomic load.
var active atomic.Pointer[Plan]

// Activate installs p as the process-wide plan. It must not race with
// running work (tests activate before dispatch and deactivate after).
func Activate(p *Plan) { active.Store(p) }

// Deactivate removes the installed plan.
func Deactivate() { active.Store(nil) }

// InjectedPanic is the panic value of a fired Panic rule. Recovery
// tests unwrap the pool's PanicError and match on this type.
type InjectedPanic struct {
	Site Site
	Hit  int64
}

func (e *InjectedPanic) Error() string {
	return fmt.Sprintf("faultinject: injected panic at %s (hit %d)", e.Site, e.Hit)
}

// Fire is called by instrumented code once per unit of work at site.
// With no active plan it is a nil check. Panic rules panic with
// *InjectedPanic; Delay rules sleep; NaN rules are ignored (they only
// apply at Poison sites).
//
//ihtl:noalloc
func Fire(site Site) {
	p := active.Load()
	if p == nil {
		return
	}
	p.fire(site)
}

func (p *Plan) fire(site Site) {
	for _, a := range p.rules[site] {
		if a.Kind == NaN {
			continue
		}
		h := a.hits.Add(1) - 1
		if !a.inWindow(h) {
			continue
		}
		a.fired.Add(1)
		switch a.Kind {
		case Panic:
			panic(&InjectedPanic{Site: site, Hit: h})
		case Delay:
			time.Sleep(a.Delay)
		}
	}
}

// Poison is called by instrumented code that can corrupt a float64 at
// site: it returns x unchanged unless an armed NaN rule fires on this
// hit, in which case it returns NaN. With no active plan it is a nil
// check.
//
//ihtl:noalloc
func Poison(site Site, x float64) float64 {
	p := active.Load()
	if p == nil {
		return x
	}
	return p.poison(site, x)
}

func (p *Plan) poison(site Site, x float64) float64 {
	for _, a := range p.rules[site] {
		if a.Kind != NaN {
			continue
		}
		h := a.hits.Add(1) - 1
		if !a.inWindow(h) {
			continue
		}
		a.fired.Add(1)
		x = math.NaN()
	}
	return x
}

//ihtl:noalloc
func (a *armedRule) inWindow(h int64) bool {
	times := a.Times
	if times <= 0 {
		times = 1
	}
	return h >= a.After && h < a.After+times
}

// SeededAfter derives a deterministic hit index in [0, span) from a
// seed and the site name (splitmix64 over the seed xor a site hash).
// Randomised-point tests use it to pick injection points that vary
// across seeds but are reproducible for any given one.
func SeededAfter(seed uint64, site Site, span int64) int64 {
	if span <= 0 {
		return 0
	}
	x := seed
	for i := 0; i < len(site); i++ {
		x = (x ^ uint64(site[i])) * 0x9e3779b97f4a7c15
	}
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x % uint64(span))
}
