package faultinject

import (
	"math"
	"testing"
	"time"
)

func TestFireInactiveFastPathAllocs(t *testing.T) {
	Deactivate()
	if avg := testing.AllocsPerRun(100, func() {
		Fire(SiteSchedClaim)
		_ = Poison(SiteStepHealth, 1.0)
	}); avg != 0 {
		t.Fatalf("inactive Fire/Poison allocate %.1f per call, want 0", avg)
	}
}

func TestPanicRuleFiresOnExactHit(t *testing.T) {
	plan := NewPlan(Rule{Site: SiteFlippedTask, Kind: Panic, After: 3})
	Activate(plan)
	defer Deactivate()

	fireN := func(n int) (panicked bool, hit int64) {
		defer func() {
			if r := recover(); r != nil {
				ip, ok := r.(*InjectedPanic)
				if !ok {
					t.Fatalf("panic value %T, want *InjectedPanic", r)
				}
				panicked, hit = true, ip.Hit
			}
		}()
		for i := 0; i < n; i++ {
			Fire(SiteFlippedTask)
		}
		return false, 0
	}

	if p, _ := fireN(3); p {
		t.Fatal("rule fired before After hits passed")
	}
	p, hit := fireN(1)
	if !p {
		t.Fatal("rule did not fire on the (After+1)-th hit")
	}
	if hit != 3 {
		t.Fatalf("fired at hit %d, want 3", hit)
	}
	if got := plan.Fired(SiteFlippedTask); got != 1 {
		t.Fatalf("Fired = %d, want 1", got)
	}
	if got := plan.Hits(SiteFlippedTask); got != 4 {
		t.Fatalf("Hits = %d, want 4", got)
	}
	// The window is exhausted: further hits pass through.
	if p, _ := fireN(10); p {
		t.Fatal("rule fired outside its window")
	}
}

func TestNaNRuleOnlyAtPoisonSites(t *testing.T) {
	plan := NewPlan(Rule{Site: SiteStepHealth, Kind: NaN, After: 1, Times: 2})
	Activate(plan)
	defer Deactivate()

	// Fire ignores NaN rules entirely (no hit counting).
	Fire(SiteStepHealth)
	if got := plan.Hits(SiteStepHealth); got != 0 {
		t.Fatalf("Fire counted a hit on a NaN rule: %d", got)
	}

	got := []float64{
		Poison(SiteStepHealth, 1), // hit 0: clean
		Poison(SiteStepHealth, 2), // hit 1: NaN
		Poison(SiteStepHealth, 3), // hit 2: NaN (Times=2)
		Poison(SiteStepHealth, 4), // hit 3: clean
	}
	want := []bool{false, true, true, false}
	for i, x := range got {
		if math.IsNaN(x) != want[i] {
			t.Fatalf("hit %d: poisoned=%v, want %v", i, math.IsNaN(x), want[i])
		}
	}
	if got[0] != 1 || got[3] != 4 {
		t.Fatalf("clean hits altered the value: %v", got)
	}
	if fired := plan.Fired(SiteStepHealth); fired != 2 {
		t.Fatalf("Fired = %d, want 2", fired)
	}
}

func TestDelayRuleSleeps(t *testing.T) {
	plan := NewPlan(Rule{Site: SitePullPart, Kind: Delay, Delay: 20 * time.Millisecond})
	Activate(plan)
	defer Deactivate()
	start := time.Now()
	Fire(SitePullPart)
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("delay rule slept %v, want >= 20ms", d)
	}
}

func TestSeededAfterDeterministicAndBounded(t *testing.T) {
	for _, span := range []int64{1, 7, 1000} {
		for seed := uint64(0); seed < 50; seed++ {
			a := SeededAfter(seed, SiteSchedClaim, span)
			b := SeededAfter(seed, SiteSchedClaim, span)
			if a != b {
				t.Fatalf("seed %d: not deterministic (%d vs %d)", seed, a, b)
			}
			if a < 0 || a >= span {
				t.Fatalf("seed %d: %d outside [0,%d)", seed, a, span)
			}
		}
	}
	// Different sites should usually pick different points.
	same := 0
	for seed := uint64(0); seed < 100; seed++ {
		if SeededAfter(seed, SiteSchedClaim, 1000) == SeededAfter(seed, SiteSparsePart, 1000) {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("site hash too weak: %d/100 collisions", same)
	}
	if got := SeededAfter(42, SiteSchedClaim, 0); got != 0 {
		t.Fatalf("span<=0 should return 0, got %d", got)
	}
}
