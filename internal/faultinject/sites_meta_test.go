package faultinject

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestEverySiteExercisedByAFaultSuite pins the other half of the
// contract the faultsite analyzer checks statically: rule 1 proves
// every Site* constant is wired into the instrumented code, and this
// meta-test proves every one is also exercised by a fault-suite test
// somewhere in the module — a site nothing injects against is a
// recovery scenario with no coverage. Purely syntactic: it parses the
// catalog out of this package, then scans every _test.go outside it
// for selector references to each constant.
func TestEverySiteExercisedByAFaultSuite(t *testing.T) {
	root := moduleRoot(t)
	fset := token.NewFileSet()

	catalog := siteCatalog(t, fset)
	if len(catalog) == 0 {
		t.Fatal("no Site* constants found in faultinject.go; the meta-test is miswired")
	}

	referenced := make(map[string][]string) // site const -> referencing test files
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, "_test.go") || filepath.Dir(path) == filepath.Join(root, "internal", "faultinject") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(root, path)
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == "faultinject" && catalog[sel.Sel.Name] {
				refs := referenced[sel.Sel.Name]
				if len(refs) == 0 || refs[len(refs)-1] != rel {
					referenced[sel.Sel.Name] = append(refs, rel)
				}
			}
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	var names []string
	for name := range catalog {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if len(referenced[name]) == 0 {
			t.Errorf("%s has no fault-suite coverage: no _test.go outside internal/faultinject references it", name)
		}
	}
}

// siteCatalog parses the Site* constants out of this package's
// non-test files.
func siteCatalog(t *testing.T, fset *token.FileSet) map[string]bool {
	t.Helper()
	out := make(map[string]bool)
	ents, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, n, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if strings.HasPrefix(name.Name, "Site") && name.Name != "Site" {
						out[name.Name] = true
					}
				}
			}
		}
	}
	return out
}

// moduleRoot walks up to the nearest go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod found above the test directory")
		}
		dir = parent
	}
}
