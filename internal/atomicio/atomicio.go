// Package atomicio provides crash-consistent file replacement: write
// to a unique temp file in the destination's directory, fsync it,
// rename it over the destination, then fsync the directory. A crash —
// a kill -9, a power cut — at any point leaves either the complete old
// file or the complete new file at the path, never a torn mix and
// never a half-written file under the final name. Every persistent
// artifact in this repository (graph binaries, engine files, the
// serving daemon's checkpoint spool) is written through it.
package atomicio

import (
	"io"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with the bytes produced by write.
// write receives a temp file in path's directory; on any error (from
// write, sync, or rename) the temp file is removed and path is left
// untouched.
func WriteFile(path string, write func(w io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = write(f); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(dir)
}

// WriteFileBytes is WriteFile for callers that already hold the full
// content.
func WriteFileBytes(path string, data []byte) error {
	return WriteFile(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// syncDir flushes the directory entry so the rename itself is durable.
// Platforms whose directory handles reject Sync (it is advisory there)
// degrade to a plain replace, which is still atomic on the visible
// namespace.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !isSyncUnsupported(err) {
		return err
	}
	return nil
}

// isSyncUnsupported reports errors that mean "this platform cannot
// fsync a directory handle", which WriteFile tolerates.
func isSyncUnsupported(err error) bool {
	var pe *os.PathError
	if ok := asPathError(err, &pe); ok {
		switch pe.Err.Error() {
		case "invalid argument", "operation not supported", "bad file descriptor",
			"An attempt was made to operate on an object that is not a file handle.":
			return true
		}
	}
	return false
}

func asPathError(err error, out **os.PathError) bool {
	for err != nil {
		if pe, ok := err.(*os.PathError); ok {
			*out = pe
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
