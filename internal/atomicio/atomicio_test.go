package atomicio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := WriteFileBytes(path, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileBytes(path, []byte("new-content")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new-content" {
		t.Fatalf("content = %q, want %q", got, "new-content")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("directory has %d entries, want only the target: %v", len(ents), ents)
	}
}

func TestWriteFileErrorLeavesOldContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := WriteFileBytes(path, []byte("survivor")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("write exploded")
	err := WriteFile(path, func(w io.Writer) error {
		w.Write([]byte("partial garbage"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v, want %v", err, boom)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "survivor" {
		t.Fatalf("old content clobbered: %q", got)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file %q left behind after error", e.Name())
		}
	}
}

func TestWriteFileCreatesFresh(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fresh.bin")
	if err := WriteFileBytes(path, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("content = %v", got)
	}
}

func TestWriteFileMissingDir(t *testing.T) {
	err := WriteFileBytes(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x"))
	if err == nil {
		t.Fatal("expected error for missing directory")
	}
}
