// Package analyzers implements the repo-specific static-analysis
// passes behind cmd/ihtlvet. The iHTL pipelines derive their speed
// from invariants the compiler cannot check — Step dispatches that
// never allocate, the bitwise SkipZero signed-zero rule, the
// atomic-vs-buffered merge discipline, and worker callbacks that only
// write worker-owned state. Each pass turns one of those hand-
// maintained invariants into a machine-checked diagnostic, so a
// refactor that silently re-introduces per-iteration allocations or a
// data race fails CI instead of a benchmark three PRs later.
//
// The framework mirrors the golang.org/x/tools/go/analysis shape
// (Analyzer, Pass, Diagnostic) but is built purely on the standard
// library's go/ast + go/types, because this module carries no
// third-party dependencies. If the repo ever vendors x/tools, the
// passes port over mechanically.
//
// Source directives understood by the passes:
//
//	//ihtl:noalloc          (function doc) function must not allocate
//	//ihtl:nopanic          (function doc) function + intra-module callees must not panic
//	//ihtl:nobce            (function doc) compiled body must carry no bounds checks (-bce gate)
//	//ihtl:noescape         (function doc) compiled body must not move values to the heap (-escape gate)
//	//ihtl:instrumentation  (function doc) exempt the function from the determinism wall-clock rule
//	//ihtl:pushkernel       (file)         file opts into skipzero scope
//	//ihtl:deterministic    (file)         file opts into determinism scope
//	//ihtl:faultsite-scope  (file)         file opts into the faultsite dispatch-body rule
//	//ihtl:allow-zerocmp    (line)         suppress one skipzero finding
//	//ihtl:allow-plain      (line)         suppress one atomicfield finding
//	//ihtl:allow-capture    (line)         suppress one parcapture finding
//	//ihtl:allow-noctx      (line)         suppress one ctxleak finding
//	//ihtl:allow-walltime   (line)         suppress one determinism time.Now finding
//	//ihtl:allow-rand       (line)         suppress one determinism math/rand finding
//	//ihtl:allow-maporder   (line)         suppress one determinism map-order finding
//	//ihtl:allow-nosite     (line)         suppress one faultsite finding
//	//ihtl:allow-sitearg    (line)         suppress one faultsite dynamic-site finding
//	//ihtl:allow-panic      (line)         suppress one nopanic finding
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static-analysis pass. Exactly one of Run
// (per-package) or RunModule (whole-module, for cross-package
// properties such as atomic discipline) is set.
type Analyzer struct {
	Name string
	Doc  string
	// Run analyzes a single package.
	Run func(*Pass) error
	// RunModule analyzes all loaded packages at once; diagnostics are
	// reported through the pass owning the offending file.
	RunModule func([]*Pass) error
}

// Pass carries one package's syntax and type information into an
// analyzer, plus the report sink.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// directivePrefix is the comment prefix shared by all ihtlvet
// directives. Directives are comments of the form //ihtl:name, with no
// space after the slashes (the Go directive convention, invisible in
// godoc).
const directivePrefix = "//ihtl:"

// commentHasDirective reports whether the comment group contains the
// given //ihtl: directive.
func commentHasDirective(cg *ast.CommentGroup, name string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, directivePrefix)) == name &&
			strings.HasPrefix(c.Text, directivePrefix) {
			return true
		}
		// Directives may carry a trailing justification after the name:
		// //ihtl:allow-zerocmp option defaulting.
		if rest, ok := strings.CutPrefix(c.Text, directivePrefix+name); ok {
			if rest == "" || rest[0] == ' ' || rest[0] == '\t' {
				return true
			}
		}
	}
	return false
}

// funcHasDirective reports whether fn's doc comment carries the
// directive.
func funcHasDirective(fn *ast.FuncDecl, name string) bool {
	return commentHasDirective(fn.Doc, name)
}

// FuncHasDirective reports whether fn's doc comment carries the named
// //ihtl: directive. Exported for the compiler-assisted gates in
// cmd/ihtlvet, which index annotated functions from a syntax-only
// parse outside any Pass.
func FuncHasDirective(fn *ast.FuncDecl, name string) bool {
	return funcHasDirective(fn, name)
}

// fileHasDirective reports whether any comment group in the file
// carries the directive (used for file-scoped opt-ins such as
// //ihtl:pushkernel).
func fileHasDirective(f *ast.File, name string) bool {
	for _, cg := range f.Comments {
		if commentHasDirective(cg, name) {
			return true
		}
	}
	return false
}

// lineSuppressed reports whether the line holding pos carries the
// given //ihtl:allow-* directive, either trailing the statement or on
// the line directly above it.
func lineSuppressed(fset *token.FileSet, f *ast.File, pos token.Pos, name string) bool {
	line := fset.Position(pos).Line
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			cl := fset.Position(c.Pos()).Line
			if (cl == line || cl == line-1) && strings.HasPrefix(c.Text, directivePrefix+name) {
				rest := strings.TrimPrefix(c.Text, directivePrefix+name)
				if rest == "" || rest[0] == ' ' || rest[0] == '\t' {
					return true
				}
			}
		}
	}
	return false
}

// fileOf returns the *ast.File of the pass containing pos.
func (p *Pass) fileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// suppressed reports whether the finding at pos is silenced by an
// //ihtl:allow-<name> directive on or above its line.
func (p *Pass) suppressed(pos token.Pos, name string) bool {
	f := p.fileOf(pos)
	if f == nil {
		return false
	}
	return lineSuppressed(p.Fset, f, pos, name)
}

// All returns every analyzer in the suite, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		NoAlloc, SkipZero, AtomicField, ParCapture,
		CtxLeak, Determinism, FaultSite, NoPanic,
	}
}

// ByName returns the named analyzers, or an error naming the unknown
// one.
func ByName(names []string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, n := range names {
		found := false
		for _, a := range All() {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
	}
	return out, nil
}

// RunAnalyzers executes the given analyzers over the loaded packages
// and returns all diagnostics sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	sink := func(d Diagnostic) { diags = append(diags, d) }
	for _, a := range analyzers {
		passes := make([]*Pass, len(pkgs))
		for i, pkg := range pkgs {
			passes[i] = &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				report:   sink,
			}
		}
		switch {
		case a.RunModule != nil:
			if err := a.RunModule(passes); err != nil {
				return nil, fmt.Errorf("%s: %w", a.Name, err)
			}
		case a.Run != nil:
			for _, p := range passes {
				if err := a.Run(p); err != nil {
					return nil, fmt.Errorf("%s: %s: %w", a.Name, p.Pkg.Path(), err)
				}
			}
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

// SortDiagnostics orders diags by file, line, column, then analyzer —
// the stable order every ihtlvet output mode relies on. Exported so
// cmd/ihtlvet can re-sort after appending gate diagnostics.
func SortDiagnostics(diags []Diagnostic) {
	sortDiagnostics(diags)
}

func sortDiagnostics(diags []Diagnostic) {
	// Insertion sort keeps this dependency-free; diagnostic counts are
	// tiny.
	for i := 1; i < len(diags); i++ {
		for j := i; j > 0 && diagLess(diags[j], diags[j-1]); j-- {
			diags[j], diags[j-1] = diags[j-1], diags[j]
		}
	}
}

func diagLess(a, b Diagnostic) bool {
	if a.Pos.Filename != b.Pos.Filename {
		return a.Pos.Filename < b.Pos.Filename
	}
	if a.Pos.Line != b.Pos.Line {
		return a.Pos.Line < b.Pos.Line
	}
	if a.Pos.Column != b.Pos.Column {
		return a.Pos.Column < b.Pos.Column
	}
	return a.Analyzer < b.Analyzer
}
