package analyzers

import "testing"

func TestParCapture(t *testing.T) {
	runAnalyzerTest(t, ParCapture, "parcapture")
}
