package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicField reports struct fields that are accessed both through
// sync/atomic pointer functions (atomic.AddInt64(&s.f, ...)) and
// through plain loads/stores anywhere in the module. Mixing the two
// is the classic latent race of the AtomicFlipped ablation path: the
// plain access compiles, passes single-threaded tests, and corrupts
// counts only under contention. Fields wrapped in the typed atomics
// (atomic.Int64 &c.) cannot be mixed and are the preferred fix;
// deliberate unsynchronised accesses (e.g. re-initialisation before a
// pool dispatch publishes the struct) are silenced per line with
// //ihtl:allow-plain <reason>.
//
// The pass is module-scoped: the atomic use and the plain use are
// often in different packages, so per-package analysis cannot see the
// pair. Object identity across packages holds because all packages
// are type-checked through one shared Loader.
var AtomicField = &Analyzer{
	Name:      "atomicfield",
	Doc:       "report struct fields accessed both atomically and with plain loads/stores",
	RunModule: runAtomicField,
}

// fieldUse is one access to a field, attributed to the pass whose file
// contains it.
type fieldUse struct {
	pass *Pass
	pos  token.Pos
}

func runAtomicField(passes []*Pass) error {
	atomicUses := make(map[*types.Var][]fieldUse)
	plainUses := make(map[*types.Var][]fieldUse)
	// Selector nodes consumed by an atomic call's &arg, so the plain
	// scan does not double-count them.
	atomicArgs := make(map[*ast.SelectorExpr]bool)

	for _, pass := range passes {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isSyncAtomicCall(pass, call) {
					return true
				}
				for _, arg := range call.Args {
					un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					if fv := fieldVar(pass, sel); fv != nil {
						atomicUses[fv] = append(atomicUses[fv], fieldUse{pass, sel.Pos()})
						atomicArgs[sel] = true
					}
				}
				return true
			})
		}
	}
	if len(atomicUses) == 0 {
		return nil
	}
	for _, pass := range passes {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || atomicArgs[sel] {
					return true
				}
				fv := fieldVar(pass, sel)
				if fv == nil {
					return true
				}
				if _, isAtomic := atomicUses[fv]; isAtomic {
					plainUses[fv] = append(plainUses[fv], fieldUse{pass, sel.Pos()})
				}
				return true
			})
		}
	}
	for fv, plains := range plainUses {
		at := atomicUses[fv][0]
		atPos := at.pass.Fset.Position(at.pos)
		for _, use := range plains {
			if use.pass.suppressed(use.pos, "allow-plain") {
				continue
			}
			use.pass.Reportf(use.pos,
				"field %s.%s is updated atomically (e.g. %s:%d) but accessed here without sync/atomic; use the typed atomics or silence with //ihtl:allow-plain <reason>",
				ownerName(fv), fv.Name(), shortPath(atPos.Filename), atPos.Line)
		}
	}
	return nil
}

// isSyncAtomicCall reports whether call invokes a pointer-style
// function of sync/atomic (Add*, Load*, Store*, Swap*,
// CompareAndSwap*).
func isSyncAtomicCall(pass *Pass, call *ast.CallExpr) bool {
	obj := pass.calleeObject(call)
	if obj == nil || objPkgPath(obj) != "sync/atomic" {
		return false
	}
	if _, ok := obj.(*types.Func); !ok {
		return false
	}
	for _, prefix := range []string{"Add", "And", "Or", "Load", "Store", "Swap", "CompareAndSwap"} {
		if strings.HasPrefix(obj.Name(), prefix) {
			return true
		}
	}
	return false
}

// fieldVar resolves sel to a struct field variable, or nil.
func fieldVar(pass *Pass, sel *ast.SelectorExpr) *types.Var {
	if s, ok := pass.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
		return nil
	}
	if v, ok := pass.Info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// ownerName renders the declaring struct's position-stable short name
// for diagnostics (the field's package path plus parent type when
// known).
func ownerName(fv *types.Var) string {
	if fv.Pkg() != nil {
		return shortPath(fv.Pkg().Path())
	}
	return "?"
}

func shortPath(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}
