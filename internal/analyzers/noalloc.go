package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoAlloc rejects allocating constructs inside functions annotated
// //ihtl:noalloc. The fused Step/StepBatch pipelines owe their
// throughput to zero per-dispatch allocations (PR 1/2 pin a few widths
// with testing.AllocsPerRun; this pass covers every annotated function
// at every call shape). A function may still call an UN-annotated
// helper — that is the deliberate escape hatch for construction-time
// and ablation paths — but everything it does inline, and every
// annotated callee, is checked.
//
// Flagged constructs: make/new, append (may grow), function literals
// (closure capture), map and slice composite literals, &composite
// literals, string concatenation, string<->[]byte/[]rune conversions,
// conversions or argument/return/assignment boxing into interfaces,
// map writes, go statements, and any call into fmt or log.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "reject allocating constructs in //ihtl:noalloc functions",
	Run:  runNoAlloc,
}

func runNoAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !funcHasDirective(fn, "noalloc") {
				continue
			}
			checkNoAllocBody(pass, fn)
		}
	}
	return nil
}

func checkNoAllocBody(pass *Pass, fn *ast.FuncDecl) {
	sig, _ := pass.Info.Defs[fn.Name].Type().(*types.Signature)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "%s is //ihtl:noalloc but creates a function literal (closures allocate); prebuild the closure at construction time", fn.Name.Name)
			return false // the literal's own body runs under its creator's budget
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "%s is //ihtl:noalloc but starts a goroutine", fn.Name.Name)
		case *ast.CallExpr:
			checkNoAllocCall(pass, fn, n)
		case *ast.CompositeLit:
			switch pass.typeOf(n).Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(), "%s is //ihtl:noalloc but builds a map literal", fn.Name.Name)
			case *types.Slice:
				pass.Reportf(n.Pos(), "%s is //ihtl:noalloc but builds a slice literal", fn.Name.Name)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "%s is //ihtl:noalloc but heap-allocates a composite literal with &", fn.Name.Name)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(pass.typeOf(n.X)) {
				pass.Reportf(n.Pos(), "%s is //ihtl:noalloc but concatenates strings", fn.Name.Name)
			}
		case *ast.AssignStmt:
			checkNoAllocAssign(pass, fn, n)
		case *ast.ReturnStmt:
			checkNoAllocReturn(pass, fn, sig, n)
		}
		return true
	})
}

func checkNoAllocCall(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr) {
	// Builtins: only make, new and append allocate (panic's argument is
	// a constant in practice and pre-boxed by the compiler; clear/copy/
	// len/cap/min/max do not allocate).
	if obj := pass.calleeObject(call); obj != nil {
		if b, ok := obj.(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				pass.Reportf(call.Pos(), "%s is //ihtl:noalloc but calls make", fn.Name.Name)
			case "new":
				pass.Reportf(call.Pos(), "%s is //ihtl:noalloc but calls new", fn.Name.Name)
			case "append":
				pass.Reportf(call.Pos(), "%s is //ihtl:noalloc but calls append (may grow the backing array)", fn.Name.Name)
			}
			return
		}
		if p := objPkgPath(obj); p == "fmt" || p == "log" {
			pass.Reportf(call.Pos(), "%s is //ihtl:noalloc but calls %s.%s (formatting allocates)", fn.Name.Name, p, obj.Name())
			return
		}
	}
	// Conversions: T(x).
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		dst := tv.Type
		if len(call.Args) != 1 {
			return
		}
		src := pass.typeOf(call.Args[0])
		switch {
		case isInterface(dst) && !isInterface(src) && !isUntypedNil(pass, call.Args[0]):
			pass.Reportf(call.Pos(), "%s is //ihtl:noalloc but converts %s to interface %s (boxing allocates)", fn.Name.Name, src, dst)
		case isString(dst) && isByteOrRuneSlice(src):
			pass.Reportf(call.Pos(), "%s is //ihtl:noalloc but converts a slice to string", fn.Name.Name)
		case isByteOrRuneSlice(dst) && isString(src):
			pass.Reportf(call.Pos(), "%s is //ihtl:noalloc but converts a string to a slice", fn.Name.Name)
		}
		return
	}
	// Ordinary call: check interface boxing of arguments.
	sig, ok := pass.typeOf(call.Fun).Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // passing an existing slice: no boxing here
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if isInterface(pt) && !isTypeParam(pt) && !isInterface(pass.typeOf(arg)) && !isUntypedNil(pass, arg) {
			pass.Reportf(arg.Pos(), "%s is //ihtl:noalloc but passes %s as interface %s (boxing allocates)", fn.Name.Name, pass.typeOf(arg), pt)
		}
	}
	if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) >= params.Len() {
		pass.Reportf(call.Pos(), "%s is //ihtl:noalloc but expands arguments into a variadic call (allocates the argument slice)", fn.Name.Name)
	}
}

func checkNoAllocAssign(pass *Pass, fn *ast.FuncDecl, n *ast.AssignStmt) {
	if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(pass.typeOf(n.Lhs[0])) {
		pass.Reportf(n.Pos(), "%s is //ihtl:noalloc but concatenates strings", fn.Name.Name)
	}
	for _, lhs := range n.Lhs {
		if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			if _, isMap := pass.typeOf(ix.X).Underlying().(*types.Map); isMap {
				pass.Reportf(lhs.Pos(), "%s is //ihtl:noalloc but writes to a map (may allocate)", fn.Name.Name)
			}
		}
	}
	// Boxing through assignment: concrete RHS into interface-typed LHS.
	if n.Tok == token.ASSIGN && len(n.Lhs) == len(n.Rhs) {
		for i, lhs := range n.Lhs {
			lt := pass.typeOf(lhs)
			if lt == nil || !isInterface(lt) || isTypeParam(lt) {
				continue
			}
			if rt := pass.typeOf(n.Rhs[i]); rt != nil && !isInterface(rt) && !isUntypedNil(pass, n.Rhs[i]) {
				pass.Reportf(n.Rhs[i].Pos(), "%s is //ihtl:noalloc but assigns %s to interface %s (boxing allocates)", fn.Name.Name, rt, lt)
			}
		}
	}
}

func checkNoAllocReturn(pass *Pass, fn *ast.FuncDecl, sig *types.Signature, n *ast.ReturnStmt) {
	if sig == nil || len(n.Results) != sig.Results().Len() {
		return
	}
	for i, res := range n.Results {
		rt := sig.Results().At(i).Type()
		if isInterface(rt) && !isTypeParam(rt) && !isInterface(pass.typeOf(res)) && !isUntypedNil(pass, res) {
			pass.Reportf(res.Pos(), "%s is //ihtl:noalloc but returns %s as interface %s (boxing allocates)", fn.Name.Name, pass.typeOf(res), rt)
		}
	}
}

// typeOf returns the type of e, or types.Typ[Invalid] when unknown.
func (p *Pass) typeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
		if obj := p.Info.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return types.Typ[types.Invalid]
}

// calleeObject resolves the object a call's Fun refers to (builtin,
// function, or method), or nil.
func (p *Pass) calleeObject(call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return p.Info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[fun]; ok {
			return sel.Obj()
		}
		return p.Info.Uses[fun.Sel]
	}
	return nil
}

func objPkgPath(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

func isInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func isTypeParam(t types.Type) bool {
	_, ok := t.(*types.TypeParam)
	return ok
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isUntypedNil(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok {
		return false
	}
	if b, ok := tv.Type.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return true
	}
	return tv.IsNil()
}
