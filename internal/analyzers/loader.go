package analyzers

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path ("ihtl/internal/core")
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File // non-test files, parsed with comments
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of this module using only the
// standard library: module-internal imports are resolved against the
// module root, everything else (the standard library) through the
// go/importer source importer, so loading works offline and without
// x/tools. One Loader shares a FileSet and a package cache, which
// makes types.Object identities stable across packages — the
// atomicfield pass depends on that to correlate uses of one struct
// field seen from different importing packages.
type Loader struct {
	Fset    *token.FileSet
	ModPath string
	ModRoot string

	std   types.ImporterFrom
	pkgs  map[string]*Package       // loaded module packages by import path
	stdPk map[string]*types.Package // loaded stdlib packages
}

// NewLoader creates a loader rooted at modRoot, reading the module
// path from go.mod.
func NewLoader(modRoot string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(modRoot, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analyzers: no module line in %s/go.mod", modRoot)
	}
	fset := token.NewFileSet()
	l := &Loader{
		Fset:    fset,
		ModPath: modPath,
		ModRoot: modRoot,
		pkgs:    make(map[string]*Package),
		stdPk:   make(map[string]*types.Package),
	}
	l.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l, nil
}

// Import implements types.Importer for the type-checker: module paths
// load recursively through this loader, all others through the source
// importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	// Already-loaded packages resolve by identity regardless of path —
	// this is how testdata packages import sibling testdata packages
	// (pre-loaded by the test harness under synthetic import paths).
	if p, ok := l.pkgs[path]; ok {
		return p.Types, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		p, err := l.loadPath(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	if p, ok := l.stdPk[path]; ok {
		return p, nil
	}
	p, err := l.std.ImportFrom(path, dir, mode)
	if err == nil {
		l.stdPk[path] = p
	}
	return p, err
}

// loadPath loads the module package with the given import path.
func (l *Loader) loadPath(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
	return l.LoadDir(filepath.Join(l.ModRoot, filepath.FromSlash(rel)), path)
}

// LoadDir parses and type-checks the package in dir under the given
// import path. The path does not have to live under the module root —
// analyzer tests use this to load testdata packages that may in turn
// import real module packages.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analyzers: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analyzers: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// parseDir parses the non-test Go files of dir with comments. Files
// excluded from the host platform's build by //go:build or filename
// constraints (e.g. the !unix mmap fallback) are skipped, matching
// what `go build` would compile — otherwise platform-variant pairs
// would redeclare their shared symbols under the type checker.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") ||
			strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		if ok, err := build.Default.MatchFile(dir, n); err != nil || !ok {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// Load resolves the given patterns to module packages and loads them.
// Supported patterns: "./..." (every package under the module root),
// "./x/y" or "x/y" directories relative to the root, and full import
// paths like "ihtl/internal/core". With no patterns, "./..." is
// assumed.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var out []*Package
	add := func(path string) error {
		if seen[path] {
			return nil
		}
		seen[path] = true
		p, err := l.loadPath(path)
		if err != nil {
			return err
		}
		out = append(out, p)
		return nil
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			paths, err := l.walkPackages()
			if err != nil {
				return nil, err
			}
			for _, path := range paths {
				if err := add(path); err != nil {
					return nil, err
				}
			}
		case strings.HasSuffix(pat, "/..."):
			base := strings.TrimSuffix(pat, "/...")
			paths, err := l.walkPackages()
			if err != nil {
				return nil, err
			}
			prefix := l.toImportPath(base)
			for _, path := range paths {
				if path == prefix || strings.HasPrefix(path, prefix+"/") {
					if err := add(path); err != nil {
						return nil, err
					}
				}
			}
		default:
			if err := add(l.toImportPath(pat)); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// toImportPath converts a directory-ish pattern to an import path.
func (l *Loader) toImportPath(pat string) string {
	pat = strings.TrimPrefix(pat, "./")
	pat = strings.TrimSuffix(pat, "/")
	if pat == "" || pat == "." {
		return l.ModPath
	}
	if pat == l.ModPath || strings.HasPrefix(pat, l.ModPath+"/") {
		return pat
	}
	return l.ModPath + "/" + filepath.ToSlash(pat)
}

// walkPackages returns the import paths of every directory under the
// module root that contains non-test Go files, skipping testdata,
// hidden directories, and results/.
func (l *Loader) walkPackages() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(l.ModRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.ModRoot && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range ents {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
				rel, err := filepath.Rel(l.ModRoot, p)
				if err != nil {
					return err
				}
				if rel == "." {
					paths = append(paths, l.ModPath)
				} else {
					paths = append(paths, l.ModPath+"/"+filepath.ToSlash(rel))
				}
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// FindModuleRoot walks up from dir to the nearest directory holding a
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analyzers: no go.mod found above %s", dir)
		}
		dir = parent
	}
}
