package analyzers

import "testing"

func TestSkipZero(t *testing.T) {
	runAnalyzerTest(t, SkipZero, "skipzero")
}
