package analyzers

import (
	"go/ast"
	"go/types"
)

// parCaptureMethods are the sched.Pool entry points whose callback
// argument runs concurrently on every pool worker, including the
// ctx-aware fallible variants (same callback contract, same races).
var parCaptureMethods = map[string]bool{
	"Run":             true,
	"ForStatic":       true,
	"ForDynamic":      true,
	"ForEachPart":     true,
	"ForSteal":        true,
	"ForStealWith":    true,
	"RunCtx":          true,
	"ForStaticCtx":    true,
	"ForDynamicCtx":   true,
	"ForEachPartCtx":  true,
	"ForStealCtx":     true,
	"ForStealWithCtx": true,
}

// ParCapture flags worker callbacks passed literally to sched.Pool
// dispatch APIs that write to captured state without deriving the
// destination from the callback's own parameters (worker id / range
// bounds). `sum += x` or `out[j] = v` with captured j is a data race
// every worker runs; `out[w] = v` and `dst[i]` for a loop variable
// local to the callback are the safe patterns this repo uses
// everywhere (per-worker slots, disjoint ranges). The check is
// syntactic and deliberately under-approximates: an index expression
// mentioning any callback parameter or callback-local variable is
// assumed range-derived and safe. Intentional captured writes (e.g.
// publishing under an external happens-before edge) are silenced with
// //ihtl:allow-capture <reason>.
var ParCapture = &Analyzer{
	Name: "parcapture",
	Doc:  "flag worker callbacks writing captured state not indexed by worker/range parameters",
	Run:  runParCapture,
}

func runParCapture(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isPoolDispatch(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					checkWorkerLit(pass, lit)
				}
			}
			return true
		})
	}
	return nil
}

// isPoolDispatch reports whether call is a dispatch method of
// ihtl/internal/sched.Pool.
func isPoolDispatch(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !parCaptureMethods[sel.Sel.Name] {
		return false
	}
	fn, ok := pass.calleeObject(call).(*types.Func)
	if !ok || objPkgPath(fn) != "ihtl/internal/sched" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	return ok && named.Obj().Name() == "Pool"
}

// checkWorkerLit inspects one worker callback literal for writes to
// captured state.
func checkWorkerLit(pass *Pass, lit *ast.FuncLit) {
	isLocal := func(obj types.Object) bool {
		return obj != nil && obj.Pos() >= lit.Pos() && obj.Pos() < lit.End()
	}
	// indexSafe: the index expression mentions a callback parameter or
	// a callback-local variable, i.e. it is (assumed) derived from the
	// worker id or claimed range.
	indexSafe := func(idx ast.Expr) bool {
		safe := false
		ast.Inspect(idx, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; isLocal(obj) {
					if _, isVar := obj.(*types.Var); isVar {
						safe = true
						return false
					}
				}
			}
			return true
		})
		return safe
	}
	report := func(pos ast.Node, format string, args ...any) {
		if pass.suppressed(pos.Pos(), "allow-capture") {
			return
		}
		pass.Reportf(pos.Pos(), format, args...)
	}
	checkTarget := func(lhs ast.Expr, isDefine bool) {
		switch t := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if isDefine || t.Name == "_" {
				return
			}
			obj := pass.Info.Uses[t]
			if obj == nil {
				obj = pass.Info.Defs[t]
			}
			if v, ok := obj.(*types.Var); ok && !isLocal(v) && !v.IsField() {
				report(t, "worker callback writes captured variable %s; every pool worker races on it — accumulate into worker-indexed slots or use atomics (//ihtl:allow-capture to override)", t.Name)
			}
		case *ast.StarExpr:
			if id, ok := ast.Unparen(t.X).(*ast.Ident); ok {
				if v, ok := pass.Info.Uses[id].(*types.Var); ok && !isLocal(v) {
					report(t, "worker callback writes through captured pointer %s; every pool worker races on it (//ihtl:allow-capture to override)", id.Name)
				}
			}
		case *ast.IndexExpr:
			base := rootIdent(t.X)
			if base == nil {
				return
			}
			obj := pass.Info.Uses[base]
			if v, ok := obj.(*types.Var); !ok || isLocal(v) {
				return
			}
			if _, isMap := pass.typeOf(t.X).Underlying().(*types.Map); isMap {
				report(t, "worker callback writes captured map %s; map writes race regardless of key (//ihtl:allow-capture to override)", base.Name)
				return
			}
			if !indexSafe(t.Index) {
				report(t, "worker callback writes captured slice %s at an index not derived from the worker/range parameters (//ihtl:allow-capture to override)", base.Name)
			}
		case *ast.SelectorExpr:
			if base := rootIdent(t); base != nil {
				if v, ok := pass.Info.Uses[base].(*types.Var); ok && !isLocal(v) {
					report(t, "worker callback writes field %s of captured %s; every pool worker races on it (//ihtl:allow-capture to override)", t.Sel.Name, base.Name)
				}
			}
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkTarget(lhs, n.Tok.String() == ":=")
			}
		case *ast.IncDecStmt:
			checkTarget(n.X, false)
		}
		return true
	})
}

// rootIdent returns the leftmost identifier of a selector/index chain
// (e.g. nrm for nrm.partial[w]), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.Ident:
			return t
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		default:
			return nil
		}
	}
}
