package analyzers

import "testing"

func TestNoPanic(t *testing.T) {
	runAnalyzerTest(t, NoPanic, "nopanic")
}
