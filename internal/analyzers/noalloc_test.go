package analyzers

import "testing"

func TestNoAlloc(t *testing.T) {
	runAnalyzerTest(t, NoAlloc, "noalloc")
}
