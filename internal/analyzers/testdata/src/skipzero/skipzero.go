// Package skipzero seeds violations for the skipzero analyzer. The
// package lives outside the push-kernel packages, so it opts in with
// the file directive below.
//
//ihtl:pushkernel
package skipzero

func badEq(x float64) bool {
	return x == 0 // want `also matches -0.0`
}

func badNeq(ys []float64) int {
	n := 0
	for _, y := range ys {
		if y != 0 { // want `also matches -0.0`
			n++
		}
	}
	return n
}

func badReversed(x float64) bool {
	return 0.0 == x // want `also matches -0.0`
}

func suppressed(tol float64) float64 {
	if tol == 0 { //ihtl:allow-zerocmp ±0 both mean "use the default"
		tol = 1e-9
	}
	return tol
}

func intsAreFine(a int) bool {
	return a == 0
}

func nonZeroFine(x float64) bool {
	return x == 1.0
}
