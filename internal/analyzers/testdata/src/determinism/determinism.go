// Package determinism seeds reproducibility leaks for the determinism
// analyzer. The package is outside the kernel/build path set, so the
// file opts in with the explicit directive:
//
//ihtl:deterministic
package determinism

import (
	"math/rand" // want `kernel/build package imports math/rand`
	"slices"
	"time"

	//ihtl:allow-rand deliberate non-reproducible baseline for ablation
	_ "math/rand/v2"
)

// badRand uses the banned global source.
func badRand() int { return rand.Int() }

// badWalltime lets the timestamp itself reach an output.
func badWalltime() int64 {
	t := time.Now() // want `badWalltime stores time.Now in t, which escapes the duration-instrumentation idiom`
	return t.Unix()
}

// badWalltimeInline consumes the timestamp outside the Sub/Since
// idiom without ever binding it.
func badWalltimeInline() int64 {
	return time.Now().UnixNano() // want `badWalltimeInline lets time.Now escape the duration-instrumentation idiom`
}

// goodInstrumentation is the workerClock idiom: Now feeds only Since.
func goodInstrumentation(work func()) time.Duration {
	t := time.Now()
	work()
	return time.Since(t)
}

// goodSub exercises the receiver and argument positions of Sub.
func goodSub(work func()) time.Duration {
	t := time.Now()
	work()
	u := time.Now()
	return u.Sub(t)
}

// timestamped embeds wall time on purpose; the function directive
// exempts the whole body.
//
//ihtl:instrumentation
func timestamped() int64 { return time.Now().UnixNano() }

// waivedWalltime carries the line waiver instead.
func waivedWalltime() int64 {
	return time.Now().UnixNano() //ihtl:allow-walltime run-id seed, never compared across runs
}

// badMapAppend leaks map iteration order into element order.
func badMapAppend(m map[int]float64) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k) // want `badMapAppend appends to keys while ranging over a map and never sorts it`
	}
	return keys
}

// goodMapAppendSorted is the canonical collect-then-sort idiom.
func goodMapAppendSorted(m map[int]float64) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// badMapFloat leaks map iteration order into FP rounding.
func badMapFloat(m map[int]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want `badMapFloat accumulates float total while ranging over a map`
	}
	return total
}

// waivedMapFloat documents a deliberately order-insensitive sum.
func waivedMapFloat(m map[int]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v //ihtl:allow-maporder tolerance-compared diagnostic only
	}
	return total
}

// goodMapInt: integer accumulation is exact in any order.
func goodMapInt(m map[int]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
