// Package noalloc seeds violations for the noalloc analyzer.
package noalloc

import "fmt"

var global []int

var sink any

type pair struct{ a, b int }

// helperAllocs is deliberately unannotated: annotated callers may call
// it (the construction-time escape hatch).
func helperAllocs(n int) []int { return make([]int, n) }

//ihtl:noalloc
func badMakeNew(n int) {
	s := make([]int, n) // want `calls make`
	_ = s
	p := new(int) // want `calls new`
	_ = p
}

//ihtl:noalloc
func badAppend(n int) {
	global = append(global, n) // want `calls append`
}

//ihtl:noalloc
func badClosure(x int) func() int {
	return func() int { return x } // want `function literal`
}

//ihtl:noalloc
func badGo() {
	go helperAllocs(1) // want `starts a goroutine`
}

//ihtl:noalloc
func badFmt(x int) {
	fmt.Println(x) // want `calls fmt.Println`
}

//ihtl:noalloc
func badLiterals() {
	m := map[int]int{} // want `map literal`
	m[1] = 2           // want `writes to a map`
	_ = []int{1, 2}    // want `slice literal`
}

//ihtl:noalloc
func badAddrOf() *pair {
	return &pair{1, 2} // want `heap-allocates a composite literal`
}

//ihtl:noalloc
func badConcat(a, b string) string {
	return a + b // want `concatenates strings`
}

//ihtl:noalloc
func badStringConv(b []byte) string {
	return string(b) // want `converts a slice to string`
}

//ihtl:noalloc
func badBoxAssign(v int) {
	sink = v // want `boxing allocates`
}

//ihtl:noalloc
func badBoxReturn(v int) any {
	return v // want `boxing allocates`
}

//ihtl:noalloc
func good(dst, src []float64) {
	for i := range src {
		dst[i] = 2 * src[i]
	}
	_ = pair{3, 4} // struct value literal: stack, not flagged
	if len(dst) == 0 {
		panic("empty dst") // builtin with constant arg: not flagged
	}
}

//ihtl:noalloc
func goodEscapeHatch(n int) int {
	return len(helperAllocs(n)) // unannotated callee: allowed
}
