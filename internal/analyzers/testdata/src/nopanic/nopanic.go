// Package nopanic seeds trust-boundary violations for the nopanic
// analyzer.
package nopanic

import "errors"

// Decode is a trust boundary: malformed bytes must come back as
// errors, never as a crash. Everything it reaches is checked too.
//
//ihtl:nopanic
func Decode(b []byte) (int, error) {
	if len(b) == 0 {
		panic("empty input") // want `Decode must decode errors, not panic`
	}
	n, err := header(b)
	if err != nil {
		return 0, err
	}
	if _, err := classify(b); err != nil {
		return 0, err
	}
	if _, err := okAssert(any(n)); err != nil {
		return 0, err
	}
	return n + switcher(any(b)), nil
}

// header is unannotated but reachable from Decode, so the transitive
// walk checks it.
func header(b []byte) (int, error) {
	n := MustLen(b) // want `header \(reachable from //ihtl:nopanic Decode\) calls MustLen, which panics on error by convention`
	return n, nil
}

// MustLen follows the MustCompile convention: panic on error.
func MustLen(b []byte) int {
	if len(b) < 4 {
		panic("short header") // want `MustLen \(reachable from //ihtl:nopanic Decode\) must decode errors, not panic`
	}
	return int(b[0])
}

// classify uses a single-result assertion, which panics on mismatch.
func classify(v any) (int, error) {
	b := v.([]byte) // want `classify \(reachable from //ihtl:nopanic Decode\) uses a single-result type assertion`
	return len(b), nil
}

// okAssert uses the comma-ok form: never panics, clean.
func okAssert(v any) (int, error) {
	n, ok := v.(int)
	if !ok {
		return 0, errors.New("not an int")
	}
	return n, nil
}

// switcher uses a type switch: never panics, clean.
func switcher(v any) int {
	switch x := v.(type) {
	case []byte:
		return len(x)
	case int:
		return x
	}
	return 0
}

// DecodeTrusted shows the line waiver on a construct that is provably
// unreachable on untrusted input.
//
//ihtl:nopanic
func DecodeTrusted(b []byte) int {
	if len(b) < 4 {
		panic("short") //ihtl:allow-panic callers Validate length before decoding
	}
	return int(b[0])
}

// unrelated is neither annotated nor reachable from a root: free to
// panic.
func unrelated() { panic("not a trust boundary") }
