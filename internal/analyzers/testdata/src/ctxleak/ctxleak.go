// Package ctxleak seeds cancellation holes for the ctxleak analyzer.
package ctxleak

import (
	"context"

	"ihtl/internal/sched"
)

// badRun carries a ctx but dispatches through the plain entry points:
// cancellation is never observed, a worker panic crashes the process.
func badRun(ctx context.Context, p *sched.Pool, xs []float64) {
	p.Run(func(worker int) { // want `badRun carries a context.Context but dispatches via Pool.Run`
		_ = xs[worker]
	})
	p.ForStatic(len(xs), func(worker, lo, hi int) { // want `badRun carries a context.Context but dispatches via Pool.ForStatic`
		for i := lo; i < hi; i++ {
			xs[i] = 0
		}
	})
}

// goodCtx uses the cancellation-aware variants: clean.
func goodCtx(ctx context.Context, p *sched.Pool, xs []float64) error {
	if err := p.RunCtx(ctx, func(worker int) {
		_ = xs[worker]
	}); err != nil {
		return err
	}
	return p.ForStaticCtx(ctx, len(xs), func(worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			xs[i] = 0
		}
	})
}

// goodNoCtx has no context parameter, so plain dispatches are the
// correct shape: clean.
func goodNoCtx(p *sched.Pool, xs []float64) {
	p.ForStatic(len(xs), func(worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			xs[i] = 0
		}
	})
}

// goodFallible opens a Fallible region, inside which the plain
// dispatches ARE ctx- and panic-aware by the region's contract: clean.
func goodFallible(ctx context.Context, p *sched.Pool, xs []float64) error {
	end, err := p.Fallible(ctx)
	if err != nil {
		return err
	}
	p.ForStatic(len(xs), func(worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			xs[i] = 0
		}
	})
	return end()
}

// waived documents a deliberate hole: the cleanup dispatch must run
// even after cancellation, and the waiver silences the finding.
func waived(ctx context.Context, p *sched.Pool, xs []float64) {
	//ihtl:allow-noctx cleanup must run to completion even when ctx is cancelled
	p.ForStatic(len(xs), func(worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			xs[i] = 0
		}
	})
}

// wrongWaiver carries an unrelated directive, which must NOT silence
// the finding.
func wrongWaiver(ctx context.Context, p *sched.Pool, xs []float64) {
	//ihtl:allow-capture not the right directive
	p.Run(func(worker int) { // want `wrongWaiver carries a context.Context but dispatches via Pool.Run`
		_ = xs[worker]
	})
}

// process/processCtx are a plain/ctx sibling pair like the analytics
// drivers (RunPageRank / RunPageRankCtx): calling the plain form from
// a ctx-carrying function is the serving-layer cancellation hole.
func process(xs []float64) {
	for i := range xs {
		xs[i] = 0
	}
}

func processCtx(ctx context.Context, xs []float64) error {
	for i := range xs {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		xs[i] = 0
	}
	return nil
}

// engine carries the method shape of the same pair (Step / StepCtx).
type engine struct{}

func (engine) Step(xs []float64)                               {}
func (engine) StepCtx(ctx context.Context, xs []float64) error { return nil }

// badSibling carries a ctx but calls the plain forms: the client
// hanging up is never observed.
func badSibling(ctx context.Context, e engine, xs []float64) {
	process(xs) // want `badSibling carries a context.Context but calls process, which never observes cancellation; use processCtx`
	e.Step(xs)  // want `badSibling carries a context.Context but calls Step, which never observes cancellation; use StepCtx`
}

// goodSibling threads the ctx through the Ctx variants: clean.
func goodSibling(ctx context.Context, e engine, xs []float64) error {
	if err := processCtx(ctx, xs); err != nil {
		return err
	}
	return e.StepCtx(ctx, xs)
}

// goodNoCtxSibling has no ctx to thread, so the plain forms are the
// correct shape: clean.
func goodNoCtxSibling(e engine, xs []float64) {
	process(xs)
	e.Step(xs)
}

// waivedSibling documents a deliberate plain call — the work is too
// short to be worth a cancellation check: clean.
func waivedSibling(ctx context.Context, xs []float64) {
	//ihtl:allow-noctx two-element fixup, shorter than the ctx check
	process(xs)
}
