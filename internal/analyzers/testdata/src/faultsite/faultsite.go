// Package faultsite seeds catalog violations for the faultsite
// analyzer, against the fake harness in the faultinject subpackage.
// The file-scope directive opts the package into the rule-3 dispatch
// checks that normally key on the internal/sched and internal/core
// paths:
//
//ihtl:faultsite-scope
package faultsite

import (
	"ihtlvet.test/faultsite/faultinject"

	"ihtl/internal/sched"
)

// fireBeta reaches a site one call level down.
func fireBeta() {
	faultinject.Fire(faultinject.SiteBeta)
}

// goodDirect fires a site inside the callback body: clean.
func goodDirect(p *sched.Pool, xs []float64) {
	p.ForStatic(len(xs), func(worker, lo, hi int) {
		faultinject.Fire(faultinject.SiteAlpha)
		for i := lo; i < hi; i++ {
			xs[i] = 0
		}
	})
}

// goodViaHelper reaches a site through the call graph: clean.
func goodViaHelper(p *sched.Pool, xs []float64) {
	p.ForStatic(len(xs), func(worker, lo, hi int) {
		fireBeta()
		for i := lo; i < hi; i++ {
			xs[i] = 0
		}
	})
}

// badPlain is a static dispatch whose callback reaches no site.
func badPlain(p *sched.Pool, xs []float64) {
	p.ForStatic(len(xs), func(worker, lo, hi int) { // want `dispatch callback reaches no faultinject site`
		for i := lo; i < hi; i++ {
			xs[i] = 0
		}
	})
}

// goodDynamic uses a dynamic mode: the pool claim loop is already
// injectable, so no body site is required.
func goodDynamic(p *sched.Pool, xs []float64) {
	p.ForDynamic(len(xs), 64, func(worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			xs[i] = 0
		}
	})
}

// waivedPlain documents a deliberately uninstrumented sweep.
func waivedPlain(p *sched.Pool, xs []float64) {
	//ihtl:allow-nosite trivial zeroing sweep, nothing to recover
	p.ForStatic(len(xs), func(worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			xs[i] = 0
		}
	})
}

// dynamicCallback takes the callback as a parameter: not statically
// resolvable, so it is checked at its declaration sites instead.
func dynamicCallback(p *sched.Pool, n int, fn func(worker, lo, hi int)) {
	p.ForStatic(n, fn)
}

// namedWorker fires a site; passing it by name is resolvable.
func namedWorker(worker int) {
	faultinject.Fire(faultinject.SiteAlpha)
}

// goodNamed dispatches a named function that fires: clean.
func goodNamed(p *sched.Pool) {
	p.Run(namedWorker)
}

// silentWorker reaches no site.
func silentWorker(worker int) {}

// badNamed dispatches a named function that never fires.
func badNamed(p *sched.Pool) {
	p.Run(silentWorker) // want `dispatch callback reaches no faultinject site`
}

// goodClaimLoop models the sharded exchange dispatch: a Run callback
// that claims chunks from a work-stealing scheduler and fires a site
// once per claimed chunk. The fire inside the claim loop makes the
// whole dispatch injectable: clean.
func goodClaimLoop(p *sched.Pool, s *sched.StealScheduler, chunks [][]float64) {
	p.Run(func(worker int) {
		for {
			lo, hi, ok := s.Next(worker, 1)
			if !ok {
				return
			}
			for c := lo; c < hi; c++ {
				faultinject.Fire(faultinject.SiteGamma)
				for i := range chunks[c] {
					chunks[c][i] = 0
				}
			}
		}
	})
}

// badClaimLoop is the same shape without the per-claim fire: the
// scheduler's claims happen outside the pool layer, so nothing makes
// this dispatch injectable.
func badClaimLoop(p *sched.Pool, s *sched.StealScheduler, chunks [][]float64) {
	p.Run(func(worker int) { // want `dispatch callback reaches no faultinject site`
		for {
			lo, hi, ok := s.Next(worker, 1)
			if !ok {
				return
			}
			for c := lo; c < hi; c++ {
				for i := range chunks[c] {
					chunks[c][i] = 0
				}
			}
		}
	})
}

// badSiteArg mints a site outside the catalog.
func badSiteArg() {
	faultinject.Fire(faultinject.Site("rogue.site")) // want `fault site argument is not a declared faultinject.Site constant`
}

// waivedSiteArg documents a deliberate dynamic site.
func waivedSiteArg(name string) {
	faultinject.Fire(faultinject.Site(name)) //ihtl:allow-sitearg replayed from a recorded plan
}
