// Package faultinject is a minimal stand-in for the real fault
// harness, giving the faultsite testdata a site catalog of its own.
package faultinject

// Site names one injection point.
type Site string

const (
	// SiteAlpha is fired directly by dispatch callbacks.
	SiteAlpha Site = "test.alpha"
	// SiteBeta is fired through a helper.
	SiteBeta Site = "test.beta"
	// SiteGamma is fired per claimed unit inside a steal-scheduler
	// claim loop (the sharded engine's exchange dispatch shape).
	SiteGamma Site = "test.gamma"
	// SiteOrphan is wired to nothing.
	SiteOrphan Site = "test.orphan" // want `SiteOrphan is declared but never passed to Fire or Poison`
	// SiteFuture is intentionally unfired; the waiver keeps it legal.
	SiteFuture Site = "test.future" //ihtl:allow-nosite reserved for the next harness revision
)

// Fire marks an injection point.
func Fire(s Site) {}

// Poison marks a data-corruption injection point.
func Poison(s Site) bool { return false }
