// Package parcapture seeds violations for the parcapture analyzer.
package parcapture

import "ihtl/internal/sched"

type state struct {
	total float64
	slots []float64
}

func bad(p *sched.Pool, xs []float64) float64 {
	total := 0.0
	j := 3
	out := make([]float64, len(xs))
	seen := map[int]bool{}
	p.ForStatic(len(xs), func(worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			total += xs[i] // want `captured variable total`
			out[j] = xs[i] // want `captured slice out`
			seen[i] = true // want `captured map seen`
		}
	})
	return total
}

func badPointer(p *sched.Pool, flag *bool) {
	p.Run(func(worker int) {
		*flag = true // want `captured pointer flag`
	})
}

func badField(p *sched.Pool, st *state) {
	p.ForSteal(100, 10, func(worker, lo, hi int) {
		st.total = 1 // want `field total of captured st`
	})
}

func good(p *sched.Pool, xs []float64) float64 {
	partial := make([]float64, p.Workers())
	out := make([]float64, len(xs))
	chunks := make([][]int, p.Workers())
	p.ForStealWith(nil, len(xs), 64, func(worker, lo, hi int) {
		sum := 0.0 // callback-local: fine
		for i := lo; i < hi; i++ {
			sum += xs[i]
			out[i] = 2 * xs[i]                         // range-derived index: fine
			chunks[worker] = append(chunks[worker], i) // worker slot: fine
		}
		partial[worker] += sum // worker slot: fine
	})
	total := 0.0
	for _, s := range partial {
		total += s
	}
	return total
}

func suppressed(p *sched.Pool, xs []float64) {
	first := 0.0
	p.Run(func(worker int) {
		if worker == 0 {
			first = xs[0] //ihtl:allow-capture single writer by construction
		}
	})
	_ = first
}

func badCtx(p *sched.Pool, xs []float64) error {
	total := 0.0
	err := p.ForDynamicCtx(nil, len(xs), 64, func(worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			total += xs[i] // want `captured variable total`
		}
	})
	_ = total
	return err
}

func goodCtx(p *sched.Pool, xs []float64) (float64, error) {
	partial := make([]float64, p.Workers())
	err := p.ForStealCtx(nil, len(xs), 64, func(worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			partial[worker] += xs[i] // worker slot: fine
		}
	})
	total := 0.0
	for _, s := range partial {
		total += s
	}
	return total, err
}
