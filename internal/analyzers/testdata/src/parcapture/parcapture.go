// Package parcapture seeds violations for the parcapture analyzer.
package parcapture

import "ihtl/internal/sched"

type state struct {
	total float64
	slots []float64
}

func bad(p *sched.Pool, xs []float64) float64 {
	total := 0.0
	j := 3
	out := make([]float64, len(xs))
	seen := map[int]bool{}
	p.ForStatic(len(xs), func(worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			total += xs[i] // want `captured variable total`
			out[j] = xs[i] // want `captured slice out`
			seen[i] = true // want `captured map seen`
		}
	})
	return total
}

func badPointer(p *sched.Pool, flag *bool) {
	p.Run(func(worker int) {
		*flag = true // want `captured pointer flag`
	})
}

func badField(p *sched.Pool, st *state) {
	p.ForSteal(100, 10, func(worker, lo, hi int) {
		st.total = 1 // want `field total of captured st`
	})
}

func good(p *sched.Pool, xs []float64) float64 {
	partial := make([]float64, p.Workers())
	out := make([]float64, len(xs))
	chunks := make([][]int, p.Workers())
	p.ForStealWith(nil, len(xs), 64, func(worker, lo, hi int) {
		sum := 0.0 // callback-local: fine
		for i := lo; i < hi; i++ {
			sum += xs[i]
			out[i] = 2 * xs[i]                         // range-derived index: fine
			chunks[worker] = append(chunks[worker], i) // worker slot: fine
		}
		partial[worker] += sum // worker slot: fine
	})
	total := 0.0
	for _, s := range partial {
		total += s
	}
	return total
}

// goodExchange models the sharded engine's exchange binning: each
// worker claims chunks from a steal scheduler and appends into
// exact-capacity segments through cursor slots owned by the claimed
// chunk (binCur is indexed by a claim-derived segment, binRows/binVals
// through that cursor), plus a per-worker clock slot. All writes are
// keyed by the claimed unit or the worker index: clean.
func goodExchange(p *sched.Pool, s *sched.StealScheduler, src []float64,
	binOff, binCur []int64, binRows []uint32, clocks []int64) {
	nchunks := 4
	p.Run(func(worker int) {
		for {
			clo, chi, ok := s.Next(worker, 1)
			if !ok {
				break
			}
			for c := clo; c < chi; c++ {
				for b := 0; b < len(binOff)/nchunks; b++ {
					seg := b*nchunks + c // claim-derived segment: fine
					p := binCur[seg]
					binRows[p] = uint32(b) // through the claimed cursor: fine
					binCur[seg] = p + 1
				}
			}
		}
		clocks[worker]++ // worker slot: fine
	})
}

// badExchange drops the claim keying: every worker advances one shared
// cursor, so two workers race on the same slot.
func badExchange(p *sched.Pool, s *sched.StealScheduler, binRows []uint32, next *int64) {
	p.Run(func(worker int) {
		for {
			clo, chi, ok := s.Next(worker, 1)
			if !ok {
				break
			}
			for c := clo; c < chi; c++ {
				binRows[*next] = uint32(c) // want `captured slice binRows`
				*next++                    // want `captured pointer next`
			}
		}
	})
}

func suppressed(p *sched.Pool, xs []float64) {
	first := 0.0
	p.Run(func(worker int) {
		if worker == 0 {
			first = xs[0] //ihtl:allow-capture single writer by construction
		}
	})
	_ = first
}

func badCtx(p *sched.Pool, xs []float64) error {
	total := 0.0
	err := p.ForDynamicCtx(nil, len(xs), 64, func(worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			total += xs[i] // want `captured variable total`
		}
	})
	_ = total
	return err
}

func goodCtx(p *sched.Pool, xs []float64) (float64, error) {
	partial := make([]float64, p.Workers())
	err := p.ForStealCtx(nil, len(xs), 64, func(worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			partial[worker] += xs[i] // worker slot: fine
		}
	})
	total := 0.0
	for _, s := range partial {
		total += s
	}
	return total, err
}
