// Package atomicfield seeds violations for the atomicfield analyzer.
package atomicfield

import "sync/atomic"

type counter struct {
	hits   int64
	misses int64
	label  string
}

func (c *counter) Hit() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counter) Snapshot() int64 {
	return atomic.LoadInt64(&c.hits)
}

func (c *counter) BadRead() int64 {
	return c.hits // want `updated atomically .* but accessed here without sync/atomic`
}

func (c *counter) BadWrite() {
	c.hits = 0 // want `updated atomically .* but accessed here without sync/atomic`
}

func (c *counter) Reset() {
	c.hits = 0 //ihtl:allow-plain re-initialised before workers exist
}

func (c *counter) Miss() {
	c.misses++ // never touched atomically: fine
}

func (c *counter) Label() string {
	return c.label
}
