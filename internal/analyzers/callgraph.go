package analyzers

import (
	"go/ast"
	"go/types"
)

// This file extends the loader layer with the whole-program plumbing
// the module-scoped passes (nopanic, faultsite) need: an index from
// function objects to their declarations across every loaded package,
// static callee resolution, and a transitive walk over the
// intra-module call graph. The walk is deliberately static and
// under-approximate — calls through interfaces, func-typed fields and
// stored closures are not followed — which keeps it sound for the
// passes that use it as an allow-list ("does this body, or anything it
// statically calls, reach X") and conservative for the ones that use
// it as a deny-list (an unresolvable call is simply out of reach and
// must be covered by annotation or waiver at its own declaration).

// funcEntry locates one function declaration: the pass owning its file
// (for waiver lookups and diagnostic attribution) and the declaration
// itself.
type funcEntry struct {
	pass *Pass
	decl *ast.FuncDecl
}

// funcIndex maps every module function and method object to its
// declaration. Object identity holds module-wide because all packages
// share one Loader.
type funcIndex map[*types.Func]funcEntry

// buildFuncIndex indexes every function declared in the loaded
// packages.
func buildFuncIndex(passes []*Pass) funcIndex {
	idx := make(funcIndex)
	for _, pass := range passes {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				if obj, ok := pass.Info.Defs[fn.Name].(*types.Func); ok {
					idx[obj] = funcEntry{pass: pass, decl: fn}
				}
			}
		}
	}
	return idx
}

// staticCallee resolves call to the function object it statically
// invokes: a plain function, a method on a concrete receiver, or a
// method value. Interface dispatch, func-typed variables and builtins
// resolve to nil.
func (p *Pass) staticCallee(call *ast.CallExpr) *types.Func {
	obj := p.calleeObject(call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	// Interface method: the callee body is unknowable statically.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := p.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			if isInterface(s.Recv()) {
				return nil
			}
		}
	}
	return fn
}

// walkCallees runs visit over fn's declaration and every intra-module
// function statically reachable from it, breadth-first. visit receives
// the entry plus the call chain root; returning false from visit stops
// the descent into that function's callees (its body was still
// visited). Functions outside idx (stdlib, unresolvable) are skipped.
func walkCallees(idx funcIndex, root *types.Func, visit func(fn *types.Func, e funcEntry) bool) {
	seen := map[*types.Func]bool{root: true}
	queue := []*types.Func{root}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		e, ok := idx[cur]
		if !ok {
			continue
		}
		if !visit(cur, e) {
			continue
		}
		ast.Inspect(e.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := e.pass.staticCallee(call); callee != nil && !seen[callee] {
				if _, inModule := idx[callee]; inModule {
					seen[callee] = true
					queue = append(queue, callee)
				}
			}
			return true
		})
	}
}

// inspectStack is ast.Inspect with an ancestor stack: f sees each node
// together with its ancestors, outermost first. Returning false skips
// the node's children.
func inspectStack(root ast.Node, f func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !f(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// poolDispatchName returns the sched.Pool dispatch method name invoked
// by call ("Run", "ForStaticCtx", …), or "" when call is not a pool
// dispatch.
func poolDispatchName(pass *Pass, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !parCaptureMethods[sel.Sel.Name] {
		return ""
	}
	if !isPoolDispatch(pass, call) {
		return ""
	}
	return sel.Sel.Name
}
