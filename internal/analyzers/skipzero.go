package analyzers

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// skipZeroPackages are the packages whose float64 code handles vertex
// data and therefore must test for skippable zeros with spmv.SkipZero
// (bitwise: +0.0 only) instead of ==/!= 0, which also matches -0.0 —
// a value the pull engines traverse and the push engines must
// therefore traverse too, or results drift between kernels. Files
// elsewhere can opt in with a //ihtl:pushkernel directive; individual
// intentional comparisons (e.g. option defaulting, where ±0 both mean
// "unset") are silenced with //ihtl:allow-zerocmp <reason>.
var skipZeroPackages = map[string]bool{
	"ihtl/internal/spmv":      true,
	"ihtl/internal/core":      true,
	"ihtl/internal/analytics": true,
}

// SkipZero flags raw ==/!= comparisons of float64 expressions against
// zero inside push-kernel packages.
var SkipZero = &Analyzer{
	Name: "skipzero",
	Doc:  "require spmv.SkipZero for float64 zero tests in push-kernel packages",
	Run:  runSkipZero,
}

func runSkipZero(pass *Pass) error {
	inScopePkg := skipZeroPackages[pass.Pkg.Path()]
	for _, f := range pass.Files {
		if !inScopePkg && !fileHasDirective(f, "pushkernel") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			var fl ast.Expr // the float64 operand
			switch {
			case isFloat64(pass.typeOf(be.X)) && isConstZero(pass, be.Y):
				fl = be.X
			case isFloat64(pass.typeOf(be.Y)) && isConstZero(pass, be.X):
				fl = be.Y
			default:
				return true
			}
			if pass.suppressed(be.Pos(), "allow-zerocmp") {
				return true
			}
			pass.Reportf(be.Pos(), "raw float64 %s 0 comparison on %s also matches -0.0; use spmv.SkipZero (bitwise +0.0) or silence with //ihtl:allow-zerocmp <reason>",
				be.Op, exprString(pass, fl))
			return true
		})
	}
	return nil
}

func isFloat64(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Float64 || b.Kind() == types.Float32 || b.Kind() == types.UntypedFloat)
}

// isConstZero reports whether e is a numeric constant equal to zero.
func isConstZero(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}

// exprString renders a short source form of e for diagnostics.
func exprString(pass *Pass, e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(pass, e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(pass, e.X) + "[...]"
	case *ast.CallExpr:
		return exprString(pass, e.Fun) + "(...)"
	}
	return "expression"
}
