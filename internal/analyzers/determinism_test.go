package analyzers

import "testing"

func TestDeterminism(t *testing.T) {
	runAnalyzerTest(t, Determinism, "determinism")
}
