package analyzers

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// runAnalyzerTest is a tiny analysistest: it loads the package in
// testdata/src/<name>, runs the analyzer, and checks every diagnostic
// against `// want "regexp"` comments. Each want comment expects
// exactly one diagnostic whose message matches the regexp on that
// line; unexpected diagnostics and unmatched wants both fail the test.
func runAnalyzerTest(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	runAnalyzerTestPkgs(t, a, name)
}

// runAnalyzerTestPkgs is runAnalyzerTest for suites that span several
// packages: subdirs are loaded first (under synthetic import paths
// below the main package's, so the main package can import them), then
// the main package, and the analyzer runs over all of them with wants
// collected across every file. Module-scope passes (RunModule) need
// this to see a testdata-local harness package such as faultsite's
// fake faultinject.
func runAnalyzerTestPkgs(t *testing.T, a *Analyzer, name string, subdirs ...string) {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "internal", "analyzers", "testdata", "src", name)
	var pkgs []*Package
	for _, sub := range subdirs {
		p, err := l.LoadDir(filepath.Join(dir, sub), "ihtlvet.test/"+name+"/"+sub)
		if err != nil {
			t.Fatalf("loading %s/%s: %v", dir, sub, err)
		}
		pkgs = append(pkgs, p)
	}
	pkg, err := l.LoadDir(dir, "ihtlvet.test/"+name)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	pkgs = append(pkgs, pkg)
	diags, err := RunAnalyzers(pkgs, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := make(map[string]*want)
	for _, p := range pkgs {
		for key, w := range collectWants(t, p) {
			wants[key] = w
		}
	}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		w, ok := wants[key]
		if !ok {
			t.Errorf("unexpected diagnostic at %s: %s", key, d.Message)
			continue
		}
		if !w.re.MatchString(d.Message) {
			t.Errorf("diagnostic at %s does not match want %q: %s", key, w.re, d.Message)
		}
		w.hits++
	}
	for key, w := range wants {
		if w.hits == 0 {
			t.Errorf("no diagnostic at %s matching %q", key, w.re)
		}
	}
}

type want struct {
	re   *regexp.Regexp
	hits int
}

var wantRE = regexp.MustCompile("//\\s*want\\s+[\"`](.+)[\"`]")

// collectWants scans the package's comments for `// want "re"` markers
// keyed by file:line.
func collectWants(t *testing.T, pkg *Package) map[string]*want {
	t.Helper()
	wants := make(map[string]*want)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.Contains(c.Text, "want") && strings.Contains(c.Text, "\"") {
						t.Fatalf("malformed want comment: %s", c.Text)
					}
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", m[1], err)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)] = &want{re: re}
			}
		}
	}
	return wants
}
