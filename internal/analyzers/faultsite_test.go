package analyzers

import "testing"

func TestFaultSite(t *testing.T) {
	// The fake harness subpackage loads first so the main testdata
	// package can import it by its synthetic path.
	runAnalyzerTestPkgs(t, FaultSite, "faultsite", "faultinject")
}
