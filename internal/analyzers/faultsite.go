package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// FaultSite cross-checks the faultinject.Site catalog against the
// whole module. The deterministic fault-injection harness (PR 5) only
// earns its keep if the catalog and the instrumented code agree; this
// pass pins the three directions of that agreement:
//
//  1. every declared Site* constant is passed to Fire or Poison
//     somewhere in the module — a declared-but-never-fired site is a
//     recovery scenario nothing can exercise (delete it or wire it);
//  2. every Fire/Poison call names a declared Site constant — a
//     string literal or locally-minted site silently escapes the
//     catalog the fault suites and the meta-test enumerate
//     (//ihtl:allow-sitearg <reason> waives a deliberate dynamic
//     site);
//  3. in the execution-layer packages (internal/sched, internal/core)
//     every Run/ForStatic pool dispatch whose callback is statically
//     resolvable should reach a Fire/Poison site somewhere in the
//     callback's intra-module call graph, so injected faults can land
//     inside every dispatch shape. The dynamic modes (ForDynamic,
//     ForEachPart, ForSteal, ForStealWith and their Ctx variants) are
//     exempt: their claim loops fire SiteSchedClaim inside the pool
//     worker once per claimed unit, so every dynamic dispatch is
//     already injectable at the pool layer. Static dispatches that are
//     deliberately uninstrumented (construction-time fills inside a
//     Fallible region, trivial zeroing loops) carry
//     //ihtl:allow-nosite <reason>.
//
// Callbacks the pass cannot resolve statically (func values stored in
// struct fields, e.g. e.fusedJob) are out of reach and are checked at
// their own declaration sites instead, where the worker loops carry
// the sites directly.
var FaultSite = &Analyzer{
	Name:      "faultsite",
	Doc:       "cross-check the faultinject.Site catalog against fire sites and dispatch bodies",
	RunModule: runFaultSite,
}

// faultSitePkgs are the execution-layer packages whose dispatch bodies
// must be reachable by fault injection (rule 3).
var faultSitePkgs = map[string]bool{
	"ihtl/internal/sched": true,
	"ihtl/internal/core":  true,
	// The serving daemon's admission/batch/spool paths carry their own
	// sites (SiteServe*); any pool dispatch it grows must stay
	// injectable like the engines beneath it.
	"ihtl/internal/serve": true,
}

func runFaultSite(passes []*Pass) error {
	fi := findFaultinject(passes)
	if fi == nil {
		return nil // module (or testdata set) carries no fault harness
	}
	declared := declaredSites(fi)
	if len(declared) == 0 {
		return nil
	}
	idx := buildFuncIndex(passes)

	// Rules 1 and 2: collect Fire/Poison arguments module-wide.
	used := make(map[types.Object]bool)
	for _, pass := range passes {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isFireCall(pass, fi.Pkg, call) || len(call.Args) == 0 {
					return true
				}
				if obj := siteConstOf(pass, call.Args[0]); obj != nil && declared[obj] {
					used[obj] = true
					return true
				}
				if !pass.suppressed(call.Pos(), "allow-sitearg") {
					pass.Reportf(call.Args[0].Pos(),
						"fault site argument is not a declared faultinject.Site constant; sites outside the catalog escape the fault suites (declare a Site* constant or waive with //ihtl:allow-sitearg <reason>)")
				}
				return true
			})
		}
	}
	reportUnfired(fi, declared, used)

	// Rule 3: dispatch bodies in the execution-layer packages.
	fires := newFireReach(fi.Pkg, idx)
	for _, pass := range passes {
		if !faultSitePkgs[pass.Pkg.Path()] && !passHasDirective(pass, "faultsite-scope") {
			continue
		}
		checkDispatchSites(pass, idx, fires)
	}
	return nil
}

// passHasDirective reports whether any file of the pass carries the
// given file-scoped directive (testdata packages use it to opt into
// the path-keyed scopes).
func passHasDirective(pass *Pass, name string) bool {
	for _, f := range pass.Files {
		if fileHasDirective(f, name) {
			return true
		}
	}
	return false
}

// findFaultinject locates the fault-injection harness among the loaded
// packages: the package named faultinject declaring the Site type.
func findFaultinject(passes []*Pass) *Pass {
	for _, pass := range passes {
		if pass.Pkg.Name() != "faultinject" {
			continue
		}
		if obj := pass.Pkg.Scope().Lookup("Site"); obj != nil {
			if _, ok := obj.(*types.TypeName); ok {
				return pass
			}
		}
	}
	return nil
}

// declaredSites returns the catalog: package-level Site* constants of
// type Site.
func declaredSites(fi *Pass) map[types.Object]bool {
	siteType := fi.Pkg.Scope().Lookup("Site").Type()
	out := make(map[types.Object]bool)
	for _, name := range fi.Pkg.Scope().Names() {
		obj := fi.Pkg.Scope().Lookup(name)
		c, ok := obj.(*types.Const)
		if !ok || !strings.HasPrefix(name, "Site") || name == "Site" {
			continue
		}
		if types.Identical(c.Type(), siteType) {
			out[c] = true
		}
	}
	return out
}

// isFireCall reports whether call invokes Fire or Poison of the
// harness package.
func isFireCall(pass *Pass, harness *types.Package, call *ast.CallExpr) bool {
	fn, ok := pass.calleeObject(call).(*types.Func)
	if !ok || fn.Pkg() != harness {
		return false
	}
	return fn.Name() == "Fire" || fn.Name() == "Poison"
}

// siteConstOf resolves arg to the Site constant object it names, or
// nil for anything dynamic.
func siteConstOf(pass *Pass, arg ast.Expr) types.Object {
	switch e := ast.Unparen(arg).(type) {
	case *ast.Ident:
		if c, ok := pass.Info.Uses[e].(*types.Const); ok {
			return c
		}
	case *ast.SelectorExpr:
		if c, ok := pass.Info.Uses[e.Sel].(*types.Const); ok {
			return c
		}
	}
	return nil
}

// reportUnfired reports catalog entries nothing fires (rule 1).
func reportUnfired(fi *Pass, declared, used map[types.Object]bool) {
	// Report in source order for stable output.
	for _, f := range fi.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			vs, ok := n.(*ast.ValueSpec)
			if !ok {
				return true
			}
			for _, name := range vs.Names {
				obj := fi.Info.Defs[name]
				if obj == nil || !declared[obj] || used[obj] {
					continue
				}
				if fi.suppressed(name.Pos(), "allow-nosite") {
					continue
				}
				fi.Reportf(name.Pos(),
					"%s is declared but never passed to Fire or Poison; no fault plan can exercise it (delete it or wire it into the instrumented code)", name.Name)
			}
			return true
		})
	}
}

// fireReach memoises "does this function's intra-module call graph
// contain a Fire/Poison call".
type fireReach struct {
	harness *types.Package
	idx     funcIndex
	memo    map[*types.Func]bool
}

func newFireReach(harness *types.Package, idx funcIndex) *fireReach {
	return &fireReach{harness: harness, idx: idx, memo: make(map[*types.Func]bool)}
}

func (r *fireReach) reaches(fn *types.Func) bool {
	if v, ok := r.memo[fn]; ok {
		return v
	}
	r.memo[fn] = false // cycle guard: a cycle with no site fires nothing
	found := false
	walkCallees(r.idx, fn, func(cur *types.Func, e funcEntry) bool {
		if found {
			return false
		}
		ast.Inspect(e.decl.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && isFireCall(e.pass, r.harness, call) {
				found = true
				return false
			}
			return true
		})
		return !found
	})
	r.memo[fn] = found
	return found
}

// checkDispatchSites applies rule 3 to one package: every statically
// resolvable dispatch callback must reach a fire site.
func checkDispatchSites(pass *Pass, idx funcIndex, fires *fireReach) {
	// Only the barrier-free static modes need a body site; the dynamic
	// claim loops fire SiteSchedClaim at the pool layer.
	staticModes := map[string]bool{
		"Run": true, "RunCtx": true, "ForStatic": true, "ForStaticCtx": true,
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !staticModes[poolDispatchName(pass, call)] {
				return true
			}
			cb, resolvable := dispatchCallback(pass, idx, call)
			if !resolvable {
				return true
			}
			covered := false
			switch cb := cb.(type) {
			case *ast.FuncLit:
				ast.Inspect(cb.Body, func(n ast.Node) bool {
					if covered {
						return false
					}
					inner, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if isFireCall(pass, fires.harness, inner) {
						covered = true
						return false
					}
					if callee := pass.staticCallee(inner); callee != nil {
						if _, inModule := idx[callee]; inModule && fires.reaches(callee) {
							covered = true
							return false
						}
					}
					return true
				})
			case *types.Func:
				covered = fires.reaches(cb)
			}
			if covered || pass.suppressed(call.Pos(), "allow-nosite") {
				return true
			}
			pass.Reportf(call.Pos(),
				"dispatch callback reaches no faultinject site; injected faults cannot land in this dispatch (add a Fire site or waive with //ihtl:allow-nosite <reason>)")
			return true
		})
	}
}

// dispatchCallback extracts the callback of a pool dispatch call: the
// func literal, or the *types.Func of a named function/method value.
// resolvable is false when the callback is a dynamic func value (a
// stored field, a parameter), which the pass cannot follow.
func dispatchCallback(pass *Pass, idx funcIndex, call *ast.CallExpr) (cb any, resolvable bool) {
	for _, arg := range call.Args {
		if _, ok := pass.typeOf(arg).Underlying().(*types.Signature); !ok {
			continue
		}
		switch e := ast.Unparen(arg).(type) {
		case *ast.FuncLit:
			return e, true
		case *ast.Ident:
			if fn, ok := pass.Info.Uses[e].(*types.Func); ok {
				if _, inModule := idx[fn]; inModule {
					return fn, true
				}
			}
		case *ast.SelectorExpr:
			// Method value (e.mergeJob where mergeJob is a method) is
			// resolvable; a func-typed FIELD (e.fusedJob) is not.
			if sel, ok := pass.Info.Selections[e]; ok && sel.Kind() == types.MethodVal {
				if fn, ok := sel.Obj().(*types.Func); ok {
					if _, inModule := idx[fn]; inModule {
						return fn, true
					}
				}
			}
		}
		return nil, false
	}
	return nil, false
}
