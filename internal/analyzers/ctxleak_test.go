package analyzers

import "testing"

func TestCtxLeak(t *testing.T) {
	runAnalyzerTest(t, CtxLeak, "ctxleak")
}
