package analyzers

import "testing"

func TestAtomicField(t *testing.T) {
	runAnalyzerTest(t, AtomicField, "atomicfield")
}
