package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// ctxVariant maps each plain sched.Pool dispatch to its cancellation-
// aware replacement.
var ctxVariant = map[string]string{
	"Run":          "RunCtx",
	"ForStatic":    "ForStaticCtx",
	"ForDynamic":   "ForDynamicCtx",
	"ForEachPart":  "ForEachPartCtx",
	"ForSteal":     "ForStealCtx",
	"ForStealWith": "ForStealWithCtx",
}

// CtxLeak flags cancellation holes: inside a function that accepts a
// context.Context, dispatching on a sched.Pool through a plain (non-
// ctx) entry point means a cancelled context is never observed by the
// claim loops and a worker panic crashes the orchestrator instead of
// returning — exactly the hole PR 5 closed everywhere else. The fix is
// the *Ctx variant of the same dispatch.
//
// The same hole reopens one layer up (PR 10's serving daemon): a
// request handler carrying its request ctx that calls a plain
// engine dispatch or analytics driver (Step, RunPageRank, Build, ...)
// when a *Ctx sibling exists never observes the client hanging up.
// So the pass also flags any call, inside a ctx-carrying function,
// to a function or method F for which an F+"Ctx" sibling taking a
// context.Context is declared alongside it (same package for
// functions, same receiver type for methods).
//
// A function that opens a pool.Fallible(ctx) region is exempt: inside
// a region the plain dispatches ARE cancellation- and panic-aware by
// design (that is the region's contract), and the error surfaces at
// end(). Deliberate holes — e.g. a cleanup dispatch that must run even
// after cancellation, or a ctx-sibling call whose work is too short to
// be worth cancelling — carry //ihtl:allow-noctx <reason> on the line.
var CtxLeak = &Analyzer{
	Name: "ctxleak",
	Doc:  "flag non-ctx sched.Pool dispatches inside context-carrying functions",
	Run:  runCtxLeak,
}

func runCtxLeak(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasCtxParam(pass, fn) {
				continue
			}
			if callsFallible(pass, fn.Body) {
				continue
			}
			checkCtxLeakBody(pass, fn)
		}
	}
	return nil
}

// hasCtxParam reports whether fn declares a context.Context parameter.
func hasCtxParam(pass *Pass, fn *ast.FuncDecl) bool {
	if fn.Type.Params == nil {
		return false
	}
	for _, field := range fn.Type.Params.List {
		if tv, ok := pass.Info.Types[field.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Context" && objPkgPath(obj) == "context"
}

// callsFallible reports whether body opens a Fallible dispatch region
// anywhere (regions make the plain dispatches inside them ctx-aware).
func callsFallible(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Fallible" {
			if fn, ok := pass.calleeObject(call).(*types.Func); ok && objPkgPath(fn) == "ihtl/internal/sched" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func checkCtxLeakBody(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name := poolDispatchName(pass, call); name != "" {
			variant, plain := ctxVariant[name]
			if !plain || pass.suppressed(call.Pos(), "allow-noctx") {
				return true
			}
			pass.Reportf(call.Pos(),
				"%s carries a context.Context but dispatches via Pool.%s, which never observes cancellation; use %s (or open a Fallible region), or silence with //ihtl:allow-noctx <reason>",
				fn.Name.Name, name, variant)
			return true
		}
		callee, ok := pass.calleeObject(call).(*types.Func)
		if !ok {
			return true
		}
		if sib := ctxSibling(callee); sib != nil && !pass.suppressed(call.Pos(), "allow-noctx") {
			pass.Reportf(call.Pos(),
				"%s carries a context.Context but calls %s, which never observes cancellation; use %s, or silence with //ihtl:allow-noctx <reason>",
				fn.Name.Name, callee.Name(), sib.Name())
		}
		return true
	})
}

// ctxSibling returns the F+"Ctx" variant of fn when one is declared
// alongside it (same package for functions, same receiver type for
// methods) and actually takes a context.Context — the signal that the
// plain form is the cancellation-blind spelling of the same dispatch.
func ctxSibling(fn *types.Func) *types.Func {
	name := fn.Name()
	if strings.HasSuffix(name, "Ctx") || fn.Pkg() == nil {
		return nil
	}
	want := name + "Ctx"
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	if recv := sig.Recv(); recv != nil {
		sel := types.NewMethodSet(recv.Type()).Lookup(fn.Pkg(), want)
		if sel == nil {
			return nil
		}
		if m, ok := sel.Obj().(*types.Func); ok && takesContext(m) {
			return m
		}
		return nil
	}
	if obj := fn.Pkg().Scope().Lookup(want); obj != nil {
		if f, ok := obj.(*types.Func); ok && takesContext(f) {
			return f
		}
	}
	return nil
}

// takesContext reports whether fn declares a context.Context
// parameter.
func takesContext(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}
