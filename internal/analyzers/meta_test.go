package analyzers

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// TestNoAllocCoversAllocsPerRunPins asserts that every method pinned
// alloc-free by a testing.AllocsPerRun test somewhere in the module
// carries the //ihtl:noalloc annotation, so the static pass guards the
// same set the runtime pins do — but at every call shape, not just the
// benchmarked one. Purely syntactic: it scans _test.go files for
// AllocsPerRun closures and records the method names they invoke, then
// scans non-test files for annotated declarations of those names.
func TestNoAllocCoversAllocsPerRunPins(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	pinned := make(map[string][]string) // method name -> pinning positions
	annotated := make(map[string]bool)  // annotated FuncDecl names

	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		if strings.HasSuffix(path, "_test.go") {
			collectAllocsPerRunPins(fset, f, pinned)
			return nil
		}
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && funcHasDirective(fn, "noalloc") {
				annotated[fn.Name.Name] = true
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pinned) == 0 {
		t.Fatal("found no testing.AllocsPerRun pins in the module; the meta-test is miswired")
	}
	var names []string
	for name := range pinned {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !annotated[name] {
			t.Errorf("%s is pinned alloc-free by AllocsPerRun at %s but has no //ihtl:noalloc annotation",
				name, strings.Join(pinned[name], ", "))
		}
	}
}

// collectAllocsPerRunPins records, for each testing.AllocsPerRun call
// in f, the method names invoked inside its closure argument.
func collectAllocsPerRunPins(fset *token.FileSet, f *ast.File, pinned map[string][]string) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 2 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "AllocsPerRun" {
			return true
		}
		lit, ok := call.Args[1].(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if s, ok := inner.Fun.(*ast.SelectorExpr); ok {
				pos := fset.Position(inner.Pos())
				pinned[s.Sel.Name] = append(pinned[s.Sel.Name],
					filepath.Base(pos.Filename)+":"+strconv.Itoa(pos.Line))
			}
			return true
		})
		return true
	})
}
