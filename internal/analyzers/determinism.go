package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// determinismPkgs are the kernel/build packages whose outputs must be
// bit-for-bit reproducible: every results/ ablation and the parallel-
// vs-sequential differential suites compare their outputs exactly.
// Wall-clock instrumentation (the workerClock / BuildStats idiom) is
// recognised structurally and stays legal; anything else that lets
// wall time, scheduler interleavings or map iteration order leak into
// outputs is flagged.
var determinismPkgs = map[string]bool{
	"ihtl/internal/core":      true,
	"ihtl/internal/spmv":      true,
	"ihtl/internal/graph":     true,
	"ihtl/internal/compress":  true,
	"ihtl/internal/order":     true,
	"ihtl/internal/frontier":  true,
	"ihtl/internal/analytics": true,
	"ihtl/internal/gen":       true,
}

// Determinism enforces reproducibility in the kernel/build packages
// (plus any file opting in with a //ihtl:deterministic comment):
//
//   - math/rand and math/rand/v2 are banned (waive a deliberate use
//     with //ihtl:allow-rand <reason> on the import line) — seeded,
//     splittable randomness lives in internal/xrand, which is a pure
//     function of its seed across Go releases and platforms;
//   - time.Now is only legal in the duration-instrumentation idiom
//     (t := time.Now() consumed solely by time.Since / Time.Sub, the
//     workerClock pattern) — a timestamp that flows anywhere else can
//     reach an output or a branch; escape hatches are
//     //ihtl:allow-walltime <reason> on the line or an
//     //ihtl:instrumentation directive on the function;
//   - ranging over a map while appending the elements to a slice
//     (without sorting it immediately after) or while accumulating
//     floats leaks the randomised iteration order into element order
//     or FP rounding; silence deliberate cases with
//     //ihtl:allow-maporder <reason>.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "flag wall-clock, math/rand and map-order leaks in kernel/build packages",
	Run:  runDeterminism,
}

func runDeterminism(pass *Pass) error {
	inScope := determinismPkgs[pass.Pkg.Path()]
	for _, f := range pass.Files {
		if !inScope && !fileHasDirective(f, "deterministic") {
			continue
		}
		checkRandImports(pass, f)
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !funcHasDirective(fn, "instrumentation") {
				checkWalltime(pass, fn)
			}
			checkMapOrder(pass, fn)
		}
	}
	return nil
}

// checkRandImports flags math/rand imports (any version).
func checkRandImports(pass *Pass, f *ast.File) {
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		if path != "math/rand" && path != "math/rand/v2" {
			continue
		}
		if pass.suppressed(imp.Pos(), "allow-rand") {
			continue
		}
		pass.Reportf(imp.Pos(),
			"kernel/build package imports %s; deterministic seeded randomness must come from internal/xrand", path)
	}
}

// checkWalltime verifies every time.Now call in fn is pure duration
// instrumentation: its value is either consumed directly by a Sub
// call, or lands in a variable whose every use is time.Since(v),
// v.Sub(u), u.Sub(v), or reassignment.
func checkWalltime(pass *Pass, fn *ast.FuncDecl) {
	type timer struct {
		obj types.Object
		pos token.Pos
	}
	var timers []timer
	inspectStack(fn.Body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isTimeCall(pass, call, "Now") {
			return true
		}
		if pass.suppressed(call.Pos(), "allow-walltime") {
			return true
		}
		parent := ast.Node(nil)
		if len(stack) > 0 {
			parent = stack[len(stack)-1]
		}
		// time.Now().Sub(u): consumed in place.
		if sel, ok := parent.(*ast.SelectorExpr); ok && sel.Sel.Name == "Sub" {
			return true
		}
		// t := time.Now() / t = time.Now(): defer judgement to t's uses.
		if as, ok := parent.(*ast.AssignStmt); ok && len(as.Lhs) == 1 && len(as.Rhs) == 1 {
			if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
				obj := pass.Info.Defs[id]
				if obj == nil {
					obj = pass.Info.Uses[id]
				}
				if obj != nil {
					timers = append(timers, timer{obj: obj, pos: call.Pos()})
					return true
				}
			}
		}
		pass.Reportf(call.Pos(),
			"%s lets time.Now escape the duration-instrumentation idiom; wall time must not reach outputs (waive with //ihtl:allow-walltime <reason> or annotate the function //ihtl:instrumentation)",
			fn.Name.Name)
		return true
	})
	for _, t := range timers {
		if bad := timerEscapes(pass, fn, t.obj); bad != token.NoPos {
			pass.Reportf(t.pos,
				"%s stores time.Now in %s, which escapes the duration-instrumentation idiom at %s; wall time must not reach outputs (waive with //ihtl:allow-walltime <reason> or annotate the function //ihtl:instrumentation)",
				fn.Name.Name, t.obj.Name(), pass.Fset.Position(bad))
		}
	}
}

// timerEscapes returns the position of the first use of obj that is
// not duration instrumentation, or NoPos when every use is clean.
func timerEscapes(pass *Pass, fn *ast.FuncDecl, obj types.Object) token.Pos {
	bad := token.NoPos
	inspectStack(fn.Body, func(n ast.Node, stack []ast.Node) bool {
		if bad != token.NoPos {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || pass.Info.Uses[id] != obj {
			return true
		}
		if timerUseOK(pass, id, stack) {
			return true
		}
		bad = id.Pos()
		return false
	})
	return bad
}

// timerUseOK reports whether the identifier use at the top of stack is
// one of the legal instrumentation shapes.
func timerUseOK(pass *Pass, id *ast.Ident, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	parent := stack[len(stack)-1]
	switch p := parent.(type) {
	case *ast.AssignStmt:
		// Reassignment target (t = time.Now() again) is fine.
		for _, lhs := range p.Lhs {
			if lhs == ast.Expr(id) {
				return true
			}
		}
	case *ast.SelectorExpr:
		// Receiver of t.Sub(...).
		if p.X == ast.Expr(id) && p.Sel.Name == "Sub" {
			return true
		}
	case *ast.CallExpr:
		// Argument of time.Since(t) or u.Sub(t).
		if isTimeCall(pass, p, "Since") {
			return true
		}
		if sel, ok := ast.Unparen(p.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Sub" {
			if fn, ok := pass.calleeObject(p).(*types.Func); ok && objPkgPath(fn) == "time" {
				return true
			}
		}
	}
	return false
}

// isTimeCall reports whether call invokes time.<name>.
func isTimeCall(pass *Pass, call *ast.CallExpr, name string) bool {
	fn, ok := pass.calleeObject(call).(*types.Func)
	return ok && fn.Name() == name && objPkgPath(fn) == "time"
}

// checkMapOrder flags range-over-map loops whose bodies leak iteration
// order: appending the elements to an outer slice that is not sorted
// in the statements that follow, or compound-accumulating into an
// outer floating-point variable (FP addition is not associative, so
// the rounding depends on visit order).
func checkMapOrder(pass *Pass, fn *ast.FuncDecl) {
	inspectStack(fn.Body, func(n ast.Node, stack []ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if _, isMap := pass.typeOf(rng.X).Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(pass, fn, rng, enclosingBlock(stack))
		return true
	})
}

// enclosingBlock returns the innermost *ast.BlockStmt on the stack.
func enclosingBlock(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		if b, ok := stack[i].(*ast.BlockStmt); ok {
			return b
		}
	}
	return nil
}

func checkMapRangeBody(pass *Pass, fn *ast.FuncDecl, rng *ast.RangeStmt, block *ast.BlockStmt) {
	outer := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			obj = pass.Info.Defs[id]
		}
		if obj == nil || (obj.Pos() >= rng.Pos() && obj.Pos() < rng.End()) {
			return nil // declared inside the loop: order cannot leak out
		}
		return obj
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		// x = append(x, ...) into an outer slice.
		if as.Tok == token.ASSIGN || as.Tok == token.DEFINE {
			for i, rhs := range as.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				if b, ok := pass.calleeObject(call).(*types.Builtin); !ok || b.Name() != "append" {
					continue
				}
				if i >= len(as.Lhs) {
					continue
				}
				obj := outer(as.Lhs[i])
				if obj == nil || sortedAfter(pass, rng, block, obj) || pass.suppressed(as.Pos(), "allow-maporder") {
					continue
				}
				pass.Reportf(as.Pos(),
					"%s appends to %s while ranging over a map and never sorts it; element order depends on map iteration order (sort afterwards or waive with //ihtl:allow-maporder <reason>)",
					fn.Name.Name, obj.Name())
			}
			return true
		}
		// f += x into an outer float: rounding depends on visit order.
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			for _, lhs := range as.Lhs {
				obj := outer(lhs)
				if obj == nil || !isFloat(obj.Type()) {
					continue
				}
				if pass.suppressed(as.Pos(), "allow-maporder") {
					continue
				}
				pass.Reportf(as.Pos(),
					"%s accumulates float %s while ranging over a map; FP rounding depends on map iteration order (accumulate in sorted order or waive with //ihtl:allow-maporder <reason>)",
					fn.Name.Name, obj.Name())
			}
		}
		return true
	})
}

// sortedAfter reports whether a statement after rng in the same block
// sorts obj (slices.Sort*, sort.Slice*, sort.Sort, sort.Strings,
// sort.Ints, sort.Float64s) — the repo's canonical "collect then
// sort" idiom.
func sortedAfter(pass *Pass, rng *ast.RangeStmt, block *ast.BlockStmt, obj types.Object) bool {
	if block == nil {
		return false
	}
	found := false
	for _, stmt := range block.List {
		if stmt.Pos() <= rng.Pos() {
			continue
		}
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn, ok := pass.calleeObject(call).(*types.Func)
			if !ok {
				return true
			}
			pkg := objPkgPath(fn)
			if (pkg != "sort" && pkg != "slices") || !strings.HasPrefix(fn.Name(), "Sort") &&
				!strings.HasPrefix(fn.Name(), "Slice") && fn.Name() != "Strings" &&
				fn.Name() != "Ints" && fn.Name() != "Float64s" {
				return true
			}
			if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
				if u := pass.Info.Uses[id]; u == obj {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			break
		}
	}
	return found
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
