package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// NoPanic enforces error-never-panic decoding of untrusted bytes.
// Functions annotated //ihtl:nopanic — the v2 engine-file parser, the
// chunked-stream validator, the checkpoint decoder — are the module's
// trust boundary: they take attacker-controlled input and must report
// malformed bytes as errors, never as a crash. The pass walks each
// annotated function AND every intra-module function statically
// reachable from it (the transitive-callee walk the shared loader
// makes possible) and rejects the constructs that turn bad input into
// a panic:
//
//   - explicit panic(...) calls;
//   - single-result type assertions x.(T) (comma-ok and type switches
//     stay legal);
//   - calls to Must* helpers (the regexp.MustCompile naming
//     convention: panics on error by contract).
//
// Implicit panics (out-of-range indexing, nil dereference) are the
// compiler's domain; the untrusted decode paths gate those behind
// Validate, and the fuzz suites hammer the gate. A construct that is
// provably unreachable on untrusted input carries //ihtl:allow-panic
// <reason> on its line (e.g. the Validate-gated unchecked decoder).
//
// Calls through interfaces and func values are not walked; keep trust-
// boundary code first-order (it is today) or the walk silently stops.
var NoPanic = &Analyzer{
	Name:      "nopanic",
	Doc:       "reject panics, bare type assertions and Must* calls reachable from //ihtl:nopanic functions",
	RunModule: runNoPanic,
}

func runNoPanic(passes []*Pass) error {
	idx := buildFuncIndex(passes)
	// Collect the annotated roots in deterministic (pass, file) order.
	type root struct {
		fn   *types.Func
		name string
	}
	var roots []root
	for _, pass := range passes {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !funcHasDirective(fd, "nopanic") {
					continue
				}
				if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
					roots = append(roots, root{fn: obj, name: fd.Name.Name})
				}
			}
		}
	}
	// checked tracks functions already verified under some root, so a
	// shared helper is reported once (under the first root reaching it).
	checked := make(map[*types.Func]bool)
	for _, r := range roots {
		walkCallees(idx, r.fn, func(fn *types.Func, e funcEntry) bool {
			if checked[fn] {
				return false // subtree already verified
			}
			checked[fn] = true
			checkNoPanicBody(e.pass, e.decl, r.name)
			return true
		})
	}
	return nil
}

func checkNoPanicBody(pass *Pass, fn *ast.FuncDecl, rootName string) {
	where := fn.Name.Name
	if where != rootName {
		where = fn.Name.Name + " (reachable from //ihtl:nopanic " + rootName + ")"
	}
	report := func(pos ast.Node, format string, args ...any) {
		if pass.suppressed(pos.Pos(), "allow-panic") {
			return
		}
		pass.Reportf(pos.Pos(), format, args...)
	}
	inspectStack(fn.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			callee := pass.calleeObject(n)
			if b, ok := callee.(*types.Builtin); ok && b.Name() == "panic" {
				report(n, "%s must decode errors, not panic; return an error (or waive with //ihtl:allow-panic <reason>)", where)
				return true
			}
			if f, ok := callee.(*types.Func); ok && strings.HasPrefix(f.Name(), "Must") {
				report(n, "%s calls %s, which panics on error by convention; use the error-returning form (or waive with //ihtl:allow-panic <reason>)", where, f.Name())
			}
		case *ast.TypeAssertExpr:
			if n.Type == nil {
				return true // x.(type) in a type switch
			}
			if assertHasCommaOK(stack) {
				return true
			}
			report(n, "%s uses a single-result type assertion, which panics on mismatch; use the v, ok := form (or waive with //ihtl:allow-panic <reason>)", where)
		}
		return true
	})
}

// assertHasCommaOK reports whether the type assertion at the top of
// stack is consumed in a two-result position (v, ok := x.(T)), which
// never panics.
func assertHasCommaOK(stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	// Unwrap parens between the assertion and its consumer.
	i := len(stack) - 1
	for i >= 0 {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			i--
			continue
		}
		break
	}
	if i < 0 {
		return false
	}
	switch p := stack[i].(type) {
	case *ast.AssignStmt:
		return len(p.Lhs) == 2 && len(p.Rhs) == 1
	case *ast.ValueSpec:
		return len(p.Names) == 2 && len(p.Values) == 1
	}
	return false
}
