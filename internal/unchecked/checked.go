//go:build ihtlchecked

// Checked fallbacks for the unchecked kernel accessors (see
// unchecked.go). Built with -tags=ihtlchecked, every accessor is the
// plain indexing expression, so a corrupt index panics at the access
// instead of corrupting memory — the debugging configuration for a
// suspect build or a kernel under development.
package unchecked

// PtrAt returns &s[i], checked.
//
//ihtl:noalloc
func PtrAt[T any](s []T, i int) *T { return &s[i] }

// At returns s[i], checked.
//
//ihtl:noalloc
func At[T any](s []T, i int) T { return s[i] }

// SetAt performs s[i] = v, checked.
//
//ihtl:noalloc
func SetAt[T any](s []T, i int, v T) { s[i] = v }

// AddAt performs s[i] += v, checked.
//
//ihtl:noalloc
func AddAt(s []float64, i int, v float64) { s[i] += v }

// SliceAt returns s[i:i+n:i+n], checked.
//
//ihtl:noalloc
func SliceAt[T any](s []T, i, n int) []T { return s[i : i+n : i+n] }
