//go:build !ihtlchecked

// Package unchecked provides bounds-check-free slice access for the
// //ihtl:nobce kernels. The flipped push, varint decode, sparse pull
// and propagation-blocked bin/drain loops index by graph data —
// vertex IDs, CSR offsets, byte cursors — that no bounds-check-
// elimination analysis can prove in range, so in safe Go every gather
// and scatter in those loops pays a per-edge check. These helpers
// perform the access without it; the ihtlvet -bce gate then pins the
// annotated kernels bounds-check free.
//
// Safety rests on the construction invariants, not on luck: BuildIHTL
// produces indices below the lengths of the slices the kernels pair
// them with, and data of external origin (a v2 engine file) must pass
// Chunked.Validate / parseV2's structural checks before any kernel
// touches it. Code outside the //ihtl:nobce kernel set must not use
// this package.
//
// Building with -tags=ihtlchecked swaps every helper for its checked
// equivalent (see checked.go), restoring index panics for debugging a
// suspect build or a new kernel.
package unchecked

import "unsafe"

// PtrAt returns &s[i] without a bounds check.
//
//ihtl:noalloc
func PtrAt[T any](s []T, i int) *T {
	var zero T
	return (*T)(unsafe.Add(unsafe.Pointer(unsafe.SliceData(s)), uintptr(i)*unsafe.Sizeof(zero)))
}

// At returns s[i] without a bounds check.
//
//ihtl:noalloc
func At[T any](s []T, i int) T { return *PtrAt(s, i) }

// SetAt performs s[i] = v without a bounds check.
//
//ihtl:noalloc
func SetAt[T any](s []T, i int, v T) { *PtrAt(s, i) = v }

// AddAt performs s[i] += v without a bounds check.
//
//ihtl:noalloc
func AddAt(s []float64, i int, v float64) { *PtrAt(s, i) += v }

// SliceAt returns s[i:i+n:i+n] without a bounds check.
//
//ihtl:noalloc
func SliceAt[T any](s []T, i, n int) []T { return unsafe.Slice(PtrAt(s, i), n) }
