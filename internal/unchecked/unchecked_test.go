package unchecked

import "testing"

// TestAccessorsMatchCheckedIndexing pins every accessor to the
// semantics of the plain indexing expression it replaces, for
// in-range indices. The suite runs identically under the default
// build and -tags=ihtlchecked, so both implementations are held to
// the same contract.
func TestAccessorsMatchCheckedIndexing(t *testing.T) {
	s := []float64{10, 20, 30, 40, 50}

	for i := range s {
		if got := At(s, i); got != s[i] {
			t.Errorf("At(s, %d) = %v, want %v", i, got, s[i])
		}
		if got := PtrAt(s, i); got != &s[i] {
			t.Errorf("PtrAt(s, %d) = %p, want %p", i, got, &s[i])
		}
	}

	SetAt(s, 1, -21)
	if s[1] != -21 {
		t.Errorf("SetAt: s[1] = %v, want -21", s[1])
	}

	AddAt(s, 2, 0.5)
	if s[2] != 30.5 {
		t.Errorf("AddAt: s[2] = %v, want 30.5", s[2])
	}

	sub := SliceAt(s, 1, 3)
	if len(sub) != 3 || cap(sub) != 3 {
		t.Fatalf("SliceAt: len/cap = %d/%d, want 3/3", len(sub), cap(sub))
	}
	for j := range sub {
		if &sub[j] != &s[1+j] {
			t.Errorf("SliceAt: element %d does not alias s[%d]", j, 1+j)
		}
	}

	// Writes through the subslice are visible in the parent: same
	// backing array, as with s[i:i+n:i+n].
	sub[0] = 99
	if s[1] != 99 {
		t.Errorf("SliceAt write: s[1] = %v, want 99", s[1])
	}
}

// TestAccessorsGenericTypes exercises a non-float element type so the
// generic instantiations stay covered.
func TestAccessorsGenericTypes(t *testing.T) {
	u := []uint32{7, 8, 9}
	if got := At(u, 2); got != 9 {
		t.Errorf("At(u, 2) = %d, want 9", got)
	}
	SetAt(u, 0, 42)
	if u[0] != 42 {
		t.Errorf("SetAt: u[0] = %d, want 42", u[0])
	}
	if got := SliceAt(u, 0, 2); len(got) != 2 || got[0] != 42 || got[1] != 8 {
		t.Errorf("SliceAt(u, 0, 2) = %v, want [42 8]", got)
	}
}
