package order

import (
	"cmp"
	"slices"

	"ihtl/internal/graph"
)

// SlashBurn implements the hub-removal ordering of Lim, Kang &
// Faloutsos (TKDE 2014). Each round "slashes" the k highest-degree
// vertices of the current giant connected component (assigning them
// the lowest unused IDs) and "burns" the resulting non-giant
// components (assigning their vertices the highest unused IDs,
// largest components first), then recurses on the giant component.
// The result clusters hubs at the front and peels the fringe to the
// back — the canonical structure-aware relabeling baseline.
type SlashBurn struct {
	// K is the number of hubs slashed per round; 0 selects
	// max(1, 0.5% of |V|), the paper's typical setting.
	K int
	// MaxRounds bounds the iteration; 0 selects 1000.
	MaxRounds int
}

// Name implements Algorithm.
func (SlashBurn) Name() string { return "slashburn" }

// Permutation implements Algorithm.
func (s SlashBurn) Permutation(g *graph.Graph) []graph.VID {
	n := g.NumV
	perm := make([]graph.VID, n)
	if n == 0 {
		return perm
	}
	k := s.K
	if k <= 0 {
		k = n / 200
		if k < 1 {
			k = 1
		}
	}
	maxRounds := s.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 1000
	}

	alive := make([]bool, n)
	active := make([]graph.VID, n) // vertices still in the giant component
	for v := range active {
		active[v] = graph.VID(v)
		alive[v] = true
	}
	front := 0
	back := n - 1
	// degree within the remaining subgraph (undirected view).
	deg := make([]int, n)
	recomputeDeg := func() {
		for _, v := range active {
			d := 0
			for _, u := range g.Out(v) {
				if alive[u] {
					d++
				}
			}
			for _, u := range g.In(v) {
				if alive[u] {
					d++
				}
			}
			deg[v] = d
		}
	}

	for round := 0; round < maxRounds && len(active) > 0; round++ {
		if len(active) <= k {
			// Remainder smaller than a slash: order by degree desc
			// at the front and stop.
			recomputeDeg()
			slices.SortFunc(active, func(a, b graph.VID) int {
				if c := cmp.Compare(deg[b], deg[a]); c != 0 {
					return c
				}
				return cmp.Compare(a, b)
			})
			for _, v := range active {
				perm[v] = graph.VID(front)
				front++
				alive[v] = false
			}
			active = nil
			break
		}
		// Slash: remove the k highest-degree vertices.
		recomputeDeg()
		slices.SortFunc(active, func(a, b graph.VID) int {
			if c := cmp.Compare(deg[b], deg[a]); c != 0 {
				return c
			}
			return cmp.Compare(a, b)
		})
		for i := 0; i < k; i++ {
			v := active[i]
			perm[v] = graph.VID(front)
			front++
			alive[v] = false
		}
		rest := active[k:]

		// Burn: find connected components of the remainder
		// (undirected view) with union-find.
		uf := newUnionFind(n)
		for _, v := range rest {
			for _, u := range g.Out(v) {
				if alive[u] {
					uf.union(int32(v), int32(u))
				}
			}
		}
		// Group components and find the giant one.
		comps := make(map[int32][]graph.VID)
		for _, v := range rest {
			r := uf.find(int32(v))
			comps[r] = append(comps[r], v)
		}
		var giant int32 = -1
		giantSize := 0
		for r, members := range comps {
			if len(members) > giantSize {
				giant, giantSize = r, len(members)
			}
		}
		// Non-giant components go to the back, largest first so the
		// very tail holds the smallest fragments; inside a component
		// keep ascending original order.
		type comp struct {
			root    int32
			members []graph.VID
		}
		var spokes []comp
		for r, members := range comps {
			if r != giant {
				spokes = append(spokes, comp{root: r, members: members})
			}
		}
		slices.SortFunc(spokes, func(a, b comp) int {
			if c := cmp.Compare(len(b.members), len(a.members)); c != 0 {
				return c
			}
			return cmp.Compare(a.root, b.root)
		})
		// Assign from the back: later (smaller) components end up at
		// the very end.
		for _, c := range spokes {
			slices.Sort(c.members)
			for i := len(c.members) - 1; i >= 0; i-- {
				perm[c.members[i]] = graph.VID(back)
				back--
				alive[c.members[i]] = false
			}
		}
		if giant < 0 {
			active = nil
			break
		}
		active = comps[giant]
	}
	// Any leftovers (possible only if rounds ran out): place at the
	// front in original order.
	for v := 0; v < n; v++ {
		if alive[v] {
			perm[v] = graph.VID(front)
			front++
		}
	}
	return perm
}
