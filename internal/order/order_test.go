package order

import (
	"sort"
	"testing"

	"ihtl/internal/gen"
	"ihtl/internal/graph"
)

func checkPermutation(t *testing.T, name string, g *graph.Graph, perm []graph.VID) {
	t.Helper()
	if len(perm) != g.NumV {
		t.Fatalf("%s: permutation length %d, want %d", name, len(perm), g.NumV)
	}
	seen := make([]bool, g.NumV)
	for v, id := range perm {
		if int(id) >= g.NumV {
			t.Fatalf("%s: perm[%d]=%d out of range", name, v, id)
		}
		if seen[id] {
			t.Fatalf("%s: duplicate id %d", name, id)
		}
		seen[id] = true
	}
	// The relabeled graph must be valid and structurally identical.
	ng, err := graph.Relabel(g, perm)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if err := ng.Validate(); err != nil {
		t.Fatalf("%s: relabeled graph invalid: %v", name, err)
	}
}

func allAlgorithms() []Algorithm {
	return []Algorithm{
		Identity{},
		DegreeSort{},
		DegreeSort{Kind: 1},
		SlashBurn{},
		SlashBurn{K: 3},
		GOrder{},
		GOrder{W: 2},
		RabbitOrder{},
	}
}

func testGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	rmat, err := gen.RMAT(gen.DefaultRMAT(9, 8, 17))
	if err != nil {
		t.Fatal(err)
	}
	web, err := gen.Web(gen.DefaultWeb(2000, 7))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*graph.Graph{
		"paper": graph.PaperExample(),
		"star":  graph.Star(50),
		"cycle": graph.Cycle(40),
		"rmat":  rmat,
		"web":   web,
	}
}

func TestAllAlgorithmsProduceValidPermutations(t *testing.T) {
	for gname, g := range testGraphs(t) {
		for _, alg := range allAlgorithms() {
			perm := alg.Permutation(g)
			checkPermutation(t, gname+"/"+alg.Name(), g, perm)
		}
	}
}

func TestAlgorithmsOnEmptyAndTiny(t *testing.T) {
	empty, err := graph.Build(0, nil, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	single := graph.MustFromEdges(2, []graph.Edge{{Src: 0, Dst: 1}})
	for _, alg := range allAlgorithms() {
		if p := alg.Permutation(empty); len(p) != 0 {
			t.Errorf("%s: empty graph gave %d ids", alg.Name(), len(p))
		}
		checkPermutation(t, alg.Name()+"/single", single, alg.Permutation(single))
	}
}

func TestDegreeSortOrdersHubsFirst(t *testing.T) {
	g := graph.PaperExample()
	perm := DegreeSort{}.Permutation(g)
	// In-degree ranking: v2 (5), v6 (4) must get ids 0 and 1.
	if perm[2] != 0 || perm[6] != 1 {
		t.Fatalf("degree sort ids: perm[2]=%d perm[6]=%d", perm[2], perm[6])
	}
}

func TestSlashBurnHubsAtFront(t *testing.T) {
	// Star: the hub must get the first id once slashed.
	g := graph.Star(100)
	perm := SlashBurn{K: 1}.Permutation(g)
	if perm[0] != 0 {
		t.Fatalf("star hub got id %d, want 0", perm[0])
	}
	// After removing the hub all leaves are singleton components and
	// must be placed from the back.
	for v := 1; v < 100; v++ {
		if perm[v] == 0 {
			t.Fatalf("leaf %d got the hub slot", v)
		}
	}
}

func TestSlashBurnClustersHubs(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(10, 8, 21))
	if err != nil {
		t.Fatal(err)
	}
	perm := SlashBurn{}.Permutation(g)
	// The vertex with the max total degree must land in the first
	// slash batch (first ~0.5% of ids).
	maxV, maxD := 0, -1
	for v := 0; v < g.NumV; v++ {
		if d := g.Degree(graph.VID(v)); d > maxD {
			maxV, maxD = v, d
		}
	}
	k := g.NumV / 200
	if k < 1 {
		k = 1
	}
	if int(perm[maxV]) >= k {
		t.Fatalf("top hub got id %d, outside first slash of %d", perm[maxV], k)
	}
}

func TestGOrderPlacesNeighboursNearby(t *testing.T) {
	// Two 5-cliques joined by one edge: GOrder must keep each clique
	// contiguous-ish. We check that the mean |perm gap| over edges is
	// far below the random expectation (~n/3).
	var edges []graph.Edge
	clique := func(lo int) {
		for i := 0; i < 5; i++ {
			for j := 0; j < 5; j++ {
				if i != j {
					edges = append(edges, graph.Edge{Src: graph.VID(lo + i), Dst: graph.VID(lo + j)})
				}
			}
		}
	}
	clique(0)
	clique(5)
	edges = append(edges, graph.Edge{Src: 0, Dst: 5})
	g := graph.MustFromEdges(10, edges)
	perm := GOrder{}.Permutation(g)
	checkPermutation(t, "gorder/cliques", g, perm)
	var gapSum, cnt float64
	for v := 0; v < g.NumV; v++ {
		for _, u := range g.Out(graph.VID(v)) {
			d := int(perm[v]) - int(perm[u])
			if d < 0 {
				d = -d
			}
			gapSum += float64(d)
			cnt++
		}
	}
	if mean := gapSum / cnt; mean > 3.5 {
		t.Fatalf("gorder mean edge gap %.2f too large for clique pair", mean)
	}
}

func TestRabbitOrderGroupsCommunities(t *testing.T) {
	// Two dense communities with a single bridge: after Rabbit-Order
	// each community's ids must be contiguous (two blocks).
	var edges []graph.Edge
	dense := func(lo, n int) {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				edges = append(edges,
					graph.Edge{Src: graph.VID(lo + i), Dst: graph.VID(lo + j)},
					graph.Edge{Src: graph.VID(lo + j), Dst: graph.VID(lo + i)})
			}
		}
	}
	dense(0, 8)
	dense(8, 8)
	edges = append(edges, graph.Edge{Src: 0, Dst: 8})
	g := graph.MustFromEdges(16, edges)
	perm := RabbitOrder{}.Permutation(g)
	checkPermutation(t, "rabbit/communities", g, perm)
	// Community A = vertices 0..7. Its new ids must form one block.
	minA, maxA := 1<<30, -1
	for v := 0; v < 8; v++ {
		id := int(perm[v])
		if id < minA {
			minA = id
		}
		if id > maxA {
			maxA = id
		}
	}
	if maxA-minA != 7 {
		t.Fatalf("community A ids span [%d,%d], not contiguous", minA, maxA)
	}
}

func TestRabbitOrderDeterministic(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(8, 8, 2))
	if err != nil {
		t.Fatal(err)
	}
	a := RabbitOrder{}.Permutation(g)
	b := RabbitOrder{}.Permutation(g)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("rabbit order not deterministic")
		}
	}
}

func TestNames(t *testing.T) {
	for _, alg := range allAlgorithms() {
		if alg.Name() == "" {
			t.Error("empty algorithm name")
		}
	}
}

func TestHubSortStructure(t *testing.T) {
	g := graph.PaperExample()
	perm := HubSort{}.Permutation(g)
	checkPermutation(t, "hubsort/paper", g, perm)
	// Average in-degree = 14/8 = 1.75; hubs are vertices with
	// in-degree >= 1.75: v2(5), v4(2), v6(4) -> ranked 2,6,4.
	if perm[2] != 0 || perm[6] != 1 || perm[4] != 2 {
		t.Fatalf("hub ranks wrong: perm[2]=%d perm[6]=%d perm[4]=%d", perm[2], perm[6], perm[4])
	}
	// Non-hubs keep original relative order: 0,1,3,5,7 -> 3,4,5,6,7.
	wantRest := map[graph.VID]graph.VID{0: 3, 1: 4, 3: 5, 5: 6, 7: 7}
	for v, want := range wantRest {
		if perm[v] != want {
			t.Fatalf("non-hub %d got id %d, want %d", v, perm[v], want)
		}
	}
}

func TestHubSortOnRegistryGraphs(t *testing.T) {
	for gname, g := range testGraphs(t) {
		for _, hs := range []HubSort{{}, {Kind: 2, Threshold: 2}} {
			checkPermutation(t, gname+"/hubsort", g, hs.Permutation(g))
		}
	}
}

func TestVEBOBalancesVerticesAndEdges(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(11, 12, 33))
	if err != nil {
		t.Fatal(err)
	}
	v := VEBO{P: 8}
	perm := v.Permutation(g)
	checkPermutation(t, "vebo/rmat", g, perm)

	bounds := v.PartitionBounds(g)
	if len(bounds) != 9 || bounds[0] != 0 || bounds[8] != g.NumV {
		t.Fatalf("bounds %v", bounds)
	}
	rg, err := graph.Relabel(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	capacity := (g.NumV + 7) / 8
	var minE, maxE int64 = 1 << 62, 0
	for i := 0; i < 8; i++ {
		vcount := bounds[i+1] - bounds[i]
		if vcount > capacity {
			t.Fatalf("partition %d has %d vertices, cap %d", i, vcount, capacity)
		}
		var e int64
		for nv := bounds[i]; nv < bounds[i+1]; nv++ {
			e += int64(rg.InDegree(graph.VID(nv)))
		}
		if e < minE {
			minE = e
		}
		if e > maxE {
			maxE = e
		}
	}
	// Edge balance: the greedy keeps the spread tight on power-law
	// inputs unless a single hub exceeds the mean (not the case at
	// this scale). Require max <= 1.5x min.
	if maxE > minE*3/2 {
		t.Fatalf("edge imbalance: min %d max %d", minE, maxE)
	}
}

func TestVEBOSmallAndDegenerate(t *testing.T) {
	for gname, g := range testGraphs(t) {
		for _, p := range []int{0, 1, 3, 1000} {
			perm := VEBO{P: p}.Permutation(g)
			checkPermutation(t, gname+"/vebo", g, perm)
		}
	}
	empty, _ := graph.Build(0, nil, graph.BuildOptions{})
	if len(VEBO{}.Permutation(empty)) != 0 {
		t.Fatal("empty graph should give empty permutation")
	}
	if b := (VEBO{}.PartitionBounds(empty)); len(b) != 1 {
		t.Fatalf("empty bounds %v", b)
	}
}

func TestVEBOHubsSpread(t *testing.T) {
	// The defining property vs plain edge-balanced splitting: the top
	// P hubs land in P DIFFERENT partitions (each is placed before
	// any partition has two hubs, since hubs come first in degree
	// order and the heap rotates through empty partitions).
	g, err := gen.RMAT(gen.DefaultRMAT(10, 10, 44))
	if err != nil {
		t.Fatal(err)
	}
	const p = 4
	v := VEBO{P: p}
	perm := v.Permutation(g)
	bounds := v.PartitionBounds(g)
	partOf := func(newID graph.VID) int {
		for i := 0; i < p; i++ {
			if int(newID) < bounds[i+1] {
				return i
			}
		}
		return -1
	}
	ids := make([]graph.VID, g.NumV)
	for i := range ids {
		ids[i] = graph.VID(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		da, db := g.InDegree(ids[a]), g.InDegree(ids[b])
		if da != db {
			return da > db
		}
		return ids[a] < ids[b]
	})
	seen := map[int]bool{}
	for _, hub := range ids[:p] {
		seen[partOf(perm[hub])] = true
	}
	if len(seen) != p {
		t.Fatalf("top %d hubs occupy only %d partitions", p, len(seen))
	}
}
