package order

import (
	"container/heap"

	"ihtl/internal/graph"
)

// GOrder implements the greedy windowed ordering of Wei, Yu, Lu & Lin
// (SIGMOD 2016). Vertices are emitted one at a time; the next vertex
// is the one maximising the GOrder score against the last W emitted
// vertices, where the score of candidate v against window member u is
//
//	S(u,v) = Sₛ(u,v) + Sₙ(u,v)
//
// with Sₙ counting direct edges between u and v and Sₛ counting
// common in-neighbours (siblings). Keys are maintained incrementally:
// when u enters the window, the key of every out/in-neighbour and
// every 2-hop sibling of u is incremented; when u leaves, the same
// keys are decremented. The 2-hop sweep makes GOrder's preprocessing
// dramatically slower than iHTL's — the paper measures >2000x (Fig 8)
// — which this implementation reproduces by design.
type GOrder struct {
	// W is the window size; 0 selects the paper's 5.
	W int
}

// Name implements Algorithm.
func (GOrder) Name() string { return "gorder" }

// keyHeap is a max-heap with lazy deletion: stale entries are skipped
// at pop time by comparing against the live key array.
type keyHeap struct {
	keys    []int32
	entries []heapEntry
}

type heapEntry struct {
	key int32
	v   graph.VID
}

func (h *keyHeap) Len() int { return len(h.entries) }
func (h *keyHeap) Less(i, j int) bool {
	if h.entries[i].key != h.entries[j].key {
		return h.entries[i].key > h.entries[j].key
	}
	return h.entries[i].v < h.entries[j].v
}
func (h *keyHeap) Swap(i, j int) { h.entries[i], h.entries[j] = h.entries[j], h.entries[i] }
func (h *keyHeap) Push(x any)    { h.entries = append(h.entries, x.(heapEntry)) }
func (h *keyHeap) Pop() any {
	old := h.entries
	n := len(old)
	e := old[n-1]
	h.entries = old[:n-1]
	return e
}

// Permutation implements Algorithm.
func (o GOrder) Permutation(g *graph.Graph) []graph.VID {
	n := g.NumV
	perm := make([]graph.VID, n)
	if n == 0 {
		return perm
	}
	w := o.W
	if w <= 0 {
		w = 5
	}

	keys := make([]int32, n)
	placed := make([]bool, n)
	h := &keyHeap{keys: keys}
	heap.Init(h)

	// adjustFor bumps the keys affected by u entering (+1) or leaving
	// (-1) the window: direct neighbours (Sₙ) and out-neighbours of
	// u's in-neighbours (Sₛ siblings).
	adjustFor := func(u graph.VID, delta int32) {
		bump := func(x graph.VID) {
			if placed[x] || x == u {
				return
			}
			keys[x] += delta
			// Push on decrements too: lazy deletion discards stale
			// entries, and without a fresh entry a downgraded vertex
			// would vanish from the heap entirely.
			heap.Push(h, heapEntry{key: keys[x], v: x})
		}
		for _, x := range g.Out(u) {
			bump(x)
		}
		for _, p := range g.In(u) {
			bump(p)
			for _, x := range g.Out(p) {
				bump(x)
			}
		}
	}

	// Start from the vertex with the largest in-degree, as the
	// reference implementation does.
	start := graph.VID(0)
	best := -1
	for v := 0; v < n; v++ {
		if d := g.InDegree(graph.VID(v)); d > best {
			best, start = d, graph.VID(v)
		}
	}

	window := make([]graph.VID, 0, w)
	emit := func(v graph.VID) {
		placed[v] = true
		if len(window) == w {
			oldest := window[0]
			window = window[1:]
			adjustFor(oldest, -1)
		}
		window = append(window, v)
		adjustFor(v, +1)
	}

	next := 0
	perm[start] = graph.VID(next)
	next++
	emit(start)

	// scan is the fallback cursor for exhausted-heap situations
	// (disconnected remainders all with key 0).
	scan := 0
	for next < n {
		var v graph.VID
		found := false
		for h.Len() > 0 {
			e := heap.Pop(h).(heapEntry)
			if !placed[e.v] && e.key == keys[e.v] {
				v, found = e.v, true
				break
			}
		}
		if !found {
			for placed[scan] {
				scan++
			}
			v = graph.VID(scan)
		}
		perm[v] = graph.VID(next)
		next++
		emit(v)
	}
	return perm
}
