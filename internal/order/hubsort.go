package order

import (
	"cmp"
	"slices"

	"ihtl/internal/graph"
)

// HubSort implements the frequency-based hub ordering used by the
// blocking systems of §5.4 (Cagra, Lav): vertices whose degree is at
// least the average are packed to the front in descending-degree
// order, everyone else keeps the original relative order. Compared to
// full DegreeSort it preserves the initial order of the (numerous)
// cold vertices — exactly the property the paper credits for iHTL's
// own class-internal ordering — while still clustering the hot hubs.
type HubSort struct {
	// Kind 0 sorts hubs by in-degree, 1 by out-degree, 2 by total.
	Kind int
	// Threshold is the hub cut-off as a multiple of the average
	// degree; 0 selects 1.0 (the Cagra/Lav convention).
	Threshold float64
}

// Name implements Algorithm.
func (HubSort) Name() string { return "hub-sort" }

// Permutation implements Algorithm.
func (h HubSort) Permutation(g *graph.Graph) []graph.VID {
	n := g.NumV
	perm := make([]graph.VID, n)
	if n == 0 {
		return perm
	}
	deg := func(v graph.VID) int {
		switch h.Kind {
		case 0:
			return g.InDegree(v)
		case 1:
			return g.OutDegree(v)
		default:
			return g.Degree(v)
		}
	}
	threshold := h.Threshold
	if threshold == 0 {
		threshold = 1
	}
	var total float64
	for v := 0; v < n; v++ {
		total += float64(deg(graph.VID(v)))
	}
	cut := threshold * total / float64(n)

	var hubs []graph.VID
	next := 0
	// Non-hubs receive their final IDs in one order-preserving pass
	// once the hub count is known; first collect hubs.
	for v := 0; v < n; v++ {
		if float64(deg(graph.VID(v))) >= cut {
			hubs = append(hubs, graph.VID(v))
		}
	}
	slices.SortFunc(hubs, func(a, b graph.VID) int {
		if c := cmp.Compare(deg(b), deg(a)); c != 0 {
			return c
		}
		return cmp.Compare(a, b)
	})
	isHub := make([]bool, n)
	for rank, v := range hubs {
		perm[v] = graph.VID(rank)
		isHub[v] = true
	}
	next = len(hubs)
	for v := 0; v < n; v++ {
		if !isHub[v] {
			perm[v] = graph.VID(next)
			next++
		}
	}
	return perm
}
