package order

import (
	"cmp"
	"container/heap"
	"slices"

	"ihtl/internal/graph"
)

// VEBO implements the Vertex- and Edge-Balanced Ordering of Sun,
// Vandierendonck & Nikolopoulos (reference [36] of the paper, whose
// implementation partitions work "by vertex and edge partitioning"):
// vertices are distributed over P partitions so that every partition
// holds both an equal share of vertices AND an equal share of
// in-edges, then renumbered partition by partition. A pull engine
// over contiguous partitions of a VEBO-ordered graph is load-balanced
// in both dimensions, which plain edge-balanced splitting of a skewed
// graph cannot guarantee (a hub-heavy range may hold almost no
// vertices).
//
// The core is the published greedy: process vertices in decreasing
// in-degree, always placing into the partition with the fewest edges
// so far; vertex-count balance is restored by capping partitions at
// ⌈|V|/P⌉ members. Zero-degree-in vertices fill remaining slots.
type VEBO struct {
	// P is the partition count; 0 selects 16.
	P int
}

// Name implements Algorithm.
func (VEBO) Name() string { return "vebo" }

// veboPart is a partition in the least-edges min-heap.
type veboPart struct {
	id    int
	edges int64
	count int
}

type veboHeap []*veboPart

func (h veboHeap) Len() int { return len(h) }
func (h veboHeap) Less(i, j int) bool {
	if h[i].edges != h[j].edges {
		return h[i].edges < h[j].edges
	}
	return h[i].id < h[j].id
}
func (h veboHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *veboHeap) Push(x any)   { *h = append(*h, x.(*veboPart)) }
func (h *veboHeap) Pop() any {
	old := *h
	n := len(old)
	p := old[n-1]
	*h = old[:n-1]
	return p
}

// Permutation implements Algorithm.
func (v VEBO) Permutation(g *graph.Graph) []graph.VID {
	perm := make([]graph.VID, g.NumV)
	next := 0
	for _, ms := range v.assign(g) {
		for _, u := range ms {
			perm[u] = graph.VID(next)
			next++
		}
	}
	return perm
}

// assign runs the greedy and returns each partition's members in
// placement order.
func (v VEBO) assign(g *graph.Graph) [][]graph.VID {
	n := g.NumV
	if n == 0 {
		return nil
	}
	p := v.P
	if p <= 0 {
		p = 16
	}
	if p > n {
		p = n
	}
	capacity := (n + p - 1) / p

	// Decreasing in-degree order (ties by ID for determinism).
	ids := make([]graph.VID, n)
	for i := range ids {
		ids[i] = graph.VID(i)
	}
	slices.SortFunc(ids, func(a, b graph.VID) int {
		if c := cmp.Compare(g.InDegree(b), g.InDegree(a)); c != 0 {
			return c
		}
		return cmp.Compare(a, b)
	})

	parts := make([]*veboPart, p)
	members := make([][]graph.VID, p)
	h := make(veboHeap, p)
	for i := 0; i < p; i++ {
		parts[i] = &veboPart{id: i}
		h[i] = parts[i]
	}
	heap.Init(&h)

	var full []*veboPart
	for _, u := range ids {
		// Take the least-loaded open partition.
		pt := heap.Pop(&h).(*veboPart)
		pt.edges += int64(g.InDegree(u))
		pt.count++
		members[pt.id] = append(members[pt.id], u)
		if pt.count < capacity {
			heap.Push(&h, pt)
		} else {
			full = append(full, pt)
		}
		if h.Len() == 0 {
			// All partitions at capacity (only possible on the last
			// few vertices when n is not a multiple of p): reopen.
			for _, f := range full {
				heap.Push(&h, f)
			}
			full = nil
		}
	}

	return members
}

// PartitionBounds returns the vertex boundaries of the partitions in
// the VEBO-ordered ID space (partition i is [bounds[i], bounds[i+1])),
// for engines that schedule one partition per worker.
func (v VEBO) PartitionBounds(g *graph.Graph) []int {
	members := v.assign(g)
	bounds := make([]int, len(members)+1)
	for i, ms := range members {
		bounds[i+1] = bounds[i] + len(ms)
	}
	return bounds
}
