package order

import (
	"cmp"
	"slices"

	"ihtl/internal/graph"
)

// RabbitOrder implements the community-based ordering of Arai et al.
// (IPDPS 2016): vertices are greedily merged into the neighbouring
// community with the largest modularity gain, level by level, building
// a dendrogram; new IDs are then assigned by depth-first traversal of
// the dendrogram so each community's vertices (and recursively its
// sub-communities') become consecutive. Like the original, merging
// visits vertices in increasing-degree order so low-degree fringe
// collapses into hubs rather than the reverse.
type RabbitOrder struct {
	// MaxLevels bounds the aggregation hierarchy; 0 selects 20.
	MaxLevels int
}

// Name implements Algorithm.
func (RabbitOrder) Name() string { return "rabbit-order" }

// aggEdge is a weighted undirected edge of the aggregated graph.
type aggEdge struct {
	to graph.VID
	w  float64
}

// Permutation implements Algorithm.
func (r RabbitOrder) Permutation(g *graph.Graph) []graph.VID {
	n := g.NumV
	perm := make([]graph.VID, n)
	if n == 0 {
		return perm
	}
	maxLevels := r.MaxLevels
	if maxLevels <= 0 {
		maxLevels = 20
	}

	// Undirected weighted view with multi-edges folded into weights.
	adj := make([][]aggEdge, n)
	var totalW float64
	wmap := make(map[graph.VID]float64)
	for v := 0; v < n; v++ {
		clear(wmap)
		for _, u := range g.Out(graph.VID(v)) {
			if int(u) != v {
				wmap[u]++
			}
		}
		for _, u := range g.In(graph.VID(v)) {
			if int(u) != v {
				wmap[u]++
			}
		}
		lst := make([]aggEdge, 0, len(wmap))
		for u, w := range wmap {
			lst = append(lst, aggEdge{to: u, w: w})
		}
		slices.SortFunc(lst, func(a, b aggEdge) int { return cmp.Compare(a.to, b.to) })
		// Sum after sorting: FP addition is order-sensitive, and map
		// iteration order would leak into totalW (and the final perm).
		for _, e := range lst {
			totalW += e.w
		}
		adj[v] = lst
	}
	totalW /= 2 // each undirected edge seen from both endpoints
	if totalW == 0 {
		return graph.IdentityPerm(n)
	}

	// children[c] is the dendrogram: sub-communities c absorbed, in
	// merge order.
	children := make([][]graph.VID, n)
	strength := make([]float64, n)
	for v := 0; v < n; v++ {
		for _, e := range adj[v] {
			strength[v] += e.w
		}
	}
	alive := make([]graph.VID, n)
	for v := range alive {
		alive[v] = graph.VID(v)
	}

	for level := 0; level < maxLevels && len(alive) > 1; level++ {
		// Visit communities by increasing strength.
		visit := append([]graph.VID(nil), alive...)
		slices.SortFunc(visit, func(a, b graph.VID) int {
			if c := cmp.Compare(strength[a], strength[b]); c != 0 {
				return c
			}
			return cmp.Compare(a, b)
		})
		merged := make(map[graph.VID]graph.VID, len(visit)/2)
		resolve := func(c graph.VID) graph.VID {
			for {
				p, ok := merged[c]
				if !ok {
					return c
				}
				c = p
			}
		}
		moves := 0
		for _, v := range visit {
			if _, gone := merged[v]; gone {
				continue
			}
			// Best neighbour community by modularity gain
			// ΔQ = w(v,c)/m − strength(v)·strength(c)/(2m²).
			var best graph.VID
			bestGain := 0.0
			found := false
			for _, e := range adj[v] {
				c := resolve(e.to)
				if c == v {
					continue
				}
				gain := e.w/totalW - strength[v]*strength[c]/(2*totalW*totalW)
				if gain > 0 && (!found || gain > bestGain || (gain == bestGain && c < best)) {
					best, bestGain, found = c, gain, true
				}
			}
			if !found {
				continue
			}
			merged[v] = best
			children[best] = append(children[best], v)
			strength[best] += strength[v]
			moves++
		}
		if moves == 0 {
			break
		}
		// Contract: route every start-of-level community's edges to
		// its absorber and aggregate weights.
		acc := make(map[graph.VID]map[graph.VID]float64)
		for _, c := range visit {
			rc := resolve(c)
			m := acc[rc]
			if m == nil {
				m = make(map[graph.VID]float64)
				acc[rc] = m
			}
			for _, e := range adj[c] {
				if rt := resolve(e.to); rt != rc {
					m[rt] += e.w
				}
			}
			adj[c] = nil // absorbed lists are dead after routing
		}
		survivors := alive[:0]
		for _, c := range visit {
			if _, gone := merged[c]; gone {
				continue
			}
			survivors = append(survivors, c)
			m := acc[c]
			lst := make([]aggEdge, 0, len(m))
			for u, w := range m {
				lst = append(lst, aggEdge{to: u, w: w})
			}
			slices.SortFunc(lst, func(a, b aggEdge) int { return cmp.Compare(a.to, b.to) })
			adj[c] = lst
		}
		slices.Sort(survivors)
		alive = survivors
	}

	// DFS numbering over the dendrogram with an explicit stack (merge
	// chains can be deep on pathological graphs).
	next := 0
	visited := make([]bool, n)
	stack := make([]graph.VID, 0, 64)
	for _, root := range alive {
		stack = append(stack, root)
		for len(stack) > 0 {
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if visited[c] {
				continue
			}
			visited[c] = true
			perm[c] = graph.VID(next)
			next++
			// Push children reversed so merge order is preserved in
			// the emitted sequence.
			for i := len(children[c]) - 1; i >= 0; i-- {
				stack = append(stack, children[c][i])
			}
		}
	}
	for v := 0; v < n; v++ {
		if !visited[v] {
			perm[v] = graph.VID(next)
			next++
		}
	}
	return perm
}
