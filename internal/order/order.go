// Package order implements the locality-optimizing graph relabeling
// algorithms the paper evaluates iHTL against (§4.5, Figures 1 and 8):
// SlashBurn (Lim, Kang & Faloutsos, TKDE'14), GOrder (Wei et al.,
// SIGMOD'16) and Rabbit-Order (Arai et al., IPDPS'16), plus degree
// sorting as the simplest baseline. Each produces a permutation that
// can be applied with graph.Relabel before running any pull engine.
//
// The implementations are from-scratch Go versions of the published
// algorithms. They keep the algorithmic cores (hub removal +
// connected components; windowed greedy score maximisation;
// hierarchical community aggregation with DFS numbering) and therefore
// also reproduce the paper's preprocessing-cost ordering: GOrder ≫
// SlashBurn ≈ Rabbit-Order ≫ iHTL.
package order

import (
	"cmp"
	"slices"

	"ihtl/internal/graph"
)

// Algorithm is a vertex-relabeling algorithm: Permutation returns
// newID such that vertex v of g is renamed newID[v].
type Algorithm interface {
	Name() string
	Permutation(g *graph.Graph) []graph.VID
}

// Identity returns the identity ordering; useful as the "initial
// order" baseline of Figure 1.
type Identity struct{}

// Name implements Algorithm.
func (Identity) Name() string { return "identity" }

// Permutation implements Algorithm.
func (Identity) Permutation(g *graph.Graph) []graph.VID {
	return graph.IdentityPerm(g.NumV)
}

// DegreeSort orders vertices by descending degree (hubs first), the
// frequency-based ordering the paper notes "other locality optimizing
// algorithms apply ... throughout" (§5.4).
type DegreeSort struct {
	// Kind 0 sorts by in-degree, 1 by out-degree, 2 by total.
	Kind int
}

// Name implements Algorithm.
func (d DegreeSort) Name() string { return "degree-sort" }

// Permutation implements Algorithm.
func (d DegreeSort) Permutation(g *graph.Graph) []graph.VID {
	deg := func(v graph.VID) int {
		switch d.Kind {
		case 0:
			return g.InDegree(v)
		case 1:
			return g.OutDegree(v)
		default:
			return g.Degree(v)
		}
	}
	ids := make([]graph.VID, g.NumV)
	for v := range ids {
		ids[v] = graph.VID(v)
	}
	slices.SortFunc(ids, func(a, b graph.VID) int {
		if c := cmp.Compare(deg(b), deg(a)); c != 0 {
			return c
		}
		return cmp.Compare(a, b)
	})
	perm := make([]graph.VID, g.NumV)
	for rank, v := range ids {
		perm[v] = graph.VID(rank)
	}
	return perm
}

// unionFind is a standard path-halving union-find used by SlashBurn
// and Rabbit-Order.
type unionFind struct {
	parent []int32
	size   []int32
}

func newUnionFind(n int) *unionFind {
	u := &unionFind{parent: make([]int32, n), size: make([]int32, n)}
	for i := range u.parent {
		u.parent[i] = int32(i)
		u.size[i] = 1
	}
	return u
}

func (u *unionFind) find(x int32) int32 {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int32) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
}
