package core

// Version-3 engine-file format: the sharded container. A v3 file holds
// the shard plan, the cross-shard exchange CSR, and a directory of
// embedded, 64-byte-aligned version-2 blobs — one complete v2 engine
// file per shard. Opening a v3 file maps it once and parses each
// shard's blob in place with the v2 reader, so every shard's Index
// arrays and chunked adjacency alias the shared mapping and page in
// lazily, exactly like a single-shard v2 file.
//
// Layout (little-endian, sections padded to 64-byte starts):
//
//	header  magic u64, version u32 = 3, numShards u32,
//	        numV u64, numE u64, hubsPerBlock u32, pad u32,
//	        lenXRows u64, pad → 64 B
//	bounds  [numShards+1]i64 raw
//	xindex  [numV+1]i64 raw
//	xrows   [lenXRows]u32 raw
//	dir     [numShards]{offset u64, length u64} — absolute blob ranges
//	shards  numShards × embedded v2 file, each starting 64-byte aligned
//
// The global relabeling is not stored: NewID/OldID are reconstructed
// from each shard's local arrays and the bounds (sharded-global ID =
// Bounds[s] + localNewID), which costs O(V) ints on open — the same
// arrays a resident build allocates.

import (
	"bufio"
	"bytes"
	"fmt"
	"io"

	"ihtl/internal/atomicio"
	"ihtl/internal/graph"
)

const ihtlVersion3 = uint32(3)

// WriteToV3 serialises the sharded graph in the version-3 container
// format. Each shard's v2 blob is buffered first to learn its size for
// the directory; the exchange and plan sections stream directly.
func (sg *ShardedIHTL) WriteToV3(w io.Writer) (int64, error) {
	blobs := make([]*bytes.Buffer, len(sg.Shards))
	for s, ih := range sg.Shards {
		blobs[s] = &bytes.Buffer{}
		if _, err := ih.WriteToV2(blobs[s]); err != nil {
			return 0, fmt.Errorf("core: shard %d: %w", s, err)
		}
	}
	vw := &v2writer{w: bufio.NewWriterSize(w, 1<<20)}
	vw.u64(ihtlMagic)
	vw.u32(ihtlVersion3)
	vw.u32(uint32(len(sg.Shards)))
	vw.u64(uint64(sg.NumV))
	vw.u64(uint64(sg.NumE))
	vw.u32(uint32(sg.HubsPerBlock))
	vw.u32(0)
	vw.u64(uint64(len(sg.XRows)))
	vw.pad64()
	bounds := make([]int64, len(sg.Bounds))
	for i, b := range sg.Bounds {
		bounds[i] = int64(b)
	}
	vw.rawI64(bounds)
	vw.pad64()
	vw.rawI64(sg.XIndex)
	vw.pad64()
	vw.rawU32(sg.XRows)
	vw.pad64()
	// Directory: blob offsets are known once the directory's own padded
	// size is, since every blob start is the previous end padded to 64.
	dirEnd := vw.n + int64(len(blobs))*16
	dirEnd = (dirEnd + 63) &^ 63
	off := dirEnd
	for _, b := range blobs {
		vw.u64(uint64(off))
		vw.u64(uint64(b.Len()))
		off = (off + int64(b.Len()) + 63) &^ 63
	}
	vw.pad64()
	for _, b := range blobs {
		if vw.err == nil {
			vw.write(b.Bytes())
			vw.pad64()
		}
	}
	if vw.err == nil {
		vw.err = vw.w.Flush()
	}
	return vw.n, vw.err
}

// SaveFileV3 writes the sharded graph to path in the version-3 format,
// atomically replacing any existing file.
func (sg *ShardedIHTL) SaveFileV3(path string) error {
	return atomicio.WriteFile(path, func(w io.Writer) error {
		_, err := sg.WriteToV3(w)
		return err
	})
}

// parseV3 decodes (mostly: aliases) a version-3 byte range into an
// encoded-only ShardedIHTL. Every shard blob passes the full v2
// validation; the plan and exchange sections are checked to the same
// standard because the exchange kernels index by them unchecked.
//
//ihtl:nopanic
func parseV3(data []byte) (*ShardedIHTL, error) {
	c := &v2cursor{data: data}
	magic, err := c.u64()
	if err != nil {
		return nil, err
	}
	if magic != ihtlMagic {
		return nil, fmt.Errorf("core: bad magic %#x", magic)
	}
	version, err := c.u32()
	if err != nil {
		return nil, err
	}
	if version != ihtlVersion3 {
		return nil, fmt.Errorf("core: unsupported version %d", version)
	}
	numShards, err := c.u32()
	if err != nil {
		return nil, err
	}
	numV, err := c.u64()
	if err != nil {
		return nil, err
	}
	numE, err := c.u64()
	if err != nil {
		return nil, err
	}
	hubsPerBlock, err := c.u32()
	if err != nil {
		return nil, err
	}
	if _, err := c.u32(); err != nil { // pad
		return nil, err
	}
	lenXRows, err := c.u64()
	if err != nil {
		return nil, err
	}
	if numShards < 1 || numShards > 1<<20 || numV > 1<<32 || numE > 1<<40 || lenXRows > numE {
		return nil, fmt.Errorf("core: implausible v3 header (shards=%d, V=%d, E=%d, cross=%d)",
			numShards, numV, numE, lenXRows)
	}
	sg := &ShardedIHTL{NumV: int(numV), NumE: int64(numE), HubsPerBlock: int(hubsPerBlock)}
	c.align64()
	bounds, err := c.aliasI64(int(numShards) + 1)
	if err != nil {
		return nil, err
	}
	c.align64()
	sg.Bounds = make([]int, len(bounds))
	for i, b := range bounds {
		if b < 0 || b > int64(numV) || (i > 0 && b < bounds[i-1]) {
			return nil, fmt.Errorf("core: corrupt shard bounds at %d", i)
		}
		sg.Bounds[i] = int(b)
	}
	if sg.Bounds[0] != 0 || sg.Bounds[numShards] != int(numV) {
		return nil, fmt.Errorf("core: shard bounds do not cover [0, %d)", numV)
	}
	if sg.XIndex, err = c.aliasI64(int(numV) + 1); err != nil {
		return nil, err
	}
	c.align64()
	if sg.XIndex[0] != 0 || sg.XIndex[numV] != int64(lenXRows) {
		return nil, fmt.Errorf("core: exchange index does not cover its rows")
	}
	for u := 0; u < int(numV); u++ {
		if sg.XIndex[u+1] < sg.XIndex[u] {
			return nil, fmt.Errorf("core: exchange index not monotone at %d", u)
		}
	}
	if sg.XRows, err = c.aliasU32(int(lenXRows)); err != nil {
		return nil, err
	}
	c.align64()
	for u := 0; u < int(numV); u++ {
		row := sg.XRows[sg.XIndex[u]:sg.XIndex[u+1]]
		for i, d := range row {
			if uint64(d) >= numV {
				return nil, fmt.Errorf("core: exchange row of source %d out of range", u)
			}
			if i > 0 && row[i-1] >= d {
				return nil, fmt.Errorf("core: exchange row of source %d not ascending", u)
			}
		}
	}
	type dirEnt struct{ off, n uint64 }
	dir := make([]dirEnt, numShards)
	for s := range dir {
		if dir[s].off, err = c.u64(); err != nil {
			return nil, err
		}
		if dir[s].n, err = c.u64(); err != nil {
			return nil, err
		}
	}
	sg.Shards = make([]*IHTL, numShards)
	sg.NewID = make([]graph.VID, numV)
	sg.OldID = make([]graph.VID, numV)
	for s := range sg.Shards {
		off, n := dir[s].off, dir[s].n
		if off%64 != 0 || off > uint64(len(data)) || n > uint64(len(data))-off {
			return nil, fmt.Errorf("core: shard %d blob range [%d, %d) invalid", s, off, off+n)
		}
		ih, err := parseV2(data[off : off+n : off+n])
		if err != nil {
			return nil, fmt.Errorf("core: shard %d: %w", s, err)
		}
		lo, hi := sg.Bounds[s], sg.Bounds[s+1]
		if ih.NumV != hi-lo {
			return nil, fmt.Errorf("core: shard %d covers %d vertices, bounds say %d", s, ih.NumV, hi-lo)
		}
		sg.Shards[s] = ih
		for v := lo; v < hi; v++ {
			sg.NewID[v] = graph.VID(lo) + ih.NewID[v-lo]
		}
		for i := lo; i < hi; i++ {
			sg.OldID[i] = graph.VID(lo) + ih.OldID[i-lo]
		}
	}
	if got := sg.LocalEdges() + sg.CrossEdges(); got != sg.NumE {
		return nil, fmt.Errorf("core: shards + exchange cover %d edges, header says %d", got, sg.NumE)
	}
	return sg, nil
}
