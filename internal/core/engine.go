package core

import (
	"fmt"
	"time"

	"ihtl/internal/sched"
	"ihtl/internal/spmv"
)

// Engine executes Algorithm 3 over a built IHTL graph: push the
// flipped blocks into per-thread hub buffers, merge the buffers, then
// pull the sparse block. It implements spmv.Stepper.
//
// The engine operates in iHTL (relabeled) vertex-ID space; use
// IHTL.NewID/OldID or the PermuteToNew/PermuteToOld helpers to move
// vectors between ID spaces.
type Engine struct {
	ih            *IHTL
	pool          *sched.Pool
	atomicFlipped bool

	// bufs[w] is worker w's private accumulation buffer over all
	// hubs — "each thread buffers B * #fb vertex data" (§3.4). With
	// B sized to L2/8, one buffer per flipped block fits L2.
	bufs [][]float64
	// blockTasks are (block, source-chunk) pairs; a worker claims one
	// at a time, so it processes a single flipped block at a time as
	// §3.4 requires.
	blockTasks []blockTask
	// sparseBounds are edge-balanced destination ranges of the
	// sparse block.
	sparseBounds []int

	breakdown Breakdown
}

type blockTask struct {
	block  int
	lo, hi int // source range
}

// Breakdown accumulates wall-clock time per Algorithm 3 phase across
// Steps; Table 5's "FB Time" and "Buffer Merging" columns divide
// these by the total.
type Breakdown struct {
	Flipped time.Duration
	Merge   time.Duration
	Sparse  time.Duration
	Steps   int
}

// Total returns the summed phase time.
func (b Breakdown) Total() time.Duration { return b.Flipped + b.Merge + b.Sparse }

// FlippedFrac returns the fraction of time spent pushing flipped
// blocks (0 when no Steps ran).
func (b Breakdown) FlippedFrac() float64 {
	if t := b.Total(); t > 0 {
		return float64(b.Flipped) / float64(t)
	}
	return 0
}

// MergeFrac returns the fraction of time spent merging buffers.
func (b Breakdown) MergeFrac() float64 {
	if t := b.Total(); t > 0 {
		return float64(b.Merge) / float64(t)
	}
	return 0
}

// EngineOptions tunes the Algorithm 3 engine.
type EngineOptions struct {
	// AtomicFlipped processes flipped blocks with atomic updates
	// directly into the hub data instead of per-thread buffers. The
	// paper chose buffering "as it is more efficient in the setting
	// of iHTL" (§3.4); this option exists to ablate that choice.
	AtomicFlipped bool
}

// NewEngine prepares an Algorithm 3 engine on the given pool with
// default options. The pool is borrowed, not owned.
func NewEngine(ih *IHTL, pool *sched.Pool) (*Engine, error) {
	return NewEngineOpts(ih, pool, EngineOptions{})
}

// NewEngineOpts is NewEngine with explicit options.
func NewEngineOpts(ih *IHTL, pool *sched.Pool, opt EngineOptions) (*Engine, error) {
	if ih == nil || pool == nil {
		return nil, fmt.Errorf("core: nil IHTL or pool")
	}
	e := &Engine{ih: ih, pool: pool, atomicFlipped: opt.AtomicFlipped}
	if !e.atomicFlipped {
		e.bufs = make([][]float64, pool.Workers())
		for w := range e.bufs {
			e.bufs[w] = make([]float64, ih.NumHubs)
		}
	}
	// Edge-balanced source chunks per flipped block: the per-block
	// CSR index arrays give exact per-source edge counts.
	chunksPerBlock := pool.Workers() * 4
	for b := range ih.Blocks {
		fb := &ih.Blocks[b]
		if fb.NumEdges() == 0 {
			continue
		}
		bounds := sched.EdgeBalancedParts(fb.Index, chunksPerBlock)
		for c := 0; c < len(bounds)-1; c++ {
			if bounds[c] < bounds[c+1] {
				e.blockTasks = append(e.blockTasks, blockTask{block: b, lo: bounds[c], hi: bounds[c+1]})
			}
		}
	}
	if n := ih.NumV - ih.Sparse.DestLo; n > 0 {
		e.sparseBounds = sched.EdgeBalancedParts(ih.Sparse.Index, pool.Workers()*4)
	}
	return e, nil
}

// NumVertices implements spmv.Stepper.
func (e *Engine) NumVertices() int { return e.ih.NumV }

// Graph returns the engine's iHTL graph.
func (e *Engine) Graph() *IHTL { return e.ih }

// TakeBreakdown returns the accumulated phase breakdown and resets it.
func (e *Engine) TakeBreakdown() Breakdown {
	b := e.breakdown
	e.breakdown = Breakdown{}
	return b
}

// Step computes dst[v] = Σ_{u ∈ N⁻(v)} src[u] in iHTL ID space.
// src and dst must have length NumV and must not alias.
func (e *Engine) Step(src, dst []float64) {
	ih := e.ih
	if len(src) != ih.NumV || len(dst) != ih.NumV {
		panic("core: vector length mismatch")
	}

	// Phase 1 — push traversal of the flipped blocks (Alg. 3 l.1-4).
	t0 := time.Now()
	if e.atomicFlipped {
		// Ablation path: skip the buffers and CAS straight into the
		// hub data. Requires zeroed hub slots first.
		e.pool.ForStatic(ih.NumHubs, func(w, lo, hi int) {
			clear(dst[lo:hi])
		})
		e.pool.ForEachPart(len(e.blockTasks), func(w, task int) {
			bt := e.blockTasks[task]
			fb := &ih.Blocks[bt.block]
			dsts := fb.Dsts
			for s := bt.lo; s < bt.hi; s++ {
				x := src[s]
				if x == 0 {
					continue
				}
				for i := fb.Index[s]; i < fb.Index[s+1]; i++ {
					spmv.AtomicAddFloat64(&dst[dsts[i]], x)
				}
			}
		})
	} else {
		e.pool.ForEachPart(len(e.blockTasks), func(w, task int) {
			bt := e.blockTasks[task]
			fb := &ih.Blocks[bt.block]
			buf := e.bufs[w]
			dsts := fb.Dsts
			for s := bt.lo; s < bt.hi; s++ {
				x := src[s]
				if x == 0 {
					continue
				}
				for i := fb.Index[s]; i < fb.Index[s+1]; i++ {
					buf[dsts[i]] += x
				}
			}
		})
	}
	t1 := time.Now()

	// Phase 2 — aggregate thread buffers into hub data (l.5-7),
	// clearing each buffer entry after reading so the buffers are
	// ready for the next iteration without a separate reset sweep.
	// The atomic ablation wrote hub data in phase 1 already.
	if !e.atomicFlipped {
		bufs := e.bufs
		e.pool.ForStatic(ih.NumHubs, func(w, lo, hi int) {
			for h := lo; h < hi; h++ {
				sum := 0.0
				for t := range bufs {
					sum += bufs[t][h]
					bufs[t][h] = 0
				}
				dst[h] = sum
			}
		})
	}
	t2 := time.Now()

	// Phase 3 — pull traversal of the sparse block (l.8-10).
	sp := &ih.Sparse
	nparts := len(e.sparseBounds) - 1
	if nparts > 0 {
		e.pool.ForEachPart(nparts, func(w, part int) {
			lo, hi := e.sparseBounds[part], e.sparseBounds[part+1]
			for i := lo; i < hi; i++ {
				sum := 0.0
				for j := sp.Index[i]; j < sp.Index[i+1]; j++ {
					sum += src[sp.Srcs[j]]
				}
				dst[sp.DestLo+i] = sum
			}
		})
	}
	t3 := time.Now()

	e.breakdown.Flipped += t1.Sub(t0)
	e.breakdown.Merge += t2.Sub(t1)
	e.breakdown.Sparse += t3.Sub(t2)
	e.breakdown.Steps++
}

// PermuteToNew scatters a vector indexed by original IDs into iHTL ID
// order: out[NewID[v]] = in[v].
func (ih *IHTL) PermuteToNew(in, out []float64) {
	if len(in) != ih.NumV || len(out) != ih.NumV {
		panic("core: vector length mismatch")
	}
	for v, nv := range ih.NewID {
		out[nv] = in[v]
	}
}

// PermuteToOld is the inverse of PermuteToNew: out[v] = in[NewID[v]].
func (ih *IHTL) PermuteToOld(in, out []float64) {
	if len(in) != ih.NumV || len(out) != ih.NumV {
		panic("core: vector length mismatch")
	}
	for v, nv := range ih.NewID {
		out[v] = in[nv]
	}
}
