package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"ihtl/internal/faultinject"
	"ihtl/internal/sched"
	"ihtl/internal/spmv"
)

// Engine executes Algorithm 3 over a built IHTL graph: push the
// flipped blocks into per-thread hub buffers, merge the buffers, then
// pull the sparse block. It implements spmv.Stepper.
//
// By default the three phases run as a SINGLE fused pool dispatch:
// workers claim flipped tasks and sparse partitions with range
// stealing, and each flipped block's merge is gated only on that
// block's completion counter — not on a global barrier. This is safe
// because the destinations are disjoint: merges write dst[0, NumHubs)
// and the sparse pull writes dst[DestLo, NumV). The pre-fusion
// three-dispatch pipeline remains available via EngineOptions.Phased
// for ablation.
//
// The engine operates in iHTL (relabeled) vertex-ID space; use
// IHTL.NewID/OldID or the PermuteToNew/PermuteToOld helpers to move
// vectors between ID spaces.
type Engine struct {
	ih            *IHTL
	pool          *sched.Pool
	atomicFlipped bool
	phased        bool
	// nworkers is the number of distinct worker indices this engine's
	// per-worker state (buffers, clocks, schedulers, barriers) is sized
	// for. It equals pool.Workers() for a standalone engine; a sharded
	// engine's sub-engines are sized for their shard's worker GROUP and
	// receive group-local indices from the sharded dispatch.
	nworkers int

	// encoding is the resolved block encoding; varint mirrors
	// encoding == EncodingVarint for branch-cheap hot-path checks.
	// Under varint the flipped tasks are encoded chunks decoded into
	// encScratch[w] inside the dispatch loop, and the sparse pull
	// decodes rows at sparseRowOff[i] straight into their sums; see
	// encoding.go.
	encoding     BlockEncoding
	varint       bool
	encScratch   []encScratch
	sparseRowOff []int64

	// bufs[w] is worker w's private accumulation buffer over all
	// hubs — "each thread buffers B * #fb vertex data" (§3.4). With
	// B sized to L2/8, one buffer per flipped block fits L2.
	bufs [][]float64
	// blockTasks are (block, source-chunk) pairs; a worker claims one
	// at a time, so it processes a single flipped block at a time as
	// §3.4 requires. Tasks are ordered by block, so the contiguous
	// ranges handed out by the steal scheduler keep a worker inside
	// one block's buffer as long as possible.
	blockTasks []blockTask
	// tasksPerBlock[b] is the number of blockTasks targeting block b;
	// it arms the per-block completion counters each Step.
	tasksPerBlock []int
	// emptyBlocks lists blocks with no tasks at all; their hub slots
	// still need zeroing each fused Step.
	emptyBlocks []int
	// sparseBounds are edge-balanced destination ranges of the
	// sparse block.
	sparseBounds []int

	// sparseKernel is the resolved sparse-block kernel (never
	// SparseAuto after construction); see sparse.go.
	sparseKernel SparseKernel
	// heavyBounds/lightBounds are the SparsePullDegree schedule:
	// edge-balanced parts over the build-time heavy-row list, and
	// coarse chunks over the remaining short rows.
	heavyBounds []int
	lightBounds []int
	// pb is the SparsePB bin/drain state; auxSched claims its drain
	// buckets (and SparsePullDegree's heavy parts); binBarrier
	// separates the bin and drain phases inside the fused dispatch.
	pb         *pbState
	auxSched   *sched.StealScheduler
	binBarrier *sched.Barrier

	// Fused-dispatch state. flipSched and sparseSched are persistent
	// per-engine steal schedulers (allocated once, Reset per Step);
	// blockGate holds one countdown latch per flipped block; dirty
	// tracks, per (worker, block), the hub range the worker actually
	// touched so merges read only buffers that were written.
	flipSched   *sched.StealScheduler
	sparseSched *sched.StealScheduler
	blockGate   *sched.Countdowns
	dirty       []dirtyRange // indexed worker*len(Blocks)+block
	// staticFlip (EngineOptions.StaticFlipped) replaces flipped-task
	// stealing with the fixed per-worker ranges in flipBounds;
	// flipCursors are the per-step claim positions.
	staticFlip  bool
	flipBounds  []int
	flipCursors []flipCursor
	// hubClearBounds and clearBarrier serve the AtomicFlipped fused
	// path: workers cooperatively zero the hub slots, cross the
	// barrier, then push with CAS.
	hubClearBounds []int
	clearBarrier   *sched.Barrier
	// fusedJob is the prebuilt worker body (capturing only e), so a
	// fused Step allocates nothing; curSrc/curDst stage its vectors.
	fusedJob       func(w int)
	curSrc, curDst []float64
	// StepEpi state: the staged epilogue, the barrier its workers
	// cross once dst is complete, and the prebuilt dispatch body the
	// phased pipeline runs it under.
	curEpi       func(w, lo, hi int)
	epiBarrier   *sched.Barrier
	phasedEpiJob func(w int)

	// batch is the K-wide state of StepBatch, allocated on first use
	// of a width and reused while the width is stable.
	batch *batchState

	// Numeric-health watchdog state. health is the configured policy;
	// healthArmed stages whether the in-flight step scans (policy on,
	// Every-th step); healthBad are the per-worker padded bad-element
	// counters the fused epilogue scan fills; healthErr is the verdict
	// collected after the dispatch; curK is the staged lane width the
	// scan must cover (1 for scalar steps).
	health      spmv.HealthPolicy
	healthArmed bool
	healthBad   []healthSlot
	healthErr   *spmv.NumericError
	curK        int
	// healthScanJob is the prebuilt scan body the phased pipeline
	// dispatches separately (the fused pipeline folds the scan into
	// runEpilogue).
	healthScanJob func(w, lo, hi int)

	// clocks accumulate per-worker busy time per phase, cache-line
	// padded so the frequent updates don't false-share.
	clocks []workerClock

	breakdown Breakdown
}

type blockTask struct {
	block  int
	lo, hi int // source range
	// chunk is the encoded-chunk ordinal of the task under the varint
	// encoding (the source range then equals the chunk's row range);
	// unused under flat.
	chunk int
	// dLo, dHi bound the hub IDs this task's edges can write
	// (precomputed at build). Tracking the dirty range per task
	// instead of per edge keeps the push inner loop identical to the
	// phased pipeline's; the range is conservative (a source with a
	// zero value still widens it), which is sound because untouched
	// buffer slots hold the additive identity.
	dLo, dHi int
}

// buildBlockTasks cuts each flipped block into edge-balanced source
// chunks — tasks — and precomputes each task's hub destination range.
// It also returns the task count per block (arming the fused merge
// countdowns) and the blocks with no tasks at all, whose hub slots
// must still be initialised each Step.
func buildBlockTasks(ih *IHTL, chunksPerBlock int) (tasks []blockTask, perBlock, empty []int) {
	perBlock = make([]int, len(ih.Blocks))
	for b := range ih.Blocks {
		fb := &ih.Blocks[b]
		if fb.NumEdges() == 0 {
			empty = append(empty, b)
			continue
		}
		bounds := sched.EdgeBalancedParts(fb.Index, chunksPerBlock)
		for c := 0; c < len(bounds)-1; c++ {
			lo, hi := bounds[c], bounds[c+1]
			if lo >= hi {
				continue
			}
			t := blockTask{block: b, lo: lo, hi: hi}
			for i := fb.Index[lo]; i < fb.Index[hi]; i++ {
				d := int(fb.Dsts[i])
				if t.dHi == t.dLo { // first edge
					t.dLo, t.dHi = d, d+1
					continue
				}
				if d < t.dLo {
					t.dLo = d
				}
				if d+1 > t.dHi {
					t.dHi = d + 1
				}
			}
			tasks = append(tasks, t)
			perBlock[b]++
		}
		if perBlock[b] == 0 {
			empty = append(empty, b)
		}
	}
	return tasks, perBlock, empty
}

// dirtyRange is a half-open hub interval; empty when hi <= lo.
type dirtyRange struct {
	lo, hi int
}

// healthSlot is one worker's non-finite tally, padded to a cache line.
type healthSlot struct {
	count int64
	first int64
	_     [6]int64
}

// flipCursor is one worker's claim position inside its static
// flipped-task range (StaticFlipped engines), padded to a cache line
// so neighbouring workers' claims do not share one.
type flipCursor struct {
	next, hi int
	_        [6]int64
}

// workerClock is one worker's per-phase busy time, padded to a cache
// line. The sparse field covers the pull kernels; the propagation-
// blocked kernel splits its time into bin and drain instead, so the
// stepjson per-phase breakdown stays honest for either kernel.
type workerClock struct {
	flipped time.Duration
	merge   time.Duration
	sparse  time.Duration
	bin     time.Duration
	drain   time.Duration
	_       [3]int64
}

// Breakdown accumulates time per Algorithm 3 phase across Steps;
// Table 5's "FB Time" and "Buffer Merging" columns divide these by the
// total.
//
// Two views are kept. The *busy* fields sum, over workers, the time
// each worker actually spent executing a phase; the fused pipeline
// records them, since fused phases have no wall-clock boundaries to
// time. The *wall* fields (Flipped/Merge/Sparse) are the elapsed time
// of each barriered phase and are only recorded by the phased
// pipeline, whose barriers define them; they include the barrier wait
// behind the slowest worker. Wall is the elapsed time of whole Steps
// (including any fused StepEpi epilogue) under either pipeline, so
// the phase columns never double-count it.
type Breakdown struct {
	Flipped time.Duration // phased only: elapsed flipped phase
	Merge   time.Duration // phased only: elapsed merge phase
	Sparse  time.Duration // phased only: elapsed sparse phase

	FlippedBusy time.Duration // Σ workers' in-phase busy time
	MergeBusy   time.Duration
	SparseBusy  time.Duration
	// BinBusy/DrainBusy split the sparse phase of the propagation-
	// blocked kernel (SparsePB); the pull kernels leave them zero and
	// record SparseBusy instead.
	BinBusy   time.Duration
	DrainBusy time.Duration
	// ExchangeBinBusy/ExchangeDrainBusy are the sharded engine's cross-
	// shard exchange phases (see sharded.go); single-shard engines leave
	// them zero.
	ExchangeBinBusy   time.Duration
	ExchangeDrainBusy time.Duration

	Wall  time.Duration // elapsed time of all Steps
	Steps int
}

// SparseTotalBusy returns the summed busy time of the sparse phase
// under any kernel: the pull kernels' SparseBusy plus the PB kernel's
// bin and drain halves.
func (b Breakdown) SparseTotalBusy() time.Duration {
	return b.SparseBusy + b.BinBusy + b.DrainBusy
}

// Total returns the elapsed time of all Steps: the measured wall time
// when available, otherwise the summed phase walls.
func (b Breakdown) Total() time.Duration {
	if b.Wall > 0 {
		return b.Wall
	}
	return b.Flipped + b.Merge + b.Sparse
}

// TotalBusy returns the summed per-worker busy time across phases.
func (b Breakdown) TotalBusy() time.Duration {
	return b.FlippedBusy + b.MergeBusy + b.SparseTotalBusy() + b.ExchangeBinBusy + b.ExchangeDrainBusy
}

// FlippedFrac returns the fraction of time spent pushing flipped
// blocks (0 when no Steps ran). Busy time is preferred — it is
// attributable under fusion and does not double-count scheduler idle
// time; the wall split is the fallback for breakdowns recorded by
// older phased-only runs.
func (b Breakdown) FlippedFrac() float64 {
	if t := b.TotalBusy(); t > 0 {
		return float64(b.FlippedBusy) / float64(t)
	}
	if t := b.Flipped + b.Merge + b.Sparse; t > 0 {
		return float64(b.Flipped) / float64(t)
	}
	return 0
}

// MergeFrac returns the fraction of time spent merging buffers.
func (b Breakdown) MergeFrac() float64 {
	if t := b.TotalBusy(); t > 0 {
		return float64(b.MergeBusy) / float64(t)
	}
	if t := b.Flipped + b.Merge + b.Sparse; t > 0 {
		return float64(b.Merge) / float64(t)
	}
	return 0
}

// EngineOptions tunes the Algorithm 3 engine.
type EngineOptions struct {
	// AtomicFlipped processes flipped blocks with atomic updates
	// directly into the hub data instead of per-thread buffers. The
	// paper chose buffering "as it is more efficient in the setting
	// of iHTL" (§3.4); this option exists to ablate that choice.
	AtomicFlipped bool
	// Phased selects the pre-fusion pipeline — three barriered pool
	// dispatches per Step (flipped, merge, sparse) with an
	// O(workers x NumHubs) merge sweep — for ablating the fused
	// single-dispatch pipeline.
	Phased bool
	// StaticFlipped pins the flipped-task → worker assignment to a
	// fixed partition instead of range stealing. Merges already fold
	// worker buffers in ascending worker order and every sparse kernel
	// sums each destination in an order that is a pure function of the
	// topology, so with this option the ONLY remaining source of
	// run-to-run float variance — which worker accumulated which
	// partial sum — is gone: Step and StepBatch become bit-for-bit
	// reproducible across runs for a fixed worker count. The serving
	// layer's replay guarantees (checkpoint warm restart, coalesced
	// lane == solo run) are built on this mode; the price is losing
	// the steal scheduler's load balancing on skewed blocks.
	// Incompatible with AtomicFlipped, whose CAS merge order is
	// schedule-dependent by nature.
	StaticFlipped bool
	// Health arms the opt-in numeric watchdog: the SpMV result vector
	// is scanned for NaN/±Inf after each (Every-th) step, fused into
	// the epilogue sweep on the fused pipeline. See spmv.HealthPolicy.
	Health spmv.HealthPolicy
	// SparseKernel selects the sparse-block kernel: SparseAuto (the
	// measured default), SparsePull, SparsePullDegree or SparsePB.
	// All three produce bit-for-bit identical results; they differ in
	// memory-access shape and scheduling. See sparse.go.
	SparseKernel SparseKernel
	// BlockEncoding selects the adjacency representation the engine
	// traverses: EncodingAuto (varint when only the encoded topology
	// is resident, flat otherwise), EncodingFlat or EncodingVarint.
	// All pipelines are bit-for-bit identical under either encoding.
	// See encoding.go.
	BlockEncoding BlockEncoding
	// Shards splits execution into N contiguous vertex-range shards,
	// each with its own flipped + sparse blocks, hub buffers and degree
	// buckets, joined by a deterministic cross-shard exchange phase.
	// 0 or 1 selects today's single-shard engine. Sharding partitions
	// the ORIGINAL graph, so the option is honoured by the public
	// ihtl.NewEngineOpts (which routes to BuildSharded +
	// NewShardedEngineOpts); core.NewEngineOpts over an already built
	// IHTL rejects Shards > 1. See sharded.go.
	Shards int
}

// NewEngine prepares an Algorithm 3 engine on the given pool with
// default options. The pool is borrowed, not owned.
func NewEngine(ih *IHTL, pool *sched.Pool) (*Engine, error) {
	return NewEngineOpts(ih, pool, EngineOptions{})
}

// NewEngineOpts is NewEngine with explicit options. Options asking for
// more than one shard are rejected here: sharding partitions the
// ORIGINAL graph before iHTL construction, so it enters through
// BuildSharded + NewShardedEngineOpts (or the public ihtl.NewEngineOpts,
// which routes EngineOptions.Shards there).
func NewEngineOpts(ih *IHTL, pool *sched.Pool, opt EngineOptions) (*Engine, error) {
	if opt.Shards > 1 {
		return nil, fmt.Errorf("core: NewEngineOpts cannot shard a built IHTL (want NewShardedEngineOpts over a BuildSharded graph)")
	}
	if pool == nil {
		return nil, fmt.Errorf("core: nil IHTL or pool")
	}
	return newEngineWorkers(ih, pool, opt, pool.Workers())
}

// newEngineWorkers is NewEngineOpts with an explicit worker count: the
// number of distinct worker indices the engine's per-worker state is
// sized for. The sharded engine builds its sub-engines with each
// shard's GROUP size and drives their worker bodies with group-local
// indices inside its own single dispatch.
func newEngineWorkers(ih *IHTL, pool *sched.Pool, opt EngineOptions, nworkers int) (*Engine, error) {
	if ih == nil || pool == nil {
		return nil, fmt.Errorf("core: nil IHTL or pool")
	}
	if nworkers < 1 || nworkers > pool.Workers() {
		return nil, fmt.Errorf("core: engine worker count %d outside [1, %d]", nworkers, pool.Workers())
	}
	e := &Engine{ih: ih, pool: pool, atomicFlipped: opt.AtomicFlipped, phased: opt.Phased, health: opt.Health, nworkers: nworkers}
	if !e.atomicFlipped {
		e.bufs = make([][]float64, nworkers)
		for w := range e.bufs {
			e.bufs[w] = make([]float64, ih.NumHubs)
		}
	}
	e.initEncoding(opt.BlockEncoding)
	if e.varint {
		// One task per encoded chunk: the chunk's decode scratch is
		// the cache-resident working set, so it is the steal granule.
		e.blockTasks, e.tasksPerBlock, e.emptyBlocks = buildBlockTasksEnc(ih)
	} else {
		// Edge-balanced source chunks per flipped block: the per-block
		// CSR index arrays give exact per-source edge counts.
		e.blockTasks, e.tasksPerBlock, e.emptyBlocks = buildBlockTasks(ih, nworkers*4)
	}
	if n := ih.NumV - ih.Sparse.DestLo; n > 0 {
		e.sparseBounds = sched.EdgeBalancedParts(ih.Sparse.Index, nworkers*4)
	}
	e.initSparseKernel(opt.SparseKernel)
	if opt.StaticFlipped {
		if opt.AtomicFlipped {
			return nil, fmt.Errorf("core: StaticFlipped is incompatible with AtomicFlipped (CAS merge order is schedule-dependent)")
		}
		e.staticFlip = true
		e.flipBounds = make([]int, nworkers+1)
		for wi := 0; wi < nworkers; wi++ {
			lo, hi := sched.SplitRange(len(e.blockTasks), nworkers, wi)
			e.flipBounds[wi], e.flipBounds[wi+1] = lo, hi
		}
		e.flipCursors = make([]flipCursor, nworkers)
	}
	w := nworkers
	e.flipSched = sched.NewStealScheduler(w)
	e.sparseSched = sched.NewStealScheduler(w)
	e.blockGate = sched.NewCountdowns(len(ih.Blocks))
	e.dirty = make([]dirtyRange, w*len(ih.Blocks))
	e.clocks = make([]workerClock, w)
	if e.atomicFlipped && ih.NumHubs > 0 {
		e.hubClearBounds = sched.VertexBalancedParts(ih.NumHubs, w)
		e.clearBarrier = sched.NewBarrier(w)
	}
	if e.atomicFlipped {
		e.fusedJob = e.fusedWorkerAtomic
	} else {
		e.fusedJob = e.fusedWorkerBuffered
	}
	e.epiBarrier = sched.NewBarrier(w)
	e.phasedEpiJob = func(worker int) {
		lo, hi := sched.SplitRange(e.ih.NumV, e.nworkers, worker)
		e.curEpi(worker, lo, hi)
	}
	e.healthBad = make([]healthSlot, w)
	e.healthScanJob = e.healthScan
	e.curK = 1
	return e, nil
}

// Workers returns the number of distinct worker indices a StepEpi
// epilogue can observe. It equals the pool's worker count for engines
// built with NewEngineOpts; a sharded engine's sub-engines are sized
// for their shard group instead.
func (e *Engine) Workers() int { return e.nworkers }

// NumVertices implements spmv.Stepper.
func (e *Engine) NumVertices() int { return e.ih.NumV }

// Graph returns the engine's iHTL graph.
func (e *Engine) Graph() *IHTL { return e.ih }

// TakeBreakdown returns the accumulated phase breakdown and resets it.
func (e *Engine) TakeBreakdown() Breakdown {
	b := e.breakdown
	e.breakdown = Breakdown{}
	return b
}

// Step computes dst[v] = Σ_{u ∈ N⁻(v)} src[u] in iHTL ID space.
// src and dst must have length NumV and must not alias.
//
//ihtl:noalloc
func (e *Engine) Step(src, dst []float64) { e.StepEpi(src, dst, nil) }

// StepEpi is Step followed by an element-wise epilogue: every worker
// runs epi(w, lo, hi) over its static share [lo, hi) of [0, NumV)
// once all of dst is complete. Under the fused pipeline the epilogue
// runs INSIDE the same dispatch, behind an internal barrier, so a
// whole analytic iteration — SpMV plus e.g. PageRank's damping/delta/
// contribution sweep — costs a single pool round-trip. The phased
// pipeline runs it as a separate dispatch. epi may be nil.
//
//ihtl:noalloc
func (e *Engine) StepEpi(src, dst []float64, epi func(w, lo, hi int)) {
	if herr := e.stepEpi(src, dst, epi); herr != nil {
		e.panicHealth(herr)
	}
}

// panicHealth raises a watchdog verdict from the plain (non-ctx)
// entrypoints, which have no error return; StepEpiCtx returns it
// instead.
func (e *Engine) panicHealth(herr *spmv.NumericError) {
	panic(herr)
}

// stepEpi is the shared body of StepEpi and StepEpiCtx: one scalar
// step plus epilogue, returning the numeric-health verdict (nil when
// the watchdog is off, scanning a different step, or satisfied).
//
//ihtl:noalloc
func (e *Engine) stepEpi(src, dst []float64, epi func(w, lo, hi int)) *spmv.NumericError {
	ih := e.ih
	if len(src) != ih.NumV || len(dst) != ih.NumV {
		panic("core: vector length mismatch")
	}
	e.armHealth(1)
	if e.phased {
		e.stepPhased(src, dst)
		if e.healthArmed {
			// The fused pipeline folds this scan into its epilogue
			// barrier phase; the phased ablation pays one extra
			// dispatch, consistent with its per-phase structure.
			e.curDst = dst
			e.pool.ForStatic(ih.NumV, e.healthScanJob)
			e.curDst = nil
		}
		if epi != nil {
			start := time.Now()
			e.curEpi = epi
			e.pool.Run(e.phasedEpiJob)
			e.curEpi = nil
			e.breakdown.Wall += time.Since(start)
		}
	} else {
		e.curEpi = epi
		e.stepFused(src, dst)
		e.curEpi = nil
	}
	e.breakdown.Steps++
	return e.collectHealth()
}

// StepCtx is Step with cancellation and panic isolation: it returns
// ctx.Err() promptly when ctx is cancelled (observed at every task
// claim), converts a pool-worker panic into a returned
// *sched.PanicError, and returns a *spmv.NumericError when the armed
// health watchdog fails the step. After a cancelled or panicked step
// the engine's reusable state (hub buffers, dirty ranges, barriers) is
// restored, so the next clean step is bit-for-bit identical to one on
// a fresh engine.
func (e *Engine) StepCtx(ctx context.Context, src, dst []float64) error {
	return e.StepEpiCtx(ctx, src, dst, nil)
}

// StepEpiCtx is StepEpi with the StepCtx contract.
func (e *Engine) StepEpiCtx(ctx context.Context, src, dst []float64, epi func(w, lo, hi int)) error {
	end, err := e.pool.Fallible(ctx)
	if err != nil {
		return err
	}
	herr := e.stepEpi(src, dst, epi)
	if err := end(); err != nil {
		e.recoverState()
		return err
	}
	if herr != nil {
		return herr
	}
	return nil
}

// armHealth stages the watchdog for one step of lane width k.
//
//ihtl:noalloc
func (e *Engine) armHealth(k int) {
	e.curK = k
	e.healthErr = nil
	if e.health.Mode == spmv.HealthOff {
		e.healthArmed = false
		return
	}
	e.healthArmed = e.health.Every <= 1 || e.breakdown.Steps%e.health.Every == 0
	if e.healthArmed {
		for i := range e.healthBad {
			e.healthBad[i].count = 0
			e.healthBad[i].first = 0
		}
	}
}

// healthScan is one worker's share of the watchdog sweep over the
// staged destination vector: flat lanes [lo*k, hi*k). It tallies
// non-finite elements into the worker's padded slot and, under
// HealthClamp, zeroes them in place. The first element of the range is
// routed through the fault injector's poison site, the deterministic
// hook the recovery tests and ihtlbench -faults use to corrupt a step.
//
//ihtl:noalloc
func (e *Engine) healthScan(w, lo, hi int) {
	k := e.curK
	dst := e.curDst
	flo, fhi := lo*k, hi*k
	if fhi > flo {
		dst[flo] = faultinject.Poison(faultinject.SiteStepHealth, dst[flo])
	}
	clamp := e.health.Mode == spmv.HealthClamp
	slot := &e.healthBad[w]
	for i := flo; i < fhi; i++ {
		if !isFinite(dst[i]) {
			if slot.count == 0 {
				slot.first = int64(i)
			}
			slot.count++
			if clamp {
				dst[i] = 0
			}
		}
	}
}

// isFinite reports whether x is neither NaN nor ±Inf (exponent bits
// not all ones). Bit test, not float compare, so the zero-skip
// analyzer's float-compare rules don't apply.
//
//ihtl:noalloc
func isFinite(x float64) bool {
	const expMask = 0x7FF0000000000000
	return math.Float64bits(x)&expMask != expMask
}

// collectHealth folds the per-worker scan slots into a verdict after
// the dispatch. Clamped steps succeed by construction; Error and
// Rollback modes fail the step when anything non-finite was seen.
// Only the failure path allocates.
func (e *Engine) collectHealth() *spmv.NumericError {
	if !e.healthArmed {
		return nil
	}
	var count int64
	first := -1
	for w := range e.healthBad {
		s := &e.healthBad[w]
		if s.count == 0 {
			continue
		}
		count += s.count
		if first < 0 || int(s.first) < first {
			first = int(s.first)
		}
	}
	if count == 0 || e.health.Mode == spmv.HealthClamp {
		return nil
	}
	e.healthErr = &spmv.NumericError{Count: count, First: first, Rollback: e.health.Mode == spmv.HealthRollback}
	return e.healthErr
}

// recoverState restores the engine's reusable cross-step state after
// an aborted (cancelled or panicked) step, so the next clean step is
// bit-for-bit identical to one on a fresh engine: hub buffers may hold
// partial accumulations, dirty ranges may be half-widened, and the
// intra-dispatch barriers may hold straggler arrival counts.
func (e *Engine) recoverState() {
	for w := range e.bufs {
		clear(e.bufs[w])
	}
	for i := range e.dirty {
		e.dirty[i] = dirtyRange{}
	}
	e.epiBarrier.Reset()
	if e.clearBarrier != nil {
		e.clearBarrier.Reset()
	}
	if e.binBarrier != nil {
		// The PB bin cursors need no recovery: every chunk re-stages
		// its cursors at claim time, so only the abandoned barrier
		// crossing holds state.
		e.binBarrier.Reset()
	}
	if e.batch != nil {
		e.batch.recoverState()
	}
	for w := range e.clocks {
		e.clocks[w] = workerClock{}
	}
	e.curSrc, e.curDst, e.curEpi = nil, nil, nil
	e.healthArmed = false
	e.resetFlipCursors()
}

// stepFused runs all of Algorithm 3 as one pool dispatch; see
// fusedWorkerBuffered for the worker body.
//
//ihtl:noalloc
func (e *Engine) stepFused(src, dst []float64) {
	start := time.Now()
	e.stageFused(src, dst)
	e.pool.Run(e.fusedJob)
	e.unstageFused()
	e.breakdown.Wall += time.Since(start)
}

// stageFused arms the fused dispatch state for one step over the given
// vectors without dispatching: scheduler resets, merge-countdown
// arming, and vector staging. Split from stepFused so the sharded
// engine can stage every shard's sub-engine and then run all their
// worker bodies (e.fusedJob) under ONE pool dispatch of its own.
//
//ihtl:noalloc
func (e *Engine) stageFused(src, dst []float64) {
	e.flipSched.Reset(len(e.blockTasks))
	e.resetFlipCursors()
	e.resetSparseScheds()
	if !e.atomicFlipped {
		e.blockGate.Reset(e.tasksPerBlock)
	}
	e.curSrc, e.curDst = src, dst
}

// resetFlipCursors rearms the static flipped-task claim positions for
// one step; a no-op on stealing engines (flipCursors is nil).
//
//ihtl:noalloc
func (e *Engine) resetFlipCursors() {
	for w := range e.flipCursors {
		e.flipCursors[w].next = e.flipBounds[w]
		e.flipCursors[w].hi = e.flipBounds[w+1]
	}
}

// claimFlip hands worker w its next flipped-task range: by range
// stealing normally, or — on a StaticFlipped engine — the next task of
// the worker's fixed share, which keeps the task → worker assignment
// (and with it every buffer's partial-sum operand set) a pure function
// of the topology and worker count. The granule matches the stealing
// path's, so abort latency is unchanged.
//
//ihtl:noalloc
func (e *Engine) claimFlip(w int) (lo, hi int, ok bool) {
	if e.staticFlip {
		c := &e.flipCursors[w]
		if c.next >= c.hi {
			return 0, 0, false
		}
		lo = c.next
		c.next++
		return lo, c.next, true
	}
	return e.flipSched.Next(w, 1)
}

// unstageFused clears the staged vectors and folds the per-worker
// phase clocks into the breakdown after a fused dispatch completes.
//
//ihtl:noalloc
func (e *Engine) unstageFused() {
	e.curSrc, e.curDst = nil, nil
	e.harvestClocks()
}

// fusedWorkerBuffered is one worker's share of a fused buffered Step:
//
//  1. claim flipped tasks by range stealing, accumulating into the
//     worker's private hub buffer and widening the dirty hub range
//     per block by the task's precomputed destination bounds;
//  2. whenever a task completes its block (per-block countdown), merge
//     that block immediately — only buffers with non-empty dirty
//     ranges are read, and the hub slots are owned exclusively because
//     every task of the block has finished;
//  3. when no flipped work remains anywhere, claim sparse partitions
//     by range stealing and pull them;
//  4. if a StepEpi epilogue is staged, cross the epilogue barrier and
//     run the worker's share of it.
//
// No phase barrier exists between 1-3: a worker can be pulling sparse
// partitions while another still pushes a flipped block, because their
// dst ranges are disjoint ([0, NumHubs) vs [DestLo, NumV)).
//
// Phase clocks are read once per loop, not per task: flipped busy time
// is the whole claim loop (steal overhead included) minus the merges
// nested inside it.
//
//ihtl:noalloc
func (e *Engine) fusedWorkerBuffered(w int) {
	ih := e.ih
	src, dst := e.curSrc, e.curDst
	t0 := time.Now()
	if w == 0 {
		// Blocks with no edges are never merged; their hub slots are
		// still SpMV outputs (sums over zero terms) and must be zeroed.
		for _, b := range e.emptyBlocks {
			fb := &ih.Blocks[b]
			clear(dst[fb.HubLo:fb.HubHi])
		}
	}
	nb := len(ih.Blocks)
	buf := e.bufs[w]
	var mergeTime time.Duration
	for !e.pool.Aborted() {
		lo, hi, ok := e.claimFlip(w)
		if !ok {
			break
		}
		for ti := lo; ti < hi; ti++ {
			faultinject.Fire(faultinject.SiteFlippedTask)
			bt := &e.blockTasks[ti]
			fb := &ih.Blocks[bt.block]
			if e.varint {
				e.pushTaskEnc(w, bt, fb, src, buf)
			} else {
				pushTaskFlat(bt, fb, src, buf)
			}
			if bt.dHi > bt.dLo {
				dr := &e.dirty[w*nb+bt.block]
				if dr.hi <= dr.lo {
					dr.lo, dr.hi = bt.dLo, bt.dHi
				} else {
					if bt.dLo < dr.lo {
						dr.lo = bt.dLo
					}
					if bt.dHi > dr.hi {
						dr.hi = bt.dHi
					}
				}
			}
			if e.blockGate.Done(bt.block) {
				faultinject.Fire(faultinject.SiteMergeBlock)
				tm := time.Now()
				e.mergeBlock(bt.block, dst)
				mergeTime += time.Since(tm)
			}
		}
	}
	t1 := time.Now()
	clk := &e.clocks[w]
	clk.flipped += t1.Sub(t0) - mergeTime
	clk.merge += mergeTime
	e.sparseWorker(w, src, dst)
	e.runEpilogue(w)
}

// runEpilogue crosses the epilogue barrier and runs the worker's share
// of a staged StepEpi epilogue; a no-op when none is staged. The
// barrier is required because the epilogue may read any dst element,
// while phases 1-3 only guarantee completion of the whole vector at
// dispatch end.
//
//ihtl:noalloc
func (e *Engine) runEpilogue(w int) {
	if e.curEpi == nil && !e.healthArmed {
		return
	}
	if !e.epiBarrier.WaitAbort(e.pool) {
		return
	}
	lo, hi := sched.SplitRange(e.ih.NumV, len(e.clocks), w)
	if e.healthArmed {
		e.healthScan(w, lo, hi)
	}
	if e.curEpi != nil {
		e.curEpi(w, lo, hi)
	}
}

// mergeBlock folds every worker's dirty hub range of block b into dst
// and resets the consumed buffer slots. The caller must hold the
// block's completion (its countdown reached zero), which makes the
// buffer slots and dirty entries of b stable and the hub range
// exclusively owned. Merge cost is proportional to the hub ranges
// actually written, not workers x NumHubs.
//
//ihtl:noalloc
func (e *Engine) mergeBlock(b int, dst []float64) {
	fb := &e.ih.Blocks[b]
	clear(dst[fb.HubLo:fb.HubHi])
	nb := len(e.ih.Blocks)
	for t := range e.bufs {
		dr := &e.dirty[t*nb+b]
		if dr.hi <= dr.lo {
			continue
		}
		buf := e.bufs[t]
		for h := dr.lo; h < dr.hi; h++ {
			dst[h] += buf[h]
			buf[h] = 0
		}
		dr.lo, dr.hi = 0, 0
	}
}

// fusedWorkerAtomic is the AtomicFlipped ablation's fused worker:
// cooperative hub zeroing, a spin barrier (CAS pushes must not start
// before every hub slot is cleared), stolen flipped tasks with CAS
// updates, then the sparse pull.
//
//ihtl:noalloc
func (e *Engine) fusedWorkerAtomic(w int) {
	ih := e.ih
	src, dst := e.curSrc, e.curDst
	clk := &e.clocks[w]
	if ih.NumHubs > 0 {
		t0 := time.Now()
		clear(dst[e.hubClearBounds[w]:e.hubClearBounds[w+1]])
		clk.merge += time.Since(t0)
		if !e.clearBarrier.WaitAbort(e.pool) {
			return
		}
	}
	t1 := time.Now() // after the barrier: waiting is not busy time
	for !e.pool.Aborted() {
		lo, hi, ok := e.claimFlip(w)
		if !ok {
			break
		}
		for ti := lo; ti < hi; ti++ {
			faultinject.Fire(faultinject.SiteFlippedTask)
			bt := &e.blockTasks[ti]
			fb := &ih.Blocks[bt.block]
			if e.varint {
				e.pushTaskEncAtomic(w, bt, fb, src, dst)
				continue
			}
			pushTaskFlatAtomic(bt, fb, src, dst)
		}
	}
	t2 := time.Now()
	clk.flipped += t2.Sub(t1)
	e.sparseWorker(w, src, dst)
	e.runEpilogue(w)
}

// harvestClocks folds the per-worker phase clocks into the breakdown
// and resets them. Called after the dispatch completes, so no worker
// is concurrently writing.
//
//ihtl:noalloc
func (e *Engine) harvestClocks() {
	for w := range e.clocks {
		c := &e.clocks[w]
		e.breakdown.FlippedBusy += c.flipped
		e.breakdown.MergeBusy += c.merge
		e.breakdown.SparseBusy += c.sparse
		e.breakdown.BinBusy += c.bin
		e.breakdown.DrainBusy += c.drain
		*c = workerClock{}
	}
}

// stepPhased is the pre-fusion pipeline: three barriered dispatches
// with a full O(workers x NumHubs) merge sweep. Kept selectable for
// ablating the fused pipeline (EngineOptions.Phased). It records the
// phase walls its barriers define instead of per-worker busy time —
// the same figures the pipeline produced before fusion, without
// per-task clock reads distorting what it ablates.
func (e *Engine) stepPhased(src, dst []float64) {
	ih := e.ih

	// Phase 1 — push traversal of the flipped blocks (Alg. 3 l.1-4).
	t0 := time.Now()
	if e.atomicFlipped {
		// Ablation path: skip the buffers and CAS straight into the
		// hub data. Requires zeroed hub slots first.
		//ihtl:allow-nosite trivial zeroing sweep with no recovery path of its own
		e.pool.ForStatic(ih.NumHubs, func(w, lo, hi int) {
			clear(dst[lo:hi])
		})
		e.pool.ForEachPart(len(e.blockTasks), func(w, task int) {
			bt := &e.blockTasks[task]
			fb := &ih.Blocks[bt.block]
			if e.varint {
				e.pushTaskEncAtomic(w, bt, fb, src, dst)
				return
			}
			pushTaskFlatAtomic(bt, fb, src, dst)
		})
	} else {
		pushTask := func(w, task int) {
			bt := &e.blockTasks[task]
			fb := &ih.Blocks[bt.block]
			buf := e.bufs[w]
			if e.varint {
				e.pushTaskEnc(w, bt, fb, src, buf)
				return
			}
			pushTaskFlat(bt, fb, src, buf)
		}
		if e.staticFlip {
			// Pinned task → worker assignment: each buffer accumulates
			// a fixed operand set, and phase 2 folds buffers in fixed
			// order, so the phased pipeline is bit-reproducible too.
			e.pool.Run(func(w int) {
				for task := e.flipBounds[w]; task < e.flipBounds[w+1]; task++ {
					faultinject.Fire(faultinject.SiteFlippedTask)
					pushTask(w, task)
				}
			})
		} else {
			e.pool.ForEachPart(len(e.blockTasks), pushTask)
		}
	}
	t1 := time.Now()

	// Phase 2 — aggregate thread buffers into hub data (l.5-7),
	// clearing each buffer entry after reading so the buffers are
	// ready for the next iteration without a separate reset sweep.
	// The atomic ablation wrote hub data in phase 1 already.
	if !e.atomicFlipped {
		bufs := e.bufs
		e.pool.ForStatic(ih.NumHubs, func(w, lo, hi int) {
			faultinject.Fire(faultinject.SiteMergeBlock)
			for h := lo; h < hi; h++ {
				sum := 0.0
				for t := range bufs {
					sum += bufs[t][h]
					bufs[t][h] = 0
				}
				dst[h] = sum
			}
		})
	}
	t2 := time.Now()

	// Phase 3 — the sparse block under the configured kernel (l.8-10).
	// The non-pull kernels run their sub-phases as separate dispatches
	// here (the dispatch boundary is the bin/drain barrier); the fused
	// pipeline is where they earn their keep.
	switch e.sparseKernel {
	case SparsePullDegree:
		if np := len(e.heavyBounds) - 1; np > 0 {
			e.pool.ForEachPart(np, func(w, part int) {
				e.sparseHeavyPart(part, src, dst)
			})
		}
		if np := len(e.lightBounds) - 1; np > 0 {
			e.pool.ForEachPart(np, func(w, part int) {
				e.sparseLightPart(part, src, dst)
			})
		}
	case SparsePB:
		if e.pb != nil {
			e.pool.ForEachPart(e.pb.numChunks, func(w, c int) {
				e.pbBinChunk(c, src)
			})
			e.pool.ForEachPart(e.pb.numBuckets, func(w, b int) {
				e.pbDrainBucket(b, dst)
			})
		}
	default:
		if nparts := len(e.sparseBounds) - 1; nparts > 0 {
			e.pool.ForEachPart(nparts, func(w, part int) {
				e.sparsePullRange(e.sparseBounds[part], e.sparseBounds[part+1], src, dst)
			})
		}
	}
	t3 := time.Now()

	e.breakdown.Flipped += t1.Sub(t0)
	e.breakdown.Merge += t2.Sub(t1)
	e.breakdown.Sparse += t3.Sub(t2)
	e.breakdown.Wall += t3.Sub(t0)
}

// PermuteToNew scatters a vector indexed by original IDs into iHTL ID
// order: out[NewID[v]] = in[v].
func (ih *IHTL) PermuteToNew(in, out []float64) {
	if len(in) != ih.NumV || len(out) != ih.NumV {
		panic("core: vector length mismatch")
	}
	for v, nv := range ih.NewID {
		out[nv] = in[v]
	}
}

// PermuteToOld is the inverse of PermuteToNew: out[v] = in[NewID[v]].
func (ih *IHTL) PermuteToOld(in, out []float64) {
	if len(in) != ih.NumV || len(out) != ih.NumV {
		panic("core: vector length mismatch")
	}
	for v, nv := range ih.NewID {
		out[v] = in[nv]
	}
}
