package core

import (
	"fmt"
	"testing"

	"ihtl/internal/gen"
	"ihtl/internal/sched"
)

// packLanes interleaves k integer-valued vectors (distinct seeds) into
// a vertex-major batch of length n*k, returning both forms.
func packLanes(seed uint64, n, k int) (lanes [][]float64, batch []float64) {
	lanes = make([][]float64, k)
	batch = make([]float64, n*k)
	for j := 0; j < k; j++ {
		lanes[j] = integerVec(seed+uint64(j)*7919, n)
		for v := 0; v < n; v++ {
			batch[v*k+j] = lanes[j][v]
		}
	}
	return lanes, batch
}

// TestStepBatchDifferential pins StepBatch with K lanes bit-for-bit
// against K independent scalar Steps, across graphs, worker counts,
// batch widths, and all four engine option combinations. Integer-
// valued sources make float addition exact and associative, so the
// results are schedule-independent (see fused_diff_test.go).
func TestStepBatchDifferential(t *testing.T) {
	for name, g := range diffGraphs(t) {
		ih, err := Build(g, Params{HubsPerBlock: 64})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 3} {
			pool := sched.NewPool(workers)
			defer pool.Close()
			for _, opt := range []EngineOptions{
				{},
				{Phased: true},
				{AtomicFlipped: true},
				{AtomicFlipped: true, Phased: true},
			} {
				e, err := NewEngineOpts(ih, pool, opt)
				if err != nil {
					t.Fatal(err)
				}
				for _, k := range []int{1, 2, 4, 8} {
					label := fmt.Sprintf("%s/w%d/phased=%v atomic=%v/k%d",
						name, workers, opt.Phased, opt.AtomicFlipped, k)
					t.Run(label, func(t *testing.T) {
						lanes, src := packLanes(42, ih.NumV, k)
						want := make([][]float64, k)
						for j := 0; j < k; j++ {
							want[j] = make([]float64, ih.NumV)
							e.Step(lanes[j], want[j])
						}
						dst := make([]float64, ih.NumV*k)
						e.StepBatch(src, dst, k)
						got := make([]float64, ih.NumV)
						for j := 0; j < k; j++ {
							for v := 0; v < ih.NumV; v++ {
								got[v] = dst[v*k+j]
							}
							requireBitIdentical(t, fmt.Sprintf("lane %d", j), want[j], got)
						}
						// A second StepBatch must match too: it proves the
						// K-wide buffers, dirty ranges and gates were left
						// clean by the first batched iteration.
						e.StepBatch(src, dst, k)
						for j := 0; j < k; j++ {
							for v := 0; v < ih.NumV; v++ {
								got[v] = dst[v*k+j]
							}
							requireBitIdentical(t, fmt.Sprintf("lane %d (second)", j), want[j], got)
						}
					})
				}
			}
		}
	}
}

// TestStepBatchWidthChange exercises the batch-state rebuild when the
// width changes mid-engine, including dropping back to scalar Steps.
func TestStepBatchWidthChange(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(8, 8, 3))
	if err != nil {
		t.Fatal(err)
	}
	ih, err := Build(g, Params{HubsPerBlock: 32})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(ih, testPool)
	if err != nil {
		t.Fatal(err)
	}
	scalarSrc := integerVec(9, ih.NumV)
	want := make([]float64, ih.NumV)
	e.Step(scalarSrc, want)
	got := make([]float64, ih.NumV)
	for _, k := range []int{4, 2, 8, 1} {
		src := make([]float64, ih.NumV*k)
		dst := make([]float64, ih.NumV*k)
		for v := 0; v < ih.NumV; v++ {
			for j := 0; j < k; j++ {
				src[v*k+j] = scalarSrc[v]
			}
		}
		e.StepBatch(src, dst, k)
		for j := 0; j < k; j++ {
			for v := 0; v < ih.NumV; v++ {
				got[v] = dst[v*k+j]
			}
			requireBitIdentical(t, fmt.Sprintf("k=%d lane %d", k, j), want, got)
		}
		e.Step(scalarSrc, got) // scalar path must stay intact between widths
		requireBitIdentical(t, fmt.Sprintf("scalar after k=%d", k), want, got)
	}
}

// TestStepBatchEpi checks the fused batched epilogue contract: every
// worker sees its vertex share exactly once, after all of dst (all
// lanes) is complete.
func TestStepBatchEpi(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(9, 8, 21))
	if err != nil {
		t.Fatal(err)
	}
	ih, err := Build(g, Params{HubsPerBlock: 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, phased := range []bool{false, true} {
		e, err := NewEngineOpts(ih, testPool, EngineOptions{Phased: phased})
		if err != nil {
			t.Fatal(err)
		}
		const k = 4
		_, src := packLanes(7, ih.NumV, k)
		dst := make([]float64, ih.NumV*k)
		want := make([]float64, ih.NumV*k)
		e.StepBatch(src, want, k)
		covered := make([]int32, ih.NumV)
		e.StepBatchEpi(src, dst, k, func(w, lo, hi int) {
			for v := lo; v < hi; v++ {
				covered[v]++
				for j := 0; j < k; j++ {
					// dst must already hold the finished SpMV value;
					// scale in place to prove the epilogue ran after.
					dst[v*k+j] *= 2
				}
			}
		})
		for v := 0; v < ih.NumV; v++ {
			if covered[v] != 1 {
				t.Fatalf("phased=%v: vertex %d covered %d times, want 1", phased, v, covered[v])
			}
			for j := 0; j < k; j++ {
				if dst[v*k+j] != 2*want[v*k+j] {
					t.Fatalf("phased=%v: epilogue saw incomplete dst at v=%d lane=%d", phased, v, j)
				}
			}
		}
	}
}

// TestStepBatchAllocationFree pins the fused batched pipeline's
// zero-allocation steady state at a stable width.
func TestStepBatchAllocationFree(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(9, 8, 5))
	if err != nil {
		t.Fatal(err)
	}
	ih, err := Build(g, Params{HubsPerBlock: 64})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(ih, testPool)
	if err != nil {
		t.Fatal(err)
	}
	const k = 4
	_, src := packLanes(3, ih.NumV, k)
	dst := make([]float64, ih.NumV*k)
	for i := 0; i < 3; i++ { // warm worker stacks and the batch state
		e.StepBatch(src, dst, k)
	}
	if allocs := testing.AllocsPerRun(20, func() { e.StepBatch(src, dst, k) }); allocs != 0 {
		t.Errorf("fused StepBatch allocates %.1f objects per run, want 0", allocs)
	}
}

// TestStepBatchMergeStress hammers the K-wide countdown-gated merge
// with many workers and repeated batched iterations; run under -race
// (CI does) it checks the merge's happens-before edges for K-wide
// buffers exactly as the scalar stress does for scalar ones.
func TestStepBatchMergeStress(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(10, 8, 13))
	if err != nil {
		t.Fatal(err)
	}
	ih, err := Build(g, Params{HubsPerBlock: 32})
	if err != nil {
		t.Fatal(err)
	}
	pool := sched.NewPool(8)
	defer pool.Close()
	e, err := NewEngine(ih, pool)
	if err != nil {
		t.Fatal(err)
	}
	const k = 4
	_, src := packLanes(17, ih.NumV, k)
	dst := make([]float64, ih.NumV*k)
	want := make([]float64, ih.NumV*k)
	e.StepBatch(src, want, k)
	iters := 30
	if testing.Short() {
		iters = 8
	}
	for i := 0; i < iters; i++ {
		e.StepBatch(src, dst, k)
		requireBitIdentical(t, fmt.Sprintf("iter %d", i), want, dst)
	}
}

// TestPermuteBatchRoundTrip checks the batched relabeling helpers
// against their scalar counterparts and each other.
func TestPermuteBatchRoundTrip(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(8, 6, 31))
	if err != nil {
		t.Fatal(err)
	}
	ih, err := Build(g, Params{HubsPerBlock: 32})
	if err != nil {
		t.Fatal(err)
	}
	const k = 3
	lanes, batch := packLanes(5, ih.NumV, k)
	fwd := make([]float64, ih.NumV*k)
	back := make([]float64, ih.NumV*k)
	ih.PermuteToNewBatch(batch, fwd, k)
	laneNew := make([]float64, ih.NumV)
	for j := 0; j < k; j++ {
		ih.PermuteToNew(lanes[j], laneNew)
		for v := 0; v < ih.NumV; v++ {
			if fwd[v*k+j] != laneNew[v] {
				t.Fatalf("PermuteToNewBatch lane %d differs at %d", j, v)
			}
		}
	}
	ih.PermuteToOldBatch(fwd, back, k)
	requireBitIdentical(t, "round trip", batch, back)
}

// TestParamsForBatch checks the K-wide cache-budget adjustment.
func TestParamsForBatch(t *testing.T) {
	p := Params{}.ForBatch(4)
	if got := p.withDefaults().HubsPerBlock; got != DefaultL2Bytes/(DefaultVertexBytes*4) {
		t.Errorf("ForBatch(4) derived B = %d, want %d", got, DefaultL2Bytes/(DefaultVertexBytes*4))
	}
	if p := (Params{HubsPerBlock: 1000}).ForBatch(8); p.HubsPerBlock != 125 {
		t.Errorf("explicit B: got %d, want 125", p.HubsPerBlock)
	}
	if p := (Params{HubsPerBlock: 4}).ForBatch(16); p.HubsPerBlock != 1 {
		t.Errorf("B floor: got %d, want 1", p.HubsPerBlock)
	}
	if p := (Params{HubsPerBlock: 77}).ForBatch(1); p.HubsPerBlock != 77 {
		t.Errorf("k=1 must be identity, got %d", p.HubsPerBlock)
	}
}
