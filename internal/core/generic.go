package core

import (
	"fmt"

	"ihtl/internal/graph"
	"ihtl/internal/sched"
	"ihtl/internal/spmv"
)

// GenericEngine runs Algorithm 3 over any commutative monoid — the §6
// extension of iHTL beyond sum-SpMV: with the min monoid it computes
// the label-propagation step of connected components, with min-plus
// relaxations SSSP rounds, with boolean-or reachability — each with
// flipped-block locality for the in-hubs.
//
// Like the float64 Engine, a StepMonoid is one fused pool dispatch:
// stolen flipped tasks, per-block countdown-gated merges over dirty
// hub ranges, then the sparse pull — no inter-phase barriers. The
// merge may skip buffers a worker never touched because
// Combine(acc, Identity) == acc.
type GenericEngine[T any] struct {
	ih   *IHTL
	pool *sched.Pool
	m    spmv.Monoid[T]

	bufs          [][]T
	blockTasks    []blockTask
	tasksPerBlock []int
	emptyBlocks   []int
	sparseBounds  []int

	flipSched      *sched.StealScheduler
	sparseSched    *sched.StealScheduler
	blockGate      *sched.Countdowns
	dirty          []dirtyRange
	fusedJob       func(w int)
	curSrc, curDst []T
}

// NewGenericEngine prepares a monoid Algorithm 3 engine.
func NewGenericEngine[T any](ih *IHTL, pool *sched.Pool, m spmv.Monoid[T]) (*GenericEngine[T], error) {
	if ih == nil || pool == nil {
		return nil, fmt.Errorf("core: nil IHTL or pool")
	}
	if m.Combine == nil {
		return nil, fmt.Errorf("core: monoid without Combine")
	}
	e := &GenericEngine[T]{ih: ih, pool: pool, m: m}
	e.bufs = make([][]T, pool.Workers())
	for w := range e.bufs {
		buf := make([]T, ih.NumHubs)
		for i := range buf {
			buf[i] = m.Identity
		}
		e.bufs[w] = buf
	}
	e.blockTasks, e.tasksPerBlock, e.emptyBlocks = buildBlockTasks(ih, pool.Workers()*4)
	if n := ih.NumV - ih.Sparse.DestLo; n > 0 {
		e.sparseBounds = sched.EdgeBalancedParts(ih.Sparse.Index, pool.Workers()*4)
	}
	w := pool.Workers()
	e.flipSched = sched.NewStealScheduler(w)
	e.sparseSched = sched.NewStealScheduler(w)
	e.blockGate = sched.NewCountdowns(len(ih.Blocks))
	e.dirty = make([]dirtyRange, w*len(ih.Blocks))
	e.fusedJob = e.fusedWorker
	return e, nil
}

// NumVertices implements spmv.GenericStepper.
func (e *GenericEngine[T]) NumVertices() int { return e.ih.NumV }

// StepMonoid implements spmv.GenericStepper over iHTL IDs.
//
//ihtl:noalloc
func (e *GenericEngine[T]) StepMonoid(src, dst []T) {
	ih := e.ih
	if len(src) != ih.NumV || len(dst) != ih.NumV {
		panic("core: vector length mismatch")
	}
	e.flipSched.Reset(len(e.blockTasks))
	if n := len(e.sparseBounds) - 1; n > 0 {
		e.sparseSched.Reset(n)
	}
	e.blockGate.Reset(e.tasksPerBlock)
	e.curSrc, e.curDst = src, dst
	e.pool.Run(e.fusedJob)
	e.curSrc, e.curDst = nil, nil
}

// fusedWorker mirrors Engine.fusedWorkerBuffered for an arbitrary
// monoid: stolen flipped tasks accumulate into the worker's private
// buffer with dirty-range tracking, the block's last finisher merges
// it, and exhausted workers move straight on to the sparse pull.
//
//ihtl:noalloc
func (e *GenericEngine[T]) fusedWorker(w int) {
	ih := e.ih
	m := e.m
	src, dst := e.curSrc, e.curDst
	if w == 0 {
		for _, b := range e.emptyBlocks {
			fb := &ih.Blocks[b]
			for h := fb.HubLo; h < fb.HubHi; h++ {
				dst[h] = m.Identity
			}
		}
	}
	nb := len(ih.Blocks)
	buf := e.bufs[w]
	for {
		lo, hi, ok := e.flipSched.Next(w, 1)
		if !ok {
			break
		}
		for ti := lo; ti < hi; ti++ {
			bt := &e.blockTasks[ti]
			fb := &ih.Blocks[bt.block]
			dsts := fb.Dsts
			for s := bt.lo; s < bt.hi; s++ {
				elo, ehi := fb.Index[s], fb.Index[s+1]
				if elo == ehi {
					continue
				}
				x := src[s]
				for i := elo; i < ehi; i++ {
					d := dsts[i]
					buf[d] = m.Combine(buf[d], m.Apply(x, graph.VID(s), d))
				}
			}
			if bt.dHi > bt.dLo {
				dr := &e.dirty[w*nb+bt.block]
				if dr.hi <= dr.lo {
					dr.lo, dr.hi = bt.dLo, bt.dHi
				} else {
					if bt.dLo < dr.lo {
						dr.lo = bt.dLo
					}
					if bt.dHi > dr.hi {
						dr.hi = bt.dHi
					}
				}
			}
			if e.blockGate.Done(bt.block) {
				e.mergeBlock(bt.block, dst)
			}
		}
	}
	// Sparse pull; dst range disjoint from every merge.
	sp := &ih.Sparse
	if len(e.sparseBounds) < 2 {
		return
	}
	for {
		lo, hi, ok := e.sparseSched.Next(w, 1)
		if !ok {
			return
		}
		for p := lo; p < hi; p++ {
			vlo, vhi := e.sparseBounds[p], e.sparseBounds[p+1]
			for i := vlo; i < vhi; i++ {
				acc := m.Identity
				d := graph.VID(sp.DestLo + i)
				for j := sp.Index[i]; j < sp.Index[i+1]; j++ {
					u := sp.Srcs[j]
					acc = m.Combine(acc, m.Apply(src[u], u, d))
				}
				dst[sp.DestLo+i] = acc
			}
		}
	}
}

// mergeBlock folds the dirty hub ranges of block b into dst and resets
// the consumed buffer slots to Identity. Skipping untouched buffers is
// sound because Combine(acc, Identity) == acc.
//
//ihtl:noalloc
func (e *GenericEngine[T]) mergeBlock(b int, dst []T) {
	m := e.m
	fb := &e.ih.Blocks[b]
	for h := fb.HubLo; h < fb.HubHi; h++ {
		dst[h] = m.Identity
	}
	nb := len(e.ih.Blocks)
	for t := range e.bufs {
		dr := &e.dirty[t*nb+b]
		if dr.hi <= dr.lo {
			continue
		}
		buf := e.bufs[t]
		for h := dr.lo; h < dr.hi; h++ {
			dst[h] = m.Combine(dst[h], buf[h])
			buf[h] = m.Identity
		}
		dr.lo, dr.hi = 0, 0
	}
}
