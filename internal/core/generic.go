package core

import (
	"fmt"

	"ihtl/internal/graph"
	"ihtl/internal/sched"
	"ihtl/internal/spmv"
)

// GenericEngine runs Algorithm 3 over any commutative monoid — the §6
// extension of iHTL beyond sum-SpMV: with the min monoid it computes
// the label-propagation step of connected components, with min-plus
// relaxations SSSP rounds, with boolean-or reachability — each with
// flipped-block locality for the in-hubs.
type GenericEngine[T any] struct {
	ih   *IHTL
	pool *sched.Pool
	m    spmv.Monoid[T]

	bufs         [][]T
	blockTasks   []blockTask
	sparseBounds []int
}

// NewGenericEngine prepares a monoid Algorithm 3 engine.
func NewGenericEngine[T any](ih *IHTL, pool *sched.Pool, m spmv.Monoid[T]) (*GenericEngine[T], error) {
	if ih == nil || pool == nil {
		return nil, fmt.Errorf("core: nil IHTL or pool")
	}
	if m.Combine == nil {
		return nil, fmt.Errorf("core: monoid without Combine")
	}
	e := &GenericEngine[T]{ih: ih, pool: pool, m: m}
	e.bufs = make([][]T, pool.Workers())
	for w := range e.bufs {
		buf := make([]T, ih.NumHubs)
		for i := range buf {
			buf[i] = m.Identity
		}
		e.bufs[w] = buf
	}
	chunksPerBlock := pool.Workers() * 4
	for b := range ih.Blocks {
		fb := &ih.Blocks[b]
		if fb.NumEdges() == 0 {
			continue
		}
		bounds := sched.EdgeBalancedParts(fb.Index, chunksPerBlock)
		for c := 0; c < len(bounds)-1; c++ {
			if bounds[c] < bounds[c+1] {
				e.blockTasks = append(e.blockTasks, blockTask{block: b, lo: bounds[c], hi: bounds[c+1]})
			}
		}
	}
	if n := ih.NumV - ih.Sparse.DestLo; n > 0 {
		e.sparseBounds = sched.EdgeBalancedParts(ih.Sparse.Index, pool.Workers()*4)
	}
	return e, nil
}

// NumVertices implements spmv.GenericStepper.
func (e *GenericEngine[T]) NumVertices() int { return e.ih.NumV }

// StepMonoid implements spmv.GenericStepper over iHTL IDs.
func (e *GenericEngine[T]) StepMonoid(src, dst []T) {
	ih := e.ih
	m := e.m
	if len(src) != ih.NumV || len(dst) != ih.NumV {
		panic("core: vector length mismatch")
	}
	// Phase 1: push flipped blocks into per-worker monoid buffers.
	e.pool.ForEachPart(len(e.blockTasks), func(w, task int) {
		bt := e.blockTasks[task]
		fb := &ih.Blocks[bt.block]
		buf := e.bufs[w]
		dsts := fb.Dsts
		for s := bt.lo; s < bt.hi; s++ {
			lo, hi := fb.Index[s], fb.Index[s+1]
			if lo == hi {
				continue
			}
			x := src[s]
			for i := lo; i < hi; i++ {
				d := dsts[i]
				buf[d] = m.Combine(buf[d], m.Apply(x, graph.VID(s), d))
			}
		}
	})
	// Phase 2: merge and reset buffers.
	bufs := e.bufs
	e.pool.ForStatic(ih.NumHubs, func(w, lo, hi int) {
		for h := lo; h < hi; h++ {
			acc := m.Identity
			for t := range bufs {
				acc = m.Combine(acc, bufs[t][h])
				bufs[t][h] = m.Identity
			}
			dst[h] = acc
		}
	})
	// Phase 3: pull the sparse block.
	sp := &ih.Sparse
	if n := len(e.sparseBounds) - 1; n > 0 {
		e.pool.ForEachPart(n, func(w, part int) {
			lo, hi := e.sparseBounds[part], e.sparseBounds[part+1]
			for i := lo; i < hi; i++ {
				acc := m.Identity
				d := graph.VID(sp.DestLo + i)
				for j := sp.Index[i]; j < sp.Index[i+1]; j++ {
					u := sp.Srcs[j]
					acc = m.Combine(acc, m.Apply(src[u], u, d))
				}
				dst[sp.DestLo+i] = acc
			}
		})
	}
}
