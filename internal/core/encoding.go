package core

// Compressed (varint gap-encoded) block topology on the hot path.
//
// The paper frames iHTL's win as bytes moved per edge and names
// WebGraph-style topology compression as the next lever (§6). This
// file puts compress.Chunked adjacency on the engine's execution path:
// with EngineOptions.BlockEncoding == EncodingVarint, the flipped push
// decodes one cache-resident chunk at a time into a per-worker scratch
// CSR inside the fused dispatch loop (decode fused with traversal,
// zero steady-state allocations), and the sparse pull decodes each
// row's gap stream directly into its accumulation — in ascending
// source order, exactly the flat kernel's order, so every pipeline
// stays bit-for-bit identical to the flat reference for all inputs.
//
// The flat Index arrays stay resident under either encoding: the
// schedulers (edge-balanced parts, degree buckets, chunk bounds) and
// the degree checks of the light/heavy pull split all read per-row
// edge counts, and at 8 bytes per row they are a small fraction of the
// 4-bytes-per-edge adjacency the encoding removes.

import (
	"fmt"

	"ihtl/internal/compress"
	"ihtl/internal/graph"
	"ihtl/internal/spmv"
	"ihtl/internal/unchecked"
)

// BlockEncoding selects how an Engine stores and traverses the
// flipped/sparse block adjacency.
type BlockEncoding int

const (
	// EncodingAuto picks varint when only the encoded topology is
	// resident (a graph opened from a v2 engine file without flat
	// sections), flat otherwise.
	EncodingAuto BlockEncoding = iota
	// EncodingFlat traverses the flat Dsts/Srcs arrays, materialising
	// them first if only the encoded form is resident.
	EncodingFlat
	// EncodingVarint traverses the chunked varint-gap encoding,
	// building it first if only the flat form is resident.
	EncodingVarint
)

func (b BlockEncoding) String() string {
	switch b {
	case EncodingAuto:
		return "auto"
	case EncodingFlat:
		return "flat"
	case EncodingVarint:
		return "varint"
	default:
		return fmt.Sprintf("BlockEncoding(%d)", int(b))
	}
}

// ParseBlockEncoding parses the -encoding flag values.
func ParseBlockEncoding(s string) (BlockEncoding, error) {
	switch s {
	case "auto", "":
		return EncodingAuto, nil
	case "flat":
		return EncodingFlat, nil
	case "varint":
		return EncodingVarint, nil
	default:
		return 0, fmt.Errorf("core: unknown block encoding %q (want auto, flat or varint)", s)
	}
}

// EncodedOnly reports whether any block of ih carries edges only in
// encoded form (flat adjacency not resident) — the state of a graph
// opened lazily from a v2 varint engine file.
func (ih *IHTL) EncodedOnly() bool {
	for b := range ih.Blocks {
		fb := &ih.Blocks[b]
		if fb.Dsts == nil && fb.Enc != nil && fb.NumEdges() > 0 {
			return true
		}
	}
	sp := &ih.Sparse
	return sp.Srcs == nil && sp.Enc != nil && sp.NumEdges() > 0
}

// EnsureEncoded builds the chunked varint encoding of every block that
// does not carry one yet. Deterministic in the flat topology, and safe
// for concurrent callers on one IHTL: the graph's lazy-derivation lock
// serialises the builds, and a caller's own locked pass orders its
// later lock-free reads of the encoded forms.
func (ih *IHTL) EnsureEncoded() {
	ih.lazyMu.Lock()
	defer ih.lazyMu.Unlock()
	for b := range ih.Blocks {
		fb := &ih.Blocks[b]
		if fb.Enc == nil {
			fb.Enc = compress.EncodeChunked(fb.Index, fb.Dsts, 0)
		}
	}
	if ih.Sparse.Enc == nil && len(ih.Sparse.Index) > 0 {
		ih.Sparse.Enc = compress.EncodeChunked(ih.Sparse.Index, ih.Sparse.Srcs, 0)
	}
}

// EnsureFlatTopology materialises the flat Dsts/Srcs arrays of every
// block that carries only the encoded form, so flat engines (and the
// v1 serialiser) can run over a graph opened from a v2 varint file.
// Safe for concurrent callers, like EnsureEncoded.
func (ih *IHTL) EnsureFlatTopology() {
	ih.lazyMu.Lock()
	defer ih.lazyMu.Unlock()
	for b := range ih.Blocks {
		fb := &ih.Blocks[b]
		if fb.Dsts == nil && fb.Enc != nil {
			fb.Dsts = decodeFlat(fb.Enc)
		}
	}
	sp := &ih.Sparse
	if sp.Srcs == nil && sp.Enc != nil {
		sp.Srcs = decodeFlat(sp.Enc)
	}
}

// DropFlatTopology releases the flat adjacency arrays of blocks whose
// encoded form is resident, shrinking a varint engine's footprint to
// the compressed topology (plus the Index arrays the schedulers use).
// Flat engines built later over the same IHTL re-materialise via
// EnsureFlatTopology. It takes the same lazy-derivation lock as the
// Ensure methods, but unlike them it is destructive: do not drop while
// other goroutines may still be constructing engines over the graph.
func (ih *IHTL) DropFlatTopology() {
	ih.lazyMu.Lock()
	defer ih.lazyMu.Unlock()
	for b := range ih.Blocks {
		fb := &ih.Blocks[b]
		if fb.Enc != nil {
			fb.Dsts = nil
		}
	}
	if ih.Sparse.Enc != nil {
		ih.Sparse.Srcs = nil
	}
}

// decodeFlat decodes a whole Chunked into a flat neighbour array
// (graph.VID is a uint32 alias, so the decode writes in place).
func decodeFlat(ck *compress.Chunked) []graph.VID {
	out := make([]graph.VID, ck.NumEdges)
	sIdx := make([]int32, ck.MaxSrcs+1)
	pos := 0
	for c := 0; c < ck.Chunks(); c++ {
		_, ne := ck.DecodeChunkCSR(c, sIdx, out[pos:])
		pos += ne
	}
	return out
}

// encScratch is one worker's chunk-decode scratch: a local CSR over
// the rows of one chunk. Sized from the maxima over every flipped
// block's chunks, so any chunk of any block decodes into it.
type encScratch struct {
	sIdx []int32
	dsts []uint32
}

// resolveEncoding applies EncodingAuto against the graph's resident
// forms.
func resolveEncoding(enc BlockEncoding, ih *IHTL) BlockEncoding {
	if enc != EncodingAuto {
		return enc
	}
	if ih.EncodedOnly() {
		return EncodingVarint
	}
	return EncodingFlat
}

// initEncoding resolves the configured encoding and, for varint,
// builds the encoded execution state: per-worker decode scratch sized
// from the block maxima, and the sparse block's per-row byte offsets
// (rowOff[i] is where row i's degree varint starts inside
// Sparse.Enc.Data), which give the pull kernels random row access into
// the chunked stream. Called once from NewEngineOpts, before the block
// tasks are built.
func (e *Engine) initEncoding(enc BlockEncoding) {
	ih := e.ih
	e.encoding = resolveEncoding(enc, ih)
	if e.encoding != EncodingVarint {
		ih.EnsureFlatTopology()
		return
	}
	ih.EnsureEncoded()
	e.varint = true
	maxSrcs, maxEdges := 0, 0
	for b := range ih.Blocks {
		ck := ih.Blocks[b].Enc
		if ck.MaxSrcs > maxSrcs {
			maxSrcs = ck.MaxSrcs
		}
		if ck.MaxEdges > maxEdges {
			maxEdges = ck.MaxEdges
		}
	}
	e.encScratch = make([]encScratch, e.nworkers)
	for w := range e.encScratch {
		e.encScratch[w] = encScratch{
			sIdx: make([]int32, maxSrcs+1),
			dsts: make([]uint32, maxEdges),
		}
	}
	if sp := &ih.Sparse; sp.Enc != nil && sp.Enc.NumSrc > 0 {
		e.sparseRowOff = sparseRowOffsets(sp.Enc)
	}
}

// sparseRowOffsets walks the chunked stream once and records each
// row's starting byte.
func sparseRowOffsets(ck *compress.Chunked) []int64 {
	off := make([]int64, ck.NumSrc)
	data := ck.Data
	for c := 0; c < ck.Chunks(); c++ {
		pos := ck.ByteOff[c]
		for r := ck.SrcOff[c]; r < ck.SrcOff[c+1]; r++ {
			off[r] = pos
			deg, n := uvarintChecked(data, pos)
			pos += int64(n)
			for i := uint64(0); i < deg; i++ {
				_, n := uvarintChecked(data, pos)
				pos += int64(n)
			}
		}
	}
	return off
}

// uvarintChecked decodes one varint at pos, panicking on truncation —
// the stream was validated (or built in-process) before this runs.
func uvarintChecked(data []byte, pos int64) (uint64, int) {
	var v uint64
	var shift uint
	for n := 0; ; n++ {
		b := data[pos+int64(n)]
		if b < 0x80 {
			return v | uint64(b)<<shift, n + 1
		}
		v |= uint64(b&0x7f) << shift
		shift += 7
	}
}

// buildBlockTasksEnc is buildBlockTasks for the varint encoding: one
// task per encoded chunk (the chunk IS the steal granule — its decode
// scratch is the cache-resident working set), skipping chunks with no
// edges. Each task's hub destination bounds come from one
// construction-time decode of its chunk.
func buildBlockTasksEnc(ih *IHTL) (tasks []blockTask, perBlock, empty []int) {
	perBlock = make([]int, len(ih.Blocks))
	maxSrcs, maxEdges := 0, 0
	for b := range ih.Blocks {
		ck := ih.Blocks[b].Enc
		if ck.MaxSrcs > maxSrcs {
			maxSrcs = ck.MaxSrcs
		}
		if ck.MaxEdges > maxEdges {
			maxEdges = ck.MaxEdges
		}
	}
	sIdx := make([]int32, maxSrcs+1)
	dsts := make([]uint32, maxEdges)
	for b := range ih.Blocks {
		fb := &ih.Blocks[b]
		if fb.NumEdges() == 0 {
			empty = append(empty, b)
			continue
		}
		ck := fb.Enc
		for c := 0; c < ck.Chunks(); c++ {
			lo, hi := int(ck.SrcOff[c]), int(ck.SrcOff[c+1])
			if fb.Index[hi]-fb.Index[lo] == 0 {
				continue
			}
			t := blockTask{block: b, chunk: c, lo: lo, hi: hi}
			_, ne := ck.DecodeChunkCSR(c, sIdx, dsts)
			for i := 0; i < ne; i++ {
				d := int(dsts[i])
				if t.dHi == t.dLo {
					t.dLo, t.dHi = d, d+1
					continue
				}
				if d < t.dLo {
					t.dLo = d
				}
				if d+1 > t.dHi {
					t.dHi = d + 1
				}
			}
			tasks = append(tasks, t)
			perBlock[b]++
		}
		if perBlock[b] == 0 {
			empty = append(empty, b)
		}
	}
	return tasks, perBlock, empty
}

// Encoding returns the engine's resolved block encoding (never
// EncodingAuto).
func (e *Engine) Encoding() BlockEncoding { return e.encoding }

// pushTaskEnc pushes one encoded flipped task into worker w's hub
// buffer: decode the task's chunk into the worker's scratch CSR, then
// run the flat push loop over the scratch. The scratch is sized at
// construction, so the steady state allocates nothing.
//
//ihtl:noalloc
//ihtl:nobce
//ihtl:noescape
func (e *Engine) pushTaskEnc(w int, bt *blockTask, fb *FlippedBlock, src, buf []float64) {
	sc := unchecked.PtrAt(e.encScratch, w)
	nsrc, _ := fb.Enc.DecodeChunkCSR(bt.chunk, sc.sIdx, sc.dsts)
	sIdx, dsts := sc.sIdx, sc.dsts
	for s := 0; s < nsrc; s++ {
		x := unchecked.At(src, bt.lo+s)
		if spmv.SkipZero(x) {
			continue
		}
		end := unchecked.At(sIdx, s+1)
		for i := unchecked.At(sIdx, s); i < end; i++ {
			unchecked.AddAt(buf, int(unchecked.At(dsts, int(i))), x)
		}
	}
}

// pushTaskEncAtomic is pushTaskEnc for the AtomicFlipped ablation:
// CAS straight into dst.
//
//ihtl:noalloc
//ihtl:nobce
//ihtl:noescape
func (e *Engine) pushTaskEncAtomic(w int, bt *blockTask, fb *FlippedBlock, src, dst []float64) {
	sc := unchecked.PtrAt(e.encScratch, w)
	nsrc, _ := fb.Enc.DecodeChunkCSR(bt.chunk, sc.sIdx, sc.dsts)
	sIdx, dsts := sc.sIdx, sc.dsts
	for s := 0; s < nsrc; s++ {
		x := unchecked.At(src, bt.lo+s)
		if spmv.SkipZero(x) {
			continue
		}
		end := unchecked.At(sIdx, s+1)
		for i := unchecked.At(sIdx, s); i < end; i++ {
			spmv.AtomicAddFloat64(unchecked.PtrAt(dst, int(unchecked.At(dsts, int(i)))), x)
		}
	}
}

// pushTaskEncBatch is pushTaskEnc with K-wide lanes.
//
//ihtl:noalloc
//ihtl:nobce
//ihtl:noescape
func (e *Engine) pushTaskEncBatch(w, k int, bt *blockTask, fb *FlippedBlock, src, buf []float64) {
	sc := unchecked.PtrAt(e.encScratch, w)
	nsrc, _ := fb.Enc.DecodeChunkCSR(bt.chunk, sc.sIdx, sc.dsts)
	sIdx, dsts := sc.sIdx, sc.dsts
	for s := 0; s < nsrc; s++ {
		xs := unchecked.SliceAt(src, (bt.lo+s)*k, k)
		if spmv.SkipZeroLanes(xs) {
			continue
		}
		end := unchecked.At(sIdx, s+1)
		for i := unchecked.At(sIdx, s); i < end; i++ {
			db := int(unchecked.At(dsts, int(i))) * k
			for j, x := range xs {
				unchecked.AddAt(buf, db+j, x)
			}
		}
	}
}

// pushTaskEncAtomicBatch is pushTaskEncAtomic with K-wide lanes.
//
//ihtl:noalloc
//ihtl:nobce
//ihtl:noescape
func (e *Engine) pushTaskEncAtomicBatch(w, k int, bt *blockTask, fb *FlippedBlock, src, dst []float64) {
	sc := unchecked.PtrAt(e.encScratch, w)
	nsrc, _ := fb.Enc.DecodeChunkCSR(bt.chunk, sc.sIdx, sc.dsts)
	sIdx, dsts := sc.sIdx, sc.dsts
	for s := 0; s < nsrc; s++ {
		xs := unchecked.SliceAt(src, (bt.lo+s)*k, k)
		if spmv.SkipZeroLanes(xs) {
			continue
		}
		end := unchecked.At(sIdx, s+1)
		for i := unchecked.At(sIdx, s); i < end; i++ {
			db := int(unchecked.At(dsts, int(i))) * k
			for j, x := range xs {
				spmv.AtomicAddFloat64(unchecked.PtrAt(dst, db+j), x)
			}
		}
	}
}

// sparseRowSumEnc pulls sparse row i from the encoded stream: decode
// the row's gap varints starting at its recorded byte offset,
// accumulating src reads in ascending source order — the flat pull's
// exact accumulation order, so the sum is bit-identical for all
// inputs. No scratch: the decode IS the traversal.
//
//ihtl:noalloc
//ihtl:nobce
//ihtl:noescape
func (e *Engine) sparseRowSumEnc(i int, src []float64) float64 {
	data := e.ih.Sparse.Enc.Data
	pos := unchecked.At(e.sparseRowOff, i)
	var deg uint64
	var shift uint
	for {
		b := unchecked.At(data, int(pos))
		pos++
		if b < 0x80 {
			deg |= uint64(b) << shift
			break
		}
		deg |= uint64(b&0x7f) << shift
		shift += 7
	}
	sum := 0.0
	prev := uint32(0)
	for ; deg > 0; deg-- {
		var gap uint64
		shift = 0
		for {
			b := unchecked.At(data, int(pos))
			pos++
			if b < 0x80 {
				gap |= uint64(b) << shift
				break
			}
			gap |= uint64(b&0x7f) << shift
			shift += 7
		}
		prev += uint32(gap)
		sum += unchecked.At(src, int(prev))
	}
	return sum
}

// sparseRowAccEnc is sparseRowSumEnc with K-wide lanes, accumulating
// into out (the row's dst lanes, already zeroed by the caller).
//
//ihtl:noalloc
//ihtl:nobce
//ihtl:noescape
func (e *Engine) sparseRowAccEnc(i, k int, src, out []float64) {
	data := e.ih.Sparse.Enc.Data
	pos := unchecked.At(e.sparseRowOff, i)
	var deg uint64
	var shift uint
	for {
		b := unchecked.At(data, int(pos))
		pos++
		if b < 0x80 {
			deg |= uint64(b) << shift
			break
		}
		deg |= uint64(b&0x7f) << shift
		shift += 7
	}
	prev := uint32(0)
	for ; deg > 0; deg-- {
		var gap uint64
		shift = 0
		for {
			b := unchecked.At(data, int(pos))
			pos++
			if b < 0x80 {
				gap |= uint64(b) << shift
				break
			}
			gap |= uint64(b&0x7f) << shift
			shift += 7
		}
		prev += uint32(gap)
		xs := unchecked.SliceAt(src, int(prev)*k, k)
		for j, x := range xs {
			unchecked.AddAt(out, j, x)
		}
	}
}
