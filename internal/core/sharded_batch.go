package core

// Batched (multi-vector) sharded execution: StepBatch over a sharded
// engine runs every shard's K-wide fused pipeline plus a K-wide
// exchange under one dispatch, mirroring engine_batch.go. The exchange
// reuses the scalar xState's offsets, cursors and row array; only the
// binned contributions are K-wide (xBinVals, slot p's lanes at
// [p*k, (p+1)*k)), exactly the scalar/batch split pbState uses.

import (
	"context"
	"time"

	"ihtl/internal/faultinject"
	"ihtl/internal/spmv"
	"ihtl/internal/unchecked"
)

// ensureBatch readies every shard's batch state and the K-wide
// exchange values for width k, allocating only on a width change.
func (se *ShardedEngine) ensureBatch(k int) {
	for _, sub := range se.engs {
		sub.ensureBatch(k)
	}
	if se.batchK == k {
		return
	}
	se.batchK = k
	if se.x != nil {
		se.xBinVals = make([]float64, len(se.x.binRows)*k)
	}
}

// StepBatch computes dst[v*k+j] = Σ_{u ∈ N⁻(v)} src[u*k+j] in
// sharded-global ID space, with StepBatch's contract (vertex-major
// interleaved vectors of length NumV*k; k == 1 delegates to Step).
//
//ihtl:noalloc
func (se *ShardedEngine) StepBatch(src, dst []float64, k int) {
	se.StepBatchEpi(src, dst, k, nil)
}

// StepBatchEpi is StepBatch plus the fused element-wise epilogue, with
// Engine.StepBatchEpi's contract.
//
//ihtl:noalloc
func (se *ShardedEngine) StepBatchEpi(src, dst []float64, k int, epi func(w, lo, hi int)) {
	if herr := se.stepBatchEpi(src, dst, k, epi); herr != nil {
		se.panicHealth(herr)
	}
}

//ihtl:noalloc
func (se *ShardedEngine) stepBatchEpi(src, dst []float64, k int, epi func(w, lo, hi int)) *spmv.NumericError {
	if k == 1 {
		return se.stepEpi(src, dst, epi)
	}
	if k < 1 {
		panic("core: batch width < 1")
	}
	if len(src) != se.sg.NumV*k || len(dst) != se.sg.NumV*k {
		panic("core: batch vector length mismatch")
	}
	se.ensureBatch(k)
	se.armHealth(k)
	if se.phased {
		se.stepPhasedBatch(src, dst)
		if se.healthArmed {
			se.curDst = dst
			se.pool.ForStatic(se.sg.NumV, se.healthScanJob)
			se.curDst = nil
		}
		if epi != nil {
			start := time.Now()
			se.curEpi = epi
			se.pool.Run(se.phasedEpiJob)
			se.curEpi = nil
			se.breakdown.Wall += time.Since(start)
		}
	} else {
		se.curEpi = epi
		se.stepFusedBatch(src, dst)
		se.curEpi = nil
	}
	se.breakdown.Steps++
	return se.collectHealth()
}

// StepBatchCtx is StepBatch with the StepCtx contract.
func (se *ShardedEngine) StepBatchCtx(ctx context.Context, src, dst []float64, k int) error {
	return se.StepBatchEpiCtx(ctx, src, dst, k, nil)
}

// StepBatchEpiCtx is StepBatchEpi with the StepCtx contract.
func (se *ShardedEngine) StepBatchEpiCtx(ctx context.Context, src, dst []float64, k int, epi func(w, lo, hi int)) error {
	end, err := se.pool.Fallible(ctx)
	if err != nil {
		return err
	}
	herr := se.stepBatchEpi(src, dst, k, epi)
	if err := end(); err != nil {
		se.recoverState()
		return err
	}
	if herr != nil {
		return herr
	}
	return nil
}

// stepFusedBatch mirrors stepFused for a K-wide sharded dispatch.
//
//ihtl:noalloc
func (se *ShardedEngine) stepFusedBatch(src, dst []float64) {
	start := time.Now()
	k := se.batchK
	for s, sub := range se.engs {
		lo, hi := se.sg.Bounds[s]*k, se.sg.Bounds[s+1]*k
		sub.stageFusedBatch(sub.batch, src[lo:hi], dst[lo:hi])
	}
	if se.x != nil {
		se.binSched.Reset(se.x.numChunks)
		se.drainSched.Reset(se.x.numBuckets)
	}
	se.curSrc, se.curDst = src, dst
	se.pool.Run(se.batchJob)
	se.curSrc, se.curDst = nil, nil
	for _, sub := range se.engs {
		sub.unstageFused()
	}
	se.harvest()
	se.breakdown.Wall += time.Since(start)
}

// batchWorker is fusedWorker with K-wide lanes.
//
//ihtl:noalloc
func (se *ShardedEngine) batchWorker(w int) {
	sLo, sHi := se.groups.Shards(w)
	for s := sLo; s < sHi; s++ {
		sub := se.engs[s]
		sub.batch.fusedJob(se.groups.Local(w, s))
	}
	if se.x == nil {
		se.runEpilogue(w)
		return
	}
	src, dst := se.curSrc, se.curDst
	clk := &se.xClocks[w]
	t0 := time.Now()
	se.binWorkerBatch(w, src)
	t1 := time.Now()
	clk.bin += t1.Sub(t0)
	if !se.xBarrier.WaitAbort(se.pool) {
		return
	}
	t2 := time.Now()
	se.drainWorkerBatch(w, dst)
	clk.drain += time.Since(t2)
	se.runEpilogue(w)
}

//ihtl:noalloc
func (se *ShardedEngine) binWorkerBatch(w int, src []float64) {
	for !se.pool.Aborted() {
		lo, hi, ok := se.binSched.Next(w, 1)
		if !ok {
			return
		}
		faultinject.Fire(faultinject.SiteShardPush)
		for c := lo; c < hi; c++ {
			se.xBinChunkBatch(c, src)
		}
	}
}

// xBinChunkBatch is xBinChunk with K-wide lanes: one slot per cross
// edge as in the scalar path (the shared cursors advance by one), K
// contiguous values per slot. All-(+0.0) lane groups are skipped with
// the scalar path's bit-transparency argument applied lane-wise.
//
//ihtl:noalloc
//ihtl:nobce
//ihtl:noescape
func (se *ShardedEngine) xBinChunkBatch(c int, src []float64) {
	x := se.x
	k := se.batchK
	C := x.numChunks
	binCur, binOff := x.binCur, x.binOff
	for b := 0; b < x.numBuckets; b++ {
		unchecked.SetAt(binCur, b*C+c, unchecked.At(binOff, b*C+c))
	}
	shift := x.shift
	xIndex, xRows := x.xIndex, x.xRows
	binRows, binVals := x.binRows, se.xBinVals
	sLo, sHi := unchecked.At(x.chunkBounds, c), unchecked.At(x.chunkBounds, c+1)
	for s := sLo; s < sHi; s++ {
		xs := unchecked.SliceAt(src, s*k, k)
		if spmv.SkipZeroLanes(xs) {
			continue
		}
		end := unchecked.At(xIndex, s+1)
		for i := unchecked.At(xIndex, s); i < end; i++ {
			row := unchecked.At(xRows, int(i))
			seg := int(row>>shift)*C + c
			p := unchecked.At(binCur, seg)
			unchecked.SetAt(binRows, int(p), row)
			copy(unchecked.SliceAt(binVals, int(p)*k, k), xs)
			unchecked.SetAt(binCur, seg, p+1)
		}
	}
}

//ihtl:noalloc
func (se *ShardedEngine) drainWorkerBatch(w int, dst []float64) {
	for !se.pool.Aborted() {
		lo, hi, ok := se.drainSched.Next(w, 1)
		if !ok {
			return
		}
		faultinject.Fire(faultinject.SiteShardExchange)
		for b := lo; b < hi; b++ {
			se.xDrainBucketBatch(b, dst)
		}
	}
}

// xDrainBucketBatch is xDrainBucket with K-wide lanes; same no-zeroing
// add-onto-local discipline.
//
//ihtl:noalloc
//ihtl:nobce
//ihtl:noescape
func (se *ShardedEngine) xDrainBucketBatch(b int, dst []float64) {
	x := se.x
	k := se.batchK
	C := x.numChunks
	binOff, binCur := x.binOff, x.binCur
	binRows, binVals := x.binRows, se.xBinVals
	for c := 0; c < C; c++ {
		seg := b*C + c
		end := unchecked.At(binCur, seg)
		for p := unchecked.At(binOff, seg); p < end; p++ {
			row := int(unchecked.At(binRows, int(p)))
			vals := unchecked.SliceAt(binVals, int(p)*k, k)
			out := unchecked.SliceAt(dst, row*k, k)
			for j := 0; j < k; j++ {
				unchecked.AddAt(out, j, unchecked.At(vals, j))
			}
		}
	}
}

// stepPhasedBatch is stepPhased with K-wide lanes: every shard's
// phased batch pipeline sequentially, then the K-wide exchange bin and
// drain dispatches (the phased part jobs switch on the staged width).
func (se *ShardedEngine) stepPhasedBatch(src, dst []float64) {
	start := time.Now()
	k := se.batchK
	for s, sub := range se.engs {
		lo, hi := se.sg.Bounds[s]*k, se.sg.Bounds[s+1]*k
		sub.stepPhasedBatch(sub.batch, src[lo:hi], dst[lo:hi])
	}
	if se.x != nil {
		se.curSrc, se.curDst = src, dst
		se.pool.ForEachPart(se.x.numChunks, se.phasedBinJob)
		se.pool.ForEachPart(se.x.numBuckets, se.phasedDrainJob)
		se.curSrc, se.curDst = nil, nil
	}
	se.harvest()
	se.breakdown.Wall += time.Since(start)
}
