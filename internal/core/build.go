package core

import (
	"cmp"
	"context"
	"errors"
	"fmt"
	"slices"
	"sync"
	"time"

	"ihtl/internal/compress"
	"ihtl/internal/faultinject"
	"ihtl/internal/graph"
	"ihtl/internal/sched"
)

// FlippedBlock holds the incoming edges of one block of B in-hubs in
// push (row-major, CSR-by-source) form. Sources are the vertices with
// new IDs [0, NumHubs+NumVWEH) — fringe vertices have no edges to
// hubs and are excluded, which both shrinks the topology and avoids
// streaming their vertex data (§3.1).
type FlippedBlock struct {
	// HubLo and HubHi bound the block's hub range in new IDs.
	HubLo, HubHi int
	// Index has NumPushSources+1 offsets into Dsts; the edges of
	// source s are Dsts[Index[s]:Index[s+1]].
	Index []int64
	// Dsts are hub destinations in new IDs (all in [HubLo, HubHi)),
	// sorted ascending within each source's run: the push kernels
	// accumulate per destination, so within-row order changes no
	// result bit, and sorted runs make the varint gap encoding
	// effective. Nil when only the varint form is resident (a v2
	// engine file loaded without materialising flat topology); Index
	// is always resident.
	Dsts []graph.VID
	// Sources is |FVᵢ|: the number of sources with at least one edge
	// into this block (the §3.3 block-admission statistic).
	Sources int
	// Enc is the chunked varint-gap encoding of Dsts, built lazily by
	// EnsureEncoded or loaded from a v2 engine file. Engines with
	// BlockEncoding varint traverse it instead of Dsts.
	Enc *compress.Chunked
}

// NumEdges returns the edge count of the block. Index-based, so it is
// exact whether the flat or only the encoded adjacency is resident.
func (b *FlippedBlock) NumEdges() int64 {
	if n := len(b.Index); n > 1 {
		return b.Index[n-1]
	}
	return 0
}

// SparseBlock holds the incoming edges of all non-hub vertices in
// pull (column-major, CSC-by-destination) form, over new IDs.
type SparseBlock struct {
	// DestLo is the first destination new ID (== NumHubs).
	DestLo int
	// Index has NumV-DestLo+1 offsets into Srcs.
	Index []int64
	// Srcs are source new IDs grouped by destination, sorted. Nil when
	// only the varint form is resident; Index is always resident.
	Srcs []graph.VID
	// Enc is the chunked varint-gap encoding of Srcs; see
	// FlippedBlock.Enc.
	Enc *compress.Chunked

	// HeavyDeg and Heavy are the degree buckets of the degree-aware
	// sparse schedule (SparsePullDegree): rows (destinations, relative
	// to DestLo) whose in-degree reaches HeavyDeg are listed ascending
	// in Heavy and claimed over edge-balanced list parts, while the
	// remaining short rows batch into coarse chunks. Both are derived
	// purely from Index — the build fills them as a counting pass
	// alongside the CSC construction, and deserialised graphs (whose
	// format predates the fields) re-derive them lazily via
	// EnsureDegreeBuckets. HeavyDeg == 0 means "not yet derived".
	HeavyDeg int64
	Heavy    []int32
}

// heavyDegThreshold picks the degree-bucket boundary from the block's
// shape: 8x the mean row degree, floored at 64 so mostly-uniform
// blocks keep an empty heavy list. Deterministic in Index alone, so a
// lazy re-derivation after deserialisation reproduces the build's
// buckets exactly.
func (s *SparseBlock) heavyDegThreshold() int64 {
	n := int64(len(s.Index)) - 1
	if n <= 0 {
		return 64
	}
	mean := s.Index[n] / n
	if t := 8 * mean; t > 64 {
		return t
	}
	return 64
}

// EnsureDegreeBuckets derives HeavyDeg and Heavy from Index when they
// are absent (graphs deserialised from the versioned binary format,
// which does not store them). Built graphs already carry them. The
// derivation is deterministic, so engines constructed before and after
// a serialisation round-trip schedule identically.
//
// NOT safe for concurrent callers: this is the unguarded primitive the
// build's single-threaded passes call on a not-yet-published block.
// Anything holding a full *IHTL (engine construction, concurrent
// callers) must go through (*IHTL).EnsureDegreeBuckets, which takes
// the graph's lazy-derivation lock.
func (s *SparseBlock) EnsureDegreeBuckets() {
	if s.HeavyDeg != 0 {
		return
	}
	s.HeavyDeg = s.heavyDegThreshold()
	n := len(s.Index) - 1
	s.Heavy = s.Heavy[:0]
	for i := 0; i < n; i++ {
		if s.Index[i+1]-s.Index[i] >= s.HeavyDeg {
			s.Heavy = append(s.Heavy, int32(i))
		}
	}
}

// NumEdges returns the edge count of the sparse block. Index-based,
// like FlippedBlock.NumEdges.
func (s *SparseBlock) NumEdges() int64 {
	if n := len(s.Index); n > 1 {
		return s.Index[n-1]
	}
	return 0
}

// IHTL is the iHTL graph (Figure 3): the relabeling arrays, the
// flipped blocks, and the sparse block.
type IHTL struct {
	// NumV, NumE mirror the original graph.
	NumV int
	NumE int64
	// NumHubs, NumVWEH, NumFV partition the vertices; new IDs are
	// assigned in that order (hubs first — Figure 4).
	NumHubs, NumVWEH, NumFV int
	// HubsPerBlock is the resolved B.
	HubsPerBlock int
	// NewID maps original vertex IDs to iHTL IDs; OldID is the
	// inverse (OldID is the "relabeling array" of Figure 4).
	NewID, OldID []graph.VID
	// Blocks are the flipped blocks, in hub-rank order.
	Blocks []FlippedBlock
	// Sparse is the pull-direction remainder.
	Sparse SparseBlock
	// MinHubDegree is the smallest original in-degree among selected
	// hubs (Table 5).
	MinHubDegree int

	params     Params
	buildStats BuildBreakdown

	// lazyMu serialises the lazy, idempotent derivations over the
	// graph's resident forms — EnsureEncoded, EnsureFlatTopology,
	// DropFlatTopology and (*IHTL).EnsureDegreeBuckets — so several
	// engines may be constructed over one IHTL from concurrent
	// goroutines. The derived fields are immutable once present;
	// readers are ordered after their own constructor's locked Ensure
	// call, so the hot paths stay lock-free.
	lazyMu sync.Mutex
}

// EnsureDegreeBuckets derives the sparse block's degree buckets under
// the graph's lazy-derivation lock, making concurrent engine
// construction over one IHTL safe. See SparseBlock.EnsureDegreeBuckets
// for the unguarded primitive the build's single-threaded passes use.
func (ih *IHTL) EnsureDegreeBuckets() {
	ih.lazyMu.Lock()
	ih.Sparse.EnsureDegreeBuckets()
	ih.lazyMu.Unlock()
}

// NumPushSources returns the number of vertices traversed during push
// (hubs + VWEH).
func (ih *IHTL) NumPushSources() int { return ih.NumHubs + ih.NumVWEH }

// FlippedEdges returns the total edge count across flipped blocks.
func (ih *IHTL) FlippedEdges() int64 {
	var e int64
	for i := range ih.Blocks {
		e += ih.Blocks[i].NumEdges()
	}
	return e
}

// Vertex classes of §3.2. New IDs are assigned hub, VWEH, FV — in
// that order (Figure 4).
const (
	classFV = iota
	classVWEH
	classHub
)

// Build constructs the iHTL graph of g per §3.2-3.3, sequentially.
func Build(g *graph.Graph, p Params) (*IHTL, error) {
	return BuildWith(g, p, nil)
}

// BuildWith is Build parallelised on pool: hub ranking, vertex
// classification, relabeling and block construction all run across
// the pool's workers, producing output bit-for-bit identical to the
// sequential Build. A nil pool (or a one-worker pool) selects the
// sequential path. The phase breakdown of either path is available
// through (*IHTL).BuildStats afterwards.
func BuildWith(g *graph.Graph, p Params, pool *sched.Pool) (*IHTL, error) {
	return BuildWithCtx(nil, g, p, pool)
}

// errCoreBuildAborted is the placeholder error of a phase check that
// observed the pool's abort flag; the deferred region close replaces
// it with the underlying cause (ctx.Err() or a *sched.PanicError).
var errCoreBuildAborted = errors.New("core: build aborted")

// BuildWithCtx is BuildWith with cancellation and panic isolation:
// the whole rank → select → relabel → blocks pipeline runs inside one
// fallible pool region, so cancelling ctx stops in-flight passes at
// their next chunk claim and returns ctx.Err() between phases, and a
// panic in any pool worker comes back as a *sched.PanicError instead
// of crashing the process. ctx may be nil (no cancellation); a nil or
// single-worker pool runs sequentially with the same between-phase
// ctx checks.
func BuildWithCtx(ctx context.Context, g *graph.Graph, p Params, pool *sched.Pool) (ih *IHTL, err error) {
	start := time.Now()
	if g == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rp := p.withDefaults()
	if pool != nil && pool.Workers() <= 1 {
		pool = nil
	}
	if pool != nil {
		end, ferr := pool.Fallible(ctx)
		if ferr != nil {
			return nil, ferr
		}
		defer func() {
			if rerr := end(); rerr != nil {
				ih, err = nil, rerr
			}
		}()
	}
	check := func() error {
		if pool != nil && pool.Aborted() {
			return errCoreBuildAborted
		}
		if ctx != nil {
			return ctx.Err()
		}
		return nil
	}
	ih = &IHTL{NumV: g.NumV, NumE: g.NumE, HubsPerBlock: rp.HubsPerBlock, params: rp}
	if g.NumV == 0 {
		ih.NewID = []graph.VID{}
		ih.OldID = []graph.VID{}
		ih.Sparse.Index = []int64{0}
		ih.buildStats.Wall = time.Since(start)
		return ih, nil
	}
	var clk []buildClock
	if pool != nil {
		clk = make([]buildClock, pool.Workers())
	}

	t := time.Now()
	var ranked []graph.VID
	if pool == nil {
		ranked = rankByInDegree(g)
	} else {
		ranked = rankByInDegreePar(g, pool, clk)
	}
	ih.buildStats.Rank = time.Since(t)
	if err := check(); err != nil {
		return nil, err
	}

	t = time.Now()
	var numHubs, blocks, minHubDeg int
	if rp.FastSelect {
		numHubs, blocks, minHubDeg = selectHubsFast(g, ranked, rp)
	} else {
		numHubs, blocks, minHubDeg = selectHubs(g, ranked, rp)
	}
	ih.buildStats.Select = time.Since(t)
	ih.MinHubDegree = minHubDeg
	ih.NumHubs = numHubs
	if err := check(); err != nil {
		return nil, err
	}

	t = time.Now()
	relabel(g, ih, ranked, rp, pool, clk)
	ih.buildStats.Relabel = time.Since(t)
	if err := check(); err != nil {
		return nil, err
	}

	t = time.Now()
	buildFlippedBlocks(g, ih, blocks, pool, clk)
	if err := check(); err != nil {
		return nil, err
	}
	buildSparseBlock(g, ih, pool, clk)
	ih.buildStats.Blocks = time.Since(t)
	if err := check(); err != nil {
		return nil, err
	}

	if got := ih.FlippedEdges() + ih.Sparse.NumEdges(); got != g.NumE {
		return nil, fmt.Errorf("core: internal error: blocks cover %d edges, want %d", got, g.NumE)
	}
	for i := range clk {
		ih.buildStats.RankBusy += clk[i].rank
		ih.buildStats.RelabelBusy += clk[i].relabel
		ih.buildStats.BlocksBusy += clk[i].blocks
	}
	ih.buildStats.Wall = time.Since(start)
	return ih, nil
}

// relabel classifies every vertex (hub / VWEH / FV) and fills the
// NewID/OldID arrays (Figure 4): hubs in rank order, then VWEH, then
// FV — each class in original order (§3.2), or reordered under the
// DegreeSortClasses / SparseOrder ablations.
func relabel(g *graph.Graph, ih *IHTL, ranked []graph.VID, rp Params, pool *sched.Pool, clk []buildClock) {
	numHubs := ih.NumHubs
	class := make([]uint8, g.NumV)
	ih.NewID = make([]graph.VID, g.NumV)
	ih.OldID = make([]graph.VID, g.NumV)

	// Classify. The sequential pass walks the in-edges of every hub;
	// the parallel pass flips the direction — each worker scans the
	// out-edges of its own vertices for a hub destination — so every
	// class[v] has exactly one writer. The two define the same VWEH
	// set: s has an edge into some hub h iff h appears in Out(s).
	if pool == nil {
		for i := 0; i < numHubs; i++ {
			class[ranked[i]] = classHub
		}
		for i := 0; i < numHubs; i++ {
			for _, s := range g.In(ranked[i]) {
				if class[s] == classFV {
					class[s] = classVWEH
				}
			}
		}
	} else {
		isHub := make([]bool, g.NumV)
		pool.ForStatic(numHubs, func(worker, lo, hi int) {
			faultinject.Fire(faultinject.SiteBuildFill)
			t := time.Now()
			markHubs(isHub, ranked, lo, hi)
			c := &clk[worker]
			c.relabel += time.Since(t)
		})
		pool.ForDynamic(g.NumV, 1024, func(worker, lo, hi int) {
			t := time.Now()
			classifyRange(g, isHub, class, lo, hi)
			c := &clk[worker]
			c.relabel += time.Since(t)
		})
	}

	// Hubs take new IDs [0, numHubs) in rank order.
	if pool == nil {
		for i := 0; i < numHubs; i++ {
			ih.OldID[i] = ranked[i]
			ih.NewID[ranked[i]] = graph.VID(i)
		}
	} else {
		pool.ForStatic(numHubs, func(worker, lo, hi int) {
			faultinject.Fire(faultinject.SiteBuildFill)
			t := time.Now()
			assignHubs(ih.NewID, ih.OldID, ranked, lo, hi)
			c := &clk[worker]
			c.relabel += time.Since(t)
		})
	}

	// rankWithin orders class members under the SparseOrder extension
	// (§6: apply e.g. Rabbit-Order to the sparse block): nil means
	// original order.
	var rankWithin []graph.VID
	if rp.SparseOrder != nil {
		rankWithin = rp.SparseOrder.Permutation(g)
	}
	if pool != nil && !rp.DegreeSortClasses && rankWithin == nil {
		ih.NumVWEH = assignClassPar(ih, class, classVWEH, numHubs, pool, clk)
		ih.NumFV = assignClassPar(ih, class, classFV, numHubs+ih.NumVWEH, pool, clk)
		return
	}
	next := numHubs
	assignClass := func(want uint8) int {
		members := make([]graph.VID, 0)
		for v := 0; v < g.NumV; v++ {
			if class[v] == want {
				members = append(members, graph.VID(v))
			}
		}
		switch {
		case rp.DegreeSortClasses:
			slices.SortFunc(members, func(a, b graph.VID) int {
				if c := cmp.Compare(g.Degree(b), g.Degree(a)); c != 0 {
					return c
				}
				return cmp.Compare(a, b)
			})
		case rankWithin != nil:
			slices.SortFunc(members, func(a, b graph.VID) int {
				return cmp.Compare(rankWithin[a], rankWithin[b])
			})
		}
		for _, v := range members {
			ih.OldID[next] = v
			ih.NewID[v] = graph.VID(next)
			next++
		}
		return len(members)
	}
	ih.NumVWEH = assignClass(classVWEH)
	ih.NumFV = assignClass(classFV)
}

//ihtl:noalloc
func markHubs(isHub []bool, ranked []graph.VID, lo, hi int) {
	for i := lo; i < hi; i++ {
		isHub[ranked[i]] = true
	}
}

//ihtl:noalloc
func classifyRange(g *graph.Graph, isHub []bool, class []uint8, lo, hi int) {
	for v := lo; v < hi; v++ {
		if isHub[v] {
			class[v] = classHub
			continue
		}
		cl := uint8(classFV)
		for _, d := range g.Out(graph.VID(v)) {
			if isHub[d] {
				cl = classVWEH
				break
			}
		}
		class[v] = cl
	}
}

//ihtl:noalloc
func assignHubs(newID, oldID, ranked []graph.VID, lo, hi int) {
	for i := lo; i < hi; i++ {
		v := ranked[i]
		oldID[i] = v
		newID[v] = graph.VID(i)
	}
}

// assignClassPar gives the members of one class their new IDs
// starting at base, in ascending original-ID order — the same order
// as the sequential scan — via a per-worker count/prefix/fill pass.
func assignClassPar(ih *IHTL, class []uint8, want uint8, base int, pool *sched.Pool, clk []buildClock) int {
	w := pool.Workers()
	counts := make([]int64, w+1)
	n := len(class)
	pool.ForStatic(n, func(worker, lo, hi int) {
		faultinject.Fire(faultinject.SiteBuildFill)
		t := time.Now()
		counts[worker+1] = countClass(class[lo:hi], want)
		c := &clk[worker]
		c.relabel += time.Since(t)
	})
	for i := 0; i < w; i++ {
		counts[i+1] += counts[i]
	}
	pool.ForStatic(n, func(worker, lo, hi int) {
		faultinject.Fire(faultinject.SiteBuildFill)
		t := time.Now()
		fillClass(class, lo, hi, want, base+int(counts[worker]), ih.NewID, ih.OldID)
		c := &clk[worker]
		c.relabel += time.Since(t)
	})
	return int(counts[w])
}

//ihtl:noalloc
func countClass(class []uint8, want uint8) int64 {
	var n int64
	for _, c := range class {
		if c == want {
			n++
		}
	}
	return n
}

//ihtl:noalloc
func fillClass(class []uint8, lo, hi int, want uint8, next int, newID, oldID []graph.VID) {
	for v := lo; v < hi; v++ {
		if class[v] == want {
			oldID[next] = graph.VID(v)
			newID[v] = graph.VID(next)
			next++
		}
	}
}

// rankByInDegree returns vertex IDs sorted by descending in-degree,
// ties broken by ascending ID for determinism. Degrees are bounded by
// NumE, so an O(V + maxDegree) counting sort replaces the previous
// O(V log V) comparison sort: bucket starts are laid out from the
// highest degree down, and an ascending-ID scatter preserves the tie
// order.
func rankByInDegree(g *graph.Graph) []graph.VID {
	n := g.NumV
	ranked := make([]graph.VID, n)
	maxDeg := maxInDegree(g, 0, n)
	counts := make([]int64, maxDeg+1)
	countDegrees(g, 0, n, counts)
	descendingStarts(counts)
	scatterRank(g, 0, n, counts, ranked)
	return ranked
}

// rankByInDegreePar is rankByInDegree across the pool: per-worker
// degree histograms over contiguous vertex ranges, a descending-degree
// prefix over the folded totals, per-(degree,worker) scatter cursors,
// and a per-worker scatter. Workers own ascending vertex ranges and
// scatter ascending, so ties land in ascending-ID order — bit-for-bit
// the sequential result.
func rankByInDegreePar(g *graph.Graph, pool *sched.Pool, clk []buildClock) []graph.VID {
	n := g.NumV
	w := pool.Workers()
	maxs := make([]int, w)
	pool.ForStatic(n, func(worker, lo, hi int) {
		faultinject.Fire(faultinject.SiteBuildFill)
		t := time.Now()
		maxs[worker] = maxInDegree(g, lo, hi)
		c := &clk[worker]
		c.rank += time.Since(t)
	})
	maxDeg := 0
	for _, m := range maxs {
		if m > maxDeg {
			maxDeg = m
		}
	}
	k := maxDeg + 1
	counts := make([]int64, w*k)
	pool.ForStatic(n, func(worker, lo, hi int) {
		faultinject.Fire(faultinject.SiteBuildFill)
		t := time.Now()
		countDegrees(g, lo, hi, counts[worker*k:(worker+1)*k])
		c := &clk[worker]
		c.rank += time.Since(t)
	})
	// Fold per-worker histograms into per-degree totals.
	tot := make([]int64, k)
	pool.ForStatic(k, func(worker, lo, hi int) {
		faultinject.Fire(faultinject.SiteBuildFill)
		t := time.Now()
		for d := lo; d < hi; d++ {
			var s int64
			for i := 0; i < w; i++ {
				s += counts[i*k+d]
			}
			tot[d] = s
		}
		c := &clk[worker]
		c.rank += time.Since(t)
	})
	descendingStarts(tot)
	// Worker i's run of degree d starts after the runs of workers < i.
	pool.ForStatic(k, func(worker, lo, hi int) {
		faultinject.Fire(faultinject.SiteBuildFill)
		t := time.Now()
		for d := lo; d < hi; d++ {
			off := tot[d]
			for i := 0; i < w; i++ {
				c := counts[i*k+d]
				counts[i*k+d] = off
				off += c
			}
		}
		c := &clk[worker]
		c.rank += time.Since(t)
	})
	ranked := make([]graph.VID, n)
	pool.ForStatic(n, func(worker, lo, hi int) {
		faultinject.Fire(faultinject.SiteBuildFill)
		t := time.Now()
		scatterRank(g, lo, hi, counts[worker*k:(worker+1)*k], ranked)
		c := &clk[worker]
		c.rank += time.Since(t)
	})
	return ranked
}

//ihtl:noalloc
func maxInDegree(g *graph.Graph, lo, hi int) int {
	m := 0
	for v := lo; v < hi; v++ {
		if d := g.InDegree(graph.VID(v)); d > m {
			m = d
		}
	}
	return m
}

//ihtl:noalloc
func countDegrees(g *graph.Graph, lo, hi int, counts []int64) {
	for v := lo; v < hi; v++ {
		counts[g.InDegree(graph.VID(v))]++
	}
}

// descendingStarts turns per-degree counts into bucket start offsets
// for a descending-degree layout: counts[d] becomes the number of
// vertices with degree above d.
//
//ihtl:noalloc
func descendingStarts(counts []int64) {
	var off int64
	for d := len(counts) - 1; d >= 0; d-- {
		c := counts[d]
		counts[d] = off
		off += c
	}
}

//ihtl:noalloc
func scatterRank(g *graph.Graph, lo, hi int, cursor []int64, ranked []graph.VID) {
	for v := lo; v < hi; v++ {
		d := g.InDegree(graph.VID(v))
		ranked[cursor[d]] = graph.VID(v)
		cursor[d]++
	}
}

// selectHubs implements §3.3: tentative blocks of B top-in-degree
// vertices are admitted while the i-th block's source population
// |FVᵢ| exceeds FVThreshold·|FV₁|. Returns the hub count, the number
// of admitted blocks, and the minimum hub in-degree.
func selectHubs(g *graph.Graph, ranked []graph.VID, p Params) (numHubs, blocks, minDeg int) {
	b := p.HubsPerBlock
	seen := make([]bool, g.NumV) // FV-membership marker, reused per block
	var fv1 int
	for blk := 0; blk < p.MaxBlocks; blk++ {
		lo := blk * b
		if lo >= g.NumV {
			break
		}
		hi := lo + b
		if hi > g.NumV {
			hi = g.NumV
		}
		// Degree floor: stop at the first block whose top vertex is
		// already below the hub threshold.
		if g.InDegree(ranked[lo]) < p.MinHubDegree {
			break
		}
		// |FVᵢ|: distinct sources with an edge into this block's
		// hubs ("a pass over in-edges ... to mark the FV members and
		// one other pass ... to count", §3.3).
		sources := 0
		var marked []graph.VID
		for i := lo; i < hi; i++ {
			if g.InDegree(ranked[i]) < p.MinHubDegree {
				// Trailing low-degree vertices within an otherwise
				// admitted block are still hubs only if the block is
				// admitted as a whole; they contribute no sources.
				continue
			}
			for _, s := range g.In(ranked[i]) {
				if !seen[s] {
					seen[s] = true
					marked = append(marked, s)
					sources++
				}
			}
		}
		for _, s := range marked {
			seen[s] = false
		}
		if blk == 0 {
			if sources == 0 {
				break
			}
			fv1 = sources
		} else if float64(sources) <= p.FVThreshold*float64(fv1) {
			break
		}
		// Trim trailing sub-threshold vertices from the last block.
		for hi > lo && g.InDegree(ranked[hi-1]) < p.MinHubDegree {
			hi--
		}
		numHubs = hi
		blocks++
		if hi >= g.NumV {
			break
		}
	}
	if numHubs > 0 {
		// ranked is sorted by descending in-degree, so the last
		// admitted hub carries the minimum (Table 5's "Min. Hub
		// Degree").
		minDeg = g.InDegree(ranked[numHubs-1])
	}
	return numHubs, blocks, minDeg
}

// selectHubsFast implements the §6 lower-complexity variant: compute
// FV₁ once (the distinct sources of block 1's in-edges), then a
// single pass over the OUT-edges of FV₁ members marks, per tentative
// block, which of those sources reach it — estimating every |FVᵢ| at
// once instead of one in-edge pass per block. Sources outside FV₁
// are not counted, so the estimate is a lower bound and the block
// count can only be smaller than the exact §3.3 result.
func selectHubsFast(g *graph.Graph, ranked []graph.VID, p Params) (numHubs, blocks, minDeg int) {
	b := p.HubsPerBlock
	maxBlocks := p.MaxBlocks
	if maxBlocks > 64 {
		maxBlocks = 64 // bitset width; the paper's graphs need <= 16
	}
	if g.NumV == 0 || g.InDegree(ranked[0]) < p.MinHubDegree {
		return 0, 0, 0
	}
	// Candidate block of each vertex, by rank.
	blockOf := make([]int8, g.NumV)
	for i := range blockOf {
		blockOf[i] = -1
	}
	limit := maxBlocks * b
	if limit > g.NumV {
		limit = g.NumV
	}
	for i := 0; i < limit; i++ {
		if g.InDegree(ranked[i]) < p.MinHubDegree {
			limit = i
			break
		}
		blockOf[ranked[i]] = int8(i / b)
	}
	if limit == 0 {
		return 0, 0, 0
	}

	// FV₁: distinct sources with an edge into block 1.
	hi1 := b
	if hi1 > limit {
		hi1 = limit
	}
	seen := make([]bool, g.NumV)
	var fv1 []graph.VID
	for i := 0; i < hi1; i++ {
		for _, s := range g.In(ranked[i]) {
			if !seen[s] {
				seen[s] = true
				fv1 = append(fv1, s)
			}
		}
	}
	if len(fv1) == 0 {
		return 0, 0, 0
	}
	// One pass over FV₁'s out-edges: per-source block bitsets
	// aggregated into per-block distinct-source counts.
	counts := make([]int, (limit+b-1)/b)
	for _, s := range fv1 {
		var mask uint64
		for _, d := range g.Out(s) {
			if blk := blockOf[d]; blk >= 0 {
				mask |= 1 << uint(blk)
			}
		}
		for blk := 0; mask != 0; blk++ {
			if mask&1 != 0 {
				counts[blk]++
			}
			mask >>= 1
		}
	}
	threshold := p.FVThreshold * float64(counts[0])
	for blk := 0; blk < len(counts); blk++ {
		if blk > 0 && float64(counts[blk]) <= threshold {
			break
		}
		hi := (blk + 1) * b
		if hi > limit {
			hi = limit
		}
		numHubs = hi
		blocks++
	}
	if numHubs > 0 {
		minDeg = g.InDegree(ranked[numHubs-1])
	}
	return numHubs, blocks, minDeg
}

// buildFlippedBlocks creates the per-block push CSR: "a pass over
// outgoing edges from {hubs ∪ VWEH} in the CSR representation of the
// main graph and selecting edges with in-hub destinations" (§3.2).
// The parallel path partitions sources: each source's slot in every
// block's Index (and its Dsts run) has exactly one writer, and the
// run is filled in the same out-edge scan order as the sequential
// pass, so the blocks come out identical.
func buildFlippedBlocks(g *graph.Graph, ih *IHTL, numBlocks int, pool *sched.Pool, clk []buildClock) {
	if numBlocks == 0 || ih.NumHubs == 0 {
		return
	}
	b := ih.HubsPerBlock
	nsrc := ih.NumPushSources()
	ih.Blocks = make([]FlippedBlock, numBlocks)
	for blk := range ih.Blocks {
		lo := blk * b
		hi := lo + b
		if hi > ih.NumHubs {
			hi = ih.NumHubs
		}
		ih.Blocks[blk] = FlippedBlock{
			HubLo: lo,
			HubHi: hi,
			Index: make([]int64, nsrc+1),
		}
	}
	if pool == nil {
		blockOf := func(hubNew int) int { return hubNew / b }
		// Count per (source, block) degrees.
		for s := 0; s < nsrc; s++ {
			old := ih.OldID[s]
			for _, d := range g.Out(old) {
				nd := int(ih.NewID[d])
				if nd < ih.NumHubs {
					ih.Blocks[blockOf(nd)].Index[s+1]++
				}
			}
		}
		for blk := range ih.Blocks {
			idx := ih.Blocks[blk].Index
			for s := 0; s < nsrc; s++ {
				idx[s+1] += idx[s]
			}
			ih.Blocks[blk].Dsts = make([]graph.VID, idx[nsrc])
		}
		cursors := make([][]int64, numBlocks)
		for blk := range cursors {
			cursors[blk] = make([]int64, nsrc)
			copy(cursors[blk], ih.Blocks[blk].Index[:nsrc])
		}
		for s := 0; s < nsrc; s++ {
			old := ih.OldID[s]
			for _, d := range g.Out(old) {
				nd := int(ih.NewID[d])
				if nd < ih.NumHubs {
					blk := blockOf(nd)
					ih.Blocks[blk].Dsts[cursors[blk][s]] = graph.VID(nd)
					cursors[blk][s]++
				}
			}
		}
		sortFlippedRows(ih, 0, nsrc)
		for blk := range ih.Blocks {
			fb := &ih.Blocks[blk]
			fb.Sources = countBlockSources(fb.Index, nsrc)
		}
		return
	}

	pool.ForDynamic(nsrc, 512, func(worker, lo, hi int) {
		t := time.Now()
		countFlippedRange(g, ih, b, lo, hi)
		c := &clk[worker]
		c.blocks += time.Since(t)
	})
	for blk := range ih.Blocks {
		sched.PrefixSum(pool, ih.Blocks[blk].Index)
		ih.Blocks[blk].Dsts = make([]graph.VID, ih.Blocks[blk].Index[nsrc])
	}
	cursors := make([][]int64, numBlocks)
	for blk := range cursors {
		cursors[blk] = make([]int64, nsrc)
	}
	pool.ForStatic(nsrc, func(worker, lo, hi int) {
		faultinject.Fire(faultinject.SiteBuildFill)
		t := time.Now()
		for blk := range cursors {
			copy(cursors[blk][lo:hi], ih.Blocks[blk].Index[lo:hi])
		}
		c := &clk[worker]
		c.blocks += time.Since(t)
	})
	pool.ForDynamic(nsrc, 512, func(worker, lo, hi int) {
		t := time.Now()
		fillFlippedRange(g, ih, cursors, b, lo, hi)
		c := &clk[worker]
		c.blocks += time.Since(t)
	})
	pool.ForDynamic(nsrc, 512, func(worker, lo, hi int) {
		t := time.Now()
		sortFlippedRows(ih, lo, hi)
		c := &clk[worker]
		c.blocks += time.Since(t)
	})
	pool.ForEachPart(numBlocks, func(worker, blk int) {
		t := time.Now()
		fb := &ih.Blocks[blk]
		fb.Sources = countBlockSources(fb.Index, nsrc)
		c := &clk[worker]
		c.blocks += time.Since(t)
	})
}

//ihtl:noalloc
func countFlippedRange(g *graph.Graph, ih *IHTL, b, lo, hi int) {
	for s := lo; s < hi; s++ {
		old := ih.OldID[s]
		for _, d := range g.Out(old) {
			nd := int(ih.NewID[d])
			if nd < ih.NumHubs {
				ih.Blocks[nd/b].Index[s+1]++
			}
		}
	}
}

//ihtl:noalloc
func fillFlippedRange(g *graph.Graph, ih *IHTL, cursors [][]int64, b, lo, hi int) {
	for s := lo; s < hi; s++ {
		old := ih.OldID[s]
		for _, d := range g.Out(old) {
			nd := int(ih.NewID[d])
			if nd < ih.NumHubs {
				blk := nd / b
				cur := cursors[blk]
				ih.Blocks[blk].Dsts[cur[s]] = graph.VID(nd)
				cur[s]++
			}
		}
	}
}

// sortFlippedRows sorts the destination run of every source in
// [lo, hi) ascending, in every block. Each run has one owner, so the
// parallel pass produces the sequential pass's exact blocks. The out-
// edge scan fills runs in NewID-scrambled order; sorting restores the
// locality the gap encoding (and the hub-buffer access pattern)
// benefits from, and cannot change results: every destination
// accumulates the same multiset of contributions in the same
// per-accumulator order.
func sortFlippedRows(ih *IHTL, lo, hi int) {
	for blk := range ih.Blocks {
		fb := &ih.Blocks[blk]
		for s := lo; s < hi; s++ {
			row := fb.Dsts[fb.Index[s]:fb.Index[s+1]]
			if len(row) > 1 {
				slices.Sort(row)
			}
		}
	}
}

//ihtl:noalloc
func countBlockSources(index []int64, nsrc int) int {
	n := 0
	for s := 0; s < nsrc; s++ {
		if index[s+1] > index[s] {
			n++
		}
	}
	return n
}

// buildSparseBlock creates the pull CSC over non-hub destinations:
// "a pass over the CSC representation of the main graph for all
// in-edges to {VWEH ∪ FV} and relabeling source of edges" (§3.2).
// Destinations are independent — each owns a disjoint Srcs run — so
// the parallel fill work-steals over them (per-destination work is as
// skewed as the in-degree distribution).
func buildSparseBlock(g *graph.Graph, ih *IHTL, pool *sched.Pool, clk []buildClock) {
	destLo := ih.NumHubs
	n := ih.NumV - destLo
	sp := &ih.Sparse
	sp.DestLo = destLo
	sp.Index = make([]int64, n+1)
	if pool == nil {
		for nv := destLo; nv < ih.NumV; nv++ {
			old := ih.OldID[nv]
			sp.Index[nv-destLo+1] = int64(g.InDegree(old))
		}
		for i := 0; i < n; i++ {
			sp.Index[i+1] += sp.Index[i]
		}
		sp.Srcs = make([]graph.VID, sp.Index[n])
		for nv := destLo; nv < ih.NumV; nv++ {
			fillSparseDest(g, ih, nv)
		}
		sp.EnsureDegreeBuckets()
		return
	}
	idx := sp.Index
	pool.ForStatic(n, func(worker, lo, hi int) {
		faultinject.Fire(faultinject.SiteBuildFill)
		t := time.Now()
		for i := lo; i < hi; i++ {
			idx[i+1] = int64(g.InDegree(ih.OldID[destLo+i]))
		}
		c := &clk[worker]
		c.blocks += time.Since(t)
	})
	sched.PrefixSum(pool, sp.Index)
	sp.Srcs = make([]graph.VID, sp.Index[n])
	pool.ForSteal(n, 64, func(worker, lo, hi int) {
		t := time.Now()
		for i := lo; i < hi; i++ {
			fillSparseDest(g, ih, destLo+i)
		}
		c := &clk[worker]
		c.blocks += time.Since(t)
	})

	// Degree buckets for the SparsePullDegree schedule: the same
	// count/prefix/fill idiom as the class assignment, over static
	// ascending ranges so the heavy list comes out ascending — the
	// sequential EnsureDegreeBuckets result, bit for bit.
	sp.HeavyDeg = sp.heavyDegThreshold()
	w := pool.Workers()
	counts := make([]int64, w+1)
	pool.ForStatic(n, func(worker, lo, hi int) {
		faultinject.Fire(faultinject.SiteBuildFill)
		t := time.Now()
		counts[worker+1] = countHeavyRows(sp.Index, sp.HeavyDeg, lo, hi)
		c := &clk[worker]
		c.blocks += time.Since(t)
	})
	for i := 0; i < w; i++ {
		counts[i+1] += counts[i]
	}
	sp.Heavy = make([]int32, counts[w])
	pool.ForStatic(n, func(worker, lo, hi int) {
		faultinject.Fire(faultinject.SiteBuildFill)
		t := time.Now()
		fillHeavyRows(sp.Index, sp.HeavyDeg, lo, hi, sp.Heavy, int(counts[worker]))
		c := &clk[worker]
		c.blocks += time.Since(t)
	})
}

//ihtl:noalloc
func countHeavyRows(index []int64, heavyDeg int64, lo, hi int) int64 {
	var n int64
	for i := lo; i < hi; i++ {
		if index[i+1]-index[i] >= heavyDeg {
			n++
		}
	}
	return n
}

//ihtl:noalloc
func fillHeavyRows(index []int64, heavyDeg int64, lo, hi int, heavy []int32, next int) {
	for i := lo; i < hi; i++ {
		if index[i+1]-index[i] >= heavyDeg {
			heavy[next] = int32(i)
			next++
		}
	}
}

//ihtl:noalloc
func fillSparseDest(g *graph.Graph, ih *IHTL, nv int) {
	sp := &ih.Sparse
	lo := sp.Index[nv-sp.DestLo]
	hi := sp.Index[nv-sp.DestLo+1]
	dst := sp.Srcs[lo:hi]
	old := ih.OldID[nv]
	for i, s := range g.In(old) {
		dst[i] = ih.NewID[s]
	}
	slices.Sort(dst)
}
