package core

import (
	"fmt"
	"sort"

	"ihtl/internal/graph"
)

// FlippedBlock holds the incoming edges of one block of B in-hubs in
// push (row-major, CSR-by-source) form. Sources are the vertices with
// new IDs [0, NumHubs+NumVWEH) — fringe vertices have no edges to
// hubs and are excluded, which both shrinks the topology and avoids
// streaming their vertex data (§3.1).
type FlippedBlock struct {
	// HubLo and HubHi bound the block's hub range in new IDs.
	HubLo, HubHi int
	// Index has NumPushSources+1 offsets into Dsts; the edges of
	// source s are Dsts[Index[s]:Index[s+1]].
	Index []int64
	// Dsts are hub destinations in new IDs (all in [HubLo, HubHi)).
	Dsts []graph.VID
	// Sources is |FVᵢ|: the number of sources with at least one edge
	// into this block (the §3.3 block-admission statistic).
	Sources int
}

// NumEdges returns the edge count of the block.
func (b *FlippedBlock) NumEdges() int64 { return int64(len(b.Dsts)) }

// SparseBlock holds the incoming edges of all non-hub vertices in
// pull (column-major, CSC-by-destination) form, over new IDs.
type SparseBlock struct {
	// DestLo is the first destination new ID (== NumHubs).
	DestLo int
	// Index has NumV-DestLo+1 offsets into Srcs.
	Index []int64
	// Srcs are source new IDs grouped by destination, sorted.
	Srcs []graph.VID
}

// NumEdges returns the edge count of the sparse block.
func (s *SparseBlock) NumEdges() int64 { return int64(len(s.Srcs)) }

// IHTL is the iHTL graph (Figure 3): the relabeling arrays, the
// flipped blocks, and the sparse block.
type IHTL struct {
	// NumV, NumE mirror the original graph.
	NumV int
	NumE int64
	// NumHubs, NumVWEH, NumFV partition the vertices; new IDs are
	// assigned in that order (hubs first — Figure 4).
	NumHubs, NumVWEH, NumFV int
	// HubsPerBlock is the resolved B.
	HubsPerBlock int
	// NewID maps original vertex IDs to iHTL IDs; OldID is the
	// inverse (OldID is the "relabeling array" of Figure 4).
	NewID, OldID []graph.VID
	// Blocks are the flipped blocks, in hub-rank order.
	Blocks []FlippedBlock
	// Sparse is the pull-direction remainder.
	Sparse SparseBlock
	// MinHubDegree is the smallest original in-degree among selected
	// hubs (Table 5).
	MinHubDegree int

	params Params
}

// NumPushSources returns the number of vertices traversed during push
// (hubs + VWEH).
func (ih *IHTL) NumPushSources() int { return ih.NumHubs + ih.NumVWEH }

// FlippedEdges returns the total edge count across flipped blocks.
func (ih *IHTL) FlippedEdges() int64 {
	var e int64
	for i := range ih.Blocks {
		e += ih.Blocks[i].NumEdges()
	}
	return e
}

// Build constructs the iHTL graph of g per §3.2-3.3.
func Build(g *graph.Graph, p Params) (*IHTL, error) {
	if g == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rp := p.withDefaults()
	ih := &IHTL{NumV: g.NumV, NumE: g.NumE, HubsPerBlock: rp.HubsPerBlock, params: rp}
	if g.NumV == 0 {
		ih.NewID = []graph.VID{}
		ih.OldID = []graph.VID{}
		ih.Sparse.Index = []int64{0}
		return ih, nil
	}

	ranked := rankByInDegree(g)
	var numHubs, blocks, minHubDeg int
	if rp.FastSelect {
		numHubs, blocks, minHubDeg = selectHubsFast(g, ranked, rp)
	} else {
		numHubs, blocks, minHubDeg = selectHubs(g, ranked, rp)
	}
	ih.MinHubDegree = minHubDeg

	// Classify: hubs, VWEH (sources of in-edges to hubs), FV.
	const (
		classFV = iota
		classVWEH
		classHub
	)
	class := make([]uint8, g.NumV)
	for i := 0; i < numHubs; i++ {
		class[ranked[i]] = classHub
	}
	for i := 0; i < numHubs; i++ {
		for _, s := range g.In(ranked[i]) {
			if class[s] == classFV {
				class[s] = classVWEH
			}
		}
	}

	// Relabeling array (Figure 4): hubs in rank order, then VWEH,
	// then FV — each class in original order (§3.2), or by
	// descending degree under the DegreeSortClasses ablation.
	ih.NumHubs = numHubs
	ih.NewID = make([]graph.VID, g.NumV)
	ih.OldID = make([]graph.VID, g.NumV)
	next := 0
	for i := 0; i < numHubs; i++ {
		ih.OldID[next] = ranked[i]
		ih.NewID[ranked[i]] = graph.VID(next)
		next++
	}
	// rankWithin orders class members under the SparseOrder extension
	// (§6: apply e.g. Rabbit-Order to the sparse block): nil means
	// original order.
	var rankWithin []graph.VID
	if rp.SparseOrder != nil {
		rankWithin = rp.SparseOrder.Permutation(g)
	}
	assignClass := func(want uint8) int {
		members := make([]graph.VID, 0)
		for v := 0; v < g.NumV; v++ {
			if class[v] == want {
				members = append(members, graph.VID(v))
			}
		}
		switch {
		case rp.DegreeSortClasses:
			sort.Slice(members, func(i, j int) bool {
				di, dj := g.Degree(members[i]), g.Degree(members[j])
				if di != dj {
					return di > dj
				}
				return members[i] < members[j]
			})
		case rankWithin != nil:
			sort.Slice(members, func(i, j int) bool {
				return rankWithin[members[i]] < rankWithin[members[j]]
			})
		}
		for _, v := range members {
			ih.OldID[next] = v
			ih.NewID[v] = graph.VID(next)
			next++
		}
		return len(members)
	}
	ih.NumVWEH = assignClass(classVWEH)
	ih.NumFV = assignClass(classFV)

	buildFlippedBlocks(g, ih, blocks)
	buildSparseBlock(g, ih)

	if got := ih.FlippedEdges() + ih.Sparse.NumEdges(); got != g.NumE {
		return nil, fmt.Errorf("core: internal error: blocks cover %d edges, want %d", got, g.NumE)
	}
	return ih, nil
}

// rankByInDegree returns vertex IDs sorted by descending in-degree,
// ties broken by ascending ID for determinism.
func rankByInDegree(g *graph.Graph) []graph.VID {
	ranked := make([]graph.VID, g.NumV)
	for v := range ranked {
		ranked[v] = graph.VID(v)
	}
	sort.Slice(ranked, func(i, j int) bool {
		di, dj := g.InDegree(ranked[i]), g.InDegree(ranked[j])
		if di != dj {
			return di > dj
		}
		return ranked[i] < ranked[j]
	})
	return ranked
}

// selectHubs implements §3.3: tentative blocks of B top-in-degree
// vertices are admitted while the i-th block's source population
// |FVᵢ| exceeds FVThreshold·|FV₁|. Returns the hub count, the number
// of admitted blocks, and the minimum hub in-degree.
func selectHubs(g *graph.Graph, ranked []graph.VID, p Params) (numHubs, blocks, minDeg int) {
	b := p.HubsPerBlock
	seen := make([]bool, g.NumV) // FV-membership marker, reused per block
	var fv1 int
	for blk := 0; blk < p.MaxBlocks; blk++ {
		lo := blk * b
		if lo >= g.NumV {
			break
		}
		hi := lo + b
		if hi > g.NumV {
			hi = g.NumV
		}
		// Degree floor: stop at the first block whose top vertex is
		// already below the hub threshold.
		if g.InDegree(ranked[lo]) < p.MinHubDegree {
			break
		}
		// |FVᵢ|: distinct sources with an edge into this block's
		// hubs ("a pass over in-edges ... to mark the FV members and
		// one other pass ... to count", §3.3).
		sources := 0
		var marked []graph.VID
		for i := lo; i < hi; i++ {
			if g.InDegree(ranked[i]) < p.MinHubDegree {
				// Trailing low-degree vertices within an otherwise
				// admitted block are still hubs only if the block is
				// admitted as a whole; they contribute no sources.
				continue
			}
			for _, s := range g.In(ranked[i]) {
				if !seen[s] {
					seen[s] = true
					marked = append(marked, s)
					sources++
				}
			}
		}
		for _, s := range marked {
			seen[s] = false
		}
		if blk == 0 {
			if sources == 0 {
				break
			}
			fv1 = sources
		} else if float64(sources) <= p.FVThreshold*float64(fv1) {
			break
		}
		// Trim trailing sub-threshold vertices from the last block.
		for hi > lo && g.InDegree(ranked[hi-1]) < p.MinHubDegree {
			hi--
		}
		numHubs = hi
		blocks++
		if hi >= g.NumV {
			break
		}
	}
	if numHubs > 0 {
		// ranked is sorted by descending in-degree, so the last
		// admitted hub carries the minimum (Table 5's "Min. Hub
		// Degree").
		minDeg = g.InDegree(ranked[numHubs-1])
	}
	return numHubs, blocks, minDeg
}

// selectHubsFast implements the §6 lower-complexity variant: compute
// FV₁ once (the distinct sources of block 1's in-edges), then a
// single pass over the OUT-edges of FV₁ members marks, per tentative
// block, which of those sources reach it — estimating every |FVᵢ| at
// once instead of one in-edge pass per block. Sources outside FV₁
// are not counted, so the estimate is a lower bound and the block
// count can only be smaller than the exact §3.3 result.
func selectHubsFast(g *graph.Graph, ranked []graph.VID, p Params) (numHubs, blocks, minDeg int) {
	b := p.HubsPerBlock
	maxBlocks := p.MaxBlocks
	if maxBlocks > 64 {
		maxBlocks = 64 // bitset width; the paper's graphs need <= 16
	}
	if g.NumV == 0 || g.InDegree(ranked[0]) < p.MinHubDegree {
		return 0, 0, 0
	}
	// Candidate block of each vertex, by rank.
	blockOf := make([]int8, g.NumV)
	for i := range blockOf {
		blockOf[i] = -1
	}
	limit := maxBlocks * b
	if limit > g.NumV {
		limit = g.NumV
	}
	for i := 0; i < limit; i++ {
		if g.InDegree(ranked[i]) < p.MinHubDegree {
			limit = i
			break
		}
		blockOf[ranked[i]] = int8(i / b)
	}
	if limit == 0 {
		return 0, 0, 0
	}

	// FV₁: distinct sources with an edge into block 1.
	hi1 := b
	if hi1 > limit {
		hi1 = limit
	}
	seen := make([]bool, g.NumV)
	var fv1 []graph.VID
	for i := 0; i < hi1; i++ {
		for _, s := range g.In(ranked[i]) {
			if !seen[s] {
				seen[s] = true
				fv1 = append(fv1, s)
			}
		}
	}
	if len(fv1) == 0 {
		return 0, 0, 0
	}
	// One pass over FV₁'s out-edges: per-source block bitsets
	// aggregated into per-block distinct-source counts.
	counts := make([]int, (limit+b-1)/b)
	for _, s := range fv1 {
		var mask uint64
		for _, d := range g.Out(s) {
			if blk := blockOf[d]; blk >= 0 {
				mask |= 1 << uint(blk)
			}
		}
		for blk := 0; mask != 0; blk++ {
			if mask&1 != 0 {
				counts[blk]++
			}
			mask >>= 1
		}
	}
	threshold := p.FVThreshold * float64(counts[0])
	for blk := 0; blk < len(counts); blk++ {
		if blk > 0 && float64(counts[blk]) <= threshold {
			break
		}
		hi := (blk + 1) * b
		if hi > limit {
			hi = limit
		}
		numHubs = hi
		blocks++
	}
	if numHubs > 0 {
		minDeg = g.InDegree(ranked[numHubs-1])
	}
	return numHubs, blocks, minDeg
}

// buildFlippedBlocks creates the per-block push CSR: "a pass over
// outgoing edges from {hubs ∪ VWEH} in the CSR representation of the
// main graph and selecting edges with in-hub destinations" (§3.2).
func buildFlippedBlocks(g *graph.Graph, ih *IHTL, numBlocks int) {
	if numBlocks == 0 || ih.NumHubs == 0 {
		return
	}
	b := ih.HubsPerBlock
	nsrc := ih.NumPushSources()
	ih.Blocks = make([]FlippedBlock, numBlocks)
	for blk := range ih.Blocks {
		lo := blk * b
		hi := lo + b
		if hi > ih.NumHubs {
			hi = ih.NumHubs
		}
		ih.Blocks[blk] = FlippedBlock{
			HubLo: lo,
			HubHi: hi,
			Index: make([]int64, nsrc+1),
		}
	}
	blockOf := func(hubNew int) int { return hubNew / b }

	// Count per (source, block) degrees.
	for s := 0; s < nsrc; s++ {
		old := ih.OldID[s]
		for _, d := range g.Out(old) {
			nd := int(ih.NewID[d])
			if nd < ih.NumHubs {
				ih.Blocks[blockOf(nd)].Index[s+1]++
			}
		}
	}
	for blk := range ih.Blocks {
		idx := ih.Blocks[blk].Index
		for s := 0; s < nsrc; s++ {
			idx[s+1] += idx[s]
		}
		ih.Blocks[blk].Dsts = make([]graph.VID, idx[nsrc])
	}
	cursors := make([][]int64, numBlocks)
	for blk := range cursors {
		cursors[blk] = make([]int64, nsrc)
		copy(cursors[blk], ih.Blocks[blk].Index[:nsrc])
	}
	for s := 0; s < nsrc; s++ {
		old := ih.OldID[s]
		for _, d := range g.Out(old) {
			nd := int(ih.NewID[d])
			if nd < ih.NumHubs {
				blk := blockOf(nd)
				ih.Blocks[blk].Dsts[cursors[blk][s]] = graph.VID(nd)
				cursors[blk][s]++
			}
		}
	}
	for blk := range ih.Blocks {
		fb := &ih.Blocks[blk]
		for s := 0; s < nsrc; s++ {
			if fb.Index[s+1] > fb.Index[s] {
				fb.Sources++
			}
		}
	}
}

// buildSparseBlock creates the pull CSC over non-hub destinations:
// "a pass over the CSC representation of the main graph for all
// in-edges to {VWEH ∪ FV} and relabeling source of edges" (§3.2).
func buildSparseBlock(g *graph.Graph, ih *IHTL) {
	destLo := ih.NumHubs
	n := ih.NumV - destLo
	sp := &ih.Sparse
	sp.DestLo = destLo
	sp.Index = make([]int64, n+1)
	for nv := destLo; nv < ih.NumV; nv++ {
		old := ih.OldID[nv]
		sp.Index[nv-destLo+1] = int64(g.InDegree(old))
	}
	for i := 0; i < n; i++ {
		sp.Index[i+1] += sp.Index[i]
	}
	sp.Srcs = make([]graph.VID, sp.Index[n])
	for nv := destLo; nv < ih.NumV; nv++ {
		old := ih.OldID[nv]
		dst := sp.Srcs[sp.Index[nv-destLo]:sp.Index[nv-destLo+1]]
		for i, s := range g.In(old) {
			dst[i] = ih.NewID[s]
		}
		sort.Slice(dst, func(a, b int) bool { return dst[a] < dst[b] })
	}
}
