package core

import (
	"runtime"
	"slices"
	"testing"

	"ihtl/internal/gen"
	"ihtl/internal/graph"
	"ihtl/internal/sched"
)

// buildWorkerCounts are the pool sizes the determinism suite sweeps:
// the demoted single-worker path, an odd count, the machine default,
// and a count larger than this container's core count.
func buildWorkerCounts() []int {
	return []int{1, 3, runtime.GOMAXPROCS(0), 6}
}

// buildTestGraphs returns the graphs the determinism tests run over:
// the paper's worked example, a social-network-like R-MAT and a
// web-like graph with extreme in-hubs.
func buildTestGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	rmat, err := gen.RMAT(gen.DefaultRMAT(10, 8, 3))
	if err != nil {
		t.Fatal(err)
	}
	web, err := gen.Web(gen.DefaultWeb(4000, 9))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*graph.Graph{
		"paper": graph.PaperExample(),
		"rmat":  rmat,
		"web":   web,
	}
}

// TestRankByInDegreeMatchesReference checks both counting-sort
// rankings (sequential and parallel) against a comparison-sort
// reference with the §3.3 order: descending in-degree, ties by
// ascending original ID.
func TestRankByInDegreeMatchesReference(t *testing.T) {
	for name, g := range buildTestGraphs(t) {
		want := make([]graph.VID, g.NumV)
		for v := range want {
			want[v] = graph.VID(v)
		}
		slices.SortStableFunc(want, func(a, b graph.VID) int {
			return g.InDegree(b) - g.InDegree(a)
		})
		got := rankByInDegree(g)
		if !slices.Equal(got, want) {
			t.Fatalf("%s: sequential rankByInDegree deviates from reference", name)
		}
		for _, w := range buildWorkerCounts() {
			if w <= 1 {
				continue // rankByInDegreePar requires a live pool
			}
			p := sched.NewPool(w)
			clk := make([]buildClock, p.Workers())
			got := rankByInDegreePar(g, p, clk)
			p.Close()
			if !slices.Equal(got, want) {
				t.Fatalf("%s/w%d: parallel ranking deviates from reference", name, w)
			}
		}
	}
}

// requireIHTLEqual compares every externally visible field of two
// iHTL builds: counts, relabeling arrays, each flipped block's index
// and destination arrays, and the sparse block.
func requireIHTLEqual(t *testing.T, label string, want, got *IHTL) {
	t.Helper()
	if got.NumHubs != want.NumHubs || got.NumVWEH != want.NumVWEH || got.NumFV != want.NumFV {
		t.Fatalf("%s: classes = %d/%d/%d, want %d/%d/%d", label,
			got.NumHubs, got.NumVWEH, got.NumFV, want.NumHubs, want.NumVWEH, want.NumFV)
	}
	if got.MinHubDegree != want.MinHubDegree {
		t.Fatalf("%s: MinHubDegree = %d, want %d", label, got.MinHubDegree, want.MinHubDegree)
	}
	if !slices.Equal(got.NewID, want.NewID) {
		t.Fatalf("%s: NewID differs", label)
	}
	if !slices.Equal(got.OldID, want.OldID) {
		t.Fatalf("%s: OldID differs", label)
	}
	if len(got.Blocks) != len(want.Blocks) {
		t.Fatalf("%s: %d flipped blocks, want %d", label, len(got.Blocks), len(want.Blocks))
	}
	for b := range want.Blocks {
		wb, gb := &want.Blocks[b], &got.Blocks[b]
		if gb.HubLo != wb.HubLo || gb.HubHi != wb.HubHi || gb.Sources != wb.Sources {
			t.Fatalf("%s: block %d header = [%d,%d) src %d, want [%d,%d) src %d", label, b,
				gb.HubLo, gb.HubHi, gb.Sources, wb.HubLo, wb.HubHi, wb.Sources)
		}
		if !slices.Equal(gb.Index, wb.Index) {
			t.Fatalf("%s: block %d Index differs", label, b)
		}
		if !slices.Equal(gb.Dsts, wb.Dsts) {
			t.Fatalf("%s: block %d Dsts differs", label, b)
		}
	}
	if got.Sparse.DestLo != want.Sparse.DestLo {
		t.Fatalf("%s: Sparse.DestLo = %d, want %d", label, got.Sparse.DestLo, want.Sparse.DestLo)
	}
	if !slices.Equal(got.Sparse.Index, want.Sparse.Index) {
		t.Fatalf("%s: Sparse.Index differs", label)
	}
	if !slices.Equal(got.Sparse.Srcs, want.Sparse.Srcs) {
		t.Fatalf("%s: Sparse.Srcs differs", label)
	}
}

// TestBuildWithParallelDeterminism checks that BuildWith on a pool
// produces an iHTL graph bit-for-bit identical to the sequential
// Build — relabeling arrays, every flipped block, the sparse block —
// across worker counts and parameter variants.
func TestBuildWithParallelDeterminism(t *testing.T) {
	variants := map[string]Params{
		"default":    {HubsPerBlock: 256},
		"fastselect": {HubsPerBlock: 256, FastSelect: true},
		"degreesort": {HubsPerBlock: 256, DegreeSortClasses: true},
		"multiblock": {HubsPerBlock: 16, FVThreshold: 0.05, MaxBlocks: 32},
	}
	for gname, g := range buildTestGraphs(t) {
		for vname, p := range variants {
			want, err := Build(g, p)
			if err != nil {
				t.Fatalf("%s/%s: sequential Build: %v", gname, vname, err)
			}
			for _, w := range buildWorkerCounts() {
				pool := sched.NewPool(w)
				got, err := BuildWith(g, p, pool)
				pool.Close()
				if err != nil {
					t.Fatalf("%s/%s/w%d: BuildWith: %v", gname, vname, w, err)
				}
				requireIHTLEqual(t, gname+"/"+vname, want, got)
			}
		}
	}
}

// TestBuildStatsPopulated checks that both paths fill the phase
// breakdown, and that the parallel path also accumulates busy time.
func TestBuildStatsPopulated(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(10, 8, 3))
	if err != nil {
		t.Fatal(err)
	}
	ih, err := BuildWith(g, Params{HubsPerBlock: 256}, testPool)
	if err != nil {
		t.Fatal(err)
	}
	bs := ih.BuildStats()
	if bs.Wall <= 0 {
		t.Fatalf("Wall = %v, want > 0", bs.Wall)
	}
	if bs.Rank+bs.Select+bs.Relabel+bs.Blocks <= 0 {
		t.Fatalf("phase sum = %v, want > 0", bs.Rank+bs.Select+bs.Relabel+bs.Blocks)
	}
	if bs.Rank+bs.Select+bs.Relabel+bs.Blocks > bs.Wall {
		t.Fatalf("phases (%v) exceed wall (%v)", bs.Rank+bs.Select+bs.Relabel+bs.Blocks, bs.Wall)
	}
	if bs.RankBusy+bs.RelabelBusy+bs.BlocksBusy <= 0 {
		t.Fatal("parallel build accumulated no busy time")
	}
}

// TestBuildWithParallelStress repeats a larger parallel build under
// the race detector and compares against the sequential reference.
func TestBuildWithParallelStress(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	g, err := gen.RMAT(gen.DefaultRMAT(12, 10, 77))
	if err != nil {
		t.Fatal(err)
	}
	want, err := Build(g, Params{HubsPerBlock: 512})
	if err != nil {
		t.Fatal(err)
	}
	pool := sched.NewPool(8)
	defer pool.Close()
	for round := 0; round < 3; round++ {
		got, err := BuildWith(g, Params{HubsPerBlock: 512}, pool)
		if err != nil {
			t.Fatal(err)
		}
		requireIHTLEqual(t, "stress", want, got)
	}
}
