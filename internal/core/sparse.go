package core

// Sparse-block kernel variants. The baseline pull (Algorithm 3 l.8-10)
// walks Sparse.Srcs with random reads into src over uniform
// edge-balanced row ranges. Two locality-aware alternatives live here,
// selectable per engine through EngineOptions.SparseKernel:
//
//   - SparsePullDegree keeps the pull loop but schedules rows by
//     degree: the heavy rows (precomputed at build, SparseBlock.Heavy)
//     are claimed over edge-balanced LIST parts so one mega-row cannot
//     serialise behind a single worker, and the remaining short rows
//     batch into coarse chunks that amortise claim overhead.
//
//   - SparsePB is propagation blocking (Balaji & Lucia): phase 1 (bin)
//     sweeps the sparse edges in SOURCE order — sequential reads of
//     src — appending (row, contribution) pairs into per-chunk
//     destination-range buckets sized from the §3.4 cache budget;
//     phase 2 (drain) claims whole buckets and reduces them into dst
//     with perfect destination locality and no atomics. Both phases
//     replace the pull kernel's random src reads with two streaming
//     passes over cache-sized working sets.
//
// Bit-for-bit determinism with pull is preserved by construction. The
// pull kernel accumulates each row's sources in ascending order
// (Sparse.Srcs is sorted per row). The PB kernel reproduces exactly
// that order: sources are cut into fixed edge-balanced chunks, every
// (chunk, bucket) pair owns a precomputed segment of the bin arrays,
// the bin sweep appends in ascending source order within its chunk,
// and the drain replays a bucket's segments in ascending chunk order —
// so each row's contributions arrive ascending by source no matter
// which workers claimed which chunks. Skipping +0.0 sources
// (spmv.SkipZero) is bit-transparent because a partial sum seeded with
// +0.0 can never be -0.0, and x + (+0.0) == x for every other x.

import (
	"fmt"
	"time"

	"ihtl/internal/faultinject"
	"ihtl/internal/sched"
	"ihtl/internal/spmv"
	"ihtl/internal/unchecked"
)

// SparseKernel selects the sparse-block kernel of an Engine.
type SparseKernel int

const (
	// SparseAuto resolves to the repository default (the kernel that
	// measured fastest on the recorded benchmark machine).
	SparseAuto SparseKernel = iota
	// SparsePull is the paper's pull kernel over uniform edge-balanced
	// row ranges.
	SparsePull
	// SparsePullDegree is the pull kernel under degree-aware row
	// scheduling: heavy rows stolen over edge-balanced list parts,
	// short rows batched into coarse chunks.
	SparsePullDegree
	// SparsePB is the two-phase propagation-blocked kernel (bin into
	// cache-sized destination buckets, then drain).
	SparsePB
)

func (k SparseKernel) String() string {
	switch k {
	case SparseAuto:
		return "auto"
	case SparsePull:
		return "pull"
	case SparsePullDegree:
		return "pull-degree"
	case SparsePB:
		return "pb"
	default:
		return fmt.Sprintf("SparseKernel(%d)", int(k))
	}
}

// ParseSparseKernel parses the -sparse flag values.
func ParseSparseKernel(s string) (SparseKernel, error) {
	switch s {
	case "auto", "":
		return SparseAuto, nil
	case "pull":
		return SparsePull, nil
	case "pull-degree":
		return SparsePullDegree, nil
	case "pb":
		return SparsePB, nil
	default:
		return 0, fmt.Errorf("core: unknown sparse kernel %q (want auto, pull, pull-degree or pb)", s)
	}
}

// defaultSparseKernel is what SparseAuto resolves to: the winner of
// the three-way ablation in results/BENCH_step.json on the recorded
// machine (degree-aware pull cut the sparse phase ~12% vs uniform
// pull on the sk web graph and ~28% on the skewed twtrmpi social
// graph, tying elsewhere; the PB kernel's extra 12 B/edge of pair
// traffic loses on the single-core LLC-resident record — its two
// streaming passes need bandwidth-bound multicore runs to pay off).
const defaultSparseKernel = SparsePullDegree

// pbState is the preallocated state of the propagation-blocked sparse
// kernel. All arrays are sized exactly at engine construction; a Step
// touches them without allocating.
type pbState struct {
	// Rows per destination bucket is 1 << shift: the §3.4 cache budget
	// (CacheBytes/VertexBytes rows, i.e. the resolved HubsPerBlock)
	// rounded down to a power of two so the bin inner loop buckets by
	// shift instead of division.
	shift      uint
	numBuckets int
	numChunks  int

	// pushIndex/pushRows are the sparse block transposed to a push CSR
	// over ALL sources: pushRows[pushIndex[s]:pushIndex[s+1]] are the
	// sparse rows (relative to DestLo) that source s feeds, in
	// ascending row order.
	pushIndex []int64
	pushRows  []uint32
	// chunkBounds are numChunks+1 edge-balanced source boundaries; a
	// bin worker claims whole chunks.
	chunkBounds []int

	// binOff holds the numBuckets*numChunks+1 segment offsets of the
	// bin arrays, bucket-major (segment of chunk c, bucket b is
	// b*numChunks+c) so a drained bucket reads contiguous memory.
	// Capacities are exact edge counts; binCur is the running cursor —
	// sources skipped as +0.0 leave tail slots unused, so the drain
	// reads up to the cursor, not the next offset.
	binOff []int64
	binCur []int64
	// binRows/binVals are the binned (row, contribution) pairs.
	binRows []uint32
	binVals []float64
}

// buildPB transposes the sparse block and sizes the bin segments.
// Returns nil when the block has no rows.
func buildPB(ih *IHTL, workers int) *pbState {
	sp := &ih.Sparse
	n := ih.NumV - sp.DestLo
	if n <= 0 {
		return nil
	}
	// The transpose below needs the flat source array. When only the
	// encoded form is resident (a v2 varint load), decode it
	// transiently — the pbState's own push arrays replace it, so the
	// flat array is garbage right after construction.
	srcs := sp.Srcs
	if srcs == nil && sp.Enc != nil {
		srcs = decodeFlat(sp.Enc)
	}
	pb := &pbState{}
	rows := ih.HubsPerBlock
	if rows < 256 {
		rows = 256
	}
	for (1 << (pb.shift + 1)) <= rows {
		pb.shift++
	}
	pb.numBuckets = (n + (1 << pb.shift) - 1) >> pb.shift
	pb.numChunks = workers * 4

	pb.pushIndex = make([]int64, ih.NumV+1)
	for _, s := range srcs {
		pb.pushIndex[s+1]++
	}
	for v := 0; v < ih.NumV; v++ {
		pb.pushIndex[v+1] += pb.pushIndex[v]
	}
	pb.pushRows = make([]uint32, len(srcs))
	cur := make([]int64, ih.NumV)
	copy(cur, pb.pushIndex[:ih.NumV])
	// Row-ascending fill: each source's run comes out in ascending row
	// order, which the bin sweep preserves.
	for i := 0; i < n; i++ {
		for j := sp.Index[i]; j < sp.Index[i+1]; j++ {
			s := srcs[j]
			pb.pushRows[cur[s]] = uint32(i)
			cur[s]++
		}
	}
	pb.chunkBounds = sched.EdgeBalancedParts(pb.pushIndex, pb.numChunks)

	C, B := pb.numChunks, pb.numBuckets
	pb.binOff = make([]int64, B*C+1)
	for c := 0; c < C; c++ {
		for e := pb.pushIndex[pb.chunkBounds[c]]; e < pb.pushIndex[pb.chunkBounds[c+1]]; e++ {
			b := int(pb.pushRows[e]) >> pb.shift
			pb.binOff[b*C+c+1]++
		}
	}
	for i := 0; i < B*C; i++ {
		pb.binOff[i+1] += pb.binOff[i]
	}
	pb.binCur = make([]int64, B*C)
	pb.binRows = make([]uint32, len(srcs))
	pb.binVals = make([]float64, len(srcs))
	return pb
}

// initSparseKernel resolves the configured kernel and builds its
// schedule state. Called once from NewEngineOpts.
func (e *Engine) initSparseKernel(kernel SparseKernel) {
	if kernel == SparseAuto {
		kernel = defaultSparseKernel
	}
	e.sparseKernel = kernel
	ih := e.ih
	n := ih.NumV - ih.Sparse.DestLo
	if n <= 0 {
		return
	}
	w := e.nworkers
	switch kernel {
	case SparsePullDegree:
		sp := &ih.Sparse
		ih.EnsureDegreeBuckets()
		if len(sp.Heavy) > 0 {
			e.heavyBounds = sched.EdgeBalancedPartsList(sp.Index, sp.Heavy, w*4)
		}
		// Coarse chunks over the light rows: heavy rows contribute no
		// edges to the balance (the claim loop skips them), so parts
		// carry equal LIGHT work.
		lidx := make([]int64, n+1)
		for i := 0; i < n; i++ {
			d := sp.Index[i+1] - sp.Index[i]
			if d >= sp.HeavyDeg {
				d = 0
			}
			lidx[i+1] = lidx[i] + d
		}
		e.lightBounds = sched.EdgeBalancedParts(lidx, w*2)
		e.auxSched = sched.NewStealScheduler(w)
	case SparsePB:
		e.pb = buildPB(ih, w)
		e.auxSched = sched.NewStealScheduler(w)
		e.binBarrier = sched.NewBarrier(w)
	}
}

// resetSparseScheds re-arms the schedulers the configured sparse
// kernel claims from, at the top of each fused Step.
//
//ihtl:noalloc
func (e *Engine) resetSparseScheds() {
	switch e.sparseKernel {
	case SparsePullDegree:
		if n := len(e.lightBounds) - 1; n > 0 {
			e.sparseSched.Reset(n)
		}
		if n := len(e.heavyBounds) - 1; n > 0 {
			e.auxSched.Reset(n)
		}
	case SparsePB:
		if e.pb != nil {
			e.sparseSched.Reset(e.pb.numChunks)
			e.auxSched.Reset(e.pb.numBuckets)
		}
	default:
		if n := len(e.sparseBounds) - 1; n > 0 {
			e.sparseSched.Reset(n)
		}
	}
}

// sparseWorker runs worker w's share of the configured sparse kernel
// inside the fused dispatch and records its phase clocks: sparse busy
// time for the pull kernels, separate bin/drain busy time for the
// propagation-blocked kernel.
//
//ihtl:noalloc
func (e *Engine) sparseWorker(w int, src, dst []float64) {
	clk := &e.clocks[w]
	switch e.sparseKernel {
	case SparsePullDegree:
		t0 := time.Now()
		e.sparseHeavyWorker(w, src, dst)
		e.sparseLightWorker(w, src, dst)
		clk.sparse += time.Since(t0)
	case SparsePB:
		if e.pb == nil {
			return
		}
		t0 := time.Now()
		e.pbBinWorker(w, src)
		t1 := time.Now()
		clk.bin += t1.Sub(t0)
		// The drain may read any chunk's cursors and bin slots, so
		// every worker must finish binning first. The barrier's atomic
		// RMW total order publishes the plain cursor writes.
		if !e.binBarrier.WaitAbort(e.pool) {
			return
		}
		t2 := time.Now()
		e.pbDrainWorker(w, dst)
		clk.drain += time.Since(t2)
	default:
		t0 := time.Now()
		e.sparsePullWorker(w, src, dst)
		clk.sparse += time.Since(t0)
	}
}

// sparsePullWorker drains the baseline pull via range stealing over
// the uniform edge-balanced partitions.
//
//ihtl:noalloc
func (e *Engine) sparsePullWorker(w int, src, dst []float64) {
	nparts := len(e.sparseBounds) - 1
	if nparts <= 0 {
		return
	}
	for !e.pool.Aborted() {
		lo, hi, ok := e.sparseSched.Next(w, 1)
		if !ok {
			return
		}
		faultinject.Fire(faultinject.SiteSparsePart)
		for p := lo; p < hi; p++ {
			e.sparsePullRange(e.sparseBounds[p], e.sparseBounds[p+1], src, dst)
		}
	}
}

// sparsePullRange pulls rows [lo, hi) of the sparse block: the shared
// inner loop of the uniform and degree-aware pull schedules.
//
//ihtl:noalloc
//ihtl:nobce
//ihtl:noescape
func (e *Engine) sparsePullRange(lo, hi int, src, dst []float64) {
	sp := &e.ih.Sparse
	base := sp.DestLo
	if e.varint {
		for i := lo; i < hi; i++ {
			unchecked.SetAt(dst, base+i, e.sparseRowSumEnc(i, src))
		}
		return
	}
	idx, srcs := sp.Index, sp.Srcs
	for i := lo; i < hi; i++ {
		sum := 0.0
		end := unchecked.At(idx, i+1)
		for j := unchecked.At(idx, i); j < end; j++ {
			sum += unchecked.At(src, int(unchecked.At(srcs, int(j))))
		}
		unchecked.SetAt(dst, base+i, sum)
	}
}

// sparseHeavyWorker pulls the heavy rows over edge-balanced parts of
// the build-time heavy list. Rows stay whole — splitting one across
// workers would regroup its partial sums and break bit-identity with
// pull — but the LIST is split finely enough (4x workers, balanced by
// edges) that the mega-rows spread across the pool.
//
//ihtl:noalloc
func (e *Engine) sparseHeavyWorker(w int, src, dst []float64) {
	nparts := len(e.heavyBounds) - 1
	if nparts <= 0 {
		return
	}
	for !e.pool.Aborted() {
		lo, hi, ok := e.auxSched.Next(w, 1)
		if !ok {
			return
		}
		faultinject.Fire(faultinject.SiteSparsePart)
		for p := lo; p < hi; p++ {
			e.sparseHeavyPart(p, src, dst)
		}
	}
}

//ihtl:noalloc
//ihtl:nobce
//ihtl:noescape
func (e *Engine) sparseHeavyPart(p int, src, dst []float64) {
	sp := &e.ih.Sparse
	base := sp.DestLo
	heavy := sp.Heavy
	qLo, qHi := unchecked.At(e.heavyBounds, p), unchecked.At(e.heavyBounds, p+1)
	if e.varint {
		for q := qLo; q < qHi; q++ {
			i := int(unchecked.At(heavy, q))
			unchecked.SetAt(dst, base+i, e.sparseRowSumEnc(i, src))
		}
		return
	}
	idx, srcs := sp.Index, sp.Srcs
	for q := qLo; q < qHi; q++ {
		i := int(unchecked.At(heavy, q))
		sum := 0.0
		end := unchecked.At(idx, i+1)
		for j := unchecked.At(idx, i); j < end; j++ {
			sum += unchecked.At(src, int(unchecked.At(srcs, int(j))))
		}
		unchecked.SetAt(dst, base+i, sum)
	}
}

// sparseLightWorker pulls the short rows in coarse chunks, skipping
// the heavy rows the list schedule owns.
//
//ihtl:noalloc
func (e *Engine) sparseLightWorker(w int, src, dst []float64) {
	nparts := len(e.lightBounds) - 1
	if nparts <= 0 {
		return
	}
	for !e.pool.Aborted() {
		lo, hi, ok := e.sparseSched.Next(w, 1)
		if !ok {
			return
		}
		faultinject.Fire(faultinject.SiteSparsePart)
		for p := lo; p < hi; p++ {
			e.sparseLightPart(p, src, dst)
		}
	}
}

//ihtl:noalloc
//ihtl:nobce
//ihtl:noescape
func (e *Engine) sparseLightPart(p int, src, dst []float64) {
	sp := &e.ih.Sparse
	heavy := sp.HeavyDeg
	base := sp.DestLo
	idx := sp.Index
	iLo, iHi := unchecked.At(e.lightBounds, p), unchecked.At(e.lightBounds, p+1)
	if e.varint {
		for i := iLo; i < iHi; i++ {
			if unchecked.At(idx, i+1)-unchecked.At(idx, i) >= heavy {
				continue
			}
			unchecked.SetAt(dst, base+i, e.sparseRowSumEnc(i, src))
		}
		return
	}
	srcs := sp.Srcs
	for i := iLo; i < iHi; i++ {
		lo, end := unchecked.At(idx, i), unchecked.At(idx, i+1)
		if end-lo >= heavy {
			continue
		}
		sum := 0.0
		for j := lo; j < end; j++ {
			sum += unchecked.At(src, int(unchecked.At(srcs, int(j))))
		}
		unchecked.SetAt(dst, base+i, sum)
	}
}

// pbBinWorker claims source chunks and bins their contributions into
// per-(chunk, bucket) segments.
//
//ihtl:noalloc
func (e *Engine) pbBinWorker(w int, src []float64) {
	for !e.pool.Aborted() {
		lo, hi, ok := e.sparseSched.Next(w, 1)
		if !ok {
			return
		}
		faultinject.Fire(faultinject.SiteSparseBin)
		for c := lo; c < hi; c++ {
			e.pbBinChunk(c, src)
		}
	}
}

// pbBinChunk bins chunk c: stage the chunk's bucket cursors, then
// sweep its sources in ascending order appending (row, x) pairs. The
// sweep reads src SEQUENTIALLY (the transposed CSR is source-major)
// and each append lands at a bucket cursor — the random scatter of the
// pull kernel becomes a bounded set of sequential segment writes.
//
//ihtl:noalloc
//ihtl:nobce
//ihtl:noescape
func (e *Engine) pbBinChunk(c int, src []float64) {
	pb := e.pb
	C := pb.numChunks
	binCur, binOff := pb.binCur, pb.binOff
	for b := 0; b < pb.numBuckets; b++ {
		unchecked.SetAt(binCur, b*C+c, unchecked.At(binOff, b*C+c))
	}
	shift := pb.shift
	pushIndex, pushRows := pb.pushIndex, pb.pushRows
	binRows, binVals := pb.binRows, pb.binVals
	sLo, sHi := unchecked.At(pb.chunkBounds, c), unchecked.At(pb.chunkBounds, c+1)
	for s := sLo; s < sHi; s++ {
		x := unchecked.At(src, s)
		if spmv.SkipZero(x) {
			continue
		}
		end := unchecked.At(pushIndex, s+1)
		for i := unchecked.At(pushIndex, s); i < end; i++ {
			row := unchecked.At(pushRows, int(i))
			seg := int(row>>shift)*C + c
			p := unchecked.At(binCur, seg)
			unchecked.SetAt(binRows, int(p), row)
			unchecked.SetAt(binVals, int(p), x)
			unchecked.SetAt(binCur, seg, p+1)
		}
	}
}

// pbDrainWorker claims whole destination buckets and reduces them.
//
//ihtl:noalloc
func (e *Engine) pbDrainWorker(w int, dst []float64) {
	for !e.pool.Aborted() {
		lo, hi, ok := e.auxSched.Next(w, 1)
		if !ok {
			return
		}
		faultinject.Fire(faultinject.SiteSparseDrain)
		for b := lo; b < hi; b++ {
			e.pbDrainBucket(b, dst)
		}
	}
}

// pbDrainBucket zeroes bucket b's row range and replays its segments
// in ascending chunk order, accumulating into dst. The bucket's rows
// fit the §3.4 cache budget, so every add hits a resident line; no
// other worker touches these rows, so no atomics. Replaying chunks in
// ascending order restores the global ascending-source accumulation
// order of the pull kernel.
//
//ihtl:noalloc
//ihtl:nobce
//ihtl:noescape
func (e *Engine) pbDrainBucket(b int, dst []float64) {
	pb := e.pb
	sp := &e.ih.Sparse
	n := e.ih.NumV - sp.DestLo
	rowLo := b << pb.shift
	rowHi := rowLo + (1 << pb.shift)
	if rowHi > n {
		rowHi = n
	}
	base := sp.DestLo
	// clear keeps the runtime memclr; the slice bounds are clamped
	// above, so the one check here is the deliberate residue.
	clear(dst[base+rowLo : base+rowHi]) //ihtl:allow-boundscheck clamped range; clear() is the runtime memclr
	C := pb.numChunks
	binOff, binCur := pb.binOff, pb.binCur
	binRows, binVals := pb.binRows, pb.binVals
	for c := 0; c < C; c++ {
		seg := b*C + c
		end := unchecked.At(binCur, seg)
		for p := unchecked.At(binOff, seg); p < end; p++ {
			unchecked.AddAt(dst, base+int(unchecked.At(binRows, int(p))), unchecked.At(binVals, int(p)))
		}
	}
}
