package core

import (
	"ihtl/internal/cache"
	"ihtl/internal/graph"
	"ihtl/internal/sched"
	"ihtl/internal/spmv"
)

// Parallel trace simulation over a multi-core hierarchy (private
// L1/L2 per core, shared L3) — the paper's actual topology. Unlike
// the single-stream simulators these trace only the DATA accesses
// (random reads/writes plus the sequential source reads); topology
// streams are prefetch-covered on real hardware and identical in
// structure across cores, so omitting them sharpens the §3.4
// comparison: per-thread flipped-block buffers each fit a private L2,
// while pull's random reads from every core contend for the shared
// L3.
//
// Interleaving is deterministic: cores advance round-robin one edge
// at a time, a faithful-enough stand-in for lockstep SIMT-like
// progress that keeps results reproducible.

// ParallelSimStats aggregates a multi-core simulation.
type ParallelSimStats struct {
	Loads, Stores uint64
	PrivateL1, L2 cache.LevelStats
	SharedL3      cache.LevelStats
}

// SimulatePullParallel traces a pull iteration executed by `cores`
// workers over edge-balanced destination partitions.
func SimulatePullParallel(g *graph.Graph, cfg cache.Config, cores int) (ParallelSimStats, error) {
	m, err := cache.NewMultiHierarchy(cfg, cores)
	if err != nil {
		return ParallelSimStats{}, err
	}
	var as cache.AddressSpace
	srcData := as.Alloc(g.NumV, spmv.VertexBytes)
	dstData := as.Alloc(g.NumV, spmv.VertexBytes)

	bounds := sched.EdgeBalancedParts(g.InIndex, cores)
	type cursor struct {
		v    int   // current destination
		i    int64 // current in-edge offset
		endV int
	}
	cur := make([]cursor, cores)
	for c := 0; c < cores; c++ {
		cur[c] = cursor{v: bounds[c], endV: bounds[c+1]}
		if cur[c].v < cur[c].endV {
			cur[c].i = g.InIndex[cur[c].v]
		}
	}
	active := cores
	for active > 0 {
		active = 0
		for c := 0; c < cores; c++ {
			cu := &cur[c]
			// Skip destinations with no remaining edges, writing
			// their results.
			for cu.v < cu.endV && cu.i >= g.InIndex[cu.v+1] {
				m.Write(c, dstData.Addr(cu.v))
				cu.v++
				if cu.v < cu.endV {
					cu.i = g.InIndex[cu.v]
				}
			}
			if cu.v >= cu.endV {
				continue
			}
			active++
			m.Read(c, srcData.Addr(int(g.InNbrs[cu.i]))) // random source read
			cu.i++
		}
	}
	return collectParallel(m), nil
}

// SimulateStepParallel traces an Algorithm 3 iteration executed by
// `cores` workers: each core pushes its share of every flipped
// block's sources into its PRIVATE buffer region, buffers are merged,
// then the sparse block is pulled over destination partitions.
func SimulateStepParallel(ih *IHTL, cfg cache.Config, cores int) (ParallelSimStats, error) {
	m, err := cache.NewMultiHierarchy(cfg, cores)
	if err != nil {
		return ParallelSimStats{}, err
	}
	var as cache.AddressSpace
	srcData := as.Alloc(ih.NumV, spmv.VertexBytes)
	dstData := as.Alloc(ih.NumV, spmv.VertexBytes)
	buffers := make([]cache.Region, cores)
	for c := range buffers {
		buffers[c] = as.Alloc(ih.NumHubs, spmv.VertexBytes)
	}

	// Phase 1: flipped blocks, one block at a time (as §3.4
	// requires), sources split across cores by edge-balanced ranges.
	for b := range ih.Blocks {
		fb := &ih.Blocks[b]
		if fb.NumEdges() == 0 {
			continue
		}
		bounds := sched.EdgeBalancedParts(fb.Index, cores)
		type cursor struct {
			s, endS int
			i       int64
		}
		cur := make([]cursor, cores)
		for c := 0; c < cores; c++ {
			cur[c] = cursor{s: bounds[c], endS: bounds[c+1]}
			if cur[c].s < cur[c].endS {
				cur[c].i = fb.Index[cur[c].s]
			}
		}
		active := cores
		for active > 0 {
			active = 0
			for c := 0; c < cores; c++ {
				cu := &cur[c]
				for cu.s < cu.endS && cu.i >= fb.Index[cu.s+1] {
					cu.s++
					if cu.s < cu.endS {
						cu.i = fb.Index[cu.s]
						if fb.Index[cu.s] < fb.Index[cu.s+1] {
							m.Read(c, srcData.Addr(cu.s)) // sequential source read
						}
					}
				}
				if cu.s >= cu.endS {
					continue
				}
				active++
				hub := int(fb.Dsts[cu.i])
				m.Read(c, buffers[c].Addr(hub)) // private-buffer RMW
				m.Write(c, buffers[c].Addr(hub))
				cu.i++
			}
		}
	}

	// Phase 2: merge — hub ranges split across cores, each core reads
	// every buffer's slice and writes the hub data.
	hb := sched.VertexBalancedParts(ih.NumHubs, cores)
	for c := 0; c < cores; c++ {
		for h := hb[c]; h < hb[c+1]; h++ {
			for t := 0; t < cores; t++ {
				m.Read(c, buffers[t].Addr(h))
				m.Write(c, buffers[t].Addr(h)) // reset
			}
			m.Write(c, dstData.Addr(h))
		}
	}

	// Phase 3: sparse block pulled over destination partitions.
	sp := &ih.Sparse
	n := ih.NumV - sp.DestLo
	if n > 0 {
		bounds := sched.EdgeBalancedParts(sp.Index, cores)
		type cursor struct {
			d, endD int
			i       int64
		}
		cur := make([]cursor, cores)
		for c := 0; c < cores; c++ {
			cur[c] = cursor{d: bounds[c], endD: bounds[c+1]}
			if cur[c].d < cur[c].endD {
				cur[c].i = sp.Index[cur[c].d]
			}
		}
		active := cores
		for active > 0 {
			active = 0
			for c := 0; c < cores; c++ {
				cu := &cur[c]
				for cu.d < cu.endD && cu.i >= sp.Index[cu.d+1] {
					m.Write(c, dstData.Addr(sp.DestLo+cu.d))
					cu.d++
					if cu.d < cu.endD {
						cu.i = sp.Index[cu.d]
					}
				}
				if cu.d >= cu.endD {
					continue
				}
				active++
				m.Read(c, srcData.Addr(int(sp.Srcs[cu.i])))
				cu.i++
			}
		}
	}
	return collectParallel(m), nil
}

func collectParallel(m *cache.MultiHierarchy) ParallelSimStats {
	var s ParallelSimStats
	s.Loads, s.Stores = m.MemoryAccesses()
	s.PrivateL1, s.L2 = m.PrivateStats()
	s.SharedL3 = m.SharedStats()
	return s
}
