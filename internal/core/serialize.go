package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"ihtl/internal/atomicio"
	"ihtl/internal/graph"
)

// Binary iHTL-graph format (little-endian). Storing the preprocessed
// structure lets the one-time construction cost be amortised across
// runs — "the preprocessing overhead can be completely amortized
// between different executions if the iHTL graph is stored in its
// binary format ... on disk after preprocessing" (§4.2).
const (
	ihtlMagic   = uint64(0x4948544c42494e31) // "IHTLBIN1"
	ihtlVersion = uint32(1)
)

// WriteTo serialises ih. Layout: header, relabeling arrays, per-block
// (hub range, index, dsts), sparse block.
func (ih *IHTL) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	var n int64
	put := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	hdr := []any{
		ihtlMagic, ihtlVersion,
		uint32(ih.NumV), uint64(ih.NumE),
		uint32(ih.NumHubs), uint32(ih.NumVWEH), uint32(ih.NumFV),
		uint32(ih.HubsPerBlock), uint32(ih.MinHubDegree),
		uint32(len(ih.Blocks)),
	}
	for _, h := range hdr {
		if err := put(h); err != nil {
			return n, err
		}
	}
	if err := put(ih.NewID); err != nil {
		return n, err
	}
	if err := put(ih.OldID); err != nil {
		return n, err
	}
	for i := range ih.Blocks {
		fb := &ih.Blocks[i]
		for _, v := range []any{uint32(fb.HubLo), uint32(fb.HubHi), uint32(fb.Sources), uint64(len(fb.Index)), uint64(len(fb.Dsts))} {
			if err := put(v); err != nil {
				return n, err
			}
		}
		if err := put(fb.Index); err != nil {
			return n, err
		}
		if err := put(fb.Dsts); err != nil {
			return n, err
		}
	}
	for _, v := range []any{uint32(ih.Sparse.DestLo), uint64(len(ih.Sparse.Index)), uint64(len(ih.Sparse.Srcs))} {
		if err := put(v); err != nil {
			return n, err
		}
	}
	if err := put(ih.Sparse.Index); err != nil {
		return n, err
	}
	if err := put(ih.Sparse.Srcs); err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// ReadIHTL deserialises an iHTL graph written by WriteTo and checks
// its structural invariants.
func ReadIHTL(r io.Reader) (*IHTL, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	get := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }
	var magic uint64
	if err := get(&magic); err != nil {
		return nil, fmt.Errorf("core: reading magic: %w", err)
	}
	if magic != ihtlMagic {
		return nil, fmt.Errorf("core: bad magic %#x", magic)
	}
	var version uint32
	if err := get(&version); err != nil {
		return nil, err
	}
	if version == ihtlVersion2 {
		return readV2Resident(br)
	}
	if version != ihtlVersion {
		return nil, fmt.Errorf("core: unsupported version %d", version)
	}
	var numV, numHubs, numVWEH, numFV, hubsPerBlock, minHubDeg, numBlocks uint32
	var numE uint64
	for _, p := range []any{&numV, &numE, &numHubs, &numVWEH, &numFV, &hubsPerBlock, &minHubDeg, &numBlocks} {
		if err := get(p); err != nil {
			return nil, err
		}
	}
	if numE > 1<<40 || numBlocks > 1<<20 {
		return nil, fmt.Errorf("core: implausible header (E=%d, blocks=%d)", numE, numBlocks)
	}
	if uint64(numHubs)+uint64(numVWEH)+uint64(numFV) != uint64(numV) {
		return nil, fmt.Errorf("core: class sizes %d+%d+%d != %d", numHubs, numVWEH, numFV, numV)
	}
	ih := &IHTL{
		NumV: int(numV), NumE: int64(numE),
		NumHubs: int(numHubs), NumVWEH: int(numVWEH), NumFV: int(numFV),
		HubsPerBlock: int(hubsPerBlock), MinHubDegree: int(minHubDeg),
	}
	var err error
	if ih.NewID, err = graph.ReadChunked[graph.VID](br, uint64(numV)); err != nil {
		return nil, err
	}
	if ih.OldID, err = graph.ReadChunked[graph.VID](br, uint64(numV)); err != nil {
		return nil, err
	}
	for v, nv := range ih.NewID {
		if int(nv) >= ih.NumV || int(ih.OldID[nv]) != v {
			return nil, fmt.Errorf("core: corrupt relabeling arrays at %d", v)
		}
	}
	ih.Blocks = make([]FlippedBlock, numBlocks)
	var total int64
	for i := range ih.Blocks {
		fb := &ih.Blocks[i]
		var hubLo, hubHi, sources uint32
		var lenIdx, lenDsts uint64
		for _, p := range []any{&hubLo, &hubHi, &sources, &lenIdx, &lenDsts} {
			if err := get(p); err != nil {
				return nil, err
			}
		}
		if lenIdx > uint64(numV)+1 || lenDsts > numE {
			return nil, fmt.Errorf("core: implausible block %d sizes", i)
		}
		fb.HubLo, fb.HubHi, fb.Sources = int(hubLo), int(hubHi), int(sources)
		if fb.Index, err = graph.ReadChunked[int64](br, lenIdx); err != nil {
			return nil, err
		}
		if fb.Dsts, err = graph.ReadChunked[graph.VID](br, lenDsts); err != nil {
			return nil, err
		}
		if fb.HubLo > fb.HubHi || fb.HubHi > ih.NumHubs {
			return nil, fmt.Errorf("core: block %d hub range [%d,%d) invalid", i, fb.HubLo, fb.HubHi)
		}
		for _, d := range fb.Dsts {
			if int(d) < fb.HubLo || int(d) >= fb.HubHi {
				return nil, fmt.Errorf("core: block %d destination %d out of range", i, d)
			}
		}
		total += fb.NumEdges()
	}
	var destLo uint32
	var lenIdx, lenSrcs uint64
	for _, p := range []any{&destLo, &lenIdx, &lenSrcs} {
		if err := get(p); err != nil {
			return nil, err
		}
	}
	if lenIdx > uint64(numV)+1 || lenSrcs > numE {
		return nil, fmt.Errorf("core: implausible sparse block sizes")
	}
	ih.Sparse.DestLo = int(destLo)
	if ih.Sparse.Index, err = graph.ReadChunked[int64](br, lenIdx); err != nil {
		return nil, err
	}
	if ih.Sparse.Srcs, err = graph.ReadChunked[graph.VID](br, lenSrcs); err != nil {
		return nil, err
	}
	for _, s := range ih.Sparse.Srcs {
		if int(s) >= ih.NumV {
			return nil, fmt.Errorf("core: sparse source %d out of range", s)
		}
	}
	total += ih.Sparse.NumEdges()
	if total != ih.NumE {
		return nil, fmt.Errorf("core: blocks cover %d edges, header says %d", total, ih.NumE)
	}
	ih.params = Params{HubsPerBlock: ih.HubsPerBlock}.withDefaults()
	return ih, nil
}

// SaveFile writes ih to path, atomically replacing any existing file.
func (ih *IHTL) SaveFile(path string) error {
	return atomicio.WriteFile(path, func(w io.Writer) error {
		_, err := ih.WriteTo(w)
		return err
	})
}

// LoadFile reads an iHTL graph from path.
func LoadFile(path string) (*IHTL, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadIHTL(f)
}
