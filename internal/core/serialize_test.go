package core

import (
	"bytes"
	"path/filepath"
	"testing"

	"ihtl/internal/gen"
)

func TestIHTLSerializeRoundTrip(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(10, 8, 77))
	if err != nil {
		t.Fatal(err)
	}
	ih, err := Build(g, Params{HubsPerBlock: 32})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := ih.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadIHTL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumV != ih.NumV || got.NumE != ih.NumE || got.NumHubs != ih.NumHubs ||
		got.NumVWEH != ih.NumVWEH || got.NumFV != ih.NumFV || len(got.Blocks) != len(ih.Blocks) {
		t.Fatal("header fields changed in round trip")
	}
	for i := range ih.Blocks {
		a, b := &ih.Blocks[i], &got.Blocks[i]
		if a.HubLo != b.HubLo || a.HubHi != b.HubHi || a.Sources != b.Sources {
			t.Fatalf("block %d header changed", i)
		}
		for j := range a.Index {
			if a.Index[j] != b.Index[j] {
				t.Fatalf("block %d index changed", i)
			}
		}
		for j := range a.Dsts {
			if a.Dsts[j] != b.Dsts[j] {
				t.Fatalf("block %d dsts changed", i)
			}
		}
	}
	// The loaded engine must produce the same results.
	eOrig, err := NewEngine(ih, testPool)
	if err != nil {
		t.Fatal(err)
	}
	eLoad, err := NewEngine(got, testPool)
	if err != nil {
		t.Fatal(err)
	}
	// Integer-valued sources keep the sums exact, so the comparison is
	// independent of the dynamic task→worker schedule of each run.
	src := integerVec(3, g.NumV)
	d1 := make([]float64, g.NumV)
	d2 := make([]float64, g.NumV)
	eOrig.Step(src, d1)
	eLoad.Step(src, d2)
	for v := range d1 {
		if d1[v] != d2[v] {
			t.Fatalf("loaded engine differs at %d", v)
		}
	}
}

func TestIHTLFileRoundTrip(t *testing.T) {
	g, err := gen.Web(gen.DefaultWeb(2000, 4))
	if err != nil {
		t.Fatal(err)
	}
	ih, err := Build(g, Params{HubsPerBlock: 16})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.ihtlbin")
	if err := ih.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.FlippedEdges() != ih.FlippedEdges() {
		t.Fatal("flipped edges changed")
	}
}

func TestReadIHTLRejectsCorruption(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(8, 6, 1))
	if err != nil {
		t.Fatal(err)
	}
	ih, err := Build(g, Params{HubsPerBlock: 16})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ih.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	if _, err := ReadIHTL(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("garbage accepted")
	}
	for _, cut := range []int{8, 40, len(data) / 2, len(data) - 1} {
		if _, err := ReadIHTL(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Corrupt a relabeling byte: NewID/OldID inverse check must fire.
	bad := append([]byte(nil), data...)
	bad[60] ^= 0xFF
	if _, err := ReadIHTL(bytes.NewReader(bad)); err == nil {
		t.Error("corrupt relabeling accepted")
	}
}
