package core

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"ihtl/internal/gen"
	"ihtl/internal/graph"
	"ihtl/internal/sched"
	"ihtl/internal/spmv"
	"ihtl/internal/xrand"
)

// The differential tests below pin the fused single-dispatch pipeline
// to the phased three-dispatch pipeline and to the spmv.Pull baseline
// BIT-FOR-BIT. Exact float equality across schedules is only
// meaningful when every partial sum is exact, so sources are small
// integer-valued floats: all sums stay integers far below 2^53 and
// addition is associative, making the result independent of task→
// worker assignment, merge order, and buffer skipping.
func integerVec(seed uint64, n int) []float64 {
	rng := xrand.New(seed)
	v := make([]float64, n)
	for i := range v {
		v[i] = float64(rng.Uint64n(8))
	}
	return v
}

// signedVec draws small signed integer values and replaces zeros with
// -0.0 half the time. The kernels' zero-skip keys on the bit pattern
// (spmv.SkipZero): only +0.0 — the additive identity every accumulator
// starts from — may be skipped, while -0.0 must be traversed. Adding
// -0.0 into a +0.0-initialised sum is itself bit-transparent, so the
// results below stay bit-identical across engines and schedules; the
// test pins that no kernel re-grows a `x == 0` comparison that would
// diverge from the shared predicate.
func signedVec(seed uint64, n int) []float64 {
	rng := xrand.New(seed)
	v := make([]float64, n)
	for i := range v {
		v[i] = float64(int64(rng.Uint64n(9)) - 4)
		if v[i] == 0 && rng.Uint64n(2) == 0 {
			v[i] = math.Copysign(0, -1)
		}
	}
	return v
}

func diffGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	gs := map[string]*graph.Graph{"paper": graph.PaperExample()}
	cfg := gen.DefaultRMAT(9, 8, 42)
	cfg.Reciprocity = 0.6
	rm, err := gen.RMAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gs["rmat"] = rm
	web, err := gen.Web(gen.DefaultWeb(3000, 11))
	if err != nil {
		t.Fatal(err)
	}
	gs["web"] = web
	return gs
}

// stepOldSpace runs one Step of an iHTL engine with old-ID-space
// vectors, permuting in and out.
func stepOldSpace(ih *IHTL, e *Engine, srcOld []float64) []float64 {
	n := ih.NumV
	srcNew := make([]float64, n)
	dstNew := make([]float64, n)
	ih.PermuteToNew(srcOld, srcNew)
	e.Step(srcNew, dstNew)
	dstOld := make([]float64, n)
	ih.PermuteToOld(dstNew, dstOld)
	return dstOld
}

// TestStepDifferentialFusedPhasedPull checks that the fused pipeline,
// the phased pipeline, the AtomicFlipped ablation of each, and the
// spmv.Pull baseline produce bit-identical dst vectors across graphs
// and worker counts.
func TestStepDifferentialFusedPhasedPull(t *testing.T) {
	workerCounts := []int{1, 3, runtime.GOMAXPROCS(0)}
	for name, g := range diffGraphs(t) {
		src := integerVec(1234, g.NumV)
		var want []float64 // pull result of the first pool; all must match it
		for _, workers := range workerCounts {
			t.Run(fmt.Sprintf("%s/w%d", name, workers), func(t *testing.T) {
				pool := sched.NewPool(workers)
				defer pool.Close()

				pe, err := spmv.NewEngine(g, pool, spmv.Pull, spmv.Options{})
				if err != nil {
					t.Fatal(err)
				}
				pullDst := make([]float64, g.NumV)
				pe.Step(src, pullDst)
				if want == nil {
					want = pullDst
				} else {
					requireBitIdentical(t, "pull-across-workers", want, pullDst)
				}

				ih, err := Build(g, Params{HubsPerBlock: 64})
				if err != nil {
					t.Fatal(err)
				}
				for _, opt := range []EngineOptions{
					{},
					{Phased: true},
					{AtomicFlipped: true},
					{AtomicFlipped: true, Phased: true},
				} {
					e, err := NewEngineOpts(ih, pool, opt)
					if err != nil {
						t.Fatal(err)
					}
					got := stepOldSpace(ih, e, src)
					label := fmt.Sprintf("phased=%v atomic=%v", opt.Phased, opt.AtomicFlipped)
					requireBitIdentical(t, label, want, got)
					// A second Step re-using the engine must be just as
					// exact: it proves buffers, dirty ranges, and gates
					// were left clean by the first fused iteration.
					got2 := stepOldSpace(ih, e, src)
					requireBitIdentical(t, label+" (second step)", want, got2)
				}
			})
		}
	}
}

// TestStepDifferentialSignedZero runs the differential with sources
// containing negative values and -0.0: every engine — the iHTL
// pipelines and all four spmv baselines — must agree bit-for-bit, so
// the zero-skip semantics are uniform (satellite of the SkipZero
// unification; see signedVec).
func TestStepDifferentialSignedZero(t *testing.T) {
	for name, g := range diffGraphs(t) {
		src := signedVec(77, g.NumV)
		pool := sched.NewPool(3)
		defer pool.Close()

		pe, err := spmv.NewEngine(g, pool, spmv.Pull, spmv.Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := make([]float64, g.NumV)
		pe.Step(src, want)

		got := make([]float64, g.NumV)
		for _, dir := range []spmv.Direction{
			spmv.PushAtomic, spmv.PushBuffered, spmv.PushPartitioned,
		} {
			e, err := spmv.NewEngine(g, pool, dir, spmv.Options{})
			if err != nil {
				t.Fatal(err)
			}
			e.Step(src, got)
			requireBitIdentical(t, fmt.Sprintf("%s/%v", name, dir), want, got)
		}

		ih, err := Build(g, Params{HubsPerBlock: 64})
		if err != nil {
			t.Fatal(err)
		}
		for _, opt := range []EngineOptions{
			{},
			{Phased: true},
			{AtomicFlipped: true},
			{AtomicFlipped: true, Phased: true},
		} {
			e, err := NewEngineOpts(ih, pool, opt)
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("%s/phased=%v atomic=%v", name, opt.Phased, opt.AtomicFlipped)
			requireBitIdentical(t, label, want, stepOldSpace(ih, e, src))
		}
	}
}

func requireBitIdentical(t *testing.T, label string, want, got []float64) {
	t.Helper()
	for v := range want {
		if math.Float64bits(want[v]) != math.Float64bits(got[v]) {
			t.Fatalf("%s: vertex %d: got %v want %v (bits %x vs %x)",
				label, v, got[v], want[v],
				math.Float64bits(got[v]), math.Float64bits(want[v]))
		}
	}
}

// FuzzStepDifferential drives the same differential property from
// fuzzed R-MAT seeds and scales.
func FuzzStepDifferential(f *testing.F) {
	f.Add(uint64(1), uint8(6))
	f.Add(uint64(99), uint8(8))
	f.Add(uint64(7), uint8(5))
	pool := sched.NewPool(3)
	f.Cleanup(pool.Close)
	f.Fuzz(func(t *testing.T, seed uint64, scale uint8) {
		if scale < 4 || scale > 9 {
			t.Skip()
		}
		g, err := gen.RMAT(gen.DefaultRMAT(int(scale), 6, seed|1))
		if err != nil {
			t.Skip()
		}
		src := integerVec(seed, g.NumV)
		pe, err := spmv.NewEngine(g, pool, spmv.Pull, spmv.Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := make([]float64, g.NumV)
		pe.Step(src, want)

		ih, err := Build(g, Params{HubsPerBlock: 32})
		if err != nil {
			t.Fatal(err)
		}
		fused, err := NewEngine(ih, pool)
		if err != nil {
			t.Fatal(err)
		}
		requireBitIdentical(t, "fused", want, stepOldSpace(ih, fused, src))
		phased, err := NewEngineOpts(ih, pool, EngineOptions{Phased: true})
		if err != nil {
			t.Fatal(err)
		}
		requireBitIdentical(t, "phased", want, stepOldSpace(ih, phased, src))
		degree, err := NewEngineOpts(ih, pool, EngineOptions{SparseKernel: SparsePullDegree})
		if err != nil {
			t.Fatal(err)
		}
		requireBitIdentical(t, "pull-degree", want, stepOldSpace(ih, degree, src))
		pb, err := NewEngineOpts(ih, pool, EngineOptions{SparseKernel: SparsePB})
		if err != nil {
			t.Fatal(err)
		}
		requireBitIdentical(t, "pb", want, stepOldSpace(ih, pb, src))

		// Second pass with signed values and -0.0 entries: the skip
		// predicates must keep every engine bit-identical (see signedVec).
		srcSigned := signedVec(seed^0x5a5a, g.NumV)
		pe.Step(srcSigned, want)
		requireBitIdentical(t, "fused signed", want, stepOldSpace(ih, fused, srcSigned))
		requireBitIdentical(t, "phased signed", want, stepOldSpace(ih, phased, srcSigned))
		requireBitIdentical(t, "pull-degree signed", want, stepOldSpace(ih, degree, srcSigned))
		requireBitIdentical(t, "pb signed", want, stepOldSpace(ih, pb, srcSigned))
	})
}

// TestFusedStepAllocationFree pins the fused pipeline's zero-allocation
// steady state: after construction, Steps allocate nothing — no
// per-dispatch scheduler, no closures, no WaitGroups.
func TestFusedStepAllocationFree(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(9, 8, 5))
	if err != nil {
		t.Fatal(err)
	}
	ih, err := Build(g, Params{HubsPerBlock: 64})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(ih, testPool)
	if err != nil {
		t.Fatal(err)
	}
	src := integerVec(3, g.NumV)
	dst := make([]float64, g.NumV)
	for i := 0; i < 3; i++ { // warm worker stacks
		e.Step(src, dst)
	}
	if allocs := testing.AllocsPerRun(20, func() { e.Step(src, dst) }); allocs != 0 {
		t.Errorf("fused Step allocates %.1f objects per run, want 0", allocs)
	}
}
