package core

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"ihtl/internal/faultinject"
	"ihtl/internal/gen"
	"ihtl/internal/graph"
	"ihtl/internal/sched"
	"ihtl/internal/spmv"
	"ihtl/internal/xrand"
)

func faultTestEngine(t *testing.T, opt EngineOptions) (*Engine, *graph.Graph) {
	t.Helper()
	g, err := gen.RMAT(gen.DefaultRMAT(11, 8, 7))
	if err != nil {
		t.Fatal(err)
	}
	ih, err := BuildWith(g, Params{}, testPool)
	if err != nil {
		t.Fatal(err)
	}
	if ih.NumHubs == 0 || len(ih.Blocks) == 0 {
		t.Fatal("fixture graph selected no hubs; fault sites would be dead")
	}
	e, err := NewEngineOpts(ih, testPool, opt)
	if err != nil {
		t.Fatal(err)
	}
	return e, g
}

func randomSrc(n int, seed uint64) []float64 {
	r := xrand.New(seed)
	src := make([]float64, n)
	for i := range src {
		src[i] = r.Float64()
	}
	return src
}

// wantClose compares an SpMV result against a reference to relative
// 1e-9. Bitwise equality is not the contract here: flipped tasks are
// claimed dynamically, so the per-worker buffer partial-sum grouping
// (and with it the last few bits) varies run to run even without
// faults.
func wantClose(t *testing.T, tag string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", tag, len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("%s: element %d = %g, want %g", tag, i, got[i], want[i])
		}
	}
}

func TestStepCtxCancelThenCleanStep(t *testing.T) {
	e, _ := faultTestEngine(t, EngineOptions{})
	n := e.NumVertices()
	src := randomSrc(n, 99)
	ref := make([]float64, n)
	e.Step(src, ref)

	dst := make([]float64, n)
	for seed := uint64(0); seed < 12; seed++ {
		// Randomised cancellation point: a seeded wall-clock timeout
		// that lands somewhere inside (or before, or after) the step.
		to := time.Duration(faultinject.SeededAfter(seed, "test.step-cancel", 400)) * time.Microsecond
		ctx, cancel := context.WithTimeout(context.Background(), to)
		err := e.StepCtx(ctx, src, dst)
		cancel()
		if err != nil && !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("seed %d: err = %v, want nil or DeadlineExceeded", seed, err)
		}
		// Whatever happened, the engine must be clean: the next
		// uncancelled step matches the reference.
		if err := e.StepCtx(nil, src, dst); err != nil {
			t.Fatalf("seed %d: clean step: %v", seed, err)
		}
		wantClose(t, "clean step after cancel", dst, ref)
	}
}

func TestStepCtxInjectedPanicRecovery(t *testing.T) {
	e, _ := faultTestEngine(t, EngineOptions{})
	n := e.NumVertices()
	src := randomSrc(n, 5)
	ref := make([]float64, n)
	e.Step(src, ref)

	sites := []faultinject.Site{
		faultinject.SiteFlippedTask,
		faultinject.SiteSparsePart,
		faultinject.SiteMergeBlock,
	}
	dst := make([]float64, n)
	for _, site := range sites {
		for after := int64(0); after < 3; after++ {
			plan := faultinject.NewPlan(faultinject.Rule{Site: site, Kind: faultinject.Panic, After: after})
			faultinject.Activate(plan)
			err := e.StepCtx(nil, src, dst)
			faultinject.Deactivate()
			if plan.Fired(site) == 0 {
				// The site had fewer than After+1 hits this step (e.g.
				// a single merge); nothing was injected.
				if err != nil {
					t.Fatalf("%s after=%d: err = %v with no fault fired", site, after, err)
				}
			} else {
				var perr *sched.PanicError
				if !errors.As(err, &perr) {
					t.Fatalf("%s after=%d: err = %v, want *sched.PanicError", site, after, err)
				}
				var ip *faultinject.InjectedPanic
				if !errors.As(err, &ip) || ip.Site != site {
					t.Fatalf("%s after=%d: PanicError does not unwrap to the injected fault: %v", site, after, err)
				}
			}
			// Recovery invariant: the very next clean step matches.
			if err := e.StepCtx(nil, src, dst); err != nil {
				t.Fatalf("%s after=%d: clean step: %v", site, after, err)
			}
			wantClose(t, "clean step after injected panic", dst, ref)
		}
	}
}

func TestStepCtxHealthError(t *testing.T) {
	e, _ := faultTestEngine(t, EngineOptions{Health: spmv.HealthPolicy{Mode: spmv.HealthError}})
	n := e.NumVertices()
	src := randomSrc(n, 17)
	dst := make([]float64, n)

	// A clean step passes the watchdog.
	if err := e.StepCtx(nil, src, dst); err != nil {
		t.Fatalf("clean step under watchdog: %v", err)
	}

	faultinject.Activate(faultinject.NewPlan(faultinject.Rule{
		Site: faultinject.SiteStepHealth, Kind: faultinject.NaN, After: 0,
	}))
	err := e.StepCtx(nil, src, dst)
	faultinject.Deactivate()
	var nerr *spmv.NumericError
	if !errors.As(err, &nerr) {
		t.Fatalf("err = %v, want *spmv.NumericError", err)
	}
	if nerr.Rollback {
		t.Fatal("HealthError verdict asks for rollback")
	}
	if nerr.Count < 1 {
		t.Fatalf("NumericError.Count = %d, want >= 1", nerr.Count)
	}

	// The plain entrypoint panics with the same verdict.
	faultinject.Activate(faultinject.NewPlan(faultinject.Rule{
		Site: faultinject.SiteStepHealth, Kind: faultinject.NaN, After: 0,
	}))
	func() {
		defer faultinject.Deactivate()
		defer func() {
			if r := recover(); r == nil {
				t.Fatal("plain Step under HealthError did not panic on NaN")
			} else if _, ok := r.(*spmv.NumericError); !ok {
				t.Fatalf("panic value %T, want *spmv.NumericError", r)
			}
		}()
		e.Step(src, dst)
	}()
}

func TestStepCtxHealthClamp(t *testing.T) {
	e, _ := faultTestEngine(t, EngineOptions{Health: spmv.HealthPolicy{Mode: spmv.HealthClamp}})
	n := e.NumVertices()
	src := randomSrc(n, 23)
	dst := make([]float64, n)
	faultinject.Activate(faultinject.NewPlan(faultinject.Rule{
		Site: faultinject.SiteStepHealth, Kind: faultinject.NaN, After: 0,
	}))
	err := e.StepCtx(nil, src, dst)
	faultinject.Deactivate()
	if err != nil {
		t.Fatalf("clamp mode surfaced an error: %v", err)
	}
	for i, x := range dst {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatalf("dst[%d] = %g survived the clamp", i, x)
		}
	}
}

func TestStepCtxHealthRollbackVerdict(t *testing.T) {
	e, _ := faultTestEngine(t, EngineOptions{Health: spmv.HealthPolicy{Mode: spmv.HealthRollback}})
	n := e.NumVertices()
	src := randomSrc(n, 29)
	dst := make([]float64, n)
	faultinject.Activate(faultinject.NewPlan(faultinject.Rule{
		Site: faultinject.SiteStepHealth, Kind: faultinject.NaN, After: 0,
	}))
	err := e.StepCtx(nil, src, dst)
	faultinject.Deactivate()
	var nerr *spmv.NumericError
	if !errors.As(err, &nerr) {
		t.Fatalf("err = %v, want *spmv.NumericError", err)
	}
	if !nerr.Rollback {
		t.Fatal("HealthRollback verdict lacks the Rollback flag")
	}
}

func TestStepBatchCtxPanicRecovery(t *testing.T) {
	e, _ := faultTestEngine(t, EngineOptions{})
	n := e.NumVertices()
	const k = 4
	src := randomSrc(n*k, 41)
	ref := make([]float64, n*k)
	e.StepBatch(src, ref, k)

	dst := make([]float64, n*k)
	plan := faultinject.NewPlan(faultinject.Rule{Site: faultinject.SiteFlippedTask, Kind: faultinject.Panic, After: 1})
	faultinject.Activate(plan)
	err := e.StepBatchCtx(nil, src, dst, k)
	faultinject.Deactivate()
	if plan.Fired(faultinject.SiteFlippedTask) == 0 {
		t.Skip("no flipped task claimed before the injection point")
	}
	var perr *sched.PanicError
	if !errors.As(err, &perr) {
		t.Fatalf("err = %v, want *sched.PanicError", err)
	}
	if err := e.StepBatchCtx(nil, src, dst, k); err != nil {
		t.Fatalf("clean batch step: %v", err)
	}
	wantClose(t, "clean batch step after injected panic", dst, ref)
}

func TestBuildWithCtxCancellation(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(12, 8, 3))
	if err != nil {
		t.Fatal(err)
	}
	refIH, err := Build(g, Params{})
	if err != nil {
		t.Fatal(err)
	}

	// Pre-cancelled ctx never starts the build.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildWithCtx(ctx, g, Params{}, testPool); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled build: err = %v, want context.Canceled", err)
	}

	for seed := uint64(0); seed < 10; seed++ {
		to := time.Duration(faultinject.SeededAfter(seed, "test.build-cancel", 3000)) * time.Microsecond
		ctx, cancel := context.WithTimeout(context.Background(), to)
		ih, err := BuildWithCtx(ctx, g, Params{}, testPool)
		cancel()
		switch {
		case err != nil:
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("seed %d: err = %v, want DeadlineExceeded", seed, err)
			}
			if ih != nil {
				t.Fatalf("seed %d: failed build returned a non-nil IHTL", seed)
			}
		default:
			// A build that beat the timeout must be bit-for-bit the
			// sequential result (the existing parallel-build guarantee).
			if ih.NumHubs != refIH.NumHubs || ih.NumVWEH != refIH.NumVWEH || ih.NumFV != refIH.NumFV {
				t.Fatalf("seed %d: partition %d/%d/%d, want %d/%d/%d", seed,
					ih.NumHubs, ih.NumVWEH, ih.NumFV, refIH.NumHubs, refIH.NumVWEH, refIH.NumFV)
			}
			for v := range refIH.NewID {
				if ih.NewID[v] != refIH.NewID[v] {
					t.Fatalf("seed %d: NewID[%d] = %d, want %d", seed, v, ih.NewID[v], refIH.NewID[v])
				}
			}
		}
	}
}

func TestFaultedStepsLeakNoGoroutines(t *testing.T) {
	e, _ := faultTestEngine(t, EngineOptions{})
	n := e.NumVertices()
	src := randomSrc(n, 51)
	dst := make([]float64, n)
	base := runtime.NumGoroutine()
	for i := 0; i < 30; i++ {
		faultinject.Activate(faultinject.NewPlan(faultinject.Rule{
			Site: faultinject.SiteFlippedTask, Kind: faultinject.Panic, After: int64(i % 5),
		}))
		_ = e.StepCtx(nil, src, dst)
		faultinject.Deactivate()
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Microsecond)
		_ = e.StepCtx(ctx, src, dst)
		cancel()
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("goroutines did not settle: %d, base %d", runtime.NumGoroutine(), base)
}

// TestBuildWithCtxInjectedPanic lands injected panics on the
// SiteBuildFill site — the static relabel/rank/CSR-fill passes inside
// BuildWithCtx's Fallible region — and checks the build returns the
// fault as an error instead of crashing, after which an uninjected
// build of the same graph succeeds and matches the reference exactly.
func TestBuildWithCtxInjectedPanic(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(11, 8, 7))
	if err != nil {
		t.Fatal(err)
	}
	refIH, err := BuildWith(g, Params{}, testPool)
	if err != nil {
		t.Fatal(err)
	}
	for after := int64(0); after < 8; after++ {
		plan := faultinject.NewPlan(faultinject.Rule{
			Site: faultinject.SiteBuildFill, Kind: faultinject.Panic, After: after,
		})
		faultinject.Activate(plan)
		ih, err := BuildWithCtx(context.Background(), g, Params{}, testPool)
		faultinject.Deactivate()
		if plan.Fired(faultinject.SiteBuildFill) == 0 {
			t.Fatalf("after=%d: SiteBuildFill never fired; the build fills lost their instrumentation", after)
		}
		if err == nil {
			t.Fatalf("after=%d: build succeeded despite an injected panic", after)
		}
		var ip *faultinject.InjectedPanic
		if !errors.As(err, &ip) || ip.Site != faultinject.SiteBuildFill {
			t.Fatalf("after=%d: error does not unwrap to the injected fault: %v", after, err)
		}
		if ih != nil {
			t.Fatalf("after=%d: got a non-nil IHTL alongside the error", after)
		}
		// Recovery invariant: the next clean build is bit-for-bit the
		// reference (parallel builds are deterministic).
		clean, err := BuildWithCtx(context.Background(), g, Params{}, testPool)
		if err != nil {
			t.Fatalf("after=%d: clean build: %v", after, err)
		}
		if clean.NumHubs != refIH.NumHubs || clean.NumVWEH != refIH.NumVWEH || clean.NumFV != refIH.NumFV {
			t.Fatalf("after=%d: partition %d/%d/%d, want %d/%d/%d", after,
				clean.NumHubs, clean.NumVWEH, clean.NumFV, refIH.NumHubs, refIH.NumVWEH, refIH.NumFV)
		}
		for v := range refIH.NewID {
			if clean.NewID[v] != refIH.NewID[v] {
				t.Fatalf("after=%d: NewID[%d] = %d, want %d", after, v, clean.NewID[v], refIH.NewID[v])
			}
		}
	}
}
