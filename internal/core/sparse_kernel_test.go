package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"ihtl/internal/faultinject"
	"ihtl/internal/gen"
	"ihtl/internal/sched"
	"ihtl/internal/spmv"
)

// sparseKernels is the ablation matrix: every selectable sparse kernel
// must be bit-for-bit identical to the baseline pull.
var sparseKernels = []SparseKernel{SparsePull, SparsePullDegree, SparsePB}

// TestSparseKernelDifferential pins all three sparse kernels — under
// both the fused and the phased pipeline — bit-for-bit against the
// spmv.Pull baseline, across graphs and worker counts. The PB kernel's
// chunk-indexed segments and ascending-chunk drain make its result
// schedule-independent (see sparse.go), so exact equality must hold at
// every worker count.
func TestSparseKernelDifferential(t *testing.T) {
	workerCounts := []int{1, 3, runtime.GOMAXPROCS(0)}
	for name, g := range diffGraphs(t) {
		src := integerVec(4321, g.NumV)
		var want []float64
		for _, workers := range workerCounts {
			t.Run(fmt.Sprintf("%s/w%d", name, workers), func(t *testing.T) {
				pool := sched.NewPool(workers)
				defer pool.Close()

				pe, err := spmv.NewEngine(g, pool, spmv.Pull, spmv.Options{})
				if err != nil {
					t.Fatal(err)
				}
				pullDst := make([]float64, g.NumV)
				pe.Step(src, pullDst)
				if want == nil {
					want = pullDst
				} else {
					requireBitIdentical(t, "pull-across-workers", want, pullDst)
				}

				ih, err := Build(g, Params{HubsPerBlock: 64})
				if err != nil {
					t.Fatal(err)
				}
				for _, kernel := range sparseKernels {
					for _, phased := range []bool{false, true} {
						e, err := NewEngineOpts(ih, pool, EngineOptions{
							SparseKernel: kernel, Phased: phased,
						})
						if err != nil {
							t.Fatal(err)
						}
						label := fmt.Sprintf("kernel=%v phased=%v", kernel, phased)
						requireBitIdentical(t, label, want, stepOldSpace(ih, e, src))
						// Second step: cursors, schedulers and barriers must
						// have been left re-armed by the first.
						requireBitIdentical(t, label+" (second step)", want, stepOldSpace(ih, e, src))
					}
				}
			})
		}
	}
}

// TestSparseKernelSignedZero runs the differential with negative values
// and -0.0 sources: the bin phase's SkipZero must keep the PB kernel —
// and the standalone spmv.PropBlocked baseline — bit-identical to pull
// (only +0.0, the additive identity, may be skipped; see signedVec).
func TestSparseKernelSignedZero(t *testing.T) {
	for name, g := range diffGraphs(t) {
		src := signedVec(31, g.NumV)
		pool := sched.NewPool(3)
		defer pool.Close()

		pe, err := spmv.NewEngine(g, pool, spmv.Pull, spmv.Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := make([]float64, g.NumV)
		pe.Step(src, want)

		// Standalone propagation-blocked baseline, including a small
		// bucket width so multi-bucket replay is exercised.
		for _, rows := range []int{0, 512} {
			be, err := spmv.NewEngine(g, pool, spmv.PropBlocked, spmv.Options{BucketRows: rows})
			if err != nil {
				t.Fatal(err)
			}
			got := make([]float64, g.NumV)
			be.Step(src, got)
			requireBitIdentical(t, fmt.Sprintf("%s/prop-blocked rows=%d", name, rows), want, got)
		}

		ih, err := Build(g, Params{HubsPerBlock: 64})
		if err != nil {
			t.Fatal(err)
		}
		for _, kernel := range sparseKernels {
			e, err := NewEngineOpts(ih, pool, EngineOptions{SparseKernel: kernel})
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("%s/kernel=%v", name, kernel)
			requireBitIdentical(t, label, want, stepOldSpace(ih, e, src))
		}
	}
}

// TestSparseKernelBatchDifferential pins StepBatch under every sparse
// kernel bit-for-bit against K scalar Steps of the same engine (which
// the scalar differential pins to pull).
func TestSparseKernelBatchDifferential(t *testing.T) {
	for name, g := range diffGraphs(t) {
		ih, err := Build(g, Params{HubsPerBlock: 64})
		if err != nil {
			t.Fatal(err)
		}
		pool := sched.NewPool(3)
		defer pool.Close()
		for _, kernel := range sparseKernels {
			for _, phased := range []bool{false, true} {
				e, err := NewEngineOpts(ih, pool, EngineOptions{
					SparseKernel: kernel, Phased: phased,
				})
				if err != nil {
					t.Fatal(err)
				}
				for _, k := range []int{2, 4} {
					label := fmt.Sprintf("%s/kernel=%v phased=%v/k%d", name, kernel, phased, k)
					t.Run(label, func(t *testing.T) {
						lanes, src := packLanes(99, ih.NumV, k)
						want := make([][]float64, k)
						for j := 0; j < k; j++ {
							want[j] = make([]float64, ih.NumV)
							e.Step(lanes[j], want[j])
						}
						dst := make([]float64, ih.NumV*k)
						e.StepBatch(src, dst, k)
						got := make([]float64, ih.NumV)
						for j := 0; j < k; j++ {
							for v := 0; v < ih.NumV; v++ {
								got[v] = dst[v*k+j]
							}
							requireBitIdentical(t, fmt.Sprintf("lane %d", j), want[j], got)
						}
					})
				}
			}
		}
	}
}

// TestSparseKernelAllocationFree pins the zero-allocation steady state
// of the degree-aware and propagation-blocked kernels: after warm-up,
// neither Step nor a stable-width StepBatch allocates.
func TestSparseKernelAllocationFree(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(9, 8, 5))
	if err != nil {
		t.Fatal(err)
	}
	ih, err := Build(g, Params{HubsPerBlock: 64})
	if err != nil {
		t.Fatal(err)
	}
	const k = 4
	for _, kernel := range []SparseKernel{SparsePullDegree, SparsePB} {
		e, err := NewEngineOpts(ih, testPool, EngineOptions{SparseKernel: kernel})
		if err != nil {
			t.Fatal(err)
		}
		src := integerVec(3, g.NumV)
		dst := make([]float64, g.NumV)
		_, bsrc := packLanes(3, g.NumV, k)
		bdst := make([]float64, g.NumV*k)
		for i := 0; i < 3; i++ { // warm worker stacks and the batch state
			e.Step(src, dst)
			e.StepBatch(bsrc, bdst, k)
		}
		if allocs := testing.AllocsPerRun(20, func() { e.Step(src, dst) }); allocs != 0 {
			t.Errorf("%v: Step allocates %.1f objects per run, want 0", kernel, allocs)
		}
		if allocs := testing.AllocsPerRun(20, func() { e.StepBatch(bsrc, bdst, k) }); allocs != 0 {
			t.Errorf("%v: StepBatch allocates %.1f objects per run, want 0", kernel, allocs)
		}
	}
}

// TestPropBlockedStepAllocFree pins the standalone spmv baseline the
// same way (its direction list already runs the generic alloc test;
// this one pins the non-default bucket width).
func TestPropBlockedStepAllocFree(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(9, 8, 5))
	if err != nil {
		t.Fatal(err)
	}
	pool := sched.NewPool(2)
	defer pool.Close()
	e, err := spmv.NewEngine(g, pool, spmv.PropBlocked, spmv.Options{BucketRows: 1024})
	if err != nil {
		t.Fatal(err)
	}
	src := integerVec(3, g.NumV)
	dst := make([]float64, g.NumV)
	e.Step(src, dst)
	if allocs := testing.AllocsPerRun(10, func() { e.Step(src, dst) }); allocs != 0 {
		t.Errorf("prop-blocked Step allocates %.1f objects per run, want 0", allocs)
	}
}

// TestSparseKernelCancelThenCleanStep drives randomised cancellation
// through the PB kernel's two-phase path: aborts can land before the
// bin barrier, inside it, or during the drain, and the engine must
// recover to exact results on the next clean step. The barrier's
// WaitAbort is what makes an abort during phase 1 release the workers
// parked on it.
func TestSparseKernelCancelThenCleanStep(t *testing.T) {
	for _, kernel := range []SparseKernel{SparsePullDegree, SparsePB} {
		e, _ := faultTestEngine(t, EngineOptions{SparseKernel: kernel})
		n := e.NumVertices()
		src := randomSrc(n, 77)
		ref := make([]float64, n)
		e.Step(src, ref)

		dst := make([]float64, n)
		for seed := uint64(0); seed < 12; seed++ {
			to := time.Duration(faultinject.SeededAfter(seed, "test.sparse-cancel", 400)) * time.Microsecond
			ctx, cancel := context.WithTimeout(context.Background(), to)
			err := e.StepCtx(ctx, src, dst)
			cancel()
			if err != nil && !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("%v seed %d: err = %v, want nil or DeadlineExceeded", kernel, seed, err)
			}
			if err := e.StepCtx(nil, src, dst); err != nil {
				t.Fatalf("%v seed %d: clean step: %v", kernel, seed, err)
			}
			wantClose(t, "clean step after cancel", dst, ref)
		}
	}
}

// TestSparseKernelInjectedPanicRecovery injects panics at the new bin
// and drain sites (and the shared sparse-part site of the degree-aware
// schedule): the panic must surface as *sched.PanicError unwrapping to
// the injected fault, and the very next clean step must match.
func TestSparseKernelInjectedPanicRecovery(t *testing.T) {
	cases := []struct {
		kernel SparseKernel
		sites  []faultinject.Site
	}{
		{SparsePullDegree, []faultinject.Site{faultinject.SiteSparsePart}},
		{SparsePB, []faultinject.Site{faultinject.SiteSparseBin, faultinject.SiteSparseDrain}},
	}
	for _, tc := range cases {
		e, _ := faultTestEngine(t, EngineOptions{SparseKernel: tc.kernel})
		n := e.NumVertices()
		src := randomSrc(n, 13)
		ref := make([]float64, n)
		e.Step(src, ref)

		dst := make([]float64, n)
		for _, site := range tc.sites {
			for after := int64(0); after < 3; after++ {
				plan := faultinject.NewPlan(faultinject.Rule{Site: site, Kind: faultinject.Panic, After: after})
				faultinject.Activate(plan)
				err := e.StepCtx(nil, src, dst)
				faultinject.Deactivate()
				if plan.Fired(site) == 0 {
					if err != nil {
						t.Fatalf("%v/%s after=%d: err = %v with no fault fired", tc.kernel, site, after, err)
					}
				} else {
					var perr *sched.PanicError
					if !errors.As(err, &perr) {
						t.Fatalf("%v/%s after=%d: err = %v, want *sched.PanicError", tc.kernel, site, after, err)
					}
					var ip *faultinject.InjectedPanic
					if !errors.As(err, &ip) || ip.Site != site {
						t.Fatalf("%v/%s after=%d: PanicError does not unwrap to the injected fault: %v", tc.kernel, site, after, err)
					}
				}
				if err := e.StepCtx(nil, src, dst); err != nil {
					t.Fatalf("%v/%s after=%d: clean step: %v", tc.kernel, site, after, err)
				}
				wantClose(t, "clean step after injected panic", dst, ref)
			}
		}
	}
}

// TestSparseKernelSerializeRoundTrip checks the lazy degree-bucket
// path: the v1 serialization format does not store Heavy/HeavyDeg, so
// a deserialized IHTL must re-derive them on first SparsePullDegree
// engine construction — deterministically, since the threshold is a
// pure function of the sparse CSC — and produce bit-identical results.
func TestSparseKernelSerializeRoundTrip(t *testing.T) {
	g, err := gen.Web(gen.DefaultWeb(3000, 11))
	if err != nil {
		t.Fatal(err)
	}
	ih, err := Build(g, Params{HubsPerBlock: 64})
	if err != nil {
		t.Fatal(err)
	}
	if ih.Sparse.HeavyDeg == 0 {
		t.Fatal("build did not derive degree buckets")
	}
	var buf bytes.Buffer
	if _, err := ih.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	ih2, err := ReadIHTL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ih2.Sparse.HeavyDeg != 0 || ih2.Sparse.Heavy != nil {
		t.Fatal("v1 format unexpectedly carries degree buckets; update this test and the lazy path")
	}

	e1, err := NewEngineOpts(ih, testPool, EngineOptions{SparseKernel: SparsePullDegree})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewEngineOpts(ih2, testPool, EngineOptions{SparseKernel: SparsePullDegree})
	if err != nil {
		t.Fatal(err)
	}
	if ih2.Sparse.HeavyDeg != ih.Sparse.HeavyDeg {
		t.Fatalf("lazy HeavyDeg = %d, build-time %d", ih2.Sparse.HeavyDeg, ih.Sparse.HeavyDeg)
	}
	if len(ih2.Sparse.Heavy) != len(ih.Sparse.Heavy) {
		t.Fatalf("lazy |Heavy| = %d, build-time %d", len(ih2.Sparse.Heavy), len(ih.Sparse.Heavy))
	}
	for i := range ih.Sparse.Heavy {
		if ih2.Sparse.Heavy[i] != ih.Sparse.Heavy[i] {
			t.Fatalf("Heavy[%d] = %d, want %d", i, ih2.Sparse.Heavy[i], ih.Sparse.Heavy[i])
		}
	}
	src := integerVec(8, g.NumV)
	got1 := stepOldSpace(ih, e1, src)
	got2 := stepOldSpace(ih2, e2, src)
	requireBitIdentical(t, "deserialized engine", got1, got2)
}

// TestEnsureDegreeBuckets checks the heavy-list derivation directly:
// threshold formula, membership, ordering, idempotence, and that the
// parallel build's count/prefix/fill pass agrees with the sequential
// derivation.
func TestEnsureDegreeBuckets(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(10, 8, 21))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Build(g, Params{HubsPerBlock: 64})
	if err != nil {
		t.Fatal(err)
	}
	sp := &seq.Sparse
	n := seq.NumV - sp.DestLo
	if n <= 0 {
		t.Skip("no sparse rows")
	}
	mean := sp.Index[n] / int64(n)
	wantDeg := int64(64)
	if 8*mean > wantDeg {
		wantDeg = 8 * mean
	}
	if sp.HeavyDeg != wantDeg {
		t.Fatalf("HeavyDeg = %d, want max(64, 8*%d) = %d", sp.HeavyDeg, mean, wantDeg)
	}
	prev := int32(-1)
	for _, r := range sp.Heavy {
		if r <= prev {
			t.Fatalf("Heavy not strictly ascending at row %d", r)
		}
		prev = r
		if d := sp.Index[r+1] - sp.Index[r]; d < sp.HeavyDeg {
			t.Fatalf("Heavy row %d has degree %d < threshold %d", r, d, sp.HeavyDeg)
		}
	}
	nHeavy := 0
	for i := 0; i < n; i++ {
		if sp.Index[i+1]-sp.Index[i] >= sp.HeavyDeg {
			nHeavy++
		}
	}
	if nHeavy != len(sp.Heavy) {
		t.Fatalf("|Heavy| = %d, brute force %d", len(sp.Heavy), nHeavy)
	}
	before := len(sp.Heavy)
	sp.EnsureDegreeBuckets() // must be a no-op the second time
	if len(sp.Heavy) != before {
		t.Fatal("EnsureDegreeBuckets is not idempotent")
	}

	par, err := BuildWith(g, Params{HubsPerBlock: 64}, testPool)
	if err != nil {
		t.Fatal(err)
	}
	if par.Sparse.HeavyDeg != sp.HeavyDeg || len(par.Sparse.Heavy) != len(sp.Heavy) {
		t.Fatalf("parallel build degree buckets differ: deg %d/%d, len %d/%d",
			par.Sparse.HeavyDeg, sp.HeavyDeg, len(par.Sparse.Heavy), len(sp.Heavy))
	}
	for i := range sp.Heavy {
		if par.Sparse.Heavy[i] != sp.Heavy[i] {
			t.Fatalf("parallel Heavy[%d] = %d, want %d", i, par.Sparse.Heavy[i], sp.Heavy[i])
		}
	}
}

// TestParseSparseKernel pins the flag surface of the ablation.
func TestParseSparseKernel(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SparseKernel
	}{
		{"", SparseAuto}, {"auto", SparseAuto}, {"pull", SparsePull},
		{"pull-degree", SparsePullDegree}, {"pb", SparsePB},
	} {
		got, err := ParseSparseKernel(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseSparseKernel(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if tc.in != "" && got.String() != tc.in {
			t.Fatalf("String round trip: %v -> %q", got, got.String())
		}
	}
	if _, err := ParseSparseKernel("bogus"); err == nil {
		t.Fatal("ParseSparseKernel accepted a bogus kernel")
	}
}

// TestSparseKernelBreakdownSplit checks the new clock split: the PB
// kernel reports its busy time under BinBusy/DrainBusy (SparseBusy
// stays zero), pull kernels under SparseBusy, and both feed
// SparseTotalBusy and TotalBusy.
func TestSparseKernelBreakdownSplit(t *testing.T) {
	g, err := gen.Web(gen.DefaultWeb(4000, 11))
	if err != nil {
		t.Fatal(err)
	}
	ih, err := Build(g, Params{HubsPerBlock: 64})
	if err != nil {
		t.Fatal(err)
	}
	src := integerVec(2, g.NumV)
	dst := make([]float64, g.NumV)

	pb, err := NewEngineOpts(ih, testPool, EngineOptions{SparseKernel: SparsePB})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		pb.Step(src, dst)
	}
	b := pb.TakeBreakdown()
	if b.BinBusy <= 0 || b.DrainBusy <= 0 {
		t.Fatalf("PB clocks not split: bin %v drain %v", b.BinBusy, b.DrainBusy)
	}
	if b.SparseBusy != 0 {
		t.Fatalf("PB kernel charged %v to SparseBusy", b.SparseBusy)
	}
	if b.SparseTotalBusy() != b.BinBusy+b.DrainBusy {
		t.Fatal("SparseTotalBusy does not sum the phase clocks")
	}

	pd, err := NewEngineOpts(ih, testPool, EngineOptions{SparseKernel: SparsePullDegree})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		pd.Step(src, dst)
	}
	b = pd.TakeBreakdown()
	if b.SparseBusy <= 0 {
		t.Fatal("degree-aware pull recorded no sparse busy time")
	}
	if b.BinBusy != 0 || b.DrainBusy != 0 {
		t.Fatalf("pull kernel charged bin/drain clocks: %v/%v", b.BinBusy, b.DrainBusy)
	}
}
