package core

import (
	"testing"

	"ihtl/internal/cache"
	"ihtl/internal/gen"
)

func TestParallelSimIHTLBeatsPullOnSharedL3(t *testing.T) {
	// §3.4's design point: per-thread buffers live in private L2s, so
	// multi-core iHTL keeps its random accesses off the shared L3,
	// while multi-core pull's random reads all contend there.
	g, err := gen.RMAT(gen.RMATConfig{
		Scale: 16, EdgeFactor: 12, A: 0.57, B: 0.19, C: 0.19, Noise: 0.1, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := simCacheConfig() // 2KB L1 / 32KB L2 / 256KB L3
	ih, err := Build(g, Params{CacheBytes: cfg.Levels[1].SizeBytes})
	if err != nil {
		t.Fatal(err)
	}
	for _, cores := range []int{1, 2, 4} {
		pull, err := SimulatePullParallel(g, cfg, cores)
		if err != nil {
			t.Fatal(err)
		}
		ihtl, err := SimulateStepParallel(ih, cfg, cores)
		if err != nil {
			t.Fatal(err)
		}
		if ihtl.SharedL3.Misses >= pull.SharedL3.Misses {
			t.Fatalf("cores=%d: iHTL L3 misses %d not below pull %d",
				cores, ihtl.SharedL3.Misses, pull.SharedL3.Misses)
		}
		if ihtl.L2.Misses >= pull.L2.Misses {
			t.Fatalf("cores=%d: iHTL private-L2 misses %d not below pull %d",
				cores, ihtl.L2.Misses, pull.L2.Misses)
		}
	}
}

func TestParallelSimAccountsAllEdges(t *testing.T) {
	g, err := gen.Web(gen.DefaultWeb(8000, 9))
	if err != nil {
		t.Fatal(err)
	}
	cfg := simCacheConfig()
	ih, err := Build(g, Params{CacheBytes: cfg.Levels[1].SizeBytes})
	if err != nil {
		t.Fatal(err)
	}
	for _, cores := range []int{1, 3, 8} {
		pull, err := SimulatePullParallel(g, cfg, cores)
		if err != nil {
			t.Fatal(err)
		}
		// One random read per edge, one write per destination.
		if pull.Loads != uint64(g.NumE) {
			t.Fatalf("cores=%d: pull loads %d, want %d", cores, pull.Loads, g.NumE)
		}
		if pull.Stores != uint64(g.NumV) {
			t.Fatalf("cores=%d: pull stores %d, want %d", cores, pull.Stores, g.NumV)
		}
		ihtl, err := SimulateStepParallel(ih, cfg, cores)
		if err != nil {
			t.Fatal(err)
		}
		// Buffer RMW per flipped edge + sparse read per sparse edge +
		// merge reads: loads >= E; stores: flipped RMW + merge resets
		// + hub writes + sparse dst writes.
		if ihtl.Loads < uint64(g.NumE) {
			t.Fatalf("cores=%d: ihtl loads %d below edge count %d", cores, ihtl.Loads, g.NumE)
		}
	}
}

func TestParallelSimErrors(t *testing.T) {
	g, _ := gen.RMAT(gen.DefaultRMAT(6, 4, 1))
	ih, _ := Build(g, Params{HubsPerBlock: 8})
	twoLevel := cache.Config{LineSize: 64, Levels: []cache.LevelConfig{{SizeBytes: 1 << 10, Ways: 2}, {SizeBytes: 1 << 12, Ways: 4}}}
	if _, err := SimulatePullParallel(g, twoLevel, 2); err == nil {
		t.Error("two-level config accepted")
	}
	if _, err := SimulateStepParallel(ih, simCacheConfig(), 0); err == nil {
		t.Error("zero cores accepted")
	}
}
