package core

// OutDegrees recomputes the out-degree of every vertex in iHTL
// (stepping) ID space from the resident topology alone, so drivers
// that need out-degrees — PageRank's contribution scaling, dangling
// detection — can run over a graph deserialised from an engine file
// without the original graph.Graph at hand.
//
// Every edge appears exactly once across the flipped blocks and the
// sparse block (the paper's partition invariant), so summing source
// occurrences over both reproduces the original out-degrees exactly:
// flipped blocks index per push source (the run length IS the edge
// count, no adjacency decode needed), while the sparse block stores
// sources grouped by destination and is scanned flat or, for an
// encoded-only graph (a v2 engine file opened without materialising
// flat topology), chunk-by-chunk through the validated varint decoder.
func (ih *IHTL) OutDegrees() []int {
	deg := make([]int, ih.NumV)
	nps := ih.NumPushSources()
	for bi := range ih.Blocks {
		idx := ih.Blocks[bi].Index
		for s := 0; s+1 < len(idx) && s < nps; s++ {
			deg[s] += int(idx[s+1] - idx[s])
		}
	}
	sp := &ih.Sparse
	switch {
	case sp.Srcs != nil:
		for _, u := range sp.Srcs {
			deg[u]++
		}
	case sp.Enc != nil:
		sIdx := make([]int32, sp.Enc.MaxSrcs+1)
		vals := make([]uint32, sp.Enc.MaxEdges)
		for c := 0; c < sp.Enc.Chunks(); c++ {
			_, ne := sp.Enc.DecodeChunkCSR(c, sIdx, vals)
			for i := 0; i < ne; i++ {
				deg[vals[i]]++
			}
		}
	}
	return deg
}

// OutDegrees recomputes per-vertex out-degrees in sharded-global
// (stepping) ID space: each shard's private topology contributes its
// intra-shard edges (shard-local new IDs offset by the shard's range
// base), and the exchange CSR — indexed by global source — contributes
// the cross-shard edges. Together they cover every edge exactly once.
func (sg *ShardedIHTL) OutDegrees() []int {
	deg := make([]int, sg.NumV)
	for s, ih := range sg.Shards {
		base := sg.Bounds[s]
		for lv, d := range ih.OutDegrees() {
			deg[base+lv] += d
		}
	}
	for u := 0; u < sg.NumV && u+1 < len(sg.XIndex); u++ {
		deg[u] += int(sg.XIndex[u+1] - sg.XIndex[u])
	}
	return deg
}
