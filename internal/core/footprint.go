package core

import "ihtl/internal/spmv"

// topologyStreamBytes returns the modelled topology bytes one scalar
// Step streams from memory, under the engine's encoding. Flat engines
// stream each block's CSR/CSC (8-byte index entries, 4-byte vertex
// IDs); varint engines stream the encoded chunks (data plus chunk
// tables) and, on the sparse side, the per-row byte offsets. The
// per-worker decode scratch is cache-resident by construction (that is
// what the chunk size bounds), so like the hub buffers' residency it
// contributes no memory traffic here. The propagation-blocked kernel
// runs from its own transposed arrays under either encoding.
func (e *Engine) topologyStreamBytes() int64 {
	ih := e.ih
	var total int64
	for b := range ih.Blocks {
		fb := &ih.Blocks[b]
		if e.varint {
			total += fb.Enc.EncodedBytes()
		} else {
			nsrc := int64(len(fb.Index) - 1)
			total += 8*(nsrc+1) + 4*fb.NumEdges()
		}
	}
	sp := &ih.Sparse
	n := int64(ih.NumV) - int64(sp.DestLo)
	if n <= 0 {
		return total
	}
	Es := sp.NumEdges()
	if e.sparseKernel == SparsePB {
		if e.pb != nil {
			total += 8*int64(len(e.pb.pushIndex)) + 4*Es // transposed CSR
		}
		return total
	}
	if e.varint {
		total += int64(len(sp.Enc.Data)) // gap streams (degree inline)
		total += 8 * n                   // per-row byte offsets
		if e.sparseKernel == SparsePullDegree {
			total += 8 * (n + 1) // degree checks of the light/heavy split
		}
	} else {
		total += 8*(n+1) + 4*Es
	}
	total += 4 * int64(len(sp.Heavy))
	return total
}

// BytesPerStep returns the modelled bytes one scalar Step touches: the
// topology stream under the engine's encoding, one vertex-data access
// per topology access, and the hub-buffer merge traffic per worker.
// The model matches spmv.Engine.BytesPerStep — flat topology index
// entries are 8 bytes, vertex IDs 4, vertex data spmv.VertexBytes — so
// the step report's bytes_per_edge column is comparable across
// baseline and iHTL kernels and across encodings.
func (e *Engine) BytesPerStep() int64 {
	ih := e.ih
	const vb = int64(spmv.VertexBytes)
	W := int64(e.nworkers)
	total := e.topologyStreamBytes()

	// Flipped blocks: one sequential src read per block source, one
	// buffered write per edge, and the countdown-gated merge (W buffer
	// reads + 1 dst write per hub of the block, plus the clears of the
	// dirtied buffer ranges).
	for b := range ih.Blocks {
		blk := &ih.Blocks[b]
		nsrc := int64(len(blk.Index) - 1)
		edges := blk.NumEdges()
		hubs := int64(ih.HubsPerBlock)
		if rem := int64(ih.NumHubs) - int64(b)*hubs; rem < hubs {
			hubs = rem
		}
		total += vb * nsrc             // sequential src reads
		total += vb * edges            // cache-resident buffer updates
		total += (2*W + 1) * vb * hubs // clear + merge reads + dst write
	}

	// Sparse block, by kernel.
	sp := &ih.Sparse
	n := int64(ih.NumV) - int64(sp.DestLo)
	if n <= 0 {
		return total
	}
	Es := sp.NumEdges()
	switch e.sparseKernel {
	case SparsePB:
		if e.pb == nil {
			return total
		}
		segs := int64(len(e.pb.binCur))
		total += vb * int64(ih.NumV) // sequential src sweep
		total += 2 * 12 * Es         // bin writes + drain reads
		total += 2 * 8 * segs        // cursor staging + reads
		total += 2 * vb * n          // dst clear + accumulate
	default:
		total += vb * Es // random src reads
		total += vb * n  // dst writes
	}
	return total
}

// TopologyBytesPerStep returns only the topology-stream half of
// BytesPerStep — the bytes the encoding actually changes. The
// flat-vs-varint ablation (ihtlbench -encjson) reports its
// bytes_per_edge from this: vertex-data traffic is identical under
// both encodings, so including it would dilute the compression ratio
// into an apples-to-oranges number.
func (e *Engine) TopologyBytesPerStep() int64 { return e.topologyStreamBytes() }

// ResidentTopologyBytes returns the bytes of topology the engine needs
// resident in memory to run: always the per-block index arrays (the
// schedulers read per-row edge counts under either encoding), plus the
// flat adjacency or the encoded chunks with the sparse row offsets,
// plus the degree buckets and the propagation-blocked kernel's
// transposed arrays when configured. Vertex data and hub buffers are
// excluded — they scale with NumV, not with the topology
// representation this measures.
func (e *Engine) ResidentTopologyBytes() int64 {
	ih := e.ih
	var total int64
	for b := range ih.Blocks {
		fb := &ih.Blocks[b]
		total += 8 * int64(len(fb.Index))
		if e.varint {
			total += fb.Enc.EncodedBytes()
		} else {
			total += 4 * fb.NumEdges()
		}
	}
	sp := &ih.Sparse
	total += 8 * int64(len(sp.Index))
	n := int64(ih.NumV) - int64(sp.DestLo)
	if n > 0 {
		if e.varint {
			total += sp.Enc.EncodedBytes()
			total += 8 * int64(len(e.sparseRowOff))
		} else {
			total += 4 * sp.NumEdges()
		}
	}
	total += 4 * int64(len(sp.Heavy))
	if e.pb != nil {
		total += 8 * int64(len(e.pb.pushIndex))
		total += 4 * int64(len(e.pb.pushRows))
		total += 12 * int64(len(e.pb.binRows)) // binRows + binVals
		total += 8 * int64(len(e.pb.binOff)+len(e.pb.binCur))
	}
	return total
}
