package core

import "ihtl/internal/spmv"

// BytesPerStep returns the modelled bytes one scalar Step touches: the
// flipped blocks' footprints (topology streams once, vertex-data
// accesses per access, hub-buffer merge traffic per worker) plus the
// configured sparse kernel's footprint. The model matches
// spmv.Engine.BytesPerStep — topology index entries are 8 bytes,
// vertex IDs 4, vertex data spmv.VertexBytes — so the step report's
// bytes_per_edge column is comparable across baseline and iHTL
// kernels.
func (e *Engine) BytesPerStep() int64 {
	ih := e.ih
	const vb = int64(spmv.VertexBytes)
	W := int64(e.pool.Workers())
	var total int64

	// Flipped blocks: per block, the sub-CSR stream, one sequential
	// src read per block source, one buffered write per edge, and the
	// countdown-gated merge (W buffer reads + 1 dst write per hub of
	// the block, plus the clears of the dirtied buffer ranges).
	for b := range ih.Blocks {
		blk := &ih.Blocks[b]
		nsrc := int64(len(blk.Index) - 1)
		edges := blk.NumEdges()
		hubs := int64(ih.HubsPerBlock)
		if rem := int64(ih.NumHubs) - int64(b)*hubs; rem < hubs {
			hubs = rem
		}
		total += 8*(nsrc+1) + 4*edges  // block CSR
		total += vb * nsrc             // sequential src reads
		total += vb * edges            // cache-resident buffer updates
		total += (2*W + 1) * vb * hubs // clear + merge reads + dst write
	}

	// Sparse block, by kernel.
	sp := &ih.Sparse
	n := int64(ih.NumV) - int64(sp.DestLo)
	if n <= 0 {
		return total
	}
	Es := sp.NumEdges()
	switch e.sparseKernel {
	case SparsePB:
		if e.pb == nil {
			return total
		}
		segs := int64(len(e.pb.binCur))
		total += 8*int64(len(e.pb.pushIndex)) + 4*Es // transposed CSR
		total += vb * int64(ih.NumV)                 // sequential src sweep
		total += 2 * 12 * Es                         // bin writes + drain reads
		total += 2 * 8 * segs                        // cursor staging + reads
		total += 2 * vb * n                          // dst clear + accumulate
	default:
		// Uniform and degree-aware pull share the same traffic; the
		// heavy list adds 4 bytes per heavy row.
		total += 8*(n+1) + 4*Es // sparse CSC
		total += vb * Es        // random src reads
		total += vb * n         // dst writes
		total += 4 * int64(len(sp.Heavy))
	}
	return total
}
