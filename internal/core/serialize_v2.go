package core

// Version-2 engine-file format: the compressed blocks of encoding.go
// stored in section-aligned segments so a serialised engine can be
// mapped straight into the address space and paged in lazily.
//
// Layout (all integers little-endian, every section start padded to a
// 64-byte boundary):
//
//	header   magic u64, version u32 = 2, numV u32, numE u64,
//	         numHubs u32, numVWEH u32, numFV u32, hubsPerBlock u32,
//	         minHubDeg u32, numBlocks u32, destLo u32, pad → 64 B
//	newid    [numV]u32 raw
//	oldid    [numV]u32 raw
//	per flipped block:
//	  meta     hubLo u32, hubHi u32, sources u32, pad u32, lenIdx u64
//	  index    [lenIdx]i64 raw
//	  chunked  adjacency (below)
//	sparse:
//	  meta     lenIdx u64
//	  index    [lenIdx]i64 raw
//	  chunked  adjacency (below)
//
// A chunked adjacency segment is the on-disk form of compress.Chunked:
//
//	meta     numSrc u64, numEdges u64, maxSrcs u64, maxEdges u64,
//	         nOff u64, lenData u64
//	srcoff   [nOff]i32 raw
//	byteoff  [nOff]i64 raw
//	data     [lenData]u8 — the varint gap streams
//
// Only the Index arrays and the chunked segments are stored: the flat
// Dsts/Srcs adjacency is redundant (EnsureFlatTopology re-materialises
// it on demand), and the degree buckets are derived (EnsureDegreeBuckets
// reads only Index). On little-endian hosts every raw array section is
// aliased in place — opening a file allocates O(blocks) metadata, not
// O(edges); on big-endian or misaligned mappings the sections are
// copied element-wise, which keeps the format portable at the cost of
// residency.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"unsafe"

	"ihtl/internal/atomicio"
	"ihtl/internal/compress"
)

const ihtlVersion2 = uint32(2)

// hostLittle reports whether this host is little-endian; when true the
// raw sections of a v2 file alias directly into the mapping.
var hostLittle = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// WriteToV2 serialises ih in the version-2 chunked-varint format,
// building the encoded form first if only the flat one is resident.
func (ih *IHTL) WriteToV2(w io.Writer) (int64, error) {
	ih.EnsureEncoded()
	vw := &v2writer{w: bufio.NewWriterSize(w, 1<<20)}
	vw.u64(ihtlMagic)
	vw.u32(ihtlVersion2)
	vw.u32(uint32(ih.NumV))
	vw.u64(uint64(ih.NumE))
	vw.u32(uint32(ih.NumHubs))
	vw.u32(uint32(ih.NumVWEH))
	vw.u32(uint32(ih.NumFV))
	vw.u32(uint32(ih.HubsPerBlock))
	vw.u32(uint32(ih.MinHubDegree))
	vw.u32(uint32(len(ih.Blocks)))
	vw.u32(uint32(ih.Sparse.DestLo))
	vw.pad64()
	vw.rawU32(ih.NewID)
	vw.pad64()
	vw.rawU32(ih.OldID)
	vw.pad64()
	for i := range ih.Blocks {
		fb := &ih.Blocks[i]
		vw.u32(uint32(fb.HubLo))
		vw.u32(uint32(fb.HubHi))
		vw.u32(uint32(fb.Sources))
		vw.u32(0)
		vw.u64(uint64(len(fb.Index)))
		vw.pad64()
		vw.rawI64(fb.Index)
		vw.pad64()
		vw.chunked(fb.Enc)
	}
	vw.u64(uint64(len(ih.Sparse.Index)))
	vw.pad64()
	vw.rawI64(ih.Sparse.Index)
	vw.pad64()
	vw.chunked(ih.Sparse.Enc)
	if vw.err == nil {
		vw.err = vw.w.Flush()
	}
	return vw.n, vw.err
}

// SaveFileV2 writes ih to path in the version-2 format, atomically
// replacing any existing file.
func (ih *IHTL) SaveFileV2(path string) error {
	return atomicio.WriteFile(path, func(w io.Writer) error {
		_, err := ih.WriteToV2(w)
		return err
	})
}

// v2writer counts bytes so sections can be padded to 64-byte starts.
type v2writer struct {
	w   *bufio.Writer
	n   int64
	err error
	buf [8]byte
}

func (vw *v2writer) write(p []byte) {
	if vw.err != nil {
		return
	}
	m, err := vw.w.Write(p)
	vw.n += int64(m)
	vw.err = err
}

func (vw *v2writer) u32(v uint32) {
	binary.LittleEndian.PutUint32(vw.buf[:4], v)
	vw.write(vw.buf[:4])
}

func (vw *v2writer) u64(v uint64) {
	binary.LittleEndian.PutUint64(vw.buf[:8], v)
	vw.write(vw.buf[:8])
}

func (vw *v2writer) pad64() {
	var zero [64]byte
	if rem := vw.n % 64; rem != 0 {
		vw.write(zero[:64-rem])
	}
}

// The raw-array writers stream through a fixed chunk buffer rather
// than binary.Write, whose slice path buffers the whole array.
func (vw *v2writer) rawU32(a []uint32) {
	var chunk [1 << 14]byte
	for len(a) > 0 && vw.err == nil {
		n := len(chunk) / 4
		if n > len(a) {
			n = len(a)
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(chunk[i*4:], a[i])
		}
		vw.write(chunk[: n*4 : n*4])
		a = a[n:]
	}
}

func (vw *v2writer) rawI32(a []int32) {
	var chunk [1 << 14]byte
	for len(a) > 0 && vw.err == nil {
		n := len(chunk) / 4
		if n > len(a) {
			n = len(a)
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(chunk[i*4:], uint32(a[i]))
		}
		vw.write(chunk[: n*4 : n*4])
		a = a[n:]
	}
}

func (vw *v2writer) rawI64(a []int64) {
	var chunk [1 << 14]byte
	for len(a) > 0 && vw.err == nil {
		n := len(chunk) / 8
		if n > len(a) {
			n = len(a)
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(chunk[i*8:], uint64(a[i]))
		}
		vw.write(chunk[: n*8 : n*8])
		a = a[n:]
	}
}

// chunked writes one chunked adjacency segment; a nil Chunked (empty
// sparse block) becomes an all-zero meta with no array bytes.
func (vw *v2writer) chunked(ck *compress.Chunked) {
	if ck == nil {
		for i := 0; i < 6; i++ {
			vw.u64(0)
		}
		vw.pad64()
		return
	}
	vw.u64(uint64(ck.NumSrc))
	vw.u64(uint64(ck.NumEdges))
	vw.u64(uint64(ck.MaxSrcs))
	vw.u64(uint64(ck.MaxEdges))
	vw.u64(uint64(len(ck.SrcOff)))
	vw.u64(uint64(len(ck.Data)))
	vw.pad64()
	vw.rawI32(ck.SrcOff)
	vw.pad64()
	vw.rawI64(ck.ByteOff)
	vw.pad64()
	vw.write(ck.Data)
	vw.pad64()
}

// EngineFile is an engine graph opened from disk. Version-2 files stay
// backed by their (typically memory-mapped) byte range: the IHTL's
// Index arrays and chunked adjacency alias the mapping and page in on
// first touch. Version-1 files are decoded into resident memory, so
// old files keep working everywhere.
type EngineFile struct {
	ih     *IHTL
	sg     *ShardedIHTL
	data   []byte
	mapped bool
}

// IHTL returns the opened graph — nil for a sharded (v3) file, whose
// graph is returned by Sharded instead. For a mapped file it stays
// valid only until Close.
func (ef *EngineFile) IHTL() *IHTL { return ef.ih }

// Sharded returns the opened sharded graph of a version-3 file, or nil
// for single-graph files. Every shard's topology aliases the shared
// mapping, so per-shard sections page in on first touch like a v2
// file's.
func (ef *EngineFile) Sharded() *ShardedIHTL { return ef.sg }

// Mapped reports whether the topology is memory-mapped (true only for
// v2 files on platforms where the mmap succeeded).
func (ef *EngineFile) Mapped() bool { return ef.mapped }

// Close releases the mapping. The IHTL and any engines built over it
// must not be used afterwards.
func (ef *EngineFile) Close() error {
	data, mapped := ef.data, ef.mapped
	ef.ih, ef.sg, ef.data, ef.mapped = nil, nil, nil, false
	if mapped {
		return unmapFile(data)
	}
	return nil
}

// OpenEngineFile opens a serialised engine graph of either version.
// Version-2 files are memory-mapped read-only where the platform
// allows (with a read-into-memory fallback), validated, and exposed
// encoded-only — NewEngine's auto encoding then runs varint over the
// mapping without materialising the flat adjacency. Version-1 files
// fall back to the resident ReadIHTL decoder.
func OpenEngineFile(path string) (*EngineFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var hdr [12]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, fmt.Errorf("core: reading %s header: %w", path, err)
	}
	if magic := binary.LittleEndian.Uint64(hdr[:8]); magic != ihtlMagic {
		return nil, fmt.Errorf("core: %s: bad magic %#x", path, magic)
	}
	switch version := binary.LittleEndian.Uint32(hdr[8:12]); version {
	case ihtlVersion:
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return nil, err
		}
		ih, err := ReadIHTL(f)
		if err != nil {
			return nil, err
		}
		return &EngineFile{ih: ih}, nil
	case ihtlVersion2:
		st, err := f.Stat()
		if err != nil {
			return nil, err
		}
		data, mapped, err := mapFile(f, st.Size())
		if err != nil {
			return nil, err
		}
		ih, err := parseV2(data)
		if err != nil {
			if mapped {
				unmapFile(data)
			}
			return nil, fmt.Errorf("core: %s: %w", path, err)
		}
		return &EngineFile{ih: ih, data: data, mapped: mapped}, nil
	case ihtlVersion3:
		st, err := f.Stat()
		if err != nil {
			return nil, err
		}
		data, mapped, err := mapFile(f, st.Size())
		if err != nil {
			return nil, err
		}
		sg, err := parseV3(data)
		if err != nil {
			if mapped {
				unmapFile(data)
			}
			return nil, fmt.Errorf("core: %s: %w", path, err)
		}
		return &EngineFile{sg: sg, data: data, mapped: mapped}, nil
	default:
		return nil, fmt.Errorf("core: %s: unsupported version %d", path, version)
	}
}

// readV2Resident lets the stream-based ReadIHTL (and so LoadFile)
// accept version-2 files: the remainder of the stream — the 12-byte
// magic/version prefix was already consumed — is read into an aligned
// buffer, re-prefixed, and parsed resident.
func readV2Resident(r io.Reader) (*IHTL, error) {
	rest, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	size := int64(12 + len(rest))
	words := make([]int64, (size+7)/8)
	buf := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), size)
	binary.LittleEndian.PutUint64(buf[:8], ihtlMagic)
	binary.LittleEndian.PutUint32(buf[8:12], ihtlVersion2)
	copy(buf[12:], rest)
	return parseV2(buf)
}

// readFileAligned reads the whole file into an 8-byte-aligned buffer —
// the portable fallback when mapping is unavailable. Backing the bytes
// with an []int64 guarantees the alignment the aliasing fast path
// needs.
func readFileAligned(f *os.File, size int64) ([]byte, bool, error) {
	if size == 0 {
		return nil, false, nil
	}
	if int64(int(size)) != size {
		return nil, false, fmt.Errorf("core: file too large (%d bytes)", size)
	}
	words := make([]int64, (size+7)/8)
	buf := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), size)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, size), buf); err != nil {
		return nil, false, err
	}
	return buf, false, nil
}

// v2cursor walks a v2 byte range with checked reads and 64-byte
// section alignment.
type v2cursor struct {
	data []byte
	off  int64
}

func (c *v2cursor) need(n int64) error {
	if n < 0 || n > int64(len(c.data))-c.off {
		return fmt.Errorf("core: v2 file truncated at offset %d (need %d of %d bytes)", c.off, n, len(c.data))
	}
	return nil
}

func (c *v2cursor) align64() { c.off = (c.off + 63) &^ 63 }

func (c *v2cursor) u32() (uint32, error) {
	if err := c.need(4); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint32(c.data[c.off:])
	c.off += 4
	return v, nil
}

func (c *v2cursor) u64() (uint64, error) {
	if err := c.need(8); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint64(c.data[c.off:])
	c.off += 8
	return v, nil
}

func (c *v2cursor) bytes(n int64) ([]byte, error) {
	if err := c.need(n); err != nil {
		return nil, err
	}
	b := c.data[c.off : c.off+n : c.off+n]
	c.off += n
	return b, nil
}

// aliasU32 returns n little-endian uint32s starting at the cursor —
// zero-copy on aligned little-endian hosts, copied otherwise.
func (c *v2cursor) aliasU32(n int) ([]uint32, error) {
	b, err := c.bytes(int64(n) * 4)
	if err != nil || n == 0 {
		return nil, err
	}
	if hostLittle && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[i*4:])
	}
	return out, nil
}

func (c *v2cursor) aliasI32(n int) ([]int32, error) {
	b, err := c.bytes(int64(n) * 4)
	if err != nil || n == 0 {
		return nil, err
	}
	if hostLittle && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out, nil
}

func (c *v2cursor) aliasI64(n int) ([]int64, error) {
	b, err := c.bytes(int64(n) * 8)
	if err != nil || n == 0 {
		return nil, err
	}
	if hostLittle && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out, nil
}

// chunked parses one chunked adjacency segment and gates it behind
// compress.Chunked.Validate before anything downstream trusts the
// unchecked decoder on it. wantSrc/wantEdges pin the segment to the
// block's Index array.
func (c *v2cursor) chunked(label string, maxDst uint32, wantSrc int, wantEdges int64) (*compress.Chunked, error) {
	var m [6]uint64
	for i := range m {
		v, err := c.u64()
		if err != nil {
			return nil, err
		}
		m[i] = v
	}
	numSrc, numEdges, maxSrcs, maxEdges, nOff, lenData := m[0], m[1], m[2], m[3], m[4], m[5]
	c.align64()
	if numSrc == 0 && nOff == 0 && lenData == 0 {
		if wantEdges != 0 {
			return nil, fmt.Errorf("core: %s: empty segment for %d edges", label, wantEdges)
		}
		return nil, nil
	}
	const maxN = uint64(1) << 40
	if numSrc > maxN || numEdges > maxN || nOff > numSrc+1 || lenData > uint64(len(c.data)) ||
		maxSrcs > numSrc || maxEdges > numEdges {
		return nil, fmt.Errorf("core: %s: implausible chunked meta", label)
	}
	if int64(numSrc) != int64(wantSrc) || int64(numEdges) != wantEdges {
		return nil, fmt.Errorf("core: %s: segment covers %d rows / %d edges, index says %d / %d",
			label, numSrc, numEdges, wantSrc, wantEdges)
	}
	srcOff, err := c.aliasI32(int(nOff))
	if err != nil {
		return nil, err
	}
	c.align64()
	byteOff, err := c.aliasI64(int(nOff))
	if err != nil {
		return nil, err
	}
	c.align64()
	data, err := c.bytes(int64(lenData))
	if err != nil {
		return nil, err
	}
	c.align64()
	ck := &compress.Chunked{
		NumSrc:   int(numSrc),
		NumEdges: int64(numEdges),
		MaxSrcs:  int(maxSrcs),
		MaxEdges: int(maxEdges),
		SrcOff:   srcOff,
		ByteOff:  byteOff,
		Data:     data,
	}
	if err := ck.Validate(maxDst); err != nil {
		return nil, fmt.Errorf("core: %s: %w", label, err)
	}
	return ck, nil
}

// parseV2 decodes (mostly: aliases) a version-2 byte range into an
// encoded-only IHTL, re-running the structural checks of the v1 reader
// plus the chunked-stream validation.
//
//ihtl:nopanic
func parseV2(data []byte) (*IHTL, error) {
	c := &v2cursor{data: data}
	magic, err := c.u64()
	if err != nil {
		return nil, err
	}
	if magic != ihtlMagic {
		return nil, fmt.Errorf("core: bad magic %#x", magic)
	}
	version, err := c.u32()
	if err != nil {
		return nil, err
	}
	if version != ihtlVersion2 {
		return nil, fmt.Errorf("core: unsupported version %d", version)
	}
	var numV, numHubs, numVWEH, numFV, hubsPerBlock, minHubDeg, numBlocks, destLo uint32
	var numE uint64
	for _, read := range []func() error{
		func() error { numV, err = c.u32(); return err },
		func() error { numE, err = c.u64(); return err },
		func() error { numHubs, err = c.u32(); return err },
		func() error { numVWEH, err = c.u32(); return err },
		func() error { numFV, err = c.u32(); return err },
		func() error { hubsPerBlock, err = c.u32(); return err },
		func() error { minHubDeg, err = c.u32(); return err },
		func() error { numBlocks, err = c.u32(); return err },
		func() error { destLo, err = c.u32(); return err },
	} {
		if err := read(); err != nil {
			return nil, err
		}
	}
	if numE > 1<<40 || numBlocks > 1<<20 {
		return nil, fmt.Errorf("core: implausible header (E=%d, blocks=%d)", numE, numBlocks)
	}
	if uint64(numHubs)+uint64(numVWEH)+uint64(numFV) != uint64(numV) {
		return nil, fmt.Errorf("core: class sizes %d+%d+%d != %d", numHubs, numVWEH, numFV, numV)
	}
	ih := &IHTL{
		NumV: int(numV), NumE: int64(numE),
		NumHubs: int(numHubs), NumVWEH: int(numVWEH), NumFV: int(numFV),
		HubsPerBlock: int(hubsPerBlock), MinHubDegree: int(minHubDeg),
	}
	c.align64()
	var newID, oldID []uint32
	if newID, err = c.aliasU32(int(numV)); err != nil {
		return nil, err
	}
	c.align64()
	if oldID, err = c.aliasU32(int(numV)); err != nil {
		return nil, err
	}
	c.align64()
	ih.NewID, ih.OldID = newID, oldID
	for v, nv := range ih.NewID {
		if int(nv) >= ih.NumV || int(ih.OldID[nv]) != v {
			return nil, fmt.Errorf("core: corrupt relabeling arrays at %d", v)
		}
	}
	ih.Blocks = make([]FlippedBlock, numBlocks)
	var total int64
	for i := range ih.Blocks {
		fb := &ih.Blocks[i]
		var hubLo, hubHi, sources uint32
		for _, p := range []*uint32{&hubLo, &hubHi, &sources} {
			if *p, err = c.u32(); err != nil {
				return nil, err
			}
		}
		if _, err = c.u32(); err != nil { // pad
			return nil, err
		}
		lenIdx, err := c.u64()
		if err != nil {
			return nil, err
		}
		if lenIdx > uint64(numV)+1 {
			return nil, fmt.Errorf("core: implausible block %d index size", i)
		}
		fb.HubLo, fb.HubHi, fb.Sources = int(hubLo), int(hubHi), int(sources)
		if fb.HubLo > fb.HubHi || fb.HubHi > ih.NumHubs {
			return nil, fmt.Errorf("core: block %d hub range [%d,%d) invalid", i, fb.HubLo, fb.HubHi)
		}
		c.align64()
		if fb.Index, err = c.aliasI64(int(lenIdx)); err != nil {
			return nil, err
		}
		c.align64()
		edges := fb.NumEdges()
		if edges < 0 || edges > int64(numE) {
			return nil, fmt.Errorf("core: block %d edge count %d invalid", i, edges)
		}
		nsrc := len(fb.Index) - 1
		if nsrc < 0 {
			nsrc = 0
		}
		if fb.Enc, err = c.chunked(fmt.Sprintf("block %d", i), hubHi, nsrc, edges); err != nil {
			return nil, err
		}
		total += edges
	}
	lenIdx, err := c.u64()
	if err != nil {
		return nil, err
	}
	if lenIdx > uint64(numV)+1 {
		return nil, fmt.Errorf("core: implausible sparse index size")
	}
	ih.Sparse.DestLo = int(destLo)
	c.align64()
	if ih.Sparse.Index, err = c.aliasI64(int(lenIdx)); err != nil {
		return nil, err
	}
	c.align64()
	sEdges := ih.Sparse.NumEdges()
	if sEdges < 0 || sEdges > int64(numE) {
		return nil, fmt.Errorf("core: sparse edge count %d invalid", sEdges)
	}
	nsrc := len(ih.Sparse.Index) - 1
	if nsrc < 0 {
		nsrc = 0
	}
	if ih.Sparse.Enc, err = c.chunked("sparse block", numV, nsrc, sEdges); err != nil {
		return nil, err
	}
	total += sEdges
	if total != ih.NumE {
		return nil, fmt.Errorf("core: blocks cover %d edges, header says %d", total, ih.NumE)
	}
	// The writer pads every section — including the last — to a
	// 64-byte boundary, so exactly one final alignment must land on the
	// end of the range. Anything else is truncation or trailing junk.
	c.align64()
	if c.off != int64(len(data)) {
		return nil, fmt.Errorf("core: v2 size mismatch (%d bytes parsed, %d in file)", c.off, len(data))
	}
	ih.params = Params{HubsPerBlock: ih.HubsPerBlock}.withDefaults()
	return ih, nil
}
