package core

import "time"

// BuildBreakdown reports where preprocessing time went in one
// Build/BuildWith call, mirroring the Step Breakdown: per-phase wall
// time plus the summed per-worker busy time of the parallel phases.
// Busy fields are zero for sequential builds (nil pool or one worker).
// Wall exceeding busy/workers indicates dispatch overhead or a sequential
// residue (hub selection is inherently sequential and has no busy
// counterpart).
type BuildBreakdown struct {
	// Rank is the hub-ranking phase (parallel counting sort on
	// in-degree).
	Rank time.Duration
	// Select is the §3.3 flipped-block admission scan (sequential).
	Select time.Duration
	// Relabel covers vertex classification (hub/VWEH/FV) and the
	// NewID/OldID assignment.
	Relabel time.Duration
	// Blocks covers flipped-block and sparse-block construction.
	Blocks time.Duration
	// Wall is the total Build wall time including validation and the
	// final invariant check.
	Wall time.Duration

	// RankBusy, RelabelBusy and BlocksBusy are the per-phase busy
	// times summed over all workers.
	RankBusy, RelabelBusy, BlocksBusy time.Duration
}

// buildClock accumulates one worker's busy time per build phase.
// Padded so two workers' clocks never share a cache line (3 × 8-byte
// durations + 40 bytes = 64).
type buildClock struct {
	rank, relabel, blocks time.Duration
	_                     [5]int64
}

// BuildStats reports the phase breakdown of the Build/BuildWith call
// that created ih. The breakdown is not serialized; graphs loaded
// from disk report zero.
func (ih *IHTL) BuildStats() BuildBreakdown { return ih.buildStats }
