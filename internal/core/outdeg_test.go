package core

import (
	"path/filepath"
	"testing"

	"ihtl/internal/gen"
	"ihtl/internal/graph"
)

// TestOutDegreesMatchesGraph pins OutDegrees against the original
// graph's out-degrees through the relabeling, for the flat topology,
// the encoded-only (varint) form, and a graph round-tripped through a
// v2 engine file (the serving daemon's load path).
func TestOutDegreesMatchesGraph(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(9, 8, 7))
	if err != nil {
		t.Fatal(err)
	}
	ih, err := Build(g, Params{HubsPerBlock: 64})
	if err != nil {
		t.Fatal(err)
	}

	check := func(t *testing.T, deg []int) {
		t.Helper()
		if len(deg) != g.NumV {
			t.Fatalf("OutDegrees length %d, want %d", len(deg), g.NumV)
		}
		for v := 0; v < g.NumV; v++ {
			nv := ih.NewID[v]
			if want := g.OutDegree(graph.VID(v)); deg[nv] != want {
				t.Fatalf("vertex %d (new %d): out-degree %d, want %d", v, nv, deg[nv], want)
			}
		}
	}

	t.Run("flat", func(t *testing.T) { check(t, ih.OutDegrees()) })

	t.Run("varint-only", func(t *testing.T) {
		ih.EnsureEncoded()
		ih.DropFlatTopology()
		if !ih.EncodedOnly() {
			t.Fatal("DropFlatTopology left flat topology resident")
		}
		check(t, ih.OutDegrees())
	})

	t.Run("v2-engine-file", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "g.ihtl2")
		if err := ih.SaveFileV2(path); err != nil {
			t.Fatal(err)
		}
		ef, err := OpenEngineFile(path)
		if err != nil {
			t.Fatal(err)
		}
		defer ef.Close()
		check(t, ef.IHTL().OutDegrees())
	})
}

// TestShardedOutDegreesMatchesGraph pins the sharded variant: shard
// topologies plus the exchange CSR must cover every edge exactly once.
func TestShardedOutDegreesMatchesGraph(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(9, 8, 11))
	if err != nil {
		t.Fatal(err)
	}
	for _, nshards := range []int{2, 3} {
		sg, err := BuildSharded(g, Params{HubsPerBlock: 64}, nil, nshards)
		if err != nil {
			t.Fatal(err)
		}
		deg := sg.OutDegrees()
		for v := 0; v < g.NumV; v++ {
			nv := sg.NewID[v]
			if want := g.OutDegree(graph.VID(v)); deg[nv] != want {
				t.Fatalf("shards=%d vertex %d (global %d): out-degree %d, want %d",
					nshards, v, nv, deg[nv], want)
			}
		}
	}
}
