package core

// K-wide (StepBatch) variants of the sparse kernels in sparse.go. The
// schedule state is shared with the scalar path — same chunk bounds,
// same segment offsets and cursors, same heavy/light parts — only the
// contributions are K lanes wide: bin slot p's lanes live at
// batchState.binVals[p*k : (p+1)*k], mirroring the vertex-major
// interleave of the vectors themselves. The determinism argument of
// sparse.go applies per lane unchanged.

import (
	"time"

	"ihtl/internal/faultinject"
	"ihtl/internal/spmv"
)

// sparseWorkerBatch is sparseWorker with K-wide lanes: it runs worker
// w's share of the configured sparse kernel and records the same
// per-phase clocks.
//
//ihtl:noalloc
func (e *Engine) sparseWorkerBatch(b *batchState, w int, src, dst []float64) {
	clk := &e.clocks[w]
	switch e.sparseKernel {
	case SparsePullDegree:
		t0 := time.Now()
		e.sparseHeavyWorkerBatch(b, w, src, dst)
		e.sparseLightWorkerBatch(b, w, src, dst)
		clk.sparse += time.Since(t0)
	case SparsePB:
		if e.pb == nil {
			return
		}
		t0 := time.Now()
		e.pbBinWorkerBatch(b, w, src)
		t1 := time.Now()
		clk.bin += t1.Sub(t0)
		if !e.binBarrier.WaitAbort(e.pool) {
			return
		}
		t2 := time.Now()
		e.pbDrainWorkerBatch(b, w, dst)
		clk.drain += time.Since(t2)
	default:
		t0 := time.Now()
		e.sparsePullWorkerBatch(b, w, src, dst)
		clk.sparse += time.Since(t0)
	}
}

// sparsePullWorkerBatch drains the baseline K-wide pull with partial
// sums accumulated in place in dst's contiguous lane rows, which each
// destination owns exclusively.
//
//ihtl:noalloc
func (e *Engine) sparsePullWorkerBatch(b *batchState, w int, src, dst []float64) {
	nparts := len(e.sparseBounds) - 1
	if nparts <= 0 {
		return
	}
	for !e.pool.Aborted() {
		lo, hi, ok := e.sparseSched.Next(w, 1)
		if !ok {
			return
		}
		faultinject.Fire(faultinject.SiteSparsePart)
		for p := lo; p < hi; p++ {
			e.sparsePullRangeBatch(b.k, e.sparseBounds[p], e.sparseBounds[p+1], src, dst)
		}
	}
}

// sparsePullRangeBatch pulls rows [lo, hi) K lanes wide: the shared
// inner loop of the uniform and degree-aware batched pull schedules.
//
//ihtl:noalloc
func (e *Engine) sparsePullRangeBatch(k, lo, hi int, src, dst []float64) {
	sp := &e.ih.Sparse
	for i := lo; i < hi; i++ {
		db := (sp.DestLo + i) * k
		out := dst[db : db+k : db+k]
		for j := range out {
			out[j] = 0
		}
		if e.varint {
			e.sparseRowAccEnc(i, k, src, out)
			continue
		}
		for jj := sp.Index[i]; jj < sp.Index[i+1]; jj++ {
			sb := int(sp.Srcs[jj]) * k
			xs := src[sb : sb+k : sb+k]
			for j, x := range xs {
				out[j] += x
			}
		}
	}
}

// sparseHeavyWorkerBatch claims heavy-list parts like its scalar
// counterpart; rows stay whole per worker.
//
//ihtl:noalloc
func (e *Engine) sparseHeavyWorkerBatch(b *batchState, w int, src, dst []float64) {
	nparts := len(e.heavyBounds) - 1
	if nparts <= 0 {
		return
	}
	for !e.pool.Aborted() {
		lo, hi, ok := e.auxSched.Next(w, 1)
		if !ok {
			return
		}
		faultinject.Fire(faultinject.SiteSparsePart)
		for p := lo; p < hi; p++ {
			e.sparseHeavyPartBatch(b.k, p, src, dst)
		}
	}
}

//ihtl:noalloc
func (e *Engine) sparseHeavyPartBatch(k, p int, src, dst []float64) {
	sp := &e.ih.Sparse
	for _, row := range sp.Heavy[e.heavyBounds[p]:e.heavyBounds[p+1]] {
		i := int(row)
		db := (sp.DestLo + i) * k
		out := dst[db : db+k : db+k]
		for j := range out {
			out[j] = 0
		}
		if e.varint {
			e.sparseRowAccEnc(i, k, src, out)
			continue
		}
		for jj := sp.Index[i]; jj < sp.Index[i+1]; jj++ {
			sb := int(sp.Srcs[jj]) * k
			xs := src[sb : sb+k : sb+k]
			for j, x := range xs {
				out[j] += x
			}
		}
	}
}

// sparseLightWorkerBatch pulls the short rows in coarse chunks.
//
//ihtl:noalloc
func (e *Engine) sparseLightWorkerBatch(b *batchState, w int, src, dst []float64) {
	nparts := len(e.lightBounds) - 1
	if nparts <= 0 {
		return
	}
	for !e.pool.Aborted() {
		lo, hi, ok := e.sparseSched.Next(w, 1)
		if !ok {
			return
		}
		faultinject.Fire(faultinject.SiteSparsePart)
		for p := lo; p < hi; p++ {
			e.sparseLightPartBatch(b.k, p, src, dst)
		}
	}
}

//ihtl:noalloc
func (e *Engine) sparseLightPartBatch(k, p int, src, dst []float64) {
	sp := &e.ih.Sparse
	heavy := sp.HeavyDeg
	for i := e.lightBounds[p]; i < e.lightBounds[p+1]; i++ {
		if sp.Index[i+1]-sp.Index[i] >= heavy {
			continue
		}
		db := (sp.DestLo + i) * k
		out := dst[db : db+k : db+k]
		for j := range out {
			out[j] = 0
		}
		if e.varint {
			e.sparseRowAccEnc(i, k, src, out)
			continue
		}
		for jj := sp.Index[i]; jj < sp.Index[i+1]; jj++ {
			sb := int(sp.Srcs[jj]) * k
			xs := src[sb : sb+k : sb+k]
			for j, x := range xs {
				out[j] += x
			}
		}
	}
}

// pbBinWorkerBatch claims source chunks for the K-wide bin phase.
//
//ihtl:noalloc
func (e *Engine) pbBinWorkerBatch(b *batchState, w int, src []float64) {
	for !e.pool.Aborted() {
		lo, hi, ok := e.sparseSched.Next(w, 1)
		if !ok {
			return
		}
		faultinject.Fire(faultinject.SiteSparseBin)
		for c := lo; c < hi; c++ {
			e.pbBinChunkBatch(b, c, src)
		}
	}
}

// pbBinChunkBatch is pbBinChunk with K lanes copied per appended slot.
// SkipZeroLanes skips a source only when ALL lanes are +0.0, which is
// bit-transparent per lane by the sparse.go argument.
//
//ihtl:noalloc
func (e *Engine) pbBinChunkBatch(bs *batchState, c int, src []float64) {
	pb := e.pb
	k := bs.k
	C := pb.numChunks
	for b := 0; b < pb.numBuckets; b++ {
		pb.binCur[b*C+c] = pb.binOff[b*C+c]
	}
	shift := pb.shift
	for s := pb.chunkBounds[c]; s < pb.chunkBounds[c+1]; s++ {
		sb := s * k
		xs := src[sb : sb+k : sb+k]
		if spmv.SkipZeroLanes(xs) {
			continue
		}
		for i := pb.pushIndex[s]; i < pb.pushIndex[s+1]; i++ {
			row := pb.pushRows[i]
			seg := int(row>>shift)*C + c
			p := pb.binCur[seg]
			pb.binRows[p] = row
			vb := p * int64(k)
			copy(bs.binVals[vb:vb+int64(k)], xs)
			pb.binCur[seg] = p + 1
		}
	}
}

// pbDrainWorkerBatch claims whole destination buckets for the K-wide
// drain phase.
//
//ihtl:noalloc
func (e *Engine) pbDrainWorkerBatch(b *batchState, w int, dst []float64) {
	for !e.pool.Aborted() {
		lo, hi, ok := e.auxSched.Next(w, 1)
		if !ok {
			return
		}
		faultinject.Fire(faultinject.SiteSparseDrain)
		for bkt := lo; bkt < hi; bkt++ {
			e.pbDrainBucketBatch(b, bkt, dst)
		}
	}
}

// pbDrainBucketBatch is pbDrainBucket with K-wide accumulation.
//
//ihtl:noalloc
func (e *Engine) pbDrainBucketBatch(bs *batchState, b int, dst []float64) {
	pb := e.pb
	sp := &e.ih.Sparse
	k := bs.k
	n := e.ih.NumV - sp.DestLo
	rowLo := b << pb.shift
	rowHi := rowLo + (1 << pb.shift)
	if rowHi > n {
		rowHi = n
	}
	base := sp.DestLo
	clear(dst[(base+rowLo)*k : (base+rowHi)*k])
	C := pb.numChunks
	for c := 0; c < C; c++ {
		seg := b*C + c
		for p := pb.binOff[seg]; p < pb.binCur[seg]; p++ {
			db := (base + int(pb.binRows[p])) * k
			out := dst[db : db+k : db+k]
			vb := p * int64(k)
			xs := bs.binVals[vb : vb+int64(k) : vb+int64(k)]
			for j, x := range xs {
				out[j] += x
			}
		}
	}
}
