package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"ihtl/internal/gen"
)

func buildV2TestGraph(t *testing.T) *IHTL {
	t.Helper()
	g, err := gen.RMAT(gen.DefaultRMAT(10, 8, 77))
	if err != nil {
		t.Fatal(err)
	}
	ih, err := Build(g, Params{HubsPerBlock: 32})
	if err != nil {
		t.Fatal(err)
	}
	return ih
}

// TestV2RoundTripBitForBit pins the v2-decoded blocks bit-for-bit
// against their v1 (flat in-memory) source: header, relabeling, index
// arrays, and the materialised adjacency.
func TestV2RoundTripBitForBit(t *testing.T) {
	ih := buildV2TestGraph(t)
	path := filepath.Join(t.TempDir(), "g.ihtl2")
	if err := ih.SaveFileV2(path); err != nil {
		t.Fatal(err)
	}
	ef, err := OpenEngineFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ef.Close()
	got := ef.IHTL()
	if !got.EncodedOnly() {
		t.Fatal("v2 open materialised the flat topology eagerly")
	}
	if got.NumV != ih.NumV || got.NumE != ih.NumE || got.NumHubs != ih.NumHubs ||
		got.NumVWEH != ih.NumVWEH || got.NumFV != ih.NumFV ||
		got.HubsPerBlock != ih.HubsPerBlock || got.MinHubDegree != ih.MinHubDegree ||
		got.Sparse.DestLo != ih.Sparse.DestLo || len(got.Blocks) != len(ih.Blocks) {
		t.Fatal("header fields changed in v2 round trip")
	}
	for v := range ih.NewID {
		if got.NewID[v] != ih.NewID[v] || got.OldID[v] != ih.OldID[v] {
			t.Fatalf("relabeling changed at %d", v)
		}
	}
	got.EnsureFlatTopology()
	for i := range ih.Blocks {
		a, b := &ih.Blocks[i], &got.Blocks[i]
		if a.HubLo != b.HubLo || a.HubHi != b.HubHi || a.Sources != b.Sources {
			t.Fatalf("block %d header changed", i)
		}
		if len(a.Index) != len(b.Index) || len(a.Dsts) != len(b.Dsts) {
			t.Fatalf("block %d shape changed", i)
		}
		for j := range a.Index {
			if a.Index[j] != b.Index[j] {
				t.Fatalf("block %d index changed at %d", i, j)
			}
		}
		for j := range a.Dsts {
			if a.Dsts[j] != b.Dsts[j] {
				t.Fatalf("block %d dsts changed at %d", i, j)
			}
		}
	}
	if len(got.Sparse.Srcs) != len(ih.Sparse.Srcs) {
		t.Fatal("sparse shape changed")
	}
	for j := range ih.Sparse.Srcs {
		if got.Sparse.Srcs[j] != ih.Sparse.Srcs[j] {
			t.Fatalf("sparse srcs changed at %d", j)
		}
	}
	for j := range ih.Sparse.Index {
		if got.Sparse.Index[j] != ih.Sparse.Index[j] {
			t.Fatalf("sparse index changed at %d", j)
		}
	}
}

// TestV2EngineDifferential steps an engine straight over the opened
// (encoded-only, possibly mapped) v2 graph and pins it against the
// in-memory flat source — auto encoding must resolve to varint.
func TestV2EngineDifferential(t *testing.T) {
	ih := buildV2TestGraph(t)
	path := filepath.Join(t.TempDir(), "g.ihtl2")
	if err := ih.SaveFileV2(path); err != nil {
		t.Fatal(err)
	}
	ef, err := OpenEngineFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ef.Close()
	flat, err := NewEngineOpts(ih, testPool, EngineOptions{BlockEncoding: EncodingFlat})
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := NewEngine(ef.IHTL(), testPool)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Encoding() != EncodingVarint {
		t.Fatalf("engine over v2 file resolved to %v, want varint", loaded.Encoding())
	}
	src := integerVec(3, ih.NumV)
	requireBitIdentical(t, "v2 engine", stepOldSpace(ih, flat, src), stepOldSpace(ef.IHTL(), loaded, src))
	if loaded.ResidentTopologyBytes() >= flat.ResidentTopologyBytes() {
		t.Errorf("v2 resident topology %d B not below flat %d B",
			loaded.ResidentTopologyBytes(), flat.ResidentTopologyBytes())
	}
}

// TestV2DegreeBuckets pins EnsureDegreeBuckets over both an opened v2
// graph and a v1 file loaded through OpenEngineFile (the v1-acceptance
// regression): the derived buckets must match the flat source's.
func TestV2DegreeBuckets(t *testing.T) {
	ih := buildV2TestGraph(t)
	ih.Sparse.EnsureDegreeBuckets()
	dir := t.TempDir()
	v1 := filepath.Join(dir, "g.ihtl")
	v2 := filepath.Join(dir, "g.ihtl2")
	if err := ih.SaveFile(v1); err != nil {
		t.Fatal(err)
	}
	if err := ih.SaveFileV2(v2); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		path string
	}{{"v1", v1}, {"v2", v2}} {
		ef, err := OpenEngineFile(tc.path)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		got := ef.IHTL()
		got.Sparse.EnsureDegreeBuckets()
		if got.Sparse.HeavyDeg != ih.Sparse.HeavyDeg || len(got.Sparse.Heavy) != len(ih.Sparse.Heavy) {
			t.Fatalf("%s: degree buckets differ (deg %d/%d, heavy %d/%d)", tc.name,
				got.Sparse.HeavyDeg, ih.Sparse.HeavyDeg, len(got.Sparse.Heavy), len(ih.Sparse.Heavy))
		}
		for i := range ih.Sparse.Heavy {
			if got.Sparse.Heavy[i] != ih.Sparse.Heavy[i] {
				t.Fatalf("%s: heavy row %d differs", tc.name, i)
			}
		}
		ef.Close()
	}
}

// TestLoadFileReadsV2 pins the stream decoder's v2 path: LoadFile must
// accept both versions.
func TestLoadFileReadsV2(t *testing.T) {
	ih := buildV2TestGraph(t)
	path := filepath.Join(t.TempDir(), "g.ihtl2")
	if err := ih.SaveFileV2(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumE != ih.NumE || got.FlippedEdges() != ih.FlippedEdges() {
		t.Fatal("v2 LoadFile changed edge counts")
	}
}

// TestV2RejectsCorruption fuzz-adjacent hostile-input coverage for the
// mapped parser: truncations and bit flips across the whole file must
// error, never panic.
func TestV2RejectsCorruption(t *testing.T) {
	ih := buildV2TestGraph(t)
	var buf bytes.Buffer
	if _, err := ih.WriteToV2(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	dir := t.TempDir()
	try := func(name string, b []byte) {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		ef, err := OpenEngineFile(path)
		if err == nil {
			// A flipped byte inside a gap stream can decode to another
			// valid graph; it must still pass full validation, so an
			// engine over it is memory-safe. Just close it.
			ef.Close()
		}
	}
	for _, cut := range []int{13, 64, 128, len(data) / 2, len(data) - 1} {
		path := filepath.Join(dir, "trunc")
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenEngineFile(path); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	for off := 12; off < len(data); off += 31 {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0xA5
		try("flip", bad)
	}
}
