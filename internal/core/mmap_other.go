//go:build !unix

package core

import "os"

// mapFile on platforms without a usable mmap reads the file into an
// aligned in-memory buffer. Engines behave identically; only the lazy
// paging of the unix path is lost.
func mapFile(f *os.File, size int64) ([]byte, bool, error) {
	return readFileAligned(f, size)
}

func unmapFile(data []byte) error { return nil }
