package core

// Sharded iHTL construction: the original vertex range is cut into N
// contiguous shards, each shard's INTERNAL edges build a private iHTL
// graph (own hub selection, flipped blocks, sparse block and degree
// buckets — so each shard's per-phase destination working set is sized
// to ITS vertex range, not the whole graph's), and the cross-shard
// edges are routed into one push-direction exchange CSR in the sharded
// ID space. The exchange is drained at step time with exactly the
// propagation-blocked (pb) bin/drain discipline of sparse.go, which is
// what makes sharded execution deterministic by construction; see
// sharded.go for the runtime and DESIGN.md §15 for the argument.
//
// Shard ownership is by SOURCE: an edge u→v with u in shard s is
// either local (v also in s's range, traversed by s's own engine) or
// cross (routed through the exchange). Every edge is traversed exactly
// once per step either way, preserving the paper's per-edge-cost
// frame.
//
// Sharded ID space. Shard s owns the ORIGINAL vertex range
// [Bounds[s], Bounds[s+1]); its private iHTL build relabels those ns
// vertices into a local [0, ns) hub-first order, and the sharded
// GLOBAL ID of a vertex is Bounds[s] + localNewID. Shard ranges are
// therefore contiguous and identical in both original and sharded
// spaces, and a shard's engine steps directly on the subvector
// [Bounds[s], Bounds[s+1]) of the global vectors — no copies.

import (
	"context"
	"fmt"
	"slices"
	"sort"

	"ihtl/internal/graph"
	"ihtl/internal/sched"
)

// ShardedIHTL is a built sharded iHTL graph: the shard plan, one
// private IHTL per shard, the global relabeling, and the cross-shard
// exchange topology.
type ShardedIHTL struct {
	// NumV, NumE mirror the original graph.
	NumV int
	NumE int64
	// Bounds are the NumShards+1 contiguous vertex-range boundaries,
	// edge-balanced over total (in+out) degree. Identical in original
	// and sharded ID space.
	Bounds []int
	// Shards are the per-shard iHTL graphs, each over its local
	// [0, ns) ID space.
	Shards []*IHTL
	// XIndex/XRows are the cross-shard exchange topology as ONE push
	// CSR in sharded-global ID space: XRows[XIndex[u]:XIndex[u+1]] are
	// the sharded-global destination rows of source u's cross-shard
	// edges, sorted ascending per source. Worker-count-independent and
	// serialisable; the per-(chunk, bucket) segment state derived from
	// it lives in the engine (see xState in sharded.go).
	XIndex []int64
	XRows  []uint32
	// NewID maps original vertex IDs to sharded-global IDs; OldID is
	// the inverse.
	NewID, OldID []graph.VID
	// HubsPerBlock is the maximum resolved B across shards; the
	// exchange sizes its destination buckets from it, mirroring the
	// pb kernel's §3.4 cache budget.
	HubsPerBlock int
}

// NumShards returns the number of shards.
func (sg *ShardedIHTL) NumShards() int { return len(sg.Shards) }

// LocalEdges returns the number of edges internal to some shard.
func (sg *ShardedIHTL) LocalEdges() int64 {
	var n int64
	for _, ih := range sg.Shards {
		n += ih.NumE
	}
	return n
}

// CrossEdges returns the number of cross-shard edges the exchange
// carries.
func (sg *ShardedIHTL) CrossEdges() int64 { return int64(len(sg.XRows)) }

// BuildSharded cuts g into nshards vertex-range shards and builds each
// shard's private iHTL graph plus the cross-shard exchange topology.
// The per-shard iHTL builds run across the pool's workers; a nil pool
// builds sequentially.
func BuildSharded(g *graph.Graph, p Params, pool *sched.Pool, nshards int) (*ShardedIHTL, error) {
	return BuildShardedCtx(nil, g, p, pool, nshards)
}

// BuildShardedCtx is BuildSharded with cancellation and panic
// isolation per BuildWithCtx's contract, checked between shards and
// inside each shard's build.
func BuildShardedCtx(ctx context.Context, g *graph.Graph, p Params, pool *sched.Pool, nshards int) (*ShardedIHTL, error) {
	if g == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	if nshards < 1 {
		return nil, fmt.Errorf("core: shard count %d < 1", nshards)
	}
	if nshards > g.NumV && g.NumV > 0 {
		nshards = g.NumV
	}
	sg := &ShardedIHTL{NumV: g.NumV, NumE: g.NumE}
	sg.Bounds = shardBounds(g, nshards)
	sg.Shards = make([]*IHTL, nshards)
	sg.NewID = make([]graph.VID, g.NumV)
	sg.OldID = make([]graph.VID, g.NumV)
	for s := 0; s < nshards; s++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		lo, hi := sg.Bounds[s], sg.Bounds[s+1]
		lg := extractShardGraph(g, lo, hi)
		ih, err := BuildWithCtx(ctx, lg, p, pool)
		if err != nil {
			return nil, fmt.Errorf("core: shard %d build: %w", s, err)
		}
		sg.Shards[s] = ih
		if ih.HubsPerBlock > sg.HubsPerBlock {
			sg.HubsPerBlock = ih.HubsPerBlock
		}
		for v := lo; v < hi; v++ {
			sg.NewID[v] = graph.VID(lo) + ih.NewID[v-lo]
		}
		for i := lo; i < hi; i++ {
			sg.OldID[i] = graph.VID(lo) + ih.OldID[i-lo]
		}
	}
	sg.buildExchange(g)
	if got := sg.LocalEdges() + sg.CrossEdges(); got != g.NumE {
		return nil, fmt.Errorf("core: sharded edge routing lost edges: local+cross %d != %d", got, g.NumE)
	}
	return sg, nil
}

// shardBounds cuts [0, NumV) into nshards contiguous ranges balanced
// by total (in+out) degree — the per-vertex traversal work a shard
// owns, local and cross edges alike.
func shardBounds(g *graph.Graph, nshards int) []int {
	deg := make([]int64, g.NumV+1)
	for v := 0; v < g.NumV; v++ {
		deg[v+1] = deg[v] + int64(g.OutDegree(graph.VID(v))+g.InDegree(graph.VID(v)))
	}
	return sched.EdgeBalancedParts(deg, nshards)
}

// extractShardGraph builds the subgraph of g induced by the vertex
// range [lo, hi), reindexed to [0, hi-lo). Zero-degree local vertices
// are KEPT (unlike graph.Build's compaction): the shard must cover its
// whole vertex range so the global vectors slice cleanly. Filtering a
// sorted adjacency row and subtracting lo preserves its order, so the
// local rows stay sorted.
func extractShardGraph(g *graph.Graph, lo, hi int) *graph.Graph {
	ns := hi - lo
	lg := &graph.Graph{NumV: ns}
	lg.OutIndex = make([]int64, ns+1)
	lg.InIndex = make([]int64, ns+1)
	for v := lo; v < hi; v++ {
		out, in := 0, 0
		for _, d := range g.Out(graph.VID(v)) {
			if int(d) >= lo && int(d) < hi {
				out++
			}
		}
		for _, s := range g.In(graph.VID(v)) {
			if int(s) >= lo && int(s) < hi {
				in++
			}
		}
		lg.OutIndex[v-lo+1] = lg.OutIndex[v-lo] + int64(out)
		lg.InIndex[v-lo+1] = lg.InIndex[v-lo] + int64(in)
	}
	lg.NumE = lg.OutIndex[ns]
	lg.OutNbrs = make([]graph.VID, lg.OutIndex[ns])
	lg.InNbrs = make([]graph.VID, lg.InIndex[ns])
	oc, ic := 0, 0
	for v := lo; v < hi; v++ {
		for _, d := range g.Out(graph.VID(v)) {
			if int(d) >= lo && int(d) < hi {
				lg.OutNbrs[oc] = d - graph.VID(lo)
				oc++
			}
		}
		for _, s := range g.In(graph.VID(v)) {
			if int(s) >= lo && int(s) < hi {
				lg.InNbrs[ic] = s - graph.VID(lo)
				ic++
			}
		}
	}
	return lg
}

// buildExchange routes every cross-shard edge into the exchange CSR:
// one push row per sharded-global source, destinations mapped to
// sharded-global IDs and sorted ascending per source. Iterating
// sources in sharded-global order makes the step-time bin sweep read
// src sequentially, like the pb kernel's transposed CSR.
func (sg *ShardedIHTL) buildExchange(g *graph.Graph) {
	n := sg.NumV
	sg.XIndex = make([]int64, n+1)
	for u := 0; u < n; u++ {
		orig := sg.OldID[u]
		s := sg.ShardOf(u)
		lo, hi := sg.Bounds[s], sg.Bounds[s+1]
		cnt := 0
		for _, d := range g.Out(orig) {
			if int(d) < lo || int(d) >= hi {
				cnt++
			}
		}
		sg.XIndex[u+1] = sg.XIndex[u] + int64(cnt)
	}
	sg.XRows = make([]uint32, sg.XIndex[n])
	for u := 0; u < n; u++ {
		orig := sg.OldID[u]
		s := sg.ShardOf(u)
		lo, hi := sg.Bounds[s], sg.Bounds[s+1]
		c := sg.XIndex[u]
		for _, d := range g.Out(orig) {
			if int(d) < lo || int(d) >= hi {
				sg.XRows[c] = uint32(sg.NewID[d])
				c++
			}
		}
		slices.Sort(sg.XRows[sg.XIndex[u]:sg.XIndex[u+1]])
	}
}

// ShardOf returns the shard owning sharded-global (equivalently,
// original) vertex ID v.
func (sg *ShardedIHTL) ShardOf(v int) int {
	// Index of the first upper boundary strictly above v.
	return sort.SearchInts(sg.Bounds[1:], v+1)
}

// PermuteToNew scatters a vector indexed by original IDs into
// sharded-global ID order: out[NewID[v]] = in[v].
func (sg *ShardedIHTL) PermuteToNew(in, out []float64) {
	if len(in) != sg.NumV || len(out) != sg.NumV {
		panic("core: vector length mismatch")
	}
	for v, nv := range sg.NewID {
		out[nv] = in[v]
	}
}

// PermuteToOld is the inverse of PermuteToNew: out[v] = in[NewID[v]].
func (sg *ShardedIHTL) PermuteToOld(in, out []float64) {
	if len(in) != sg.NumV || len(out) != sg.NumV {
		panic("core: vector length mismatch")
	}
	for v, nv := range sg.NewID {
		out[v] = in[nv]
	}
}

// PermuteToNewBatch scatters K interleaved vectors indexed by original
// IDs into sharded-global ID order, like IHTL.PermuteToNewBatch.
func (sg *ShardedIHTL) PermuteToNewBatch(in, out []float64, k int) {
	if len(in) != sg.NumV*k || len(out) != sg.NumV*k {
		panic("core: batch vector length mismatch")
	}
	for v, nv := range sg.NewID {
		copy(out[int(nv)*k:int(nv)*k+k], in[v*k:v*k+k])
	}
}

// PermuteToOldBatch is the inverse of PermuteToNewBatch.
func (sg *ShardedIHTL) PermuteToOldBatch(in, out []float64, k int) {
	if len(in) != sg.NumV*k || len(out) != sg.NumV*k {
		panic("core: batch vector length mismatch")
	}
	for v, nv := range sg.NewID {
		copy(out[v*k:v*k+k], in[int(nv)*k:int(nv)*k+k])
	}
}
