package core

import (
	"fmt"
	"sync"
	"testing"

	"ihtl/internal/gen"
	"ihtl/internal/sched"
)

// TestConcurrentEngineConstruction builds many engines over ONE shared
// IHTL from concurrent goroutines, mixing the options whose
// constructors run the lazy graph derivations — EnsureEncoded
// (BlockEncoding varint), EnsureFlatTopology (flat over an
// encoded-only graph is not exercised here; DropFlatTopology is
// destructive and documented single-threaded) and
// IHTL.EnsureDegreeBuckets (SparsePullDegree) — and then steps each.
// Under -race this pins the lazyMu guard: before it, two goroutines
// could both observe a nil Enc/HeavyDeg and race the derivation.
func TestConcurrentEngineConstruction(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(10, 8, 21))
	if err != nil {
		t.Fatal(err)
	}
	ih, err := Build(g, Params{HubsPerBlock: 64})
	if err != nil {
		t.Fatal(err)
	}
	opts := []EngineOptions{
		{BlockEncoding: EncodingVarint},
		{SparseKernel: SparsePullDegree},
		{BlockEncoding: EncodingVarint, SparseKernel: SparsePullDegree},
		{SparseKernel: SparsePB},
		{},
	}
	src := integerVec(6, g.NumV)
	var want []float64

	const rounds = 4
	var wg sync.WaitGroup
	results := make([][]float64, len(opts)*rounds)
	errs := make([]error, len(opts)*rounds)
	for r := 0; r < rounds; r++ {
		for i, opt := range opts {
			wg.Add(1)
			go func(slot int, opt EngineOptions) {
				defer wg.Done()
				pool := sched.NewPool(2)
				defer pool.Close()
				e, err := NewEngineOpts(ih, pool, opt)
				if err != nil {
					errs[slot] = fmt.Errorf("NewEngineOpts(%+v): %w", opt, err)
					return
				}
				results[slot] = stepOldSpace(ih, e, src)
			}(r*len(opts)+i, opt)
		}
	}
	wg.Wait()
	for slot, err := range errs {
		if err != nil {
			t.Fatal(slot, err)
		}
	}
	for slot, got := range results {
		if want == nil {
			want = got
			continue
		}
		requireBitIdentical(t, fmt.Sprintf("concurrent engine %d", slot), want, got)
	}
}
