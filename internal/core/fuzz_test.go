package core

import (
	"bytes"
	"testing"

	"ihtl/internal/graph"
)

// FuzzReadIHTL guards the iHTL binary decoder: arbitrary bytes must
// either fail cleanly or decode into a structurally sound iHTL graph
// (inverse relabeling arrays, in-range block destinations, edge
// conservation — all checked inside ReadIHTL).
func FuzzReadIHTL(f *testing.F) {
	ih, err := Build(graph.PaperExample(), Params{HubsPerBlock: 2})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ih.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	data := append([]byte(nil), buf.Bytes()...)
	data[len(data)/2] ^= 0xA5
	f.Add(data)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadIHTL(bytes.NewReader(data))
		if err != nil {
			return
		}
		if got.FlippedEdges()+got.Sparse.NumEdges() != got.NumE {
			t.Fatal("decoder accepted inconsistent edge counts")
		}
	})
}
