// Package core implements in-Hub Temporal Locality (iHTL), the
// paper's contribution: an SpMV engine that processes incoming edges
// of in-hub vertices in push direction through L2-resident per-thread
// buffers (the "flipped blocks") and all remaining edges in pull
// direction (the "sparse block"), traversing every edge exactly once
// per iteration (§3).
package core

import (
	"fmt"

	"ihtl/internal/graph"
)

// DefaultL2Bytes is the L2 capacity of the paper's evaluation machine
// (Xeon Gold 6130), the cache level §4.7 identifies as the right home
// for hub vertex data.
const DefaultL2Bytes = 1 << 20

// DefaultVertexBytes matches the paper's 8-byte PageRank vertex data.
const DefaultVertexBytes = 8

// Params controls iHTL graph construction (§3.2-3.3).
type Params struct {
	// HubsPerBlock is B, the number of in-hubs per flipped block.
	// When 0 it is derived as CacheBytes / VertexBytes — "we specify
	// the number of hubs per flipped block as B by dividing the
	// level 2 cache size by the size of vertex data" (§3.3).
	HubsPerBlock int
	// CacheBytes is the cache capacity used to derive HubsPerBlock;
	// 0 selects DefaultL2Bytes. Table 6 sweeps this.
	CacheBytes int
	// VertexBytes is the per-vertex data size; 0 selects 8.
	VertexBytes int
	// FVThreshold is the fraction of |FV₁| a new flipped block's
	// source set must exceed to be worth creating; 0 selects the
	// paper's 0.5 ("iHTL allows a new flipped block to be formed if
	// its hubs have edges from at least 50% of the {hubs ∪ VWEH}").
	FVThreshold float64
	// MaxBlocks caps the number of flipped blocks as a safety bound;
	// 0 selects 64 (the paper's datasets need at most 16, Table 5).
	MaxBlocks int
	// MinHubDegree refuses to classify vertices below this in-degree
	// as hubs even if a block has room: hubs with tiny degrees gain
	// nothing from flipping. 0 selects 2.
	MinHubDegree int
	// DegreeSortClasses orders VWEH and FV vertices by descending
	// degree instead of preserving their original order. The paper
	// deliberately preserves order ("iHTL maintains the relative
	// order of vertices within the VWEH and FV categories, while
	// other locality optimizing algorithms apply degree sorting
	// throughout. This destroys locality expressed in the initial
	// assignment of vertex labels", §5.4); this flag ablates that
	// choice.
	DegreeSortClasses bool
	// FastSelect uses the lower-complexity block-count algorithm the
	// paper proposes as future work (§6): instead of one in-edge pass
	// per tentative block, a single pass over the out-edges of FV₁
	// (the sources of block 1) estimates every |FVᵢ| at once. The
	// estimate undercounts sources that reach later blocks but not
	// block 1, so FastSelect may admit fewer blocks than the exact
	// §3.3 procedure; SpMV results are identical either way.
	FastSelect bool
	// SparseOrder applies a locality-optimizing ordering to the VWEH
	// and FV classes (the destinations and sources of the pull-
	// traversed sparse block) instead of preserving original order —
	// the paper's §6 suggestion that "locality of the sparse block
	// may improve by applying Rabbit-Order". Hubs keep their rank
	// order and class boundaries are preserved. Mutually exclusive
	// with DegreeSortClasses.
	SparseOrder SparseOrderer
}

// SparseOrderer computes a vertex ordering; order.Algorithm satisfies
// it. Only the relative order it induces inside the VWEH and FV
// classes is used.
type SparseOrderer interface {
	Name() string
	Permutation(g *graph.Graph) []graph.VID
}

// ForBatch returns the parameters adjusted for K-wide batched
// execution (Engine.StepBatch): per-vertex data grows to K lanes, so
// VertexBytes is scaled by k and the effective B shrinks to
// CacheBytes/(VertexBytes·k) — a K-wide per-block hub buffer then
// occupies the same cache budget the scalar one did (§3.4's sizing
// argument, applied to K lanes). An explicitly set HubsPerBlock is
// divided by k directly. k <= 1 returns p unchanged.
func (p Params) ForBatch(k int) Params {
	if k <= 1 {
		return p
	}
	if p.HubsPerBlock > 0 {
		p.HubsPerBlock /= k
		if p.HubsPerBlock < 1 {
			p.HubsPerBlock = 1
		}
		return p
	}
	if p.VertexBytes == 0 {
		p.VertexBytes = DefaultVertexBytes
	}
	p.VertexBytes *= k
	return p
}

// withDefaults resolves zero fields.
func (p Params) withDefaults() Params {
	if p.VertexBytes == 0 {
		p.VertexBytes = DefaultVertexBytes
	}
	if p.CacheBytes == 0 {
		p.CacheBytes = DefaultL2Bytes
	}
	if p.HubsPerBlock == 0 {
		p.HubsPerBlock = p.CacheBytes / p.VertexBytes
	}
	if p.FVThreshold == 0 { //ihtl:allow-zerocmp option defaulting, ±0 both mean "unset"
		p.FVThreshold = 0.5
	}
	if p.MaxBlocks == 0 {
		p.MaxBlocks = 64
	}
	if p.MinHubDegree == 0 {
		p.MinHubDegree = 2
	}
	return p
}

// Validate checks parameter sanity after defaulting.
func (p Params) Validate() error {
	q := p.withDefaults()
	if q.HubsPerBlock < 1 {
		return fmt.Errorf("core: HubsPerBlock %d < 1", q.HubsPerBlock)
	}
	if q.VertexBytes < 1 {
		return fmt.Errorf("core: VertexBytes %d < 1", q.VertexBytes)
	}
	if q.FVThreshold < 0 || q.FVThreshold > 1 {
		return fmt.Errorf("core: FVThreshold %v out of [0,1]", q.FVThreshold)
	}
	if q.MaxBlocks < 1 {
		return fmt.Errorf("core: MaxBlocks %d < 1", q.MaxBlocks)
	}
	if q.DegreeSortClasses && q.SparseOrder != nil {
		return fmt.Errorf("core: DegreeSortClasses and SparseOrder are mutually exclusive")
	}
	return nil
}
