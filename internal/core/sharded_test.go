package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"ihtl/internal/faultinject"
	"ihtl/internal/gen"
	"ihtl/internal/graph"
	"ihtl/internal/sched"
	"ihtl/internal/spmv"
)

// shardedStepOldSpace runs one sharded Step with old-ID-space vectors,
// permuting in and out like stepOldSpace.
func shardedStepOldSpace(se *ShardedEngine, srcOld []float64) []float64 {
	sg := se.Sharded()
	n := sg.NumV
	srcNew := make([]float64, n)
	dstNew := make([]float64, n)
	sg.PermuteToNew(srcOld, srcNew)
	se.Step(srcNew, dstNew)
	dstOld := make([]float64, n)
	sg.PermuteToOld(dstNew, dstOld)
	return dstOld
}

// shardedDiffOptions is the engine-config axis of the sharded
// differential: both pipelines, the atomic ablation, every sparse
// kernel, and both block encodings.
func shardedDiffOptions() map[string]EngineOptions {
	return map[string]EngineOptions{
		"fused":       {},
		"phased":      {Phased: true},
		"atomic":      {AtomicFlipped: true},
		"pull-degree": {SparseKernel: SparsePullDegree},
		"pb":          {SparseKernel: SparsePB},
		"varint":      {BlockEncoding: EncodingVarint},
		"pb-varint":   {SparseKernel: SparsePB, BlockEncoding: EncodingVarint},
	}
}

// TestShardedStepDifferential pins sharded execution (N ∈ {2, 4}) to
// the spmv.Pull baseline — and therefore to the unsharded engine,
// which the fused differential pins to the same baseline — bit-for-bit
// across graphs, worker counts, pipelines, sparse kernels and block
// encodings, for integer sources and for signed sources containing
// -0.0 (the zero-skip bit-transparency regime; see signedVec).
func TestShardedStepDifferential(t *testing.T) {
	workerCounts := []int{1, 3, runtime.GOMAXPROCS(0)}
	for name, g := range diffGraphs(t) {
		srcInt := integerVec(1234, g.NumV)
		srcSigned := signedVec(77, g.NumV)
		for _, workers := range workerCounts {
			t.Run(fmt.Sprintf("%s/w%d", name, workers), func(t *testing.T) {
				pool := sched.NewPool(workers)
				defer pool.Close()

				pe, err := spmv.NewEngine(g, pool, spmv.Pull, spmv.Options{})
				if err != nil {
					t.Fatal(err)
				}
				wantInt := make([]float64, g.NumV)
				pe.Step(srcInt, wantInt)
				wantSigned := make([]float64, g.NumV)
				pe.Step(srcSigned, wantSigned)

				for _, nshards := range []int{2, 4} {
					sg, err := BuildSharded(g, Params{HubsPerBlock: 64}, pool, nshards)
					if err != nil {
						t.Fatal(err)
					}
					if name != "paper" && sg.CrossEdges() == 0 {
						t.Fatalf("%d-shard cut of %s has no cross edges; the exchange is untested", nshards, name)
					}
					for optName, opt := range shardedDiffOptions() {
						se, err := NewShardedEngineOpts(sg, pool, opt)
						if err != nil {
							t.Fatal(err)
						}
						label := fmt.Sprintf("n%d/%s", nshards, optName)
						requireBitIdentical(t, label, wantInt, shardedStepOldSpace(se, srcInt))
						// Second step on the same engine: the exchange
						// cursors and every sub-engine's buffers must have
						// been left clean.
						requireBitIdentical(t, label+" (second step)", wantInt, shardedStepOldSpace(se, srcInt))
						requireBitIdentical(t, label+" signed", wantSigned, shardedStepOldSpace(se, srcSigned))
					}
				}
			})
		}
	}
}

// TestShardedStepBatchDifferential pins the K-wide sharded step: lane j
// of a StepBatch must be bit-identical to a scalar sharded Step of lane
// j's source, for both pipelines and the pb kernel.
func TestShardedStepBatchDifferential(t *testing.T) {
	const k = 3
	for name, g := range diffGraphs(t) {
		pool := sched.NewPool(3)
		defer pool.Close()
		sg, err := BuildSharded(g, Params{HubsPerBlock: 64}, pool, 2)
		if err != nil {
			t.Fatal(err)
		}
		lanes := make([][]float64, k)
		srcB := make([]float64, g.NumV*k)
		for j := range lanes {
			lanes[j] = signedVec(uint64(100+j), g.NumV)
			for v := 0; v < g.NumV; v++ {
				srcB[v*k+j] = lanes[j][v]
			}
		}
		for optName, opt := range map[string]EngineOptions{
			"fused":  {},
			"phased": {Phased: true},
			"pb":     {SparseKernel: SparsePB},
		} {
			se, err := NewShardedEngineOpts(sg, pool, opt)
			if err != nil {
				t.Fatal(err)
			}
			srcNew := make([]float64, g.NumV*k)
			dstNew := make([]float64, g.NumV*k)
			sg.PermuteToNewBatch(srcB, srcNew, k)
			se.StepBatch(srcNew, dstNew, k)
			dstB := make([]float64, g.NumV*k)
			sg.PermuteToOldBatch(dstNew, dstB, k)
			for j := 0; j < k; j++ {
				want := shardedStepOldSpace(se, lanes[j])
				got := make([]float64, g.NumV)
				for v := 0; v < g.NumV; v++ {
					got[v] = dstB[v*k+j]
				}
				requireBitIdentical(t, fmt.Sprintf("%s/%s lane %d", name, optName, j), want, got)
			}
		}
	}
}

// TestShardedStepEpi checks the fused epilogue contract over a sharded
// engine: epi runs once per element after all of dst — local pipelines
// AND the cross-shard drain — is complete.
func TestShardedStepEpi(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(9, 8, 42))
	if err != nil {
		t.Fatal(err)
	}
	sg, err := BuildSharded(g, Params{HubsPerBlock: 64}, testPool, 3)
	if err != nil {
		t.Fatal(err)
	}
	se, err := NewShardedEngine(sg, testPool)
	if err != nil {
		t.Fatal(err)
	}
	src := integerVec(9, g.NumV)
	srcNew := make([]float64, g.NumV)
	sg.PermuteToNew(src, srcNew)
	want := make([]float64, g.NumV)
	se.Step(srcNew, want)
	for v := range want {
		want[v] = 2*want[v] + 1
	}
	got := make([]float64, g.NumV)
	se.StepEpi(srcNew, got, func(w, lo, hi int) {
		if w < 0 || w >= se.Workers() {
			panic("epilogue worker index out of range")
		}
		for v := lo; v < hi; v++ {
			got[v] = 2*got[v] + 1
		}
	})
	requireBitIdentical(t, "sharded StepEpi", want, got)
}

// TestShardedStepAllocationFree pins the sharded fused pipeline's
// zero-allocation steady state for Step and StepBatch.
func TestShardedStepAllocationFree(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(9, 8, 5))
	if err != nil {
		t.Fatal(err)
	}
	sg, err := BuildSharded(g, Params{HubsPerBlock: 64}, testPool, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sg.CrossEdges() == 0 {
		t.Fatal("fixture has no cross edges; the exchange path would not be pinned")
	}
	se, err := NewShardedEngine(sg, testPool)
	if err != nil {
		t.Fatal(err)
	}
	src := integerVec(3, g.NumV)
	dst := make([]float64, g.NumV)
	for i := 0; i < 3; i++ { // warm worker stacks
		se.Step(src, dst)
	}
	if allocs := testing.AllocsPerRun(20, func() { se.Step(src, dst) }); allocs != 0 {
		t.Errorf("sharded Step allocates %.1f objects per run, want 0", allocs)
	}

	const k = 4
	srcB := integerVec(4, g.NumV*k)
	dstB := make([]float64, g.NumV*k)
	for i := 0; i < 3; i++ {
		se.StepBatch(srcB, dstB, k)
	}
	if allocs := testing.AllocsPerRun(20, func() { se.StepBatch(srcB, dstB, k) }); allocs != 0 {
		t.Errorf("sharded StepBatch allocates %.1f objects per run, want 0", allocs)
	}
}

func shardedFaultEngine(t *testing.T, opt EngineOptions) *ShardedEngine {
	t.Helper()
	g, err := gen.RMAT(gen.DefaultRMAT(11, 8, 7))
	if err != nil {
		t.Fatal(err)
	}
	sg, err := BuildShardedCtx(context.Background(), g, Params{}, testPool, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sg.CrossEdges() == 0 {
		t.Fatal("fixture graph has no cross-shard edges; exchange fault sites would be dead")
	}
	se, err := NewShardedEngineOpts(sg, testPool, opt)
	if err != nil {
		t.Fatal(err)
	}
	return se
}

// TestShardedStepCtxInjectedPanicRecovery lands injected panics on the
// exchange's bin (SiteShardPush) and drain (SiteShardExchange) sites —
// plus a sub-engine site, proving faults inside a shard's private
// pipeline surface through the sharded dispatch — and checks the next
// clean step is unaffected.
func TestShardedStepCtxInjectedPanicRecovery(t *testing.T) {
	se := shardedFaultEngine(t, EngineOptions{})
	n := se.NumVertices()
	src := randomSrc(n, 5)
	ref := make([]float64, n)
	se.Step(src, ref)

	sites := []faultinject.Site{
		faultinject.SiteShardPush,
		faultinject.SiteShardExchange,
		faultinject.SiteFlippedTask,
	}
	dst := make([]float64, n)
	for _, site := range sites {
		for after := int64(0); after < 3; after++ {
			plan := faultinject.NewPlan(faultinject.Rule{Site: site, Kind: faultinject.Panic, After: after})
			faultinject.Activate(plan)
			err := se.StepCtx(nil, src, dst)
			faultinject.Deactivate()
			if plan.Fired(site) == 0 {
				if err != nil {
					t.Fatalf("%s after=%d: err = %v with no fault fired", site, after, err)
				}
			} else {
				var perr *sched.PanicError
				if !errors.As(err, &perr) {
					t.Fatalf("%s after=%d: err = %v, want *sched.PanicError", site, after, err)
				}
				var ip *faultinject.InjectedPanic
				if !errors.As(err, &ip) || ip.Site != site {
					t.Fatalf("%s after=%d: PanicError does not unwrap to the injected fault: %v", site, after, err)
				}
			}
			if err := se.StepCtx(nil, src, dst); err != nil {
				t.Fatalf("%s after=%d: clean step: %v", site, after, err)
			}
			wantClose(t, "clean sharded step after injected panic", dst, ref)
		}
	}
}

// TestShardedStepCtxCancelThenCleanStep randomises a cancellation point
// inside sharded steps and checks the engine recovers.
func TestShardedStepCtxCancelThenCleanStep(t *testing.T) {
	se := shardedFaultEngine(t, EngineOptions{})
	n := se.NumVertices()
	src := randomSrc(n, 99)
	ref := make([]float64, n)
	se.Step(src, ref)

	dst := make([]float64, n)
	for seed := uint64(0); seed < 12; seed++ {
		to := time.Duration(faultinject.SeededAfter(seed, "test.shard-cancel", 400)) * time.Microsecond
		ctx, cancel := context.WithTimeout(context.Background(), to)
		err := se.StepCtx(ctx, src, dst)
		cancel()
		if err != nil && !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("seed %d: err = %v, want nil or DeadlineExceeded", seed, err)
		}
		if err := se.StepCtx(nil, src, dst); err != nil {
			t.Fatalf("seed %d: clean step: %v", seed, err)
		}
		wantClose(t, "clean sharded step after cancel", dst, ref)
	}
}

// TestShardedHealthVerdicts checks the sharded watchdog end to end:
// poison through SiteStepHealth fails the step under HealthError and
// is absorbed under HealthClamp.
func TestShardedHealthVerdicts(t *testing.T) {
	se := shardedFaultEngine(t, EngineOptions{Health: spmv.HealthPolicy{Mode: spmv.HealthError}})
	n := se.NumVertices()
	src := randomSrc(n, 17)
	dst := make([]float64, n)
	if err := se.StepCtx(nil, src, dst); err != nil {
		t.Fatalf("clean sharded step under watchdog: %v", err)
	}
	faultinject.Activate(faultinject.NewPlan(faultinject.Rule{
		Site: faultinject.SiteStepHealth, Kind: faultinject.NaN, After: 0,
	}))
	err := se.StepCtx(nil, src, dst)
	faultinject.Deactivate()
	var nerr *spmv.NumericError
	if !errors.As(err, &nerr) {
		t.Fatalf("err = %v, want *spmv.NumericError", err)
	}

	clamp := shardedFaultEngine(t, EngineOptions{Health: spmv.HealthPolicy{Mode: spmv.HealthClamp}})
	faultinject.Activate(faultinject.NewPlan(faultinject.Rule{
		Site: faultinject.SiteStepHealth, Kind: faultinject.NaN, After: 0,
	}))
	err = clamp.StepCtx(nil, src, dst)
	faultinject.Deactivate()
	if err != nil {
		t.Fatalf("clamp mode surfaced an error: %v", err)
	}
	for i, x := range dst {
		if !isFinite(x) {
			t.Fatalf("dst[%d] = %g survived the clamp", i, x)
		}
	}
}

// TestBuildShardedInvariants checks the shard plan's structural
// invariants on a few graphs: bounds cover [0, NumV), every edge is
// routed exactly once, ShardOf inverts the bounds, the permutation is
// a bijection consistent with the shard-local relabelings, and the
// exchange rows are ascending per source.
func TestBuildShardedInvariants(t *testing.T) {
	for name, g := range diffGraphs(t) {
		for _, nshards := range []int{1, 2, 4, 7} {
			sg, err := BuildSharded(g, Params{HubsPerBlock: 64}, testPool, nshards)
			if err != nil {
				t.Fatal(err)
			}
			if sg.Bounds[0] != 0 || sg.Bounds[len(sg.Bounds)-1] != g.NumV {
				t.Fatalf("%s/n%d: bounds %v do not cover [0, %d)", name, nshards, sg.Bounds, g.NumV)
			}
			if got := sg.LocalEdges() + sg.CrossEdges(); got != g.NumE {
				t.Fatalf("%s/n%d: local %d + cross %d != %d edges", name, nshards, sg.LocalEdges(), sg.CrossEdges(), g.NumE)
			}
			seen := make([]bool, g.NumV)
			for v := 0; v < g.NumV; v++ {
				nv := int(sg.NewID[v])
				s := sg.ShardOf(v)
				if v < sg.Bounds[s] || v >= sg.Bounds[s+1] {
					t.Fatalf("%s/n%d: ShardOf(%d) = %d outside its bounds", name, nshards, v, s)
				}
				if nv < sg.Bounds[s] || nv >= sg.Bounds[s+1] {
					t.Fatalf("%s/n%d: NewID[%d] = %d leaves shard %d's range", name, nshards, v, nv, s)
				}
				if seen[nv] {
					t.Fatalf("%s/n%d: NewID maps two vertices to %d", name, nshards, nv)
				}
				seen[nv] = true
				if int(sg.OldID[nv]) != v {
					t.Fatalf("%s/n%d: OldID[NewID[%d]] = %d", name, nshards, v, sg.OldID[nv])
				}
			}
			for u := 0; u < sg.NumV; u++ {
				row := sg.XRows[sg.XIndex[u]:sg.XIndex[u+1]]
				for i := 1; i < len(row); i++ {
					if row[i-1] >= row[i] {
						t.Fatalf("%s/n%d: exchange row of source %d not strictly ascending", name, nshards, u)
					}
				}
				s := sg.ShardOf(u)
				for _, d := range row {
					if int(d) >= sg.Bounds[s] && int(d) < sg.Bounds[s+1] {
						t.Fatalf("%s/n%d: exchange carries a local edge %d→%d", name, nshards, u, d)
					}
				}
			}
		}
	}
	if _, err := BuildSharded(nil, Params{}, testPool, 2); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := BuildSharded(graph.PaperExample(), Params{}, testPool, 0); err == nil {
		t.Fatal("0 shards accepted")
	}
	// More shards than vertices clamps rather than failing.
	sg, err := BuildSharded(graph.PaperExample(), Params{}, testPool, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if sg.NumShards() > sg.NumV {
		t.Fatalf("shard count %d not clamped to %d vertices", sg.NumShards(), sg.NumV)
	}
}

// TestNewEngineOptsRejectsShards pins the construction routing: the
// core constructor over a single IHTL refuses Shards > 1 (the public
// ihtl API routes that to BuildSharded + NewShardedEngineOpts).
func TestNewEngineOptsRejectsShards(t *testing.T) {
	ih, err := Build(graph.PaperExample(), Params{HubsPerBlock: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngineOpts(ih, testPool, EngineOptions{Shards: 4}); err == nil {
		t.Fatal("core.NewEngineOpts accepted Shards > 1")
	}
}

// TestShardedBreakdownExchangeSplit checks a sharded engine with cross
// edges charges the exchange clocks and counts steps once.
func TestShardedBreakdownExchangeSplit(t *testing.T) {
	se := shardedFaultEngine(t, EngineOptions{})
	n := se.NumVertices()
	src := randomSrc(n, 31)
	dst := make([]float64, n)
	const steps = 4
	for i := 0; i < steps; i++ {
		se.Step(src, dst)
	}
	b := se.TakeBreakdown()
	if b.Steps != steps {
		t.Fatalf("Steps = %d, want %d", b.Steps, steps)
	}
	if b.ExchangeBinBusy <= 0 || b.ExchangeDrainBusy <= 0 {
		t.Fatalf("exchange clocks not charged: bin %v drain %v", b.ExchangeBinBusy, b.ExchangeDrainBusy)
	}
	if b.Wall <= 0 {
		t.Fatal("sharded Wall not recorded")
	}
	if after := se.TakeBreakdown(); after.Steps != 0 || after.Wall != 0 {
		t.Fatal("TakeBreakdown did not reset")
	}
}
