package core

import (
	"ihtl/internal/cache"
	"ihtl/internal/graph"
	"ihtl/internal/spmv"
)

// SimulateStep replays the memory reference stream of one iHTL SpMV
// iteration (Algorithm 3) against a simulated cache hierarchy,
// producing the iHTL rows of Table 3 and the iHTL curve of Figure 1.
//
// The trace mirrors the engine exactly:
//
//	flipped blocks: stream block Index (8 B) and Dsts (4 B), stream
//	  src data of push sources, random read-modify-write of the
//	  per-thread hub buffer (B entries, the L2-resident structure);
//	merge: stream buffer + hub data;
//	sparse block: stream Index and Srcs, random-read src data,
//	  stream-write dst data.
//
// When byDegree is true, misses of the random accesses are attributed
// to the *original in-degree* of the destination vertex being
// processed, bucketed by log2 — hub buckets therefore reflect the
// flipped-block pushes that replace their pull reads (Figure 1's
// "iHTL" series).
func SimulateStep(ih *IHTL, g *graph.Graph, cfg cache.Config, byDegree bool) (spmv.SimStats, []spmv.DegreeMissBucket) {
	h := cache.NewHierarchy(cfg)
	var as cache.AddressSpace
	srcData := as.Alloc(ih.NumV, spmv.VertexBytes)
	dstData := as.Alloc(ih.NumV, spmv.VertexBytes)
	buffer := as.Alloc(ih.NumHubs, spmv.VertexBytes) // single-thread trace: one buffer
	blockIdx := make([]cache.Region, len(ih.Blocks))
	blockDst := make([]cache.Region, len(ih.Blocks))
	for b := range ih.Blocks {
		blockIdx[b] = as.Alloc(len(ih.Blocks[b].Index), 8)
		blockDst[b] = as.Alloc(len(ih.Blocks[b].Dsts), 4)
	}
	spIdx := as.Alloc(len(ih.Sparse.Index), 8)
	spSrcs := as.Alloc(len(ih.Sparse.Srcs), 4)

	llc := h.LastLevel()
	snapshot := func() (uint64, uint64) {
		loads, stores := h.MemoryAccesses()
		return loads + stores, h.Stats(llc).Misses
	}
	var buckets []spmv.DegreeMissBucket
	addBucket := func(deg int, accesses, misses uint64) {
		b := 0
		for d := deg; d > 1; d >>= 1 {
			b++
		}
		for len(buckets) <= b {
			lo := 1 << uint(len(buckets))
			buckets = append(buckets, spmv.DegreeMissBucket{DegreeLo: lo, DegreeHi: lo * 2})
		}
		buckets[b].Vertices++
		buckets[b].Accesses += accesses
		buckets[b].Misses += misses
	}

	// Phase 1: push the flipped blocks. The hub-degree attribution
	// accumulates per-hub access/miss deltas of the buffer updates.
	type hubAcc struct {
		accesses, misses uint64
	}
	var hubAccs []hubAcc
	if byDegree {
		hubAccs = make([]hubAcc, ih.NumHubs)
	}
	for b := range ih.Blocks {
		fb := &ih.Blocks[b]
		for s := 0; s < ih.NumPushSources(); s++ {
			h.ReadRange(blockIdx[b].Addr(s), 16)
			lo, hi := fb.Index[s], fb.Index[s+1]
			if lo == hi {
				continue
			}
			h.ReadRange(srcData.Addr(s), spmv.VertexBytes) // sequential source data read
			for i := lo; i < hi; i++ {
				h.ReadRange(blockDst[b].Addr(int(i)), 4) // streamed hub ID
				hub := int(fb.Dsts[i])
				if byDegree {
					beforeAcc, beforeMiss := snapshot()
					h.Read(buffer.Addr(hub))
					h.Write(buffer.Addr(hub))
					afterAcc, afterMiss := snapshot()
					hubAccs[hub].accesses += afterAcc - beforeAcc
					hubAccs[hub].misses += afterMiss - beforeMiss
				} else {
					h.Read(buffer.Addr(hub))
					h.Write(buffer.Addr(hub))
				}
			}
		}
	}
	if byDegree {
		for hub := 0; hub < ih.NumHubs; hub++ {
			deg := g.InDegree(ih.OldID[hub])
			if deg == 0 {
				continue
			}
			addBucket(deg, hubAccs[hub].accesses, hubAccs[hub].misses)
		}
	}

	// Phase 2: merge the buffer into hub data (streaming).
	for hub := 0; hub < ih.NumHubs; hub++ {
		h.ReadRange(buffer.Addr(hub), spmv.VertexBytes)
		h.Write(buffer.Addr(hub)) // reset
		h.Write(dstData.Addr(hub))
	}

	// Phase 3: pull the sparse block.
	n := ih.NumV - ih.Sparse.DestLo
	for i := 0; i < n; i++ {
		h.ReadRange(spIdx.Addr(i), 16)
		lo, hi := ih.Sparse.Index[i], ih.Sparse.Index[i+1]
		deg := int(hi - lo)
		var beforeAcc, beforeMiss uint64
		if byDegree {
			beforeAcc, beforeMiss = snapshot()
		}
		for j := lo; j < hi; j++ {
			h.ReadRange(spSrcs.Addr(int(j)), 4)
			h.Read(srcData.Addr(int(ih.Sparse.Srcs[j])))
		}
		if byDegree && deg > 0 {
			afterAcc, afterMiss := snapshot()
			addBucket(deg, afterAcc-beforeAcc, afterMiss-beforeMiss)
		}
		h.Write(dstData.Addr(ih.Sparse.DestLo + i))
	}

	loads, stores := h.MemoryAccesses()
	st := spmv.SimStats{
		Loads:  loads,
		Stores: stores,
		L2:     h.Stats(cache.L2),
		L3:     h.Stats(cache.L3),
	}
	st.LLCMissRate = h.Stats(llc).MissRate()
	return st, buckets
}
