package core

import (
	"os"
	"path/filepath"
	"testing"

	"ihtl/internal/gen"
)

func buildV3TestGraph(t *testing.T) *ShardedIHTL {
	t.Helper()
	g, err := gen.RMAT(gen.DefaultRMAT(10, 8, 77))
	if err != nil {
		t.Fatal(err)
	}
	sg, err := BuildSharded(g, Params{HubsPerBlock: 32}, testPool, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sg.CrossEdges() == 0 {
		t.Fatal("fixture has no cross edges; the exchange sections would be empty")
	}
	return sg
}

// TestV3RoundTripBitForBit pins the v3-decoded shard plan, exchange
// CSR and reconstructed relabeling bit-for-bit against the in-memory
// sharded build, and the opened engine's steps against the source's.
func TestV3RoundTrip(t *testing.T) {
	sg := buildV3TestGraph(t)
	path := filepath.Join(t.TempDir(), "g.ihtl3")
	if err := sg.SaveFileV3(path); err != nil {
		t.Fatal(err)
	}
	ef, err := OpenEngineFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ef.Close()
	if ef.IHTL() != nil {
		t.Fatal("v3 file surfaced a single-graph IHTL")
	}
	got := ef.Sharded()
	if got == nil {
		t.Fatal("v3 file has no sharded graph")
	}
	if got.NumV != sg.NumV || got.NumE != sg.NumE || got.NumShards() != sg.NumShards() ||
		got.HubsPerBlock != sg.HubsPerBlock {
		t.Fatal("header fields changed in v3 round trip")
	}
	for i := range sg.Bounds {
		if got.Bounds[i] != sg.Bounds[i] {
			t.Fatalf("bounds changed at %d", i)
		}
	}
	for u := range sg.XIndex {
		if got.XIndex[u] != sg.XIndex[u] {
			t.Fatalf("exchange index changed at %d", u)
		}
	}
	for i := range sg.XRows {
		if got.XRows[i] != sg.XRows[i] {
			t.Fatalf("exchange rows changed at %d", i)
		}
	}
	for v := range sg.NewID {
		if got.NewID[v] != sg.NewID[v] || got.OldID[v] != sg.OldID[v] {
			t.Fatalf("reconstructed relabeling changed at %d", v)
		}
	}
	for s, ih := range sg.Shards {
		lih := got.Shards[s]
		if !lih.EncodedOnly() {
			t.Fatalf("shard %d opened with a resident flat topology", s)
		}
		if lih.NumV != ih.NumV || lih.NumE != ih.NumE || lih.NumHubs != ih.NumHubs {
			t.Fatalf("shard %d header changed", s)
		}
	}

	// Engine differential: steps over the opened graph must match the
	// in-memory sharded engine bit-for-bit.
	mem, err := NewShardedEngine(sg, testPool)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := NewShardedEngine(got, testPool)
	if err != nil {
		t.Fatal(err)
	}
	src := integerVec(3, sg.NumV)
	requireBitIdentical(t, "v3 engine", shardedStepOldSpace(mem, src), shardedStepOldSpace(loaded, src))
}

// TestV3CorruptionRejected truncates and bit-flips a v3 file and
// checks OpenEngineFile fails cleanly instead of crashing later in an
// unchecked kernel.
func TestV3CorruptionRejected(t *testing.T) {
	sg := buildV3TestGraph(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "g.ihtl3")
	if err := sg.SaveFileV3(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name   string
		mutate func(b []byte) []byte
	}{
		{"truncated-header", func(b []byte) []byte { return b[:40] }},
		{"truncated-body", func(b []byte) []byte { return b[:len(b)*2/3] }},
		{"bad-shard-count", func(b []byte) []byte { b[12] = 0xFF; return b }},
		{"bad-bounds", func(b []byte) []byte { b[64] = 0xEE; return b }},
	} {
		mutated := tc.mutate(append([]byte(nil), data...))
		p := filepath.Join(dir, tc.name)
		if err := os.WriteFile(p, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenEngineFile(p); err == nil {
			t.Errorf("%s: corrupt v3 file opened without error", tc.name)
		}
	}
}
