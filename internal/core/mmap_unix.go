//go:build unix

package core

import (
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only. The mapping outlives the
// file descriptor, so callers may close f immediately. On any mmap
// failure (or a zero-length file) it degrades to the portable
// read-into-memory fallback rather than erroring: mapping is an
// optimisation, not a requirement.
func mapFile(f *os.File, size int64) ([]byte, bool, error) {
	if size <= 0 || int64(int(size)) != size {
		return readFileAligned(f, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return readFileAligned(f, size)
	}
	return data, true, nil
}

func unmapFile(data []byte) error { return syscall.Munmap(data) }
