package core

import (
	"fmt"
	"runtime"
	"testing"

	"ihtl/internal/gen"
	"ihtl/internal/sched"
)

// encOptsMatrix is every pipeline x sparse-kernel combination the
// varint encoding must pin bit-for-bit against the flat reference.
func encOptsMatrix() []EngineOptions {
	var opts []EngineOptions
	for _, pipeline := range []EngineOptions{
		{},
		{Phased: true},
		{AtomicFlipped: true},
		{AtomicFlipped: true, Phased: true},
	} {
		for _, k := range []SparseKernel{SparsePull, SparsePullDegree, SparsePB} {
			o := pipeline
			o.SparseKernel = k
			o.BlockEncoding = EncodingVarint
			opts = append(opts, o)
		}
	}
	return opts
}

func encLabel(o EngineOptions) string {
	return fmt.Sprintf("phased=%v atomic=%v sparse=%v", o.Phased, o.AtomicFlipped, o.SparseKernel)
}

// TestEncodingDifferential pins BlockEncoding varint bit-for-bit equal
// to the flat reference across the fused/phased/atomic pipelines, all
// three sparse kernels, worker counts {1, 3, GOMAXPROCS}, and repeated
// steps, with both non-negative and signed/-0.0 sources.
func TestEncodingDifferential(t *testing.T) {
	workerCounts := []int{1, 3, runtime.GOMAXPROCS(0)}
	for name, g := range diffGraphs(t) {
		srcs := map[string][]float64{
			"int":    integerVec(4321, g.NumV),
			"signed": signedVec(99, g.NumV),
		}
		ih, err := Build(g, Params{HubsPerBlock: 64})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range workerCounts {
			t.Run(fmt.Sprintf("%s/w%d", name, workers), func(t *testing.T) {
				pool := sched.NewPool(workers)
				defer pool.Close()
				flat, err := NewEngineOpts(ih, pool, EngineOptions{BlockEncoding: EncodingFlat})
				if err != nil {
					t.Fatal(err)
				}
				for vecName, src := range srcs {
					want := stepOldSpace(ih, flat, src)
					for _, opt := range encOptsMatrix() {
						e, err := NewEngineOpts(ih, pool, opt)
						if err != nil {
							t.Fatal(err)
						}
						if e.Encoding() != EncodingVarint {
							t.Fatalf("engine resolved to %v, want varint", e.Encoding())
						}
						label := vecName + "/" + encLabel(opt)
						requireBitIdentical(t, label, want, stepOldSpace(ih, e, src))
						// A second step proves the decode scratch and the
						// shared buffers were left clean.
						requireBitIdentical(t, label+" (second step)", want, stepOldSpace(ih, e, src))
					}
				}
			})
		}
	}
}

// TestEncodingBatchDifferential is the K-lane mirror: StepBatch under
// varint equals StepBatch under flat for every pipeline and kernel.
func TestEncodingBatchDifferential(t *testing.T) {
	for name, g := range diffGraphs(t) {
		ih, err := Build(g, Params{HubsPerBlock: 64})
		if err != nil {
			t.Fatal(err)
		}
		pool := sched.NewPool(3)
		defer pool.Close()
		for _, k := range []int{2, 5} {
			src := make([]float64, ih.NumV*k)
			for j := 0; j < k; j++ {
				lane := signedVec(uint64(1000+j), ih.NumV)
				for v := 0; v < ih.NumV; v++ {
					src[v*k+j] = lane[v]
				}
			}
			flat, err := NewEngineOpts(ih, pool, EngineOptions{BlockEncoding: EncodingFlat})
			if err != nil {
				t.Fatal(err)
			}
			want := make([]float64, ih.NumV*k)
			flat.StepBatch(src, want, k)
			got := make([]float64, ih.NumV*k)
			for _, opt := range encOptsMatrix() {
				e, err := NewEngineOpts(ih, pool, opt)
				if err != nil {
					t.Fatal(err)
				}
				e.StepBatch(src, got, k)
				requireBitIdentical(t, fmt.Sprintf("%s/k%d/%s", name, k, encLabel(opt)), want, got)
				e.StepBatch(src, got, k)
				requireBitIdentical(t, fmt.Sprintf("%s/k%d/%s (second)", name, k, encLabel(opt)), want, got)
			}
		}
	}
}

// TestEncodedOnlyAutoResolution drops the flat topology and checks the
// auto encoding resolves to varint over the encoded-only graph — and
// that an explicitly flat engine re-materialises the flat arrays and
// still matches.
func TestEncodedOnlyAutoResolution(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(8, 8, 21))
	if err != nil {
		t.Fatal(err)
	}
	ih, err := Build(g, Params{HubsPerBlock: 64})
	if err != nil {
		t.Fatal(err)
	}
	pool := sched.NewPool(3)
	defer pool.Close()
	flat, err := NewEngine(ih, pool)
	if err != nil {
		t.Fatal(err)
	}
	if flat.Encoding() != EncodingFlat {
		t.Fatalf("auto over flat graph resolved to %v", flat.Encoding())
	}
	src := integerVec(5, g.NumV)
	want := stepOldSpace(ih, flat, src)

	ih.EnsureEncoded()
	ih.DropFlatTopology()
	if !ih.EncodedOnly() {
		t.Fatal("EncodedOnly false after DropFlatTopology")
	}
	auto, err := NewEngine(ih, pool)
	if err != nil {
		t.Fatal(err)
	}
	if auto.Encoding() != EncodingVarint {
		t.Fatalf("auto over encoded-only graph resolved to %v", auto.Encoding())
	}
	requireBitIdentical(t, "auto varint", want, stepOldSpace(ih, auto, src))

	// Forcing flat over the encoded-only graph must re-materialise.
	reflat, err := NewEngineOpts(ih, pool, EngineOptions{BlockEncoding: EncodingFlat})
	if err != nil {
		t.Fatal(err)
	}
	if ih.EncodedOnly() {
		t.Fatal("flat engine left the graph encoded-only")
	}
	requireBitIdentical(t, "re-materialised flat", want, stepOldSpace(ih, reflat, src))
}

// TestFlatTopologyRoundTrip pins EnsureEncoded -> DropFlatTopology ->
// EnsureFlatTopology as the identity on the adjacency arrays.
func TestFlatTopologyRoundTrip(t *testing.T) {
	g, err := gen.Web(gen.DefaultWeb(2000, 9))
	if err != nil {
		t.Fatal(err)
	}
	ih, err := Build(g, Params{HubsPerBlock: 64})
	if err != nil {
		t.Fatal(err)
	}
	var wantDsts [][]uint32
	for b := range ih.Blocks {
		wantDsts = append(wantDsts, append([]uint32(nil), ih.Blocks[b].Dsts...))
	}
	wantSrcs := append([]uint32(nil), ih.Sparse.Srcs...)

	ih.EnsureEncoded()
	ih.DropFlatTopology()
	ih.EnsureFlatTopology()
	for b := range ih.Blocks {
		if len(ih.Blocks[b].Dsts) != len(wantDsts[b]) {
			t.Fatalf("block %d: %d dsts, want %d", b, len(ih.Blocks[b].Dsts), len(wantDsts[b]))
		}
		for i := range wantDsts[b] {
			if ih.Blocks[b].Dsts[i] != wantDsts[b][i] {
				t.Fatalf("block %d dst %d: got %d want %d", b, i, ih.Blocks[b].Dsts[i], wantDsts[b][i])
			}
		}
	}
	if len(ih.Sparse.Srcs) != len(wantSrcs) {
		t.Fatalf("sparse: %d srcs, want %d", len(ih.Sparse.Srcs), len(wantSrcs))
	}
	for i := range wantSrcs {
		if ih.Sparse.Srcs[i] != wantSrcs[i] {
			t.Fatalf("sparse src %d: got %d want %d", i, ih.Sparse.Srcs[i], wantSrcs[i])
		}
	}
}

// TestVarintStepAllocationFree pins the varint decode loop's
// zero-allocation steady state for scalar and batched steps.
func TestVarintStepAllocationFree(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(9, 8, 5))
	if err != nil {
		t.Fatal(err)
	}
	ih, err := Build(g, Params{HubsPerBlock: 64})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngineOpts(ih, testPool, EngineOptions{BlockEncoding: EncodingVarint})
	if err != nil {
		t.Fatal(err)
	}
	src := integerVec(3, g.NumV)
	dst := make([]float64, g.NumV)
	for i := 0; i < 3; i++ { // warm worker stacks
		e.Step(src, dst)
	}
	if allocs := testing.AllocsPerRun(20, func() { e.Step(src, dst) }); allocs != 0 {
		t.Errorf("varint Step allocates %.1f objects per run, want 0", allocs)
	}

	const k = 4
	srcB := integerVec(17, g.NumV*k)
	dstB := make([]float64, g.NumV*k)
	e.StepBatch(srcB, dstB, k) // allocates the width's batch state
	for i := 0; i < 3; i++ {
		e.StepBatch(srcB, dstB, k)
	}
	if allocs := testing.AllocsPerRun(20, func() { e.StepBatch(srcB, dstB, k) }); allocs != 0 {
		t.Errorf("varint StepBatch allocates %.1f objects per run, want 0", allocs)
	}
}

// TestEncodingParseAndString pins the flag surface.
func TestEncodingParseAndString(t *testing.T) {
	for _, tc := range []struct {
		s    string
		want BlockEncoding
	}{{"auto", EncodingAuto}, {"", EncodingAuto}, {"flat", EncodingFlat}, {"varint", EncodingVarint}} {
		got, err := ParseBlockEncoding(tc.s)
		if err != nil || got != tc.want {
			t.Fatalf("ParseBlockEncoding(%q) = %v, %v", tc.s, got, err)
		}
	}
	if _, err := ParseBlockEncoding("gzip"); err == nil {
		t.Fatal("unknown encoding accepted")
	}
	if EncodingVarint.String() != "varint" || EncodingFlat.String() != "flat" || EncodingAuto.String() != "auto" {
		t.Fatal("BlockEncoding String mismatch")
	}
}
