package core

import (
	"math"
	"testing"

	"ihtl/internal/gen"
)

// staticFlipVariants are the engine configurations StaticFlipped
// promises bit-for-bit reproducibility for: the fused pipeline over
// both block encodings, and the phased ablation pipeline.
var staticFlipVariants = []struct {
	name string
	opt  EngineOptions
}{
	{"fused-flat", EngineOptions{StaticFlipped: true}},
	{"fused-varint", EngineOptions{StaticFlipped: true, BlockEncoding: EncodingVarint}},
	{"phased", EngineOptions{StaticFlipped: true, Phased: true}},
}

// TestStaticFlippedBitReproducible pins the determinism contract the
// serving layer's replay guarantees are built on: with StaticFlipped,
// two fresh engines over the same topology produce bit-identical
// vectors after a chain of steps (chaining compounds any reassociation
// drift, so a single step passing by luck cannot hide it), and the
// result still matches the reference SpMV to rounding.
func TestStaticFlippedBitReproducible(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(10, 8, 21))
	if err != nil {
		t.Fatal(err)
	}
	ih, err := Build(g, Params{HubsPerBlock: 64})
	if err != nil {
		t.Fatal(err)
	}
	src := randomVec(7, ih.NumV)
	const steps = 6
	for _, variant := range staticFlipVariants {
		t.Run(variant.name, func(t *testing.T) {
			run := func() []float64 {
				e, err := NewEngineOpts(ih, testPool, variant.opt)
				if err != nil {
					t.Fatal(err)
				}
				x := make([]float64, ih.NumV)
				y := make([]float64, ih.NumV)
				copy(x, src)
				for s := 0; s < steps; s++ {
					e.Step(x, y)
					// Keep magnitudes bounded so late steps still
					// exercise low-order mantissa bits.
					for v := range y {
						y[v] = y[v]/float64(len(g.In(0))+8) + src[v]
					}
					x, y = y, x
				}
				return x
			}
			a, b := run(), run()
			for v := range a {
				if math.Float64bits(a[v]) != math.Float64bits(b[v]) {
					t.Fatalf("run-to-run drift at vertex %d: %v vs %v", v, a[v], b[v])
				}
			}
			want := referenceStep(g, original(ih, src))
			got := original(ih, singleStep(t, ih, variant.opt, src))
			for v := range want {
				if math.Abs(got[v]-want[v]) > 1e-9*(math.Abs(want[v])+1) {
					t.Fatalf("vertex %d: %v, reference %v", v, got[v], want[v])
				}
			}
		})
	}
}

func singleStep(t *testing.T, ih *IHTL, opt EngineOptions, src []float64) []float64 {
	t.Helper()
	e, err := NewEngineOpts(ih, testPool, opt)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, ih.NumV)
	e.Step(src, dst)
	return dst
}

// original maps an engine-ID-space vector back to original vertex IDs.
func original(ih *IHTL, x []float64) []float64 {
	out := make([]float64, len(x))
	for nv, old := range ih.OldID {
		out[old] = x[nv]
	}
	return out
}

// TestStaticFlippedBatchLanesMatchScalar pins the property coalesced
// serving leans on: lane j of a K-wide StepBatch equals a scalar Step
// of the same input bit-for-bit, because the pinned task → worker
// assignment makes every partial sum's operand set — and its order —
// identical across K.
func TestStaticFlippedBatchLanesMatchScalar(t *testing.T) {
	const k = 3
	g, err := gen.RMAT(gen.DefaultRMAT(9, 8, 33))
	if err != nil {
		t.Fatal(err)
	}
	ih, err := Build(g, Params{HubsPerBlock: 64}.ForBatch(k))
	if err != nil {
		t.Fatal(err)
	}
	for _, variant := range staticFlipVariants {
		t.Run(variant.name, func(t *testing.T) {
			e, err := NewEngineOpts(ih, testPool, variant.opt)
			if err != nil {
				t.Fatal(err)
			}
			n := ih.NumV
			lanes := make([][]float64, k)
			bsrc := make([]float64, n*k)
			bdst := make([]float64, n*k)
			for j := 0; j < k; j++ {
				lanes[j] = randomVec(uint64(100+j), n)
				for v := 0; v < n; v++ {
					bsrc[v*k+j] = lanes[j][v]
				}
			}
			e.StepBatch(bsrc, bdst, k)
			dst := make([]float64, n)
			for j := 0; j < k; j++ {
				e.Step(lanes[j], dst)
				for v := 0; v < n; v++ {
					if math.Float64bits(bdst[v*k+j]) != math.Float64bits(dst[v]) {
						t.Fatalf("lane %d vertex %d: batch %v, scalar %v", j, v, bdst[v*k+j], dst[v])
					}
				}
			}
		})
	}
}

// TestStaticFlippedRejectsAtomic: the CAS ablation's merge order is
// schedule-dependent no matter how tasks are assigned, so the
// combination must be refused at construction rather than silently
// producing a nondeterministic "deterministic" engine.
func TestStaticFlippedRejectsAtomic(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(7, 6, 5))
	if err != nil {
		t.Fatal(err)
	}
	ih, err := Build(g, Params{HubsPerBlock: 32})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngineOpts(ih, testPool, EngineOptions{StaticFlipped: true, AtomicFlipped: true}); err == nil {
		t.Fatal("StaticFlipped+AtomicFlipped accepted")
	}
}
