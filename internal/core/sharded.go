package core

// Sharded execution of Algorithm 3 (see shard.go for construction and
// DESIGN.md §15 for the model): one SpMV step runs every shard's own
// fused pipeline over its subvector, plus a cross-shard exchange with
// exactly the pb kernel's bin/drain discipline.
//
// Fused mode (the default) is ONE pool dispatch per step. The pool's
// workers are cut into shard-affine groups (sched.ShardGroups): each
// shard's sub-engine is sized for its group and its flipped/sparse
// work is claimed only inside the group, so the shard's hub buffers
// stay hot there. Each worker then:
//
//  1. runs its shard's fused worker body (push, merge, sparse — the
//     unmodified Engine pipeline over the shard's subvectors);
//  2. bins cross-shard contributions: claims source chunks of the
//     exchange CSR and appends (row, value) pairs into exact-capacity
//     per-(chunk, destination-bucket) segments, in ascending source
//     order within the chunk;
//  3. crosses the exchange barrier — every local write and every bin
//     append is complete and published;
//  4. drains destination buckets: replays each bucket's segments in
//     ascending chunk order, ADDING onto the locally-computed dst
//     (no zeroing: the local pipelines wrote every element);
//  5. runs the shared epilogue/health sweep, as in Engine.runEpilogue.
//
// Determinism. Inside a shard, the sub-engine's own argument applies
// unchanged. For the exchange, the pb construction carries over: each
// (chunk, bucket) segment has exact capacity and is appended in
// ascending source order, and a bucket's drain replays segments in
// ascending chunk order — so each destination row's cross-shard
// contributions arrive in ascending sharded-source order no matter
// which workers claimed which chunks or buckets, and the add order
// onto the local value is fixed. Results are bit-for-bit independent
// of the worker count and schedule by construction. (Equality with
// the UNSHARDED engine additionally needs exact addition — sharding
// regroups each row's sum into local-then-cross — which is the same
// integer-valued regime the repository's differential suites pin; see
// DESIGN.md §15.)
//
// Phased mode (EngineOptions.Phased) runs each shard's three-dispatch
// pipeline over the full pool sequentially, then the exchange bin and
// drain as two more dispatches — the ablation shape, kept for the
// same reason Engine keeps stepPhased.

import (
	"context"
	"fmt"
	"time"

	"ihtl/internal/faultinject"
	"ihtl/internal/sched"
	"ihtl/internal/spmv"
	"ihtl/internal/unchecked"
)

// xState is the preallocated cross-shard exchange state: the pbState
// shape (see sparse.go) over the sharded-global ID space. Sized
// exactly at engine construction; a step touches it without
// allocating.
type xState struct {
	// Rows per destination bucket is 1 << shift, from the max resolved
	// HubsPerBlock across shards (the §3.4 cache budget), floored like
	// pbState's. Buckets tile the whole sharded-global range; a bucket
	// may straddle a shard boundary, which is sound because the drain
	// only ADDS to rows the local pipelines already wrote.
	shift      uint
	numBuckets int
	numChunks  int
	// xIndex/xRows alias ShardedIHTL.XIndex/XRows.
	xIndex []int64
	xRows  []uint32
	// chunkBounds are numChunks+1 edge-balanced sharded-global source
	// boundaries; a bin worker claims whole chunks.
	chunkBounds []int
	// binOff/binCur/binRows/binVals are the exact-capacity bucket-major
	// segments, exactly as in pbState (segment of chunk c, bucket b at
	// b*numChunks+c; cursors staged per chunk at claim time).
	binOff  []int64
	binCur  []int64
	binRows []uint32
	binVals []float64
}

// buildXState derives the worker-dependent exchange schedule from the
// serialisable exchange CSR. Returns nil when no cross edges exist.
func buildXState(sg *ShardedIHTL, workers int) *xState {
	if len(sg.XRows) == 0 {
		return nil
	}
	x := &xState{}
	rows := sg.HubsPerBlock
	if rows < 256 {
		rows = 256
	}
	for (1 << (x.shift + 1)) <= rows {
		x.shift++
	}
	x.numBuckets = (sg.NumV + (1 << x.shift) - 1) >> x.shift
	x.numChunks = workers * 4
	x.xIndex, x.xRows = sg.XIndex, sg.XRows
	x.chunkBounds = sched.EdgeBalancedParts(x.xIndex, x.numChunks)
	C, B := x.numChunks, x.numBuckets
	x.binOff = make([]int64, B*C+1)
	for c := 0; c < C; c++ {
		for e := x.xIndex[x.chunkBounds[c]]; e < x.xIndex[x.chunkBounds[c+1]]; e++ {
			b := int(x.xRows[e]) >> x.shift
			x.binOff[b*C+c+1]++
		}
	}
	for i := 0; i < B*C; i++ {
		x.binOff[i+1] += x.binOff[i]
	}
	x.binCur = make([]int64, B*C)
	x.binRows = make([]uint32, len(sg.XRows))
	x.binVals = make([]float64, len(sg.XRows))
	return x
}

// xClock is one worker's exchange busy time, cache-line padded like
// workerClock.
type xClock struct {
	bin   time.Duration
	drain time.Duration
	_     [6]int64
}

// ShardedEngine executes Algorithm 3 over a BuildSharded graph: every
// shard's private fused pipeline plus the deterministic cross-shard
// exchange, as one pool dispatch per step. It implements the same
// stepping surface as Engine (Step/StepEpi/StepBatch and the Ctx
// variants), in sharded-global ID space; use ShardedIHTL.NewID/OldID
// or its Permute helpers to move vectors between ID spaces.
type ShardedEngine struct {
	sg     *ShardedIHTL
	pool   *sched.Pool
	phased bool

	// engs are the per-shard sub-engines. In fused mode each is sized
	// for its shard-affine worker group (groups); in phased mode each
	// is a full-pool engine stepped sequentially.
	engs   []*Engine
	groups *sched.ShardGroups

	// x is the exchange state (nil when no cross edges); binSched and
	// drainSched hand out its chunks and buckets; xBarrier separates
	// the bin and drain phases inside the fused dispatch.
	x          *xState
	binSched   *sched.StealScheduler
	drainSched *sched.StealScheduler
	xBarrier   *sched.Barrier
	xClocks    []xClock

	// Fused-dispatch staging, mirroring Engine's.
	fusedJob       func(w int)
	batchJob       func(w int)
	curSrc, curDst []float64
	curEpi         func(w, lo, hi int)
	epiBarrier     *sched.Barrier
	phasedEpiJob   func(w int)
	phasedBinJob   func(w, c int)
	phasedDrainJob func(w, b int)

	// batchK is the staged batch width; xBinVals are the K-wide bin
	// contributions (slot p's lanes at [p*k, (p+1)*k)), allocated on a
	// width change and reused while the width is stable.
	batchK   int
	xBinVals []float64

	// Numeric-health watchdog state, as in Engine.
	health        spmv.HealthPolicy
	healthArmed   bool
	healthBad     []healthSlot
	healthErr     *spmv.NumericError
	curK          int
	healthScanJob func(w, lo, hi int)

	breakdown Breakdown
}

// NewShardedEngine prepares a sharded engine with default options.
func NewShardedEngine(sg *ShardedIHTL, pool *sched.Pool) (*ShardedEngine, error) {
	return NewShardedEngineOpts(sg, pool, EngineOptions{})
}

// NewShardedEngineOpts is NewShardedEngine with explicit options. The
// options apply per shard (AtomicFlipped, SparseKernel, BlockEncoding
// select every sub-engine's pipeline; Phased selects the sequential
// ablation); Health is handled at the sharded level so the watchdog
// scans the complete destination vector once. EngineOptions.Shards is
// ignored here — the shard count is the graph's.
func NewShardedEngineOpts(sg *ShardedIHTL, pool *sched.Pool, opt EngineOptions) (*ShardedEngine, error) {
	if sg == nil || pool == nil {
		return nil, fmt.Errorf("core: nil ShardedIHTL or pool")
	}
	se := &ShardedEngine{sg: sg, pool: pool, phased: opt.Phased, health: opt.Health}
	w := pool.Workers()
	n := sg.NumShards()
	subOpt := opt
	subOpt.Health = spmv.HealthPolicy{}
	subOpt.Shards = 0
	se.engs = make([]*Engine, n)
	if !se.phased {
		se.groups = sched.NewShardGroups(w, n)
	}
	for s := 0; s < n; s++ {
		nw := w
		if se.groups != nil {
			nw = se.groups.Size(s)
		}
		sub, err := newEngineWorkers(sg.Shards[s], pool, subOpt, nw)
		if err != nil {
			return nil, fmt.Errorf("core: shard %d engine: %w", s, err)
		}
		se.engs[s] = sub
	}
	se.x = buildXState(sg, w)
	if se.x != nil {
		se.binSched = sched.NewStealScheduler(w)
		se.drainSched = sched.NewStealScheduler(w)
		se.xBarrier = sched.NewBarrier(w)
	}
	se.xClocks = make([]xClock, w)
	se.epiBarrier = sched.NewBarrier(w)
	se.fusedJob = se.fusedWorker
	se.batchJob = se.batchWorker
	se.phasedEpiJob = func(worker int) {
		lo, hi := sched.SplitRange(se.sg.NumV, se.pool.Workers(), worker)
		se.curEpi(worker, lo, hi)
	}
	se.phasedBinJob = func(worker, c int) {
		faultinject.Fire(faultinject.SiteShardPush)
		t0 := time.Now()
		if se.curK == 1 {
			se.xBinChunk(c, se.curSrc)
		} else {
			se.xBinChunkBatch(c, se.curSrc)
		}
		se.xClocks[worker].bin += time.Since(t0)
	}
	se.phasedDrainJob = func(worker, b int) {
		faultinject.Fire(faultinject.SiteShardExchange)
		t0 := time.Now()
		if se.curK == 1 {
			se.xDrainBucket(b, se.curDst)
		} else {
			se.xDrainBucketBatch(b, se.curDst)
		}
		se.xClocks[worker].drain += time.Since(t0)
	}
	se.healthBad = make([]healthSlot, w)
	se.healthScanJob = se.healthScan
	se.curK = 1
	se.batchK = 1
	return se, nil
}

// Workers returns the pool's worker count — the number of distinct
// worker indices a StepEpi epilogue can observe.
func (se *ShardedEngine) Workers() int { return se.pool.Workers() }

// NumVertices implements spmv.Stepper.
func (se *ShardedEngine) NumVertices() int { return se.sg.NumV }

// Sharded returns the engine's sharded iHTL graph.
func (se *ShardedEngine) Sharded() *ShardedIHTL { return se.sg }

// NumShards returns the number of shards the engine executes over.
func (se *ShardedEngine) NumShards() int { return len(se.engs) }

// TakeBreakdown returns the accumulated phase breakdown (sub-engine
// phases summed, plus the exchange's bin/drain split) and resets it.
func (se *ShardedEngine) TakeBreakdown() Breakdown {
	b := se.breakdown
	se.breakdown = Breakdown{}
	return b
}

// Step computes dst[v] = Σ_{u ∈ N⁻(v)} src[u] in sharded-global ID
// space. src and dst must have length NumV and must not alias.
//
//ihtl:noalloc
func (se *ShardedEngine) Step(src, dst []float64) { se.StepEpi(src, dst, nil) }

// StepEpi is Step plus the fused element-wise epilogue, with
// Engine.StepEpi's contract (worker indices in [0, Workers())).
//
//ihtl:noalloc
func (se *ShardedEngine) StepEpi(src, dst []float64, epi func(w, lo, hi int)) {
	if herr := se.stepEpi(src, dst, epi); herr != nil {
		se.panicHealth(herr)
	}
}

func (se *ShardedEngine) panicHealth(herr *spmv.NumericError) {
	panic(herr)
}

//ihtl:noalloc
func (se *ShardedEngine) stepEpi(src, dst []float64, epi func(w, lo, hi int)) *spmv.NumericError {
	if len(src) != se.sg.NumV || len(dst) != se.sg.NumV {
		panic("core: vector length mismatch")
	}
	se.armHealth(1)
	if se.phased {
		se.stepPhased(src, dst)
		if se.healthArmed {
			se.curDst = dst
			se.pool.ForStatic(se.sg.NumV, se.healthScanJob)
			se.curDst = nil
		}
		if epi != nil {
			start := time.Now()
			se.curEpi = epi
			se.pool.Run(se.phasedEpiJob)
			se.curEpi = nil
			se.breakdown.Wall += time.Since(start)
		}
	} else {
		se.curEpi = epi
		se.stepFused(src, dst)
		se.curEpi = nil
	}
	se.breakdown.Steps++
	return se.collectHealth()
}

// StepCtx is Step with Engine.StepCtx's cancellation, panic-isolation
// and post-failure recovery contract.
func (se *ShardedEngine) StepCtx(ctx context.Context, src, dst []float64) error {
	return se.StepEpiCtx(ctx, src, dst, nil)
}

// StepEpiCtx is StepEpi with the StepCtx contract.
func (se *ShardedEngine) StepEpiCtx(ctx context.Context, src, dst []float64, epi func(w, lo, hi int)) error {
	end, err := se.pool.Fallible(ctx)
	if err != nil {
		return err
	}
	herr := se.stepEpi(src, dst, epi)
	if err := end(); err != nil {
		se.recoverState()
		return err
	}
	if herr != nil {
		return herr
	}
	return nil
}

// recoverState restores the sharded engine's reusable cross-step state
// after an aborted step: every sub-engine's buffers and barriers, plus
// the exchange barrier and the epilogue barrier. The exchange bin
// cursors need no recovery — every chunk re-stages its cursors at
// claim time, like the pb kernel's.
func (se *ShardedEngine) recoverState() {
	for _, sub := range se.engs {
		sub.recoverState()
	}
	if se.xBarrier != nil {
		se.xBarrier.Reset()
	}
	se.epiBarrier.Reset()
	for w := range se.xClocks {
		se.xClocks[w] = xClock{}
	}
	se.curSrc, se.curDst, se.curEpi = nil, nil, nil
	se.healthArmed = false
}

//ihtl:noalloc
func (se *ShardedEngine) armHealth(k int) {
	se.curK = k
	se.healthErr = nil
	if se.health.Mode == spmv.HealthOff {
		se.healthArmed = false
		return
	}
	se.healthArmed = se.health.Every <= 1 || se.breakdown.Steps%se.health.Every == 0
	if se.healthArmed {
		for i := range se.healthBad {
			se.healthBad[i].count = 0
			se.healthBad[i].first = 0
		}
	}
}

// healthScan is Engine.healthScan over the sharded-global destination
// vector (same poison site, so fault plans address sharded steps the
// same way).
//
//ihtl:noalloc
func (se *ShardedEngine) healthScan(w, lo, hi int) {
	k := se.curK
	dst := se.curDst
	flo, fhi := lo*k, hi*k
	if fhi > flo {
		dst[flo] = faultinject.Poison(faultinject.SiteStepHealth, dst[flo])
	}
	clamp := se.health.Mode == spmv.HealthClamp
	slot := &se.healthBad[w]
	for i := flo; i < fhi; i++ {
		if !isFinite(dst[i]) {
			if slot.count == 0 {
				slot.first = int64(i)
			}
			slot.count++
			if clamp {
				dst[i] = 0
			}
		}
	}
}

func (se *ShardedEngine) collectHealth() *spmv.NumericError {
	if !se.healthArmed {
		return nil
	}
	var count int64
	first := -1
	for w := range se.healthBad {
		s := &se.healthBad[w]
		if s.count == 0 {
			continue
		}
		count += s.count
		if first < 0 || int(s.first) < first {
			first = int(s.first)
		}
	}
	if count == 0 || se.health.Mode == spmv.HealthClamp {
		return nil
	}
	se.healthErr = &spmv.NumericError{Count: count, First: first, Rollback: se.health.Mode == spmv.HealthRollback}
	return se.healthErr
}

// stageShards stages every shard's fused state over its subvector of
// the global vectors and re-arms the exchange schedulers.
//
//ihtl:noalloc
func (se *ShardedEngine) stageShards(src, dst []float64) {
	for s, sub := range se.engs {
		lo, hi := se.sg.Bounds[s], se.sg.Bounds[s+1]
		sub.stageFused(src[lo:hi], dst[lo:hi])
	}
	if se.x != nil {
		se.binSched.Reset(se.x.numChunks)
		se.drainSched.Reset(se.x.numBuckets)
	}
	se.curSrc, se.curDst = src, dst
}

// stepFused runs local pipelines + exchange + epilogue as ONE pool
// dispatch; see fusedWorker.
//
//ihtl:noalloc
func (se *ShardedEngine) stepFused(src, dst []float64) {
	start := time.Now()
	se.stageShards(src, dst)
	se.pool.Run(se.fusedJob)
	se.curSrc, se.curDst = nil, nil
	for _, sub := range se.engs {
		sub.unstageFused()
	}
	se.harvest()
	se.breakdown.Wall += time.Since(start)
}

// fusedWorker is one worker's share of a fused sharded step: the
// worker's shard-group pipelines, then the exchange bin, the exchange
// barrier, the exchange drain, and the shared epilogue. See the file
// comment for the phase-ordering argument.
//
//ihtl:noalloc
func (se *ShardedEngine) fusedWorker(w int) {
	sLo, sHi := se.groups.Shards(w)
	for s := sLo; s < sHi; s++ {
		se.engs[s].fusedJob(se.groups.Local(w, s))
	}
	if se.x == nil {
		se.runEpilogue(w)
		return
	}
	src, dst := se.curSrc, se.curDst
	clk := &se.xClocks[w]
	t0 := time.Now()
	se.binWorker(w, src)
	t1 := time.Now()
	clk.bin += t1.Sub(t0)
	// The drain may read any chunk's cursors and segments, and it adds
	// onto dst elements the local pipelines wrote — so every worker
	// must finish its local pipeline AND its binning first. Local work
	// never crosses groups (per-shard schedulers), so all of a shard's
	// writes precede its group's arrival here; the barrier's atomic
	// RMW total order publishes them to the draining workers.
	if !se.xBarrier.WaitAbort(se.pool) {
		return
	}
	t2 := time.Now()
	se.drainWorker(w, dst)
	clk.drain += time.Since(t2)
	se.runEpilogue(w)
}

// runEpilogue mirrors Engine.runEpilogue with the pool-wide barrier:
// the epilogue and health scan may read any dst element, complete only
// once every shard's pipeline and the exchange drain finish.
//
//ihtl:noalloc
func (se *ShardedEngine) runEpilogue(w int) {
	if se.curEpi == nil && !se.healthArmed {
		return
	}
	if !se.epiBarrier.WaitAbort(se.pool) {
		return
	}
	lo, hi := sched.SplitRange(se.sg.NumV, len(se.xClocks), w)
	if se.healthArmed {
		se.healthScan(w, lo, hi)
	}
	if se.curEpi != nil {
		se.curEpi(w, lo, hi)
	}
}

// binWorker claims exchange source chunks by range stealing.
//
//ihtl:noalloc
func (se *ShardedEngine) binWorker(w int, src []float64) {
	for !se.pool.Aborted() {
		lo, hi, ok := se.binSched.Next(w, 1)
		if !ok {
			return
		}
		faultinject.Fire(faultinject.SiteShardPush)
		for c := lo; c < hi; c++ {
			se.xBinChunk(c, src)
		}
	}
}

// xBinChunk is pbBinChunk over the exchange CSR: stage the chunk's
// bucket cursors, then sweep its sharded-global sources in ascending
// order appending (row, x) pairs. Skipping +0.0 sources is
// bit-transparent by the sparse.go argument — a skipped contribution
// adds +0.0 to a dst element that is never -0.0 (local sums are
// seeded with +0.0).
//
//ihtl:noalloc
//ihtl:nobce
//ihtl:noescape
func (se *ShardedEngine) xBinChunk(c int, src []float64) {
	x := se.x
	C := x.numChunks
	binCur, binOff := x.binCur, x.binOff
	for b := 0; b < x.numBuckets; b++ {
		unchecked.SetAt(binCur, b*C+c, unchecked.At(binOff, b*C+c))
	}
	shift := x.shift
	xIndex, xRows := x.xIndex, x.xRows
	binRows, binVals := x.binRows, x.binVals
	sLo, sHi := unchecked.At(x.chunkBounds, c), unchecked.At(x.chunkBounds, c+1)
	for s := sLo; s < sHi; s++ {
		v := unchecked.At(src, s)
		if spmv.SkipZero(v) {
			continue
		}
		end := unchecked.At(xIndex, s+1)
		for i := unchecked.At(xIndex, s); i < end; i++ {
			row := unchecked.At(xRows, int(i))
			seg := int(row>>shift)*C + c
			p := unchecked.At(binCur, seg)
			unchecked.SetAt(binRows, int(p), row)
			unchecked.SetAt(binVals, int(p), v)
			unchecked.SetAt(binCur, seg, p+1)
		}
	}
}

// drainWorker claims whole destination buckets.
//
//ihtl:noalloc
func (se *ShardedEngine) drainWorker(w int, dst []float64) {
	for !se.pool.Aborted() {
		lo, hi, ok := se.drainSched.Next(w, 1)
		if !ok {
			return
		}
		faultinject.Fire(faultinject.SiteShardExchange)
		for b := lo; b < hi; b++ {
			se.xDrainBucket(b, dst)
		}
	}
}

// xDrainBucket replays bucket b's segments in ascending chunk order,
// ADDING onto dst — unlike pbDrainBucket there is no zeroing, because
// every dst element was already written by its shard's local pipeline
// (merges cover the hub range, the sparse kernels write every non-hub
// row unconditionally). The bucket's rows fit the §3.4 cache budget,
// and no other worker touches them during the drain.
//
//ihtl:noalloc
//ihtl:nobce
//ihtl:noescape
func (se *ShardedEngine) xDrainBucket(b int, dst []float64) {
	x := se.x
	C := x.numChunks
	binOff, binCur := x.binOff, x.binCur
	binRows, binVals := x.binRows, x.binVals
	for c := 0; c < C; c++ {
		seg := b*C + c
		end := unchecked.At(binCur, seg)
		for p := unchecked.At(binOff, seg); p < end; p++ {
			unchecked.AddAt(dst, int(unchecked.At(binRows, int(p))), unchecked.At(binVals, int(p)))
		}
	}
}

// harvest folds the sub-engines' per-worker phase clocks (already
// gathered into their breakdowns by unstageFused or stepPhased) and
// the exchange clocks into the sharded breakdown. Sub-engine Wall and
// Steps are dropped — the sharded engine records its own.
func (se *ShardedEngine) harvest() {
	for _, sub := range se.engs {
		b := sub.TakeBreakdown()
		se.breakdown.Flipped += b.Flipped
		se.breakdown.Merge += b.Merge
		se.breakdown.Sparse += b.Sparse
		se.breakdown.FlippedBusy += b.FlippedBusy
		se.breakdown.MergeBusy += b.MergeBusy
		se.breakdown.SparseBusy += b.SparseBusy
		se.breakdown.BinBusy += b.BinBusy
		se.breakdown.DrainBusy += b.DrainBusy
	}
	for w := range se.xClocks {
		c := &se.xClocks[w]
		se.breakdown.ExchangeBinBusy += c.bin
		se.breakdown.ExchangeDrainBusy += c.drain
		*c = xClock{}
	}
}

// stepPhased is the sequential ablation: every shard's phased pipeline
// over the full pool, then the exchange bin and drain as two more
// dispatches (the dispatch boundary is the bin/drain barrier).
func (se *ShardedEngine) stepPhased(src, dst []float64) {
	start := time.Now()
	for s, sub := range se.engs {
		lo, hi := se.sg.Bounds[s], se.sg.Bounds[s+1]
		sub.stepPhased(src[lo:hi], dst[lo:hi])
	}
	if se.x != nil {
		se.curSrc, se.curDst = src, dst
		se.pool.ForEachPart(se.x.numChunks, se.phasedBinJob)
		se.pool.ForEachPart(se.x.numBuckets, se.phasedDrainJob)
		se.curSrc, se.curDst = nil, nil
	}
	se.harvest()
	se.breakdown.Wall += time.Since(start)
}
