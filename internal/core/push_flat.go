package core

import (
	"ihtl/internal/spmv"
	"ihtl/internal/unchecked"
)

// The flat (uncompressed) flipped-push kernels: one encoded task's
// worth of src[s] -> hub scatter, shared by the fused workers and the
// phased ablation so the inner loop exists exactly once per shape.
// These are the Algorithm 3 lines 1-4 inner loops; together with
// their varint twins in encoding.go they are //ihtl:nobce — the
// ihtlvet -bce gate pins them free of per-edge bounds checks, which
// is why every access goes through the spmv unchecked accessors
// (indices are graph data no BCE analysis can prove in range; see
// spmv/unchecked.go for the safety argument).

// pushTaskFlat pushes flat task bt of block fb into a worker-owned
// hub buffer.
//
//ihtl:noalloc
//ihtl:nobce
//ihtl:noescape
func pushTaskFlat(bt *blockTask, fb *FlippedBlock, src, buf []float64) {
	idx, dsts := fb.Index, fb.Dsts
	for s := bt.lo; s < bt.hi; s++ {
		x := unchecked.At(src, s)
		if spmv.SkipZero(x) {
			continue
		}
		end := unchecked.At(idx, s+1)
		for i := unchecked.At(idx, s); i < end; i++ {
			unchecked.AddAt(buf, int(unchecked.At(dsts, int(i))), x)
		}
	}
}

// pushTaskFlatAtomic is pushTaskFlat for the AtomicFlipped ablation:
// CAS straight into the shared dst.
//
//ihtl:noalloc
//ihtl:nobce
//ihtl:noescape
func pushTaskFlatAtomic(bt *blockTask, fb *FlippedBlock, src, dst []float64) {
	idx, dsts := fb.Index, fb.Dsts
	for s := bt.lo; s < bt.hi; s++ {
		x := unchecked.At(src, s)
		if spmv.SkipZero(x) {
			continue
		}
		end := unchecked.At(idx, s+1)
		for i := unchecked.At(idx, s); i < end; i++ {
			spmv.AtomicAddFloat64(unchecked.PtrAt(dst, int(unchecked.At(dsts, int(i)))), x)
		}
	}
}

// pushTaskFlatBatch is pushTaskFlat with K-wide lanes.
//
//ihtl:noalloc
//ihtl:nobce
//ihtl:noescape
func pushTaskFlatBatch(k int, bt *blockTask, fb *FlippedBlock, src, buf []float64) {
	idx, dsts := fb.Index, fb.Dsts
	for s := bt.lo; s < bt.hi; s++ {
		xs := unchecked.SliceAt(src, s*k, k)
		if spmv.SkipZeroLanes(xs) {
			continue
		}
		end := unchecked.At(idx, s+1)
		for i := unchecked.At(idx, s); i < end; i++ {
			db := int(unchecked.At(dsts, int(i))) * k
			for j, x := range xs {
				unchecked.AddAt(buf, db+j, x)
			}
		}
	}
}

// pushTaskFlatAtomicBatch is pushTaskFlatAtomic with K-wide lanes.
//
//ihtl:noalloc
//ihtl:nobce
//ihtl:noescape
func pushTaskFlatAtomicBatch(k int, bt *blockTask, fb *FlippedBlock, src, dst []float64) {
	idx, dsts := fb.Index, fb.Dsts
	for s := bt.lo; s < bt.hi; s++ {
		xs := unchecked.SliceAt(src, s*k, k)
		if spmv.SkipZeroLanes(xs) {
			continue
		}
		end := unchecked.At(idx, s+1)
		for i := unchecked.At(idx, s); i < end; i++ {
			db := int(unchecked.At(dsts, int(i))) * k
			for j, x := range xs {
				spmv.AtomicAddFloat64(unchecked.PtrAt(dst, db+j), x)
			}
		}
	}
}
