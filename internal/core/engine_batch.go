package core

import (
	"context"
	"time"

	"ihtl/internal/faultinject"
	"ihtl/internal/sched"
	"ihtl/internal/spmv"
)

// Batched (multi-vector) execution of Algorithm 3: StepBatch runs K
// interleaved SpMVs through one traversal of the iHTL topology.
// Vectors are vertex-major interleaved (lane j of vertex v at
// x[v*k+j]), so every flipped edge drives K contiguous buffer lanes
// and every sparse edge K contiguous partial sums — the edge/index
// stream that bounds the scalar kernels is amortised K ways.
//
// The batched pipeline reuses the engine's schedulers, countdown
// gates, barriers and clocks; only the hub buffers and dirty ranges
// are K-wide, held in a batchState allocated on first use of a width
// (and reused while the width is stable, keeping steady-state
// StepBatch allocation-free). To keep a K-wide per-block buffer
// L2-resident the way §3.4 sizes the scalar one, build the IHTL with
// Params.ForBatch(k), which shrinks the effective B to L2/(8·K).

// batchState is the K-wide execution state of one batch width.
type batchState struct {
	k int
	// bufs[w] is worker w's K-wide hub accumulation buffer
	// (NumHubs*k lanes, vertex-major interleaved).
	bufs [][]float64
	// dirty tracks per (worker, block) the HUB range the worker
	// touched (lane-agnostic: lanes of one hub live or die together).
	dirty []dirtyRange
	// hubClearBounds are lane-aligned flat bounds over [0, NumHubs*k)
	// for the AtomicFlipped path's cooperative clear.
	hubClearBounds []int
	// binVals are the K-wide bin contributions of the SparsePB kernel
	// (slot p's lanes at [p*k, (p+1)*k)); the slot offsets, cursors and
	// row array are shared with the scalar pbState.
	binVals []float64
	// fusedJob is the prebuilt worker body, so a fused StepBatch
	// allocates nothing.
	fusedJob func(w int)
}

// ensureBatch returns the engine's batch state for width k, building
// it on first use or on a width change.
func (e *Engine) ensureBatch(k int) *batchState {
	if e.batch != nil && e.batch.k == k {
		return e.batch
	}
	b := &batchState{k: k}
	w := len(e.clocks)
	if e.atomicFlipped {
		if e.ih.NumHubs > 0 {
			b.hubClearBounds = make([]int, w+1)
			for i := 0; i < w; i++ {
				b.hubClearBounds[i], b.hubClearBounds[i+1] =
					sched.SplitRangeStride(e.ih.NumHubs, k, w, i)
			}
		}
		b.fusedJob = func(worker int) { e.fusedWorkerAtomicBatch(b, worker) }
	} else {
		b.bufs = make([][]float64, w)
		for i := range b.bufs {
			b.bufs[i] = make([]float64, e.ih.NumHubs*k)
		}
		b.dirty = make([]dirtyRange, w*len(e.ih.Blocks))
		b.fusedJob = func(worker int) { e.fusedWorkerBufferedBatch(b, worker) }
	}
	if e.pb != nil {
		b.binVals = make([]float64, len(e.pb.binRows)*k)
	}
	e.batch = b
	return b
}

// StepBatch computes dst[v*k+j] = Σ_{u ∈ N⁻(v)} src[u*k+j] for every
// vertex v and lane j < k, in iHTL ID space. src and dst must have
// length NumV*k, be vertex-major interleaved, and must not alias.
// k == 1 delegates to the scalar Step.
//
//ihtl:noalloc
func (e *Engine) StepBatch(src, dst []float64, k int) {
	e.StepBatchEpi(src, dst, k, nil)
}

// StepBatchEpi is StepBatch followed by an element-wise epilogue with
// the same contract as StepEpi's: every worker runs epi(w, lo, hi)
// over its static share [lo, hi) of the VERTEX range [0, NumV) — lane
// j of vertex v is at index v*k+j — once all of dst is complete. Under
// the fused pipeline the epilogue runs inside the same dispatch, so a
// whole K-source analytic iteration costs a single pool round-trip.
// epi may be nil.
//
//ihtl:noalloc
func (e *Engine) StepBatchEpi(src, dst []float64, k int, epi func(w, lo, hi int)) {
	if herr := e.stepBatchEpi(src, dst, k, epi); herr != nil {
		e.panicHealth(herr)
	}
}

// stepBatchEpi is the shared body of StepBatchEpi and StepBatchEpiCtx,
// returning the numeric-health verdict like stepEpi.
//
//ihtl:noalloc
func (e *Engine) stepBatchEpi(src, dst []float64, k int, epi func(w, lo, hi int)) *spmv.NumericError {
	if k == 1 {
		return e.stepEpi(src, dst, epi)
	}
	if k < 1 {
		panic("core: batch width < 1")
	}
	ih := e.ih
	if len(src) != ih.NumV*k || len(dst) != ih.NumV*k {
		panic("core: batch vector length mismatch")
	}
	b := e.ensureBatch(k)
	e.armHealth(k)
	if e.phased {
		e.stepPhasedBatch(b, src, dst)
		if e.healthArmed {
			e.curDst = dst
			e.pool.ForStatic(ih.NumV, e.healthScanJob)
			e.curDst = nil
		}
		if epi != nil {
			start := time.Now()
			e.curEpi = epi
			e.pool.Run(e.phasedEpiJob)
			e.curEpi = nil
			e.breakdown.Wall += time.Since(start)
		}
	} else {
		e.curEpi = epi
		e.stepFusedBatch(b, src, dst)
		e.curEpi = nil
	}
	e.breakdown.Steps++
	return e.collectHealth()
}

// StepBatchCtx is StepBatch with the StepCtx contract (cancellation,
// panic isolation, health verdicts, post-failure state recovery).
func (e *Engine) StepBatchCtx(ctx context.Context, src, dst []float64, k int) error {
	return e.StepBatchEpiCtx(ctx, src, dst, k, nil)
}

// StepBatchEpiCtx is StepBatchEpi with the StepCtx contract.
func (e *Engine) StepBatchEpiCtx(ctx context.Context, src, dst []float64, k int, epi func(w, lo, hi int)) error {
	end, err := e.pool.Fallible(ctx)
	if err != nil {
		return err
	}
	herr := e.stepBatchEpi(src, dst, k, epi)
	if err := end(); err != nil {
		e.recoverState()
		return err
	}
	if herr != nil {
		return herr
	}
	return nil
}

// recoverState clears the K-wide buffers and dirty ranges after an
// aborted batched step; see Engine.recoverState.
func (b *batchState) recoverState() {
	for w := range b.bufs {
		clear(b.bufs[w])
	}
	for i := range b.dirty {
		b.dirty[i] = dirtyRange{}
	}
}

// stepFusedBatch mirrors stepFused for a K-wide dispatch.
//
//ihtl:noalloc
func (e *Engine) stepFusedBatch(b *batchState, src, dst []float64) {
	start := time.Now()
	e.stageFusedBatch(b, src, dst)
	e.pool.Run(b.fusedJob)
	e.unstageFused()
	e.breakdown.Wall += time.Since(start)
}

// stageFusedBatch is stageFused for a K-wide step: same scheduler and
// countdown arming (the schedulers partition tasks, not lanes), with
// the vectors staged for b.fusedJob. The sharded engine stages every
// shard's batch state and runs all their worker bodies under one
// dispatch; unstageFused is the shared teardown.
//
//ihtl:noalloc
func (e *Engine) stageFusedBatch(b *batchState, src, dst []float64) {
	e.flipSched.Reset(len(e.blockTasks))
	e.resetFlipCursors()
	e.resetSparseScheds()
	if !e.atomicFlipped {
		e.blockGate.Reset(e.tasksPerBlock)
	}
	e.curSrc, e.curDst = src, dst
}

// fusedWorkerBufferedBatch is fusedWorkerBuffered with K-wide lanes:
// same task claiming, dirty-range widening, countdown-gated merges and
// barrier-free flow into the sparse pull — only the accumulation is
// over buf[d*k : d*k+k] instead of buf[d].
//
//ihtl:noalloc
func (e *Engine) fusedWorkerBufferedBatch(b *batchState, w int) {
	ih := e.ih
	k := b.k
	src, dst := e.curSrc, e.curDst
	t0 := time.Now()
	if w == 0 {
		for _, blk := range e.emptyBlocks {
			fb := &ih.Blocks[blk]
			clear(dst[fb.HubLo*k : fb.HubHi*k])
		}
	}
	nb := len(ih.Blocks)
	buf := b.bufs[w]
	var mergeTime time.Duration
	for !e.pool.Aborted() {
		lo, hi, ok := e.claimFlip(w)
		if !ok {
			break
		}
		for ti := lo; ti < hi; ti++ {
			faultinject.Fire(faultinject.SiteFlippedTask)
			bt := &e.blockTasks[ti]
			fb := &ih.Blocks[bt.block]
			if e.varint {
				e.pushTaskEncBatch(w, k, bt, fb, src, buf)
			} else {
				pushTaskFlatBatch(k, bt, fb, src, buf)
			}
			if bt.dHi > bt.dLo {
				dr := &b.dirty[w*nb+bt.block]
				if dr.hi <= dr.lo {
					dr.lo, dr.hi = bt.dLo, bt.dHi
				} else {
					if bt.dLo < dr.lo {
						dr.lo = bt.dLo
					}
					if bt.dHi > dr.hi {
						dr.hi = bt.dHi
					}
				}
			}
			if e.blockGate.Done(bt.block) {
				faultinject.Fire(faultinject.SiteMergeBlock)
				tm := time.Now()
				e.mergeBlockBatch(b, bt.block, dst)
				mergeTime += time.Since(tm)
			}
		}
	}
	t1 := time.Now()
	clk := &e.clocks[w]
	clk.flipped += t1.Sub(t0) - mergeTime
	clk.merge += mergeTime
	e.sparseWorkerBatch(b, w, src, dst)
	e.runEpilogue(w)
}

// mergeBlockBatch folds every worker's dirty hub range of block blk
// into dst, K lanes per hub, and resets the consumed buffer lanes.
// Same ownership argument as mergeBlock: the caller holds the block's
// completion, and hub h's lanes [h*k, h*k+k) are dirty or clean as a
// unit because the dirty ranges track hubs, not lanes.
//
//ihtl:noalloc
func (e *Engine) mergeBlockBatch(b *batchState, blk int, dst []float64) {
	fb := &e.ih.Blocks[blk]
	k := b.k
	clear(dst[fb.HubLo*k : fb.HubHi*k])
	nb := len(e.ih.Blocks)
	for t := range b.bufs {
		dr := &b.dirty[t*nb+blk]
		if dr.hi <= dr.lo {
			continue
		}
		buf := b.bufs[t]
		for i := dr.lo * k; i < dr.hi*k; i++ {
			dst[i] += buf[i]
			buf[i] = 0
		}
		dr.lo, dr.hi = 0, 0
	}
}

// fusedWorkerAtomicBatch is the AtomicFlipped ablation's batched fused
// worker: cooperative lane-aligned hub zeroing, the clear barrier,
// stolen flipped tasks with K CAS updates per edge, then the batched
// sparse pull.
//
//ihtl:noalloc
func (e *Engine) fusedWorkerAtomicBatch(b *batchState, w int) {
	ih := e.ih
	k := b.k
	src, dst := e.curSrc, e.curDst
	clk := &e.clocks[w]
	if ih.NumHubs > 0 {
		t0 := time.Now()
		clear(dst[b.hubClearBounds[w]:b.hubClearBounds[w+1]])
		clk.merge += time.Since(t0)
		if !e.clearBarrier.WaitAbort(e.pool) {
			return
		}
	}
	t1 := time.Now()
	for !e.pool.Aborted() {
		lo, hi, ok := e.claimFlip(w)
		if !ok {
			break
		}
		for ti := lo; ti < hi; ti++ {
			faultinject.Fire(faultinject.SiteFlippedTask)
			bt := &e.blockTasks[ti]
			fb := &ih.Blocks[bt.block]
			if e.varint {
				e.pushTaskEncAtomicBatch(w, k, bt, fb, src, dst)
				continue
			}
			pushTaskFlatAtomicBatch(k, bt, fb, src, dst)
		}
	}
	t2 := time.Now()
	clk.flipped += t2.Sub(t1)
	e.sparseWorkerBatch(b, w, src, dst)
	e.runEpilogue(w)
}

// stepPhasedBatch is the pre-fusion three-dispatch pipeline with
// K-wide lanes, kept for the same ablation EngineOptions.Phased serves
// in the scalar path.
func (e *Engine) stepPhasedBatch(b *batchState, src, dst []float64) {
	ih := e.ih
	k := b.k

	// Phase 1 — K-wide push traversal of the flipped blocks.
	t0 := time.Now()
	if e.atomicFlipped {
		//ihtl:allow-nosite trivial zeroing sweep with no recovery path of its own
		e.pool.ForStatic(ih.NumHubs*k, func(w, lo, hi int) {
			clear(dst[lo:hi])
		})
		e.pool.ForEachPart(len(e.blockTasks), func(w, task int) {
			bt := &e.blockTasks[task]
			fb := &ih.Blocks[bt.block]
			if e.varint {
				e.pushTaskEncAtomicBatch(w, k, bt, fb, src, dst)
				return
			}
			pushTaskFlatAtomicBatch(k, bt, fb, src, dst)
		})
	} else {
		pushTask := func(w, task int) {
			bt := &e.blockTasks[task]
			fb := &ih.Blocks[bt.block]
			buf := b.bufs[w]
			if e.varint {
				e.pushTaskEncBatch(w, k, bt, fb, src, buf)
				return
			}
			pushTaskFlatBatch(k, bt, fb, src, buf)
		}
		if e.staticFlip {
			// See stepPhased: pinned assignment + fixed-order phase 2
			// fold keeps the batched phased pipeline bit-reproducible.
			e.pool.Run(func(w int) {
				for task := e.flipBounds[w]; task < e.flipBounds[w+1]; task++ {
					faultinject.Fire(faultinject.SiteFlippedTask)
					pushTask(w, task)
				}
			})
		} else {
			e.pool.ForEachPart(len(e.blockTasks), pushTask)
		}
	}
	t1 := time.Now()

	// Phase 2 — aggregate the K-wide thread buffers into hub data.
	// The flat sweep over [0, NumHubs*k) is element-wise, so the split
	// needs no lane alignment.
	if !e.atomicFlipped {
		bufs := b.bufs
		e.pool.ForStatic(ih.NumHubs*k, func(w, lo, hi int) {
			faultinject.Fire(faultinject.SiteMergeBlock)
			for i := lo; i < hi; i++ {
				sum := 0.0
				for t := range bufs {
					sum += bufs[t][i]
					bufs[t][i] = 0
				}
				dst[i] = sum
			}
		})
	}
	t2 := time.Now()

	// Phase 3 — the K-wide sparse block under the configured kernel.
	switch e.sparseKernel {
	case SparsePullDegree:
		if np := len(e.heavyBounds) - 1; np > 0 {
			e.pool.ForEachPart(np, func(w, part int) {
				e.sparseHeavyPartBatch(k, part, src, dst)
			})
		}
		if np := len(e.lightBounds) - 1; np > 0 {
			e.pool.ForEachPart(np, func(w, part int) {
				e.sparseLightPartBatch(k, part, src, dst)
			})
		}
	case SparsePB:
		if e.pb != nil {
			e.pool.ForEachPart(e.pb.numChunks, func(w, c int) {
				e.pbBinChunkBatch(b, c, src)
			})
			e.pool.ForEachPart(e.pb.numBuckets, func(w, bkt int) {
				e.pbDrainBucketBatch(b, bkt, dst)
			})
		}
	default:
		if nparts := len(e.sparseBounds) - 1; nparts > 0 {
			e.pool.ForEachPart(nparts, func(w, part int) {
				e.sparsePullRangeBatch(k, e.sparseBounds[part], e.sparseBounds[part+1], src, dst)
			})
		}
	}
	t3 := time.Now()

	e.breakdown.Flipped += t1.Sub(t0)
	e.breakdown.Merge += t2.Sub(t1)
	e.breakdown.Sparse += t3.Sub(t2)
	e.breakdown.Wall += t3.Sub(t0)
}

// PermuteToNewBatch scatters K interleaved vectors indexed by original
// IDs into iHTL ID order: out[NewID[v]*k+j] = in[v*k+j].
func (ih *IHTL) PermuteToNewBatch(in, out []float64, k int) {
	if len(in) != ih.NumV*k || len(out) != ih.NumV*k {
		panic("core: batch vector length mismatch")
	}
	for v, nv := range ih.NewID {
		copy(out[int(nv)*k:int(nv)*k+k], in[v*k:v*k+k])
	}
}

// PermuteToOldBatch is the inverse of PermuteToNewBatch:
// out[v*k+j] = in[NewID[v]*k+j].
func (ih *IHTL) PermuteToOldBatch(in, out []float64, k int) {
	if len(in) != ih.NumV*k || len(out) != ih.NumV*k {
		panic("core: batch vector length mismatch")
	}
	for v, nv := range ih.NewID {
		copy(out[v*k:v*k+k], in[int(nv)*k:int(nv)*k+k])
	}
}
