package core

import "ihtl/internal/graph"

// GraphStats reports the Table 5 "Graph Statistics" columns plus the
// Table 4 topology accounting for a built iHTL graph.
type GraphStats struct {
	// NumBlocks is "#FB".
	NumBlocks int
	// VWEHFrac is |VWEH| / |V| ("VWEH" column).
	VWEHFrac float64
	// MinHubDegree is the smallest in-degree among hubs.
	MinHubDegree int
	// FlippedEdgeFrac is the fraction of edges in flipped blocks
	// ("FB Edges").
	FlippedEdgeFrac float64
	// NumHubs and HubFrac characterise the hub set.
	NumHubs int
	HubFrac float64
	// TopologyBytes is the iHTL topology footprint; CSCBytes the
	// plain CSC baseline (Table 4).
	TopologyBytes int64
	CSCBytes      int64
	// OverheadFrac is TopologyBytes/CSCBytes - 1 (Table 4's
	// "iHTL Overhead %").
	OverheadFrac float64
}

// Stats computes the structural statistics of ih; g must be the graph
// ih was built from (used only for the CSC baseline size).
func (ih *IHTL) Stats(g *graph.Graph) GraphStats {
	s := GraphStats{
		NumBlocks:    len(ih.Blocks),
		MinHubDegree: ih.MinHubDegree,
		NumHubs:      ih.NumHubs,
	}
	if ih.NumV > 0 {
		s.VWEHFrac = float64(ih.NumVWEH) / float64(ih.NumV)
		s.HubFrac = float64(ih.NumHubs) / float64(ih.NumV)
	}
	if ih.NumE > 0 {
		s.FlippedEdgeFrac = float64(ih.FlippedEdges()) / float64(ih.NumE)
	}
	s.TopologyBytes = ih.TopologyBytes()
	_, s.CSCBytes = g.TopologyBytes()
	if s.CSCBytes > 0 {
		s.OverheadFrac = float64(s.TopologyBytes)/float64(s.CSCBytes) - 1
	}
	return s
}

// TopologyBytes returns the memory footprint of the iHTL topology
// (Table 4): per flipped block an index array over all push sources
// (8 B each) plus 4 B per edge; the sparse block's index and source
// arrays; and the two relabeling arrays are excluded, matching the
// paper's comparison of adjacency topology data only.
func (ih *IHTL) TopologyBytes() int64 {
	var b int64
	for i := range ih.Blocks {
		fb := &ih.Blocks[i]
		b += int64(len(fb.Index))*8 + int64(len(fb.Dsts))*4
	}
	b += int64(len(ih.Sparse.Index))*8 + int64(len(ih.Sparse.Srcs))*4
	return b
}

// ExecBreakdown reports the Table 5 "Exec. Breakdown" columns derived
// from an Engine's accumulated Breakdown.
type ExecBreakdown struct {
	// FlippedTimeFrac is "FB Time": time share of the push phase.
	FlippedTimeFrac float64
	// MergeTimeFrac is "Buffer Merging".
	MergeTimeFrac float64
	// FlippedSpeed is "FB Speed": flipped edge share divided by
	// flipped time share — > 1 means a flipped-block edge processes
	// faster than the graph average.
	FlippedSpeed float64
}

// ExecStats combines a structural edge share with a time breakdown.
func (ih *IHTL) ExecStats(b Breakdown) ExecBreakdown {
	var e ExecBreakdown
	e.FlippedTimeFrac = b.FlippedFrac()
	e.MergeTimeFrac = b.MergeFrac()
	if ih.NumE > 0 && e.FlippedTimeFrac > 0 {
		edgeFrac := float64(ih.FlippedEdges()) / float64(ih.NumE)
		// Charge the merge to the flipped phase: it exists only
		// because of buffering.
		timeFrac := e.FlippedTimeFrac + e.MergeTimeFrac
		if timeFrac > 0 {
			e.FlippedSpeed = edgeFrac / timeFrac
		}
	}
	return e
}
