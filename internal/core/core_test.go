package core

import (
	"math"
	"testing"

	"ihtl/internal/gen"
	"ihtl/internal/graph"
	"ihtl/internal/sched"
	"ihtl/internal/xrand"
	"testing/quick"
)

var testPool = sched.NewPool(4)

// TestPaperExample verifies iHTL construction against the paper's
// worked example (Figures 2, 4, 5, 6): with B=2 the algorithm must
// select exactly the two in-hubs #3 and #7 (0-indexed 2 and 6),
// classify {2,5,6,8}→VWEH and {1,4}→FV, and produce the Figure 4
// relabeling array [3,7,2,5,6,8,1,4].
func TestPaperExample(t *testing.T) {
	g := graph.PaperExample()
	ih, err := Build(g, Params{HubsPerBlock: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ih.NumHubs != 2 {
		t.Fatalf("NumHubs = %d, want 2", ih.NumHubs)
	}
	if len(ih.Blocks) != 1 {
		t.Fatalf("#FB = %d, want 1", len(ih.Blocks))
	}
	if ih.NumVWEH != 4 || ih.NumFV != 2 {
		t.Fatalf("VWEH=%d FV=%d, want 4 and 2", ih.NumVWEH, ih.NumFV)
	}
	// Figure 4 relabeling array (element v stores the original ID of
	// new vertex v), converted to 0-indexed: [2,6,1,4,5,7,0,3].
	wantOld := []graph.VID{2, 6, 1, 4, 5, 7, 0, 3}
	for nv, old := range wantOld {
		if ih.OldID[nv] != old {
			t.Fatalf("OldID = %v, want %v (Figure 4)", ih.OldID, wantOld)
		}
	}
	// Flipped block must contain exactly the 9 in-edges of the hubs
	// (in-degrees 5 + 4); sparse block the remaining 5.
	if fe := ih.FlippedEdges(); fe != 9 {
		t.Fatalf("flipped edges = %d, want 9", fe)
	}
	if se := ih.Sparse.NumEdges(); se != 5 {
		t.Fatalf("sparse edges = %d, want 5", se)
	}
	if ih.MinHubDegree != 4 {
		t.Fatalf("MinHubDegree = %d, want 4", ih.MinHubDegree)
	}
}

// TestPaperExampleAdjacency checks the relabeled adjacency matrix of
// Figure 6: e.g. new vertex 4 (original #6) has out-edges to new
// {0,1,3,5} and the zero block (FV rows x hub columns) is empty.
func TestPaperExampleAdjacency(t *testing.T) {
	g := graph.PaperExample()
	ih, err := Build(g, Params{HubsPerBlock: 2})
	if err != nil {
		t.Fatal(err)
	}
	rg, err := graph.Relabel(g, ih.NewID)
	if err != nil {
		t.Fatal(err)
	}
	// Original #6 (0-indexed 5) -> new ID 4; its out-neighbours
	// {2,6,4,7} (0-indexed) map to {0,1,3,5}.
	want := []graph.VID{0, 1, 3, 5}
	got := rg.Out(4)
	if len(got) != len(want) {
		t.Fatalf("Out(4) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Out(4) = %v, want %v", got, want)
		}
	}
	// Zero block: FV rows (new IDs 6,7) must have no hub columns.
	for _, fv := range []graph.VID{6, 7} {
		for _, d := range rg.Out(fv) {
			if int(d) < ih.NumHubs {
				t.Fatalf("FV vertex %d has edge to hub %d — zero block violated", fv, d)
			}
		}
	}
}

// referenceStep computes the SpMV ground truth in original ID space.
func referenceStep(g *graph.Graph, src []float64) []float64 {
	dst := make([]float64, g.NumV)
	for v := 0; v < g.NumV; v++ {
		sum := 0.0
		for _, u := range g.In(graph.VID(v)) {
			sum += src[u]
		}
		dst[v] = sum
	}
	return dst
}

func randomVec(seed uint64, n int) []float64 {
	rng := xrand.New(seed)
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64() + 0.1
	}
	return v
}

// checkStepMatchesReference builds iHTL with params p and verifies a
// Step equals the reference in original ID space.
func checkStepMatchesReference(t *testing.T, g *graph.Graph, p Params) *IHTL {
	t.Helper()
	ih, err := Build(g, p)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(ih, testPool)
	if err != nil {
		t.Fatal(err)
	}
	srcOld := randomVec(99, g.NumV)
	want := referenceStep(g, srcOld)

	srcNew := make([]float64, g.NumV)
	dstNew := make([]float64, g.NumV)
	ih.PermuteToNew(srcOld, srcNew)
	e.Step(srcNew, dstNew)
	got := make([]float64, g.NumV)
	ih.PermuteToOld(dstNew, got)

	for v := range want {
		if math.Abs(want[v]-got[v]) > 1e-9*(1+math.Abs(want[v])) {
			t.Fatalf("vertex %d: got %g want %g (params %+v)", v, got[v], want[v], p)
		}
	}
	return ih
}

func TestStepMatchesReferenceAcrossGraphs(t *testing.T) {
	rmat, err := gen.RMAT(gen.DefaultRMAT(10, 8, 3))
	if err != nil {
		t.Fatal(err)
	}
	web, err := gen.Web(gen.DefaultWeb(5000, 4))
	if err != nil {
		t.Fatal(err)
	}
	graphs := map[string]*graph.Graph{
		"paper": graph.PaperExample(),
		"star":  graph.Star(200),
		"cycle": graph.Cycle(64),
		"k7":    graph.Complete(7),
		"rmat":  rmat,
		"web":   web,
	}
	for name, g := range graphs {
		for _, b := range []int{2, 16, 256, 1 << 20} {
			t.Run(name, func(t *testing.T) {
				checkStepMatchesReference(t, g, Params{HubsPerBlock: b})
			})
		}
	}
}

func TestEveryEdgeExactlyOnce(t *testing.T) {
	// The §2.4 invariant: "In iHTL every edge is traversed exactly
	// once". Check the multiset of (src,dst) pairs across blocks +
	// sparse equals the original edge set.
	g, err := gen.RMAT(gen.DefaultRMAT(9, 10, 6))
	if err != nil {
		t.Fatal(err)
	}
	ih, err := Build(g, Params{HubsPerBlock: 32})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[[2]graph.VID]int)
	for b := range ih.Blocks {
		fb := &ih.Blocks[b]
		for s := 0; s < ih.NumPushSources(); s++ {
			for i := fb.Index[s]; i < fb.Index[s+1]; i++ {
				d := fb.Dsts[i]
				if int(d) < fb.HubLo || int(d) >= fb.HubHi {
					t.Fatalf("block %d contains foreign hub %d", b, d)
				}
				seen[[2]graph.VID{ih.OldID[s], ih.OldID[d]}]++
			}
		}
	}
	n := ih.NumV - ih.Sparse.DestLo
	for i := 0; i < n; i++ {
		dOld := ih.OldID[ih.Sparse.DestLo+i]
		for j := ih.Sparse.Index[i]; j < ih.Sparse.Index[i+1]; j++ {
			seen[[2]graph.VID{ih.OldID[ih.Sparse.Srcs[j]], dOld}]++
		}
	}
	if int64(len(seen)) != g.NumE {
		t.Fatalf("coverage: %d distinct edges, want %d", len(seen), g.NumE)
	}
	for e, c := range seen {
		if c != 1 {
			t.Fatalf("edge %v traversed %d times", e, c)
		}
		if !g.HasEdge(e[0], e[1]) {
			t.Fatalf("phantom edge %v", e)
		}
	}
}

func TestRelabelingIsPermutation(t *testing.T) {
	g, err := gen.Web(gen.DefaultWeb(3000, 8))
	if err != nil {
		t.Fatal(err)
	}
	ih, err := Build(g, Params{HubsPerBlock: 64})
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, g.NumV)
	for v := 0; v < g.NumV; v++ {
		nv := ih.NewID[v]
		if seen[nv] {
			t.Fatalf("NewID duplicates %d", nv)
		}
		seen[nv] = true
		if ih.OldID[nv] != graph.VID(v) {
			t.Fatalf("OldID/NewID not inverse at %d", v)
		}
	}
	// Class ordering: hubs < VWEH < FV in new ID space, and hubs in
	// descending in-degree order.
	for h := 1; h < ih.NumHubs; h++ {
		if g.InDegree(ih.OldID[h-1]) < g.InDegree(ih.OldID[h]) {
			t.Fatal("hubs not in descending degree order")
		}
	}
	// Order preservation within VWEH and FV (§3.2: "keeps the
	// initial order between vertices of the same type").
	for i := ih.NumHubs + 1; i < ih.NumHubs+ih.NumVWEH; i++ {
		if ih.OldID[i-1] >= ih.OldID[i] {
			t.Fatal("VWEH original order not preserved")
		}
	}
	for i := ih.NumHubs + ih.NumVWEH + 1; i < ih.NumV; i++ {
		if ih.OldID[i-1] >= ih.OldID[i] {
			t.Fatal("FV original order not preserved")
		}
	}
}

func TestVWEHAndFVClassification(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(9, 8, 12))
	if err != nil {
		t.Fatal(err)
	}
	ih, err := Build(g, Params{HubsPerBlock: 16})
	if err != nil {
		t.Fatal(err)
	}
	isHub := func(old graph.VID) bool { return int(ih.NewID[old]) < ih.NumHubs }
	for v := 0; v < g.NumV; v++ {
		hasHubEdge := false
		for _, d := range g.Out(graph.VID(v)) {
			if isHub(d) {
				hasHubEdge = true
				break
			}
		}
		nv := int(ih.NewID[v])
		switch {
		case nv < ih.NumHubs:
			// hub — no classification constraint on its out-edges
		case nv < ih.NumHubs+ih.NumVWEH:
			if !hasHubEdge {
				t.Fatalf("vertex %d classified VWEH without hub edge", v)
			}
		default:
			if hasHubEdge {
				t.Fatalf("vertex %d classified FV but has hub edge", v)
			}
		}
	}
}

func TestMultipleFlippedBlocks(t *testing.T) {
	// Force several blocks with a tiny B on a hub-rich graph.
	g, err := gen.RMAT(gen.DefaultRMAT(11, 12, 2))
	if err != nil {
		t.Fatal(err)
	}
	ih, err := Build(g, Params{HubsPerBlock: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(ih.Blocks) < 2 {
		t.Fatalf("expected multiple flipped blocks, got %d", len(ih.Blocks))
	}
	// Block ranges tile [0, NumHubs).
	for i, b := range ih.Blocks {
		if b.HubLo != i*ih.HubsPerBlock {
			t.Fatalf("block %d starts at %d", i, b.HubLo)
		}
		if i == len(ih.Blocks)-1 {
			if b.HubHi != ih.NumHubs {
				t.Fatalf("last block ends at %d, want %d", b.HubHi, ih.NumHubs)
			}
		} else if b.HubHi != (i+1)*ih.HubsPerBlock {
			t.Fatalf("block %d ends at %d", i, b.HubHi)
		}
	}
	// §3.3 admission: every non-first block's source population must
	// exceed half of the first block's.
	for i := 1; i < len(ih.Blocks); i++ {
		if float64(ih.Blocks[i].Sources) <= 0.5*float64(ih.Blocks[0].Sources) {
			t.Fatalf("block %d admitted with %d sources vs FV1=%d",
				i, ih.Blocks[i].Sources, ih.Blocks[0].Sources)
		}
	}
	checkStepMatchesReference(t, g, Params{HubsPerBlock: 8})
}

func TestNoHubsOnUniformGraph(t *testing.T) {
	// A cycle has uniform in-degree 1 < MinHubDegree: no flipped
	// blocks, pure pull, still correct.
	g := graph.Cycle(100)
	ih, err := Build(g, Params{HubsPerBlock: 8})
	if err != nil {
		t.Fatal(err)
	}
	if ih.NumHubs != 0 || len(ih.Blocks) != 0 {
		t.Fatalf("uniform graph selected %d hubs, %d blocks", ih.NumHubs, len(ih.Blocks))
	}
	if ih.Sparse.NumEdges() != g.NumE {
		t.Fatal("all edges should be in the sparse block")
	}
	checkStepMatchesReference(t, g, Params{HubsPerBlock: 8})
}

func TestAllHubsDegenerate(t *testing.T) {
	// B >= NumV puts every qualifying vertex in one block; complete
	// graph has all in-degrees equal.
	g := graph.Complete(16)
	ih, err := Build(g, Params{HubsPerBlock: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if ih.NumHubs != 16 || ih.NumFV != 0 {
		t.Fatalf("hubs=%d fv=%d", ih.NumHubs, ih.NumFV)
	}
	if ih.Sparse.NumEdges() != 0 {
		t.Fatal("sparse block should be empty")
	}
	checkStepMatchesReference(t, g, Params{HubsPerBlock: 1000})
}

func TestEmptyGraph(t *testing.T) {
	g, err := graph.Build(0, nil, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ih, err := Build(g, Params{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(ih, testPool)
	if err != nil {
		t.Fatal(err)
	}
	e.Step(nil, nil)
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, Params{}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := Build(graph.Star(4), Params{FVThreshold: 2}); err == nil {
		t.Error("bad threshold accepted")
	}
	if _, err := Build(graph.Star(4), Params{HubsPerBlock: -1}); err == nil {
		t.Error("negative B accepted")
	}
	if _, err := NewEngine(nil, testPool); err == nil {
		t.Error("nil IHTL accepted")
	}
}

func TestDefaultParams(t *testing.T) {
	p := Params{}.withDefaults()
	if p.HubsPerBlock != DefaultL2Bytes/DefaultVertexBytes {
		t.Fatalf("default B = %d", p.HubsPerBlock)
	}
	if p.FVThreshold != 0.5 || p.MaxBlocks != 64 {
		t.Fatalf("defaults wrong: %+v", p)
	}
	// Explicit cache size: Table 6's sweep (L2/2 => half the hubs).
	half := Params{CacheBytes: DefaultL2Bytes / 2}.withDefaults()
	if half.HubsPerBlock != p.HubsPerBlock/2 {
		t.Fatalf("CacheBytes not honoured: %d", half.HubsPerBlock)
	}
}

func TestPermuteRoundTrip(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(8, 6, 1))
	if err != nil {
		t.Fatal(err)
	}
	ih, err := Build(g, Params{HubsPerBlock: 8})
	if err != nil {
		t.Fatal(err)
	}
	orig := randomVec(5, g.NumV)
	tmp := make([]float64, g.NumV)
	back := make([]float64, g.NumV)
	ih.PermuteToNew(orig, tmp)
	ih.PermuteToOld(tmp, back)
	for i := range orig {
		if orig[i] != back[i] {
			t.Fatal("permute round trip failed")
		}
	}
}

func TestBreakdownAccumulates(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(9, 8, 4))
	if err != nil {
		t.Fatal(err)
	}
	ih, err := Build(g, Params{HubsPerBlock: 64})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(ih, testPool)
	if err != nil {
		t.Fatal(err)
	}
	src := randomVec(1, g.NumV)
	dst := make([]float64, g.NumV)
	for i := 0; i < 3; i++ {
		e.Step(src, dst)
	}
	b := e.TakeBreakdown()
	if b.Steps != 3 {
		t.Fatalf("Steps = %d", b.Steps)
	}
	if b.Total() <= 0 {
		t.Fatal("no time recorded")
	}
	f := b.FlippedFrac() + b.MergeFrac()
	if f < 0 || f > 1 {
		t.Fatalf("fractions out of range: %v", f)
	}
	if again := e.TakeBreakdown(); again.Steps != 0 {
		t.Fatal("TakeBreakdown did not reset")
	}
	exec := ih.ExecStats(b)
	if exec.FlippedSpeed <= 0 {
		t.Fatalf("FlippedSpeed = %v", exec.FlippedSpeed)
	}
}

func TestStatsFields(t *testing.T) {
	g, err := gen.Web(gen.DefaultWeb(5000, 2))
	if err != nil {
		t.Fatal(err)
	}
	ih, err := Build(g, Params{HubsPerBlock: 32})
	if err != nil {
		t.Fatal(err)
	}
	s := ih.Stats(g)
	if s.NumBlocks != len(ih.Blocks) || s.NumHubs != ih.NumHubs {
		t.Fatal("stats do not match structure")
	}
	if s.FlippedEdgeFrac <= 0 || s.FlippedEdgeFrac > 1 {
		t.Fatalf("FlippedEdgeFrac = %v", s.FlippedEdgeFrac)
	}
	if s.VWEHFrac <= 0 || s.VWEHFrac >= 1 {
		t.Fatalf("VWEHFrac = %v", s.VWEHFrac)
	}
	if s.TopologyBytes <= s.CSCBytes {
		// iHTL topology replicates index arrays; on hubby graphs it
		// must be at least as large as plain CSC.
		t.Fatalf("topology %d not above CSC %d", s.TopologyBytes, s.CSCBytes)
	}
	if s.OverheadFrac <= 0 {
		t.Fatalf("OverheadFrac = %v", s.OverheadFrac)
	}
}

func TestStepRejectsBadLengths(t *testing.T) {
	g := graph.Star(10)
	ih, _ := Build(g, Params{HubsPerBlock: 2})
	e, _ := NewEngine(ih, testPool)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	e.Step(make([]float64, 2), make([]float64, g.NumV))
}

func TestAtomicFlippedAblationMatchesBuffered(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(10, 10, 8))
	if err != nil {
		t.Fatal(err)
	}
	ih, err := Build(g, Params{HubsPerBlock: 64})
	if err != nil {
		t.Fatal(err)
	}
	buffered, err := NewEngine(ih, testPool)
	if err != nil {
		t.Fatal(err)
	}
	atomic, err := NewEngineOpts(ih, testPool, EngineOptions{AtomicFlipped: true})
	if err != nil {
		t.Fatal(err)
	}
	src := randomVec(4, g.NumV)
	a := make([]float64, g.NumV)
	b := make([]float64, g.NumV)
	buffered.Step(src, a)
	atomic.Step(src, b)
	for v := range a {
		if math.Abs(a[v]-b[v]) > 1e-9*(1+math.Abs(a[v])) {
			t.Fatalf("atomic ablation differs at %d: %g vs %g", v, b[v], a[v])
		}
	}
}

func TestDegreeSortClassesAblation(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(10, 8, 14))
	if err != nil {
		t.Fatal(err)
	}
	ih, err := Build(g, Params{HubsPerBlock: 32, DegreeSortClasses: true})
	if err != nil {
		t.Fatal(err)
	}
	// Same class sizes as the order-preserving build.
	base, err := Build(g, Params{HubsPerBlock: 32})
	if err != nil {
		t.Fatal(err)
	}
	if ih.NumHubs != base.NumHubs || ih.NumVWEH != base.NumVWEH || ih.NumFV != base.NumFV {
		t.Fatal("ablation changed classification")
	}
	// VWEH now sorted by descending degree.
	for i := ih.NumHubs + 1; i < ih.NumHubs+ih.NumVWEH; i++ {
		if g.Degree(ih.OldID[i-1]) < g.Degree(ih.OldID[i]) {
			t.Fatal("VWEH not degree-sorted under ablation")
		}
	}
	// And SpMV stays correct.
	checkStepMatchesReference(t, g, Params{HubsPerBlock: 32, DegreeSortClasses: true})
}

func TestFastSelectMatchesOrUndercuts(t *testing.T) {
	// §6 fast selection is a lower bound on the exact block count and
	// must still produce a correct engine.
	graphs := []*graph.Graph{
		graph.PaperExample(),
		graph.Star(100),
	}
	if g, err := gen.RMAT(gen.DefaultRMAT(11, 12, 2)); err == nil {
		graphs = append(graphs, g)
	} else {
		t.Fatal(err)
	}
	if g, err := gen.Web(gen.DefaultWeb(8000, 3)); err == nil {
		graphs = append(graphs, g)
	} else {
		t.Fatal(err)
	}
	for i, g := range graphs {
		for _, b := range []int{2, 8, 64} {
			exact, err := Build(g, Params{HubsPerBlock: b})
			if err != nil {
				t.Fatal(err)
			}
			fast, err := Build(g, Params{HubsPerBlock: b, FastSelect: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(fast.Blocks) > len(exact.Blocks) {
				t.Fatalf("graph %d B=%d: fast admitted %d blocks > exact %d",
					i, b, len(fast.Blocks), len(exact.Blocks))
			}
			// Block 1 is determined by FV1 alone, so both must agree
			// on having at least one block when the exact one does.
			if len(exact.Blocks) > 0 && len(fast.Blocks) == 0 {
				t.Fatalf("graph %d B=%d: fast found no blocks, exact found %d",
					i, b, len(exact.Blocks))
			}
			checkStepMatchesReference(t, g, Params{HubsPerBlock: b, FastSelect: true})
		}
	}
}

func TestFastSelectPaperExampleIdentical(t *testing.T) {
	// On the worked example FV1 covers every source of every
	// candidate block, so fast and exact agree entirely.
	g := graph.PaperExample()
	exact, _ := Build(g, Params{HubsPerBlock: 2})
	fast, _ := Build(g, Params{HubsPerBlock: 2, FastSelect: true})
	if exact.NumHubs != fast.NumHubs || len(exact.Blocks) != len(fast.Blocks) {
		t.Fatalf("fast (%d hubs, %d blocks) != exact (%d hubs, %d blocks)",
			fast.NumHubs, len(fast.Blocks), exact.NumHubs, len(exact.Blocks))
	}
}

// stubOrderer reverses vertex order, for SparseOrder plumbing tests.
type stubOrderer struct{}

func (stubOrderer) Name() string { return "reverse" }
func (stubOrderer) Permutation(g *graph.Graph) []graph.VID {
	p := make([]graph.VID, g.NumV)
	for v := range p {
		p[v] = graph.VID(g.NumV - 1 - v)
	}
	return p
}

func TestSparseOrderReordersClasses(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(10, 8, 19))
	if err != nil {
		t.Fatal(err)
	}
	base, err := Build(g, Params{HubsPerBlock: 32})
	if err != nil {
		t.Fatal(err)
	}
	ordered, err := Build(g, Params{HubsPerBlock: 32, SparseOrder: stubOrderer{}})
	if err != nil {
		t.Fatal(err)
	}
	// Same classification, same hub prefix.
	if ordered.NumHubs != base.NumHubs || ordered.NumVWEH != base.NumVWEH {
		t.Fatal("SparseOrder changed classification")
	}
	for h := 0; h < base.NumHubs; h++ {
		if ordered.OldID[h] != base.OldID[h] {
			t.Fatal("SparseOrder disturbed hub ordering")
		}
	}
	// VWEH now in REVERSE original order (the stub's rank).
	for i := ordered.NumHubs + 1; i < ordered.NumHubs+ordered.NumVWEH; i++ {
		if ordered.OldID[i-1] <= ordered.OldID[i] {
			t.Fatal("SparseOrder rank not applied within VWEH")
		}
	}
	// And the engine still computes correct SpMV.
	checkStepMatchesReference(t, g, Params{HubsPerBlock: 32, SparseOrder: stubOrderer{}})
}

func TestSparseOrderExclusiveWithDegreeSort(t *testing.T) {
	if _, err := Build(graph.Star(4), Params{DegreeSortClasses: true, SparseOrder: stubOrderer{}}); err == nil {
		t.Fatal("exclusive options accepted together")
	}
}

func TestUniformRandomGraphControl(t *testing.T) {
	// Control experiment (DESIGN.md): Erdős–Rényi graphs have no
	// hubs, so iHTL's hub machinery finds only low-value blocks.
	// Whatever it selects, correctness must hold and no vertex may
	// be classified below the degree floor.
	g, err := gen.ErdosRenyi(4000, 40000, 9)
	if err != nil {
		t.Fatal(err)
	}
	ih := checkStepMatchesReference(t, g, Params{HubsPerBlock: 256})
	if ih.NumHubs > 0 && ih.MinHubDegree < 2 {
		t.Fatalf("hub below degree floor: %d", ih.MinHubDegree)
	}
	// On a hubless graph the flipped blocks bring little: the top
	// 256-vertex block captures at most a smallish fraction of edges
	// per block (mean degree 10, max ~30 of 40k edges).
	if len(ih.Blocks) > 0 {
		frac := float64(ih.Blocks[0].NumEdges()) / float64(g.NumE)
		if frac > 0.25 {
			t.Fatalf("ER block 1 captured %.1f%% of edges — not a control", 100*frac)
		}
	}
}

func TestBuildPropertyEdgeConservation(t *testing.T) {
	// Property test: for random graphs and random B, flipped + sparse
	// edges always total NumE, classes always partition V, and the
	// relabeling is always a permutation (Build re-verifies the edge
	// total internally; this drives it across the parameter space).
	f := func(seed uint64, bRaw uint8) bool {
		rng := xrand.New(seed)
		n := 20 + rng.Intn(300)
		m := n * (1 + rng.Intn(8))
		edges := make([]graph.Edge, m)
		for i := range edges {
			edges[i] = graph.Edge{Src: graph.VID(rng.Intn(n)), Dst: graph.VID(rng.Intn(n))}
		}
		g, err := graph.Build(n, edges, graph.BuildOptions{Dedup: true, DropSelfLoops: true, RemoveZeroDegree: true})
		if err != nil {
			return false
		}
		b := 1 + int(bRaw)%64
		ih, err := Build(g, Params{HubsPerBlock: b})
		if err != nil {
			return false
		}
		if ih.NumHubs+ih.NumVWEH+ih.NumFV != g.NumV {
			return false
		}
		if ih.FlippedEdges()+ih.Sparse.NumEdges() != g.NumE {
			return false
		}
		seen := make([]bool, g.NumV)
		for _, nv := range ih.NewID {
			if seen[nv] {
				return false
			}
			seen[nv] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
