package core

import (
	"testing"

	"ihtl/internal/cache"
	"ihtl/internal/gen"
	"ihtl/internal/graph"
	"ihtl/internal/spmv"
)

// simCacheConfig mirrors the scaled hierarchy used by the spmv tests:
// 2 KB L1 / 32 KB L2 / 256 KB L3 against graphs of 10^4-10^5
// vertices, preserving the paper's capacity regime.
func simCacheConfig() cache.Config {
	return cache.Config{
		LineSize: 64,
		Levels: []cache.LevelConfig{
			{SizeBytes: 2 << 10, Ways: 8},
			{SizeBytes: 32 << 10, Ways: 16},
			{SizeBytes: 256 << 10, Ways: 8},
		},
	}
}

// hubsPerBlockFor derives B from the simulated L2, as §3.3 derives it
// from the real L2.
func hubsPerBlockFor(cfg cache.Config) int {
	return cfg.Levels[1].SizeBytes / spmv.VertexBytes
}

func TestSimulateIHTLReducesLLCMissesVsPull(t *testing.T) {
	// Table 3's key claim: "where the pull traversal performs random
	// reads that result in L3 cache misses, iHTL performs random
	// writes captured by the L2 cache".
	g, err := gen.RMAT(gen.RMATConfig{
		Scale: 16, EdgeFactor: 16, A: 0.57, B: 0.19, C: 0.19, Noise: 0.1, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := simCacheConfig()
	ih, err := Build(g, Params{CacheBytes: cfg.Levels[1].SizeBytes})
	if err != nil {
		t.Fatal(err)
	}
	pullStats, _ := spmv.SimulatePull(g, cfg, false)
	ihtlStats, _ := SimulateStep(ih, g, cfg, false)

	if ihtlStats.L3.Misses >= pullStats.L3.Misses {
		t.Fatalf("iHTL L3 misses %d not below pull %d",
			ihtlStats.L3.Misses, pullStats.L3.Misses)
	}
	// Table 3 also reports that iHTL issues MORE total memory
	// accesses (buffers, extra topology) while still missing less.
	if ihtlStats.Loads+ihtlStats.Stores <= pullStats.Loads+pullStats.Stores {
		t.Fatalf("iHTL accesses %d should exceed pull %d",
			ihtlStats.Loads+ihtlStats.Stores, pullStats.Loads+pullStats.Stores)
	}
}

func TestSimulateIHTLFixesHubMissRate(t *testing.T) {
	// Figure 1: under pull, the highest-degree buckets miss hard;
	// under iHTL the same buckets (now served by flipped-block pushes
	// into an L2-resident buffer) must show a much lower LLC miss
	// rate.
	g, err := gen.RMAT(gen.RMATConfig{
		Scale: 16, EdgeFactor: 16, A: 0.57, B: 0.19, C: 0.19, Noise: 0.1, Seed: 22,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := simCacheConfig()
	ih, err := Build(g, Params{CacheBytes: cfg.Levels[1].SizeBytes})
	if err != nil {
		t.Fatal(err)
	}
	_, pullBuckets := spmv.SimulatePull(g, cfg, true)
	_, ihtlBuckets := SimulateStep(ih, g, cfg, true)

	hubRate := func(buckets []spmv.DegreeMissBucket) (float64, bool) {
		// Aggregate the top three non-empty degree buckets.
		var acc, misses uint64
		found := 0
		for i := len(buckets) - 1; i >= 0 && found < 3; i-- {
			if buckets[i].Vertices == 0 {
				continue
			}
			acc += buckets[i].Accesses
			misses += buckets[i].Misses
			found++
		}
		if acc == 0 {
			return 0, false
		}
		return float64(misses) / float64(acc), true
	}
	pullHub, ok1 := hubRate(pullBuckets)
	ihtlHub, ok2 := hubRate(ihtlBuckets)
	if !ok1 || !ok2 {
		t.Fatal("no hub buckets produced")
	}
	if ihtlHub >= pullHub/2 {
		t.Fatalf("hub miss rate not fixed: pull=%.3f ihtl=%.3f", pullHub, ihtlHub)
	}
}

func TestSimulateStepBucketInvariants(t *testing.T) {
	g, err := gen.Web(gen.DefaultWeb(20000, 13))
	if err != nil {
		t.Fatal(err)
	}
	cfg := simCacheConfig()
	ih, err := Build(g, Params{CacheBytes: cfg.Levels[1].SizeBytes})
	if err != nil {
		t.Fatal(err)
	}
	stats, buckets := SimulateStep(ih, g, cfg, true)
	if stats.Loads == 0 {
		t.Fatal("no loads simulated")
	}
	var vertices int
	for _, b := range buckets {
		if b.Misses > b.Accesses {
			t.Fatalf("bucket [%d,%d): misses exceed accesses", b.DegreeLo, b.DegreeHi)
		}
		vertices += b.Vertices
	}
	withIn := 0
	for v := 0; v < g.NumV; v++ {
		if g.InDegree(graph.VID(v)) > 0 {
			withIn++
		}
	}
	if vertices != withIn {
		t.Fatalf("attributed %d vertices, want %d", vertices, withIn)
	}
}
