package frontier

import (
	"sync/atomic"
	"testing"

	"ihtl/internal/gen"
	"ihtl/internal/graph"
	"ihtl/internal/sched"
)

var testPool = sched.NewPool(4)

// bfsViaEdgeMap is the canonical Ligra BFS: parent claims via CAS.
func bfsViaEdgeMap(g *graph.Graph, pool *sched.Pool, src graph.VID, opt Options) []int64 {
	n := g.NumV
	parent := make([]atomic.Int64, n)
	for v := range parent {
		parent[v].Store(-1)
	}
	parent[src].Store(int64(src))
	dist := make([]int64, n)
	for v := range dist {
		dist[v] = -1
	}
	dist[src] = 0
	front := NewSubset(n, src)
	level := int64(0)
	for front.Len() > 0 {
		level++
		lvl := level
		front = EdgeMap(g, pool, front,
			func(s, d graph.VID) bool {
				if parent[d].CompareAndSwap(-1, int64(s)) {
					dist[d] = lvl
					return true
				}
				return false
			},
			func(d graph.VID) bool { return parent[d].Load() == -1 },
			opt)
	}
	return dist
}

func referenceBFS(g *graph.Graph, src graph.VID) []int64 {
	dist := make([]int64, g.NumV)
	for v := range dist {
		dist[v] = -1
	}
	dist[src] = 0
	q := []graph.VID{src}
	for len(q) > 0 {
		v := q[0]
		q = q[1:]
		for _, u := range g.Out(v) {
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				q = append(q, u)
			}
		}
	}
	return dist
}

func TestEdgeMapBFSMatchesReference(t *testing.T) {
	rmat, err := gen.RMAT(gen.DefaultRMAT(10, 8, 71))
	if err != nil {
		t.Fatal(err)
	}
	graphs := []*graph.Graph{
		graph.Path(64),
		graph.Cycle(33),
		graph.Star(40).Transpose(), // one source, fan-out
		rmat,
	}
	for gi, g := range graphs {
		want := referenceBFS(g, 0)
		for _, opt := range []Options{{}, {DenseThreshold: 1 << 60} /* force sparse */} {
			got := bfsViaEdgeMap(g, testPool, 0, opt)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("graph %d opt %+v: dist[%d] = %d, want %d", gi, opt, v, got[v], want[v])
				}
			}
		}
	}
}

func TestEdgeMapDenseDirectionTriggered(t *testing.T) {
	// A star's transpose from the hub: frontier {hub} has out-degree
	// n-1 > |E|/20, forcing the dense path immediately.
	g := graph.Star(100).Transpose()
	dist := bfsViaEdgeMap(g, testPool, 0, Options{DenseThreshold: 20})
	for v := 1; v < 100; v++ {
		if dist[v] != 1 {
			t.Fatalf("dist[%d] = %d, want 1", v, dist[v])
		}
	}
}

func TestSubsetRepresentations(t *testing.T) {
	s := NewSubset(10, 3, 7)
	if s.Len() != 2 || !s.Has(3) || !s.Has(7) || s.Has(4) {
		t.Fatal("sparse subset wrong")
	}
	bm := s.Bitmap()
	if !bm[3] || !bm[7] || bm[0] {
		t.Fatal("bitmap conversion wrong")
	}
	all := All(5)
	if all.Len() != 5 || !all.Has(4) {
		t.Fatal("All wrong")
	}
	vs := all.Vertices()
	if len(vs) != 5 {
		t.Fatalf("All.Vertices len %d", len(vs))
	}
	if all.Universe() != 5 {
		t.Fatal("Universe wrong")
	}
}

func TestVertexMap(t *testing.T) {
	s := All(100)
	var hits [100]atomic.Int32
	VertexMap(testPool, s, func(v graph.VID) { hits[v].Add(1) })
	for v := range hits {
		if hits[v].Load() != 1 {
			t.Fatalf("vertex %d visited %d times", v, hits[v].Load())
		}
	}
}

func TestEdgeMapClaimsEachDestinationOnce(t *testing.T) {
	// Many sources share destinations; each destination must appear
	// exactly once in the output frontier (the update CAS dedups).
	var edges []graph.Edge
	for s := 0; s < 50; s++ {
		for d := 50; d < 60; d++ {
			edges = append(edges, graph.Edge{Src: graph.VID(s), Dst: graph.VID(d)})
		}
	}
	g := graph.MustFromEdges(60, edges)
	var claimed [60]atomic.Bool
	srcs := make([]graph.VID, 50)
	for i := range srcs {
		srcs[i] = graph.VID(i)
	}
	front := NewSubset(60, srcs...)
	out := EdgeMap(g, testPool, front,
		func(s, d graph.VID) bool { return claimed[d].CompareAndSwap(false, true) },
		nil, Options{DenseThreshold: 1 << 60})
	if out.Len() != 10 {
		t.Fatalf("claimed %d destinations, want 10", out.Len())
	}
	seen := map[graph.VID]bool{}
	for _, v := range out.Vertices() {
		if seen[v] {
			t.Fatalf("destination %d appears twice", v)
		}
		seen[v] = true
	}
}

// ccViaEdgeMap: min-label propagation over frontiers until fixpoint.
func TestEdgeMapConnectedComponents(t *testing.T) {
	// Two directed cycles (strongly connected, so label propagation
	// over out-edges alone converges per component).
	var edges []graph.Edge
	for i := 0; i < 8; i++ {
		edges = append(edges, graph.Edge{Src: graph.VID(i), Dst: graph.VID((i + 1) % 8)})
	}
	for i := 8; i < 20; i++ {
		next := i + 1
		if next == 20 {
			next = 8
		}
		edges = append(edges, graph.Edge{Src: graph.VID(i), Dst: graph.VID(next)})
	}
	g := graph.MustFromEdges(20, edges)
	label := make([]atomic.Int64, 20)
	for v := range label {
		label[v].Store(int64(v))
	}
	front := All(20)
	for front.Len() > 0 {
		front = EdgeMap(g, testPool, front,
			func(s, d graph.VID) bool {
				ls := label[s].Load()
				for {
					ld := label[d].Load()
					if ls >= ld {
						return false
					}
					if label[d].CompareAndSwap(ld, ls) {
						return true
					}
				}
			},
			nil, Options{})
	}
	for v := 0; v < 8; v++ {
		if label[v].Load() != 0 {
			t.Fatalf("label[%d] = %d, want 0", v, label[v].Load())
		}
	}
	for v := 8; v < 20; v++ {
		if label[v].Load() != 8 {
			t.Fatalf("label[%d] = %d, want 8", v, label[v].Load())
		}
	}
}
