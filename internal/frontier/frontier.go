// Package frontier implements Ligra-style frontier-based traversal
// with direction optimization — the §5.2 related-work family ("push
// OR pull"): each EdgeMap over a vertex subset picks push (sparse
// frontier) or pull (dense frontier) for the WHOLE step, based on the
// frontier's out-edge count, after Beamer et al. and Shun & Blelloch.
//
// It exists as a baseline to contrast with iHTL, which mixes push and
// pull *within* one full-graph traversal by vertex type instead of
// switching per step; and because frontier analytics (BFS, CC over
// shrinking frontiers) complement the all-edges SpMV analytics the
// paper targets.
package frontier

import (
	"sync/atomic"

	"ihtl/internal/graph"
	"ihtl/internal/sched"
)

// Subset is a set of vertex IDs held sparse (ID list) or dense
// (bitmap), converting lazily as EdgeMap needs.
type Subset struct {
	n      int
	sparse []graph.VID // valid when dense == nil
	dense  []bool
	count  int
}

// NewSubset returns a subset of [0,n) containing the given vertices
// (assumed distinct).
func NewSubset(n int, ids ...graph.VID) *Subset {
	s := &Subset{n: n, sparse: append([]graph.VID(nil), ids...), count: len(ids)}
	return s
}

// All returns the full subset of [0,n).
func All(n int) *Subset {
	dense := make([]bool, n)
	for i := range dense {
		dense[i] = true
	}
	return &Subset{n: n, dense: dense, count: n}
}

// Len returns the number of members.
func (s *Subset) Len() int { return s.count }

// Universe returns n.
func (s *Subset) Universe() int { return s.n }

// Has reports membership.
func (s *Subset) Has(v graph.VID) bool {
	if s.dense != nil {
		return s.dense[v]
	}
	for _, u := range s.sparse {
		if u == v {
			return true
		}
	}
	return false
}

// Vertices returns the members as a slice (materialising from the
// bitmap if needed). Callers must not modify the result.
func (s *Subset) Vertices() []graph.VID {
	if s.dense == nil {
		return s.sparse
	}
	out := make([]graph.VID, 0, s.count)
	for v, in := range s.dense {
		if in {
			out = append(out, graph.VID(v))
		}
	}
	return out
}

// Bitmap returns the members as a bitmap (materialising from the
// list if needed). Callers must not modify the result.
func (s *Subset) Bitmap() []bool {
	if s.dense != nil {
		return s.dense
	}
	dense := make([]bool, s.n)
	for _, v := range s.sparse {
		dense[v] = true
	}
	return dense
}

// Options tunes EdgeMap.
type Options struct {
	// DenseThreshold: switch to dense (pull) when the frontier's
	// out-edge count exceeds |E| / DenseThreshold. 0 selects Ligra's
	// 20.
	DenseThreshold int64
}

// EdgeMap relaxes the out-edges of the frontier. update(src, dst)
// must atomically attempt to update dst's state and return true
// exactly once per dst per step (first success claims dst for the
// next frontier); cond(dst) returns false for vertices that need no
// visits (already done), letting the dense direction skip early.
// The returned subset holds the claimed destinations.
func EdgeMap(g *graph.Graph, pool *sched.Pool, front *Subset, update func(src, dst graph.VID) bool, cond func(dst graph.VID) bool, opt Options) *Subset {
	threshold := opt.DenseThreshold
	if threshold <= 0 {
		threshold = 20
	}
	// Frontier out-edge count decides the direction.
	var frontEdges int64
	for _, v := range front.Vertices() {
		frontEdges += int64(g.OutDegree(v))
	}
	if frontEdges > g.NumE/threshold {
		return edgeMapDense(g, pool, front, update, cond)
	}
	return edgeMapSparse(g, pool, front, update)
}

// edgeMapSparse pushes from each frontier vertex (top-down).
func edgeMapSparse(g *graph.Graph, pool *sched.Pool, front *Subset, update func(src, dst graph.VID) bool) *Subset {
	src := front.Vertices()
	chunks := make([][]graph.VID, pool.Workers())
	pool.ForDynamic(len(src), 64, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			v := src[i]
			for _, d := range g.Out(v) {
				if update(v, d) {
					chunks[w] = append(chunks[w], d)
				}
			}
		}
	})
	var out []graph.VID
	for _, c := range chunks {
		out = append(out, c...)
	}
	return &Subset{n: front.n, sparse: out, count: len(out)}
}

// edgeMapDense pulls into each candidate vertex (bottom-up): scan
// every vertex failing cond-exclusion, probing its in-neighbours for
// frontier membership.
func edgeMapDense(g *graph.Graph, pool *sched.Pool, front *Subset, update func(src, dst graph.VID) bool, cond func(dst graph.VID) bool) *Subset {
	inFront := front.Bitmap()
	dense := make([]bool, front.n)
	var count atomic.Int64
	pool.ForDynamic(front.n, 256, func(w, lo, hi int) {
		for v := lo; v < hi; v++ {
			d := graph.VID(v)
			if cond != nil && !cond(d) {
				continue
			}
			for _, u := range g.In(d) {
				if inFront[u] && update(u, d) {
					dense[v] = true
					count.Add(1)
					break
				}
			}
		}
	})
	return &Subset{n: front.n, dense: dense, count: int(count.Load())}
}

// VertexMap applies fn to every member in parallel.
func VertexMap(pool *sched.Pool, s *Subset, fn func(v graph.VID)) {
	vs := s.Vertices()
	pool.ForDynamic(len(vs), 256, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(vs[i])
		}
	})
}
