package analytics

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestCheckpointFileRoundTrip(t *testing.T) {
	c := &Checkpoint{Algo: "ppr", Iter: 7, N: 4, K: 2,
		Ranks: []float64{0.5, 0.25, 0.125, 0, 1, math.Pi, -0, 1e-300},
		Aux:   []float64{0.125, 0.875}}
	path := filepath.Join(t.TempDir(), "job.ckpt")
	if err := WriteCheckpointFile(path, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, c) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, c)
	}
}

// TestCheckpointFileTornWriteRejected simulates a torn write — the
// failure atomicio exists to prevent, but which a crashed non-atomic
// writer or a bad disk can still produce — by truncating the spooled
// checkpoint at every possible byte length. The loader must reject
// each prefix with an error and never panic.
func TestCheckpointFileTornWriteRejected(t *testing.T) {
	c := &Checkpoint{Algo: "ppr", Iter: 3, N: 3, K: 2,
		Ranks: []float64{1, 2, 3, 4, 5, 6}, Aux: []float64{0.5, 0.5}}
	var buf bytes.Buffer
	if err := EncodeCheckpoint(&buf, c); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	path := filepath.Join(t.TempDir(), "torn.ckpt")
	for cut := 0; cut < len(full); cut++ {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadCheckpointFile(path); err == nil {
			t.Fatalf("truncation at %d/%d bytes accepted", cut, len(full))
		}
	}
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpointFile(path); err != nil {
		t.Fatalf("full file rejected: %v", err)
	}
}
