package analytics

import (
	"context"

	"ihtl/internal/graph"
)

// CoreNumbers computes the k-core decomposition of the undirected
// view of g with the O(V+E) bucket-peeling algorithm of Batagelj &
// Zaveršnik: repeatedly remove a minimum-degree vertex; a vertex's
// core number is its degree at removal time (which never increases
// afterwards). Core numbers are the degree-structure complement of
// the paper's hub analysis — hubs sit in deep cores, the FV fringe in
// shallow ones — and peeling is the engine behind SlashBurn-style
// orderings.
//
// Parallel edges in the undirected view (an edge present in both
// directions) are counted once per direction, consistent with
// Graph.Degree.
func CoreNumbers(g *graph.Graph) []int {
	core, _ := CoreNumbersCtx(nil, g)
	return core
}

// CoreNumbersCtx is CoreNumbers under a context: the sequential peel
// loop polls ctx every few thousand removals and returns ctx.Err()
// when cancelled. ctx may be nil.
func CoreNumbersCtx(ctx context.Context, g *graph.Graph) ([]int, error) {
	n := g.NumV
	if n == 0 {
		return nil, ctxErrOf(ctx)
	}
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(graph.VID(v))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// bin[d] = index in vert of the first vertex with degree d.
	bin := make([]int, maxDeg+1)
	for _, d := range deg {
		bin[d]++
	}
	start := 0
	for d := 0; d <= maxDeg; d++ {
		count := bin[d]
		bin[d] = start
		start += count
	}
	pos := make([]int, n)
	vert := make([]int, n)
	for v := 0; v < n; v++ {
		pos[v] = bin[deg[v]]
		vert[pos[v]] = v
		bin[deg[v]]++
	}
	for d := maxDeg; d > 0; d-- {
		bin[d] = bin[d-1]
	}
	bin[0] = 0

	core := make([]int, n)
	copy(core, deg)
	for i := 0; i < n; i++ {
		if ctx != nil && i&8191 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		v := vert[i]
		decrease := func(u int) {
			if core[u] <= core[v] {
				return
			}
			du := core[u]
			pu := pos[u]
			pw := bin[du]
			w := vert[pw]
			if u != w {
				pos[u], pos[w] = pw, pu
				vert[pu], vert[pw] = w, u
			}
			bin[du]++
			core[u]--
		}
		for _, u := range g.Out(graph.VID(v)) {
			decrease(int(u))
		}
		for _, u := range g.In(graph.VID(v)) {
			decrease(int(u))
		}
	}
	return core, nil
}

// MaxCore returns the maximum core number (the graph's degeneracy
// under the directed-degree convention above) and one vertex
// attaining it.
func MaxCore(core []int) (k int, v graph.VID) {
	for u, c := range core {
		if c > k {
			k, v = c, graph.VID(u)
		}
	}
	return k, v
}
