package analytics

import (
	"context"
	"math"
	"testing"
	"time"

	"ihtl/internal/core"
	"ihtl/internal/faultinject"
	"ihtl/internal/graph"
	"ihtl/internal/spmv"
)

// countdownCtx is a deterministic context for exercising per-lane
// boundary checks: Err() succeeds `left` times and then returns the
// configured error forever. It replaces wall-clock deadlines in tests
// so "the deadline expired at iteration boundary 3" is exact, not a
// race against the scheduler.
type countdownCtx struct {
	left int
	err  error
}

func (c *countdownCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countdownCtx) Done() <-chan struct{}       { return nil }
func (c *countdownCtx) Value(any) any               { return nil }
func (c *countdownCtx) Err() error {
	if c.left > 0 {
		c.left--
		return nil
	}
	return c.err
}

// laneTestEngine builds a core engine plus engine-ID-space degrees and
// a set of k sources with outgoing edges. StaticFlipped pins the
// flipped task → worker assignment: the bitwise lane-vs-solo contracts
// below are only promised on deterministic engines.
func laneTestEngine(t *testing.T, scale, k int) (*core.Engine, []int, []int) {
	t.Helper()
	g := mustRMAT(t, scale, 8, 97)
	ih, err := core.Build(g, core.Params{HubsPerBlock: 64}.ForBatch(k))
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngineOpts(ih, testPool, core.EngineOptions{StaticFlipped: true})
	if err != nil {
		t.Fatal(err)
	}
	deg := make([]int, g.NumV)
	for nv := 0; nv < g.NumV; nv++ {
		deg[nv] = g.OutDegree(ih.OldID[nv])
	}
	var srcs []int
	for v := 0; v < g.NumV && len(srcs) < k; v += 1 + g.NumV/(3*k) {
		if deg[v] > 0 {
			srcs = append(srcs, v)
		}
	}
	if len(srcs) != k {
		t.Fatalf("found only %d sources", len(srcs))
	}
	return e, deg, srcs
}

func collectLanes(t *testing.T, e spmv.BatchStepper, deg []int, lanes []LaneRequest, opt PageRankOptions) map[int]LaneResult {
	t.Helper()
	got := map[int]LaneResult{}
	err := RunPPRLanes(nil, e, deg, testPool, lanes, opt, func(r LaneResult) {
		if _, dup := got[r.Lane]; dup {
			t.Fatalf("lane %d emitted twice", r.Lane)
		}
		got[r.Lane] = r
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(lanes) {
		t.Fatalf("%d lanes emitted, want %d", len(got), len(lanes))
	}
	return got
}

// TestLanesBitIdenticalToSolo is the coalescing exactness contract:
// every lane of a K-wide batch, stopping at its own convergence
// iteration, must reproduce bit-for-bit the ranks, iteration count,
// and final delta of a solo (K=1) run of the same source on the same
// engine.
func TestLanesBitIdenticalToSolo(t *testing.T) {
	const k = 4
	e, deg, srcs := laneTestEngine(t, 9, k)
	opt := PageRankOptions{MaxIters: 80, Tol: 1e-6, RedistributeDangling: true}

	lanes := make([]LaneRequest, k)
	for j, s := range srcs {
		lanes[j] = LaneRequest{Source: s}
	}
	got := collectLanes(t, e, deg, lanes, opt)

	for j, s := range srcs {
		solo, err := RunPersonalizedPageRank(e, deg, testPool, []int{s}, opt)
		if err != nil {
			t.Fatal(err)
		}
		r := got[j]
		if r.Source != s {
			t.Fatalf("lane %d source %d, want %d", j, r.Source, s)
		}
		if r.Status != LaneConverged {
			t.Fatalf("lane %d status %v, want converged", j, r.Status)
		}
		if r.Iters != solo.Iters {
			t.Fatalf("lane %d converged at iter %d, solo at %d", j, r.Iters, solo.Iters)
		}
		if math.Float64bits(r.Delta) != math.Float64bits(solo.Deltas[0]) {
			t.Fatalf("lane %d delta %v, solo %v", j, r.Delta, solo.Deltas[0])
		}
		for v := range r.Ranks {
			if math.Float64bits(r.Ranks[v]) != math.Float64bits(solo.Ranks[v]) {
				t.Fatalf("lane %d rank[%d] = %v, solo %v", j, v, r.Ranks[v], solo.Ranks[v])
			}
		}
	}
}

// TestLanesDeadlinePartial pins the degraded mode: a lane whose ctx
// expires at iteration boundary B is emitted as a LaneDeadline partial
// whose ranks are exactly the solo run's state after B iterations,
// while its batchmates run on unperturbed.
func TestLanesDeadlinePartial(t *testing.T) {
	const k = 3
	e, deg, srcs := laneTestEngine(t, 9, k)
	opt := PageRankOptions{MaxIters: 12, Tol: -1, RedistributeDangling: true}

	const expireAfter = 3
	lanes := []LaneRequest{
		{Source: srcs[0]},
		{Source: srcs[1], Ctx: &countdownCtx{left: expireAfter, err: context.DeadlineExceeded}},
		{Source: srcs[2]},
	}
	got := collectLanes(t, e, deg, lanes, opt)

	r := got[1]
	if r.Status != LaneDeadline || r.Converged() {
		t.Fatalf("expired lane status %v, want deadline", r.Status)
	}
	if r.Iters != expireAfter {
		t.Fatalf("expired lane stopped at iter %d, want %d", r.Iters, expireAfter)
	}
	partial, err := RunPersonalizedPageRank(e, deg, testPool, []int{srcs[1]},
		PageRankOptions{MaxIters: expireAfter, Tol: -1, RedistributeDangling: true})
	if err != nil {
		t.Fatal(err)
	}
	for v := range r.Ranks {
		if math.Float64bits(r.Ranks[v]) != math.Float64bits(partial.Ranks[v]) {
			t.Fatalf("partial rank[%d] = %v, solo-after-%d = %v", v, r.Ranks[v], expireAfter, partial.Ranks[v])
		}
	}
	for _, j := range []int{0, 2} {
		if got[j].Status != LaneIterCap || got[j].Iters != opt.MaxIters {
			t.Fatalf("survivor lane %d: status %v iters %d", j, got[j].Status, got[j].Iters)
		}
		solo, err := RunPersonalizedPageRank(e, deg, testPool, []int{srcs[j]}, opt)
		if err != nil {
			t.Fatal(err)
		}
		for v := range got[j].Ranks {
			if math.Float64bits(got[j].Ranks[v]) != math.Float64bits(solo.Ranks[v]) {
				t.Fatalf("survivor lane %d rank[%d] = %v, solo %v", j, v, got[j].Ranks[v], solo.Ranks[v])
			}
		}
	}
}

// TestLanesCancelledLaneReclaimed: a cancelled (abandoned) lane is
// freed at the next iteration boundary with no ranks, and the
// remaining lanes still match their solo runs bit-for-bit.
func TestLanesCancelledLaneReclaimed(t *testing.T) {
	const k = 2
	e, deg, srcs := laneTestEngine(t, 9, k)
	opt := PageRankOptions{MaxIters: 60, Tol: 1e-6, RedistributeDangling: true}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	lanes := []LaneRequest{
		{Source: srcs[0], Ctx: cancelled},
		{Source: srcs[1]},
	}
	got := collectLanes(t, e, deg, lanes, opt)

	if got[0].Status != LaneCancelled {
		t.Fatalf("abandoned lane status %v, want cancelled", got[0].Status)
	}
	if got[0].Ranks != nil {
		t.Fatal("abandoned lane carried ranks")
	}
	solo, err := RunPersonalizedPageRank(e, deg, testPool, []int{srcs[1]}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got[1].Status != LaneConverged || got[1].Iters != solo.Iters {
		t.Fatalf("survivor: status %v iters %d, solo converged at %d", got[1].Status, got[1].Iters, solo.Iters)
	}
	for v := range got[1].Ranks {
		if math.Float64bits(got[1].Ranks[v]) != math.Float64bits(solo.Ranks[v]) {
			t.Fatalf("survivor rank[%d] = %v, solo %v", v, got[1].Ranks[v], solo.Ranks[v])
		}
	}
}

// TestLanesRollbackNeverReEmits drives a numeric fault into a batch
// containing a lane that converges before the fault lands: the
// rollback rewinds past the lane's convergence point, the lane re-runs
// and re-converges, and the emitted guard must keep its result from
// being delivered twice. The surviving lane's result must match a
// fault-free solo run bit-for-bit (rollback restores the trajectory
// exactly).
func TestLanesRollbackNeverReEmits(t *testing.T) {
	// A 4-cycle plus an isolated vertex 4: a lane sourced at 4 keeps
	// its unit mass (dangling redistribution returns it to the source)
	// and converges at iteration 1 with delta exactly 0. The explicit
	// build options keep the zero-degree vertex (the default fixture
	// path would strip it).
	g, err := graph.Build(5, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 0},
	}, graph.BuildOptions{Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	ih, berr := core.Build(g, core.Params{HubsPerBlock: 4}.ForBatch(2))
	if berr != nil {
		t.Fatal(berr)
	}
	e, err := core.NewEngineOpts(ih, testPool, core.EngineOptions{
		Health:        spmv.HealthPolicy{Mode: spmv.HealthRollback},
		StaticFlipped: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	deg := make([]int, g.NumV)
	for nv := 0; nv < g.NumV; nv++ {
		deg[nv] = g.OutDegree(ih.OldID[nv])
	}
	isolated, cyclic := int(ih.NewID[4]), int(ih.NewID[0])
	opt := PageRankOptions{MaxIters: 40, Tol: 1e-12, RedistributeDangling: true, CheckpointEvery: 1}

	// The health poison hook fires once per non-empty worker range per
	// step; After=1·workers lands the NaN inside iteration 2's step —
	// right after the isolated lane converged at iteration 1 and was
	// emitted, so the rollback target (snapshot at iteration 1, taken
	// before convergence was applied) still has that lane active.
	// Times=1 lets the post-rollback retry come up clean.
	faultinject.Activate(faultinject.NewPlan(faultinject.Rule{
		Site: faultinject.SiteStepHealth, Kind: faultinject.NaN,
		After: int64(1 * e.Workers()), Times: 1,
	}))
	defer faultinject.Deactivate()

	emits := map[int]int{}
	var results [2]LaneResult
	err = RunPPRLanes(nil, e, deg, testPool,
		[]LaneRequest{{Source: isolated}, {Source: cyclic}}, opt,
		func(r LaneResult) {
			emits[r.Lane]++
			results[r.Lane] = r
		})
	if err != nil {
		t.Fatalf("rollback did not absorb the fault: %v", err)
	}
	for j, n := range emits {
		if n != 1 {
			t.Fatalf("lane %d emitted %d times", j, n)
		}
	}
	if results[0].Status != LaneConverged || results[0].Iters != 1 {
		t.Fatalf("isolated lane: status %v iters %d, want converged at 1", results[0].Status, results[0].Iters)
	}
	faultinject.Deactivate()
	solo, err := RunPersonalizedPageRank(e, deg, testPool, []int{cyclic}, PageRankOptions{
		MaxIters: 40, Tol: 1e-12, RedistributeDangling: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[1].Iters != solo.Iters {
		t.Fatalf("cyclic lane converged at %d, fault-free solo at %d", results[1].Iters, solo.Iters)
	}
	for v := range results[1].Ranks {
		if math.Float64bits(results[1].Ranks[v]) != math.Float64bits(solo.Ranks[v]) {
			t.Fatalf("cyclic rank[%d] = %v, solo %v", v, results[1].Ranks[v], solo.Ranks[v])
		}
	}
}

func TestLanesErrors(t *testing.T) {
	e, deg, srcs := laneTestEngine(t, 6, 1)
	if err := RunPPRLanes(nil, e, deg, testPool, nil, PageRankOptions{}, nil); err == nil {
		t.Error("no lanes: want error")
	}
	if err := RunPPRLanes(nil, e, deg, testPool, []LaneRequest{{Source: len(deg)}}, PageRankOptions{}, nil); err == nil {
		t.Error("out-of-range source: want error")
	}
	if err := RunPPRLanes(nil, e, deg, testPool, []LaneRequest{{Source: srcs[0]}},
		PageRankOptions{Resume: &Checkpoint{Algo: "ppr", K: 1, Ranks: []float64{}, Aux: []float64{0}}}, nil); err == nil {
		t.Error("Resume: want error")
	}
}
