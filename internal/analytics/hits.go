package analytics

import (
	"fmt"
	"math"

	"ihtl/internal/spmv"
)

// HITSOptions configures RunHITS.
type HITSOptions struct {
	// MaxIters bounds iteration count; 0 selects 50.
	MaxIters int
	// Tol stops when both score vectors' L1 deltas fall below it;
	// 0 selects 1e-9.
	Tol float64
}

// HITSResult carries the converged authority and hub scores.
type HITSResult struct {
	Authority []float64
	Hub       []float64
	Iters     int
}

// RunHITS computes Kleinberg's Hyperlink-Induced Topic Search — one
// of the pull-underpinned analytics motivating the paper (§1, [20]).
// It needs two SpMV engines over the same vertex set: fwd computes
// a(v) = Σ_{u→v} h(u) (in-neighbour sums, the usual Stepper), and rev
// computes h(v) = Σ_{v→u} a(u), i.e. a Stepper built on the
// transposed graph.
func RunHITS(fwd, rev spmv.Stepper, opt HITSOptions) (HITSResult, error) {
	n := fwd.NumVertices()
	if rev.NumVertices() != n {
		return HITSResult{}, fmt.Errorf("analytics: engine vertex counts differ: %d vs %d", n, rev.NumVertices())
	}
	if opt.MaxIters == 0 {
		opt.MaxIters = 50
	}
	if opt.Tol == 0 {
		opt.Tol = 1e-9
	}
	auth := make([]float64, n)
	hub := make([]float64, n)
	newAuth := make([]float64, n)
	newHub := make([]float64, n)
	for v := range hub {
		hub[v] = 1
		auth[v] = 1
	}
	res := HITSResult{Authority: auth, Hub: hub}
	if n == 0 {
		return res, nil
	}
	for iter := 0; iter < opt.MaxIters; iter++ {
		fwd.Step(hub, newAuth) // a = Aᵀ h
		normalize(newAuth)
		rev.Step(newAuth, newHub) // h = A a
		normalize(newHub)
		delta := l1Delta(auth, newAuth) + l1Delta(hub, newHub)
		copy(auth, newAuth)
		copy(hub, newHub)
		res.Iters = iter + 1
		if delta < opt.Tol {
			break
		}
	}
	return res, nil
}

func normalize(v []float64) {
	var norm float64
	for _, x := range v {
		norm += x * x
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		return
	}
	for i := range v {
		v[i] /= norm
	}
}

func l1Delta(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		d += math.Abs(a[i] - b[i])
	}
	return d
}
