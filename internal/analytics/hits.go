package analytics

import (
	"context"
	"fmt"
	"math"

	"ihtl/internal/sched"
	"ihtl/internal/spmv"
)

// HITSOptions configures RunHITS.
type HITSOptions struct {
	// MaxIters bounds iteration count; 0 selects 50.
	MaxIters int
	// Tol stops when both score vectors' L1 deltas fall below it;
	// 0 selects 1e-9.
	Tol float64
	// Pool parallelises the O(n) normalisation and delta sweeps; nil
	// runs them sequentially. Each normalisation is a single fused
	// dispatch (partial square-sums, a spin barrier, then scaling).
	Pool *sched.Pool
}

// HITSResult carries the converged authority and hub scores.
type HITSResult struct {
	Authority []float64
	Hub       []float64
	Iters     int
}

// RunHITS computes Kleinberg's Hyperlink-Induced Topic Search — one
// of the pull-underpinned analytics motivating the paper (§1, [20]).
// It needs two SpMV engines over the same vertex set: fwd computes
// a(v) = Σ_{u→v} h(u) (in-neighbour sums, the usual Stepper), and rev
// computes h(v) = Σ_{v→u} a(u), i.e. a Stepper built on the
// transposed graph.
func RunHITS(fwd, rev spmv.Stepper, opt HITSOptions) (HITSResult, error) {
	return RunHITSCtx(nil, fwd, rev, opt)
}

// RunHITSCtx is RunHITS under a context. Unlike PageRank's single
// fused dispatch, a HITS iteration is a sequence of phases — two
// Steps, two normalisations, two delta sweeps — so each phase is its
// own cancellable dispatch: ctx-aware engines (spmv.CtxStepper) stop
// mid-Step at the next chunk claim, other engines between phases, and
// worker panics surface as *sched.PanicError instead of crashing the
// process. ctx may be nil.
func RunHITSCtx(ctx context.Context, fwd, rev spmv.Stepper, opt HITSOptions) (HITSResult, error) {
	n := fwd.NumVertices()
	if rev.NumVertices() != n {
		return HITSResult{}, fmt.Errorf("analytics: engine vertex counts differ: %d vs %d", n, rev.NumVertices())
	}
	if opt.MaxIters == 0 {
		opt.MaxIters = 50
	}
	if opt.Tol == 0 { //ihtl:allow-zerocmp option defaulting, ±0 both mean "unset"
		opt.Tol = 1e-9
	}
	auth := make([]float64, n)
	hub := make([]float64, n)
	newAuth := make([]float64, n)
	newHub := make([]float64, n)
	for v := range hub {
		hub[v] = 1
		auth[v] = 1
	}
	res := HITSResult{Authority: auth, Hub: hub}
	if n == 0 {
		return res, nil
	}
	nrm := newNormalizer(opt.Pool)
	for iter := 0; iter < opt.MaxIters; iter++ {
		if err := stepCtx(ctx, fwd, hub, newAuth); err != nil { // a = Aᵀ h
			return res, err
		}
		if err := nrm.normalize(ctx, newAuth); err != nil {
			return res, err
		}
		if err := stepCtx(ctx, rev, newAuth, newHub); err != nil { // h = A a
			return res, err
		}
		if err := nrm.normalize(ctx, newHub); err != nil {
			return res, err
		}
		dA, err := nrm.deltaAndCopy(ctx, auth, newAuth)
		if err != nil {
			return res, err
		}
		dH, err := nrm.deltaAndCopy(ctx, hub, newHub)
		if err != nil {
			return res, err
		}
		delta := dA + dH
		res.Iters = iter + 1
		if delta < opt.Tol {
			break
		}
	}
	return res, nil
}

// stepCtx runs one SpMV step under ctx, preferring the engine's
// cancellable StepCtx when implemented and falling back to a
// between-phase ctx check around the plain Step.
func stepCtx(ctx context.Context, e spmv.Stepper, src, dst []float64) error {
	if ce, ok := e.(spmv.CtxStepper); ok {
		return ce.StepCtx(ctx, src, dst)
	}
	if err := ctxErrOf(ctx); err != nil {
		return err
	}
	e.Step(src, dst)
	return nil
}

// normalizer scales vectors to unit L2 norm, on a pool when one is
// available. The parallel path is ONE dispatch: each worker computes
// the square-sum of its static range, crosses a spin barrier, and
// scales the same range by the combined norm — no second dispatch for
// the scaling pass. The barrier crossing is abort-aware (WaitAbort),
// so a cancelled dispatch or a panicking sibling releases spinning
// workers instead of deadlocking them; a failed dispatch resets the
// barrier before the error is surfaced, leaving the normalizer
// reusable. Both worker bodies are prebuilt at construction and the
// operand vectors staged through fields, so the per-iteration calls
// stay allocation-free in the workers (//ihtl:noalloc).
type normalizer struct {
	pool    *sched.Pool
	barrier *sched.Barrier
	partial []float64

	curV     []float64 // staged operand for normJob
	curA     []float64 // staged operands for deltaJob
	curB     []float64
	normJob  func(w int)
	deltaJob func(w, lo, hi int)
}

func newNormalizer(pool *sched.Pool) *normalizer {
	nrm := &normalizer{pool: pool}
	if pool != nil {
		nrm.barrier = sched.NewBarrier(pool.Workers())
		nrm.partial = make([]float64, pool.Workers())
		nrm.normJob = nrm.normWorker
		nrm.deltaJob = nrm.deltaWorker
	}
	return nrm
}

func (nrm *normalizer) normalize(ctx context.Context, v []float64) error {
	if nrm.pool == nil || len(v) < len(nrm.partial) {
		if err := ctxErrOf(ctx); err != nil {
			return err
		}
		normalizeSeq(v)
		return nil
	}
	nrm.curV = v
	err := nrm.pool.RunCtx(ctx, nrm.normJob)
	nrm.curV = nil
	if err != nil {
		// A worker may have stopped short of the barrier; clear any
		// partial arrivals so the next dispatch starts clean.
		nrm.barrier.Reset()
	}
	return err
}

// normWorker is one worker's share of a normalize dispatch: square-sum
// the static range, meet at the barrier, scale the same range.
//
//ihtl:noalloc
func (nrm *normalizer) normWorker(w int) {
	v := nrm.curV
	lo, hi := sched.SplitRange(len(v), nrm.pool.Workers(), w)
	sum := 0.0
	for i := lo; i < hi; i++ {
		sum += v[i] * v[i]
	}
	nrm.partial[w] = sum
	if !nrm.barrier.WaitAbort(nrm.pool) {
		return
	}
	norm := 0.0
	for _, p := range nrm.partial {
		norm += p
	}
	norm = math.Sqrt(norm)
	if spmv.SkipZero(norm) {
		return
	}
	inv := 1 / norm
	for i := lo; i < hi; i++ {
		v[i] *= inv
	}
}

//ihtl:noalloc
func normalizeSeq(v []float64) {
	var norm float64
	for _, x := range v {
		norm += x * x
	}
	norm = math.Sqrt(norm)
	if spmv.SkipZero(norm) {
		return
	}
	inv := 1 / norm
	for i := range v {
		v[i] *= inv
	}
}

// deltaAndCopy returns Σ|a[i]-b[i]| and copies b into a, in one sweep.
func (nrm *normalizer) deltaAndCopy(ctx context.Context, a, b []float64) (float64, error) {
	if nrm.pool == nil || len(a) < len(nrm.partial) {
		if err := ctxErrOf(ctx); err != nil {
			return 0, err
		}
		d := 0.0
		for i := range a {
			d += math.Abs(a[i] - b[i])
			a[i] = b[i]
		}
		return d, nil
	}
	nrm.curA, nrm.curB = a, b
	err := nrm.pool.ForStaticCtx(ctx, len(a), nrm.deltaJob)
	nrm.curA, nrm.curB = nil, nil
	if err != nil {
		return 0, err
	}
	delta := 0.0
	for _, d := range nrm.partial {
		delta += d
	}
	return delta, nil
}

// deltaWorker is one worker's share of a deltaAndCopy dispatch.
//
//ihtl:noalloc
func (nrm *normalizer) deltaWorker(w, lo, hi int) {
	a, b := nrm.curA, nrm.curB
	d := 0.0
	for i := lo; i < hi; i++ {
		d += math.Abs(a[i] - b[i])
		a[i] = b[i]
	}
	nrm.partial[w] = d
}
