// Package analytics implements graph analytics on top of the SpMV
// engines: PageRank (the paper's evaluation application, §4.1), HITS
// (a pull-underpinned analytic cited in §1), label-propagation
// connected components, direction-optimizing BFS and Bellman-Ford
// SSSP (the §6 future-work analytics).
//
// Every analytic is engine-agnostic: it accepts any spmv.Stepper, so
// the same code runs over pull, push, or iHTL engines — the property
// the paper's evaluation relies on ("iHTL mixes push and pull but
// every edge is traversed exactly once").
package analytics

import (
	"context"
	"errors"
	"fmt"
	"math"

	"ihtl/internal/sched"
	"ihtl/internal/spmv"
)

// PageRankOptions configures RunPageRank.
type PageRankOptions struct {
	// Damping is the damping factor; 0 selects the paper's 0.85.
	Damping float64
	// MaxIters bounds iteration count; 0 selects 100.
	MaxIters int
	// Tol stops iteration once the L1 delta falls below it; 0
	// selects 1e-9. Set negative to always run MaxIters (the paper
	// reports fixed per-iteration times).
	Tol float64
	// RedistributeDangling adds the rank mass of zero-out-degree
	// vertices uniformly each iteration. The paper's formula (§4.1)
	// omits this, so it defaults to off.
	RedistributeDangling bool

	// CheckpointEvery > 0 snapshots the driver state every that many
	// completed iterations (plus once before the first iteration, so
	// rollback always has a target). Snapshots feed OnCheckpoint and
	// the numeric-health rollback below; 0 disables both.
	CheckpointEvery int
	// OnCheckpoint observes each snapshot. The *Checkpoint is owned
	// by the driver and its buffers are reused by later snapshots:
	// encode it synchronously or Clone it before returning.
	OnCheckpoint func(*Checkpoint)
	// Resume restarts the run from a snapshot previously produced by
	// this driver (Algo "pagerank"): ranks and dangling mass are
	// restored and iteration continues at Resume.Iter, producing
	// bit-for-bit the trajectory of an uninterrupted run.
	Resume *Checkpoint
}

func (o PageRankOptions) withDefaults() PageRankOptions {
	if o.Damping == 0 { //ihtl:allow-zerocmp option defaulting, ±0 both mean "unset"
		o.Damping = 0.85
	}
	if o.MaxIters == 0 {
		o.MaxIters = 100
	}
	if o.Tol == 0 { //ihtl:allow-zerocmp option defaulting, ±0 both mean "unset"
		o.Tol = 1e-9
	}
	return o
}

// maxRollbackRetries bounds how many times a run may roll back to the
// SAME checkpoint before the numeric error is surfaced: transient
// corruption (the fault-injection harness, a flipped bit) heals on
// retry, while a deterministic divergence would otherwise loop
// forever.
const maxRollbackRetries = 2

// PageRankResult carries the final ranks and convergence metadata.
type PageRankResult struct {
	// Ranks is indexed in the Stepper's vertex-ID space.
	Ranks []float64
	// Iters is the absolute iteration index reached (resumed runs
	// count the iterations of the original run).
	Iters int
	// Delta is the final L1 change.
	Delta float64
	// Rollbacks counts checkpoint restores triggered by numeric-
	// health errors (spmv.HealthRollback engines only).
	Rollbacks int
}

// RunPageRank iterates PRᵢ(v) = (1-d)/n + d·Σ_{u∈N⁻(v)} PRᵢ₋₁(u)/deg⁺(u)
// over the given engine. outDeg must give the out-degree of every
// vertex in the engine's ID space. pool parallelises the O(n)
// element-wise phases; it may be nil for sequential execution.
func RunPageRank(e spmv.Stepper, outDeg []int, pool *sched.Pool, opt PageRankOptions) (PageRankResult, error) {
	return RunPageRankCtx(nil, e, outDeg, pool, opt)
}

// RunPageRankCtx is RunPageRank under a context: cancelling ctx stops
// the run at the next iteration boundary (and, on ctx-aware engines,
// mid-Step at the next chunk claim) and returns ctx.Err(). On engines
// whose Step can fail — a worker panic surfacing as *sched.PanicError,
// or a numeric-health violation as *spmv.NumericError — the error is
// returned instead of panicking. Under spmv.HealthRollback with
// CheckpointEvery set, a numeric error restores the latest checkpoint
// and retries (at most maxRollbackRetries times per checkpoint) before
// surfacing. ctx may be nil.
func RunPageRankCtx(ctx context.Context, e spmv.Stepper, outDeg []int, pool *sched.Pool, opt PageRankOptions) (PageRankResult, error) {
	n := e.NumVertices()
	if len(outDeg) != n {
		return PageRankResult{}, fmt.Errorf("analytics: outDeg length %d != %d vertices", len(outDeg), n)
	}
	o := opt.withDefaults()
	if n == 0 {
		return PageRankResult{Ranks: []float64{}}, nil
	}
	if o.Resume != nil {
		if err := o.Resume.validate(); err != nil {
			return PageRankResult{}, err
		}
		if o.Resume.Algo != "pagerank" || o.Resume.N != n || o.Resume.K != 1 {
			return PageRankResult{}, fmt.Errorf("analytics: resume checkpoint %q n=%d k=%d does not match pagerank n=%d",
				o.Resume.Algo, o.Resume.N, o.Resume.K, n)
		}
	}

	invDeg := make([]float64, n)
	for v, d := range outDeg {
		if d > 0 {
			invDeg[v] = 1 / float64(d)
		}
	}
	ranks := make([]float64, n)
	contrib := make([]float64, n)
	sums := make([]float64, n)
	base := (1 - o.Damping) / float64(n)

	// Preamble sweep: initial ranks, the contributions they push in
	// iteration 0, and the initial dangling mass — or the restored
	// equivalents when resuming. Contributions are recomputed as
	// ranks[v]·invDeg[v], the same single-rounding product the
	// epilogue performs, so a resumed trajectory is bit-for-bit that
	// of the uninterrupted run.
	var dangling float64
	iter := 0
	if o.Resume != nil {
		copy(ranks, o.Resume.Ranks)
		dangling = o.Resume.Aux[0]
		for v := 0; v < n; v++ {
			contrib[v] = ranks[v] * invDeg[v]
		}
		iter = o.Resume.Iter
	} else {
		init := 1 / float64(n)
		for v := 0; v < n; v++ {
			ranks[v] = init
			contrib[v] = init * invDeg[v]
			if o.RedistributeDangling && outDeg[v] == 0 {
				dangling += init
			}
		}
	}

	// Per iteration, everything element-wise runs as the Step's
	// epilogue: apply damping, accumulate the L1 delta, compute the
	// contributions the next Step will push, and collect the next
	// iteration's dangling mass — instead of separate contribution
	// and update sweeps before and after every Step. On a fused
	// stepper (core.Engine) the epilogue executes inside the Step's
	// own dispatch, making a whole PageRank iteration one pool
	// round-trip; otherwise it is one extra dispatch.
	//
	// extra is read by the epilogue workers; the orchestrator writes
	// it before each dispatch, which orders the write.
	var extra float64
	body := func(lo, hi int) (delta, dangl float64) {
		for v := lo; v < hi; v++ {
			nv := base + o.Damping*sums[v] + extra
			delta += math.Abs(nv - ranks[v])
			ranks[v] = nv
			contrib[v] = nv * invDeg[v]
			if o.RedistributeDangling && outDeg[v] == 0 {
				dangl += nv
			}
		}
		return delta, dangl
	}

	cfe, ctxFused := e.(ctxFusedStepper)
	fe, fused := e.(fusedStepper)
	ce, ctxPlain := e.(spmv.CtxStepper)
	workers := 0
	switch {
	case fused:
		workers = fe.Workers()
	case pool != nil:
		workers = pool.Workers()
	}
	var deltaParts, danglingParts []float64
	var epi func(w, lo, hi int)
	var poolEpi func(w int)
	if workers > 0 {
		deltaParts = make([]float64, workers)
		danglingParts = make([]float64, workers)
		// Every worker writes its slot each dispatch (an empty range
		// stores zeros), so no stale partials survive an iteration.
		epi = func(w, lo, hi int) {
			deltaParts[w], danglingParts[w] = body(lo, hi)
		}
		if !fused {
			poolEpi = func(w int) {
				lo, hi := sched.SplitRange(n, workers, w)
				epi(w, lo, hi)
			}
		}
	}

	// Checkpointing: snap is the driver-owned reusable snapshot, last
	// the rollback target (snap, or the caller's Resume checkpoint
	// until the first fresh snapshot lands).
	var snap, last *Checkpoint
	retries := 0
	takeSnapshot := func(iterDone int) {
		if snap == nil {
			snap = &Checkpoint{Algo: "pagerank", N: n, K: 1,
				Ranks: make([]float64, n), Aux: make([]float64, 1)}
		}
		snap.Iter = iterDone
		copy(snap.Ranks, ranks)
		snap.Aux[0] = dangling
		last = snap
		retries = 0
		if o.OnCheckpoint != nil {
			o.OnCheckpoint(snap)
		}
	}
	restore := func(c *Checkpoint) {
		copy(ranks, c.Ranks)
		dangling = c.Aux[0]
		for v := 0; v < n; v++ {
			contrib[v] = ranks[v] * invDeg[v]
		}
		iter = c.Iter
	}
	if o.CheckpointEvery > 0 {
		if o.Resume != nil {
			last = o.Resume
		} else {
			takeSnapshot(0)
		}
	}

	res := PageRankResult{Ranks: ranks}
	for iter < o.MaxIters {
		extra = o.Damping * dangling / float64(n)
		var delta float64
		var stepErr error
		switch {
		case ctxFused:
			stepErr = cfe.StepEpiCtx(ctx, contrib, sums, epi)
		case fused:
			if stepErr = ctxErrOf(ctx); stepErr == nil {
				fe.StepEpi(contrib, sums, epi)
			}
		case ctxPlain:
			if stepErr = ce.StepCtx(ctx, contrib, sums); stepErr == nil {
				if pool != nil {
					stepErr = pool.RunCtx(ctx, poolEpi)
				} else {
					delta, dangling = body(0, n)
				}
			}
		case pool != nil:
			if stepErr = ctxErrOf(ctx); stepErr == nil {
				e.Step(contrib, sums)
				stepErr = pool.RunCtx(ctx, poolEpi)
			}
		default:
			if stepErr = ctxErrOf(ctx); stepErr == nil {
				e.Step(contrib, sums)
				delta, dangling = body(0, n)
			}
		}
		if stepErr != nil {
			var nerr *spmv.NumericError
			if errors.As(stepErr, &nerr) && nerr.Rollback && last != nil && retries < maxRollbackRetries {
				retries++
				res.Rollbacks++
				restore(last)
				continue
			}
			return res, stepErr
		}
		if workers > 0 {
			delta, dangling = 0, 0
			for w := range deltaParts {
				delta += deltaParts[w]
				dangling += danglingParts[w]
			}
		}
		iter++
		res.Iters = iter
		res.Delta = delta
		if o.CheckpointEvery > 0 && iter%o.CheckpointEvery == 0 {
			takeSnapshot(iter)
		}
		if o.Tol >= 0 && delta < o.Tol {
			break
		}
	}
	return res, nil
}

// ctxErrOf is the nil-tolerant ctx.Err().
func ctxErrOf(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// fusedStepper is the optional Stepper extension core.Engine provides:
// Step plus an epilogue every worker runs over its share of [0, n)
// once dst is complete, fused into the Step's own dispatch.
type fusedStepper interface {
	spmv.Stepper
	StepEpi(src, dst []float64, epi func(w, lo, hi int))
	Workers() int
}

// ctxFusedStepper extends fusedStepper with the cancellable,
// error-returning variant (core.Engine's StepEpiCtx): worker panics
// and numeric-health violations come back as errors instead of
// panicking, and ctx cancellation stops the dispatch mid-Step.
type ctxFusedStepper interface {
	fusedStepper
	StepEpiCtx(ctx context.Context, src, dst []float64, epi func(w, lo, hi int)) error
}

// SumRanks returns the total rank mass (≈1 when dangling mass is
// redistributed; below 1 otherwise).
//
//ihtl:noalloc
func SumRanks(ranks []float64) float64 {
	s := 0.0
	for _, r := range ranks {
		s += r
	}
	return s
}
