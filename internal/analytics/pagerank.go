// Package analytics implements graph analytics on top of the SpMV
// engines: PageRank (the paper's evaluation application, §4.1), HITS
// (a pull-underpinned analytic cited in §1), label-propagation
// connected components, direction-optimizing BFS and Bellman-Ford
// SSSP (the §6 future-work analytics).
//
// Every analytic is engine-agnostic: it accepts any spmv.Stepper, so
// the same code runs over pull, push, or iHTL engines — the property
// the paper's evaluation relies on ("iHTL mixes push and pull but
// every edge is traversed exactly once").
package analytics

import (
	"fmt"
	"math"

	"ihtl/internal/sched"
	"ihtl/internal/spmv"
)

// PageRankOptions configures RunPageRank.
type PageRankOptions struct {
	// Damping is the damping factor; 0 selects the paper's 0.85.
	Damping float64
	// MaxIters bounds iteration count; 0 selects 100.
	MaxIters int
	// Tol stops iteration once the L1 delta falls below it; 0
	// selects 1e-9. Set negative to always run MaxIters (the paper
	// reports fixed per-iteration times).
	Tol float64
	// RedistributeDangling adds the rank mass of zero-out-degree
	// vertices uniformly each iteration. The paper's formula (§4.1)
	// omits this, so it defaults to off.
	RedistributeDangling bool
}

func (o PageRankOptions) withDefaults() PageRankOptions {
	if o.Damping == 0 {
		o.Damping = 0.85
	}
	if o.MaxIters == 0 {
		o.MaxIters = 100
	}
	if o.Tol == 0 {
		o.Tol = 1e-9
	}
	return o
}

// PageRankResult carries the final ranks and convergence metadata.
type PageRankResult struct {
	// Ranks is indexed in the Stepper's vertex-ID space.
	Ranks []float64
	// Iters is the number of iterations executed.
	Iters int
	// Delta is the final L1 change.
	Delta float64
}

// RunPageRank iterates PRᵢ(v) = (1-d)/n + d·Σ_{u∈N⁻(v)} PRᵢ₋₁(u)/deg⁺(u)
// over the given engine. outDeg must give the out-degree of every
// vertex in the engine's ID space. pool parallelises the O(n)
// element-wise phases; it may be nil for sequential execution.
func RunPageRank(e spmv.Stepper, outDeg []int, pool *sched.Pool, opt PageRankOptions) (PageRankResult, error) {
	n := e.NumVertices()
	if len(outDeg) != n {
		return PageRankResult{}, fmt.Errorf("analytics: outDeg length %d != %d vertices", len(outDeg), n)
	}
	o := opt.withDefaults()
	if n == 0 {
		return PageRankResult{Ranks: []float64{}}, nil
	}

	invDeg := make([]float64, n)
	for v, d := range outDeg {
		if d > 0 {
			invDeg[v] = 1 / float64(d)
		}
	}
	ranks := make([]float64, n)
	contrib := make([]float64, n)
	sums := make([]float64, n)
	for v := range ranks {
		ranks[v] = 1 / float64(n)
	}
	base := (1 - o.Damping) / float64(n)

	forRange := func(fn func(lo, hi int)) {
		if pool == nil {
			fn(0, n)
			return
		}
		pool.ForStatic(n, func(w, lo, hi int) { fn(lo, hi) })
	}

	res := PageRankResult{Ranks: ranks}
	for iter := 0; iter < o.MaxIters; iter++ {
		var dangling float64
		if o.RedistributeDangling {
			for v := 0; v < n; v++ {
				if outDeg[v] == 0 {
					dangling += ranks[v]
				}
			}
		}
		forRange(func(lo, hi int) {
			for v := lo; v < hi; v++ {
				contrib[v] = ranks[v] * invDeg[v]
			}
		})
		e.Step(contrib, sums)
		extra := o.Damping * dangling / float64(n)
		// Delta accumulation is cheap; do it in the same sweep.
		var delta float64
		if pool == nil {
			for v := 0; v < n; v++ {
				nv := base + o.Damping*sums[v] + extra
				delta += math.Abs(nv - ranks[v])
				ranks[v] = nv
			}
		} else {
			partial := make([]float64, pool.Workers())
			pool.ForStatic(n, func(w, lo, hi int) {
				d := 0.0
				for v := lo; v < hi; v++ {
					nv := base + o.Damping*sums[v] + extra
					d += math.Abs(nv - ranks[v])
					ranks[v] = nv
				}
				partial[w] += d
			})
			for _, d := range partial {
				delta += d
			}
		}
		res.Iters = iter + 1
		res.Delta = delta
		if o.Tol >= 0 && delta < o.Tol {
			break
		}
	}
	return res, nil
}

// SumRanks returns the total rank mass (≈1 when dangling mass is
// redistributed; below 1 otherwise).
func SumRanks(ranks []float64) float64 {
	s := 0.0
	for _, r := range ranks {
		s += r
	}
	return s
}
