// Package analytics implements graph analytics on top of the SpMV
// engines: PageRank (the paper's evaluation application, §4.1), HITS
// (a pull-underpinned analytic cited in §1), label-propagation
// connected components, direction-optimizing BFS and Bellman-Ford
// SSSP (the §6 future-work analytics).
//
// Every analytic is engine-agnostic: it accepts any spmv.Stepper, so
// the same code runs over pull, push, or iHTL engines — the property
// the paper's evaluation relies on ("iHTL mixes push and pull but
// every edge is traversed exactly once").
package analytics

import (
	"fmt"
	"math"

	"ihtl/internal/sched"
	"ihtl/internal/spmv"
)

// PageRankOptions configures RunPageRank.
type PageRankOptions struct {
	// Damping is the damping factor; 0 selects the paper's 0.85.
	Damping float64
	// MaxIters bounds iteration count; 0 selects 100.
	MaxIters int
	// Tol stops iteration once the L1 delta falls below it; 0
	// selects 1e-9. Set negative to always run MaxIters (the paper
	// reports fixed per-iteration times).
	Tol float64
	// RedistributeDangling adds the rank mass of zero-out-degree
	// vertices uniformly each iteration. The paper's formula (§4.1)
	// omits this, so it defaults to off.
	RedistributeDangling bool
}

func (o PageRankOptions) withDefaults() PageRankOptions {
	if o.Damping == 0 { //ihtl:allow-zerocmp option defaulting, ±0 both mean "unset"
		o.Damping = 0.85
	}
	if o.MaxIters == 0 {
		o.MaxIters = 100
	}
	if o.Tol == 0 { //ihtl:allow-zerocmp option defaulting, ±0 both mean "unset"
		o.Tol = 1e-9
	}
	return o
}

// PageRankResult carries the final ranks and convergence metadata.
type PageRankResult struct {
	// Ranks is indexed in the Stepper's vertex-ID space.
	Ranks []float64
	// Iters is the number of iterations executed.
	Iters int
	// Delta is the final L1 change.
	Delta float64
}

// RunPageRank iterates PRᵢ(v) = (1-d)/n + d·Σ_{u∈N⁻(v)} PRᵢ₋₁(u)/deg⁺(u)
// over the given engine. outDeg must give the out-degree of every
// vertex in the engine's ID space. pool parallelises the O(n)
// element-wise phases; it may be nil for sequential execution.
func RunPageRank(e spmv.Stepper, outDeg []int, pool *sched.Pool, opt PageRankOptions) (PageRankResult, error) {
	n := e.NumVertices()
	if len(outDeg) != n {
		return PageRankResult{}, fmt.Errorf("analytics: outDeg length %d != %d vertices", len(outDeg), n)
	}
	o := opt.withDefaults()
	if n == 0 {
		return PageRankResult{Ranks: []float64{}}, nil
	}

	invDeg := make([]float64, n)
	for v, d := range outDeg {
		if d > 0 {
			invDeg[v] = 1 / float64(d)
		}
	}
	ranks := make([]float64, n)
	contrib := make([]float64, n)
	sums := make([]float64, n)
	base := (1 - o.Damping) / float64(n)

	// Preamble sweep: initial ranks, the contributions they push in
	// iteration 0, and the initial dangling mass.
	var dangling float64
	init := 1 / float64(n)
	for v := 0; v < n; v++ {
		ranks[v] = init
		contrib[v] = init * invDeg[v]
		if o.RedistributeDangling && outDeg[v] == 0 {
			dangling += init
		}
	}

	// Per iteration, everything element-wise runs as the Step's
	// epilogue: apply damping, accumulate the L1 delta, compute the
	// contributions the next Step will push, and collect the next
	// iteration's dangling mass — instead of separate contribution
	// and update sweeps before and after every Step. On a fused
	// stepper (core.Engine) the epilogue executes inside the Step's
	// own dispatch, making a whole PageRank iteration one pool
	// round-trip; otherwise it is one extra dispatch.
	//
	// extra is read by the epilogue workers; the orchestrator writes
	// it before each dispatch, which orders the write.
	var extra float64
	body := func(lo, hi int) (delta, dangl float64) {
		for v := lo; v < hi; v++ {
			nv := base + o.Damping*sums[v] + extra
			delta += math.Abs(nv - ranks[v])
			ranks[v] = nv
			contrib[v] = nv * invDeg[v]
			if o.RedistributeDangling && outDeg[v] == 0 {
				dangl += nv
			}
		}
		return delta, dangl
	}

	fe, fused := e.(fusedStepper)
	workers := 0
	switch {
	case fused:
		workers = fe.Workers()
	case pool != nil:
		workers = pool.Workers()
	}
	var deltaParts, danglingParts []float64
	var epi func(w, lo, hi int)
	var poolEpi func(w int)
	if workers > 0 {
		deltaParts = make([]float64, workers)
		danglingParts = make([]float64, workers)
		// Every worker writes its slot each dispatch (an empty range
		// stores zeros), so no stale partials survive an iteration.
		epi = func(w, lo, hi int) {
			deltaParts[w], danglingParts[w] = body(lo, hi)
		}
		if !fused {
			poolEpi = func(w int) {
				lo, hi := sched.SplitRange(n, workers, w)
				epi(w, lo, hi)
			}
		}
	}

	res := PageRankResult{Ranks: ranks}
	for iter := 0; iter < o.MaxIters; iter++ {
		extra = o.Damping * dangling / float64(n)
		var delta float64
		switch {
		case fused:
			fe.StepEpi(contrib, sums, epi)
		case pool != nil:
			e.Step(contrib, sums)
			pool.Run(poolEpi)
		default:
			e.Step(contrib, sums)
			delta, dangling = body(0, n)
		}
		if workers > 0 {
			delta, dangling = 0, 0
			for w := range deltaParts {
				delta += deltaParts[w]
				dangling += danglingParts[w]
			}
		}
		res.Iters = iter + 1
		res.Delta = delta
		if o.Tol >= 0 && delta < o.Tol {
			break
		}
	}
	return res, nil
}

// fusedStepper is the optional Stepper extension core.Engine provides:
// Step plus an epilogue every worker runs over its share of [0, n)
// once dst is complete, fused into the Step's own dispatch.
type fusedStepper interface {
	spmv.Stepper
	StepEpi(src, dst []float64, epi func(w, lo, hi int))
	Workers() int
}

// SumRanks returns the total rank mass (≈1 when dangling mass is
// redistributed; below 1 otherwise).
//
//ihtl:noalloc
func SumRanks(ranks []float64) float64 {
	s := 0.0
	for _, r := range ranks {
		s += r
	}
	return s
}
