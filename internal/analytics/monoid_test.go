package analytics

import (
	"testing"

	"ihtl/internal/core"
	"ihtl/internal/graph"
	"ihtl/internal/spmv"
)

// generic engines under test: pull, buffered push, and iHTL, all over
// the same monoid.
func genericEngines[T any](t *testing.T, g *graph.Graph, m spmv.Monoid[T]) map[string]spmv.GenericStepper[T] {
	t.Helper()
	out := map[string]spmv.GenericStepper[T]{}
	pull, err := spmv.NewGenericEngine(g, testPool, m, false)
	if err != nil {
		t.Fatal(err)
	}
	out["pull"] = pull
	push, err := spmv.NewGenericEngine(g, testPool, m, true)
	if err != nil {
		t.Fatal(err)
	}
	out["push"] = push
	ih, err := core.Build(g, core.Params{HubsPerBlock: 16})
	if err != nil {
		t.Fatal(err)
	}
	ge, err := core.NewGenericEngine(ih, testPool, m)
	if err != nil {
		t.Fatal(err)
	}
	// The iHTL engine works in relabeled space; wrap it to present
	// original-ID semantics like the baselines.
	out["ihtl"] = &relabeledStepper[T]{ih: ih, e: ge}
	return out
}

// relabeledStepper adapts an iHTL generic engine to original IDs.
type relabeledStepper[T any] struct {
	ih *core.IHTL
	e  *core.GenericEngine[T]
}

func (r *relabeledStepper[T]) NumVertices() int { return r.e.NumVertices() }

func (r *relabeledStepper[T]) StepMonoid(src, dst []T) {
	n := r.e.NumVertices()
	ns := make([]T, n)
	nd := make([]T, n)
	for v := 0; v < n; v++ {
		ns[r.ih.NewID[v]] = src[v]
	}
	r.e.StepMonoid(ns, nd)
	for v := 0; v < n; v++ {
		dst[v] = nd[r.ih.NewID[v]]
	}
}

func TestGenericEnginesAgreeOnMinMonoid(t *testing.T) {
	g := mustRMAT(t, 9, 8, 61)
	m := spmv.MinInt64()
	src := make([]int64, g.NumV)
	for v := range src {
		src[v] = int64((v*7919 + 13) % 1000)
	}
	// Reference: min over in-neighbours.
	want := make([]int64, g.NumV)
	for v := 0; v < g.NumV; v++ {
		acc := m.Identity
		for _, u := range g.In(graph.VID(v)) {
			if src[u] < acc {
				acc = src[u]
			}
		}
		want[v] = acc
	}
	for name, e := range genericEngines(t, g, m) {
		dst := make([]int64, g.NumV)
		e.StepMonoid(src, dst)
		for v := range want {
			if dst[v] != want[v] {
				t.Fatalf("%s: dst[%d] = %d, want %d", name, v, dst[v], want[v])
			}
		}
	}
}

func TestGenericEnginesAgreeOnSumMonoid(t *testing.T) {
	// The sum monoid must agree exactly with the float64 engines'
	// reference (same additions, possibly different order — use a
	// tolerance).
	g := mustRMAT(t, 9, 8, 62)
	src := make([]float64, g.NumV)
	for v := range src {
		src[v] = float64(v%17) + 0.25
	}
	want := referencePageRankStep(g, src)
	for name, e := range genericEngines(t, g, spmv.SumFloat64()) {
		dst := make([]float64, g.NumV)
		e.StepMonoid(src, dst)
		for v := range want {
			d := dst[v] - want[v]
			if d > 1e-9 || d < -1e-9 {
				t.Fatalf("%s: dst[%d] = %g, want %g", name, v, dst[v], want[v])
			}
		}
	}
}

func referencePageRankStep(g *graph.Graph, src []float64) []float64 {
	dst := make([]float64, g.NumV)
	for v := 0; v < g.NumV; v++ {
		s := 0.0
		for _, u := range g.In(graph.VID(v)) {
			s += src[u]
		}
		dst[v] = s
	}
	return dst
}

func TestHopDistancesViaIHTLMatchesBFS(t *testing.T) {
	g := mustRMAT(t, 9, 8, 63)
	want := referenceBFS(g, 0)

	ih, err := core.Build(g, core.Params{HubsPerBlock: 32})
	if err != nil {
		t.Fatal(err)
	}
	ge, err := core.NewGenericEngine(ih, testPool, spmv.MinInt64())
	if err != nil {
		t.Fatal(err)
	}
	wrapped := &relabeledStepper[int64]{ih: ih, e: ge}
	sources := make([]bool, g.NumV)
	sources[0] = true
	got := HopDistances(wrapped, sources)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("hop[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestMinLabelComponentsViaIHTL(t *testing.T) {
	// Two disjoint cliques; weak connectivity needs the symmetrised
	// graph (here already symmetric by construction).
	var edges []graph.Edge
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if i != j {
				edges = append(edges, graph.Edge{Src: graph.VID(i), Dst: graph.VID(j)})
				edges = append(edges, graph.Edge{Src: graph.VID(i + 6), Dst: graph.VID(j + 6)})
			}
		}
	}
	g := graph.MustFromEdges(12, edges)
	ih, err := core.Build(g, core.Params{HubsPerBlock: 4})
	if err != nil {
		t.Fatal(err)
	}
	ge, err := core.NewGenericEngine(ih, testPool, spmv.MinInt64())
	if err != nil {
		t.Fatal(err)
	}
	labels := MinLabelComponents(&relabeledStepper[int64]{ih: ih, e: ge})
	for v := 0; v < 6; v++ {
		if labels[v] != 0 {
			t.Fatalf("label[%d] = %d, want 0", v, labels[v])
		}
	}
	for v := 6; v < 12; v++ {
		if labels[v] != 6 {
			t.Fatalf("label[%d] = %d, want 6", v, labels[v])
		}
	}
}

func TestMinLabelComponentsMatchesLabelProp(t *testing.T) {
	g := Symmetrize(mustRMAT(t, 8, 6, 64))
	want := ConnectedComponents(g, testPool)

	pull, err := spmv.NewGenericEngine(g, testPool, spmv.MinInt64(), false)
	if err != nil {
		t.Fatal(err)
	}
	got := MinLabelComponents(pull)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("cc[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestReachableViaGenericEngines(t *testing.T) {
	// Path 0->1->2->3 plus isolated pair 4->5: from 0, reach {0..3};
	// from 4, reach {4,5}.
	g := graph.MustFromEdges(6, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 4, Dst: 5},
	})
	for name, e := range genericEngines(t, g, spmv.BoolOr()) {
		sources := make([]bool, 6)
		sources[0] = true
		got := Reachable(e, sources)
		want := []bool{true, true, true, true, false, false}
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%s: reach[%d] = %v, want %v", name, v, got[v], want[v])
			}
		}
	}
}

func TestSymmetrize(t *testing.T) {
	g := graph.MustFromEdges(3, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}})
	sg := Symmetrize(g)
	if sg.NumE != 4 {
		t.Fatalf("symmetrized edges = %d, want 4", sg.NumE)
	}
	if !sg.HasEdge(1, 0) || !sg.HasEdge(2, 1) {
		t.Fatal("reverse edges missing")
	}
	if err := sg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenericEngineErrors(t *testing.T) {
	g := graph.Star(4)
	if _, err := spmv.NewGenericEngine[int64](nil, testPool, spmv.MinInt64(), false); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := spmv.NewGenericEngine(g, testPool, spmv.Monoid[int64]{}, false); err == nil {
		t.Error("nil combine accepted")
	}
	ih, _ := core.Build(g, core.Params{HubsPerBlock: 2})
	if _, err := core.NewGenericEngine(ih, testPool, spmv.Monoid[int64]{}); err == nil {
		t.Error("nil combine accepted by core")
	}
	if _, err := core.NewGenericEngine[bool](nil, testPool, spmv.BoolOr()); err == nil {
		t.Error("nil IHTL accepted")
	}
}

func TestWeightedDistancesViaIHTLMatchesBellmanFord(t *testing.T) {
	g := mustRMAT(t, 9, 8, 65)
	want := referenceSSSP(g, 0) // Bellman-Ford over EdgeWeight

	ih, err := core.Build(g, core.Params{HubsPerBlock: 32})
	if err != nil {
		t.Fatal(err)
	}
	// The iHTL engine works in relabeled IDs: the weight hook maps
	// back to original IDs so weights agree with the reference.
	m := spmv.MinPlusInt64(func(src, dst graph.VID) int64 {
		return EdgeWeight(ih.OldID[src], ih.OldID[dst])
	})
	ge, err := core.NewGenericEngine(ih, testPool, m)
	if err != nil {
		t.Fatal(err)
	}
	wrapped := &relabeledStepper[int64]{ih: ih, e: ge}
	sources := make([]bool, g.NumV)
	sources[0] = true
	got := WeightedDistances(wrapped, sources)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestWeightedDistancesAcrossGenericEngines(t *testing.T) {
	g := mustRMAT(t, 8, 6, 66)
	want := referenceSSSP(g, 3)
	m := spmv.MinPlusInt64(func(src, dst graph.VID) int64 { return EdgeWeight(src, dst) })
	for _, push := range []bool{false, true} {
		e, err := spmv.NewGenericEngine(g, testPool, m, push)
		if err != nil {
			t.Fatal(err)
		}
		sources := make([]bool, g.NumV)
		sources[3] = true
		got := WeightedDistances(e, sources)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("push=%v: dist[%d] = %d, want %d", push, v, got[v], want[v])
			}
		}
	}
}

func TestMinPlusUnreachedDoesNotPoison(t *testing.T) {
	// Path 0->1->2; vertex 3 isolated. The unreached identity must
	// not leak finite values through Edge.
	g := graph.MustFromEdges(4, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 3, Dst: 3}})
	m := spmv.MinPlusInt64(func(src, dst graph.VID) int64 { return 5 })
	e, err := spmv.NewGenericEngine(g, testPool, m, false)
	if err != nil {
		t.Fatal(err)
	}
	sources := make([]bool, g.NumV)
	sources[0] = true
	got := WeightedDistances(e, sources)
	if got[0] != 0 || got[1] != 5 || got[2] != 10 {
		t.Fatalf("distances %v", got)
	}
	if g.NumV > 3 && got[3] != InfDist {
		t.Fatalf("isolated vertex got %d", got[3])
	}
}
