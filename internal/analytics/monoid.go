package analytics

import (
	"ihtl/internal/graph"
	"ihtl/internal/spmv"
)

// Monoid-engine analytics: the §6 future-work applications expressed
// as iterated monoid SpMV, so they run over ANY GenericStepper —
// including the iHTL generic engine, demonstrating that flipped-block
// locality is not tied to PageRank-style summation.

// HopDistances computes BFS hop distances from the sources (given as
// a bitmap over the engine's ID space) by iterating the min monoid:
// each round dst[v] = min over in-neighbours of src[u], then
// dist[v] = min(dist[v], dst[v]+1). Unreachable vertices get InfDist.
//
// It is the SpMV formulation of BFS: O(diameter) full-edge sweeps.
// Slower than frontier BFS on high-diameter graphs, but it exercises
// exactly the traversal the paper optimizes.
func HopDistances(e spmv.GenericStepper[int64], sources []bool) []int64 {
	n := e.NumVertices()
	dist := make([]int64, n)
	cur := make([]int64, n)
	next := make([]int64, n)
	inf := spmv.MinInt64().Identity
	for v := 0; v < n; v++ {
		if sources[v] {
			dist[v] = 0
			cur[v] = 0
		} else {
			dist[v] = InfDist
			cur[v] = inf
		}
	}
	for round := 0; round < n; round++ {
		e.StepMonoid(cur, next)
		changed := false
		for v := 0; v < n; v++ {
			if next[v] >= inf {
				cur[v] = dist[v]
				if cur[v] == InfDist {
					cur[v] = inf
				}
				continue
			}
			if d := next[v] + 1; dist[v] == InfDist || d < dist[v] {
				dist[v] = d
				changed = true
			}
			cur[v] = dist[v]
		}
		if !changed {
			break
		}
	}
	return dist
}

// MinLabelComponents computes weakly-connected-component labels by
// iterating the min monoid until fixpoint: label[v] becomes the
// minimum label over {v} ∪ N⁻(v) each round. For weak connectivity
// the engine must be built over the symmetrised graph (every edge
// present in both directions); Symmetrize provides one.
func MinLabelComponents(e spmv.GenericStepper[int64]) []graph.VID {
	n := e.NumVertices()
	cur := make([]int64, n)
	next := make([]int64, n)
	for v := 0; v < n; v++ {
		cur[v] = int64(v)
	}
	for round := 0; round < n; round++ {
		e.StepMonoid(cur, next)
		changed := false
		for v := 0; v < n; v++ {
			if next[v] < cur[v] {
				cur[v] = next[v]
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	out := make([]graph.VID, n)
	for v := 0; v < n; v++ {
		out[v] = graph.VID(cur[v])
	}
	return out
}

// Reachable computes the set of vertices reachable from the sources
// by iterating the boolean-or monoid over in-neighbour steps of the
// TRANSPOSED adjacency... the engine computes dst[v] = OR over
// in-neighbours, so over the original graph it propagates along edge
// direction: v becomes reachable when any in-neighbour is.
func Reachable(e spmv.GenericStepper[bool], sources []bool) []bool {
	n := e.NumVertices()
	cur := make([]bool, n)
	next := make([]bool, n)
	copy(cur, sources)
	for round := 0; round < n; round++ {
		e.StepMonoid(cur, next)
		changed := false
		for v := 0; v < n; v++ {
			if next[v] && !cur[v] {
				cur[v] = true
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return cur
}

// Symmetrize returns g plus all reverse edges (deduplicated) — the
// undirected view used for weak connectivity.
func Symmetrize(g *graph.Graph) *graph.Graph {
	edges := g.Edges(nil)
	n := len(edges)
	for i := 0; i < n; i++ {
		edges = append(edges, graph.Edge{Src: edges[i].Dst, Dst: edges[i].Src})
	}
	sg, err := graph.Build(g.NumV, edges, graph.BuildOptions{Dedup: true})
	if err != nil {
		panic(err) // cannot happen: inputs come from a valid graph
	}
	return sg
}

// WeightedDistances computes single-source shortest paths by iterated
// min-plus semiring steps over any GenericStepper built with
// spmv.MinPlusInt64 — SSSP with iHTL locality, the §6 goal. sources
// is a bitmap in the stepper's ID space; the result uses InfDist for
// unreachable vertices.
func WeightedDistances(e spmv.GenericStepper[int64], sources []bool) []int64 {
	n := e.NumVertices()
	inf := spmv.MinInt64().Identity
	dist := make([]int64, n)
	cur := make([]int64, n)
	next := make([]int64, n)
	for v := 0; v < n; v++ {
		if sources[v] {
			dist[v] = 0
			cur[v] = 0
		} else {
			dist[v] = InfDist
			cur[v] = inf
		}
	}
	for round := 0; round < n; round++ {
		e.StepMonoid(cur, next)
		changed := false
		for v := 0; v < n; v++ {
			if next[v] < inf && (dist[v] == InfDist || next[v] < dist[v]) {
				dist[v] = next[v]
				changed = true
			}
			if dist[v] == InfDist {
				cur[v] = inf
			} else {
				cur[v] = dist[v]
			}
		}
		if !changed {
			break
		}
	}
	return dist
}
