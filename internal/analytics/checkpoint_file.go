package analytics

import (
	"io"
	"os"

	"ihtl/internal/atomicio"
)

// WriteCheckpointFile persists c to path crash-consistently: the
// encoded snapshot is written to a temp file, fsynced, and renamed
// over path, so a crash at any instant leaves either the previous
// complete checkpoint or the new one — never a torn file. This is the
// write half of the serving daemon's warm-restart contract.
func WriteCheckpointFile(path string, c *Checkpoint) error {
	return atomicio.WriteFile(path, func(w io.Writer) error {
		return EncodeCheckpoint(w, c)
	})
}

// ReadCheckpointFile loads a checkpoint written by WriteCheckpointFile.
// Any truncation or corruption — a torn write from a non-atomic
// writer, a bad disk — surfaces as an error, never a panic.
func ReadCheckpointFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeCheckpoint(f)
}
