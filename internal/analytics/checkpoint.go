package analytics

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Checkpoint is a resumable snapshot of an iterative driver
// (RunPageRankCtx, RunPersonalizedPageRankCtx). It captures exactly
// the state the driver cannot recompute deterministically from its
// inputs: the iteration count, the rank vector, and the per-lane
// dangling mass (whose parallel summation order makes it part of the
// bit-for-bit state). Contributions are recomputed on restore as
// ranks[v]·invDeg[v] — an element-wise product with a single
// rounding per element — so a resumed run produces bit-for-bit the
// same trajectory as an uninterrupted one.
type Checkpoint struct {
	// Algo names the producing driver ("pagerank" or "ppr"); resume
	// rejects a mismatched snapshot.
	Algo string
	// Iter is the number of completed iterations at snapshot time.
	Iter int
	// N is the vertex count, K the lane count (1 for scalar PageRank).
	N, K int
	// Ranks is the rank vector, vertex-major interleaved (len N·K).
	Ranks []float64
	// Aux is driver-specific scalar state: the per-lane dangling mass
	// (len K) for both PageRank and PPR.
	Aux []float64
}

// Clone returns a deep copy. Drivers hand their internal snapshot to
// OnCheckpoint callbacks; callers that retain it past the callback
// must Clone it first.
func (c *Checkpoint) Clone() *Checkpoint {
	if c == nil {
		return nil
	}
	d := *c
	d.Ranks = append([]float64(nil), c.Ranks...)
	d.Aux = append([]float64(nil), c.Aux...)
	return &d
}

// validate checks the internal length invariants.
func (c *Checkpoint) validate() error {
	if c.N < 0 || c.K <= 0 || c.Iter < 0 {
		return fmt.Errorf("analytics: checkpoint dims iter=%d n=%d k=%d invalid", c.Iter, c.N, c.K)
	}
	if len(c.Ranks) != c.N*c.K {
		return fmt.Errorf("analytics: checkpoint ranks length %d != N*K = %d", len(c.Ranks), c.N*c.K)
	}
	if len(c.Aux) != c.K {
		return fmt.Errorf("analytics: checkpoint aux length %d != K = %d", len(c.Aux), c.K)
	}
	return nil
}

// Binary codec: a fixed magic, a format version, then the fields in
// little-endian order. The format is versioned so layout changes can
// be detected instead of silently misread.
const (
	ckptMagic   = "IHTLCKPT"
	ckptVersion = uint32(1)
	// ckptMaxAlgo bounds the algo-name length a decoder will accept,
	// guarding the allocation against corrupt headers.
	ckptMaxAlgo = 1 << 10
)

// EncodeCheckpoint writes c to w in the versioned binary format.
func EncodeCheckpoint(w io.Writer, c *Checkpoint) error {
	if c == nil {
		return fmt.Errorf("analytics: nil checkpoint")
	}
	if err := c.validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(ckptMagic); err != nil {
		return err
	}
	var u32 [4]byte
	var u64 [8]byte
	binary.LittleEndian.PutUint32(u32[:], ckptVersion)
	if _, err := bw.Write(u32[:]); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(u32[:], uint32(len(c.Algo)))
	if _, err := bw.Write(u32[:]); err != nil {
		return err
	}
	if _, err := bw.WriteString(c.Algo); err != nil {
		return err
	}
	for _, v := range []int{c.Iter, c.N, c.K} {
		binary.LittleEndian.PutUint64(u64[:], uint64(v))
		if _, err := bw.Write(u64[:]); err != nil {
			return err
		}
	}
	for _, vec := range [][]float64{c.Ranks, c.Aux} {
		binary.LittleEndian.PutUint64(u64[:], uint64(len(vec)))
		if _, err := bw.Write(u64[:]); err != nil {
			return err
		}
		for _, x := range vec {
			binary.LittleEndian.PutUint64(u64[:], math.Float64bits(x))
			if _, err := bw.Write(u64[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// DecodeCheckpoint reads a checkpoint in the EncodeCheckpoint format,
// verifying the magic, version, and length invariants.
//
//ihtl:nopanic
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	br := bufio.NewReader(r)
	var magic [len(ckptMagic)]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("analytics: checkpoint magic: %w", err)
	}
	if string(magic[:]) != ckptMagic {
		return nil, fmt.Errorf("analytics: bad checkpoint magic %q", magic[:])
	}
	var u32 [4]byte
	var u64 [8]byte
	if _, err := io.ReadFull(br, u32[:]); err != nil {
		return nil, err
	}
	if v := binary.LittleEndian.Uint32(u32[:]); v != ckptVersion {
		return nil, fmt.Errorf("analytics: checkpoint version %d, want %d", v, ckptVersion)
	}
	if _, err := io.ReadFull(br, u32[:]); err != nil {
		return nil, err
	}
	algoLen := binary.LittleEndian.Uint32(u32[:])
	if algoLen > ckptMaxAlgo {
		return nil, fmt.Errorf("analytics: checkpoint algo length %d too large", algoLen)
	}
	algo := make([]byte, algoLen)
	if _, err := io.ReadFull(br, algo); err != nil {
		return nil, err
	}
	c := &Checkpoint{Algo: string(algo)}
	for _, dst := range []*int{&c.Iter, &c.N, &c.K} {
		if _, err := io.ReadFull(br, u64[:]); err != nil {
			return nil, err
		}
		*dst = int(int64(binary.LittleEndian.Uint64(u64[:])))
	}
	if c.N < 0 || c.K <= 0 || c.K > 1<<20 || c.N > 1<<40 {
		return nil, fmt.Errorf("analytics: checkpoint dims n=%d k=%d out of range", c.N, c.K)
	}
	for _, vec := range []*[]float64{&c.Ranks, &c.Aux} {
		if _, err := io.ReadFull(br, u64[:]); err != nil {
			return nil, err
		}
		ln := int64(binary.LittleEndian.Uint64(u64[:]))
		want := int64(c.N) * int64(c.K)
		if vec == &c.Aux {
			want = int64(c.K)
		}
		if ln != want {
			return nil, fmt.Errorf("analytics: checkpoint vector length %d, want %d", ln, want)
		}
		v := make([]float64, ln)
		for i := range v {
			if _, err := io.ReadFull(br, u64[:]); err != nil {
				return nil, err
			}
			v[i] = math.Float64frombits(binary.LittleEndian.Uint64(u64[:]))
		}
		*vec = v
	}
	if err := c.validate(); err != nil {
		return nil, err
	}
	return c, nil
}
