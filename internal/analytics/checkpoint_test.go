package analytics

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"ihtl/internal/core"
	"ihtl/internal/faultinject"
	"ihtl/internal/graph"
	"ihtl/internal/spmv"
)

// seqStepper is a deliberately sequential, deterministic Stepper /
// BatchStepper: it runs on the calling goroutine in vertex order, so
// two runs over the same inputs are bit-for-bit identical — the
// property the resume tests below assert about the DRIVER, isolated
// from the parallel engines' run-to-run FP reassociation.
type seqStepper struct{ g *graph.Graph }

func (s seqStepper) NumVertices() int { return s.g.NumV }

func (s seqStepper) Step(src, dst []float64) {
	for v := 0; v < s.g.NumV; v++ {
		sum := 0.0
		for _, u := range s.g.In(graph.VID(v)) {
			sum += src[u]
		}
		dst[v] = sum
	}
}

func (s seqStepper) StepBatch(src, dst []float64, k int) {
	for v := 0; v < s.g.NumV; v++ {
		vb := v * k
		for j := 0; j < k; j++ {
			dst[vb+j] = 0
		}
		for _, u := range s.g.In(graph.VID(v)) {
			ub := int(u) * k
			for j := 0; j < k; j++ {
				dst[vb+j] += src[ub+j]
			}
		}
	}
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func TestCheckpointCodecRoundTrip(t *testing.T) {
	c := &Checkpoint{
		Algo: "pagerank", Iter: 17, N: 3, K: 2,
		Ranks: []float64{0.25, math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1), 1e-308},
		Aux:   []float64{0.125, math.NaN()},
	}
	var buf bytes.Buffer
	if err := EncodeCheckpoint(&buf, c); err != nil {
		t.Fatal(err)
	}
	d, err := DecodeCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d.Algo != c.Algo || d.Iter != c.Iter || d.N != c.N || d.K != c.K {
		t.Fatalf("header %q/%d/%d/%d, want %q/%d/%d/%d", d.Algo, d.Iter, d.N, d.K, c.Algo, c.Iter, c.N, c.K)
	}
	if !bitsEqual(d.Ranks, c.Ranks) || !bitsEqual(d.Aux, c.Aux) {
		t.Fatalf("vectors not bit-identical: %v / %v", d.Ranks, d.Aux)
	}
}

func TestCheckpointDecodeRejections(t *testing.T) {
	c := &Checkpoint{Algo: "pagerank", Iter: 2, N: 4, K: 1,
		Ranks: []float64{1, 2, 3, 4}, Aux: []float64{0.5}}
	var buf bytes.Buffer
	if err := EncodeCheckpoint(&buf, c); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	corrupt := func(name string, mutate func(b []byte) []byte) {
		b := mutate(append([]byte(nil), good...))
		if _, err := DecodeCheckpoint(bytes.NewReader(b)); err == nil {
			t.Fatalf("%s: decode accepted corrupt stream", name)
		}
	}
	corrupt("bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b })
	corrupt("bad version", func(b []byte) []byte { b[8] = 99; return b })
	corrupt("algo too long", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[12:], 1<<20)
		return b
	})
	corrupt("truncated", func(b []byte) []byte { return b[:len(b)/2] })
	corrupt("empty", func(b []byte) []byte { return nil })
	// The ranks-length word sits after magic+version+algoLen+algo+3 dims.
	rlenOff := 8 + 4 + 4 + len(c.Algo) + 24
	corrupt("ranks length mismatch", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[rlenOff:], 3)
		return b
	})
	corrupt("dims out of range", func(b []byte) []byte {
		// K word is the last of the three dims before the ranks length.
		binary.LittleEndian.PutUint64(b[rlenOff-8:], 1<<30)
		return b
	})

	// Encoding a checkpoint that violates its own invariants fails too.
	bad := &Checkpoint{Algo: "pagerank", N: 4, K: 1, Ranks: []float64{1}, Aux: []float64{0}}
	if err := EncodeCheckpoint(&buf, bad); err == nil {
		t.Fatal("encode accepted inconsistent lengths")
	}
	if err := EncodeCheckpoint(&buf, nil); err == nil {
		t.Fatal("encode accepted nil checkpoint")
	}
}

func TestPageRankResumeBitForBit(t *testing.T) {
	g := mustRMAT(t, 9, 8, 71)
	e := seqStepper{g}
	deg := outDegrees(g)
	base := PageRankOptions{MaxIters: 40, Tol: -1, RedistributeDangling: true}

	full, err := RunPageRank(e, deg, nil, base)
	if err != nil {
		t.Fatal(err)
	}

	// First half, snapshotting every 10 iterations through the binary
	// codec — exactly what a process writing checkpoint files does.
	var encoded []byte
	half := base
	half.MaxIters = 20
	half.CheckpointEvery = 10
	half.OnCheckpoint = func(c *Checkpoint) {
		var buf bytes.Buffer
		if err := EncodeCheckpoint(&buf, c); err != nil {
			t.Fatal(err)
		}
		encoded = buf.Bytes()
	}
	if _, err := RunPageRank(e, deg, nil, half); err != nil {
		t.Fatal(err)
	}
	ckpt, err := DecodeCheckpoint(bytes.NewReader(encoded))
	if err != nil {
		t.Fatal(err)
	}
	if ckpt.Iter != 20 {
		t.Fatalf("last checkpoint at iter %d, want 20", ckpt.Iter)
	}

	resumed := base
	resumed.Resume = ckpt
	res, err := RunPageRank(e, deg, nil, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != 40 {
		t.Fatalf("resumed run reached iter %d, want 40", res.Iters)
	}
	if !bitsEqual(res.Ranks, full.Ranks) {
		t.Fatal("resumed ranks are not bit-for-bit the uninterrupted run")
	}
	if math.Float64bits(res.Delta) != math.Float64bits(full.Delta) {
		t.Fatalf("resumed delta %g, want %g", res.Delta, full.Delta)
	}
}

func TestPPRResumeBitForBit(t *testing.T) {
	g := mustRMAT(t, 9, 8, 73)
	e := seqStepper{g}
	deg := outDegrees(g)
	sources := []int{1, 17, 200}
	base := PageRankOptions{MaxIters: 30, Tol: -1, RedistributeDangling: true}

	full, err := RunPersonalizedPageRank(e, deg, nil, sources, base)
	if err != nil {
		t.Fatal(err)
	}

	var ckpt *Checkpoint
	half := base
	half.MaxIters = 15
	half.CheckpointEvery = 5
	half.OnCheckpoint = func(c *Checkpoint) { ckpt = c.Clone() }
	if _, err := RunPersonalizedPageRank(e, deg, nil, sources, half); err != nil {
		t.Fatal(err)
	}
	if ckpt == nil || ckpt.Iter != 15 || ckpt.Algo != "ppr" || ckpt.K != len(sources) {
		t.Fatalf("bad checkpoint: %+v", ckpt)
	}

	resumed := base
	resumed.Resume = ckpt
	res, err := RunPersonalizedPageRank(e, deg, nil, sources, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != 30 {
		t.Fatalf("resumed run reached iter %d, want 30", res.Iters)
	}
	if !bitsEqual(res.Ranks, full.Ranks) {
		t.Fatal("resumed PPR lanes are not bit-for-bit the uninterrupted run")
	}
}

func TestResumeRejectsMismatchedCheckpoint(t *testing.T) {
	g := mustRMAT(t, 8, 8, 75)
	e := seqStepper{g}
	deg := outDegrees(g)
	for _, c := range []*Checkpoint{
		{Algo: "ppr", Iter: 1, N: g.NumV, K: 1, Ranks: make([]float64, g.NumV), Aux: []float64{0}},
		{Algo: "pagerank", Iter: 1, N: g.NumV + 1, K: 1, Ranks: make([]float64, g.NumV+1), Aux: []float64{0}},
		{Algo: "pagerank", Iter: 1, N: g.NumV, K: 2, Ranks: make([]float64, 2*g.NumV), Aux: []float64{0, 0}},
		{Algo: "pagerank", Iter: -1, N: g.NumV, K: 1, Ranks: make([]float64, g.NumV), Aux: []float64{0}},
	} {
		if _, err := RunPageRank(e, deg, nil, PageRankOptions{MaxIters: 5, Resume: c}); err == nil {
			t.Fatalf("resume accepted mismatched checkpoint %q n=%d k=%d iter=%d", c.Algo, c.N, c.K, c.Iter)
		}
	}
}

func TestPageRankCancelMidRunThenResume(t *testing.T) {
	g := mustRMAT(t, 9, 8, 77)
	e := seqStepper{g}
	deg := outDegrees(g)
	base := PageRankOptions{MaxIters: 30, Tol: -1}

	full, err := RunPageRank(e, deg, nil, base)
	if err != nil {
		t.Fatal(err)
	}

	// Cancel from the checkpoint callback: the run must stop at the
	// next iteration boundary with ctx.Err(), checkpoint in hand.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ckpt *Checkpoint
	interrupted := base
	interrupted.CheckpointEvery = 1
	interrupted.OnCheckpoint = func(c *Checkpoint) {
		if c.Iter == 7 {
			ckpt = c.Clone()
			cancel()
		}
	}
	res, err := RunPageRankCtx(ctx, e, deg, nil, interrupted)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Iters != 7 || ckpt == nil {
		t.Fatalf("cancelled at iter %d with ckpt %v, want 7", res.Iters, ckpt)
	}

	resumed := base
	resumed.Resume = ckpt
	res2, err := RunPageRank(e, deg, nil, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Iters != 30 || !bitsEqual(res2.Ranks, full.Ranks) {
		t.Fatal("cancel+resume did not reproduce the uninterrupted run")
	}
}

func TestPageRankRollbackOnNumericFault(t *testing.T) {
	g := mustRMAT(t, 9, 8, 79)
	want := referencePageRank(g, 20, 0.85)

	ih, err := core.Build(g, core.Params{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngineOpts(ih, testPool, core.EngineOptions{
		Health: spmv.HealthPolicy{Mode: spmv.HealthRollback},
	})
	if err != nil {
		t.Fatal(err)
	}
	deg := make([]int, g.NumV)
	for nv := 0; nv < g.NumV; nv++ {
		deg[nv] = g.OutDegree(ih.OldID[nv])
	}

	// The watchdog's poison hook fires once per worker range per step;
	// After=2·workers lands the NaN inside the third iteration, and
	// Times=1 makes the post-rollback retry of that step come up clean.
	faultinject.Activate(faultinject.NewPlan(faultinject.Rule{
		Site: faultinject.SiteStepHealth, Kind: faultinject.NaN,
		After: int64(2 * e.Workers()), Times: 1,
	}))
	defer faultinject.Deactivate()
	res, err := RunPageRank(e, deg, testPool, PageRankOptions{
		MaxIters: 20, Tol: -1, CheckpointEvery: 1,
	})
	if err != nil {
		t.Fatalf("rollback did not absorb the numeric fault: %v", err)
	}
	if res.Rollbacks < 1 {
		t.Fatalf("Rollbacks = %d, want >= 1", res.Rollbacks)
	}
	if res.Iters != 20 {
		t.Fatalf("reached iter %d, want 20", res.Iters)
	}
	back := make([]float64, g.NumV)
	ih.PermuteToOld(res.Ranks, back)
	for v := range want {
		if math.Abs(back[v]-want[v]) > 1e-9*(1+math.Abs(want[v])) {
			t.Fatalf("post-rollback rank[%d] = %g, want %g", v, back[v], want[v])
		}
	}
}

func TestPageRankRollbackExhaustionSurfaces(t *testing.T) {
	g := mustRMAT(t, 8, 8, 81)
	ih, err := core.Build(g, core.Params{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngineOpts(ih, testPool, core.EngineOptions{
		Health: spmv.HealthPolicy{Mode: spmv.HealthRollback},
	})
	if err != nil {
		t.Fatal(err)
	}
	deg := make([]int, g.NumV)
	for nv := 0; nv < g.NumV; nv++ {
		deg[nv] = g.OutDegree(ih.OldID[nv])
	}
	// A persistent fault: every retry of the poisoned step fails again,
	// so after maxRollbackRetries the NumericError must surface.
	faultinject.Activate(faultinject.NewPlan(faultinject.Rule{
		Site: faultinject.SiteStepHealth, Kind: faultinject.NaN,
		After: 0, Times: 1 << 30,
	}))
	defer faultinject.Deactivate()
	res, err := RunPageRank(e, deg, testPool, PageRankOptions{
		MaxIters: 20, Tol: -1, CheckpointEvery: 1,
	})
	var nerr *spmv.NumericError
	if !errors.As(err, &nerr) || !nerr.Rollback {
		t.Fatalf("err = %v, want rollback *spmv.NumericError", err)
	}
	if res.Rollbacks != maxRollbackRetries {
		t.Fatalf("Rollbacks = %d, want %d", res.Rollbacks, maxRollbackRetries)
	}
}
