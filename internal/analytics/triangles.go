package analytics

import (
	"sort"
	"sync/atomic"

	"ihtl/internal/graph"
	"ihtl/internal/sched"
)

// TriangleCount counts the triangles of the undirected view of g
// (edge directions and multiplicities are ignored) using the
// rank-ordered intersection algorithm with the low/high-degree
// differentiation the paper traces back to AYZ (§5.1): vertices are
// ranked by degree so every triangle is counted exactly once at its
// lowest-ranked vertex, which bounds the intersection work on hub
// vertices — the same "treat hubs differently" principle iHTL applies
// to SpMV.
func TriangleCount(g *graph.Graph, pool *sched.Pool) int64 {
	n := g.NumV
	if n == 0 {
		return 0
	}
	// rank[v]: position of v in increasing-degree order; triangles
	// are counted via edges directed from lower to higher rank.
	rank := make([]int32, n)
	{
		ids := make([]graph.VID, n)
		for v := range ids {
			ids[v] = graph.VID(v)
		}
		sort.Slice(ids, func(i, j int) bool {
			di, dj := g.Degree(ids[i]), g.Degree(ids[j])
			if di != dj {
				return di < dj
			}
			return ids[i] < ids[j]
		})
		for r, v := range ids {
			rank[v] = int32(r)
		}
	}

	// Forward adjacency: undirected neighbours with higher rank,
	// deduplicated and sorted by rank. Hubs end up with SHORT forward
	// lists (few neighbours outrank them), which is exactly the AYZ
	// trick.
	fwd := make([][]int32, n)
	pool.ForDynamic(n, 256, func(w, lo, hi int) {
		var tmp []int32
		for v := lo; v < hi; v++ {
			tmp = tmp[:0]
			rv := rank[v]
			for _, u := range g.Out(graph.VID(v)) {
				if rank[u] > rv {
					tmp = append(tmp, rank[u])
				}
			}
			for _, u := range g.In(graph.VID(v)) {
				if rank[u] > rv {
					tmp = append(tmp, rank[u])
				}
			}
			if len(tmp) == 0 {
				continue
			}
			sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
			lst := make([]int32, 0, len(tmp))
			for i, r := range tmp {
				if i == 0 || r != tmp[i-1] {
					lst = append(lst, r)
				}
			}
			fwd[rank[v]] = lst
		}
	})

	var total atomic.Int64
	pool.ForDynamic(n, 64, func(w, lo, hi int) {
		var local int64
		for r := lo; r < hi; r++ {
			lst := fwd[r]
			for i, a := range lst {
				local += int64(sortedIntersectCount(lst[i+1:], fwd[a]))
			}
		}
		total.Add(local)
	})
	return total.Load()
}

// sortedIntersectCount returns |a ∩ b| for sorted slices.
func sortedIntersectCount(a, b []int32) int {
	count, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			count++
			i++
			j++
		}
	}
	return count
}
