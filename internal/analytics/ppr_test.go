package analytics

import (
	"math"
	"testing"

	"ihtl/internal/core"
	"ihtl/internal/graph"
	"ihtl/internal/spmv"
)

// referencePPR is a slow, obviously-correct sequential personalized
// PageRank from a single source, mirroring RunPersonalizedPageRank's
// update rule (including source-directed dangling redistribution).
func referencePPR(g *graph.Graph, source, iters int, damping float64, redistribute bool) []float64 {
	n := g.NumV
	ranks := make([]float64, n)
	ranks[source] = 1
	for it := 0; it < iters; it++ {
		dangling := 0.0
		if redistribute {
			for v := 0; v < n; v++ {
				if g.OutDegree(graph.VID(v)) == 0 {
					dangling += ranks[v]
				}
			}
		}
		next := make([]float64, n)
		for v := 0; v < n; v++ {
			sum := 0.0
			for _, u := range g.In(graph.VID(v)) {
				sum += ranks[u] / float64(g.OutDegree(u))
			}
			next[v] = damping * sum
		}
		next[source] += (1 - damping) + damping*dangling
		ranks = next
	}
	return ranks
}

func pprSources(g *graph.Graph, count int) []int {
	// Pick vertices with outgoing edges, spread across the ID range.
	var srcs []int
	for v := 0; v < g.NumV && len(srcs) < count; v += 1 + g.NumV/(3*count) {
		if g.OutDegree(graph.VID(v)) > 0 {
			srcs = append(srcs, v)
		}
	}
	return srcs
}

// TestPPRMatchesReference pins the batched run against K independent
// sequential references on the spmv baselines.
func TestPPRMatchesReference(t *testing.T) {
	g := mustRMAT(t, 9, 8, 41)
	sources := pprSources(g, 4)
	for _, redistribute := range []bool{false, true} {
		opts := PageRankOptions{MaxIters: 20, Tol: -1, RedistributeDangling: redistribute}
		for _, dir := range []spmv.Direction{spmv.Pull, spmv.PushBuffered} {
			e, err := spmv.NewEngine(g, testPool, dir, spmv.Options{})
			if err != nil {
				t.Fatal(err)
			}
			res, err := RunPersonalizedPageRank(e, outDegrees(g), testPool, sources, opts)
			if err != nil {
				t.Fatal(err)
			}
			if res.Iters != 20 || res.K != len(sources) {
				t.Fatalf("%v: ran %d iters K=%d", dir, res.Iters, res.K)
			}
			var lane []float64
			for j, s := range sources {
				want := referencePPR(g, s, 20, 0.85, redistribute)
				lane = res.Lane(j, lane)
				for v := range want {
					if math.Abs(lane[v]-want[v]) > 1e-10 {
						t.Fatalf("%v redistribute=%v: lane %d rank[%d] = %g, want %g",
							dir, redistribute, j, v, lane[v], want[v])
					}
				}
			}
		}
	}
}

// TestPPRBatchedMatchesScalarRuns pins the K-lane batched run
// bit-for-bit against K separate single-source runs on the Pull
// engine, whose per-destination accumulation order is deterministic:
// amortising the edge stream over lanes must not change a single bit
// of any lane.
func TestPPRBatchedMatchesScalarRuns(t *testing.T) {
	g := mustRMAT(t, 9, 8, 43)
	sources := pprSources(g, 3)
	e, err := spmv.NewEngine(g, testPool, spmv.Pull, spmv.Options{})
	if err != nil {
		t.Fatal(err)
	}
	opts := PageRankOptions{MaxIters: 15, Tol: -1, RedistributeDangling: true}
	batched, err := RunPersonalizedPageRank(e, outDegrees(g), testPool, sources, opts)
	if err != nil {
		t.Fatal(err)
	}
	var lane []float64
	for j, s := range sources {
		single, err := RunPersonalizedPageRank(e, outDegrees(g), testPool, []int{s}, opts)
		if err != nil {
			t.Fatal(err)
		}
		lane = batched.Lane(j, lane)
		for v := range single.Ranks {
			if math.Float64bits(lane[v]) != math.Float64bits(single.Ranks[v]) {
				t.Fatalf("lane %d rank[%d] = %v, single-source run got %v",
					j, v, lane[v], single.Ranks[v])
			}
		}
		if batched.Deltas[j] != single.Deltas[0] {
			t.Fatalf("lane %d delta %v != single-source delta %v",
				j, batched.Deltas[j], single.Deltas[0])
		}
	}
}

// TestPPRViaIHTLEngine checks the fused batched epilogue path against
// the Pull baseline within float tolerance (the iHTL merge order is
// schedule-dependent on real-valued data, so parity is numeric, not
// bitwise).
func TestPPRViaIHTLEngine(t *testing.T) {
	g := mustRMAT(t, 10, 8, 47)
	sources := pprSources(g, 4)

	pe, err := spmv.NewEngine(g, testPool, spmv.Pull, spmv.Options{})
	if err != nil {
		t.Fatal(err)
	}
	opts := PageRankOptions{MaxIters: 15, Tol: -1, RedistributeDangling: true}
	want, err := RunPersonalizedPageRank(pe, outDegrees(g), testPool, sources, opts)
	if err != nil {
		t.Fatal(err)
	}

	ih, err := core.Build(g, core.Params{HubsPerBlock: 64}.ForBatch(len(sources)))
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(ih, testPool)
	if err != nil {
		t.Fatal(err)
	}
	deg := make([]int, g.NumV)
	for nv := 0; nv < g.NumV; nv++ {
		deg[nv] = g.OutDegree(ih.OldID[nv])
	}
	newSources := make([]int, len(sources))
	for j, s := range sources {
		newSources[j] = int(ih.NewID[s])
	}
	res, err := RunPersonalizedPageRank(e, deg, testPool, newSources, opts)
	if err != nil {
		t.Fatal(err)
	}
	wantLane := make([]float64, g.NumV)
	gotNew := make([]float64, g.NumV)
	gotOld := make([]float64, g.NumV)
	for j := range sources {
		want.Lane(j, wantLane)
		res.Lane(j, gotNew)
		ih.PermuteToOld(gotNew, gotOld)
		for v := range wantLane {
			if math.Abs(gotOld[v]-wantLane[v]) > 1e-10 {
				t.Fatalf("lane %d rank[%d] = %g, want %g", j, v, gotOld[v], wantLane[v])
			}
		}
	}
}

// TestPPRSanity checks structural properties: with dangling mass
// redistributed each lane conserves its unit of rank, the source
// carries the largest rank, and vertices unreachable from the source
// stay at exactly zero.
func TestPPRSanity(t *testing.T) {
	// Two components: a 4-cycle 0→1→2→3→0 and an isolated pair 4→5→4.
	g := graph.MustFromEdges(6, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 0},
		{Src: 4, Dst: 5}, {Src: 5, Dst: 4},
	})
	e, err := spmv.NewEngine(g, testPool, spmv.Pull, spmv.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPersonalizedPageRank(e, outDegrees(g), testPool, []int{0},
		PageRankOptions{MaxIters: 60, Tol: -1, RedistributeDangling: true})
	if err != nil {
		t.Fatal(err)
	}
	lane := res.Lane(0, nil)
	mass := 0.0
	for v, r := range lane {
		mass += r
		if r > lane[0] && v != 0 {
			t.Errorf("vertex %d outranks the source: %g > %g", v, r, lane[0])
		}
	}
	if math.Abs(mass-1) > 1e-9 {
		t.Errorf("rank mass = %g, want 1", mass)
	}
	if lane[4] != 0 || lane[5] != 0 {
		t.Errorf("unreachable component has rank (%g, %g), want exactly 0", lane[4], lane[5])
	}
}

func TestPPRErrors(t *testing.T) {
	g := mustRMAT(t, 6, 4, 3)
	e, err := spmv.NewEngine(g, testPool, spmv.Pull, spmv.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunPersonalizedPageRank(e, outDegrees(g), testPool, nil, PageRankOptions{}); err == nil {
		t.Error("no sources: want error")
	}
	if _, err := RunPersonalizedPageRank(e, make([]int, 3), testPool, []int{0}, PageRankOptions{}); err == nil {
		t.Error("short outDeg: want error")
	}
	if _, err := RunPersonalizedPageRank(e, outDegrees(g), testPool, []int{g.NumV}, PageRankOptions{}); err == nil {
		t.Error("out-of-range source: want error")
	}
}
