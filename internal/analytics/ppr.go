package analytics

import (
	"context"
	"errors"
	"fmt"
	"math"

	"ihtl/internal/sched"
	"ihtl/internal/spmv"
)

// PPRResult carries the converged lanes of one batched personalized
// PageRank run.
type PPRResult struct {
	// Ranks is vertex-major interleaved: lane j of vertex v at
	// Ranks[v*K+j], in the Stepper's vertex-ID space.
	Ranks []float64
	// K is the batch width (the number of sources).
	K int
	// Iters is the absolute iteration index reached; every iteration
	// advances all K lanes in a single batched Step.
	Iters int
	// Deltas is the final per-lane L1 change.
	Deltas []float64
	// Rollbacks counts checkpoint restores triggered by numeric-
	// health errors (spmv.HealthRollback engines only).
	Rollbacks int
}

// Lane copies lane j of the interleaved ranks into a dense vector.
func (r PPRResult) Lane(j int, out []float64) []float64 {
	n := len(r.Ranks) / r.K
	if out == nil {
		out = make([]float64, n)
	}
	for v := 0; v < n; v++ {
		out[v] = r.Ranks[v*r.K+j]
	}
	return out
}

// batchFusedStepper is the optional BatchStepper extension core.Engine
// provides: StepBatch plus a fused epilogue over vertex ranges.
type batchFusedStepper interface {
	spmv.BatchStepper
	StepBatchEpi(src, dst []float64, k int, epi func(w, lo, hi int))
	Workers() int
}

// batchCtxFusedStepper extends batchFusedStepper with the cancellable,
// error-returning variant (core.Engine's StepBatchEpiCtx).
type batchCtxFusedStepper interface {
	batchFusedStepper
	StepBatchEpiCtx(ctx context.Context, src, dst []float64, k int, epi func(w, lo, hi int)) error
}

// RunPersonalizedPageRank iterates K personalized PageRanks — one per
// source — through batched SpMV steps:
//
//	PPRⱼ(v) = (1-d)·1[v = sⱼ] + d·Σ_{u∈N⁻(v)} PPRⱼ(u)/deg⁺(u)
//
// All K lanes share every edge load: one StepBatch per iteration
// advances every source, and on a fused batched stepper (core.Engine)
// the damping/delta/contribution sweep runs inside the same dispatch,
// so a whole K-source iteration is one pool round-trip. Iteration
// stops when every lane's L1 delta falls below opt.Tol (or at
// opt.MaxIters). With opt.RedistributeDangling, each lane's dangling
// mass teleports back to its own source, the standard PPR treatment.
//
// sources are vertex IDs in the Stepper's ID space; len(sources) is
// the batch width K. outDeg must give the out-degree of every vertex.
// pool parallelises the element-wise phases on non-fused steppers; it
// may be nil for sequential execution.
func RunPersonalizedPageRank(e spmv.BatchStepper, outDeg []int, pool *sched.Pool, sources []int, opt PageRankOptions) (PPRResult, error) {
	return RunPersonalizedPageRankCtx(nil, e, outDeg, pool, sources, opt)
}

// RunPersonalizedPageRankCtx is RunPersonalizedPageRank with the
// RunPageRankCtx failure contract: ctx cancellation stops the run at
// the next iteration boundary (mid-Step on ctx-aware engines), Step
// failures return *sched.PanicError / *spmv.NumericError instead of
// panicking, and under spmv.HealthRollback with CheckpointEvery set a
// numeric error restores the latest checkpoint (Algo "ppr", K lanes)
// and retries before surfacing. ctx may be nil.
func RunPersonalizedPageRankCtx(ctx context.Context, e spmv.BatchStepper, outDeg []int, pool *sched.Pool, sources []int, opt PageRankOptions) (PPRResult, error) {
	n := e.NumVertices()
	k := len(sources)
	if k == 0 {
		return PPRResult{}, fmt.Errorf("analytics: no sources")
	}
	if len(outDeg) != n {
		return PPRResult{}, fmt.Errorf("analytics: outDeg length %d != %d vertices", len(outDeg), n)
	}
	for j, s := range sources {
		if s < 0 || s >= n {
			return PPRResult{}, fmt.Errorf("analytics: source %d (lane %d) out of [0,%d)", s, j, n)
		}
	}
	o := opt.withDefaults()
	if o.Resume != nil {
		if err := o.Resume.validate(); err != nil {
			return PPRResult{}, err
		}
		if o.Resume.Algo != "ppr" || o.Resume.N != n || o.Resume.K != k {
			return PPRResult{}, fmt.Errorf("analytics: resume checkpoint %q n=%d k=%d does not match ppr n=%d k=%d",
				o.Resume.Algo, o.Resume.N, o.Resume.K, n, k)
		}
	}

	invDeg := make([]float64, n)
	for v, d := range outDeg {
		if d > 0 {
			invDeg[v] = 1 / float64(d)
		}
	}
	ranks := make([]float64, n*k)
	contrib := make([]float64, n*k)
	sums := make([]float64, n*k)
	// baseVec is the sparse teleport term: zero everywhere except
	// baseVec[sⱼ*k+j], rewritten by the orchestrator each iteration
	// when dangling mass is redistributed (it returns to the source).
	baseVec := make([]float64, n*k)
	dangling := make([]float64, k)
	iter := 0
	if o.Resume != nil {
		copy(ranks, o.Resume.Ranks)
		copy(dangling, o.Resume.Aux)
		restoreContrib(ranks, contrib, invDeg, n, k)
		iter = o.Resume.Iter
	} else {
		for j, s := range sources {
			idx := s*k + j
			ranks[idx] = 1
			contrib[idx] = invDeg[s]
			if o.RedistributeDangling && outDeg[s] == 0 {
				dangling[j] = 1
			}
		}
	}

	// The per-iteration element-wise sweep, run as the batched Step's
	// epilogue over vertex ranges: damping plus the sparse teleport
	// term, per-lane L1 delta, next contributions, next dangling mass.
	body := func(lo, hi int) (delta, dangl []float64) {
		delta = make([]float64, k)
		dangl = make([]float64, k)
		bodyInto(lo, hi, k, o, ranks, sums, baseVec, contrib, invDeg, outDeg, delta, dangl)
		return delta, dangl
	}

	cfe, ctxFused := e.(batchCtxFusedStepper)
	fe, fused := e.(batchFusedStepper)
	ce, ctxPlain := e.(spmv.BatchCtxStepper)
	workers := 0
	switch {
	case fused:
		workers = fe.Workers()
	case pool != nil:
		workers = pool.Workers()
	}
	var deltaParts, danglingParts []float64
	var epi func(w, lo, hi int)
	var poolEpi func(w int)
	if workers > 0 {
		deltaParts = make([]float64, workers*k)
		danglingParts = make([]float64, workers*k)
		epi = func(w, lo, hi int) {
			dp := deltaParts[w*k : w*k+k]
			gp := danglingParts[w*k : w*k+k]
			clear(dp)
			clear(gp)
			bodyInto(lo, hi, k, o, ranks, sums, baseVec, contrib, invDeg, outDeg, dp, gp)
		}
		if !fused {
			poolEpi = func(w int) {
				lo, hi := sched.SplitRange(n, workers, w)
				epi(w, lo, hi)
			}
		}
	}

	var snap, last *Checkpoint
	retries := 0
	takeSnapshot := func(iterDone int) {
		if snap == nil {
			snap = &Checkpoint{Algo: "ppr", N: n, K: k,
				Ranks: make([]float64, n*k), Aux: make([]float64, k)}
		}
		snap.Iter = iterDone
		copy(snap.Ranks, ranks)
		copy(snap.Aux, dangling)
		last = snap
		retries = 0
		if o.OnCheckpoint != nil {
			o.OnCheckpoint(snap)
		}
	}
	restore := func(c *Checkpoint) {
		copy(ranks, c.Ranks)
		copy(dangling, c.Aux)
		restoreContrib(ranks, contrib, invDeg, n, k)
		iter = c.Iter
	}
	if o.CheckpointEvery > 0 {
		if o.Resume != nil {
			last = o.Resume
		} else {
			takeSnapshot(0)
		}
	}

	res := PPRResult{Ranks: ranks, K: k, Deltas: make([]float64, k)}
	for iter < o.MaxIters {
		for j, s := range sources {
			teleport := 1 - o.Damping
			if o.RedistributeDangling {
				teleport += o.Damping * dangling[j]
			}
			baseVec[s*k+j] = teleport
		}
		var stepErr error
		switch {
		case ctxFused:
			stepErr = cfe.StepBatchEpiCtx(ctx, contrib, sums, k, epi)
		case fused:
			if stepErr = ctxErrOf(ctx); stepErr == nil {
				fe.StepBatchEpi(contrib, sums, k, epi)
			}
		case ctxPlain:
			if stepErr = ce.StepBatchCtx(ctx, contrib, sums, k); stepErr == nil {
				if pool != nil {
					stepErr = pool.RunCtx(ctx, poolEpi)
				} else {
					d, g := body(0, n)
					copy(res.Deltas, d)
					copy(dangling, g)
				}
			}
		case pool != nil:
			if stepErr = ctxErrOf(ctx); stepErr == nil {
				e.StepBatch(contrib, sums, k)
				stepErr = pool.RunCtx(ctx, poolEpi)
			}
		default:
			if stepErr = ctxErrOf(ctx); stepErr == nil {
				e.StepBatch(contrib, sums, k)
				d, g := body(0, n)
				copy(res.Deltas, d)
				copy(dangling, g)
			}
		}
		if stepErr != nil {
			var nerr *spmv.NumericError
			if errors.As(stepErr, &nerr) && nerr.Rollback && last != nil && retries < maxRollbackRetries {
				retries++
				res.Rollbacks++
				restore(last)
				continue
			}
			return res, stepErr
		}
		if workers > 0 {
			clear(res.Deltas)
			clear(dangling)
			for w := 0; w < workers; w++ {
				for j := 0; j < k; j++ {
					res.Deltas[j] += deltaParts[w*k+j]
					dangling[j] += danglingParts[w*k+j]
				}
			}
		}
		iter++
		res.Iters = iter
		if o.CheckpointEvery > 0 && iter%o.CheckpointEvery == 0 {
			takeSnapshot(iter)
		}
		if o.Tol >= 0 && maxOf(res.Deltas) < o.Tol {
			break
		}
	}
	return res, nil
}

// restoreContrib recomputes the contribution vector from restored
// ranks: the same single-rounding ranks·invDeg product the epilogue
// performs, so a resumed trajectory is bit-for-bit identical.
//
//ihtl:noalloc
func restoreContrib(ranks, contrib, invDeg []float64, n, k int) {
	for v := 0; v < n; v++ {
		inv := invDeg[v]
		for j := 0; j < k; j++ {
			contrib[v*k+j] = ranks[v*k+j] * inv
		}
	}
}

// bodyInto is the per-vertex-range PPR update, accumulating per-lane
// delta and dangling mass into the caller's slices.
//
//ihtl:noalloc
func bodyInto(lo, hi, k int, o PageRankOptions, ranks, sums, baseVec, contrib, invDeg []float64, outDeg []int, delta, dangl []float64) {
	for v := lo; v < hi; v++ {
		vb := v * k
		inv := invDeg[v]
		dangle := o.RedistributeDangling && outDeg[v] == 0
		for j := 0; j < k; j++ {
			idx := vb + j
			nv := o.Damping*sums[idx] + baseVec[idx]
			delta[j] += math.Abs(nv - ranks[idx])
			ranks[idx] = nv
			contrib[idx] = nv * inv
			if dangle {
				dangl[j] += nv
			}
		}
	}
}

//ihtl:noalloc
func maxOf(v []float64) float64 {
	m := math.Inf(-1)
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}
