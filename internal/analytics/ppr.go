package analytics

import (
	"fmt"
	"math"

	"ihtl/internal/sched"
	"ihtl/internal/spmv"
)

// PPRResult carries the converged lanes of one batched personalized
// PageRank run.
type PPRResult struct {
	// Ranks is vertex-major interleaved: lane j of vertex v at
	// Ranks[v*K+j], in the Stepper's vertex-ID space.
	Ranks []float64
	// K is the batch width (the number of sources).
	K int
	// Iters is the number of iterations executed; every iteration
	// advances all K lanes in a single batched Step.
	Iters int
	// Deltas is the final per-lane L1 change.
	Deltas []float64
}

// Lane copies lane j of the interleaved ranks into a dense vector.
func (r PPRResult) Lane(j int, out []float64) []float64 {
	n := len(r.Ranks) / r.K
	if out == nil {
		out = make([]float64, n)
	}
	for v := 0; v < n; v++ {
		out[v] = r.Ranks[v*r.K+j]
	}
	return out
}

// batchFusedStepper is the optional BatchStepper extension core.Engine
// provides: StepBatch plus a fused epilogue over vertex ranges.
type batchFusedStepper interface {
	spmv.BatchStepper
	StepBatchEpi(src, dst []float64, k int, epi func(w, lo, hi int))
	Workers() int
}

// RunPersonalizedPageRank iterates K personalized PageRanks — one per
// source — through batched SpMV steps:
//
//	PPRⱼ(v) = (1-d)·1[v = sⱼ] + d·Σ_{u∈N⁻(v)} PPRⱼ(u)/deg⁺(u)
//
// All K lanes share every edge load: one StepBatch per iteration
// advances every source, and on a fused batched stepper (core.Engine)
// the damping/delta/contribution sweep runs inside the same dispatch,
// so a whole K-source iteration is one pool round-trip. Iteration
// stops when every lane's L1 delta falls below opt.Tol (or at
// opt.MaxIters). With opt.RedistributeDangling, each lane's dangling
// mass teleports back to its own source, the standard PPR treatment.
//
// sources are vertex IDs in the Stepper's ID space; len(sources) is
// the batch width K. outDeg must give the out-degree of every vertex.
// pool parallelises the element-wise phases on non-fused steppers; it
// may be nil for sequential execution.
func RunPersonalizedPageRank(e spmv.BatchStepper, outDeg []int, pool *sched.Pool, sources []int, opt PageRankOptions) (PPRResult, error) {
	n := e.NumVertices()
	k := len(sources)
	if k == 0 {
		return PPRResult{}, fmt.Errorf("analytics: no sources")
	}
	if len(outDeg) != n {
		return PPRResult{}, fmt.Errorf("analytics: outDeg length %d != %d vertices", len(outDeg), n)
	}
	for j, s := range sources {
		if s < 0 || s >= n {
			return PPRResult{}, fmt.Errorf("analytics: source %d (lane %d) out of [0,%d)", s, j, n)
		}
	}
	o := opt.withDefaults()

	invDeg := make([]float64, n)
	for v, d := range outDeg {
		if d > 0 {
			invDeg[v] = 1 / float64(d)
		}
	}
	ranks := make([]float64, n*k)
	contrib := make([]float64, n*k)
	sums := make([]float64, n*k)
	// baseVec is the sparse teleport term: zero everywhere except
	// baseVec[sⱼ*k+j], rewritten by the orchestrator each iteration
	// when dangling mass is redistributed (it returns to the source).
	baseVec := make([]float64, n*k)
	dangling := make([]float64, k)
	for j, s := range sources {
		idx := s*k + j
		ranks[idx] = 1
		contrib[idx] = invDeg[s]
		if o.RedistributeDangling && outDeg[s] == 0 {
			dangling[j] = 1
		}
	}

	// The per-iteration element-wise sweep, run as the batched Step's
	// epilogue over vertex ranges: damping plus the sparse teleport
	// term, per-lane L1 delta, next contributions, next dangling mass.
	body := func(lo, hi int) (delta, dangl []float64) {
		delta = make([]float64, k)
		dangl = make([]float64, k)
		bodyInto(lo, hi, k, o, ranks, sums, baseVec, contrib, invDeg, outDeg, delta, dangl)
		return delta, dangl
	}

	fe, fused := e.(batchFusedStepper)
	workers := 0
	switch {
	case fused:
		workers = fe.Workers()
	case pool != nil:
		workers = pool.Workers()
	}
	var deltaParts, danglingParts []float64
	var epi func(w, lo, hi int)
	var poolEpi func(w int)
	if workers > 0 {
		deltaParts = make([]float64, workers*k)
		danglingParts = make([]float64, workers*k)
		epi = func(w, lo, hi int) {
			dp := deltaParts[w*k : w*k+k]
			gp := danglingParts[w*k : w*k+k]
			clear(dp)
			clear(gp)
			bodyInto(lo, hi, k, o, ranks, sums, baseVec, contrib, invDeg, outDeg, dp, gp)
		}
		if !fused {
			poolEpi = func(w int) {
				lo, hi := sched.SplitRange(n, workers, w)
				epi(w, lo, hi)
			}
		}
	}

	res := PPRResult{Ranks: ranks, K: k, Deltas: make([]float64, k)}
	for iter := 0; iter < o.MaxIters; iter++ {
		for j, s := range sources {
			teleport := 1 - o.Damping
			if o.RedistributeDangling {
				teleport += o.Damping * dangling[j]
			}
			baseVec[s*k+j] = teleport
		}
		switch {
		case fused:
			fe.StepBatchEpi(contrib, sums, k, epi)
		case pool != nil:
			e.StepBatch(contrib, sums, k)
			pool.Run(poolEpi)
		default:
			e.StepBatch(contrib, sums, k)
			d, g := body(0, n)
			copy(res.Deltas, d)
			copy(dangling, g)
		}
		if workers > 0 {
			clear(res.Deltas)
			clear(dangling)
			for w := 0; w < workers; w++ {
				for j := 0; j < k; j++ {
					res.Deltas[j] += deltaParts[w*k+j]
					dangling[j] += danglingParts[w*k+j]
				}
			}
		}
		res.Iters = iter + 1
		if o.Tol >= 0 && maxOf(res.Deltas) < o.Tol {
			break
		}
	}
	return res, nil
}

// bodyInto is the per-vertex-range PPR update, accumulating per-lane
// delta and dangling mass into the caller's slices.
//
//ihtl:noalloc
func bodyInto(lo, hi, k int, o PageRankOptions, ranks, sums, baseVec, contrib, invDeg []float64, outDeg []int, delta, dangl []float64) {
	for v := lo; v < hi; v++ {
		vb := v * k
		inv := invDeg[v]
		dangle := o.RedistributeDangling && outDeg[v] == 0
		for j := 0; j < k; j++ {
			idx := vb + j
			nv := o.Damping*sums[idx] + baseVec[idx]
			delta[j] += math.Abs(nv - ranks[idx])
			ranks[idx] = nv
			contrib[idx] = nv * inv
			if dangle {
				dangl[j] += nv
			}
		}
	}
}

//ihtl:noalloc
func maxOf(v []float64) float64 {
	m := math.Inf(-1)
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}
