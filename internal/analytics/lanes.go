package analytics

import (
	"context"
	"errors"
	"fmt"

	"ihtl/internal/sched"
	"ihtl/internal/spmv"
)

// LaneStatus classifies how a coalesced PPR lane ended.
type LaneStatus int

const (
	// LaneConverged: the lane's own L1 delta fell below Tol.
	LaneConverged LaneStatus = iota
	// LaneDeadline: the lane's ctx deadline expired mid-run; the
	// emitted ranks are the last completed iteration (a partial,
	// degraded result).
	LaneDeadline
	// LaneCancelled: the lane's ctx was cancelled (the requester went
	// away); no ranks are emitted.
	LaneCancelled
	// LaneIterCap: MaxIters elapsed before the lane converged.
	LaneIterCap
)

func (s LaneStatus) String() string {
	switch s {
	case LaneConverged:
		return "converged"
	case LaneDeadline:
		return "deadline"
	case LaneCancelled:
		return "cancelled"
	case LaneIterCap:
		return "itercap"
	}
	return "unknown"
}

// LaneRequest is one personalized-PageRank query riding a batch lane.
type LaneRequest struct {
	// Source is the personalization vertex, in the Stepper's ID space.
	Source int
	// Ctx carries the requester's deadline and cancellation; the lane
	// is checked against it at every iteration boundary, so an
	// abandoned query frees its lane without waiting for the batch.
	// May be nil (the lane then runs to convergence or MaxIters).
	Ctx context.Context
}

// LaneResult is delivered to the onDone callback exactly once per
// lane, at the iteration boundary where the lane finished.
type LaneResult struct {
	// Lane is the index into the lanes slice (arrival order).
	Lane int
	// Source echoes the request's personalization vertex.
	Source int
	// Status tells how the lane ended.
	Status LaneStatus
	// Iters is the number of completed iterations when the lane ended.
	Iters int
	// Delta is the lane's L1 change over its last completed iteration.
	Delta float64
	// Ranks is the lane's dense rank vector in the Stepper's ID space
	// (a private copy the receiver owns). Nil for LaneCancelled.
	Ranks []float64
}

// Converged reports whether the lane reached its tolerance.
func (r LaneResult) Converged() bool { return r.Status == LaneConverged }

// laneSnap is the in-memory rollback target for numeric-health
// recovery: the same state a Checkpoint captures, plus the per-lane
// active mask (which lanes were still iterating at snapshot time).
// The emitted guard is deliberately NOT part of the snapshot — a lane
// whose result already left the runner must never be re-emitted, even
// if a rollback rewinds the trajectory past its convergence point.
type laneSnap struct {
	iter     int
	ranks    []float64
	dangling []float64
	active   []bool
}

// RunPPRLanes drives K independent personalized-PageRank queries —
// one per lane — through shared batched SpMV steps, with per-lane
// completion. Unlike RunPersonalizedPageRankCtx, which runs all K
// lanes to a common stopping point, each lane here stops at its OWN
// convergence iteration and is frozen (its teleport and contribution
// columns zeroed) so the remaining lanes keep sharing the traversal.
// Because StepBatch computes every lane independently, a lane's
// trajectory — and therefore its emitted ranks — is bit-for-bit the
// ranks a solo run over the same engine would produce. That is the
// property that makes coalesced serving exact rather than
// approximate.
//
// Each lane's ctx is consulted at every iteration boundary: a
// deadline expiry emits the lane's current ranks as a partial
// (LaneDeadline), a cancellation abandons the lane without ranks
// (LaneCancelled). ctx is the whole-batch context (dispatch-level
// cancellation); lane contexts degrade single lanes only.
//
// onDone is called exactly once per lane, from the orchestrating
// goroutine (no locking needed), in lane order within one iteration
// boundary. With opt.CheckpointEvery > 0, numeric-health errors from
// rollback-capable engines restore the latest in-memory snapshot and
// retry, exactly like RunPersonalizedPageRankCtx; lanes that already
// emitted are never re-emitted after a rollback.
func RunPPRLanes(ctx context.Context, e spmv.BatchStepper, outDeg []int, pool *sched.Pool, lanes []LaneRequest, opt PageRankOptions, onDone func(LaneResult)) error {
	n := e.NumVertices()
	k := len(lanes)
	if k == 0 {
		return fmt.Errorf("analytics: no lanes")
	}
	if len(outDeg) != n {
		return fmt.Errorf("analytics: outDeg length %d != %d vertices", len(outDeg), n)
	}
	for j, l := range lanes {
		if l.Source < 0 || l.Source >= n {
			return fmt.Errorf("analytics: source %d (lane %d) out of [0,%d)", l.Source, j, n)
		}
	}
	o := opt.withDefaults()
	if o.Resume != nil {
		return fmt.Errorf("analytics: RunPPRLanes does not support Resume (spool whole batches via RunPersonalizedPageRankCtx)")
	}

	invDeg := make([]float64, n)
	for v, d := range outDeg {
		if d > 0 {
			invDeg[v] = 1 / float64(d)
		}
	}
	ranks := make([]float64, n*k)
	contrib := make([]float64, n*k)
	sums := make([]float64, n*k)
	baseVec := make([]float64, n*k)
	dangling := make([]float64, k)
	deltas := make([]float64, k)
	active := make([]bool, k)
	emitted := make([]bool, k)
	numActive := k
	for j, l := range lanes {
		active[j] = true
		idx := l.Source*k + j
		ranks[idx] = 1
		contrib[idx] = invDeg[l.Source]
		if o.RedistributeDangling && outDeg[l.Source] == 0 {
			dangling[j] = 1
		}
	}

	cfe, ctxFused := e.(batchCtxFusedStepper)
	fe, fused := e.(batchFusedStepper)
	ce, ctxPlain := e.(spmv.BatchCtxStepper)
	workers := 0
	switch {
	case fused:
		workers = fe.Workers()
	case pool != nil:
		workers = pool.Workers()
	}
	var deltaParts, danglingParts []float64
	var epi func(w, lo, hi int)
	var poolEpi func(w int)
	if workers > 0 {
		deltaParts = make([]float64, workers*k)
		danglingParts = make([]float64, workers*k)
		epi = func(w, lo, hi int) {
			dp := deltaParts[w*k : w*k+k]
			gp := danglingParts[w*k : w*k+k]
			clear(dp)
			clear(gp)
			bodyInto(lo, hi, k, o, ranks, sums, baseVec, contrib, invDeg, outDeg, dp, gp)
		}
		if !fused {
			poolEpi = func(w int) {
				lo, hi := sched.SplitRange(n, workers, w)
				epi(w, lo, hi)
			}
		}
	}
	body := func(lo, hi int) {
		clear(deltas)
		dangl := make([]float64, k)
		bodyInto(lo, hi, k, o, ranks, sums, baseVec, contrib, invDeg, outDeg, deltas, dangl)
		copy(dangling, dangl)
	}

	// finish freezes a lane at an iteration boundary (zeroed teleport
	// and contribution column: the lane costs nothing in later steps
	// and cannot perturb survivors, since StepBatch lanes are
	// independent) and emits its result at most once, ever.
	finish := func(j int, status LaneStatus, iters int) {
		if active[j] {
			active[j] = false
			numActive--
			baseVec[lanes[j].Source*k+j] = 0
			for v := 0; v < n; v++ {
				contrib[v*k+j] = 0
			}
		}
		if emitted[j] {
			return
		}
		emitted[j] = true
		res := LaneResult{Lane: j, Source: lanes[j].Source, Status: status, Iters: iters, Delta: deltas[j]}
		if status != LaneCancelled {
			res.Ranks = make([]float64, n)
			for v := 0; v < n; v++ {
				res.Ranks[v] = ranks[v*k+j]
			}
		}
		if onDone != nil {
			onDone(res)
		}
	}

	iter := 0
	var snap *laneSnap
	retries := 0
	takeSnapshot := func(iterDone int) {
		if snap == nil {
			snap = &laneSnap{
				ranks:    make([]float64, n*k),
				dangling: make([]float64, k),
				active:   make([]bool, k),
			}
		}
		snap.iter = iterDone
		copy(snap.ranks, ranks)
		copy(snap.dangling, dangling)
		copy(snap.active, active)
		retries = 0
	}
	restore := func() {
		copy(ranks, snap.ranks)
		copy(dangling, snap.dangling)
		numActive = 0
		for j := range active {
			active[j] = snap.active[j]
			if active[j] {
				numActive++
			}
		}
		// Contributions are recomputed with the same single rounding
		// the epilogue performs, column-masked so lanes frozen at
		// snapshot time stay frozen.
		for v := 0; v < n; v++ {
			inv := invDeg[v]
			for j := 0; j < k; j++ {
				if active[j] {
					contrib[v*k+j] = ranks[v*k+j] * inv
				} else {
					contrib[v*k+j] = 0
				}
			}
		}
		for j, l := range lanes {
			if !active[j] {
				baseVec[l.Source*k+j] = 0
			}
		}
		iter = snap.iter
	}
	if o.CheckpointEvery > 0 {
		takeSnapshot(0)
	}

	for iter < o.MaxIters && numActive > 0 {
		// Iteration boundary: deadlines and abandonment first, so a
		// dead lane is freed before the next traversal pays for it.
		for j := range lanes {
			if !active[j] {
				continue
			}
			if err := ctxErrOf(lanes[j].Ctx); err != nil {
				st := LaneCancelled
				if errors.Is(err, context.DeadlineExceeded) {
					st = LaneDeadline
				}
				finish(j, st, iter)
			}
		}
		if numActive == 0 {
			break
		}
		for j, l := range lanes {
			if !active[j] {
				continue
			}
			teleport := 1 - o.Damping
			if o.RedistributeDangling {
				teleport += o.Damping * dangling[j]
			}
			baseVec[l.Source*k+j] = teleport
		}

		var stepErr error
		switch {
		case ctxFused:
			stepErr = cfe.StepBatchEpiCtx(ctx, contrib, sums, k, epi)
		case fused:
			if stepErr = ctxErrOf(ctx); stepErr == nil {
				fe.StepBatchEpi(contrib, sums, k, epi)
			}
		case ctxPlain:
			if stepErr = ce.StepBatchCtx(ctx, contrib, sums, k); stepErr == nil {
				if pool != nil {
					stepErr = pool.RunCtx(ctx, poolEpi)
				} else {
					body(0, n)
				}
			}
		case pool != nil:
			if stepErr = ctxErrOf(ctx); stepErr == nil {
				e.StepBatch(contrib, sums, k)
				stepErr = pool.RunCtx(ctx, poolEpi)
			}
		default:
			if stepErr = ctxErrOf(ctx); stepErr == nil {
				e.StepBatch(contrib, sums, k)
				body(0, n)
			}
		}
		if stepErr != nil {
			var nerr *spmv.NumericError
			if errors.As(stepErr, &nerr) && nerr.Rollback && snap != nil && retries < maxRollbackRetries {
				retries++
				restore()
				continue
			}
			return stepErr
		}
		if workers > 0 {
			clear(deltas)
			clear(dangling)
			for w := 0; w < workers; w++ {
				for j := 0; j < k; j++ {
					deltas[j] += deltaParts[w*k+j]
					dangling[j] += danglingParts[w*k+j]
				}
			}
		}
		iter++
		if o.CheckpointEvery > 0 && iter%o.CheckpointEvery == 0 {
			takeSnapshot(iter)
		}
		for j := range lanes {
			if active[j] && o.Tol >= 0 && deltas[j] < o.Tol {
				finish(j, LaneConverged, iter)
			}
		}
	}
	for j := range lanes {
		if active[j] {
			finish(j, LaneIterCap, iter)
		}
	}
	return nil
}
