package analytics

import (
	"math"
	"sync/atomic"

	"ihtl/internal/graph"
	"ihtl/internal/sched"
	"ihtl/internal/xrand"
)

// These analytics are the §6 future-work applications ("the idea that
// irregular datasets require irregular traversals ... can be useful
// for ... Single Source Shortest Path, and Connected Components").
// They run directly on the graph substrate with the shared pool.

// InfDist marks unreachable vertices in BFS/SSSP results.
const InfDist = int64(math.MaxInt64)

// BFS computes hop distances from src over out-edges using a
// level-synchronous frontier with the direction-optimizing switch of
// Beamer et al. (§5.2 reference [3]): sparse frontiers expand top-down
// (push), dense frontiers bottom-up (pull) — the whole-frontier analog
// of the per-vertex hybrid iHTL applies to SpMV.
func BFS(g *graph.Graph, pool *sched.Pool, src graph.VID) []int64 {
	n := g.NumV
	dist := make([]int64, n)
	for v := range dist {
		dist[v] = InfDist
	}
	if n == 0 {
		return dist
	}
	distAtomic := make([]atomic.Int64, n)
	for v := range distAtomic {
		distAtomic[v].Store(InfDist)
	}
	distAtomic[src].Store(0)
	frontier := []graph.VID{src}
	level := int64(0)

	for len(frontier) > 0 {
		level++
		// Direction switch: bottom-up when the frontier's edges are a
		// large fraction of the graph (Beamer's alpha heuristic,
		// simplified to frontier size > |V|/20).
		if len(frontier) > n/20 {
			next := make([]graph.VID, 0, len(frontier))
			inFrontier := make([]bool, n)
			for _, v := range frontier {
				inFrontier[v] = true
			}
			chunks := make([][]graph.VID, pool.Workers())
			pool.ForStatic(n, func(w, lo, hi int) {
				for v := lo; v < hi; v++ {
					if distAtomic[v].Load() != InfDist {
						continue
					}
					for _, u := range g.In(graph.VID(v)) {
						if inFrontier[u] {
							distAtomic[v].Store(level)
							chunks[w] = append(chunks[w], graph.VID(v))
							break
						}
					}
				}
			})
			for _, c := range chunks {
				next = append(next, c...)
			}
			frontier = next
			continue
		}
		// Top-down: push from the frontier with CAS claims.
		chunks := make([][]graph.VID, pool.Workers())
		pool.ForDynamic(len(frontier), 64, func(w, lo, hi int) {
			for i := lo; i < hi; i++ {
				v := frontier[i]
				for _, u := range g.Out(v) {
					if distAtomic[u].CompareAndSwap(InfDist, level) {
						chunks[w] = append(chunks[w], u)
					}
				}
			}
		})
		next := frontier[:0]
		for _, c := range chunks {
			next = append(next, c...)
		}
		frontier = next
	}
	for v := range dist {
		dist[v] = distAtomic[v].Load()
	}
	return dist
}

// ConnectedComponents labels weakly connected components by parallel
// label propagation: every vertex repeatedly adopts the minimum label
// among itself and its in/out-neighbours until a fixpoint. The result
// maps each vertex to the smallest vertex ID in its component.
func ConnectedComponents(g *graph.Graph, pool *sched.Pool) []graph.VID {
	n := g.NumV
	label := make([]atomic.Uint32, n)
	for v := range label {
		label[v].Store(uint32(v))
	}
	for {
		var changed atomic.Bool
		pool.ForDynamic(n, 256, func(w, lo, hi int) {
			for v := lo; v < hi; v++ {
				m := label[v].Load()
				for _, u := range g.Out(graph.VID(v)) {
					if l := label[u].Load(); l < m {
						m = l
					}
				}
				for _, u := range g.In(graph.VID(v)) {
					if l := label[u].Load(); l < m {
						m = l
					}
				}
				// Lower our own label and push it to neighbours;
				// monotone decrease guarantees termination.
				if m < label[v].Load() {
					label[v].Store(m)
					changed.Store(true)
				}
			}
		})
		if !changed.Load() {
			break
		}
	}
	out := make([]graph.VID, n)
	for v := range out {
		out[v] = graph.VID(label[v].Load())
	}
	return out
}

// EdgeWeight returns the deterministic pseudo-weight of edge (u,v)
// in [1, 256], derived by hashing the endpoint pair. The graph
// substrate stores no weights (the paper's datasets are unweighted);
// SSSP needs some, and hashing keeps them reproducible without
// storing per-edge data.
//
//ihtl:noalloc
func EdgeWeight(u, v graph.VID) int64 {
	return int64(xrand.Mix64(uint64(u)<<32|uint64(v))%256) + 1
}

// SSSP computes single-source shortest paths over EdgeWeight-weighted
// out-edges with parallel Bellman-Ford (round-synchronous relaxation
// until no distance changes).
func SSSP(g *graph.Graph, pool *sched.Pool, src graph.VID) []int64 {
	n := g.NumV
	dist := make([]atomic.Int64, n)
	for v := range dist {
		dist[v].Store(InfDist)
	}
	if n == 0 {
		return nil
	}
	dist[src].Store(0)
	for round := 0; round < n; round++ {
		var changed atomic.Bool
		pool.ForDynamic(n, 256, func(w, lo, hi int) {
			for v := lo; v < hi; v++ {
				dv := dist[v].Load()
				if dv == InfDist {
					continue
				}
				for _, u := range g.Out(graph.VID(v)) {
					nd := dv + EdgeWeight(graph.VID(v), u)
					for {
						cur := dist[u].Load()
						if cur <= nd {
							break
						}
						if dist[u].CompareAndSwap(cur, nd) {
							changed.Store(true)
							break
						}
					}
				}
			}
		})
		if !changed.Load() {
			break
		}
	}
	out := make([]int64, n)
	for v := range out {
		out[v] = dist[v].Load()
	}
	return out
}
