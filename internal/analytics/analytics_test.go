package analytics

import (
	"math"
	"sort"
	"testing"

	"ihtl/internal/core"
	"ihtl/internal/gen"
	"ihtl/internal/graph"
	"ihtl/internal/sched"
	"ihtl/internal/spmv"
)

var testPool = sched.NewPool(4)

func mustRMAT(t *testing.T, scale, ef int, seed uint64) *graph.Graph {
	t.Helper()
	g, err := gen.RMAT(gen.DefaultRMAT(scale, ef, seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// referencePageRank is a slow, obviously-correct sequential PageRank.
func referencePageRank(g *graph.Graph, iters int, damping float64) []float64 {
	n := g.NumV
	ranks := make([]float64, n)
	for v := range ranks {
		ranks[v] = 1 / float64(n)
	}
	for it := 0; it < iters; it++ {
		next := make([]float64, n)
		for v := 0; v < n; v++ {
			sum := 0.0
			for _, u := range g.In(graph.VID(v)) {
				sum += ranks[u] / float64(g.OutDegree(u))
			}
			next[v] = (1-damping)/float64(n) + damping*sum
		}
		ranks = next
	}
	return ranks
}

func outDegrees(g *graph.Graph) []int {
	d := make([]int, g.NumV)
	for v := range d {
		d[v] = g.OutDegree(graph.VID(v))
	}
	return d
}

func TestPageRankMatchesReferenceAcrossEngines(t *testing.T) {
	g := mustRMAT(t, 9, 8, 31)
	want := referencePageRank(g, 20, 0.85)
	opts := PageRankOptions{MaxIters: 20, Tol: -1}

	engines := map[string]spmv.Stepper{}
	for _, dir := range []spmv.Direction{spmv.Pull, spmv.PushAtomic, spmv.PushBuffered, spmv.PushPartitioned} {
		e, err := spmv.NewEngine(g, testPool, dir, spmv.Options{})
		if err != nil {
			t.Fatal(err)
		}
		engines[dir.String()] = e
	}
	for name, e := range engines {
		res, err := RunPageRank(e, outDegrees(g), testPool, opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Iters != 20 {
			t.Fatalf("%s: ran %d iters", name, res.Iters)
		}
		for v := range want {
			if math.Abs(res.Ranks[v]-want[v]) > 1e-10 {
				t.Fatalf("%s: rank[%d] = %g, want %g", name, v, res.Ranks[v], want[v])
			}
		}
	}
}

func TestPageRankViaIHTLEngine(t *testing.T) {
	g := mustRMAT(t, 10, 8, 33)
	want := referencePageRank(g, 15, 0.85)

	ih, err := core.Build(g, core.Params{HubsPerBlock: 64})
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(ih, testPool)
	if err != nil {
		t.Fatal(err)
	}
	// Out-degrees in iHTL ID space.
	deg := make([]int, g.NumV)
	for nv := 0; nv < g.NumV; nv++ {
		deg[nv] = g.OutDegree(ih.OldID[nv])
	}
	res, err := RunPageRank(e, deg, testPool, PageRankOptions{MaxIters: 15, Tol: -1})
	if err != nil {
		t.Fatal(err)
	}
	back := make([]float64, g.NumV)
	ih.PermuteToOld(res.Ranks, back)
	for v := range want {
		if math.Abs(back[v]-want[v]) > 1e-10 {
			t.Fatalf("ihtl rank[%d] = %g, want %g", v, back[v], want[v])
		}
	}
}

func TestPageRankConvergence(t *testing.T) {
	g := mustRMAT(t, 8, 8, 5)
	e, _ := spmv.NewEngine(g, testPool, spmv.Pull, spmv.Options{})
	res, err := RunPageRank(e, outDegrees(g), testPool, PageRankOptions{MaxIters: 500, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters >= 500 {
		t.Fatalf("did not converge in %d iters (delta %g)", res.Iters, res.Delta)
	}
	if res.Delta >= 1e-12 {
		t.Fatalf("final delta %g above tolerance", res.Delta)
	}
}

func TestPageRankDanglingRedistribution(t *testing.T) {
	// Star: leaves have out-degree 1, hub 0 — the hub is dangling.
	g := graph.Star(50)
	e, _ := spmv.NewEngine(g, testPool, spmv.Pull, spmv.Options{})
	with, err := RunPageRank(e, outDegrees(g), testPool,
		PageRankOptions{MaxIters: 50, RedistributeDangling: true})
	if err != nil {
		t.Fatal(err)
	}
	if s := SumRanks(with.Ranks); math.Abs(s-1) > 1e-6 {
		t.Fatalf("redistributed mass = %g, want ~1", s)
	}
	without, err := RunPageRank(e, outDegrees(g), testPool, PageRankOptions{MaxIters: 50})
	if err != nil {
		t.Fatal(err)
	}
	if s := SumRanks(without.Ranks); s >= 1 {
		t.Fatalf("paper formula should leak dangling mass, sum = %g", s)
	}
}

func TestPageRankErrors(t *testing.T) {
	g := graph.Star(5)
	e, _ := spmv.NewEngine(g, testPool, spmv.Pull, spmv.Options{})
	if _, err := RunPageRank(e, make([]int, 3), testPool, PageRankOptions{}); err == nil {
		t.Fatal("short outDeg accepted")
	}
}

func TestPageRankNilPool(t *testing.T) {
	g := graph.Cycle(20)
	e, _ := spmv.NewEngine(g, testPool, spmv.Pull, spmv.Options{})
	res, err := RunPageRank(e, outDegrees(g), nil, PageRankOptions{MaxIters: 5, Tol: -1})
	if err != nil {
		t.Fatal(err)
	}
	// On a cycle every vertex has identical rank.
	for v := 1; v < 20; v++ {
		if math.Abs(res.Ranks[v]-res.Ranks[0]) > 1e-15 {
			t.Fatal("cycle ranks not uniform")
		}
	}
}

func TestHITSOnBipartiteHubAuthority(t *testing.T) {
	// Sources 1..9 all point at authority 0; a separate strong hub 10
	// points at everything. Authority 0 must dominate authority
	// scores; vertex 10 must dominate hub scores.
	var edges []graph.Edge
	for v := 1; v <= 9; v++ {
		edges = append(edges, graph.Edge{Src: graph.VID(v), Dst: 0})
	}
	for v := 0; v <= 9; v++ {
		edges = append(edges, graph.Edge{Src: 10, Dst: graph.VID(v)})
	}
	g := graph.MustFromEdges(11, edges)
	fwd, _ := spmv.NewEngine(g, testPool, spmv.Pull, spmv.Options{})
	rev, _ := spmv.NewEngine(g.Transpose(), testPool, spmv.Pull, spmv.Options{})
	res, err := RunHITS(fwd, rev, HITSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < 11; v++ {
		if res.Authority[v] > res.Authority[0] {
			t.Fatalf("authority[%d]=%g exceeds authority[0]=%g", v, res.Authority[v], res.Authority[0])
		}
	}
	for v := 0; v < 10; v++ {
		if res.Hub[v] > res.Hub[10] {
			t.Fatalf("hub[%d]=%g exceeds hub[10]=%g", v, res.Hub[v], res.Hub[10])
		}
	}
}

func TestHITSErrors(t *testing.T) {
	a, _ := spmv.NewEngine(graph.Star(4), testPool, spmv.Pull, spmv.Options{})
	b, _ := spmv.NewEngine(graph.Star(9), testPool, spmv.Pull, spmv.Options{})
	if _, err := RunHITS(a, b, HITSOptions{}); err == nil {
		t.Fatal("mismatched engines accepted")
	}
}

func referenceBFS(g *graph.Graph, src graph.VID) []int64 {
	dist := make([]int64, g.NumV)
	for v := range dist {
		dist[v] = InfDist
	}
	dist[src] = 0
	queue := []graph.VID{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Out(v) {
			if dist[u] == InfDist {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

func TestBFSMatchesReference(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Path(50),
		graph.Cycle(30),
		mustRMAT(t, 10, 8, 44), // dense enough to trigger bottom-up
	}
	for _, g := range graphs {
		want := referenceBFS(g, 0)
		got := BFS(g, testPool, 0)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("dist[%d] = %d, want %d", v, got[v], want[v])
			}
		}
	}
}

func TestConnectedComponents(t *testing.T) {
	// Two disjoint cycles.
	var edges []graph.Edge
	for i := 0; i < 10; i++ {
		edges = append(edges, graph.Edge{Src: graph.VID(i), Dst: graph.VID((i + 1) % 10)})
	}
	for i := 10; i < 25; i++ {
		next := i + 1
		if next == 25 {
			next = 10
		}
		edges = append(edges, graph.Edge{Src: graph.VID(i), Dst: graph.VID(next)})
	}
	g := graph.MustFromEdges(25, edges)
	cc := ConnectedComponents(g, testPool)
	for v := 0; v < 10; v++ {
		if cc[v] != 0 {
			t.Fatalf("cc[%d] = %d, want 0", v, cc[v])
		}
	}
	for v := 10; v < 25; v++ {
		if cc[v] != 10 {
			t.Fatalf("cc[%d] = %d, want 10", v, cc[v])
		}
	}
}

func TestConnectedComponentsSingleComponent(t *testing.T) {
	g := mustRMAT(t, 9, 16, 3)
	cc := ConnectedComponents(g, testPool)
	labels := map[graph.VID]int{}
	for _, l := range cc {
		labels[l]++
	}
	// A dense RMAT graph should be dominated by one giant component.
	counts := make([]int, 0, len(labels))
	for _, c := range labels {
		counts = append(counts, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	if counts[0] < g.NumV/2 {
		t.Fatalf("giant component only %d of %d", counts[0], g.NumV)
	}
}

func referenceSSSP(g *graph.Graph, src graph.VID) []int64 {
	dist := make([]int64, g.NumV)
	for v := range dist {
		dist[v] = InfDist
	}
	dist[src] = 0
	for round := 0; round < g.NumV; round++ {
		changed := false
		for v := 0; v < g.NumV; v++ {
			if dist[v] == InfDist {
				continue
			}
			for _, u := range g.Out(graph.VID(v)) {
				if nd := dist[v] + EdgeWeight(graph.VID(v), u); nd < dist[u] {
					dist[u] = nd
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

func TestSSSPMatchesReference(t *testing.T) {
	g := mustRMAT(t, 8, 8, 55)
	want := referenceSSSP(g, 0)
	got := SSSP(g, testPool, 0)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("sssp[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestEdgeWeightDeterministicPositive(t *testing.T) {
	for u := graph.VID(0); u < 100; u++ {
		w1 := EdgeWeight(u, u+1)
		w2 := EdgeWeight(u, u+1)
		if w1 != w2 || w1 < 1 || w1 > 256 {
			t.Fatalf("EdgeWeight(%d,%d) = %d,%d", u, u+1, w1, w2)
		}
	}
}

// referenceTriangles counts triangles of the undirected simple view
// by brute force over vertex triples' adjacency.
func referenceTriangles(g *graph.Graph) int64 {
	n := g.NumV
	adj := make([]map[graph.VID]bool, n)
	for v := 0; v < n; v++ {
		adj[v] = map[graph.VID]bool{}
	}
	for v := 0; v < n; v++ {
		for _, u := range g.Out(graph.VID(v)) {
			if int(u) != v {
				adj[v][u] = true
				adj[u][graph.VID(v)] = true
			}
		}
	}
	var count int64
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if !adj[a][graph.VID(b)] {
				continue
			}
			for c := b + 1; c < n; c++ {
				if adj[a][graph.VID(c)] && adj[b][graph.VID(c)] {
					count++
				}
			}
		}
	}
	return count
}

func TestTriangleCountKnownGraphs(t *testing.T) {
	// Directed triangle: exactly one undirected triangle.
	tri := graph.MustFromEdges(3, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}})
	if got := TriangleCount(tri, testPool); got != 1 {
		t.Fatalf("triangle: got %d, want 1", got)
	}
	// K5 has C(5,3) = 10 triangles.
	if got := TriangleCount(graph.Complete(5), testPool); got != 10 {
		t.Fatalf("K5: got %d, want 10", got)
	}
	// A star and a path have none.
	if got := TriangleCount(graph.Star(20), testPool); got != 0 {
		t.Fatalf("star: got %d, want 0", got)
	}
	if got := TriangleCount(graph.Path(20), testPool); got != 0 {
		t.Fatalf("path: got %d, want 0", got)
	}
	// Reciprocal pair is not a triangle.
	pair := graph.MustFromEdges(2, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}})
	if got := TriangleCount(pair, testPool); got != 0 {
		t.Fatalf("pair: got %d, want 0", got)
	}
}

func TestTriangleCountMatchesReference(t *testing.T) {
	g := mustRMAT(t, 8, 6, 77)
	want := referenceTriangles(g)
	got := TriangleCount(g, testPool)
	if got != want {
		t.Fatalf("triangles: got %d, want %d", got, want)
	}
	if want == 0 {
		t.Fatal("test graph has no triangles; pick a denser seed")
	}
}

func TestTriangleCountEmpty(t *testing.T) {
	g, err := graph.Build(0, nil, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := TriangleCount(g, testPool); got != 0 {
		t.Fatalf("empty: got %d", got)
	}
}

// referenceCoreNumbers peels iteratively: remove all vertices of
// degree <= k for increasing k, recording the level at which each
// vertex drops.
func referenceCoreNumbers(g *graph.Graph) []int {
	n := g.NumV
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(graph.VID(v))
	}
	alive := make([]bool, n)
	for v := range alive {
		alive[v] = true
	}
	core := make([]int, n)
	remaining := n
	for k := 0; remaining > 0; k++ {
		for {
			removed := false
			for v := 0; v < n; v++ {
				if alive[v] && deg[v] <= k {
					alive[v] = false
					core[v] = k
					remaining--
					removed = true
					dec := func(u graph.VID) {
						if alive[u] {
							deg[u]--
						}
					}
					for _, u := range g.Out(graph.VID(v)) {
						dec(u)
					}
					for _, u := range g.In(graph.VID(v)) {
						dec(u)
					}
				}
			}
			if !removed {
				break
			}
		}
	}
	return core
}

func TestCoreNumbersKnownGraphs(t *testing.T) {
	// K5 (directed both ways): every vertex has degree 8, core 8.
	k5 := graph.Complete(5)
	for v, c := range CoreNumbers(k5) {
		if c != 8 {
			t.Fatalf("K5 core[%d] = %d, want 8", v, c)
		}
	}
	// Star: leaves have degree 1, hub degree n-1; peeling leaves
	// first gives everyone core 1.
	star := graph.Star(10)
	cores := CoreNumbers(star)
	for v, c := range cores {
		if c != 1 {
			t.Fatalf("star core[%d] = %d, want 1", v, c)
		}
	}
	if CoreNumbers(mustEmpty(t)) != nil {
		t.Fatal("empty graph should give nil")
	}
}

func mustEmpty(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.Build(0, nil, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCoreNumbersMatchesReference(t *testing.T) {
	g := mustRMAT(t, 8, 6, 91)
	want := referenceCoreNumbers(g)
	got := CoreNumbers(g)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("core[%d] = %d, want %d", v, got[v], want[v])
		}
	}
	k, v := MaxCore(got)
	if k <= 0 || got[v] != k {
		t.Fatalf("MaxCore = (%d,%d)", k, v)
	}
}

func TestCoreNumbersHubsInDeepCores(t *testing.T) {
	g := mustRMAT(t, 10, 12, 92)
	cores := CoreNumbers(g)
	// The max-in-degree hub should sit well above the median core.
	_, hub := g.MaxInDegree()
	all := append([]int(nil), cores...)
	sort.Ints(all)
	median := all[len(all)/2]
	if cores[hub] <= median {
		t.Fatalf("hub core %d not above median %d", cores[hub], median)
	}
}
