package bench

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func smallEnv(t *testing.T) (*Env, *bytes.Buffer) {
	t.Helper()
	env := NewEnv(4)
	t.Cleanup(env.Close)
	env.Iters = 2
	var buf bytes.Buffer
	env.Out = &buf
	return env, &buf
}

func TestRegistryLoadsAndIsDistinct(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry generation is slow")
	}
	names := map[string]bool{}
	for _, d := range Registry() {
		if names[d.Name] {
			t.Fatalf("duplicate dataset name %s", d.Name)
		}
		names[d.Name] = true
	}
	// Load just the two smallest full-registry datasets as a smoke
	// test (lvjrnl is the smallest social, sk the smallest web).
	for _, name := range []string{"lvjrnl", "sk"} {
		d, err := ByName(Registry(), name)
		if err != nil {
			t.Fatal(err)
		}
		g, err := d.Load()
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		// Load twice: memoised.
		g2, _ := d.Load()
		if g2 != g {
			t.Fatal("dataset not memoised")
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName(SmallRegistry(), "nope"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestRunFig7SmallProducesSaneRow(t *testing.T) {
	env, buf := smallEnv(t)
	d := SmallRegistry()[0]
	g, err := d.Load()
	if err != nil {
		t.Fatal(err)
	}
	row, err := RunFig7(env, d.Name, g)
	if err != nil {
		t.Fatal(err)
	}
	if row.Pull <= 0 || row.IHTL <= 0 || row.PushAtomic <= 0 {
		t.Fatalf("non-positive timings: %+v", row)
	}
	if row.Preprocess <= 0 {
		t.Fatal("no preprocessing time recorded")
	}
	RenderFig7(env, []Fig7Row{row})
	out := buf.String()
	for _, want := range []string{"Figure 7", "Table 2", d.Name} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunAllExperimentsOnSmallData(t *testing.T) {
	env, buf := smallEnv(t)
	// One small social + one small web keep the full sweep fast.
	datasets := []*Dataset{SmallRegistry()[0], SmallRegistry()[2]}
	if err := RunAll(env, datasets); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Figure 1", "Figure 7", "Table 2", "Table 3", "Table 4",
		"Figure 8", "Table 5", "Table 6", "Figure 9",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("RunAll output missing %q", want)
		}
	}
}

func TestStepJSONRoundTrip(t *testing.T) {
	env, _ := smallEnv(t)
	d := SmallRegistry()[0]
	rep, err := RunStepJSON(env, []*Dataset{d})
	if err != nil {
		t.Fatal(err)
	}
	kernels := StepKernels()
	if len(rep.Results) != len(kernels) {
		t.Fatalf("%d results, want one per kernel (%d)", len(rep.Results), len(kernels))
	}
	for i, r := range rep.Results {
		if r.Kernel != kernels[i] {
			t.Fatalf("result %d is kernel %q, want %q", i, r.Kernel, kernels[i])
		}
		if r.Dataset != d.Name || r.Edges <= 0 || r.NsPerStep <= 0 || r.NsPerEdge <= 0 {
			t.Fatalf("implausible measurement: %+v", r)
		}
		if r.BytesPerEdge <= 0 {
			t.Fatalf("%s: missing bytes_per_edge: %+v", r.Kernel, r)
		}
		switch r.Kernel {
		case "ihtl-fused", "ihtl-phased", "ihtl-pull-degree":
			// The pull-family sparse kernels charge SparseNs only.
			if r.SparseNs <= 0 || r.BinNs != 0 || r.DrainNs != 0 {
				t.Fatalf("%s: bad phase split: %+v", r.Kernel, r)
			}
		case "ihtl-pb":
			// The propagation-blocked kernel splits bin vs drain.
			if r.BinNs <= 0 || r.DrainNs <= 0 || r.SparseNs != 0 {
				t.Fatalf("%s: bad phase split: %+v", r.Kernel, r)
			}
		default:
			if r.SparseNs != 0 || r.BinNs != 0 || r.DrainNs != 0 {
				t.Fatalf("%s: baseline record grew phase clocks: %+v", r.Kernel, r)
			}
		}
	}
	path := filepath.Join(t.TempDir(), "results", "BENCH_step.json")
	if err := WriteStepJSON(path, rep); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back StepReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Workers != env.Pool.Workers() || len(back.Results) != len(rep.Results) {
		t.Fatalf("report changed in round trip: %+v", back)
	}
}

// TestStepJSONBackCompat pins the schema extension: reports written
// before the batch sweep existed (no batch_k / edges_per_sec_per_vec
// fields) must still parse, with the batch fields at zero, and scalar
// records must still serialise without them.
func TestStepJSONBackCompat(t *testing.T) {
	old := []byte(`{
  "workers": 1, "gomaxprocs": 1, "iters": 4,
  "results": [
    {"dataset": "lvjrnl-s", "kernel": "pull", "vertices": 2048,
     "edges": 24576, "ns_per_step": 100000, "ns_per_edge": 4.069}
  ]
}`)
	var rep StepReport
	if err := json.Unmarshal(old, &rep); err != nil {
		t.Fatalf("pre-batch report no longer parses: %v", err)
	}
	r := rep.Results[0]
	if r.BatchK != 0 || r.EdgesPerSecPerVec != 0 {
		t.Fatalf("scalar record grew batch fields: %+v", r)
	}
	out, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(out, []byte("batch_k")) || bytes.Contains(out, []byte("edges_per_sec_per_vec")) {
		t.Fatalf("scalar record serialises batch fields: %s", out)
	}
}

func TestAppendBatchSweep(t *testing.T) {
	env, _ := smallEnv(t)
	d := SmallRegistry()[0]
	rep := &StepReport{Workers: env.Pool.Workers(), Iters: env.Iters}
	ks := []int{1, 2}
	if err := AppendBatchSweep(rep, env, []*Dataset{d}, ks); err != nil {
		t.Fatal(err)
	}
	if want := len(BatchKernels()) * len(ks); len(rep.Results) != want {
		t.Fatalf("%d records, want %d", len(rep.Results), want)
	}
	for _, r := range rep.Results {
		if r.BatchK < 1 || r.NsPerStep <= 0 || r.EdgesPerSecPerVec <= 0 {
			t.Fatalf("implausible batch record: %+v", r)
		}
		// ns_per_edge is per edge-LANE and edges_per_sec_per_vec its
		// reciprocal throughput; check internal consistency.
		lanes := float64(r.Edges) * float64(r.BatchK)
		if math.Abs(r.NsPerEdge-float64(r.NsPerStep)/lanes) > 1e-9 {
			t.Fatalf("ns_per_edge inconsistent: %+v", r)
		}
		if math.Abs(r.EdgesPerSecPerVec-lanes/float64(r.NsPerStep)*1e9) > 1e-3 {
			t.Fatalf("edges_per_sec_per_vec inconsistent: %+v", r)
		}
	}
	g, err := d.Load()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := batchEngine(env, g, "simd-batch", 2); err == nil {
		t.Fatal("unknown batch kernel accepted")
	}
}

func TestStepJSONUnknownKernel(t *testing.T) {
	env, _ := smallEnv(t)
	d := SmallRegistry()[0]
	g, err := d.Load()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stepEngine(env, g, "simd"); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	env, _ := smallEnv(t)
	if err := Run(env, "fig42", nil); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestFig8SkipsGOrderAboveCap(t *testing.T) {
	env, _ := smallEnv(t)
	d := SmallRegistry()[1]
	g, err := d.Load()
	if err != nil {
		t.Fatal(err)
	}
	row, err := RunFig8(env, d.Name, g, 1 /* cap below any graph */)
	if err != nil {
		t.Fatal(err)
	}
	foundSkip := false
	for _, e := range row.Entries {
		if e.Name == "gorder" && e.Skipped {
			foundSkip = true
		}
	}
	if !foundSkip {
		t.Fatal("gorder not skipped despite cap")
	}
}

func TestTable6SweepsFourPoints(t *testing.T) {
	env, _ := smallEnv(t)
	d := SmallRegistry()[2]
	g, err := d.Load()
	if err != nil {
		t.Fatal(err)
	}
	row, err := RunTable6(env, d.Name, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(row.Times) != len(Table6Labels()) {
		t.Fatalf("sweep has %d points, want %d", len(row.Times), len(Table6Labels()))
	}
}

func TestTableRenderAlignment(t *testing.T) {
	var buf bytes.Buffer
	tb := &Table{Title: "T", Header: []string{"a", "bbbb"}}
	tb.Add("xxxxx", 1)
	tb.Add("y", 2.5)
	tb.Render(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("unexpected line count %d:\n%s", len(lines), buf.String())
	}
	// Render to nil must not panic.
	tb.Render(nil)
}

func TestRenderCSV(t *testing.T) {
	var buf bytes.Buffer
	tb := &Table{Title: "T", Header: []string{"a", "b"}}
	tb.Add("plain", `quote"and,comma`)
	RenderCSV(tb, &buf)
	out := buf.String()
	want := "# T\na,b\nplain,\"quote\"\"and,comma\"\n"
	if out != want {
		t.Fatalf("CSV output %q, want %q", out, want)
	}
	RenderCSV(tb, nil) // must not panic
}

func TestEnvCSVMode(t *testing.T) {
	env, buf := smallEnv(t)
	env.CSV = true
	d := SmallRegistry()[0]
	g, err := d.Load()
	if err != nil {
		t.Fatal(err)
	}
	row, err := RunTable4(env, d.Name, g)
	if err != nil {
		t.Fatal(err)
	}
	RenderTable4(env, []Table4Row{row})
	if !strings.Contains(buf.String(), "Dataset,CSC (MiB)") {
		t.Fatalf("CSV mode not applied: %q", buf.String())
	}
}

// TestRunShardJSON drives the sharding ablation end to end on a small
// dataset: one record per shard count, the exchange phase split only
// present on sharded records, host metadata attached, and a JSON round
// trip.
func TestRunShardJSON(t *testing.T) {
	env, _ := smallEnv(t)
	d := SmallRegistry()[0]
	counts := []int{1, 2, 4}
	rep, err := RunShardJSON(env, []*Dataset{d}, counts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != len(counts) {
		t.Fatalf("%d results, want one per shard count (%d)", len(rep.Results), len(counts))
	}
	if rep.Host == nil || rep.Host.GoVersion == "" || rep.Host.Workers != env.Pool.Workers() {
		t.Fatalf("missing host metadata: %+v", rep.Host)
	}
	for i, r := range rep.Results {
		if r.Shards != counts[i] || r.Dataset != d.Name || r.NsPerStep <= 0 {
			t.Fatalf("implausible measurement: %+v", r)
		}
		if r.Shards == 1 {
			if r.CrossEdges != 0 || r.ExchangeBinNs != 0 || r.ExchangeDrainNs != 0 {
				t.Fatalf("unsharded baseline grew exchange columns: %+v", r)
			}
		} else {
			if r.CrossEdges <= 0 {
				t.Fatalf("sharded record has no cross edges: %+v", r)
			}
			if r.ExchangeBinNs <= 0 || r.ExchangeDrainNs <= 0 {
				t.Fatalf("sharded record missing exchange phase split: %+v", r)
			}
		}
	}
	path := filepath.Join(t.TempDir(), "results", "BENCH_shard.json")
	if err := WriteShardJSON(path, rep); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back ShardReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Workers != rep.Workers || len(back.Results) != len(rep.Results) ||
		back.Host == nil || back.Host.GoVersion != rep.Host.GoVersion {
		t.Fatalf("report changed in round trip: %+v", back)
	}
}

// TestHostInfoInReports checks every report constructor stamps host
// metadata.
func TestHostInfoInReports(t *testing.T) {
	h := CollectHost(3)
	if h.GoVersion == "" || h.NumCPU < 1 || h.GoMaxProcs < 1 || h.Workers != 3 {
		t.Fatalf("implausible host info: %+v", h)
	}
	env, _ := smallEnv(t)
	d := SmallRegistry()[0]
	step, err := RunStepJSON(env, []*Dataset{d})
	if err != nil {
		t.Fatal(err)
	}
	if step.Host == nil || step.Host.Workers != env.Pool.Workers() {
		t.Fatalf("step report missing host metadata: %+v", step.Host)
	}
}
