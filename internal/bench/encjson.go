package bench

// Flat-vs-varint encoding ablation (ihtlbench -encjson): for each
// dataset, the same iHTL graph is stepped under both block encodings
// and the per-edge topology stream, resident footprint, and step time
// are recorded side by side — the measurement backing the compressed
// block representation's acceptance figures (results/BENCH_compress.json).
// The report also compares heap residency of a memory-mapped v2 engine
// file against the resident v1 loader on the scale-18 R-MAT.

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"ihtl/internal/core"
)

// EncResult is one (dataset, encoding) measurement.
type EncResult struct {
	Dataset  string `json:"dataset"`
	Encoding string `json:"encoding"`
	Vertices int    `json:"vertices"`
	Edges    int64  `json:"edges"`

	NsPerStep int64   `json:"ns_per_step"`
	NsPerEdge float64 `json:"ns_per_edge"`

	// BytesPerEdge is the modelled topology stream of one Step divided
	// by the edge count (core.Engine.TopologyBytesPerStep). Vertex-data
	// traffic is identical under both encodings and deliberately
	// excluded, so the flat:varint ratio of this column IS the topology
	// compression ratio on the hot path.
	BytesPerEdge float64 `json:"bytes_per_edge"`
	// ResidentBytes is the topology the engine keeps addressable
	// (core.Engine.ResidentTopologyBytes).
	ResidentBytes int64 `json:"resident_bytes"`
	// CompressionRatio is flat BytesPerEdge over this row's (varint
	// rows only; 0 on flat rows).
	CompressionRatio float64 `json:"compression_ratio,omitempty"`
}

// EncMmap compares the Go-heap residency of opening a serialised
// engine: the v1 resident decoder against the v2 mmap-backed loader on
// the same graph. Mapped pages live in the page cache, not the heap,
// so MmapHeapBytes staying far below FlatHeapBytes is the "open
// lazily without doubling RSS" acceptance signal.
type EncMmap struct {
	Dataset       string `json:"dataset"`
	Vertices      int    `json:"vertices"`
	Edges         int64  `json:"edges"`
	V1FileBytes   int64  `json:"v1_file_bytes"`
	V2FileBytes   int64  `json:"v2_file_bytes"`
	FlatHeapBytes int64  `json:"flat_heap_bytes"`
	MmapHeapBytes int64  `json:"mmap_heap_bytes"`
	Mapped        bool   `json:"mapped"`
}

// EncReport is the machine-readable encoding-ablation report
// (conventionally results/BENCH_compress.json).
type EncReport struct {
	Workers    int         `json:"workers"`
	GoMaxProcs int         `json:"gomaxprocs"`
	Iters      int         `json:"iters"`
	Host       *HostInfo   `json:"host,omitempty"`
	Results    []EncResult `json:"results"`
	Mmap       *EncMmap    `json:"mmap,omitempty"`
}

// RunEncJSON measures every dataset under both encodings and appends
// the scale-18 mmap comparison.
func RunEncJSON(env *Env, datasets []*Dataset) (*EncReport, error) {
	rep := &EncReport{
		Workers:    env.Pool.Workers(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Iters:      env.Iters,
		Host:       CollectHost(env.Pool.Workers()),
	}
	for _, d := range datasets {
		g, err := d.Load()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", d.Name, err)
		}
		ih, err := core.Build(g, env.ihtlParams())
		if err != nil {
			return nil, fmt.Errorf("%s: %w", d.Name, err)
		}
		var flatBPE float64
		for _, enc := range []core.BlockEncoding{core.EncodingFlat, core.EncodingVarint} {
			e, err := core.NewEngineOpts(ih, env.Pool, core.EngineOptions{BlockEncoding: enc})
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", d.Name, enc, err)
			}
			ns := stepTime(e, env.Iters).Nanoseconds()
			res := EncResult{
				Dataset:       d.Name,
				Encoding:      enc.String(),
				Vertices:      g.NumV,
				Edges:         g.NumE,
				NsPerStep:     ns,
				NsPerEdge:     float64(ns) / float64(g.NumE),
				BytesPerEdge:  float64(e.TopologyBytesPerStep()) / float64(g.NumE),
				ResidentBytes: e.ResidentTopologyBytes(),
			}
			if enc == core.EncodingFlat {
				flatBPE = res.BytesPerEdge
			} else if res.BytesPerEdge > 0 {
				res.CompressionRatio = flatBPE / res.BytesPerEdge
			}
			rep.Results = append(rep.Results, res)
		}
	}
	mm, err := runEncMmap(env)
	if err != nil {
		return nil, err
	}
	rep.Mmap = mm
	return rep, nil
}

// runEncMmap serialises the scale-18 R-MAT engine in both formats and
// measures the Go-heap cost of re-opening each.
func runEncMmap(env *Env) (*EncMmap, error) {
	d := BatchSweepRegistry()[0] // the scale-18 R-MAT acceptance graph
	g, err := d.Load()
	if err != nil {
		return nil, err
	}
	ih, err := core.Build(g, env.ihtlParams())
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "ihtlenc")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	v1 := filepath.Join(dir, "g.ihtl")
	v2 := filepath.Join(dir, "g.ihtl2")
	if err := ih.SaveFile(v1); err != nil {
		return nil, err
	}
	if err := ih.SaveFileV2(v2); err != nil {
		return nil, err
	}
	mm := &EncMmap{Dataset: d.Name, Vertices: g.NumV, Edges: g.NumE}
	for path, size := range map[string]*int64{v1: &mm.V1FileBytes, v2: &mm.V2FileBytes} {
		st, err := os.Stat(path)
		if err != nil {
			return nil, err
		}
		*size = st.Size()
	}

	var loaded *core.IHTL
	flat, err := heapDelta(func() error {
		loaded, err = core.LoadFile(v1)
		return err
	})
	if err != nil {
		return nil, err
	}
	runtime.KeepAlive(loaded)
	loaded = nil
	mm.FlatHeapBytes = flat

	var ef *core.EngineFile
	mapped, err := heapDelta(func() error {
		ef, err = core.OpenEngineFile(v2)
		return err
	})
	if err != nil {
		return nil, err
	}
	mm.MmapHeapBytes = mapped
	mm.Mapped = ef.Mapped()
	ef.Close()
	return mm, nil
}

// heapDelta runs fn between two GC-settled heap readings and returns
// how much live heap it added.
func heapDelta(fn func() error) (int64, error) {
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	if err := fn(); err != nil {
		return 0, err
	}
	runtime.GC()
	runtime.ReadMemStats(&m1)
	return int64(m1.HeapAlloc) - int64(m0.HeapAlloc), nil
}

// WriteEncJSON writes the report as indented JSON.
func WriteEncJSON(path string, rep *EncReport) error {
	return writeJSON(path, rep)
}
