package bench

import (
	"fmt"
	"time"

	"ihtl/internal/core"
	"ihtl/internal/graph"
	"ihtl/internal/spmv"
	"ihtl/internal/stats"
)

// Table3Row compares simulated memory accesses and cache misses of
// pull vs iHTL (paper Table 3, in millions on the paper's graphs; raw
// counts here).
type Table3Row struct {
	Dataset        string
	PullAccesses   uint64
	IHTLAccesses   uint64
	PullL3, IHTLL3 uint64
	PullL2, IHTLL2 uint64
}

// RunTable3 simulates one PageRank-style iteration under both
// traversals.
func RunTable3(env *Env, name string, g *graph.Graph) (Table3Row, error) {
	row := Table3Row{Dataset: name}
	pull, _ := spmv.SimulatePull(g, env.CacheCfg, false)
	ih, err := core.Build(g, core.Params{CacheBytes: env.CacheCfg.Levels[1].SizeBytes})
	if err != nil {
		return row, err
	}
	is, _ := core.SimulateStep(ih, g, env.CacheCfg, false)
	row.PullAccesses = pull.Loads + pull.Stores
	row.IHTLAccesses = is.Loads + is.Stores
	row.PullL3, row.IHTLL3 = pull.L3.Misses, is.L3.Misses
	row.PullL2, row.IHTLL2 = pull.L2.Misses, is.L2.Misses
	return row, nil
}

// EstCost estimates the memory-system cost of one iteration in cycle
// units with a conventional latency model (1 cycle per access, 12 per
// L2 miss, 60 per L3 miss served from L3... the L3-miss term uses the
// DRAM latency since an L3 miss goes to memory): cost = accesses +
// 12*L2misses + 170*L3misses. It stands in for the wall-clock Figure 7
// comparison on machines whose real caches dwarf the test graphs (see
// EXPERIMENTS.md).
func (r Table3Row) EstCost(accesses, l2, l3 uint64) float64 {
	return float64(accesses) + 12*float64(l2) + 170*float64(l3)
}

// CostRatio returns estimated pull cost / iHTL cost (> 1 means iHTL
// wins).
func (r Table3Row) CostRatio() float64 {
	ih := r.EstCost(r.IHTLAccesses, r.IHTLL2, r.IHTLL3)
	if ih == 0 {
		return 0
	}
	return r.EstCost(r.PullAccesses, r.PullL2, r.PullL3) / ih
}

// RenderTable3 prints Table 3 plus the derived cost ratio.
func RenderTable3(env *Env, rows []Table3Row) {
	t := &Table{
		Title: "Table 3: memory accesses and cache misses (simulated, thousands)",
		Header: []string{"Dataset", "Accesses pull", "Accesses iHTL",
			"L3 miss pull", "L3 miss iHTL", "L2 miss pull", "L2 miss iHTL",
			"Est. pull/iHTL"},
	}
	k := func(x uint64) string { return fmt.Sprintf("%d", x/1000) }
	var sum float64
	for _, r := range rows {
		t.Add(r.Dataset, k(r.PullAccesses), k(r.IHTLAccesses),
			k(r.PullL3), k(r.IHTLL3), k(r.PullL2), k(r.IHTLL2),
			fmt.Sprintf("%.2fx", r.CostRatio()))
		sum += r.CostRatio()
	}
	if n := float64(len(rows)); n > 0 {
		t.Add("Avg.", "", "", "", "", "", "", fmt.Sprintf("%.2fx", sum/n))
	}
	env.render(t)
}

// Table4Row compares topology sizes (paper Table 4).
type Table4Row struct {
	Dataset   string
	CSCBytes  int64
	IHTLBytes int64
	Overhead  float64
}

// RunTable4 computes the topology accounting.
func RunTable4(env *Env, name string, g *graph.Graph) (Table4Row, error) {
	ih, err := core.Build(g, env.ihtlParams())
	if err != nil {
		return Table4Row{}, err
	}
	s := ih.Stats(g)
	return Table4Row{Dataset: name, CSCBytes: s.CSCBytes, IHTLBytes: s.TopologyBytes, Overhead: s.OverheadFrac}, nil
}

// RenderTable4 prints Table 4.
func RenderTable4(env *Env, rows []Table4Row) {
	t := &Table{
		Title:  "Table 4: size of topology data",
		Header: []string{"Dataset", "CSC (MiB)", "iHTL (MiB)", "Overhead"},
	}
	mib := func(b int64) string { return fmt.Sprintf("%.2f", float64(b)/(1<<20)) }
	for _, r := range rows {
		t.Add(r.Dataset, mib(r.CSCBytes), mib(r.IHTLBytes), pct(r.Overhead))
	}
	env.render(t)
}

// Table5Row reports iHTL graph statistics and execution breakdown.
type Table5Row struct {
	Dataset string
	Stats   core.GraphStats
	Exec    core.ExecBreakdown
}

// RunTable5 builds iHTL, runs timed iterations, and derives the
// Table 5 columns.
func RunTable5(env *Env, name string, g *graph.Graph) (Table5Row, error) {
	row := Table5Row{Dataset: name}
	ih, err := core.Build(g, env.ihtlParams())
	if err != nil {
		return row, err
	}
	row.Stats = ih.Stats(g)
	e, err := core.NewEngine(ih, env.Pool)
	if err != nil {
		return row, err
	}
	stepTime(e, env.Iters) // warms and accumulates breakdown
	row.Exec = ih.ExecStats(e.TakeBreakdown())
	return row, nil
}

// RenderTable5 prints Table 5.
func RenderTable5(env *Env, rows []Table5Row) {
	t := &Table{
		Title: "Table 5: iHTL graph statistics and execution breakdown",
		Header: []string{"Dataset", "#FB", "VWEH", "Min hub deg", "FB edges",
			"FB time", "Buf merge", "FB speed"},
	}
	for _, r := range rows {
		t.Add(r.Dataset, r.Stats.NumBlocks, pct(r.Stats.VWEHFrac), r.Stats.MinHubDegree,
			pct(r.Stats.FlippedEdgeFrac), pct(r.Exec.FlippedTimeFrac),
			pct(r.Exec.MergeTimeFrac), fmt.Sprintf("%.2f", r.Exec.FlippedSpeed))
	}
	env.render(t)
}

// Table6Row is the buffer-size sensitivity sweep (paper Table 6):
// iteration time with hubs-per-block derived from L1, L2/2, L2 and
// 2xL2 capacities.
type Table6Row struct {
	Dataset string
	Times   []time.Duration
}

// Table6Labels names the sweep points.
func Table6Labels() []string {
	return []string{"L1-size", "L2/2", "L2", "L2*2"}
}

// table6CacheBytes derives the sweep capacities from the env's scaled
// geometry.
func table6CacheBytes(env *Env) []int {
	l1 := env.CacheCfg.Levels[0].SizeBytes
	l2 := env.CacheCfg.Levels[1].SizeBytes
	return []int{l1, l2 / 2, l2, l2 * 2}
}

// RunTable6 sweeps the buffer size.
func RunTable6(env *Env, name string, g *graph.Graph) (Table6Row, error) {
	row := Table6Row{Dataset: name}
	for _, cb := range table6CacheBytes(env) {
		ih, err := core.Build(g, core.Params{CacheBytes: cb})
		if err != nil {
			return row, err
		}
		e, err := core.NewEngine(ih, env.Pool)
		if err != nil {
			return row, err
		}
		row.Times = append(row.Times, stepTime(e, env.Iters))
	}
	return row, nil
}

// RenderTable6 prints Table 6.
func RenderTable6(env *Env, rows []Table6Row) {
	t := &Table{
		Title:  "Table 6: per-iteration time (ms) vs buffer size",
		Header: append([]string{"Dataset"}, Table6Labels()...),
	}
	for _, r := range rows {
		cells := []any{r.Dataset}
		for _, d := range r.Times {
			cells = append(cells, ms(d.Seconds()))
		}
		t.Add(cells...)
	}
	env.render(t)
}

// Fig9Result is the asymmetricity-by-degree distribution of one
// dataset (paper Figure 9).
type Fig9Result struct {
	Dataset string
	Kind    string
	Buckets []stats.AsymmetryBucket
	HubAsym float64
}

// RunFig9 computes asymmetricity per in-degree bucket plus the
// top-100-hub mean.
func RunFig9(name, kind string, g *graph.Graph) Fig9Result {
	return Fig9Result{
		Dataset: name,
		Kind:    kind,
		Buckets: stats.AsymmetryByDegree(g),
		HubAsym: stats.HubAsymmetricity(g, 100),
	}
}

// RenderFig9 prints Figure 9.
func RenderFig9(env *Env, results []Fig9Result) {
	for _, res := range results {
		t := &Table{
			Title:  fmt.Sprintf("Figure 9 (%s, %s): asymmetricity by in-degree (hub mean %.2f)", res.Dataset, res.Kind, res.HubAsym),
			Header: []string{"in-degree", "vertices", "mean asymmetricity"},
		}
		for _, b := range res.Buckets {
			t.Add(fmt.Sprintf("[%d,%d)", b.DegreeLo, b.DegreeHi), b.Count, fmt.Sprintf("%.3f", b.MeanAsymmetricity))
		}
		env.render(t)
	}
}
