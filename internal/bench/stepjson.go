package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"ihtl/internal/core"
	"ihtl/internal/graph"
	"ihtl/internal/spmv"
)

// StepKernels lists the kernel IDs RunStepJSON measures, in report
// order: the five baseline traversal engines (including standalone
// propagation blocking), the fused Algorithm 3 engine with its sparse
// kernel pinned to the paper's pull, its pre-fusion phased ablation,
// and the two sparse-kernel ablations (degree-aware pull and
// propagation-blocked; sparse.go).
func StepKernels() []string {
	return []string{
		"pull", "push-atomic", "push-buffered", "push-partitioned",
		"prop-blocked",
		"ihtl-fused", "ihtl-phased", "ihtl-pull-degree", "ihtl-pb",
	}
}

// StepResult is one (dataset, kernel) measurement. Scalar records
// leave the batch fields at their zero values, so reports written
// before the batch sweep existed still parse (and re-serialise)
// unchanged.
type StepResult struct {
	Dataset   string  `json:"dataset"`
	Kernel    string  `json:"kernel"`
	Vertices  int     `json:"vertices"`
	Edges     int64   `json:"edges"`
	NsPerStep int64   `json:"ns_per_step"`
	NsPerEdge float64 `json:"ns_per_edge"`

	// BytesPerEdge is the kernel's modelled memory traffic per edge
	// (engine BytesPerStep / Edges; see internal/spmv/footprint.go):
	// topology streams once, vertex-data accesses per access, scratch
	// passes per pass. It is a demand model, not a measurement.
	BytesPerEdge float64 `json:"bytes_per_edge,omitempty"`

	// Encoding is the block-topology encoding the measured engine
	// resolved to ("flat" for every baseline kernel; iHTL kernels
	// report their core.BlockEncoding).
	Encoding string `json:"encoding,omitempty"`
	// ResidentBytes is the topology footprint the engine keeps
	// addressable in memory (ResidentTopologyBytes), the column the
	// encoding ablation compares across flat and varint.
	ResidentBytes int64 `json:"resident_bytes,omitempty"`

	// SparseNs/BinNs/DrainNs split an iHTL record's per-step sparse
	// busy time by phase: the pull kernels charge SparseNs, the
	// propagation-blocked kernel charges its two phases separately.
	// Baseline (non-iHTL) records leave all three at zero.
	SparseNs int64 `json:"sparse_ns,omitempty"`
	BinNs    int64 `json:"bin_ns,omitempty"`
	DrainNs  int64 `json:"drain_ns,omitempty"`

	// BatchK is the batch width of a batched-kernel record (0 for
	// scalar records). NsPerStep is then the time of one K-wide
	// StepBatch and NsPerEdge is per edge-LANE (K lanes per edge).
	BatchK int `json:"batch_k,omitempty"`
	// EdgesPerSecPerVec is the per-vector edge throughput of a batched
	// record: Edges / (NsPerStep/BatchK) — the effective per-vector
	// step time shrinks to NsPerStep/K, so this is the figure that
	// must rise with K for batching to pay.
	EdgesPerSecPerVec float64 `json:"edges_per_sec_per_vec,omitempty"`
}

// StepReport is the machine-readable per-kernel step-time report;
// WriteStepJSON serialises it (conventionally to
// results/BENCH_step.json) for tracking across commits.
type StepReport struct {
	Workers    int `json:"workers"`
	GoMaxProcs int `json:"gomaxprocs"`
	Iters      int `json:"iters"`
	// Host identifies the measuring machine and runtime (see
	// HostInfo); reports written before it existed parse with a nil
	// Host.
	Host    *HostInfo    `json:"host,omitempty"`
	Results []StepResult `json:"results"`
}

// RunStepJSON measures the average SpMV step time of every kernel in
// StepKernels on each dataset, normalised per edge.
func RunStepJSON(env *Env, datasets []*Dataset) (*StepReport, error) {
	rep := &StepReport{
		Workers:    env.Pool.Workers(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Iters:      env.Iters,
		Host:       CollectHost(env.Pool.Workers()),
	}
	for _, d := range datasets {
		g, err := d.Load()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", d.Name, err)
		}
		for _, kernel := range StepKernels() {
			e, err := stepEngine(env, g, kernel)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", d.Name, kernel, err)
			}
			ns := stepTime(e, env.Iters).Nanoseconds()
			res := StepResult{
				Dataset:   d.Name,
				Kernel:    kernel,
				Vertices:  g.NumV,
				Edges:     g.NumE,
				NsPerStep: ns,
				NsPerEdge: float64(ns) / float64(g.NumE),
			}
			if fp, ok := e.(interface{ BytesPerStep() int64 }); ok {
				res.BytesPerEdge = float64(fp.BytesPerStep()) / float64(g.NumE)
			}
			res.Encoding = "flat"
			if rb, ok := e.(interface{ ResidentTopologyBytes() int64 }); ok {
				res.ResidentBytes = rb.ResidentTopologyBytes()
			}
			if ce, ok := e.(*core.Engine); ok {
				res.Encoding = ce.Encoding().String()
				if b := ce.TakeBreakdown(); b.Steps > 0 {
					steps := int64(b.Steps)
					res.SparseNs = b.SparseBusy.Nanoseconds() / steps
					res.BinNs = b.BinBusy.Nanoseconds() / steps
					res.DrainNs = b.DrainBusy.Nanoseconds() / steps
					if res.SparseNs == 0 && res.BinNs == 0 {
						// The phased pipeline records wall-clock phase
						// boundaries instead of per-worker busy clocks.
						res.SparseNs = b.Sparse.Nanoseconds() / steps
					}
				}
			}
			rep.Results = append(rep.Results, res)
		}
	}
	return rep, nil
}

// BatchKs lists the batch widths of the -batch sweep.
func BatchKs() []int { return []int{1, 4, 8, 16} }

// BatchKernels lists the kernel IDs measured per batch width: the
// pull and buffered-push baselines and the fused iHTL engine, each in
// its batched (multi-vector) form.
func BatchKernels() []string {
	return []string{"pull-batch", "push-buffered-batch", "ihtl-fused-batch"}
}

// AppendBatchSweep measures the batched kernels at every width in ks
// on each dataset and appends the records to rep. The iHTL engine is
// rebuilt per width with Params.ForBatch, so its K-wide hub buffers
// keep the scalar cache budget.
func AppendBatchSweep(rep *StepReport, env *Env, datasets []*Dataset, ks []int) error {
	if len(ks) == 0 {
		ks = BatchKs()
	}
	for _, d := range datasets {
		g, err := d.Load()
		if err != nil {
			return fmt.Errorf("%s: %w", d.Name, err)
		}
		for _, kernel := range BatchKernels() {
			for _, k := range ks {
				e, err := batchEngine(env, g, kernel, k)
				if err != nil {
					return fmt.Errorf("%s/%s/k%d: %w", d.Name, kernel, k, err)
				}
				ns := stepBatchTime(e, k, env.Iters).Nanoseconds()
				rep.Results = append(rep.Results, StepResult{
					Dataset:           d.Name,
					Kernel:            kernel,
					Vertices:          g.NumV,
					Edges:             g.NumE,
					NsPerStep:         ns,
					NsPerEdge:         float64(ns) / float64(g.NumE*int64(k)),
					BatchK:            k,
					EdgesPerSecPerVec: float64(g.NumE) * float64(k) / float64(ns) * 1e9,
				})
			}
		}
	}
	return nil
}

// batchEngine builds the named batched kernel's engine for g at
// width k.
func batchEngine(env *Env, g *graph.Graph, kernel string, k int) (spmv.BatchStepper, error) {
	switch kernel {
	case "pull-batch":
		return spmv.NewEngine(g, env.Pool, spmv.Pull, spmv.Options{})
	case "push-buffered-batch":
		return spmv.NewEngine(g, env.Pool, spmv.PushBuffered, spmv.Options{})
	case "ihtl-fused-batch":
		ih, err := core.Build(g, env.ihtlParams().ForBatch(k))
		if err != nil {
			return nil, err
		}
		return core.NewEngine(ih, env.Pool)
	default:
		return nil, fmt.Errorf("bench: unknown batch kernel %q", kernel)
	}
}

// stepEngine builds the named kernel's engine for g.
func stepEngine(env *Env, g *graph.Graph, kernel string) (spmv.Stepper, error) {
	switch kernel {
	case "pull":
		return spmv.NewEngine(g, env.Pool, spmv.Pull, spmv.Options{})
	case "push-atomic":
		return spmv.NewEngine(g, env.Pool, spmv.PushAtomic, spmv.Options{})
	case "push-buffered":
		return spmv.NewEngine(g, env.Pool, spmv.PushBuffered, spmv.Options{})
	case "push-partitioned":
		return spmv.NewEngine(g, env.Pool, spmv.PushPartitioned, spmv.Options{})
	case "prop-blocked":
		return spmv.NewEngine(g, env.Pool, spmv.PropBlocked, spmv.Options{})
	case "ihtl-fused", "ihtl-phased":
		// Sparse kernel pinned to the paper's pull so the ihtl-* rows
		// form a clean three-way sparse ablation against the two below.
		ih, err := core.Build(g, env.ihtlParams())
		if err != nil {
			return nil, err
		}
		return core.NewEngineOpts(ih, env.Pool, core.EngineOptions{
			Phased: kernel == "ihtl-phased", SparseKernel: core.SparsePull,
		})
	case "ihtl-pull-degree", "ihtl-pb":
		ih, err := core.Build(g, env.ihtlParams())
		if err != nil {
			return nil, err
		}
		k := core.SparsePullDegree
		if kernel == "ihtl-pb" {
			k = core.SparsePB
		}
		return core.NewEngineOpts(ih, env.Pool, core.EngineOptions{SparseKernel: k})
	default:
		return nil, fmt.Errorf("bench: unknown step kernel %q", kernel)
	}
}

// WriteStepJSON writes the report as indented JSON, creating the
// target directory if needed.
func WriteStepJSON(path string, rep *StepReport) error {
	return writeJSON(path, rep)
}

// writeJSON writes v as indented JSON, creating the target directory
// if needed.
func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
