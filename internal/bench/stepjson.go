package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"ihtl/internal/core"
	"ihtl/internal/graph"
	"ihtl/internal/spmv"
)

// StepKernels lists the kernel IDs RunStepJSON measures, in report
// order: the four baseline traversal engines, the fused Algorithm 3
// engine, and its pre-fusion phased ablation.
func StepKernels() []string {
	return []string{
		"pull", "push-atomic", "push-buffered", "push-partitioned",
		"ihtl-fused", "ihtl-phased",
	}
}

// StepResult is one (dataset, kernel) measurement.
type StepResult struct {
	Dataset   string  `json:"dataset"`
	Kernel    string  `json:"kernel"`
	Vertices  int     `json:"vertices"`
	Edges     int64   `json:"edges"`
	NsPerStep int64   `json:"ns_per_step"`
	NsPerEdge float64 `json:"ns_per_edge"`
}

// StepReport is the machine-readable per-kernel step-time report;
// WriteStepJSON serialises it (conventionally to
// results/BENCH_step.json) for tracking across commits.
type StepReport struct {
	Workers    int          `json:"workers"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Iters      int          `json:"iters"`
	Results    []StepResult `json:"results"`
}

// RunStepJSON measures the average SpMV step time of every kernel in
// StepKernels on each dataset, normalised per edge.
func RunStepJSON(env *Env, datasets []*Dataset) (*StepReport, error) {
	rep := &StepReport{
		Workers:    env.Pool.Workers(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Iters:      env.Iters,
	}
	for _, d := range datasets {
		g, err := d.Load()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", d.Name, err)
		}
		for _, kernel := range StepKernels() {
			e, err := stepEngine(env, g, kernel)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", d.Name, kernel, err)
			}
			ns := stepTime(e, env.Iters).Nanoseconds()
			rep.Results = append(rep.Results, StepResult{
				Dataset:   d.Name,
				Kernel:    kernel,
				Vertices:  g.NumV,
				Edges:     g.NumE,
				NsPerStep: ns,
				NsPerEdge: float64(ns) / float64(g.NumE),
			})
		}
	}
	return rep, nil
}

// stepEngine builds the named kernel's engine for g.
func stepEngine(env *Env, g *graph.Graph, kernel string) (spmv.Stepper, error) {
	switch kernel {
	case "pull":
		return spmv.NewEngine(g, env.Pool, spmv.Pull, spmv.Options{})
	case "push-atomic":
		return spmv.NewEngine(g, env.Pool, spmv.PushAtomic, spmv.Options{})
	case "push-buffered":
		return spmv.NewEngine(g, env.Pool, spmv.PushBuffered, spmv.Options{})
	case "push-partitioned":
		return spmv.NewEngine(g, env.Pool, spmv.PushPartitioned, spmv.Options{})
	case "ihtl-fused", "ihtl-phased":
		ih, err := core.Build(g, env.ihtlParams())
		if err != nil {
			return nil, err
		}
		return core.NewEngineOpts(ih, env.Pool,
			core.EngineOptions{Phased: kernel == "ihtl-phased"})
	default:
		return nil, fmt.Errorf("bench: unknown step kernel %q", kernel)
	}
}

// WriteStepJSON writes the report as indented JSON, creating the
// target directory if needed.
func WriteStepJSON(path string, rep *StepReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
