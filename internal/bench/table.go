package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is a minimal aligned-text table renderer for paper-style
// output.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Add appends a row; values are formatted with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table to w (nil w discards).
func (t *Table) Render(w io.Writer) {
	if w == nil {
		return
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// ms formats a duration-in-seconds float as milliseconds.
func ms(seconds float64) string {
	return fmt.Sprintf("%.2f", seconds*1000)
}

// pct formats a fraction as a percentage.
func pct(f float64) string {
	return fmt.Sprintf("%.1f%%", 100*f)
}

// RenderCSV writes the table as CSV (RFC-4180 quoting for cells with
// commas or quotes) with the title as a comment line; nil w discards.
func RenderCSV(t *Table, w io.Writer) {
	if w == nil {
		return
	}
	if t.Title != "" {
		fmt.Fprintf(w, "# %s\n", t.Title)
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			parts[i] = c
		}
		fmt.Fprintln(w, strings.Join(parts, ","))
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
}
