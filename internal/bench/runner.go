package bench

import (
	"fmt"
)

// DefaultGOrderCap is the edge-count bound above which GOrder is
// skipped (its 2-hop windowed scoring is far slower than everything
// else, as in the paper, where GOrder could not process the largest
// graphs either).
const DefaultGOrderCap = int64(400_000)

// Experiments lists the runnable experiment IDs.
func Experiments() []string {
	return []string{"fig1", "fig2", "fig7", "table2", "table3", "table4", "fig8", "table5", "table6", "fig9"}
}

// Run executes the named experiment over the given datasets and
// renders its tables to env.Out. "table2" is produced by the fig7
// driver (it reuses the same measurements).
func Run(env *Env, exp string, datasets []*Dataset) error {
	switch exp {
	case "fig2":
		return RunFig2(env)
	case "fig1":
		var results []Fig1Result
		for _, d := range datasets {
			g, err := d.Load()
			if err != nil {
				return fmt.Errorf("%s: %w", d.Name, err)
			}
			r, err := RunFig1(env, d.Name, g, DefaultGOrderCap)
			if err != nil {
				return err
			}
			results = append(results, r)
		}
		RenderFig1(env, results)
	case "fig7", "table2":
		var rows []Fig7Row
		for _, d := range datasets {
			g, err := d.Load()
			if err != nil {
				return fmt.Errorf("%s: %w", d.Name, err)
			}
			r, err := RunFig7(env, d.Name, g)
			if err != nil {
				return err
			}
			rows = append(rows, r)
		}
		RenderFig7(env, rows)
	case "table3":
		var rows []Table3Row
		for _, d := range datasets {
			g, err := d.Load()
			if err != nil {
				return fmt.Errorf("%s: %w", d.Name, err)
			}
			r, err := RunTable3(env, d.Name, g)
			if err != nil {
				return err
			}
			rows = append(rows, r)
		}
		RenderTable3(env, rows)
	case "table4":
		var rows []Table4Row
		for _, d := range datasets {
			g, err := d.Load()
			if err != nil {
				return fmt.Errorf("%s: %w", d.Name, err)
			}
			r, err := RunTable4(env, d.Name, g)
			if err != nil {
				return err
			}
			rows = append(rows, r)
		}
		RenderTable4(env, rows)
	case "fig8":
		var rows []Fig8Row
		for _, d := range datasets {
			g, err := d.Load()
			if err != nil {
				return fmt.Errorf("%s: %w", d.Name, err)
			}
			r, err := RunFig8(env, d.Name, g, DefaultGOrderCap)
			if err != nil {
				return err
			}
			rows = append(rows, r)
		}
		RenderFig8(env, rows)
	case "table5":
		var rows []Table5Row
		for _, d := range datasets {
			g, err := d.Load()
			if err != nil {
				return fmt.Errorf("%s: %w", d.Name, err)
			}
			r, err := RunTable5(env, d.Name, g)
			if err != nil {
				return err
			}
			rows = append(rows, r)
		}
		RenderTable5(env, rows)
	case "table6":
		var rows []Table6Row
		for _, d := range datasets {
			g, err := d.Load()
			if err != nil {
				return fmt.Errorf("%s: %w", d.Name, err)
			}
			r, err := RunTable6(env, d.Name, g)
			if err != nil {
				return err
			}
			rows = append(rows, r)
		}
		RenderTable6(env, rows)
	case "fig9":
		var results []Fig9Result
		for _, d := range datasets {
			g, err := d.Load()
			if err != nil {
				return fmt.Errorf("%s: %w", d.Name, err)
			}
			results = append(results, RunFig9(d.Name, d.Kind, g))
		}
		RenderFig9(env, results)
	default:
		return fmt.Errorf("bench: unknown experiment %q (have %v)", exp, Experiments())
	}
	return nil
}

// RunAll executes every experiment in registry order. table2 is
// skipped because the fig7 driver renders it.
func RunAll(env *Env, datasets []*Dataset) error {
	for _, e := range Experiments() {
		if e == "table2" {
			continue
		}
		if err := Run(env, e, datasets); err != nil {
			return fmt.Errorf("%s: %w", e, err)
		}
	}
	return nil
}
