package bench

import (
	"fmt"
	"time"

	"ihtl/internal/core"
	"ihtl/internal/graph"
	"ihtl/internal/order"
	"ihtl/internal/spmv"
)

// Fig8Row compares iHTL with pull traversal of a relabeled graph:
// per-iteration time plus preprocessing time (Figure 8's two tables).
type Fig8Row struct {
	Dataset string
	// Entries holds per-algorithm (iteration time, preprocessing
	// time) pairs, in the order of Fig8Algorithms. Skipped entries
	// (size caps) have Skipped set.
	Entries []Fig8Entry
	// IHTLIter and IHTLPre are the iHTL columns.
	IHTLIter, IHTLPre time.Duration
}

// Fig8Entry is one relabeling algorithm's measurements.
type Fig8Entry struct {
	Name     string
	Iter     time.Duration
	Pre      time.Duration
	Skipped  bool
	SkipNote string
}

// Fig8Algorithms returns the relabeling baselines with the paper's
// settings. gorderCap bounds the graph size GOrder is attempted on:
// its windowed 2-hop scoring is quadratic-ish on hubs, and the paper
// itself reports GOrder preprocessing >2000x slower than iHTL (and
// unable to process the largest graphs).
func Fig8Algorithms() []order.Algorithm {
	return []order.Algorithm{
		order.SlashBurn{},
		order.GOrder{},
		order.RabbitOrder{},
	}
}

// RunFig8 measures one dataset across the relabeling baselines.
func RunFig8(env *Env, name string, g *graph.Graph, gorderCap int64) (Fig8Row, error) {
	row := Fig8Row{Dataset: name}

	// iHTL columns.
	start := time.Now()
	ih, err := core.Build(g, env.ihtlParams())
	if err != nil {
		return row, err
	}
	row.IHTLPre = time.Since(start)
	ie, err := core.NewEngine(ih, env.Pool)
	if err != nil {
		return row, err
	}
	row.IHTLIter = stepTime(ie, env.Iters)

	for _, alg := range Fig8Algorithms() {
		entry := Fig8Entry{Name: alg.Name()}
		if _, isGOrder := alg.(order.GOrder); isGOrder && g.NumE > gorderCap {
			entry.Skipped = true
			entry.SkipNote = "size cap"
			row.Entries = append(row.Entries, entry)
			continue
		}
		start := time.Now()
		perm := alg.Permutation(g)
		entry.Pre = time.Since(start)
		rg, err := graph.Relabel(g, perm)
		if err != nil {
			return row, err
		}
		e, err := spmv.NewEngine(rg, env.Pool, spmv.Pull, spmv.Options{})
		if err != nil {
			return row, err
		}
		entry.Iter = stepTime(e, env.Iters)
		row.Entries = append(row.Entries, entry)
	}
	return row, nil
}

// RenderFig8 prints both halves of Figure 8.
func RenderFig8(env *Env, rows []Fig8Row) {
	if len(rows) == 0 {
		return
	}
	headerIter := []string{"Dataset"}
	headerPre := []string{"Dataset"}
	for _, e := range rows[0].Entries {
		headerIter = append(headerIter, e.Name+" pull")
		headerPre = append(headerPre, e.Name)
	}
	headerIter = append(headerIter, "iHTL")
	headerPre = append(headerPre, "iHTL")

	t := &Table{Title: "Figure 8 (left): pull after relabeling vs iHTL, per-iteration (ms)", Header: headerIter}
	for _, r := range rows {
		cells := []any{r.Dataset}
		for _, e := range r.Entries {
			if e.Skipped {
				cells = append(cells, "-("+e.SkipNote+")")
			} else {
				cells = append(cells, ms(e.Iter.Seconds()))
			}
		}
		cells = append(cells, ms(r.IHTLIter.Seconds()))
		t.Add(cells...)
	}
	env.render(t)

	t2 := &Table{Title: "Figure 8 (right): preprocessing time (ms)", Header: headerPre}
	for _, r := range rows {
		cells := []any{r.Dataset}
		for _, e := range r.Entries {
			if e.Skipped {
				cells = append(cells, "-("+e.SkipNote+")")
			} else {
				cells = append(cells, ms(e.Pre.Seconds()))
			}
		}
		cells = append(cells, ms(r.IHTLPre.Seconds()))
		t2.Add(cells...)
	}
	env.render(t2)

	// Average preprocessing ratio vs iHTL, the paper's headline
	// "reducing the preprocessing time by 780x".
	t3 := &Table{Title: "Figure 8: preprocessing slowdown vs iHTL", Header: []string{"Algorithm", "Avg. ratio"}}
	for i := range rows[0].Entries {
		var sum float64
		var n int
		for _, r := range rows {
			e := r.Entries[i]
			if e.Skipped || r.IHTLPre == 0 {
				continue
			}
			sum += float64(e.Pre) / float64(r.IHTLPre)
			n++
		}
		if n > 0 {
			t3.Add(rows[0].Entries[i].Name, fmt.Sprintf("%.0fx", sum/float64(n)))
		}
	}
	env.render(t3)
}
