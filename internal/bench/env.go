package bench

import (
	"io"
	"time"

	"ihtl/internal/cache"
	"ihtl/internal/core"
	"ihtl/internal/sched"
	"ihtl/internal/spmv"
)

// Env bundles the shared resources and scale parameters of an
// experiment run.
type Env struct {
	// Pool is the worker pool all engines share.
	Pool *sched.Pool
	// CacheCfg is the simulated hierarchy for the cache experiments.
	// The default scales the paper's Xeon geometry down ~32x to match
	// the ~1000x smaller graphs (so the cache:data ratio is similar).
	CacheCfg cache.Config
	// HubsPerBlock is the iHTL B used for the wall-clock experiments;
	// derived from the scaled L2 like §3.3 derives it from the real
	// one.
	HubsPerBlock int
	// Iters is the number of timed SpMV iterations per measurement.
	Iters int
	// Out receives the rendered tables; nil discards.
	Out io.Writer
	// CSV selects comma-separated output instead of aligned text.
	CSV bool
}

// render writes a table in the env's chosen format.
func (e *Env) render(t *Table) {
	if e.CSV {
		RenderCSV(t, e.Out)
		return
	}
	t.Render(e.Out)
}

// NewEnv creates an Env with the default scaled geometry on a fresh
// pool of the given size (0 = GOMAXPROCS). Close it when done.
//
// The geometry (4 KB L1 / 16 KB L2 / 512 KB L3) is the paper's Xeon
// divided ~64x, chosen so the full registry's 50K-425K-vertex graphs
// stand in the paper's regime: vertex data several times the LLC, and
// B = L2/8 = 2048 hubs per flipped block selecting the top ~0.5-4% of
// vertices (the paper's B = 1MiB/8 = 131072 over 7M-1.7B vertices).
func NewEnv(workers int) *Env {
	cfg := cache.Config{
		LineSize: 64,
		Levels: []cache.LevelConfig{
			{SizeBytes: 4 << 10, Ways: 8},
			{SizeBytes: 16 << 10, Ways: 16},
			{SizeBytes: 512 << 10, Ways: 8},
		},
		// Sequential topology streams are prefetch-covered, as on the
		// paper's hardware (§4.3: "sequential, i.e., assisted by
		// prefetching"); demand misses then reflect the random
		// vertex-data accesses the paper analyses.
		ModelPrefetch: true,
	}
	return &Env{
		Pool:         sched.NewPool(workers),
		CacheCfg:     cfg,
		HubsPerBlock: cfg.Levels[1].SizeBytes / spmv.VertexBytes,
		Iters:        8,
	}
}

// Close releases the pool.
func (e *Env) Close() { e.Pool.Close() }

// ihtlParams returns the iHTL build parameters for this env.
func (e *Env) ihtlParams() core.Params {
	return core.Params{HubsPerBlock: e.HubsPerBlock}
}

// timeIt returns the average duration of one call to fn over n calls
// after one warmup call.
func timeIt(n int, fn func()) time.Duration {
	fn()
	start := time.Now()
	for i := 0; i < n; i++ {
		fn()
	}
	return time.Since(start) / time.Duration(n)
}

// stepTime measures the average per-iteration time of an SpMV engine
// using PageRank-like data.
func stepTime(e spmv.Stepper, iters int) time.Duration {
	n := e.NumVertices()
	src := make([]float64, n)
	dst := make([]float64, n)
	for i := range src {
		src[i] = 1 / float64(n+1)
	}
	return timeIt(iters, func() {
		e.Step(src, dst)
		src, dst = dst, src
	})
}

// stepBatchTime is stepTime for a K-wide batched engine: the measured
// unit is one StepBatch advancing all K lanes.
func stepBatchTime(e spmv.BatchStepper, k, iters int) time.Duration {
	n := e.NumVertices()
	src := make([]float64, n*k)
	dst := make([]float64, n*k)
	for i := range src {
		src[i] = 1 / float64(n+1)
	}
	return timeIt(iters, func() {
		e.StepBatch(src, dst, k)
		src, dst = dst, src
	})
}
