package bench

import (
	"fmt"

	"ihtl/internal/core"
	"ihtl/internal/graph"
	"ihtl/internal/order"
	"ihtl/internal/spmv"
)

// Fig1Series is one curve of Figure 1: LLC miss rate conditional on
// vertex in-degree, for one traversal configuration.
type Fig1Series struct {
	Name    string
	Buckets []spmv.DegreeMissBucket
	Skipped bool
}

// Fig1Result carries all series for a dataset.
type Fig1Result struct {
	Dataset string
	Series  []Fig1Series
}

// RunFig1 simulates pull traversal on the original and relabeled
// graphs and the iHTL traversal, attributing LLC misses to in-degree
// buckets. gorderCap bounds GOrder's input size as in Fig 8.
func RunFig1(env *Env, name string, g *graph.Graph, gorderCap int64) (Fig1Result, error) {
	res := Fig1Result{Dataset: name}

	_, base := spmv.SimulatePull(g, env.CacheCfg, true)
	res.Series = append(res.Series, Fig1Series{Name: "original pull", Buckets: base})

	for _, alg := range Fig8Algorithms() {
		if _, isGOrder := alg.(order.GOrder); isGOrder && g.NumE > gorderCap {
			res.Series = append(res.Series, Fig1Series{Name: alg.Name() + " pull", Skipped: true})
			continue
		}
		perm := alg.Permutation(g)
		rg, err := graph.Relabel(g, perm)
		if err != nil {
			return res, err
		}
		_, buckets := spmv.SimulatePull(rg, env.CacheCfg, true)
		res.Series = append(res.Series, Fig1Series{Name: alg.Name() + " pull", Buckets: buckets})
	}

	ih, err := core.Build(g, core.Params{CacheBytes: env.CacheCfg.Levels[1].SizeBytes})
	if err != nil {
		return res, err
	}
	_, ibuckets := core.SimulateStep(ih, g, env.CacheCfg, true)
	res.Series = append(res.Series, Fig1Series{Name: "iHTL", Buckets: ibuckets})
	return res, nil
}

// RenderFig1 prints the per-degree miss-rate matrix: one row per
// degree bucket, one column per series.
func RenderFig1(env *Env, results []Fig1Result) {
	for _, res := range results {
		header := []string{"in-degree"}
		maxLen := 0
		for _, s := range res.Series {
			header = append(header, s.Name)
			if len(s.Buckets) > maxLen {
				maxLen = len(s.Buckets)
			}
		}
		t := &Table{
			Title:  fmt.Sprintf("Figure 1 (%s): LLC miss rate by vertex in-degree", res.Dataset),
			Header: header,
		}
		for b := 0; b < maxLen; b++ {
			lo := 1 << uint(b)
			cells := []any{fmt.Sprintf("[%d,%d)", lo, lo*2)}
			any := false
			for _, s := range res.Series {
				switch {
				case s.Skipped:
					cells = append(cells, "-")
				case b >= len(s.Buckets) || s.Buckets[b].Vertices == 0:
					cells = append(cells, "")
				default:
					cells = append(cells, fmt.Sprintf("%.3f", s.Buckets[b].MissRate()))
					any = true
				}
			}
			if any {
				t.Add(cells...)
			}
		}
		env.render(t)
	}
}
