package bench

import (
	"fmt"
	"io"

	"ihtl/internal/core"
	"ihtl/internal/graph"
)

// RunFig2 renders the paper's worked example (Figures 2, 4, 5, 6):
// the 8-vertex graph's adjacency matrix, the iHTL relabeling array,
// and the relabeled matrix with its flipped/sparse/zero blocks. It is
// the visual companion of TestPaperExample and takes no datasets.
func RunFig2(env *Env) error {
	g := graph.PaperExample()
	ih, err := core.Build(g, core.Params{HubsPerBlock: 2})
	if err != nil {
		return err
	}
	w := env.Out
	if w == nil {
		return nil
	}
	fmt.Fprintln(w, "\n== Figures 2/4/5/6: the paper's worked example ==")
	fmt.Fprintln(w, "\nFigure 5: adjacency matrix of the example graph (1-indexed)")
	printMatrix(w, g, nil, -1)

	fmt.Fprint(w, "\nFigure 4: iHTL relabeling array (element v = original ID of new v): [")
	for nv, old := range ih.OldID {
		if nv > 0 {
			fmt.Fprint(w, " ")
		}
		fmt.Fprintf(w, "%d", old+1)
	}
	fmt.Fprintln(w, "]")

	rg, err := graph.Relabel(g, ih.NewID)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nFigure 6: relabeled matrix — %d hub columns form the flipped block;\n", ih.NumHubs)
	fmt.Fprintf(w, "FV rows (last %d) have no hub columns (the zero block)\n", ih.NumFV)
	printMatrix(w, rg, ih, ih.NumHubs)

	fmt.Fprintf(w, "\nstructure: %d flipped edges (push), %d sparse edges (pull), VWEH=%d FV=%d\n",
		ih.FlippedEdges(), ih.Sparse.NumEdges(), ih.NumVWEH, ih.NumFV)
	return nil
}

// printMatrix renders a small adjacency matrix; when hubCols >= 0 a
// separator marks the hub-column boundary.
func printMatrix(w io.Writer, g *graph.Graph, ih *core.IHTL, hubCols int) {
	fmt.Fprint(w, "     ")
	for c := 0; c < g.NumV; c++ {
		if c == hubCols {
			fmt.Fprint(w, "| ")
		}
		fmt.Fprintf(w, "#%d ", c+1)
	}
	fmt.Fprintln(w)
	for r := 0; r < g.NumV; r++ {
		fmt.Fprintf(w, "  #%d ", r+1)
		for c := 0; c < g.NumV; c++ {
			if c == hubCols {
				fmt.Fprint(w, "| ")
			}
			if g.HasEdge(graph.VID(r), graph.VID(c)) {
				fmt.Fprint(w, " 1 ")
			} else {
				fmt.Fprint(w, " . ")
			}
		}
		fmt.Fprintln(w)
	}
}
